// Reproduces Figure 14: clustering correlation on the real trace vs the
// randomised trace, for all files and for files of popularity 3 and 5.
// Paper: for all files the two curves coincide (popular files mask the
// effect); for low-popularity files the randomised curve collapses — the
// gap is genuine interest-based clustering.
//
// The randomised curve is the mean over --trials independent full
// randomisations (the paper averages 30+ trials). Each trial derives its
// Rng from TaskRng(base seed, trial index) and the trials fan out over the
// thread pool, so the printed numbers are bit-identical for any --threads
// value.

#include <iostream>
#include <iterator>

#include "bench/bench_common.h"
#include "src/analysis/clustering.h"
#include "src/common/table.h"
#include "src/exec/parallel.h"
#include "src/trace/randomize.h"

namespace {

constexpr size_t kMaxK = 32;
constexpr uint32_t kPanelPopularity[] = {0, 3, 5};  // 0 = all files.
constexpr size_t kPanels = std::size(kPanelPopularity);

}  // namespace

int main(int argc, char** argv) {
  const edk::BenchOptions options = edk::ParseBenchOptions(argc, argv);
  edk::PrintBenchHeader(
      "Figure 14: clustering correlation, trace vs randomised trace",
      "all files: curves coincide; popularity 3/5: randomised collapses",
      options);

  const edk::Trace filtered = edk::LoadOrGenerateFiltered(options);
  const edk::StaticCaches caches = edk::BuildUnionCaches(filtered);

  // Curves on the real trace, one per panel.
  std::vector<edk::ClusteringCurve> trace_curves(kPanels);
  for (size_t panel = 0; panel < kPanels; ++panel) {
    if (kPanelPopularity[panel] == 0) {
      trace_curves[panel] = edk::ComputeClusteringCurve(caches, kMaxK, nullptr);
    } else {
      const auto mask = edk::MaskExactPopularity(caches, filtered.file_count(),
                                                 kPanelPopularity[panel]);
      trace_curves[panel] = edk::ComputeClusteringCurve(caches, kMaxK, &mask);
    }
  }

  // Independent randomisation trials. Each trial randomises the caches with
  // its own deterministically derived Rng, recomputes the per-popularity
  // masks on its randomised caches (randomisation preserves popularity, so
  // the masks select the same number of files), and produces one curve per
  // panel into its own slots.
  const size_t trials = options.trials;
  std::vector<edk::ClusteringCurve> trial_curves(trials * kPanels);
  edk::SweepTimer timer("fig14 randomisation trials");
  edk::ParallelFor(0, trials, [&](size_t trial) {
    edk::Rng rng = edk::TaskRng(options.workload.seed ^ 0xfeedULL, trial);
    const edk::StaticCaches randomized = edk::RandomizeCachesFully(caches, rng).caches;
    for (size_t panel = 0; panel < kPanels; ++panel) {
      auto& slot = trial_curves[trial * kPanels + panel];
      if (kPanelPopularity[panel] == 0) {
        slot = edk::ComputeClusteringCurve(randomized, kMaxK, nullptr);
      } else {
        const auto mask = edk::MaskExactPopularity(randomized, filtered.file_count(),
                                                   kPanelPopularity[panel]);
        slot = edk::ComputeClusteringCurve(randomized, kMaxK, &mask);
      }
    }
  });
  timer.Report(trials);

  for (size_t panel = 0; panel < kPanels; ++panel) {
    const uint32_t popularity = kPanelPopularity[panel];
    std::cout << "--- "
              << (popularity == 0 ? std::string("all files")
                                  : "popularity " + std::to_string(popularity))
              << " ---\n";
    edk::AsciiTable table({"files in common", "trace",
                           "randomised (mean of " + std::to_string(trials) + " trials)"});
    for (size_t k : {1u, 2u, 3u, 5u, 8u, 12u, 20u, 32u}) {
      auto trace_cell = [k](const edk::ClusteringCurve& curve) {
        if (curve.pairs_at_least.size() <= k || curve.pairs_at_least[k] == 0) {
          return std::string("-");
        }
        return edk::FormatPercent(curve.ProbabilityAt(k));
      };
      // Mean over the trials whose randomised caches still have pairs with
      // >= k common files; "-" when no trial does.
      double sum = 0;
      size_t supported = 0;
      for (size_t trial = 0; trial < trials; ++trial) {
        const auto& curve = trial_curves[trial * kPanels + panel];
        if (curve.pairs_at_least.size() <= k || curve.pairs_at_least[k] == 0) {
          continue;
        }
        sum += curve.ProbabilityAt(k);
        ++supported;
      }
      const std::string random_cell =
          supported == 0 ? "-" : edk::FormatPercent(sum / static_cast<double>(supported));
      table.AddRow({std::to_string(k), trace_cell(trace_curves[panel]), random_cell});
    }
    table.Print(std::cout);
    std::cout << "\n";
  }
  return 0;
}
