// Reproduces Figure 14: clustering correlation on the real trace vs the
// randomised trace, for all files and for files of popularity 3 and 5.
// Paper: for all files the two curves coincide (popular files mask the
// effect); for low-popularity files the randomised curve collapses — the
// gap is genuine interest-based clustering.

#include <iostream>

#include "bench/bench_common.h"
#include "src/analysis/clustering.h"
#include "src/common/rng.h"
#include "src/common/table.h"
#include "src/trace/randomize.h"

int main(int argc, char** argv) {
  const edk::BenchOptions options = edk::ParseBenchOptions(argc, argv);
  edk::PrintBenchHeader(
      "Figure 14: clustering correlation, trace vs randomised trace",
      "all files: curves coincide; popularity 3/5: randomised collapses",
      options);

  const edk::Trace filtered = edk::LoadOrGenerateFiltered(options);
  const edk::StaticCaches caches = edk::BuildUnionCaches(filtered);
  edk::Rng rng(options.workload.seed ^ 0xfeedULL);
  const edk::StaticCaches randomized = edk::RandomizeCachesFully(caches, rng).caches;

  constexpr size_t kMaxK = 32;
  struct Panel {
    const char* title;
    std::vector<bool> trace_mask;
    std::vector<bool> random_mask;
    bool use_mask;
  };
  std::vector<Panel> panels;
  panels.push_back({"all files", {}, {}, false});
  for (uint32_t popularity : {3u, 5u}) {
    Panel panel;
    panel.title = popularity == 3 ? "popularity 3" : "popularity 5";
    // Masks are computed per cache set: randomisation preserves popularity,
    // so the two masks select the same number of files.
    panel.trace_mask =
        edk::MaskExactPopularity(caches, filtered.file_count(), popularity);
    panel.random_mask =
        edk::MaskExactPopularity(randomized, filtered.file_count(), popularity);
    panel.use_mask = true;
    panels.push_back(std::move(panel));
  }

  for (const auto& panel : panels) {
    const auto trace_curve = edk::ComputeClusteringCurve(
        caches, kMaxK, panel.use_mask ? &panel.trace_mask : nullptr);
    const auto random_curve = edk::ComputeClusteringCurve(
        randomized, kMaxK, panel.use_mask ? &panel.random_mask : nullptr);
    std::cout << "--- " << panel.title << " ---\n";
    edk::AsciiTable table({"files in common", "trace", "randomised"});
    for (size_t k : {1u, 2u, 3u, 5u, 8u, 12u, 20u, 32u}) {
      auto cell = [k](const edk::ClusteringCurve& curve) {
        if (curve.pairs_at_least.size() <= k || curve.pairs_at_least[k] == 0) {
          return std::string("-");
        }
        return edk::FormatPercent(curve.ProbabilityAt(k));
      };
      table.AddRow({std::to_string(k), cell(trace_curve), cell(random_curve)});
    }
    table.Print(std::cout);
    std::cout << "\n";
  }
  return 0;
}
