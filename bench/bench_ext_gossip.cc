// Extension experiment: epidemic semantic overlay (the follow-on design the
// paper's §6 describes, originally evaluated on this very trace).
//
// Measures how quickly two-tier gossip converges to semantic views whose
// quality matches the history-based neighbour lists of §5 — without any
// download history: view overlap and view hit rate per gossip round,
// against the LRU trace-simulation reference.

#include <iostream>

#include "bench/bench_common.h"
#include "src/common/table.h"
#include "src/semantic/gossip_overlay.h"
#include "src/semantic/search_sim.h"
#include "src/semantic/sharded_gossip.h"

int main(int argc, char** argv) {
  const edk::BenchOptions options = edk::ParseBenchOptions(argc, argv);
  edk::PrintBenchHeader("Extension: epidemic semantic overlay (gossip)",
                        "Voulgaris & van Steen on this trace: gossip clusters peers "
                        "by cache overlap within tens of rounds",
                        options);

  const edk::Trace filtered = edk::LoadOrGenerateFiltered(options);
  const edk::StaticCaches caches = edk::BuildUnionCaches(filtered);

  edk::GossipConfig gossip;
  gossip.view_size = 10;
  gossip.seed = options.workload.seed;
  edk::GossipOverlay overlay(caches, gossip);
  edk::Rng rng(options.workload.seed ^ 0x90551f);

  edk::AsciiTable table({"gossip rounds", "mean view overlap", "view hit rate"});
  size_t next_report = 0;
  constexpr size_t kSamples = 20'000;
  for (size_t round = 0; round <= 32; ++round) {
    if (round == next_report) {
      table.AddRow({std::to_string(round),
                    edk::AsciiTable::FormatCell(overlay.MeanViewOverlap()),
                    edk::FormatPercent(overlay.ViewHitRate(kSamples, rng))});
      next_report = next_report == 0 ? 1 : next_report * 2;
    }
    overlay.RunRound();
  }
  table.Print(std::cout);

  // Full request replay (§5.1) with the converged gossip views as FIXED
  // neighbour lists, against the LRU reference that must learn its lists
  // from download history during the replay.
  std::vector<std::vector<uint32_t>> views(caches.caches.size());
  for (uint32_t p = 0; p < caches.caches.size(); ++p) {
    views[p] = overlay.SemanticView(p);
  }
  edk::SearchSimConfig fixed;
  fixed.list_size = gossip.view_size;
  fixed.seed = options.workload.seed;
  fixed.track_load = false;
  fixed.fixed_views = &views;
  const double gossip_rate = RunSearchSimulation(caches, fixed).OneHopHitRate();

  edk::SearchSimConfig lru;
  lru.strategy = edk::StrategyKind::kLru;
  lru.list_size = gossip.view_size;
  lru.seed = options.workload.seed;
  lru.track_load = false;
  const double lru_rate = RunSearchSimulation(caches, lru).OneHopHitRate();

  std::cout << "\nfull request replay at list size " << gossip.view_size << ":\n";
  std::cout << "  gossip views (fixed, no history): " << edk::FormatPercent(gossip_rate)
            << "\n";
  std::cout << "  LRU (learned during the replay):  " << edk::FormatPercent(lru_rate)
            << "\n";
  std::cout << "(gossip removes the cold start: its lists exist before the "
               "first download)\n";

  // Event-driven replay of the same protocol on the sharded conservative
  // engine (--shards=K, --threads=N): exchanges happen over simulated
  // network latency instead of lock-step rounds. Everything printed here
  // is bit-identical for every shards/threads combination; the wall-clock
  // rate goes to stderr.
  edk::ShardedGossipConfig sharded;
  sharded.seed = options.workload.seed;
  sharded.shards = options.shards;
  sharded.threads = options.threads;
  if (options.rounds > 0) {
    sharded.rounds = options.rounds;
  }
  const edk::ShardedGossipStats stats = edk::RunShardedGossip(
      caches, edk::Geography::PaperDistribution(), sharded);
  std::cout << "\nevent-driven gossip on the sharded engine ("
            << sharded.rounds << " rounds over " << stats.sim_seconds
            << " simulated seconds):\n";
  edk::AsciiTable sharded_table({"round", "mean view overlap", "view hit rate"});
  for (const edk::GossipRoundPoint& point : stats.trajectory) {
    sharded_table.AddRow({std::to_string(point.round),
                          edk::AsciiTable::FormatCell(point.mean_view_overlap),
                          edk::FormatPercent(point.view_hit_rate)});
  }
  sharded_table.Print(std::cout);
  std::cout << "participants=" << stats.participants
            << " exchanges=" << stats.exchanges
            << " messages=" << stats.messages_sent
            << " events=" << stats.events_executed
            << " windows=" << stats.windows << "\n";
  std::cerr << "[sharded] shards=" << sharded.shards << " "
            << stats.events_executed << " events in " << stats.wall_seconds
            << " s (" << static_cast<uint64_t>(stats.EventsPerSecond())
            << " events/s)\n";
  return 0;
}
