// Reproduces Figures 15-17: evolution of the cache overlap between peer
// pairs, for cohorts grouped by their overlap on the first day. Paper:
// overlaps of 1-10 decay smoothly; larger overlaps (20-57, and hundreds)
// show long plateaux — interest proximity persists for weeks.

#include <iostream>

#include "bench/bench_common.h"
#include "src/analysis/overlap.h"
#include "src/common/table.h"

namespace {

void PrintCohorts(const edk::Trace& trace, const std::vector<edk::OverlapCohort>& cohorts,
                  const char* figure) {
  std::cout << figure << ":\n";
  std::vector<std::string> headers = {"day"};
  for (const auto& cohort : cohorts) {
    if (cohort.pair_count == 0) {
      continue;
    }
    headers.push_back(std::to_string(cohort.initial_overlap) + " common (" +
                      std::to_string(cohort.pair_count) + " pairs)");
  }
  edk::AsciiTable table(headers);
  const size_t days = static_cast<size_t>(trace.last_day() - trace.first_day() + 1);
  for (size_t d = 0; d < days; d += 2) {  // Every other day keeps tables short.
    std::vector<std::string> row = {std::to_string(trace.first_day() + static_cast<int>(d))};
    for (const auto& cohort : cohorts) {
      if (cohort.pair_count == 0) {
        continue;
      }
      row.push_back(edk::AsciiTable::FormatCell(cohort.mean_overlap[d]));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const edk::BenchOptions options = edk::ParseBenchOptions(argc, argv);
  edk::PrintBenchHeader(
      "Figures 15-17: overlap evolution between peer pairs",
      "small overlaps decay smoothly; large overlaps hold plateaux for weeks",
      options);

  const edk::Trace extrapolated = edk::LoadOrGenerateExtrapolated(options);

  edk::OverlapEvolutionOptions small;
  small.cohort_overlaps = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  small.seed = options.workload.seed;
  PrintCohorts(extrapolated, edk::ComputeOverlapEvolution(extrapolated, small),
               "Figure 15 (initial overlap 1-10)");

  edk::OverlapEvolutionOptions medium;
  medium.cohort_overlaps = {20, 25, 30, 35, 40, 45, 51, 57};
  medium.seed = options.workload.seed;
  PrintCohorts(extrapolated, edk::ComputeOverlapEvolution(extrapolated, medium),
               "Figure 16 (initial overlap 20-57)");

  // Figure 17 tracks the very largest overlaps present in the trace: find
  // them from the day-1 histogram.
  const auto histogram = edk::OverlapHistogramOnDay(extrapolated, extrapolated.first_day());
  edk::OverlapEvolutionOptions large;
  large.cohort_overlaps.clear();
  for (auto it = histogram.rbegin(); it != histogram.rend() &&
                                     large.cohort_overlaps.size() < 4; ++it) {
    if (it->first >= 60) {
      large.cohort_overlaps.push_back(it->first);
    }
  }
  large.seed = options.workload.seed;
  if (!large.cohort_overlaps.empty()) {
    PrintCohorts(extrapolated, edk::ComputeOverlapEvolution(extrapolated, large),
                 "Figure 17 (largest initial overlaps)");
  } else {
    std::cout << "Figure 17: no pairs with overlap >= 60 at this scale; rerun with "
                 "--scale=large\n";
  }
  return 0;
}
