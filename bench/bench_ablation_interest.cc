// Ablation: strength of the latent interest model. Setting
// interest_locality to 0 makes every acquisition popularity-driven,
// removing semantic structure at the source — the workload-model analogue
// of the paper's trace-randomisation argument (Figs. 14/21). The semantic
// hit rate should collapse towards the Random baseline as locality drops.

#include <iostream>

#include "bench/bench_common.h"
#include "src/common/table.h"
#include "src/semantic/search_sim.h"
#include "src/trace/filter.h"

int main(int argc, char** argv) {
  const edk::BenchOptions options = edk::ParseBenchOptions(argc, argv);
  edk::PrintBenchHeader("Ablation: interest-model locality",
                        "semantic hit rate should collapse as the workload "
                        "loses interest structure",
                        options);

  edk::AsciiTable table({"interest locality", "LRU-5", "LRU-10", "LRU-20", "Random-20"});
  for (double locality : {0.0, 0.3, 0.6, 0.85}) {
    edk::BenchOptions variant = options;
    variant.workload.interest_locality = locality;
    // The variant's trace is not in the shared cache (different knob), so
    // generate directly.
    const edk::Trace filtered =
        edk::FilterDuplicates(edk::GenerateWorkload(variant.workload).trace);
    const edk::StaticCaches caches = edk::BuildUnionCaches(filtered);

    std::vector<std::string> row = {edk::AsciiTable::FormatCell(locality)};
    for (size_t k : {5u, 10u, 20u}) {
      edk::SearchSimConfig config;
      config.strategy = edk::StrategyKind::kLru;
      config.list_size = k;
      config.seed = options.workload.seed;
      config.track_load = false;
      row.push_back(
          edk::FormatPercent(RunSearchSimulation(caches, config).OneHopHitRate()));
    }
    edk::SearchSimConfig random;
    random.strategy = edk::StrategyKind::kRandom;
    random.list_size = 20;
    random.seed = options.workload.seed;
    random.track_load = false;
    row.push_back(edk::FormatPercent(RunSearchSimulation(caches, random).OneHopHitRate()));
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::cout << "\n(LRU converges towards Random as the interest structure vanishes)\n";
  return 0;
}
