// Reproduces Figure 5: distribution of file replication (sources per file)
// against file rank, for five days spread across the trace. The paper
// observes an initial flat region followed by a straight line on a log-log
// plot, stable across days.

#include <iostream>

#include "bench/bench_common.h"
#include "src/analysis/popularity.h"
#include "src/common/table.h"

int main(int argc, char** argv) {
  const edk::BenchOptions options = edk::ParseBenchOptions(argc, argv);
  edk::PrintBenchHeader("Figure 5: file replication vs rank (log-log), 5 days",
                        "flat head then Zipf-like straight tail; consistent over days",
                        options);

  const edk::Trace extrapolated = edk::LoadOrGenerateExtrapolated(options);
  const int first = extrapolated.first_day();
  const int last = extrapolated.last_day();
  std::vector<int> days;
  for (int i = 0; i < 5; ++i) {
    days.push_back(first + i * (last - first) / 4);
  }

  // Log-spaced ranks, as read off the paper's x axis.
  const size_t ranks[] = {1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000};

  std::vector<std::vector<uint32_t>> curves;
  edk::AsciiTable table({"rank", "day " + std::to_string(days[0]),
                         "day " + std::to_string(days[1]), "day " + std::to_string(days[2]),
                         "day " + std::to_string(days[3]),
                         "day " + std::to_string(days[4])});
  curves.reserve(days.size());
  for (int day : days) {
    curves.push_back(edk::RankedSourcesOnDay(extrapolated, day));
  }
  for (size_t rank : ranks) {
    std::vector<std::string> row = {std::to_string(rank)};
    bool any = false;
    for (const auto& curve : curves) {
      if (rank <= curve.size()) {
        row.push_back(std::to_string(curve[rank - 1]));
        any = true;
      } else {
        row.push_back("-");
      }
    }
    if (any) {
      table.AddRow(std::move(row));
    }
  }
  table.Print(std::cout);

  for (size_t i = 0; i < days.size(); ++i) {
    const auto fit = edk::FitZipfTail(curves[i]);
    std::cout << "day " << days[i] << ": " << curves[i].size()
              << " files, Zipf tail slope " << fit.slope << " (r^2 " << fit.r_squared
              << ")\n";
  }
  std::cout << "(paper: straight log-log tail after a small flat head)\n";
  return 0;
}
