// Reproduces Figure 22: distribution of query load across peers with LRU-5
// lists, with and without the most generous uploaders. Paper: removing the
// top 10% of uploaders cuts the heaviest peer load from 13,433 to 710
// messages while the mean only drops from 187 to 81 — load flattens
// dramatically.

#include <algorithm>
#include <iostream>
#include <iterator>

#include "bench/bench_common.h"
#include "src/common/table.h"
#include "src/exec/parallel.h"
#include "src/semantic/scenario.h"
#include "src/semantic/search_sim.h"

int main(int argc, char** argv) {
  const edk::BenchOptions options = edk::ParseBenchOptions(argc, argv);
  edk::PrintBenchHeader("Figure 22: per-peer query load (LRU, 5 neighbours)",
                        "removing top uploaders flattens the load distribution: "
                        "max 13,433 -> 710 while mean 187 -> 81",
                        options);

  const edk::Trace filtered = edk::LoadOrGenerateFiltered(options);
  const edk::StaticCaches base = edk::BuildUnionCaches(filtered);

  struct Scenario {
    const char* label;
    double removal;
  };
  const Scenario scenarios[] = {
      {"all uploaders", 0.0},
      {"w/o top 5%", 0.05},
      {"w/o top 10%", 0.10},
      {"w/o top 15%", 0.15},
  };

  edk::AsciiTable table({"scenario", "requests", "mean msgs/peer", "p99", "max"});
  std::cout << "load at selected ranks (messages per client, rank-ordered):\n";
  edk::AsciiTable ranks_table(
      {"rank", "all uploaders", "w/o top 5%", "w/o top 10%", "w/o top 15%"});
  constexpr size_t kScenarios = std::size(scenarios);
  std::vector<std::vector<uint32_t>> sorted_loads(kScenarios);
  std::vector<edk::SearchSimResult> results(kScenarios);

  // Each removal scenario (cache pruning + full simulation) is independent;
  // fan them out and keep the table emission sequential.
  edk::SweepTimer timer("fig22 uploader-removal scenarios");
  edk::ParallelFor(0, kScenarios, [&](size_t i) {
    const edk::StaticCaches caches = scenarios[i].removal == 0.0
                                         ? base
                                         : edk::RemoveTopUploaders(base, scenarios[i].removal);
    edk::SearchSimConfig config;
    config.strategy = edk::StrategyKind::kLru;
    config.list_size = 5;
    config.seed = options.workload.seed;
    results[i] = RunSearchSimulation(caches, config);

    std::vector<uint32_t> loads;
    for (uint32_t l : results[i].load) {
      if (l > 0) {
        loads.push_back(l);
      }
    }
    std::sort(loads.begin(), loads.end(), std::greater<>());
    sorted_loads[i] = std::move(loads);
  });
  timer.Report(kScenarios);

  for (size_t i = 0; i < kScenarios; ++i) {
    const auto& loads = sorted_loads[i];
    const double mean = loads.empty() ? 0
                                      : static_cast<double>(results[i].messages) /
                                            static_cast<double>(loads.size());
    const uint32_t max = loads.empty() ? 0 : loads.front();
    const uint32_t p99 = loads.empty() ? 0 : loads[loads.size() / 100];
    table.AddRow({scenarios[i].label, std::to_string(results[i].requests),
                  edk::AsciiTable::FormatCell(mean), std::to_string(p99),
                  std::to_string(max)});
  }

  for (size_t rank : {1u, 2u, 5u, 10u, 50u, 100u, 500u, 1000u}) {
    std::vector<std::string> row = {std::to_string(rank)};
    for (const auto& loads : sorted_loads) {
      row.push_back(rank <= loads.size() ? std::to_string(loads[rank - 1]) : "-");
    }
    ranks_table.AddRow(std::move(row));
  }
  ranks_table.Print(std::cout);
  std::cout << "\n";
  table.Print(std::cout);
  std::cout << "\n(paper: total requests 720k -> 226k, max load 13,433 -> 710)\n";
  return 0;
}
