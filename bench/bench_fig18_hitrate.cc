// Reproduces Figure 18: hit rate of semantic-neighbour search as a function
// of the number of neighbours, for the LRU, History and Random strategies.
//
// Paper shape: LRU 28/34/41% at 5/10/20 neighbours, History slightly above
// LRU (47% at 20), Random far below both.

#include <iostream>
#include <iterator>

#include "bench/bench_common.h"
#include "src/common/table.h"
#include "src/exec/parallel.h"
#include "src/semantic/search_sim.h"

int main(int argc, char** argv) {
  const edk::BenchOptions options = edk::ParseBenchOptions(argc, argv);
  edk::PrintBenchHeader("Figure 18: semantic search hit rate vs #neighbours",
                        "LRU: 28/34/41% at 5/10/20; History: 47% at 20; Random: low",
                        options);

  const edk::Trace filtered = edk::LoadOrGenerateFiltered(options);
  const edk::StaticCaches caches = edk::BuildUnionCaches(filtered);

  const size_t list_sizes[] = {5, 10, 20, 40, 80, 120, 160, 200};
  const edk::StrategyKind strategies[] = {edk::StrategyKind::kLru,
                                          edk::StrategyKind::kHistory,
                                          edk::StrategyKind::kRandom};
  constexpr size_t kRows = std::size(list_sizes);
  constexpr size_t kCols = std::size(strategies);

  // The (list size, strategy) grid is embarrassingly parallel: every cell
  // is an independent simulation writing its own slot, so the printed table
  // is bit-identical for any --threads value.
  std::vector<double> rates(kRows * kCols, 0.0);
  edk::SweepTimer timer("fig18 list-size x strategy grid");
  edk::ParallelFor(0, rates.size(), [&](size_t cell) {
    edk::SearchSimConfig config;
    config.strategy = strategies[cell % kCols];
    config.list_size = list_sizes[cell / kCols];
    config.seed = options.workload.seed;
    config.track_load = false;
    rates[cell] = RunSearchSimulation(caches, config).OneHopHitRate();
  });
  timer.Report(rates.size());

  edk::AsciiTable table({"neighbours", "LRU", "History", "Random"});
  for (size_t r = 0; r < kRows; ++r) {
    std::vector<std::string> row = {std::to_string(list_sizes[r])};
    for (size_t c = 0; c < kCols; ++c) {
      row.push_back(edk::FormatPercent(rates[r * kCols + c]));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  return 0;
}
