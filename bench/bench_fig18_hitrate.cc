// Reproduces Figure 18: hit rate of semantic-neighbour search as a function
// of the number of neighbours, for the LRU, History and Random strategies.
//
// Paper shape: LRU 28/34/41% at 5/10/20 neighbours, History slightly above
// LRU (47% at 20), Random far below both.

#include <iostream>

#include "bench/bench_common.h"
#include "src/common/table.h"
#include "src/semantic/search_sim.h"

int main(int argc, char** argv) {
  const edk::BenchOptions options = edk::ParseBenchOptions(argc, argv);
  edk::PrintBenchHeader("Figure 18: semantic search hit rate vs #neighbours",
                        "LRU: 28/34/41% at 5/10/20; History: 47% at 20; Random: low",
                        options);

  const edk::Trace filtered = edk::LoadOrGenerateFiltered(options);
  const edk::StaticCaches caches = edk::BuildUnionCaches(filtered);

  const size_t list_sizes[] = {5, 10, 20, 40, 80, 120, 160, 200};
  const edk::StrategyKind strategies[] = {edk::StrategyKind::kLru,
                                          edk::StrategyKind::kHistory,
                                          edk::StrategyKind::kRandom};

  edk::AsciiTable table({"neighbours", "LRU", "History", "Random"});
  for (size_t k : list_sizes) {
    std::vector<std::string> row = {std::to_string(k)};
    for (edk::StrategyKind strategy : strategies) {
      edk::SearchSimConfig config;
      config.strategy = strategy;
      config.list_size = k;
      config.seed = options.workload.seed;
      config.track_load = false;
      const auto result = RunSearchSimulation(caches, config);
      row.push_back(edk::FormatPercent(result.OneHopHitRate()));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  return 0;
}
