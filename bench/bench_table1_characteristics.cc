// Reproduces Table 1: general characteristics of the full, filtered and
// extrapolated traces.

#include <iostream>

#include "bench/bench_common.h"
#include "src/analysis/report.h"

int main(int argc, char** argv) {
  const edk::BenchOptions options = edk::ParseBenchOptions(argc, argv);
  edk::PrintBenchHeader("Table 1: general trace characteristics",
                        "full: 56d, 1.16M clients, 84% free-riders, 11M files, 318 TB; "
                        "filtered: 320k clients, 70% free-riders; "
                        "extrapolated: 42d, 53k clients, 74% free-riders",
                        options);

  const edk::Trace full = edk::LoadOrGenerateTrace(options);
  std::cout << edk::RenderCharacteristics("Full trace", edk::Characterize(full)) << "\n";

  const edk::Trace filtered = edk::LoadOrGenerateFiltered(options);
  std::cout << edk::RenderCharacteristics("Filtered trace", edk::Characterize(filtered))
            << "\n";

  const edk::Trace extrapolated = edk::LoadOrGenerateExtrapolated(options);
  std::cout << edk::RenderCharacteristics("Extrapolated trace",
                                          edk::Characterize(extrapolated))
            << "\n";
  return 0;
}
