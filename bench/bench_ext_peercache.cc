// Extension experiment: AS-level index caching ("PeerCache", §4.1).
//
// What fraction of the §5.1 request stream could be answered by an index
// covering only the requester's AS (or country)? The shuffled-AS control
// keeps group sizes but destroys locality — the gap to the real labelling
// is the exploitable geographic clustering.

#include <iostream>

#include "bench/bench_common.h"
#include "src/common/table.h"
#include "src/semantic/as_cache.h"
#include "src/workload/geography.h"

int main(int argc, char** argv) {
  const edk::BenchOptions options = edk::ParseBenchOptions(argc, argv);
  edk::PrintBenchHeader("Extension: AS-level index cache hit rates (PeerCache)",
                        "54% of clients in 5 ASes + geographic clustering of "
                        "sources => operator caches pay off (§4.1)",
                        options);

  const edk::Trace filtered = edk::LoadOrGenerateFiltered(options);
  const edk::StaticCaches caches = edk::BuildUnionCaches(filtered);
  edk::AsLocalityConfig config;
  config.seed = options.workload.seed;
  const edk::AsLocalityStats stats = edk::EvaluateAsLocality(filtered, caches, config);

  edk::AsciiTable table({"index scope", "request hit rate"});
  table.AddRow({"requester's AS", edk::FormatPercent(stats.AsLocalRate())});
  table.AddRow({"requester's country", edk::FormatPercent(stats.CountryLocalRate())});
  table.AddRow({"shuffled-AS control", edk::FormatPercent(stats.ShuffledAsRate())});
  table.Print(std::cout);
  std::cout << "\nlocality gain over size-matched random groups: "
            << edk::FormatPercent(stats.AsLocalRate() - stats.ShuffledAsRate())
            << " of requests (" << stats.requests << " requests)\n\n";

  const edk::Geography geography = edk::Geography::PaperDistribution();
  edk::AsciiTable by_as({"AS", "name", "requests", "AS-local hit rate"});
  for (size_t i = 0; i < stats.by_as.size() && i < 6; ++i) {
    const auto& entry = stats.by_as[i];
    const auto& spec = geography.autonomous_system(entry.autonomous_system);
    by_as.AddRow({std::to_string(spec.as_number), spec.name,
                  std::to_string(entry.requests),
                  edk::FormatPercent(entry.requests == 0
                                         ? 0.0
                                         : static_cast<double>(entry.hits) /
                                               static_cast<double>(entry.requests))});
  }
  by_as.Print(std::cout);
  std::cout << "\n(big incumbent ASes see the highest local hit rates: more "
               "same-AS peers AND stronger shared-language interests)\n";
  return 0;
}
