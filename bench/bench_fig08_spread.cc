// Reproduces Figure 8: spread (fraction of clients sharing the file) of the
// six most popular files over the trace. Paper: sudden rise over a few days
// followed by slow decay; the most replicated file peaks below 0.7% of
// clients.

#include <iomanip>
#include <iostream>
#include <sstream>

#include "bench/bench_common.h"
#include "src/analysis/spread.h"
#include "src/common/table.h"

int main(int argc, char** argv) {
  const edk::BenchOptions options = edk::ParseBenchOptions(argc, argv);
  edk::PrintBenchHeader("Figure 8: spread of the 6 most popular files over time",
                        "sudden increase then slow decay; peak spread < 0.7%",
                        options);

  const edk::Trace filtered = edk::LoadOrGenerateFiltered(options);
  const auto top = edk::TopFilesOverall(filtered, 6);

  std::vector<std::string> headers = {"day"};
  std::vector<std::vector<double>> spreads;
  for (size_t i = 0; i < top.size(); ++i) {
    headers.push_back("#" + std::to_string(i + 1));
    spreads.push_back(edk::FileSpreadOverTime(filtered, top[i]));
  }
  edk::AsciiTable table(headers);
  const size_t days = spreads.empty() ? 0 : spreads[0].size();
  double peak = 0;
  for (size_t d = 0; d < days; ++d) {
    std::vector<std::string> row = {std::to_string(filtered.first_day() + static_cast<int>(d))};
    for (const auto& spread : spreads) {
      std::ostringstream cell;
      cell << std::fixed << std::setprecision(3) << spread[d] * 100.0 << "%";
      row.push_back(cell.str());
      peak = std::max(peak, spread[d]);
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::cout << "\npeak spread: " << edk::FormatPercent(peak, 2)
            << " of scanned clients (paper: < 0.7%; implies flooding must contact "
               "~1/spread peers to find even the most popular file)\n";
  return 0;
}
