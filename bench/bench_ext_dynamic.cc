// Extension experiment: dynamic (day-by-day) semantic search.
//
// Replays the extrapolated trace as it unfolded: requests are each day's
// actual new acquisitions, only online peers answer, and neighbour lists
// persist across days. If the overlap plateaux of Figs. 15-17 mean what the
// paper says — interest proximity is stable over weeks — the daily hit rate
// must hold up (or grow) over the trace instead of decaying as early
// neighbour lists go stale.

#include <cstdio>
#include <filesystem>
#include <iostream>

#include "bench/bench_common.h"
#include "src/common/table.h"
#include "src/semantic/dynamic_sim.h"
#include "src/semantic/search_sim.h"
#include "src/semantic/sharded_gossip.h"
#include "src/trace/stream/convert.h"
#include "src/trace/stream/trace_reader.h"

int main(int argc, char** argv) {
  const edk::BenchOptions options = edk::ParseBenchOptions(argc, argv);
  edk::PrintBenchHeader("Extension: dynamic day-by-day semantic search",
                        "daily hit rate must not decay if interest proximity "
                        "is stable (Figs. 15-17)",
                        options);

  const edk::Trace extrapolated = edk::LoadOrGenerateExtrapolated(options);

  edk::AsciiTable table({"day", "requests", "LRU-20 daily hit rate"});
  edk::DynamicSimConfig config;
  config.strategy = edk::StrategyKind::kLru;
  config.list_size = 20;
  config.seed = options.workload.seed;
  const edk::DynamicSimResult dynamic = RunDynamicSearchSimulation(extrapolated, config);
  for (size_t d = 0; d < dynamic.days.size(); d += 2) {
    const auto& day = dynamic.days[d];
    table.AddRow({std::to_string(day.day), std::to_string(day.requests),
                  edk::FormatPercent(day.HitRate())});
  }
  table.Print(std::cout);

  // First-week vs last-week comparison.
  auto window_rate = [&dynamic](size_t begin, size_t end) {
    uint64_t requests = 0;
    uint64_t hits = 0;
    for (size_t d = begin; d < end && d < dynamic.days.size(); ++d) {
      requests += dynamic.days[d].requests;
      hits += dynamic.days[d].hits;
    }
    return requests == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(requests);
  };
  const size_t days = dynamic.days.size();
  std::cout << "\noverall dynamic hit rate: " << edk::FormatPercent(dynamic.HitRate())
            << "  (" << dynamic.requests << " requests, " << dynamic.unresolvable
            << " unresolvable: no online source that day)\n";
  std::cout << "week 2 (warm-up done): " << edk::FormatPercent(window_rate(7, 14))
            << " vs final week: " << edk::FormatPercent(window_rate(days - 7, days))
            << " -> lists learned early keep paying off\n";

  // The same replay straight off an EDKT v2 file: the StreamingDaySource
  // path holds one day resident at a time and must reproduce the in-RAM
  // run bit for bit (DESIGN.md §6i). This is the zero-materialise entry
  // point a real multi-week crawl would use.
  const std::string v2_path =
      (std::filesystem::temp_directory_path() / "edk_bench_dynamic.edk2")
          .string();
  std::string stream_error;
  if (!edk::stream::SaveTraceV2ToFile(extrapolated, v2_path, &stream_error)) {
    std::cerr << "v2 save failed: " << stream_error << "\n";
    return 1;
  }
  auto reader = edk::stream::TraceReader::Open(v2_path, &stream_error);
  if (!reader.has_value()) {
    std::cerr << "v2 open failed: " << stream_error << "\n";
    return 1;
  }
  const auto streamed = RunDynamicSearchSimulation(*reader, config, &stream_error);
  if (!streamed.has_value()) {
    std::cerr << "streaming replay failed: " << stream_error << "\n";
    return 1;
  }
  const bool identical = streamed->requests == dynamic.requests &&
                         streamed->hits == dynamic.hits &&
                         streamed->fallbacks == dynamic.fallbacks &&
                         streamed->unresolvable == dynamic.unresolvable;
  std::cout << "streaming replay off EDKT v2 (one day resident): "
            << (identical ? "bit-identical to the in-RAM run" : "MISMATCH")
            << "\n";
  if (!identical) {
    return 1;
  }

  // Reference: the paper's static replay at the same list size.
  const edk::Trace filtered = edk::LoadOrGenerateFiltered(options);
  edk::SearchSimConfig static_config;
  static_config.strategy = edk::StrategyKind::kLru;
  static_config.list_size = 20;
  static_config.seed = options.workload.seed;
  static_config.track_load = false;
  const double static_rate =
      RunSearchSimulation(edk::BuildUnionCaches(filtered), static_config).OneHopHitRate();
  std::cout << "static §5 replay reference (LRU-20): " << edk::FormatPercent(static_rate)
            << "\n";

  // Could the day's population have built equivalent lists with zero
  // history? Event-driven gossip on the final day's cache snapshot, run on
  // the sharded engine (--shards=K, --threads=N). Output is bit-identical
  // for every shards/threads combination. The snapshot comes off the v2
  // reader's day view — layout-identical to BuildDayCaches on the in-RAM
  // trace — so the sharded scenario also runs without materialising.
  const auto* last_info = reader->FindDay(extrapolated.last_day());
  if (last_info == nullptr) {
    std::cerr << "final day missing from v2 file\n";
    return 1;
  }
  const auto last_view = reader->ReadDay(*last_info, &stream_error);
  if (!last_view.has_value()) {
    std::cerr << "final day view failed: " << stream_error << "\n";
    return 1;
  }
  const edk::StaticCaches day_caches = last_view->store.ToStaticCaches();
  edk::ShardedGossipConfig sharded;
  sharded.seed = options.workload.seed;
  sharded.shards = options.shards;
  sharded.threads = options.threads;
  sharded.rounds = options.rounds > 0 ? options.rounds : 12;
  sharded.trajectory = false;
  sharded.probe_rounds = 4;
  const edk::ShardedGossipStats stats = edk::RunShardedGossip(
      day_caches, edk::Geography::PaperDistribution(), sharded);
  std::cout << "\nevent-driven gossip on the final day's snapshot ("
            << sharded.rounds << " rounds, sharded engine):\n"
            << "  participants=" << stats.participants
            << " exchanges=" << stats.exchanges
            << " events=" << stats.events_executed
            << " windows=" << stats.windows << "\n"
            << "  mean view overlap: "
            << edk::AsciiTable::FormatCell(stats.mean_view_overlap)
            << "  view hit rate: " << edk::FormatPercent(stats.view_hit_rate)
            << "  probe hit rate: " << edk::FormatPercent(stats.ProbeHitRate())
            << "\n";
  std::cerr << "[sharded] shards=" << sharded.shards << " "
            << stats.events_executed << " events in " << stats.wall_seconds
            << " s (" << static_cast<uint64_t>(stats.EventsPerSecond())
            << " events/s)\n";
  std::remove(v2_path.c_str());
  return 0;
}
