// Reproduces Figure 1: number of clients and shared files successfully
// scanned per day by the crawler. The paper's counts decline from 65k to
// 35k clients/day as the crawler's bandwidth budget tightened; the same
// artefact is reproduced here by the decaying browse budget.

#include <iostream>

#include "bench/bench_common.h"
#include "src/common/table.h"
#include "src/crawler/crawler.h"

int main(int argc, char** argv) {
  edk::BenchOptions options = edk::ParseBenchOptions(argc, argv);
  // The crawl drives a full protocol simulation; run it on a reduced
  // population unless the user overrides.
  if (options.scale == "medium") {
    options.workload.num_peers = 4'000;
    options.workload.num_files = 30'000;
    options.workload.num_topics = 150;
  }
  edk::PrintBenchHeader(
      "Figure 1: clients and files scanned per day (crawler view)",
      "65k -> 35k clients/day declining with crawler bandwidth; ~1.4M files/day",
      options);

  edk::CrawlConfig crawl;
  crawl.workload = options.workload;
  crawl.num_servers = 4;
  crawl.prefix_length = 2;
  // Budget starts at roughly the number of reachable online peers
  // (~ peers x availability x non-firewalled share) and decays so that the
  // final day's coverage is about half of the first day's, like the
  // paper's 65k -> 35k decline.
  crawl.initial_daily_browse_budget =
      static_cast<uint32_t>(0.45 * options.workload.num_peers);
  crawl.browse_budget_decay = 0.985;

  const edk::CrawlResult result = edk::RunCrawlSimulation(crawl);

  edk::AsciiTable table({"day", "users discovered", "browses ok", "files seen",
                         "ground-truth online"});
  // Ground-truth online peers per day for comparison.
  std::vector<uint32_t> online(result.days.size(), 0);
  for (size_t p = 0; p < result.ground_truth.peer_count(); ++p) {
    for (const auto& snapshot :
         result.ground_truth.timeline(edk::PeerId(static_cast<uint32_t>(p))).snapshots) {
      ++online[static_cast<size_t>(snapshot.day - result.ground_truth.first_day())];
    }
  }
  for (size_t d = 0; d < result.days.size(); ++d) {
    const auto& day = result.days[d];
    table.AddRow({std::to_string(day.day), std::to_string(day.users_discovered),
                  std::to_string(day.browses_succeeded), std::to_string(day.files_seen),
                  std::to_string(online[d])});
  }
  table.Print(std::cout);

  const auto& first = result.days.front();
  const auto& last = result.days.back();
  std::cout << "\ncoverage decline: " << first.browses_succeeded << " -> "
            << last.browses_succeeded << " browses/day ("
            << edk::FormatPercent(static_cast<double>(last.browses_succeeded) /
                                  std::max<uint32_t>(1, first.browses_succeeded))
            << " of day 1, paper: 35k/65k = 54%)\n";
  std::cout << "total simulated protocol messages: " << result.messages_sent << "\n";
  return 0;
}
