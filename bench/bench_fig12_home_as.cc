// Reproduces Figure 12: CDF of the proportion of a file's sources located
// in the file's home autonomous system, split by average popularity. Same
// structure as Figure 11, one administrative level lower.

#include <iostream>

#include "bench/bench_common.h"
#include "src/analysis/geo_clustering.h"
#include "src/common/stats.h"
#include "src/common/table.h"

int main(int argc, char** argv) {
  const edk::BenchOptions options = edk::ParseBenchOptions(argc, argv);
  edk::PrintBenchHeader(
      "Figure 12: fraction of sources in the home AS (CDF by popularity)",
      "AS-level clustering weaker than country-level but same popularity ordering",
      options);

  const edk::Trace filtered = edk::LoadOrGenerateFiltered(options);

  const double thresholds[] = {0.1, 0.5, 1, 2, 5, 10};
  std::vector<edk::EmpiricalCdf> cdfs;
  std::vector<std::string> headers = {"% sources in home AS <="};
  for (double threshold : thresholds) {
    cdfs.emplace_back(edk::HomeAsFractions(filtered, threshold));
    headers.push_back("pop>=" + edk::AsciiTable::FormatCell(threshold));
  }

  edk::AsciiTable table(headers);
  for (double fraction : {0.2, 0.4, 0.6, 0.8, 0.99}) {
    std::vector<std::string> row = {edk::FormatPercent(fraction, 0)};
    for (const auto& cdf : cdfs) {
      row.push_back(cdf.size() == 0 ? "-" : edk::FormatPercent(cdf.At(fraction)));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);

  // AS-level home fraction must sit below country-level on average (an AS
  // is a subset of a country in this model).
  const auto country = edk::HomeCountryFractions(filtered, 0.1);
  const auto as_level = edk::HomeAsFractions(filtered, 0.1);
  double country_mean = 0;
  double as_mean = 0;
  for (double v : country) {
    country_mean += v;
  }
  for (double v : as_level) {
    as_mean += v;
  }
  if (!country.empty() && !as_level.empty()) {
    country_mean /= static_cast<double>(country.size());
    as_mean /= static_cast<double>(as_level.size());
    std::cout << "\nmean home fraction: country " << edk::FormatPercent(country_mean)
              << " vs AS " << edk::FormatPercent(as_mean)
              << " (AS clustering is necessarily weaker)\n";
  }
  return 0;
}
