#include "bench/bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iostream>

#include "src/common/log.h"
#include "src/exec/parallel.h"
#include "src/obs/metrics.h"
#include "src/sim/placement.h"
#include "src/trace/filter.h"
#include "src/trace/serialize.h"

namespace edk {

namespace {

uint64_t HashConfig(const WorkloadConfig& config, const char* view) {
  uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  auto mix_fraction = [&mix](double v) { mix(static_cast<uint64_t>(v * 1e6)); };
  mix(config.seed);
  mix(config.num_peers);
  mix(config.num_files);
  mix(config.num_topics);
  mix(static_cast<uint64_t>(config.first_day));
  mix(static_cast<uint64_t>(config.num_days));
  mix_fraction(config.free_rider_fraction);
  mix_fraction(config.firewalled_fraction);
  mix_fraction(config.mean_daily_additions);
  mix_fraction(config.cache_pareto_alpha);
  mix_fraction(config.cache_pareto_xm);
  mix_fraction(config.cache_max);
  mix_fraction(config.interest_locality);
  mix_fraction(config.geo_topic_affinity);
  mix_fraction(config.topic_zipf);
  mix_fraction(config.file_zipf);
  mix(config.min_interests);
  mix(config.max_interests);
  mix_fraction(config.interest_geometric_p);
  mix_fraction(config.pre_release_fraction);
  mix(static_cast<uint64_t>(config.pre_release_window_days));
  mix_fraction(config.flash_decay_days);
  mix_fraction(config.attractiveness_floor);
  mix_fraction(config.min_availability);
  mix_fraction(config.max_availability);
  mix_fraction(config.late_joiner_fraction);
  mix_fraction(config.early_leaver_fraction);
  mix_fraction(config.duplicate_ip_fraction);
  mix_fraction(config.duplicate_uid_fraction);
  // Version tag: bump when the generator's algorithm itself changes in a
  // way that invalidates cached traces.
  mix_fraction(config.focus_fraction);
  mix(config.focus_segment_files);
  mix_fraction(config.global_zipf);
  mix(9);
  for (const char* c = view; *c != 0; ++c) {
    mix(static_cast<uint64_t>(*c));
  }
  return h;
}

std::string CachePath(const WorkloadConfig& config, const char* view) {
  const char* dir = std::getenv("EDK_TRACE_CACHE_DIR");
  std::filesystem::path base = dir != nullptr ? dir : std::filesystem::temp_directory_path();
  char name[64];
  std::snprintf(name, sizeof(name), "edk_trace_%016llx.bin",
                static_cast<unsigned long long>(HashConfig(config, view)));
  return (base / name).string();
}

// Records the shape of a just-acquired trace view. These counters are
// derived from the returned trace, not from the work done to obtain it, so
// they are identical whether the trace was generated or loaded from the
// disk cache — the deterministic per-bench workload metrics.
void RecordTraceShape(const char* view, const Trace& trace) {
  auto& registry = obs::MetricsRegistry::Global();
  const std::string prefix = std::string("bench.trace.") + view + ".";
  registry.GetCounter(prefix + "loads").Increment();
  registry.GetCounter(prefix + "peers").Increment(trace.peer_count());
  registry.GetCounter(prefix + "files").Increment(trace.file_count());
  registry.GetCounter(prefix + "snapshots").Increment(trace.TotalSnapshots());
  registry.GetCounter(prefix + "free_riders").Increment(trace.CountFreeRiders());
}

Trace LoadOrCompute(const BenchOptions& options, const char* view,
                    Trace (*compute)(const BenchOptions&)) {
  obs::PhaseTimer timer(std::string("bench.trace_acquire.") + view);
  auto& registry = obs::MetricsRegistry::Global();
  const std::string path = CachePath(options.workload, view);
  if (!options.no_cache) {
    if (auto cached = LoadTraceFromFile(path); cached.has_value()) {
      registry.GetCounter("bench.trace_cache_hits", obs::Domain::kEnv).Increment();
      RecordTraceShape(view, *cached);
      return std::move(*cached);
    }
  }
  registry.GetCounter("bench.trace_cache_misses", obs::Domain::kEnv).Increment();
  Trace trace = compute(options);
  if (!options.no_cache) {
    SaveTraceToFile(trace, path);
  }
  RecordTraceShape(view, trace);
  return trace;
}

Trace ComputeFull(const BenchOptions& options) {
  return GenerateWorkload(options.workload).trace;
}

Trace ComputeFiltered(const BenchOptions& options) {
  return FilterDuplicates(LoadOrGenerateTrace(options));
}

Trace ComputeExtrapolated(const BenchOptions& options) {
  return Extrapolate(LoadOrGenerateFiltered(options));
}

[[noreturn]] void Usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--scale=small|medium|large] [--peers=N] [--files=N] [--topics=N]"
               " [--days=N] [--seed=N] [--threads=N] [--trials=N] [--shards=N]"
               " [--rounds=N] [--placement=all|roundrobin|contiguous|interest]"
               " [--window-factor=F] [--explore-every=N] [--no-cache]"
               " [--json=FILE] "
            << obs::ObsFlagsUsage() << "\n";
  std::exit(2);
}

}  // namespace

BenchOptions ParseBenchOptions(int argc, char** argv) {
  BenchOptions options;
  options.workload = MediumWorkloadConfig();
  // First pass: scale presets, so explicit flags can override them.
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--scale=", 8) == 0) {
      options.scale = argv[i] + 8;
      if (options.scale == "small") {
        options.workload = SmallWorkloadConfig();
      } else if (options.scale == "medium") {
        options.workload = MediumWorkloadConfig();
      } else if (options.scale == "large") {
        options.workload = MediumWorkloadConfig();
        options.workload.num_peers = 30'000;
        options.workload.num_files = 200'000;
        options.workload.num_topics = 400;
      } else {
        Usage(argv[0]);
      }
    }
  }
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value = [arg](const char* prefix) -> const char* {
      const size_t n = std::strlen(prefix);
      return std::strncmp(arg, prefix, n) == 0 ? arg + n : nullptr;
    };
    if (const char* v = value("--peers=")) {
      options.workload.num_peers = static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (const char* v = value("--files=")) {
      options.workload.num_files = static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (const char* v = value("--topics=")) {
      options.workload.num_topics = static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (const char* v = value("--days=")) {
      options.workload.num_days = static_cast<int>(std::strtol(v, nullptr, 10));
    } else if (const char* v = value("--seed=")) {
      options.workload.seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--threads=")) {
      options.threads = static_cast<size_t>(std::strtoul(v, nullptr, 10));
    } else if (const char* v = value("--trials=")) {
      options.trials = static_cast<size_t>(std::strtoul(v, nullptr, 10));
      if (options.trials == 0) {
        Usage(argv[0]);
      }
    } else if (const char* v = value("--shards=")) {
      options.shards = static_cast<size_t>(std::strtoul(v, nullptr, 10));
      if (options.shards == 0) {
        Usage(argv[0]);
      }
    } else if (const char* v = value("--rounds=")) {
      options.rounds = static_cast<size_t>(std::strtoul(v, nullptr, 10));
    } else if (const char* v = value("--placement=")) {
      options.placement = v;
      sim::PlacementPolicy policy;
      if (options.placement != "all" &&
          !sim::ParsePlacementPolicy(options.placement, &policy)) {
        Usage(argv[0]);
      }
    } else if (const char* v = value("--window-factor=")) {
      options.window_factor = std::strtod(v, nullptr);
      if (!(options.window_factor > 0)) {
        Usage(argv[0]);
      }
    } else if (const char* v = value("--explore-every=")) {
      options.explore_every = static_cast<size_t>(std::strtoul(v, nullptr, 10));
    } else if (const char* v = value("--json=")) {
      options.json_out = v;
    } else if (obs::ConsumeObsFlag(arg, &options.obs)) {
      // --metrics-out / --trace-out / --trace-sample, shared with the
      // tools; activated below once the whole command line has parsed.
    } else if (std::strcmp(arg, "--no-cache") == 0) {
      options.no_cache = true;
    } else if (std::strncmp(arg, "--scale=", 8) == 0) {
      // Handled in the first pass.
    } else {
      Usage(argv[0]);
    }
  }
  SetDefaultThreads(options.threads);
  // Dumps happen at exit so every bench main() gets its snapshot for free,
  // after all of its sweeps have folded their counters in.
  obs::ApplyObsFlags(options.obs);
  return options;
}

Trace LoadOrGenerateTrace(const BenchOptions& options) {
  return LoadOrCompute(options, "full", &ComputeFull);
}

Trace LoadOrGenerateFiltered(const BenchOptions& options) {
  return LoadOrCompute(options, "filtered", &ComputeFiltered);
}

Trace LoadOrGenerateExtrapolated(const BenchOptions& options) {
  return LoadOrCompute(options, "extrapolated", &ComputeExtrapolated);
}

void PrintBenchHeader(const std::string& experiment, const std::string& paper_reference,
                      const BenchOptions& options) {
  std::cout << "=== " << experiment << " ===\n"
            << "paper reference: " << paper_reference << "\n"
            << "workload: peers=" << options.workload.num_peers
            << " files=" << options.workload.num_files
            << " topics=" << options.workload.num_topics
            << " days=" << options.workload.num_days
            << " seed=" << options.workload.seed << "\n\n";
}

SweepTimer::SweepTimer(std::string name)
    : name_(std::move(name)), start_(std::chrono::steady_clock::now()) {}

void SweepTimer::Report(size_t tasks) const {
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count();
  obs::MetricsRegistry::Global().RecordWallSeconds(
      "sweep." + name_, static_cast<double>(ms) * 1e-3);
  std::cerr << "[sweep] " << name_ << ": " << tasks << " tasks in " << ms
            << " ms (threads=" << DefaultThreads() << ")\n";
}

}  // namespace edk
