// Scale bench: million-peer populations on the sharded engine.
//
// The paper crawled 1.16 M distinct peers (§3); the single-queue kernel
// tops out far below that. This bench runs the event-driven semantic
// gossip scenario over a synthetic clustered population at increasing
// shard counts under each node→shard placement policy, cross-checks that
// every run is bit-identical (the engine's determinism contract makes the
// placement a pure performance knob), and reports throughput plus the
// cross-shard message ratio per configuration. With --json=FILE the sweep
// summary is written as JSON (the BENCH_scale.json trajectory; format
// documented in EXPERIMENTS.md).
//
//   bench_scale --peers=1000000 --files=800 --topics=16 --rounds=32
//               --explore-every=8 --shards=8 --json=BENCH_scale.json
//
// --shards=K sets the sweep ceiling (powers of two up to K; default 8);
// --placement selects one policy or "all" (default). The 1-shard baseline
// runs once — with a single shard every placement is the identity map.
// The gossip mix defaults to explore_every=3 here (two exploit rounds per
// explore round): the scale story is precisely that semantic-neighbour
// traffic dominates, and that is the traffic interest placement localises.
// The committed BENCH_scale.json uses --explore-every=8 with enough
// rounds for the views to converge — the cross-shard ratio is cumulative,
// so the cold-start rounds (views still random, exploitation aimless)
// dilute it until exploitation dominates.
// Note the throughput ratio between shard counts is hardware-dependent:
// on a single-core builder the sweep still validates determinism,
// windowing overhead and message locality, but no parallel speedup is
// physically available.

#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/common/table.h"
#include "src/exec/parallel.h"
#include "src/semantic/sharded_gossip.h"
#include "src/sim/placement.h"
#include "src/workload/geography.h"

int main(int argc, char** argv) {
  const edk::BenchOptions options = edk::ParseBenchOptions(argc, argv);
  edk::PrintBenchHeader("Scale: sharded-engine population sweep",
                        "server-less designs must work at the crawl's scale: "
                        "1.16 M distinct peers (§3)",
                        options);

  const uint32_t peers = options.workload.num_peers;
  const uint32_t files = options.workload.num_files;
  const uint32_t topics = options.workload.num_topics;
  const size_t rounds = options.rounds > 0 ? options.rounds : 6;
  const size_t explore_every =
      options.explore_every > 0 ? options.explore_every : 3;

  const edk::StaticCaches caches =
      edk::MakeClusteredCaches(peers, files, topics, options.workload.seed);
  const edk::Geography geography = edk::Geography::PaperDistribution();

  std::vector<edk::sim::PlacementPolicy> policies;
  if (options.placement == "all") {
    policies = {edk::sim::PlacementPolicy::kRoundRobin,
                edk::sim::PlacementPolicy::kContiguous,
                edk::sim::PlacementPolicy::kInterestClustered};
  } else {
    edk::sim::PlacementPolicy policy = edk::sim::PlacementPolicy::kRoundRobin;
    edk::sim::ParsePlacementPolicy(options.placement, &policy);  // Pre-validated.
    policies = {policy};
  }

  std::vector<size_t> shard_counts;
  const size_t max_shards = options.shards > 1 ? options.shards : 8;
  for (size_t k = 1; k <= max_shards; k *= 2) {
    shard_counts.push_back(k);
  }

  struct Row {
    edk::sim::PlacementPolicy policy;
    size_t shards = 0;
    edk::ShardedGossipStats stats;
    double CrossShardRatio() const {
      return stats.messages_sent > 0
                 ? static_cast<double>(stats.cross_shard_messages) /
                       static_cast<double>(stats.messages_sent)
                 : 0.0;
    }
  };
  std::vector<Row> rows;
  std::string reference;
  bool deterministic_match = true;
  for (size_t k : shard_counts) {
    for (edk::sim::PlacementPolicy policy : policies) {
      edk::ShardedGossipConfig config;
      config.seed = options.workload.seed;
      config.shards = k;
      config.threads = options.threads;
      config.rounds = rounds;
      config.explore_every = explore_every;
      // Richer exchanges than the unit-test defaults: a 16-entry view and
      // 8-entry offers roughly halve the rounds the population needs to
      // find its semantic neighbours, which is what the cumulative
      // cross-shard ratio (cold start included) is most sensitive to.
      config.view_size = 16;
      config.gossip_length = 8;
      config.placement = policy;
      config.window_factor = options.window_factor;
      config.trajectory = false;
      config.probe_rounds = 2;
      Row row;
      row.policy = policy;
      row.shards = k;
      row.stats = edk::RunShardedGossip(caches, geography, config);
      std::cerr << "[scale] placement=" << edk::sim::PlacementPolicyName(policy)
                << " shards=" << k << ": " << row.stats.events_executed
                << " events in " << row.stats.wall_seconds << " s ("
                << static_cast<uint64_t>(row.stats.EventsPerSecond())
                << " events/s)\n";
      const std::string summary = row.stats.DeterministicSummary();
      if (reference.empty()) {
        reference = summary;
      } else if (summary != reference) {
        deterministic_match = false;
        std::cerr << "bench_scale: DETERMINISM VIOLATION at placement="
                  << edk::sim::PlacementPolicyName(policy) << " shards=" << k
                  << "\n  want: " << reference << "\n  got:  " << summary
                  << "\n";
      }
      rows.push_back(std::move(row));
      if (k == 1) {
        break;  // One shard: every placement is the identity map.
      }
    }
  }

  const edk::ShardedGossipStats& first = rows.front().stats;
  std::cout << "population: " << peers << " peers, " << first.participants
            << " participants, " << rounds << " rounds (explore every "
            << explore_every << "), " << first.events_executed << " events, "
            << first.messages_sent << " messages\n"
            << "converged:  mean view overlap "
            << edk::AsciiTable::FormatCell(first.mean_view_overlap)
            << ", view hit rate " << edk::FormatPercent(first.view_hit_rate)
            << ", probe hit rate " << edk::FormatPercent(first.ProbeHitRate())
            << "\n\n";
  edk::AsciiTable table({"placement", "shards", "events/s", "wall s",
                         "cross-shard msgs", "cross %", "speedup"});
  const double base_rate = rows.front().stats.EventsPerSecond();
  for (const Row& row : rows) {
    char wall[32];
    std::snprintf(wall, sizeof(wall), "%.2f", row.stats.wall_seconds);
    char cross[32];
    std::snprintf(cross, sizeof(cross), "%.1f%%", row.CrossShardRatio() * 100);
    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.2fx",
                  base_rate > 0 ? row.stats.EventsPerSecond() / base_rate : 0.0);
    table.AddRow({edk::sim::PlacementPolicyName(row.policy),
                  std::to_string(row.shards),
                  std::to_string(static_cast<uint64_t>(row.stats.EventsPerSecond())),
                  wall, std::to_string(row.stats.cross_shard_messages), cross,
                  speedup});
  }
  table.Print(std::cout);
  std::cout << "\ndeterminism cross-check: "
            << (deterministic_match
                    ? "all placement/shard combinations bit-identical"
                    : "FAILED — runs diverged")
            << "\n";

  // Headline locality stat: interest-clustered vs contiguous cross-shard
  // ratio at the sweep ceiling (when both were run).
  double interest_reduction = 0.0;
  {
    double contiguous_ratio = 0.0, interest_ratio = 0.0;
    for (const Row& row : rows) {
      if (row.shards != max_shards) {
        continue;
      }
      if (row.policy == edk::sim::PlacementPolicy::kContiguous) {
        contiguous_ratio = row.CrossShardRatio();
      } else if (row.policy == edk::sim::PlacementPolicy::kInterestClustered) {
        interest_ratio = row.CrossShardRatio();
      }
    }
    if (contiguous_ratio > 0 && interest_ratio > 0) {
      interest_reduction = contiguous_ratio / interest_ratio;
      char cell[32];
      std::snprintf(cell, sizeof(cell), "%.2f", interest_reduction);
      std::cout << "interest placement cross-shard reduction at "
                << max_shards << " shards: " << cell << "x vs contiguous\n";
    }
  }

  if (!options.json_out.empty()) {
    std::ofstream out(options.json_out);
    if (!out) {
      std::cerr << "bench_scale: cannot write " << options.json_out << "\n";
      return 1;
    }
    char cell[64];
    out << "{\n  \"schema\": \"edk.bench_scale.v2\",\n";
    out << "  \"population\": {\"peers\": " << peers << ", \"files\": " << files
        << ", \"topics\": " << topics << ", \"participants\": "
        << first.participants << ", \"rounds\": " << rounds
        << ", \"explore_every\": " << explore_every
        << ", \"seed\": " << options.workload.seed << "},\n";
    out << "  \"hardware_threads\": " << edk::HardwareThreads()
        << ", \"threads\": " << edk::DefaultThreads() << ",\n";
    std::snprintf(cell, sizeof(cell), "%.3f", options.window_factor);
    out << "  \"window_factor\": " << cell << ",\n";
    std::snprintf(cell, sizeof(cell), "%.6f", first.mean_view_overlap);
    out << "  \"mean_view_overlap\": " << cell << ",\n";
    std::snprintf(cell, sizeof(cell), "%.6f", first.view_hit_rate);
    out << "  \"view_hit_rate\": " << cell << ",\n";
    out << "  \"deterministic_match\": "
        << (deterministic_match ? "true" : "false") << ",\n";
    std::snprintf(cell, sizeof(cell), "%.3f", interest_reduction);
    out << "  \"interest_cross_shard_reduction\": " << cell << ",\n";
    out << "  \"runs\": [\n";
    for (size_t i = 0; i < rows.size(); ++i) {
      const Row& row = rows[i];
      out << "    {\"placement\": \"" << edk::sim::PlacementPolicyName(row.policy)
          << "\", \"shards\": " << row.shards << ", \"events\": "
          << row.stats.events_executed << ", \"messages\": "
          << row.stats.messages_sent << ", \"windows\": " << row.stats.windows
          << ", \"clamped_sends\": " << row.stats.clamped_sends
          << ", \"deferred_sends\": " << row.stats.deferred_sends
          << ", \"cross_shard_messages\": " << row.stats.cross_shard_messages;
      std::snprintf(cell, sizeof(cell), "%.4f", row.CrossShardRatio());
      out << ", \"cross_shard_ratio\": " << cell;
      std::snprintf(cell, sizeof(cell), "%.3f", row.stats.wall_seconds);
      out << ", \"wall_seconds\": " << cell << ", \"events_per_second\": "
          << static_cast<uint64_t>(row.stats.EventsPerSecond());
      std::snprintf(cell, sizeof(cell), "%.2f",
                    base_rate > 0 ? row.stats.EventsPerSecond() / base_rate : 0.0);
      out << ", \"speedup_vs_1_shard\": " << cell << "}"
          << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
  }
  return deterministic_match ? 0 : 1;
}
