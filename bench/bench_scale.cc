// Scale bench: million-peer populations on the sharded engine.
//
// The paper crawled 1.16 M distinct peers (§3); the single-queue kernel
// tops out far below that. This bench runs the event-driven semantic
// gossip scenario over a synthetic clustered population at increasing
// shard counts, cross-checks that every run is bit-identical (the
// engine's determinism contract), and reports the event throughput per
// configuration. With --json=FILE the sweep summary is written as JSON
// (the BENCH_scale.json trajectory; format documented in EXPERIMENTS.md).
//
//   bench_scale --peers=1000000 --files=200000 --topics=500 --rounds=4 \
//               --shards=8 --json=BENCH_scale.json
//
// --shards=K sets the sweep ceiling (powers of two up to K; default 8).
// Note the throughput ratio between shard counts is hardware-dependent:
// on a single-core builder the sweep still validates determinism and
// windowing overhead, but no parallel speedup is physically available.

#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/common/table.h"
#include "src/exec/parallel.h"
#include "src/semantic/sharded_gossip.h"
#include "src/workload/geography.h"

int main(int argc, char** argv) {
  const edk::BenchOptions options = edk::ParseBenchOptions(argc, argv);
  edk::PrintBenchHeader("Scale: sharded-engine population sweep",
                        "server-less designs must work at the crawl's scale: "
                        "1.16 M distinct peers (§3)",
                        options);

  const uint32_t peers = options.workload.num_peers;
  const uint32_t files = options.workload.num_files;
  const uint32_t topics = options.workload.num_topics;
  const size_t rounds = options.rounds > 0 ? options.rounds : 6;

  const edk::StaticCaches caches =
      edk::MakeClusteredCaches(peers, files, topics, options.workload.seed);
  const edk::Geography geography = edk::Geography::PaperDistribution();

  std::vector<size_t> shard_counts;
  const size_t max_shards = options.shards > 1 ? options.shards : 8;
  for (size_t k = 1; k <= max_shards; k *= 2) {
    shard_counts.push_back(k);
  }

  struct Row {
    size_t shards = 0;
    edk::ShardedGossipStats stats;
  };
  std::vector<Row> rows;
  std::string reference;
  bool deterministic_match = true;
  for (size_t k : shard_counts) {
    edk::ShardedGossipConfig config;
    config.seed = options.workload.seed;
    config.shards = k;
    config.threads = options.threads;
    config.rounds = rounds;
    config.trajectory = false;
    config.probe_rounds = 2;
    Row row;
    row.shards = k;
    row.stats = edk::RunShardedGossip(caches, geography, config);
    std::cerr << "[scale] shards=" << k << ": " << row.stats.events_executed
              << " events in " << row.stats.wall_seconds << " s ("
              << static_cast<uint64_t>(row.stats.EventsPerSecond())
              << " events/s)\n";
    const std::string summary = row.stats.DeterministicSummary();
    if (reference.empty()) {
      reference = summary;
    } else if (summary != reference) {
      deterministic_match = false;
      std::cerr << "bench_scale: DETERMINISM VIOLATION at shards=" << k
                << "\n  want: " << reference << "\n  got:  " << summary << "\n";
    }
    rows.push_back(std::move(row));
  }

  const edk::ShardedGossipStats& first = rows.front().stats;
  std::cout << "population: " << peers << " peers, " << first.participants
            << " participants, " << rounds << " rounds, "
            << first.events_executed << " events, " << first.messages_sent
            << " messages\n"
            << "converged:  mean view overlap "
            << edk::AsciiTable::FormatCell(first.mean_view_overlap)
            << ", view hit rate " << edk::FormatPercent(first.view_hit_rate)
            << ", probe hit rate " << edk::FormatPercent(first.ProbeHitRate())
            << "\n\n";
  edk::AsciiTable table({"shards", "events/s", "wall s", "windows",
                         "cross-shard msgs", "speedup"});
  const double base_rate = rows.front().stats.EventsPerSecond();
  for (const Row& row : rows) {
    char wall[32];
    std::snprintf(wall, sizeof(wall), "%.2f", row.stats.wall_seconds);
    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.2fx",
                  base_rate > 0 ? row.stats.EventsPerSecond() / base_rate : 0.0);
    table.AddRow({std::to_string(row.shards),
                  std::to_string(static_cast<uint64_t>(row.stats.EventsPerSecond())),
                  wall, std::to_string(row.stats.windows),
                  std::to_string(row.stats.cross_shard_messages), speedup});
  }
  table.Print(std::cout);
  std::cout << "\ndeterminism cross-check: "
            << (deterministic_match ? "all shard counts bit-identical"
                                    : "FAILED — runs diverged")
            << "\n";

  if (!options.json_out.empty()) {
    std::ofstream out(options.json_out);
    if (!out) {
      std::cerr << "bench_scale: cannot write " << options.json_out << "\n";
      return 1;
    }
    out << "{\n  \"schema\": \"edk.bench_scale.v1\",\n";
    out << "  \"population\": {\"peers\": " << peers << ", \"files\": " << files
        << ", \"topics\": " << topics << ", \"participants\": "
        << first.participants << ", \"rounds\": " << rounds
        << ", \"seed\": " << options.workload.seed << "},\n";
    out << "  \"hardware_threads\": " << edk::HardwareThreads()
        << ", \"threads\": " << edk::DefaultThreads() << ",\n";
    char cell[64];
    std::snprintf(cell, sizeof(cell), "%.6f", first.mean_view_overlap);
    out << "  \"mean_view_overlap\": " << cell << ",\n";
    std::snprintf(cell, sizeof(cell), "%.6f", first.view_hit_rate);
    out << "  \"view_hit_rate\": " << cell << ",\n";
    out << "  \"deterministic_match\": "
        << (deterministic_match ? "true" : "false") << ",\n";
    out << "  \"runs\": [\n";
    for (size_t i = 0; i < rows.size(); ++i) {
      const Row& row = rows[i];
      std::snprintf(cell, sizeof(cell), "%.3f", row.stats.wall_seconds);
      out << "    {\"shards\": " << row.shards << ", \"events\": "
          << row.stats.events_executed << ", \"messages\": "
          << row.stats.messages_sent << ", \"windows\": " << row.stats.windows
          << ", \"cross_shard_messages\": " << row.stats.cross_shard_messages
          << ", \"wall_seconds\": " << cell << ", \"events_per_second\": "
          << static_cast<uint64_t>(row.stats.EventsPerSecond());
      std::snprintf(cell, sizeof(cell), "%.2f",
                    base_rate > 0 ? row.stats.EventsPerSecond() / base_rate : 0.0);
      out << ", \"speedup_vs_1_shard\": " << cell << "}"
          << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
  }
  return deterministic_match ? 0 : 1;
}
