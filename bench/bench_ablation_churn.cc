// Ablation: neighbour churn. The paper evaluates semantic search on a
// static trace; a deployed server-less design faces offline neighbours
// (the paper's own availability-focused related work, Bhagwan et al.,
// reports heavy turnover). This bench degrades neighbour availability and
// measures the remaining hit rate: the design degrades gracefully because
// the neighbour *relationship* persists even when individual peers are
// transiently offline.

#include <iostream>

#include "bench/bench_common.h"
#include "src/common/table.h"
#include "src/semantic/search_sim.h"

int main(int argc, char** argv) {
  const edk::BenchOptions options = edk::ParseBenchOptions(argc, argv);
  edk::PrintBenchHeader("Ablation: semantic search under neighbour churn",
                        "offline neighbours cannot answer; hit rate should "
                        "degrade roughly in proportion, not collapse",
                        options);

  const edk::Trace filtered = edk::LoadOrGenerateFiltered(options);
  const edk::StaticCaches caches = edk::BuildUnionCaches(filtered);

  edk::AsciiTable table({"neighbour availability", "LRU-5", "LRU-20",
                         "LRU-20 two-hop", "messages/request (LRU-20)"});
  for (double availability : {1.0, 0.9, 0.75, 0.5, 0.3}) {
    auto run = [&](size_t k, bool two_hop) {
      edk::SearchSimConfig config;
      config.strategy = edk::StrategyKind::kLru;
      config.list_size = k;
      config.two_hop = two_hop;
      config.neighbour_availability = availability;
      config.seed = options.workload.seed;
      config.track_load = false;
      return RunSearchSimulation(caches, config);
    };
    const auto lru5 = run(5, false);
    const auto lru20 = run(20, false);
    const auto lru20_two = run(20, true);
    table.AddRow({edk::FormatPercent(availability, 0),
                  edk::FormatPercent(lru5.OneHopHitRate()),
                  edk::FormatPercent(lru20.OneHopHitRate()),
                  edk::FormatPercent(lru20_two.TotalHitRate()),
                  edk::AsciiTable::FormatCell(
                      static_cast<double>(lru20.messages) /
                      static_cast<double>(std::max<uint64_t>(1, lru20.requests)))});
  }
  table.Print(std::cout);
  std::cout << "\n(two-hop search recovers much of the churn loss: the overlay "
               "has redundant paths to each semantic cluster)\n";
  return 0;
}
