// Reproduces Figure 2: number of new files discovered per day and the
// cumulative number of distinct files over the trace. The paper still found
// ~100k new files/day after a month (~5 new files per client per day).

#include <iostream>

#include "bench/bench_common.h"
#include "src/analysis/popularity.h"
#include "src/common/table.h"

int main(int argc, char** argv) {
  const edk::BenchOptions options = edk::ParseBenchOptions(argc, argv);
  edk::PrintBenchHeader("Figure 2: new and total files discovered per day",
                        "~100k new files/day even after a month; ~5 new files "
                        "per client per day",
                        options);

  const edk::Trace full = edk::LoadOrGenerateTrace(options);
  const auto days = edk::ComputeDailyActivity(full);

  edk::AsciiTable table({"day", "new files", "total files", "new files per client"});
  for (const auto& day : days) {
    const double per_client =
        day.non_empty_caches == 0
            ? 0
            : static_cast<double>(day.new_files) / static_cast<double>(day.non_empty_caches);
    table.AddRow({std::to_string(day.day), std::to_string(day.new_files),
                  std::to_string(day.total_files),
                  edk::AsciiTable::FormatCell(per_client)});
  }
  table.Print(std::cout);

  // Steady-state check on the second half of the trace.
  double late_new = 0;
  double late_caches = 0;
  for (size_t d = days.size() / 2; d < days.size(); ++d) {
    late_new += static_cast<double>(days[d].new_files);
    late_caches += static_cast<double>(days[d].non_empty_caches);
  }
  std::cout << "\nsecond-half mean never-seen-before files per sharing client per day: "
            << (late_caches == 0 ? 0.0 : late_new / late_caches)
            << " (saturates as the finite synthetic catalog gets discovered)\n";

  // The paper's "5 new files per client per day" is cache churn: files in
  // today's cache that were not in yesterday's.
  double churn_sum = 0;
  uint64_t churn_pairs = 0;
  for (size_t p = 0; p < full.peer_count(); ++p) {
    const auto& snapshots = full.timeline(edk::PeerId(static_cast<uint32_t>(p))).snapshots;
    for (size_t s = 1; s < snapshots.size(); ++s) {
      if (snapshots[s].day != snapshots[s - 1].day + 1 || snapshots[s].files.empty()) {
        continue;
      }
      const size_t overlap = edk::OverlapSize(snapshots[s - 1].files, snapshots[s].files);
      churn_sum += static_cast<double>(snapshots[s].files.size() - overlap);
      ++churn_pairs;
    }
  }
  std::cout << "mean cache churn (new files per sharing client per day): "
            << (churn_pairs == 0 ? 0.0 : churn_sum / static_cast<double>(churn_pairs))
            << " (paper: ~5)\n";
  return 0;
}
