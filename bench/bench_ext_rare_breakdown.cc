// Extension experiment: hit rate by file popularity at request time.
//
// The paper infers "rare files benefit most" indirectly, by deleting
// popular files and watching the aggregate hit rate rise (Fig. 20). The
// simulator's popularity-bucketed accounting shows it directly: per
// request, the requested file's current source count selects a bucket, and
// hit rates are reported per bucket.

#include <iostream>

#include "bench/bench_common.h"
#include "src/common/table.h"
#include "src/semantic/search_sim.h"

int main(int argc, char** argv) {
  const edk::BenchOptions options = edk::ParseBenchOptions(argc, argv);
  edk::PrintBenchHeader("Extension: hit rate by popularity at request time",
                        "direct view of Fig. 20's inference: rare requests hit "
                        "at semantic neighbours disproportionately often",
                        options);

  const edk::Trace filtered = edk::LoadOrGenerateFiltered(options);
  const edk::StaticCaches caches = edk::BuildUnionCaches(filtered);

  edk::AsciiTable table({"sources at request time", "share of requests", "LRU-5",
                         "LRU-20", "Random-20", "LRU-20 / Random-20"});
  std::vector<edk::SearchSimResult> results;
  for (const auto& [strategy, k] :
       {std::pair<edk::StrategyKind, size_t>{edk::StrategyKind::kLru, 5},
        {edk::StrategyKind::kLru, 20},
        {edk::StrategyKind::kRandom, 20}}) {
    edk::SearchSimConfig config;
    config.strategy = strategy;
    config.list_size = k;
    config.seed = options.workload.seed;
    config.track_load = false;
    results.push_back(RunSearchSimulation(caches, config));
  }

  const size_t buckets = results[0].requests_by_popularity.size();
  for (size_t b = 0; b < buckets; ++b) {
    const uint64_t lo = 1ull << b;
    const uint64_t hi = (2ull << b) - 1;
    const uint64_t count = results[0].requests_by_popularity[b];
    if (count == 0) {
      continue;
    }
    std::vector<std::string> row = {
        lo == hi ? std::to_string(lo) : std::to_string(lo) + "-" + std::to_string(hi),
        edk::FormatPercent(static_cast<double>(count) /
                           static_cast<double>(results[0].requests))};
    for (const auto& result : results) {
      row.push_back(edk::FormatPercent(result.BucketHitRate(b)));
    }
    const double random_rate = results[2].BucketHitRate(b);
    row.push_back(random_rate <= 0
                      ? "inf"
                      : edk::AsciiTable::FormatCell(results[1].BucketHitRate(b) /
                                                    random_rate) +
                            "x");
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::cout << "\n(the semantic *advantage* — the LRU/Random ratio — concentrates "
               "entirely on the rare buckets: for popular files any random peer "
               "group will do, for rare files only semantic neighbours help. "
               "This is the per-request confirmation of Fig. 20.)\n";
  return 0;
}
