// Reproduces Table 2: the five largest autonomous systems by hosted
// clients, with their global and national shares.
// Paper: DT 21%/75%, FT 15%/51%, Telefonica 8%/50%, Proxad 7%/24%, AOL 3%/60%.

#include <iostream>

#include "bench/bench_common.h"
#include "src/analysis/geo_clustering.h"
#include "src/common/table.h"
#include "src/workload/geography.h"

int main(int argc, char** argv) {
  const edk::BenchOptions options = edk::ParseBenchOptions(argc, argv);
  edk::PrintBenchHeader("Table 2: top autonomous systems",
                        "AS3320 DT 21%/75%; AS3215 FT 15%/51%; AS3352 Telefonica "
                        "8%/50%; AS12322 Proxad 7%/24%; AS1668 AOL 3%/60%",
                        options);

  const edk::Trace full = edk::LoadOrGenerateTrace(options);
  const edk::Geography geography = edk::Geography::PaperDistribution();
  const auto top = edk::TopAutonomousSystems(full, 8);

  edk::AsciiTable table({"AS", "global", "national", "name"});
  double top5_global = 0;
  for (size_t i = 0; i < top.size(); ++i) {
    const auto& share = top[i];
    const auto& spec = geography.autonomous_system(share.autonomous_system);
    table.AddRow({std::to_string(spec.as_number),
                  edk::FormatPercent(share.global_fraction, 0),
                  edk::FormatPercent(share.national_fraction, 0), spec.name});
    if (i < 5) {
      top5_global += share.global_fraction;
    }
  }
  table.Print(std::cout);
  std::cout << "\ntop-5 ASes host " << edk::FormatPercent(top5_global, 0)
            << " of all clients (paper: 54%)\n";
  return 0;
}
