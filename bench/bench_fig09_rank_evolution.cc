// Reproduces Figures 9 and 10: evolution of the ranks of the top-5 files of
// an early day (Fig. 9) and of a mid-trace day (Fig. 10). Paper: ranks of
// popular files remain stable over weeks, with a gradual drop late in the
// file's life.

#include <iostream>

#include "bench/bench_common.h"
#include "src/analysis/spread.h"
#include "src/common/table.h"

namespace {

void PrintRankTable(const edk::Trace& trace, int anchor_day, const char* figure) {
  const auto top = edk::TopFilesOnDay(trace, anchor_day, 5);
  const auto ranks = edk::FileRanksOverTime(trace, top);
  std::vector<std::string> headers = {"day"};
  for (size_t i = 0; i < top.size(); ++i) {
    headers.push_back("#" + std::to_string(i + 1));
  }
  std::cout << figure << " (top 5 of day " << anchor_day << "):\n";
  edk::AsciiTable table(headers);
  const size_t days = ranks.empty() ? 0 : ranks[0].size();
  for (size_t d = 0; d < days; ++d) {
    std::vector<std::string> row = {
        std::to_string(trace.first_day() + static_cast<int>(d))};
    for (const auto& series : ranks) {
      row.push_back(series[d] == 0 ? "-" : std::to_string(series[d]));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const edk::BenchOptions options = edk::ParseBenchOptions(argc, argv);
  edk::PrintBenchHeader("Figures 9-10: rank evolution of a day's top-5 files",
                        "popular files keep stable ranks over weeks; gradual drop late",
                        options);

  const edk::Trace filtered = edk::LoadOrGenerateFiltered(options);
  const int first = filtered.first_day();
  const int mid = first + (filtered.last_day() - first) / 2;
  PrintRankTable(filtered, first, "Figure 9");
  PrintRankTable(filtered, mid, "Figure 10");
  return 0;
}
