// Reproduces Figure 13: probability that two peers with a given number of
// files in common share at least one more, on one day's caches; overall and
// for audio files in two popularity bands. Paper: the curve rises steeply
// with the number of common files, and rare audio files cluster hardest.

#include <iostream>

#include "bench/bench_common.h"
#include "src/analysis/clustering.h"
#include "src/common/table.h"

int main(int argc, char** argv) {
  const edk::BenchOptions options = edk::ParseBenchOptions(argc, argv);
  edk::PrintBenchHeader(
      "Figure 13: clustering correlation (one day's caches)",
      "P(another common file | k in common) rises steeply; rare audio clusters most",
      options);

  const edk::Trace extrapolated = edk::LoadOrGenerateExtrapolated(options);
  const int day = extrapolated.first_day();
  const edk::StaticCaches caches = edk::BuildDayCaches(extrapolated, day);

  constexpr size_t kMaxK = 64;
  const auto all = edk::ComputeClusteringCurve(caches, kMaxK);
  const auto rare_mask =
      edk::MaskCategoryPopularity(extrapolated, edk::FileCategory::kAudio, 1, 10);
  const auto rare = edk::ComputeClusteringCurve(caches, kMaxK, &rare_mask);
  const auto popular_mask =
      edk::MaskCategoryPopularity(extrapolated, edk::FileCategory::kAudio, 30, 40);
  const auto popular = edk::ComputeClusteringCurve(caches, kMaxK, &popular_mask);

  edk::AsciiTable table({"files in common", "all files", "audio pop 1-10",
                         "audio pop 30-40"});
  for (size_t k : {1u, 2u, 3u, 5u, 8u, 12u, 20u, 32u, 48u, 64u}) {
    auto cell = [k](const edk::ClusteringCurve& curve) {
      if (curve.pairs_at_least.size() <= k || curve.pairs_at_least[k] == 0) {
        return std::string("-");
      }
      return edk::FormatPercent(curve.ProbabilityAt(k));
    };
    table.AddRow({std::to_string(k), cell(all), cell(rare), cell(popular)});
  }
  table.Print(std::cout);

  std::cout << "\npairs with >= 1 common file: all " << all.pairs_at_least[1]
            << ", rare audio " << rare.pairs_at_least[1] << ", audio pop 30-40 "
            << popular.pairs_at_least[1] << "\n";
  std::cout << "(paper: probability already > 80% for a handful of common rare-audio "
               "files)\n";
  return 0;
}
