// Reproduces Figure 3: files per day and non-empty caches per day after
// filtering and pessimistic extrapolation. The paper selects the analysis
// window (days 348-389) where at least 1M files and 7k non-empty caches
// are available each day.

#include <iostream>

#include "bench/bench_common.h"
#include "src/analysis/popularity.h"
#include "src/common/table.h"

int main(int argc, char** argv) {
  const edk::BenchOptions options = edk::ParseBenchOptions(argc, argv);
  edk::PrintBenchHeader("Figure 3: files and non-empty caches per day (extrapolated)",
                        ">= 1M files/day in >= 7k non-empty caches across the window",
                        options);

  const edk::Trace extrapolated = edk::LoadOrGenerateExtrapolated(options);
  const auto days = edk::ComputeDailyActivity(extrapolated);

  edk::AsciiTable table({"day", "files per day", "non-empty caches"});
  uint64_t min_files = ~0ull;
  uint32_t min_caches = ~0u;
  for (const auto& day : days) {
    table.AddRow({std::to_string(day.day), std::to_string(day.files_seen),
                  std::to_string(day.non_empty_caches)});
    min_files = std::min(min_files, day.files_seen);
    min_caches = std::min(min_caches, day.non_empty_caches);
  }
  table.Print(std::cout);
  std::cout << "\nwindow floor: " << min_files << " files/day, " << min_caches
            << " non-empty caches/day (paper floor: 1M files, 7k caches at 53k peers)\n";
  return 0;
}
