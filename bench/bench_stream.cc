// Out-of-core streaming pipeline bench (DESIGN.md §6h/§6i, EXPERIMENTS.md).
//
// Demonstrates the EDKT v2 pipeline at crawl scale: generate a multi-week
// trace for a population far beyond what a Trace can hold in RAM, then
// scan and analyse it day-by-day through the mmap-backed TraceReader —
// and report that the WHOLE run (generation + scan + analyses) stayed
// under the peak-RSS budget. The paper crawled 1.16 M distinct peers
// (§3); the default here is 10 M peers over 14 days.
//
//   bench_stream [--peers=N] [--files=N] [--days=N] [--online=PER_MYRIAD]
//                [--seed=N] [--block-bytes=N] [--threads=N]
//                [--rss-budget-mb=N] [--out=trace.edk2] [--resume] [--keep]
//                [--json=FILE]
//
// --out names the trace file (default bench_stream.edk2 in the working
// directory; deleted at exit unless --keep). --resume continues a partial
// generation — the writer truncates any torn tail and the (deterministic)
// hash model re-emits only the missing days. --threads sets the worker
// count for the parallel scan and the streaming analyses (0 = hardware
// concurrency). --block-bytes sets the day-block target for generation
// (0 = legacy block-less segments, which also disables the block-parallel
// scan). --rss-budget-mb sets the pass/fail RSS ceiling (default 2048).
// --json writes the committed BENCH_stream.json summary.
//
// Reported phases:
//   generate    GenerateScaleTrace: O(1) state per snapshot, bytes/s
//   scan(1)     serial decode of every day segment (ForEachSnapshot), GB/s
//   scan(N)     the same bytes through ParallelScanSnapshots at --threads;
//               the XOR checksum must equal the serial one (determinism
//               witness — both appear in the JSON)
//   day-view    materialise the densest day as a CacheStore (block-parallel
//               FromCsr fill) — the unit of memory the analyses pay for
//   analyses    StreamingDailyActivity, StreamingRankedSourcesOnDay,
//               StreamingFileSpreadOverTime (most-sourced file)
//
// The overlap/clustering kernels are exercised for byte-identity at small
// scale by tests/analysis/streaming_equivalence_test.cc; their cost is
// quadratic-ish in holders and not a scan-rate story, so they are not run
// at 10 M peers here.

#include <sys/resource.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "src/analysis/streaming.h"
#include "src/common/table.h"
#include "src/exec/parallel.h"
#include "src/trace/stream/parallel_scan.h"
#include "src/trace/stream/trace_reader.h"
#include "src/workload/stream_generate.h"

namespace {

struct Options {
  edk::ScaleTraceConfig config;
  edk::stream::TraceWriter::Options writer;
  std::string path = "bench_stream.edk2";
  std::string json_out;
  size_t threads = 0;  // 0 = hardware concurrency.
  uint64_t rss_budget_mb = 2048;
  bool resume = false;
  bool keep = false;
};

[[noreturn]] void Usage() {
  std::cerr << "usage: bench_stream [--peers=N] [--files=N] [--days=N]"
               " [--online=PER_MYRIAD] [--seed=N] [--block-bytes=N]"
               " [--threads=N] [--rss-budget-mb=N] [--out=FILE] [--resume]"
               " [--keep] [--json=FILE]\n";
  std::exit(2);
}

Options ParseOptions(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value = [arg](const char* prefix) -> const char* {
      const size_t n = std::strlen(prefix);
      return std::strncmp(arg, prefix, n) == 0 ? arg + n : nullptr;
    };
    if (const char* v = value("--peers=")) {
      options.config.num_peers = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--files=")) {
      options.config.num_files = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--days=")) {
      options.config.num_days = static_cast<int>(std::strtol(v, nullptr, 10));
    } else if (const char* v = value("--online=")) {
      options.config.online_per_myriad =
          static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (const char* v = value("--seed=")) {
      options.config.seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--block-bytes=")) {
      options.writer.block_target_bytes = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--threads=")) {
      options.threads = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--rss-budget-mb=")) {
      options.rss_budget_mb = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--out=")) {
      options.path = v;
    } else if (const char* v = value("--json=")) {
      options.json_out = v;
    } else if (std::strcmp(arg, "--resume") == 0) {
      options.resume = true;
    } else if (std::strcmp(arg, "--keep") == 0) {
      options.keep = true;
    } else {
      std::cerr << "bench_stream: unknown flag '" << arg << "'\n";
      Usage();
    }
  }
  return options;
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

// Peak resident set of this process, in BYTES. getrusage reports ru_maxrss
// in kibibytes on Linux (man getrusage(2)); the *1024 here converts once so
// every consumer — the table, the JSON, the budget check — sees bytes and
// no reader has to remember the platform unit.
uint64_t PeakRssBytes() {
  struct rusage usage {};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<uint64_t>(usage.ru_maxrss) * 1024;
}

std::string FormatDouble(double v, const char* fmt = "%.3f") {
  char cell[64];
  std::snprintf(cell, sizeof(cell), fmt, v);
  return cell;
}

// One full-trace decode: every snapshot of every day. The XOR/sum
// accumulators keep the decode from being optimised away and double as a
// determinism witness — serial and parallel scans must agree exactly
// (XOR and addition are commutative, so task order cannot matter).
struct ScanResult {
  bool ok = false;
  double seconds = 0.0;
  uint64_t snapshots = 0;
  uint64_t entries = 0;
  uint64_t checksum = 0;
};

uint64_t SnapshotWord(uint32_t peer, const uint32_t* files, size_t count) {
  return (static_cast<uint64_t>(peer) << 32) ^
         (count == 0 ? 0 : files[count - 1]);
}

ScanResult ScanSerial(const edk::stream::TraceReader& reader) {
  ScanResult result;
  const auto start = std::chrono::steady_clock::now();
  edk::stream::DecodeArena arena;
  for (const auto& info : reader.days()) {
    const bool ok = reader.ForEachSnapshot(
        info, arena, [&](uint32_t peer, const uint32_t* files, size_t count) {
          ++result.snapshots;
          result.entries += count;
          result.checksum ^= SnapshotWord(peer, files, count);
        });
    if (!ok) {
      std::cerr << "bench_stream: corrupt day " << info.day << "\n";
      return result;
    }
  }
  result.seconds = SecondsSince(start);
  result.ok = true;
  return result;
}

ScanResult ScanParallel(const edk::stream::TraceReader& reader,
                        size_t threads) {
  ScanResult result;
  const auto start = std::chrono::steady_clock::now();
  const std::vector<edk::stream::ScanTask> tasks =
      edk::stream::MakeScanTasks(reader);
  std::vector<ScanResult> partials(tasks.size());
  const bool ok = edk::stream::ParallelScanSnapshots(
      reader, tasks,
      [&](size_t t, uint32_t peer, const uint32_t* files, size_t count) {
        ++partials[t].snapshots;
        partials[t].entries += count;
        partials[t].checksum ^= SnapshotWord(peer, files, count);
      },
      threads);
  if (!ok) {
    std::cerr << "bench_stream: parallel scan failed (corrupt block?)\n";
    return result;
  }
  for (const ScanResult& partial : partials) {
    result.snapshots += partial.snapshots;
    result.entries += partial.entries;
    result.checksum ^= partial.checksum;
  }
  result.seconds = SecondsSince(start);
  result.ok = true;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const Options options = ParseOptions(argc, argv);
  const edk::ScaleTraceConfig& config = options.config;
  edk::SetDefaultThreads(options.threads);
  const size_t threads = edk::DefaultThreads();
  std::cerr << "bench_stream: " << config.num_peers << " peers, "
            << config.num_files << " files, " << config.num_days
            << " days (online " << config.online_per_myriad
            << "/10000, seed " << config.seed << ", block target "
            << options.writer.block_target_bytes << " B, " << threads
            << " threads) -> " << options.path << "\n";

  // Phase 1: generation. O(1) model state per snapshot; the writer holds
  // one day's columns at a time.
  auto start = std::chrono::steady_clock::now();
  std::string error;
  const auto gen = edk::GenerateScaleTrace(config, options.path,
                                           options.resume, &error,
                                           options.writer);
  if (!gen.has_value()) {
    std::cerr << "bench_stream: generation failed: " << error << "\n";
    return 1;
  }
  const double generate_seconds = SecondsSince(start);
  std::cerr << "[generate] " << gen->days_written << " days ("
            << gen->days_skipped << " skipped), " << gen->snapshots
            << " snapshots, " << gen->bytes_written << " bytes in "
            << FormatDouble(generate_seconds) << " s\n";

  // Phase 2: the scan matrix. Serial first (the baseline every speedup in
  // the JSON is measured against), then the block-parallel scan at
  // --threads over the same mapped bytes.
  auto reader = edk::stream::TraceReader::Open(options.path, &error);
  if (!reader.has_value()) {
    std::cerr << "bench_stream: open failed: " << error << "\n";
    return 1;
  }
  uint64_t total_blocks = 0;
  for (const auto& info : reader->days()) {
    total_blocks += edk::stream::TraceReader::BlockCount(info);
  }
  const double scan_gb = static_cast<double>(reader->size_bytes()) / 1e9;
  const ScanResult serial = ScanSerial(*reader);
  if (!serial.ok) {
    return 1;
  }
  const double serial_gb_per_s =
      serial.seconds > 0 ? scan_gb / serial.seconds : 0.0;
  std::cerr << "[scan 1t] " << serial.snapshots << " snapshots, "
            << serial.entries << " entries, " << FormatDouble(scan_gb)
            << " GB in " << FormatDouble(serial.seconds) << " s ("
            << FormatDouble(serial_gb_per_s) << " GB/s)\n";

  const ScanResult parallel = ScanParallel(*reader, threads);
  if (!parallel.ok) {
    return 1;
  }
  const double parallel_gb_per_s =
      parallel.seconds > 0 ? scan_gb / parallel.seconds : 0.0;
  const double speedup =
      parallel.seconds > 0 ? serial.seconds / parallel.seconds : 0.0;
  std::cerr << "[scan " << threads << "t] " << FormatDouble(scan_gb)
            << " GB in " << FormatDouble(parallel.seconds) << " s ("
            << FormatDouble(parallel_gb_per_s) << " GB/s, "
            << FormatDouble(speedup, "%.2f") << "x)\n";
  if (parallel.checksum != serial.checksum ||
      parallel.snapshots != serial.snapshots ||
      parallel.entries != serial.entries) {
    std::cerr << "bench_stream: PARALLEL SCAN MISMATCH (serial checksum "
              << serial.checksum << ", parallel " << parallel.checksum
              << ")\n";
    return 1;
  }

  // Phase 3: materialise the densest day view once — this is the largest
  // single allocation any streaming analysis makes.
  const edk::stream::TraceReader::DayInfo* densest = nullptr;
  for (const auto& info : reader->days()) {
    if (densest == nullptr || info.file_entries > densest->file_entries) {
      densest = &info;
    }
  }
  double day_view_seconds = 0.0;
  uint64_t day_view_peers = 0;
  if (densest != nullptr) {
    start = std::chrono::steady_clock::now();
    auto view = reader->ReadDay(*densest, &error);
    if (!view.has_value()) {
      std::cerr << "bench_stream: ReadDay failed: " << error << "\n";
      return 1;
    }
    day_view_seconds = SecondsSince(start);
    day_view_peers = view->peers.size();
    std::cerr << "[day-view] day " << densest->day << ": " << day_view_peers
              << " peers, " << densest->file_entries << " entries in "
              << FormatDouble(day_view_seconds) << " s\n";
  }

  // Phase 4: streaming analyses (linear-cost ones; see header comment).
  start = std::chrono::steady_clock::now();
  const auto activity = edk::StreamingDailyActivity(*reader);
  const double activity_seconds = SecondsSince(start);

  const int last_day = reader->last_day();
  start = std::chrono::steady_clock::now();
  const auto sources = edk::StreamingRankedSourcesOnDay(*reader, last_day);
  const double sources_seconds = SecondsSince(start);

  // Fig. 8 twin on the most-sourced file of the last day.
  edk::FileId top_file(0);
  {
    // RankedSources* returns sorted counts without ids; recover the argmax
    // id with a direct per-file counting pass over the last day.
    uint32_t best = 0;
    edk::stream::DecodeArena arena;
    std::vector<uint32_t> per_file;
    if (const auto* info = reader->FindDay(last_day)) {
      per_file.assign(reader->file_count(), 0);
      reader->ForEachSnapshot(
          *info, arena, [&](uint32_t, const uint32_t* files, size_t count) {
            for (size_t f = 0; f < count; ++f) {
              ++per_file[files[f]];
            }
          });
      for (uint32_t f = 0; f < per_file.size(); ++f) {
        if (per_file[f] > best) {
          best = per_file[f];
          top_file = edk::FileId(f);
        }
      }
    }
  }
  start = std::chrono::steady_clock::now();
  const auto spread = edk::StreamingFileSpreadOverTime(*reader, top_file);
  const double spread_seconds = SecondsSince(start);

  const uint64_t peak_rss = PeakRssBytes();
  const uint64_t rss_budget_bytes = options.rss_budget_mb * (1ull << 20);
  const bool under_budget = peak_rss < rss_budget_bytes;

  std::cout << "population: " << config.num_peers << " peers, "
            << config.num_files << " files, " << activity.size()
            << " observed days, " << serial.snapshots << " snapshots, "
            << serial.entries << " file entries\n"
            << "trace file: " << reader->size_bytes() << " bytes, "
            << total_blocks << " day blocks\n\n";
  edk::AsciiTable table({"phase", "wall s", "rate"});
  table.AddRow({"generate", FormatDouble(generate_seconds),
                FormatDouble(generate_seconds > 0
                                 ? static_cast<double>(gen->bytes_written) /
                                       1e6 / generate_seconds
                                 : 0.0) +
                    " MB/s"});
  table.AddRow({"scan 1t", FormatDouble(serial.seconds),
                FormatDouble(serial_gb_per_s) + " GB/s"});
  table.AddRow({"scan " + std::to_string(threads) + "t",
                FormatDouble(parallel.seconds),
                FormatDouble(parallel_gb_per_s) + " GB/s"});
  table.AddRow({"day-view", FormatDouble(day_view_seconds),
                std::to_string(day_view_peers) + " peers"});
  table.AddRow({"daily-activity", FormatDouble(activity_seconds),
                std::to_string(activity.size()) + " days"});
  table.AddRow({"ranked-sources", FormatDouble(sources_seconds),
                std::to_string(sources.size()) + " shared files"});
  table.AddRow({"file-spread", FormatDouble(spread_seconds),
                std::to_string(spread.size()) + " days"});
  table.Print(std::cout);
  std::cout << "\npeak RSS: " << peak_rss / (1024 * 1024) << " MiB ("
            << (under_budget ? "under" : "OVER") << " the "
            << options.rss_budget_mb << " MiB budget)\n"
            << "scan checksum: " << serial.checksum << " (parallel scan "
            << "matches)\n";

  if (!options.json_out.empty()) {
    std::ofstream out(options.json_out);
    if (!out) {
      std::cerr << "bench_stream: cannot write " << options.json_out << "\n";
      return 1;
    }
    out << "{\n  \"schema\": \"edk.bench_stream.v2\",\n";
    out << "  \"population\": {\"peers\": " << config.num_peers
        << ", \"files\": " << config.num_files << ", \"days\": "
        << config.num_days << ", \"online_per_myriad\": "
        << config.online_per_myriad << ", \"seed\": " << config.seed
        << "},\n";
    out << "  \"trace\": {\"bytes\": " << reader->size_bytes()
        << ", \"observed_days\": " << reader->days().size()
        << ", \"blocks\": " << total_blocks << ", \"block_target_bytes\": "
        << options.writer.block_target_bytes << ", \"snapshots\": "
        << serial.snapshots << ", \"file_entries\": " << serial.entries
        << ", \"checksum\": " << serial.checksum << "},\n";
    out << "  \"threads\": " << threads << ",\n";
    out << "  \"hardware_threads\": " << edk::HardwareThreads() << ",\n";
    out << "  \"generate\": {\"wall_seconds\": "
        << FormatDouble(generate_seconds) << ", \"days_written\": "
        << gen->days_written << ", \"days_skipped\": " << gen->days_skipped
        << ", \"mb_per_second\": "
        << FormatDouble(generate_seconds > 0
                            ? static_cast<double>(gen->bytes_written) / 1e6 /
                                  generate_seconds
                            : 0.0)
        << "},\n";
    out << "  \"scan_serial\": {\"wall_seconds\": "
        << FormatDouble(serial.seconds) << ", \"gb_per_second\": "
        << FormatDouble(serial_gb_per_s) << ", \"checksum\": "
        << serial.checksum << "},\n";
    out << "  \"scan_parallel\": {\"threads\": " << threads
        << ", \"wall_seconds\": " << FormatDouble(parallel.seconds)
        << ", \"gb_per_second\": " << FormatDouble(parallel_gb_per_s)
        << ", \"checksum\": " << parallel.checksum << ", \"speedup\": "
        << FormatDouble(speedup, "%.2f") << "},\n";
    out << "  \"day_view\": {\"wall_seconds\": "
        << FormatDouble(day_view_seconds) << ", \"peers\": " << day_view_peers
        << "},\n";
    out << "  \"analyses\": {\"daily_activity_seconds\": "
        << FormatDouble(activity_seconds) << ", \"ranked_sources_seconds\": "
        << FormatDouble(sources_seconds) << ", \"file_spread_seconds\": "
        << FormatDouble(spread_seconds) << "},\n";
    out << "  \"peak_rss_bytes\": " << peak_rss << ",\n";
    out << "  \"rss_budget_mb\": " << options.rss_budget_mb << ",\n";
    out << "  \"under_rss_budget\": " << (under_budget ? "true" : "false")
        << "\n}\n";
    out.close();
    if (!out) {
      std::cerr << "bench_stream: write to " << options.json_out
                << " failed\n";
      return 1;
    }
  }

  reader.reset();  // Unmap before deleting the file.
  if (!options.keep) {
    std::remove(options.path.c_str());
  }
  return under_budget ? 0 : 1;
}
