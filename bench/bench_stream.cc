// Out-of-core streaming pipeline bench (DESIGN.md §6h, EXPERIMENTS.md).
//
// Demonstrates the EDKT v2 pipeline at crawl scale: generate a multi-week
// trace for a population far beyond what a Trace can hold in RAM, then
// scan and analyse it day-by-day through the mmap-backed TraceReader —
// and report that the WHOLE run (generation + scan + analyses) stayed
// under the 2 GB peak-RSS budget. The paper crawled 1.16 M distinct peers
// (§3); the default here is 10 M peers over 14 days.
//
//   bench_stream [--peers=N] [--files=N] [--days=N] [--online=PER_MYRIAD]
//                [--seed=N] [--out=trace.edk2] [--resume] [--keep]
//                [--json=FILE]
//
// --out names the trace file (default bench_stream.edk2 in the working
// directory; deleted at exit unless --keep). --resume continues a partial
// generation — the writer truncates any torn tail and the (deterministic)
// hash model re-emits only the missing days. --json writes the committed
// BENCH_stream.json summary: generation rate, full-scan GB/s, per-analysis
// wall times, and peak RSS.
//
// Reported phases:
//   generate   GenerateScaleTrace: O(1) state per snapshot, bytes/s
//   scan       decode every day segment (ForEachSnapshot), GB/s
//   day-view   materialise the densest day as a CacheStore (FromCsr +
//              transpose) — the unit of memory the analyses pay for
//   analyses   StreamingDailyActivity, StreamingRankedSourcesOnDay,
//              StreamingFileSpreadOverTime (most-sourced file)
//
// The overlap/clustering kernels are exercised for byte-identity at small
// scale by tests/analysis/streaming_equivalence_test.cc; their cost is
// quadratic-ish in holders and not a scan-rate story, so they are not run
// at 10 M peers here.

#include <sys/resource.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "src/analysis/streaming.h"
#include "src/common/table.h"
#include "src/trace/stream/trace_reader.h"
#include "src/workload/stream_generate.h"

namespace {

struct Options {
  edk::ScaleTraceConfig config;
  std::string path = "bench_stream.edk2";
  std::string json_out;
  bool resume = false;
  bool keep = false;
};

[[noreturn]] void Usage() {
  std::cerr << "usage: bench_stream [--peers=N] [--files=N] [--days=N]"
               " [--online=PER_MYRIAD] [--seed=N] [--out=FILE] [--resume]"
               " [--keep] [--json=FILE]\n";
  std::exit(2);
}

Options ParseOptions(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value = [arg](const char* prefix) -> const char* {
      const size_t n = std::strlen(prefix);
      return std::strncmp(arg, prefix, n) == 0 ? arg + n : nullptr;
    };
    if (const char* v = value("--peers=")) {
      options.config.num_peers = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--files=")) {
      options.config.num_files = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--days=")) {
      options.config.num_days = static_cast<int>(std::strtol(v, nullptr, 10));
    } else if (const char* v = value("--online=")) {
      options.config.online_per_myriad =
          static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (const char* v = value("--seed=")) {
      options.config.seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--out=")) {
      options.path = v;
    } else if (const char* v = value("--json=")) {
      options.json_out = v;
    } else if (std::strcmp(arg, "--resume") == 0) {
      options.resume = true;
    } else if (std::strcmp(arg, "--keep") == 0) {
      options.keep = true;
    } else {
      std::cerr << "bench_stream: unknown flag '" << arg << "'\n";
      Usage();
    }
  }
  return options;
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

// Peak resident set of this process, in bytes (ru_maxrss is KiB on Linux).
uint64_t PeakRssBytes() {
  struct rusage usage {};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<uint64_t>(usage.ru_maxrss) * 1024;
}

std::string FormatDouble(double v, const char* fmt = "%.3f") {
  char cell[64];
  std::snprintf(cell, sizeof(cell), fmt, v);
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  const Options options = ParseOptions(argc, argv);
  const edk::ScaleTraceConfig& config = options.config;
  std::cerr << "bench_stream: " << config.num_peers << " peers, "
            << config.num_files << " files, " << config.num_days
            << " days (online " << config.online_per_myriad
            << "/10000, seed " << config.seed << ") -> " << options.path
            << "\n";

  // Phase 1: generation. O(1) model state per snapshot; the writer holds
  // one day's columns at a time.
  auto start = std::chrono::steady_clock::now();
  std::string error;
  const auto gen = edk::GenerateScaleTrace(config, options.path,
                                           options.resume, &error);
  if (!gen.has_value()) {
    std::cerr << "bench_stream: generation failed: " << error << "\n";
    return 1;
  }
  const double generate_seconds = SecondsSince(start);
  std::cerr << "[generate] " << gen->days_written << " days ("
            << gen->days_skipped << " skipped), " << gen->snapshots
            << " snapshots, " << gen->bytes_written << " bytes in "
            << FormatDouble(generate_seconds) << " s\n";

  // Phase 2: full scan. Decode every day segment snapshot-by-snapshot; the
  // checksum keeps the decode from being optimised away and doubles as a
  // determinism witness in the JSON.
  start = std::chrono::steady_clock::now();
  auto reader = edk::stream::TraceReader::Open(options.path, &error);
  if (!reader.has_value()) {
    std::cerr << "bench_stream: open failed: " << error << "\n";
    return 1;
  }
  uint64_t scan_snapshots = 0;
  uint64_t scan_entries = 0;
  uint64_t checksum = 0;
  std::vector<uint32_t> scratch;
  for (const auto& info : reader->days()) {
    const bool ok = reader->ForEachSnapshot(
        info, scratch,
        [&](uint32_t peer, const uint32_t* files, size_t count) {
          ++scan_snapshots;
          scan_entries += count;
          checksum ^= (static_cast<uint64_t>(peer) << 32) ^
                      (count == 0 ? 0 : files[count - 1]);
        });
    if (!ok) {
      std::cerr << "bench_stream: corrupt day " << info.day << "\n";
      return 1;
    }
  }
  const double scan_seconds = SecondsSince(start);
  const double scan_gb = static_cast<double>(reader->size_bytes()) / 1e9;
  const double scan_gb_per_s = scan_seconds > 0 ? scan_gb / scan_seconds : 0.0;
  std::cerr << "[scan] " << scan_snapshots << " snapshots, " << scan_entries
            << " entries, " << FormatDouble(scan_gb) << " GB in "
            << FormatDouble(scan_seconds) << " s ("
            << FormatDouble(scan_gb_per_s) << " GB/s)\n";

  // Phase 3: materialise the densest day view once — this is the largest
  // single allocation any streaming analysis makes.
  const edk::stream::TraceReader::DayInfo* densest = nullptr;
  for (const auto& info : reader->days()) {
    if (densest == nullptr || info.file_entries > densest->file_entries) {
      densest = &info;
    }
  }
  double day_view_seconds = 0.0;
  uint64_t day_view_peers = 0;
  if (densest != nullptr) {
    start = std::chrono::steady_clock::now();
    auto view = reader->ReadDay(*densest, &error);
    if (!view.has_value()) {
      std::cerr << "bench_stream: ReadDay failed: " << error << "\n";
      return 1;
    }
    day_view_seconds = SecondsSince(start);
    day_view_peers = view->peers.size();
    std::cerr << "[day-view] day " << densest->day << ": " << day_view_peers
              << " peers, " << densest->file_entries << " entries in "
              << FormatDouble(day_view_seconds) << " s\n";
  }

  // Phase 4: streaming analyses (linear-cost ones; see header comment).
  start = std::chrono::steady_clock::now();
  const auto activity = edk::StreamingDailyActivity(*reader);
  const double activity_seconds = SecondsSince(start);

  const int last_day = reader->last_day();
  start = std::chrono::steady_clock::now();
  const auto sources = edk::StreamingRankedSourcesOnDay(*reader, last_day);
  const double sources_seconds = SecondsSince(start);

  // Fig. 8 twin on the most-sourced file of the last day.
  edk::FileId top_file(0);
  {
    // RankedSources* returns sorted counts without ids; recover the argmax
    // id with a direct per-file counting pass over the last day.
    uint32_t best = 0;
    std::vector<uint32_t> scratch2;
    std::vector<uint32_t> per_file;
    if (const auto* info = reader->FindDay(last_day)) {
      per_file.assign(reader->file_count(), 0);
      reader->ForEachSnapshot(
          *info, scratch2,
          [&](uint32_t, const uint32_t* files, size_t count) {
            for (size_t f = 0; f < count; ++f) {
              ++per_file[files[f]];
            }
          });
      for (uint32_t f = 0; f < per_file.size(); ++f) {
        if (per_file[f] > best) {
          best = per_file[f];
          top_file = edk::FileId(f);
        }
      }
    }
  }
  start = std::chrono::steady_clock::now();
  const auto spread = edk::StreamingFileSpreadOverTime(*reader, top_file);
  const double spread_seconds = SecondsSince(start);

  const uint64_t peak_rss = PeakRssBytes();
  const bool under_budget = peak_rss < (2ull << 30);

  std::cout << "population: " << config.num_peers << " peers, "
            << config.num_files << " files, " << activity.size()
            << " observed days, " << scan_snapshots << " snapshots, "
            << scan_entries << " file entries\n"
            << "trace file: " << reader->size_bytes() << " bytes\n\n";
  edk::AsciiTable table({"phase", "wall s", "rate"});
  table.AddRow({"generate", FormatDouble(generate_seconds),
                FormatDouble(generate_seconds > 0
                                 ? static_cast<double>(gen->bytes_written) /
                                       1e6 / generate_seconds
                                 : 0.0) +
                    " MB/s"});
  table.AddRow({"scan", FormatDouble(scan_seconds),
                FormatDouble(scan_gb_per_s) + " GB/s"});
  table.AddRow({"day-view", FormatDouble(day_view_seconds),
                std::to_string(day_view_peers) + " peers"});
  table.AddRow({"daily-activity", FormatDouble(activity_seconds),
                std::to_string(activity.size()) + " days"});
  table.AddRow({"ranked-sources", FormatDouble(sources_seconds),
                std::to_string(sources.size()) + " shared files"});
  table.AddRow({"file-spread", FormatDouble(spread_seconds),
                std::to_string(spread.size()) + " days"});
  table.Print(std::cout);
  std::cout << "\npeak RSS: " << peak_rss / (1024 * 1024) << " MiB ("
            << (under_budget ? "under" : "OVER") << " the 2 GB budget)\n"
            << "scan checksum: " << checksum << "\n";

  if (!options.json_out.empty()) {
    std::ofstream out(options.json_out);
    if (!out) {
      std::cerr << "bench_stream: cannot write " << options.json_out << "\n";
      return 1;
    }
    out << "{\n  \"schema\": \"edk.bench_stream.v1\",\n";
    out << "  \"population\": {\"peers\": " << config.num_peers
        << ", \"files\": " << config.num_files << ", \"days\": "
        << config.num_days << ", \"online_per_myriad\": "
        << config.online_per_myriad << ", \"seed\": " << config.seed
        << "},\n";
    out << "  \"trace\": {\"bytes\": " << reader->size_bytes()
        << ", \"observed_days\": " << reader->days().size()
        << ", \"snapshots\": " << scan_snapshots << ", \"file_entries\": "
        << scan_entries << ", \"checksum\": " << checksum << "},\n";
    out << "  \"generate\": {\"wall_seconds\": "
        << FormatDouble(generate_seconds) << ", \"days_written\": "
        << gen->days_written << ", \"days_skipped\": " << gen->days_skipped
        << ", \"mb_per_second\": "
        << FormatDouble(generate_seconds > 0
                            ? static_cast<double>(gen->bytes_written) / 1e6 /
                                  generate_seconds
                            : 0.0)
        << "},\n";
    out << "  \"scan\": {\"wall_seconds\": " << FormatDouble(scan_seconds)
        << ", \"gb_per_second\": " << FormatDouble(scan_gb_per_s) << "},\n";
    out << "  \"day_view\": {\"wall_seconds\": "
        << FormatDouble(day_view_seconds) << ", \"peers\": " << day_view_peers
        << "},\n";
    out << "  \"analyses\": {\"daily_activity_seconds\": "
        << FormatDouble(activity_seconds) << ", \"ranked_sources_seconds\": "
        << FormatDouble(sources_seconds) << ", \"file_spread_seconds\": "
        << FormatDouble(spread_seconds) << "},\n";
    out << "  \"peak_rss_bytes\": " << peak_rss << ",\n";
    out << "  \"under_2gb_budget\": " << (under_budget ? "true" : "false")
        << "\n}\n";
    out.close();
    if (!out) {
      std::cerr << "bench_stream: write to " << options.json_out
                << " failed\n";
      return 1;
    }
  }

  reader.reset();  // Unmap before deleting the file.
  if (!options.keep) {
    std::remove(options.path.c_str());
  }
  return under_budget ? 0 : 1;
}
