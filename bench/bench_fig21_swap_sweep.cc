// Reproduces Figure 21: LRU-10 hit rate as the trace is progressively
// randomised by file swapping. Paper: from 35% on the real trace down to 5%
// when fully mixed — the 30-point gap is attributable only to genuine
// semantic proximity.

#include <iostream>
#include <iterator>

#include "bench/bench_common.h"
#include "src/common/rng.h"
#include "src/common/table.h"
#include "src/exec/parallel.h"
#include "src/semantic/search_sim.h"
#include "src/trace/randomize.h"

int main(int argc, char** argv) {
  const edk::BenchOptions options = edk::ParseBenchOptions(argc, argv);
  edk::PrintBenchHeader("Figure 21: hit rate vs number of file swappings",
                        "35% unrandomised -> 5% fully randomised (LRU, 10 neighbours)",
                        options);

  const edk::Trace filtered = edk::LoadOrGenerateFiltered(options);
  const edk::StaticCaches base = edk::BuildUnionCaches(filtered);
  const uint64_t full_swaps = edk::RecommendedSwapCount(base);

  edk::AsciiTable table({"swaps", "hit rate", "successful swaps"});
  const double steps[] = {0.0, 0.05, 0.1, 0.2, 0.4, 0.7, 1.0, 1.5};
  constexpr size_t kSteps = std::size(steps);

  // Each randomisation level is an independent (randomise, simulate) chain
  // with its own Rng, so the sweep fans out with bit-identical results.
  struct StepResult {
    uint64_t swaps = 0;
    uint64_t successful_swaps = 0;
    double rate = 0;
  };
  std::vector<StepResult> results(kSteps);
  edk::SweepTimer timer("fig21 swap sweep");
  edk::ParallelFor(0, kSteps, [&](size_t i) {
    const uint64_t swaps =
        static_cast<uint64_t>(steps[i] * static_cast<double>(full_swaps));
    edk::Rng rng(options.workload.seed ^ 0xabcdULL);
    const edk::RandomizeResult randomized = edk::RandomizeCaches(base, swaps, rng);
    edk::SearchSimConfig config;
    config.strategy = edk::StrategyKind::kLru;
    config.list_size = 10;
    config.seed = options.workload.seed;
    config.track_load = false;
    results[i] = {swaps, randomized.successful_swaps,
                  RunSearchSimulation(randomized.caches, config).OneHopHitRate()};
  });
  timer.Report(kSteps);

  for (const StepResult& r : results) {
    table.AddRow({std::to_string(r.swaps), edk::FormatPercent(r.rate),
                  std::to_string(r.successful_swaps)});
  }
  const double first_rate = results.front().rate;
  const double last_rate = results.back().rate;
  table.Print(std::cout);
  std::cout << "\nsemantic share of the hit rate: "
            << edk::FormatPercent(first_rate - last_rate)
            << " (paper: ~30 points; residual " << edk::FormatPercent(last_rate)
            << " explained by popular files + generous peers)\n";
  return 0;
}
