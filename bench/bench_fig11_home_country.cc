// Reproduces Figure 11: CDF of the proportion of a file's sources located
// in the file's home country, split by average popularity. Paper: strong
// geographic clustering for unpopular files (50% of files with popularity
// >= 20 have all sources in one country; only 10% for popularity >= 50).

#include <iostream>

#include "bench/bench_common.h"
#include "src/analysis/geo_clustering.h"
#include "src/common/stats.h"
#include "src/common/table.h"

int main(int argc, char** argv) {
  const edk::BenchOptions options = edk::ParseBenchOptions(argc, argv);
  edk::PrintBenchHeader(
      "Figure 11: fraction of sources in the home country (CDF by popularity)",
      "geographic clustering strongest for unpopular files; popular files "
      "have no clear home country",
      options);

  const edk::Trace filtered = edk::LoadOrGenerateFiltered(options);

  // Our trace is a ~1/6 scale of the paper's, so the popularity thresholds
  // are scaled accordingly while keeping the ordering of the curves.
  const double thresholds[] = {0.1, 0.5, 1, 2, 5, 10};
  std::vector<edk::EmpiricalCdf> cdfs;
  std::vector<std::string> headers = {"% sources in home country <="};
  for (double threshold : thresholds) {
    cdfs.emplace_back(edk::HomeCountryFractions(filtered, threshold));
    headers.push_back("pop>=" + edk::AsciiTable::FormatCell(threshold));
  }

  edk::AsciiTable table(headers);
  for (double fraction : {0.2, 0.4, 0.6, 0.8, 0.99}) {
    std::vector<std::string> row = {edk::FormatPercent(fraction, 0)};
    for (const auto& cdf : cdfs) {
      row.push_back(cdf.size() == 0 ? "-" : edk::FormatPercent(cdf.At(fraction)));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);

  std::cout << "\nfiles with ALL sources in one country, by popularity:\n";
  for (size_t i = 0; i < cdfs.size(); ++i) {
    if (cdfs[i].size() == 0) {
      continue;
    }
    std::cout << "  pop >= " << thresholds[i] << ": "
              << edk::FormatPercent(1.0 - cdfs[i].At(0.999)) << "  (" << cdfs[i].size()
              << " files)\n";
  }
  std::cout << "(paper ordering: lower popularity => more single-country files)\n";
  return 0;
}
