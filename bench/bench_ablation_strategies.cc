// Ablation: neighbour-list management strategies, including the
// popularity-weighted variant (the fix suggested in §5.3.2 / [30] to keep
// semantic lists from being contaminated by popular-file links). The
// advantage of popularity weighting should widen on the rare-file workload
// (popular files removed).

#include <iostream>

#include "bench/bench_common.h"
#include "src/common/table.h"
#include "src/semantic/scenario.h"
#include "src/semantic/search_sim.h"

int main(int argc, char** argv) {
  const edk::BenchOptions options = edk::ParseBenchOptions(argc, argv);
  edk::PrintBenchHeader("Ablation: list-management strategies (incl. popularity-aware)",
                        "popularity weighting should help most once popular "
                        "files dominate lists",
                        options);

  const edk::Trace filtered = edk::LoadOrGenerateFiltered(options);
  const edk::StaticCaches base = edk::BuildUnionCaches(filtered);
  const edk::StaticCaches rare_only =
      edk::RemoveTopFiles(base, 0.15, filtered.file_count());

  const edk::StrategyKind strategies[] = {
      edk::StrategyKind::kLru, edk::StrategyKind::kHistory,
      edk::StrategyKind::kPopularityWeighted, edk::StrategyKind::kRandom};

  for (const auto& [label, caches] :
       {std::pair<const char*, const edk::StaticCaches*>{"full workload", &base},
        {"rare files only (top 15% popular removed)", &rare_only}}) {
    std::cout << "--- " << label << " ---\n";
    edk::AsciiTable table({"neighbours", "LRU", "History", "PopularityWeighted",
                           "Random"});
    for (size_t k : {5u, 10u, 20u, 40u}) {
      std::vector<std::string> row = {std::to_string(k)};
      for (edk::StrategyKind strategy : strategies) {
        edk::SearchSimConfig config;
        config.strategy = strategy;
        config.list_size = k;
        config.seed = options.workload.seed;
        config.track_load = false;
        row.push_back(
            edk::FormatPercent(RunSearchSimulation(*caches, config).OneHopHitRate()));
      }
      table.AddRow(std::move(row));
    }
    table.Print(std::cout);
    std::cout << "\n";
  }
  return 0;
}
