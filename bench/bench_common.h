// Shared support for the figure/table reproduction harnesses.
//
// Every bench binary regenerates one table or figure of the paper from a
// synthetic workload. The workload scale is configurable (--peers, --files,
// --days, --seed, --scale small|medium|large) and generated traces are
// cached on disk keyed by their configuration, so running the whole bench
// directory does not regenerate the same trace twenty times.

#ifndef BENCH_BENCH_COMMON_H_
#define BENCH_BENCH_COMMON_H_

#include <chrono>
#include <cstddef>
#include <string>

#include "src/obs/flags.h"
#include "src/trace/trace.h"
#include "src/workload/config.h"
#include "src/workload/generator.h"

namespace edk {

struct BenchOptions {
  WorkloadConfig workload;
  std::string scale = "medium";
  bool no_cache = false;
  // Worker threads for parallel sweeps (0 = hardware concurrency; 1
  // reproduces the historical single-core behaviour). Sweep results are
  // bit-identical for every value — see src/exec/parallel.h.
  size_t threads = 0;
  // Independent randomisation trials for trial-averaged benches
  // (bench_fig14_randomized).
  size_t trials = 8;
  // Shards for the edk::sim::ShardedEngine sections (bench_ext_gossip,
  // bench_ext_dynamic) and the sweep ceiling for bench_scale. Results are
  // bit-identical for every value — see src/sim/sharded_engine.h.
  size_t shards = 1;
  // Gossip rounds for the sharded scenario sections (0 = per-bench
  // default).
  size_t rounds = 0;
  // Placement policies for bench_scale: "all" sweeps every policy,
  // otherwise a single sim::PlacementPolicy name ("roundrobin",
  // "contiguous", "interest").
  std::string placement = "all";
  // Adaptive engine window cap as a multiple of the lookahead for the
  // sharded scenario sections (<= 1 = fixed lookahead-wide windows).
  double window_factor = 1.0;
  // Gossip explore/exploit mix for the sharded scenario sections: explore
  // every N-th round (0 = per-bench default; see ShardedGossipConfig).
  size_t explore_every = 0;
  // When non-empty, benches that support it (bench_scale) write their
  // machine-readable result summary to this path.
  std::string json_out;
  // Observability sinks shared by every bench and tool: --metrics-out
  // writes a JSON metrics snapshot at exit, --trace-out enables the
  // edk::obs trace layer and writes the trace at exit, --trace-sample
  // keeps 1-in-N sampled records. See src/obs/flags.h.
  obs::ObsFlagValues obs;
};

// Parses --peers=N --files=N --topics=N --days=N --seed=N --scale=S
// --threads=N --trials=N --shards=N --rounds=N --placement=P
// --window-factor=F --no-cache --json=FILE
// plus the shared observability flags (src/obs/flags.h); unknown flags
// abort with a usage message. Also applies --threads via
// SetDefaultThreads() so library-level ParallelFor loops pick it up, and
// activates the observability sinks (ApplyObsFlags).
BenchOptions ParseBenchOptions(int argc, char** argv);

// Wall-clock timer for a parallel sweep. Report() writes to stderr so that
// stdout (the figure/table data) stays bit-identical across --threads
// values while the speedup is still recorded in the bench output.
class SweepTimer {
 public:
  explicit SweepTimer(std::string name);
  // Emits "[sweep] <name>: <tasks> tasks in <ms> ms (threads=<n>)".
  void Report(size_t tasks) const;

 private:
  std::string name_;
  std::chrono::steady_clock::time_point start_;
};

// Generates (or loads from the on-disk cache) the full trace for the given
// configuration.
Trace LoadOrGenerateTrace(const BenchOptions& options);

// Derived views, computed from the full trace (cached alongside).
Trace LoadOrGenerateFiltered(const BenchOptions& options);
Trace LoadOrGenerateExtrapolated(const BenchOptions& options);

// Prints a standard bench header naming the experiment.
void PrintBenchHeader(const std::string& experiment, const std::string& paper_reference,
                      const BenchOptions& options);

}  // namespace edk

#endif  // BENCH_BENCH_COMMON_H_
