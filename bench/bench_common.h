// Shared support for the figure/table reproduction harnesses.
//
// Every bench binary regenerates one table or figure of the paper from a
// synthetic workload. The workload scale is configurable (--peers, --files,
// --days, --seed, --scale small|medium|large) and generated traces are
// cached on disk keyed by their configuration, so running the whole bench
// directory does not regenerate the same trace twenty times.

#ifndef BENCH_BENCH_COMMON_H_
#define BENCH_BENCH_COMMON_H_

#include <string>

#include "src/trace/trace.h"
#include "src/workload/config.h"
#include "src/workload/generator.h"

namespace edk {

struct BenchOptions {
  WorkloadConfig workload;
  std::string scale = "medium";
  bool no_cache = false;
};

// Parses --peers=N --files=N --topics=N --days=N --seed=N --scale=S
// --no-cache; unknown flags abort with a usage message.
BenchOptions ParseBenchOptions(int argc, char** argv);

// Generates (or loads from the on-disk cache) the full trace for the given
// configuration.
Trace LoadOrGenerateTrace(const BenchOptions& options);

// Derived views, computed from the full trace (cached alongside).
Trace LoadOrGenerateFiltered(const BenchOptions& options);
Trace LoadOrGenerateExtrapolated(const BenchOptions& options);

// Prints a standard bench header naming the experiment.
void PrintBenchHeader(const std::string& experiment, const std::string& paper_reference,
                      const BenchOptions& options);

}  // namespace edk

#endif  // BENCH_BENCH_COMMON_H_
