// Reproduces Figure 6: cumulative distribution of file sizes for several
// popularity levels. Paper: ~40% of all files < 1 MB, ~50% in the 1-10 MB
// MP3 range; among files with popularity >= 10, ~55% are > 600 MB DIVX.

#include <iostream>

#include "bench/bench_common.h"
#include "src/analysis/popularity.h"
#include "src/common/stats.h"
#include "src/common/table.h"

int main(int argc, char** argv) {
  const edk::BenchOptions options = edk::ParseBenchOptions(argc, argv);
  edk::PrintBenchHeader("Figure 6: file size CDF by popularity",
                        "all files: 40% <1MB, 50% 1-10MB; popularity>=10: ~55% >600MB",
                        options);

  const edk::Trace filtered = edk::LoadOrGenerateFiltered(options);

  constexpr double kKB = 1024.0;
  constexpr double kMB = 1024.0 * 1024.0;
  const double points[] = {10 * kKB,  100 * kKB, kMB,        10 * kMB,
                           100 * kMB, 600 * kMB, 1000 * kMB};

  edk::AsciiTable table({"size <=", "pop >= 1", "pop >= 5", "pop >= 10"});
  std::vector<edk::EmpiricalCdf> cdfs;
  for (uint32_t threshold : {1u, 5u, 10u}) {
    cdfs.emplace_back(edk::SizesWithPopularityAtLeast(filtered, threshold));
  }
  for (double point : points) {
    std::vector<std::string> row = {edk::FormatBytes(point)};
    for (const auto& cdf : cdfs) {
      row.push_back(edk::FormatPercent(cdf.At(point)));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);

  std::cout << "\nkey shape checks (measured | paper):\n";
  std::cout << "  all files < 1MB:          " << edk::FormatPercent(cdfs[0].At(kMB))
            << " | ~40%\n";
  std::cout << "  all files in 1-10MB:      "
            << edk::FormatPercent(cdfs[0].At(10 * kMB) - cdfs[0].At(kMB)) << " | ~50%\n";
  std::cout << "  pop>=10 files > 600MB:    "
            << edk::FormatPercent(1.0 - cdfs[2].At(600 * kMB)) << " | ~55%\n";
  std::cout << "  pop>=5 files > 600MB:     "
            << edk::FormatPercent(1.0 - cdfs[1].At(600 * kMB)) << " | ~45%\n";
  return 0;
}
