// Serve-path benchmark: queries/sec and tail latency of the real TCP
// index server under an open-loop, workload-model-derived request mix
// (DESIGN.md §6j, EXPERIMENTS.md "Serving the index over TCP").
//
// Two modes:
//
//   * In-process (default): starts a TcpServer on an ephemeral loopback
//     port, preloads the deterministic serve corpus into its core, then
//     drives the load generator against it. One command, committed as
//     BENCH_serve.json.
//   * --connect=HOST:PORT: drives an already-running edk-served instance
//     (started with the same --seed/--clients/--files/--keywords so both
//     sides derive the identical corpus). This is the CI smoke path.
//
// The binary exits non-zero when any protocol error, transport error or
// dropped arrival occurred, so "zero protocol errors" is enforced by the
// exit code, not by whoever reads the JSON.
//
// Honesty notes recorded in the JSON: hardware_threads (the committed run
// comes from a single-core container where client and server share that
// core — throughput is a lower bound) and loopback_only (no real NIC or
// WAN in the path).

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>

#include "src/common/json_lint.h"
#include "src/netio/corpus.h"
#include "src/netio/loadgen.h"
#include "src/netio/tcp_server.h"
#include "src/obs/flags.h"
#include "src/workload/config.h"

namespace {

using edk::netio::LatencySummary;
using edk::netio::LoadGenConfig;
using edk::netio::LoadGenReport;
using edk::netio::ServeCorpus;
using edk::netio::ServeCorpusConfig;
using edk::netio::TcpServer;
using edk::netio::TcpServerConfig;
using edk::netio::TcpServerStats;

struct Options {
  ServeCorpusConfig corpus;
  LoadGenConfig load;
  std::string connect;        // "" = in-process server.
  size_t io_threads = 1;      // In-process server worker threads.
  std::string json_out;
  edk::obs::ObsFlagValues obs;
};

[[noreturn]] void Usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options]\n"
      << "  --connect=HOST:PORT  drive a running edk-served (default: start\n"
      << "                       an in-process server on a loopback port)\n"
      << "  --seed=N --clients=N --files=N --keywords=N   corpus shape\n"
      << "                       (must match the edk-served instance)\n"
      << "  --rps=X              open-loop target request rate (default 1000)\n"
      << "  --duration=SECONDS   schedule length (default 3)\n"
      << "  --connections=N      client connections / worker threads (default 8)\n"
      << "  --publish-batch=N    max files per publish request (default 20)\n"
      << "  --io-threads=N       in-process server worker threads (default 1)\n"
      << "  --json=FILE          write the machine-readable summary\n"
      << "  " << edk::obs::ObsFlagsUsage() << "\n";
  std::exit(2);
}

Options Parse(int argc, char** argv) {
  Options options;
  options.load.seed = 1;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      const size_t n = std::strlen(prefix);
      return std::strncmp(arg, prefix, n) == 0 ? arg + n : nullptr;
    };
    const char* v;
    if ((v = value("--connect=")) != nullptr) {
      options.connect = v;
    } else if ((v = value("--seed=")) != nullptr) {
      options.corpus.seed = std::strtoull(v, nullptr, 10);
    } else if ((v = value("--clients=")) != nullptr) {
      options.corpus.clients = static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
    } else if ((v = value("--files=")) != nullptr) {
      options.corpus.files = static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
    } else if ((v = value("--keywords=")) != nullptr) {
      options.corpus.keywords = static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
    } else if ((v = value("--rps=")) != nullptr) {
      options.load.target_rps = std::strtod(v, nullptr);
    } else if ((v = value("--duration=")) != nullptr) {
      options.load.duration_seconds = std::strtod(v, nullptr);
    } else if ((v = value("--connections=")) != nullptr) {
      options.load.connections = std::strtoul(v, nullptr, 10);
    } else if ((v = value("--publish-batch=")) != nullptr) {
      options.load.publish_files_per_request = std::strtoul(v, nullptr, 10);
    } else if ((v = value("--io-threads=")) != nullptr) {
      options.io_threads = std::strtoul(v, nullptr, 10);
    } else if ((v = value("--json=")) != nullptr) {
      options.json_out = v;
    } else if (edk::obs::ConsumeObsFlag(arg, &options.obs)) {
      // Handled.
    } else {
      std::cerr << "unknown flag: " << arg << "\n";
      Usage(argv[0]);
    }
  }
  return options;
}

void WriteLatency(std::ostream& os, const char* key, const LatencySummary& s) {
  os << "\"" << key << "\": {\"count\": " << s.count << ", \"mean_us\": "
     << s.mean_us << ", \"p50_us\": " << s.p50_us << ", \"p90_us\": "
     << s.p90_us << ", \"p99_us\": " << s.p99_us << ", \"p999_us\": "
     << s.p999_us << ", \"max_us\": " << s.max_us << "}";
}

std::string ReportJson(const Options& options, const LoadGenReport& report,
                       const TcpServerStats* server_stats,
                       uint64_t indexed_files, uint64_t connected_users) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(3);
  os << "{\n  \"schema\": \"edk.bench_serve.v1\",\n";
  os << "  \"corpus\": {\"seed\": " << options.corpus.seed
     << ", \"clients\": " << options.corpus.clients
     << ", \"files\": " << options.corpus.files
     << ", \"keywords\": " << options.corpus.keywords << "},\n";
  os << "  \"mode\": \""
     << (options.connect.empty() ? "in-process" : "external") << "\",\n";
  os << "  \"hardware_threads\": " << std::thread::hardware_concurrency()
     << ",\n";
  // The committed run is loopback on a shared core: no NIC, no WAN, and
  // the load generator competes with the server for CPU. Treat throughput
  // as a lower bound and latency as best-case network conditions.
  os << "  \"loopback_only\": true,\n";
  os << "  \"note\": \"client and server share this machine; single-core "
        "containers serialise them\",\n";
  os << "  \"load\": {\"target_rps\": " << options.load.target_rps
     << ", \"duration_seconds\": " << options.load.duration_seconds
     << ", \"connections\": " << options.load.connections
     << ", \"seed\": " << options.load.seed
     << ", \"publish_batch\": " << options.load.publish_files_per_request
     << ",\n    \"mix\": {\"publish\": " << options.load.mix.publish
     << ", \"search\": " << options.load.mix.search
     << ", \"query_sources\": " << options.load.mix.query_sources
     << ", \"query_users\": " << options.load.mix.query_users
     << ", \"browse\": " << options.load.mix.browse << "}},\n";
  os << "  \"results\": {\n    \"scheduled\": " << report.scheduled
     << ", \"completed\": " << report.completed
     << ", \"protocol_errors\": " << report.protocol_errors
     << ", \"transport_errors\": " << report.transport_errors
     << ", \"dropped\": " << report.dropped << ",\n    \"by_type\": {";
  bool first = true;
  for (const auto& [name, count] : report.by_type) {
    os << (first ? "" : ", ") << "\"" << name << "\": " << count;
    first = false;
  }
  os << "},\n    \"wall_seconds\": " << report.wall_seconds
     << ", \"queries_per_second\": " << report.achieved_rps
     << ", \"max_send_lag_seconds\": " << report.max_send_lag_seconds
     << ",\n    ";
  WriteLatency(os, "open_loop_latency", report.open_loop);
  os << ",\n    ";
  WriteLatency(os, "service_latency", report.service);
  os << "\n  },\n";
  os << "  \"server\": {";
  if (server_stats != nullptr) {
    os << "\"io_threads\": " << options.io_threads
       << ", \"connections_accepted\": " << server_stats->connections_accepted
       << ", \"connections_closed\": " << server_stats->connections_closed
       << ", \"connections_rejected\": " << server_stats->connections_rejected
       << ", \"peak_active_hint\": " << options.load.connections
       << ", \"frames_in\": " << server_stats->frames_in
       << ", \"frames_out\": " << server_stats->frames_out
       << ", \"requests\": " << server_stats->requests
       << ", \"protocol_errors\": " << server_stats->protocol_errors
       << ", \"transport_errors\": " << server_stats->transport_errors
       << ", \"indexed_files\": " << indexed_files
       << ", \"connected_users\": " << connected_users;
  } else {
    os << "\"external\": true";
  }
  os << "}\n}\n";
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  Options options = Parse(argc, argv);
  edk::obs::ApplyObsFlags(options.obs);
  options.load.mix = edk::netio::DeriveRequestMix(edk::WorkloadConfig{});

  std::cerr << "building corpus (seed=" << options.corpus.seed
            << ", clients=" << options.corpus.clients
            << ", files=" << options.corpus.files << ")...\n";
  const ServeCorpus corpus = edk::netio::BuildServeCorpus(options.corpus);

  TcpServer* server = nullptr;
  TcpServer in_process([&] {
    TcpServerConfig config;
    config.worker_threads = options.io_threads;
    // Corpus clients take ids 1..clients; TCP logins continue after.
    config.first_client_id = static_cast<edk::NodeId>(options.corpus.clients + 1);
    return config;
  }());
  if (options.connect.empty()) {
    edk::netio::PreloadServeCorpus(in_process.core(), corpus, 1);
    std::string error;
    if (!in_process.Start(&error)) {
      std::cerr << "failed to start in-process server: " << error << "\n";
      return 1;
    }
    options.load.host = "127.0.0.1";
    options.load.port = in_process.port();
    server = &in_process;
    std::cerr << "in-process server on 127.0.0.1:" << in_process.port()
              << " (io_threads=" << options.io_threads << ")\n";
  } else {
    const size_t colon = options.connect.rfind(':');
    if (colon == std::string::npos) {
      std::cerr << "--connect needs HOST:PORT\n";
      return 2;
    }
    options.load.host = options.connect.substr(0, colon);
    options.load.port = static_cast<uint16_t>(
        std::strtoul(options.connect.c_str() + colon + 1, nullptr, 10));
  }

  std::cerr << "open-loop run: " << options.load.target_rps << " rps x "
            << options.load.duration_seconds << " s over "
            << options.load.connections << " connections...\n";
  const LoadGenReport report = edk::netio::RunLoadGen(options.load, corpus);

  TcpServerStats stats;
  uint64_t indexed_files = 0;
  uint64_t connected_users = 0;
  if (server != nullptr) {
    stats = server->stats();
    {
      std::lock_guard<std::mutex> lock(server->core_mutex());
      indexed_files = server->core().indexed_files();
      connected_users = server->core().connected_users();
    }
    server->Stop();
  }

  const std::string json =
      ReportJson(options, report, server != nullptr ? &stats : nullptr,
                 indexed_files, connected_users);
  std::cout << json;
  if (!options.json_out.empty()) {
    std::ofstream os(options.json_out);
    os << json;
    if (!os.good()) {
      std::cerr << "failed to write " << options.json_out << "\n";
      return 1;
    }
  }
  const edk::JsonLintResult lint = edk::LintJson(json);
  if (!lint.ok) {
    std::cerr << "internal error: emitted invalid JSON: " << lint.error << "\n";
    return 1;
  }

  std::cerr << "completed " << report.completed << "/" << report.scheduled
            << " requests at " << report.achieved_rps << " q/s; p99 "
            << report.open_loop.p99_us << " us\n";
  const uint64_t server_protocol_errors =
      server != nullptr ? stats.protocol_errors : 0;
  if (report.protocol_errors > 0 || report.transport_errors > 0 ||
      report.dropped > 0 || server_protocol_errors > 0) {
    std::cerr << "FAILED: protocol_errors=" << report.protocol_errors
              << " transport_errors=" << report.transport_errors
              << " dropped=" << report.dropped
              << " server_protocol_errors=" << server_protocol_errors << "\n";
    return 1;
  }
  return 0;
}
