// Serve-path benchmark: queries/sec and tail latency of the real TCP
// index server under an open-loop, workload-model-derived request mix
// (DESIGN.md §6j, EXPERIMENTS.md "Serving the index over TCP").
//
// Two modes:
//
//   * In-process (default): starts a TcpServer on an ephemeral loopback
//     port, preloads the deterministic serve corpus into its core, then
//     drives the load generator against it. One command, committed as
//     BENCH_serve.json.
//   * --connect=HOST:PORT: drives an already-running edk-served instance
//     (started with the same --seed/--clients/--files/--keywords so both
//     sides derive the identical corpus). This is the CI smoke path.
//
// The binary exits non-zero when any protocol error, transport error or
// dropped arrival occurred, so "zero protocol errors" is enforced by the
// exit code, not by whoever reads the JSON.
//
// Honesty notes recorded in the JSON: hardware_threads (the committed run
// comes from a single-core container where client and server share that
// core — throughput is a lower bound) and loopback_only (no real NIC or
// WAN in the path).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/common/json_lint.h"
#include "src/netio/corpus.h"
#include "src/netio/loadgen.h"
#include "src/netio/tcp_client.h"
#include "src/netio/tcp_server.h"
#include "src/obs/flags.h"
#include "src/workload/config.h"

namespace {

using edk::netio::LatencySummary;
using edk::netio::LoadGenConfig;
using edk::netio::LoadGenReport;
using edk::netio::ServeCorpus;
using edk::netio::ServeCorpusConfig;
using edk::netio::StatsHistogramValue;
using edk::netio::StatsRep;
using edk::netio::TcpServer;
using edk::netio::TcpServerConfig;
using edk::netio::TcpServerStats;

struct Options {
  ServeCorpusConfig corpus;
  LoadGenConfig load;
  std::string connect;        // "" = in-process server.
  size_t io_threads = 1;      // In-process server worker threads.
  uint64_t scrape_interval_ms = 0;  // 0 = no server-side time-series.
  std::string json_out;
  edk::obs::ObsFlagValues obs;
};

[[noreturn]] void Usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options]\n"
      << "  --connect=HOST:PORT  drive a running edk-served (default: start\n"
      << "                       an in-process server on a loopback port)\n"
      << "  --seed=N --clients=N --files=N --keywords=N   corpus shape\n"
      << "                       (must match the edk-served instance)\n"
      << "  --rps=X              open-loop target request rate (default 1000)\n"
      << "  --duration=SECONDS   schedule length (default 3)\n"
      << "  --connections=N      client connections / worker threads (default 8)\n"
      << "  --publish-batch=N    max files per publish request (default 20)\n"
      << "  --io-threads=N       in-process server worker threads (default 1)\n"
      << "  --scrape-interval-ms=N  scrape the server's in-band stats every\n"
      << "                       N ms during the run; the JSON then carries\n"
      << "                       a server-side time-series (qps, p99, RSS)\n"
      << "  --json=FILE          write the machine-readable summary\n"
      << "  " << edk::obs::ObsFlagsUsage() << "\n";
  std::exit(2);
}

Options Parse(int argc, char** argv) {
  Options options;
  options.load.seed = 1;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      const size_t n = std::strlen(prefix);
      return std::strncmp(arg, prefix, n) == 0 ? arg + n : nullptr;
    };
    const char* v;
    if ((v = value("--connect=")) != nullptr) {
      options.connect = v;
    } else if ((v = value("--seed=")) != nullptr) {
      options.corpus.seed = std::strtoull(v, nullptr, 10);
    } else if ((v = value("--clients=")) != nullptr) {
      options.corpus.clients = static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
    } else if ((v = value("--files=")) != nullptr) {
      options.corpus.files = static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
    } else if ((v = value("--keywords=")) != nullptr) {
      options.corpus.keywords = static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
    } else if ((v = value("--rps=")) != nullptr) {
      options.load.target_rps = std::strtod(v, nullptr);
    } else if ((v = value("--duration=")) != nullptr) {
      options.load.duration_seconds = std::strtod(v, nullptr);
    } else if ((v = value("--connections=")) != nullptr) {
      options.load.connections = std::strtoul(v, nullptr, 10);
    } else if ((v = value("--publish-batch=")) != nullptr) {
      options.load.publish_files_per_request = std::strtoul(v, nullptr, 10);
    } else if ((v = value("--io-threads=")) != nullptr) {
      options.io_threads = std::strtoul(v, nullptr, 10);
    } else if ((v = value("--scrape-interval-ms=")) != nullptr) {
      options.scrape_interval_ms = std::strtoull(v, nullptr, 10);
    } else if ((v = value("--json=")) != nullptr) {
      options.json_out = v;
    } else if (edk::obs::ConsumeObsFlag(arg, &options.obs)) {
      // Handled.
    } else {
      std::cerr << "unknown flag: " << arg << "\n";
      Usage(argv[0]);
    }
  }
  return options;
}

// --- Server-side scraper (--scrape-interval-ms) -----------------------------
//
// A plain stats client on its own connection, polling the server's in-band
// StatsReq while the load generator runs. This exercises the admin path
// under load in both modes (the in-process server is scraped over real TCP
// too) and gives the committed JSON a server-side view of the same run:
// interval qps and p99 from the server's own histograms, plus RSS.

struct ScrapeSample {
  double t_s = 0;  // Since the scraper started.
  uint64_t requests_total = 0;
  double qps = 0;     // Interval rate from the server's request counter.
  double p99_us = 0;  // Interval p99 from the latency histogram delta.
  int64_t rss_bytes = 0;
};

uint64_t ScrapeCounter(const StatsRep& rep, const std::string& name) {
  for (const auto& c : rep.counters) {
    if (c.name == name) {
      return c.value;
    }
  }
  return 0;
}

int64_t ScrapeGauge(const StatsRep& rep, const std::string& name) {
  for (const auto& g : rep.gauges) {
    if (g.name == name) {
      return g.value;
    }
  }
  return 0;
}

const StatsHistogramValue* ScrapeHistogram(const StatsRep& rep,
                                           const std::string& name) {
  for (const auto& h : rep.histograms) {
    if (h.name == name) {
      return &h;
    }
  }
  return nullptr;
}

double HistogramDeltaQuantile(const StatsHistogramValue& now,
                              const StatsHistogramValue& prev, double q) {
  if (now.counts.size() != prev.counts.size() || now.counts.empty()) {
    return 0;
  }
  std::vector<uint64_t> delta(now.counts.size());
  uint64_t total = now.underflow - std::min(prev.underflow, now.underflow) +
                   (now.overflow - std::min(prev.overflow, now.overflow));
  const uint64_t underflow = now.underflow - std::min(prev.underflow, now.underflow);
  for (size_t i = 0; i < delta.size(); ++i) {
    delta[i] = now.counts[i] - std::min(prev.counts[i], now.counts[i]);
    total += delta[i];
  }
  if (total == 0) {
    return 0;
  }
  const double target = q * static_cast<double>(total);
  double cum = static_cast<double>(underflow);
  if (cum >= target && underflow > 0) {
    return now.lo;
  }
  const double width = (now.hi - now.lo) / static_cast<double>(delta.size());
  for (size_t i = 0; i < delta.size(); ++i) {
    const double before = cum;
    cum += static_cast<double>(delta[i]);
    if (cum >= target && delta[i] > 0) {
      const double frac = (target - before) / static_cast<double>(delta[i]);
      return now.lo +
             width * (static_cast<double>(i) + std::clamp(frac, 0.0, 1.0));
    }
  }
  return now.hi;  // Overflow bucket: the histogram cannot resolve past hi.
}

class ServerScraper {
 public:
  // Connects and starts polling; samples() is valid after Finish().
  bool Start(const std::string& host, uint16_t port, uint64_t interval_ms) {
    if (!client_.Connect(host, port, /*recv_timeout_seconds=*/10)) {
      return false;
    }
    interval_ms_ = std::max<uint64_t>(interval_ms, 1);
    thread_ = std::thread([this] { Loop(); });
    return true;
  }

  void Finish() {
    stop_.store(true, std::memory_order_release);
    if (thread_.joinable()) {
      thread_.join();
    }
  }

  const std::vector<ScrapeSample>& samples() const { return samples_; }
  bool failed() const { return failed_; }

 private:
  void Loop() {
    const auto started = std::chrono::steady_clock::now();
    std::optional<StatsRep> prev;
    while (true) {
      auto rep = client_.Stats();
      if (!rep.has_value()) {
        failed_ = true;
        return;
      }
      ScrapeSample sample;
      sample.t_s = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - started)
                       .count();
      sample.requests_total = ScrapeCounter(*rep, "netio.server.requests");
      sample.rss_bytes = ScrapeGauge(*rep, "process.rss_bytes");
      if (prev.has_value() && rep->uptime_ns > prev->uptime_ns) {
        const double dt =
            static_cast<double>(rep->uptime_ns - prev->uptime_ns) / 1e9;
        const uint64_t prev_total =
            ScrapeCounter(*prev, "netio.server.requests");
        sample.qps = static_cast<double>(sample.requests_total -
                                         std::min(prev_total,
                                                  sample.requests_total)) /
                     dt;
        const auto* now_hist =
            ScrapeHistogram(*rep, "netio.server.latency_us.all");
        const auto* prev_hist =
            ScrapeHistogram(*prev, "netio.server.latency_us.all");
        if (now_hist != nullptr && prev_hist != nullptr) {
          sample.p99_us = HistogramDeltaQuantile(*now_hist, *prev_hist, 0.99);
        }
      }
      samples_.push_back(sample);
      prev = std::move(rep);
      if (stop_.load(std::memory_order_acquire)) {
        return;  // The post-stop scrape above was the final sample.
      }
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::milliseconds(interval_ms_);
      while (!stop_.load(std::memory_order_acquire) &&
             std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    }
  }

  edk::netio::TcpClient client_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  uint64_t interval_ms_ = 1000;
  std::vector<ScrapeSample> samples_;
  bool failed_ = false;
};

void WriteLatency(std::ostream& os, const char* key, const LatencySummary& s) {
  os << "\"" << key << "\": {\"count\": " << s.count << ", \"mean_us\": "
     << s.mean_us << ", \"p50_us\": " << s.p50_us << ", \"p90_us\": "
     << s.p90_us << ", \"p99_us\": " << s.p99_us << ", \"p999_us\": "
     << s.p999_us << ", \"max_us\": " << s.max_us << "}";
}

std::string ReportJson(const Options& options, const LoadGenReport& report,
                       const TcpServerStats* server_stats,
                       uint64_t indexed_files, uint64_t connected_users,
                       const std::vector<ScrapeSample>& timeseries) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(3);
  os << "{\n  \"schema\": \"edk.bench_serve.v2\",\n";
  os << "  \"corpus\": {\"seed\": " << options.corpus.seed
     << ", \"clients\": " << options.corpus.clients
     << ", \"files\": " << options.corpus.files
     << ", \"keywords\": " << options.corpus.keywords << "},\n";
  os << "  \"mode\": \""
     << (options.connect.empty() ? "in-process" : "external") << "\",\n";
  os << "  \"hardware_threads\": " << std::thread::hardware_concurrency()
     << ",\n";
  // The committed run is loopback on a shared core: no NIC, no WAN, and
  // the load generator competes with the server for CPU. Treat throughput
  // as a lower bound and latency as best-case network conditions.
  os << "  \"loopback_only\": true,\n";
  os << "  \"note\": \"client and server share this machine; single-core "
        "containers serialise them\",\n";
  os << "  \"load\": {\"target_rps\": " << options.load.target_rps
     << ", \"duration_seconds\": " << options.load.duration_seconds
     << ", \"connections\": " << options.load.connections
     << ", \"seed\": " << options.load.seed
     << ", \"publish_batch\": " << options.load.publish_files_per_request
     << ",\n    \"mix\": {\"publish\": " << options.load.mix.publish
     << ", \"search\": " << options.load.mix.search
     << ", \"query_sources\": " << options.load.mix.query_sources
     << ", \"query_users\": " << options.load.mix.query_users
     << ", \"browse\": " << options.load.mix.browse << "}},\n";
  os << "  \"results\": {\n    \"scheduled\": " << report.scheduled
     << ", \"completed\": " << report.completed
     << ", \"protocol_errors\": " << report.protocol_errors
     << ", \"transport_errors\": " << report.transport_errors
     << ", \"dropped\": " << report.dropped << ",\n    \"by_type\": {";
  bool first = true;
  for (const auto& [name, count] : report.by_type) {
    os << (first ? "" : ", ") << "\"" << name << "\": " << count;
    first = false;
  }
  os << "},\n    \"wall_seconds\": " << report.wall_seconds
     << ", \"queries_per_second\": " << report.achieved_rps
     << ", \"max_send_lag_seconds\": " << report.max_send_lag_seconds
     << ", \"schedule_overruns\": " << report.schedule_overruns
     << ",\n    ";
  WriteLatency(os, "open_loop_latency", report.open_loop);
  os << ",\n    ";
  WriteLatency(os, "service_latency", report.service);
  os << "\n  },\n";
  os << "  \"server\": {";
  if (server_stats != nullptr) {
    os << "\"io_threads\": " << options.io_threads
       << ", \"connections_accepted\": " << server_stats->connections_accepted
       << ", \"connections_closed\": " << server_stats->connections_closed
       << ", \"connections_rejected\": " << server_stats->connections_rejected
       << ", \"peak_active_hint\": " << options.load.connections
       << ", \"frames_in\": " << server_stats->frames_in
       << ", \"frames_out\": " << server_stats->frames_out
       << ", \"requests\": " << server_stats->requests
       << ", \"protocol_errors\": " << server_stats->protocol_errors
       << ", \"transport_errors\": " << server_stats->transport_errors
       << ", \"indexed_files\": " << indexed_files
       << ", \"connected_users\": " << connected_users;
  } else {
    os << "\"external\": true";
  }
  os << "},\n";
  // Server-side time-series scraped over the in-band stats protocol while
  // the load ran; empty when --scrape-interval-ms was not given.
  os << "  \"server_timeseries\": {\"scrape_interval_ms\": "
     << options.scrape_interval_ms << ", \"samples\": [";
  for (size_t i = 0; i < timeseries.size(); ++i) {
    const ScrapeSample& s = timeseries[i];
    os << (i == 0 ? "" : ", ") << "{\"t_s\": " << s.t_s
       << ", \"requests_total\": " << s.requests_total
       << ", \"qps\": " << s.qps << ", \"p99_us\": " << s.p99_us
       << ", \"rss_bytes\": " << s.rss_bytes << "}";
  }
  os << "]}\n}\n";
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  Options options = Parse(argc, argv);
  edk::obs::ApplyObsFlags(options.obs);
  options.load.mix = edk::netio::DeriveRequestMix(edk::WorkloadConfig{});

  std::cerr << "building corpus (seed=" << options.corpus.seed
            << ", clients=" << options.corpus.clients
            << ", files=" << options.corpus.files << ")...\n";
  const ServeCorpus corpus = edk::netio::BuildServeCorpus(options.corpus);

  TcpServer* server = nullptr;
  TcpServer in_process([&] {
    TcpServerConfig config;
    config.worker_threads = options.io_threads;
    // Corpus clients take ids 1..clients; TCP logins continue after.
    config.first_client_id = static_cast<edk::NodeId>(options.corpus.clients + 1);
    return config;
  }());
  if (options.connect.empty()) {
    edk::netio::PreloadServeCorpus(in_process.core(), corpus, 1);
    std::string error;
    if (!in_process.Start(&error)) {
      std::cerr << "failed to start in-process server: " << error << "\n";
      return 1;
    }
    options.load.host = "127.0.0.1";
    options.load.port = in_process.port();
    server = &in_process;
    std::cerr << "in-process server on 127.0.0.1:" << in_process.port()
              << " (io_threads=" << options.io_threads << ")\n";
  } else {
    const size_t colon = options.connect.rfind(':');
    if (colon == std::string::npos) {
      std::cerr << "--connect needs HOST:PORT\n";
      return 2;
    }
    options.load.host = options.connect.substr(0, colon);
    options.load.port = static_cast<uint16_t>(
        std::strtoul(options.connect.c_str() + colon + 1, nullptr, 10));
  }

  ServerScraper scraper;
  if (options.scrape_interval_ms > 0) {
    if (!scraper.Start(options.load.host, options.load.port,
                       options.scrape_interval_ms)) {
      std::cerr << "failed to connect the stats scraper\n";
      return 1;
    }
    std::cerr << "scraping server stats every " << options.scrape_interval_ms
              << " ms\n";
  }

  std::cerr << "open-loop run: " << options.load.target_rps << " rps x "
            << options.load.duration_seconds << " s over "
            << options.load.connections << " connections...\n";
  const LoadGenReport report = edk::netio::RunLoadGen(options.load, corpus);

  scraper.Finish();  // Takes one final post-run sample, then joins.
  if (options.scrape_interval_ms > 0 && scraper.failed()) {
    std::cerr << "FAILED: stats scraper lost the server mid-run\n";
    return 1;
  }

  TcpServerStats stats;
  uint64_t indexed_files = 0;
  uint64_t connected_users = 0;
  if (server != nullptr) {
    stats = server->stats();
    {
      std::lock_guard<std::mutex> lock(server->core_mutex());
      indexed_files = server->core().indexed_files();
      connected_users = server->core().connected_users();
    }
    server->Stop();
  }

  const std::string json =
      ReportJson(options, report, server != nullptr ? &stats : nullptr,
                 indexed_files, connected_users, scraper.samples());
  std::cout << json;
  if (!options.json_out.empty()) {
    std::ofstream os(options.json_out);
    os << json;
    if (!os.good()) {
      std::cerr << "failed to write " << options.json_out << "\n";
      return 1;
    }
  }
  const edk::JsonLintResult lint = edk::LintJson(json);
  if (!lint.ok) {
    std::cerr << "internal error: emitted invalid JSON: " << lint.error << "\n";
    return 1;
  }

  std::cerr << "completed " << report.completed << "/" << report.scheduled
            << " requests at " << report.achieved_rps << " q/s; p99 "
            << report.open_loop.p99_us << " us\n";
  const uint64_t server_protocol_errors =
      server != nullptr ? stats.protocol_errors : 0;
  if (report.protocol_errors > 0 || report.transport_errors > 0 ||
      report.dropped > 0 || server_protocol_errors > 0) {
    std::cerr << "FAILED: protocol_errors=" << report.protocol_errors
              << " transport_errors=" << report.transport_errors
              << " dropped=" << report.dropped
              << " server_protocol_errors=" << server_protocol_errors << "\n";
    return 1;
  }
  return 0;
}
