// Reproduces Figure 7: CDFs of files shared and disk space shared per
// client, with and without free-riders. Paper: ~80% free-riders; 80% of
// non-free-riders share < 100 files; < 10% of non-free-riders share < 1 GB.

#include <iostream>

#include "bench/bench_common.h"
#include "src/analysis/contribution.h"
#include "src/common/stats.h"
#include "src/common/table.h"

int main(int argc, char** argv) {
  const edk::BenchOptions options = edk::ParseBenchOptions(argc, argv);
  edk::PrintBenchHeader(
      "Figure 7: files and disk space shared per client",
      "~80% free-riders; 80% of sharers < 100 files; < 10% of sharers < 1GB",
      options);

  const edk::Trace filtered = edk::LoadOrGenerateFiltered(options);
  const auto stats = edk::ComputeContribution(filtered);

  const edk::EmpiricalCdf files_all(edk::FilesCdfSamples(stats, false));
  const edk::EmpiricalCdf files_sharers(edk::FilesCdfSamples(stats, true));
  const edk::EmpiricalCdf bytes_all(edk::BytesCdfSamples(stats, false));
  const edk::EmpiricalCdf bytes_sharers(edk::BytesCdfSamples(stats, true));

  edk::AsciiTable files_table({"files <=", "all clients", "free-riders excluded"});
  for (double point : {0.0, 1.0, 10.0, 100.0, 1000.0, 10000.0}) {
    files_table.AddRow({edk::AsciiTable::FormatCell(point),
                        edk::FormatPercent(files_all.At(point)),
                        edk::FormatPercent(files_sharers.At(point))});
  }
  files_table.Print(std::cout);

  constexpr double kGB = 1024.0 * 1024.0 * 1024.0;
  edk::AsciiTable bytes_table({"space <=", "all clients", "free-riders excluded"});
  for (double gb : {0.01, 0.1, 1.0, 10.0, 100.0, 1000.0}) {
    bytes_table.AddRow({edk::FormatBytes(gb * kGB),
                        edk::FormatPercent(bytes_all.At(gb * kGB)),
                        edk::FormatPercent(bytes_sharers.At(gb * kGB))});
  }
  bytes_table.Print(std::cout);

  std::cout << "\nfree-rider fraction: " << edk::FormatPercent(stats.FreeRiderFraction())
            << " (paper: ~70-84%)\n";
  std::cout << "sharers with < 100 files: " << edk::FormatPercent(files_sharers.At(99))
            << " (paper: ~80%)\n";
  std::cout << "sharers with < 1 GB:      " << edk::FormatPercent(bytes_sharers.At(kGB))
            << " (paper: < 10%)\n";
  std::cout << "top 15% of sharers hold:  "
            << edk::FormatPercent(stats.TopSharerShare(0.15))
            << " of all file replicas (paper: ~75%)\n";
  return 0;
}
