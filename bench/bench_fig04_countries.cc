// Reproduces Figure 4: distribution of clients per country.
// Paper: FR 29%, DE 28%, ES 16%, US 5%, IT 3%, IL 2%, GB 2%, TW/PL/AT/NL 1%.

#include <iostream>

#include "bench/bench_common.h"
#include "src/analysis/geo_clustering.h"
#include "src/common/table.h"
#include "src/workload/geography.h"

int main(int argc, char** argv) {
  const edk::BenchOptions options = edk::ParseBenchOptions(argc, argv);
  edk::PrintBenchHeader("Figure 4: distribution of clients per country",
                        "FR 29%, DE 28%, ES 16%, US 5%, IT 3%, IL 2%, GB 2%, "
                        "TW/PL/AT/NL 1% each, others 6%",
                        options);

  const edk::Trace full = edk::LoadOrGenerateTrace(options);
  const edk::Geography geography = edk::Geography::PaperDistribution();
  const auto histogram = edk::CountryHistogram(full);

  edk::AsciiTable table({"country", "clients", "measured", "paper"});
  for (const auto& entry : histogram) {
    const auto& spec = geography.country(entry.country);
    table.AddRow({spec.code, std::to_string(entry.clients),
                  edk::FormatPercent(entry.fraction),
                  edk::FormatPercent(spec.peer_fraction)});
  }
  table.Print(std::cout);
  return 0;
}
