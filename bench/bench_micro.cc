// Microbenchmarks of the workbench's hot paths (google-benchmark):
// PRNG, Zipf sampling, MD4 hashing, overlap counting, neighbour-list
// operations, cache randomisation and the event queue — plus the CSR
// overlap kernel suite. With --json=FILE the binary instead times each
// overlap kernel against a verbatim copy of its pre-CSR hash-map
// implementation on the same synthetic trace, checks the outputs match,
// and writes the wall-ns comparison as JSON (the BENCH_overlap.json
// trajectory; format documented in EXPERIMENTS.md).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>

#include "src/analysis/clustering.h"
#include "src/analysis/overlap.h"
#include "src/common/md4.h"
#include "src/common/random_access_set.h"
#include "src/common/rng.h"
#include "src/common/zipf.h"
#include "src/net/event_queue.h"
#include "src/exec/parallel.h"
#include "src/obs/flags.h"
#include "src/semantic/neighbour_list.h"
#include "src/semantic/search_sim.h"
#include "src/trace/cache_store.h"
#include "src/trace/randomize.h"
#include "src/trace/trace.h"

namespace edk {
namespace {

void BM_RngNextBelow(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.NextBelow(1'000'000));
  }
}
BENCHMARK(BM_RngNextBelow);

void BM_ZipfSample(benchmark::State& state) {
  Rng rng(2);
  ZipfSampler zipf(static_cast<uint64_t>(state.range(0)), 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Sample(rng));
  }
}
BENCHMARK(BM_ZipfSample)->Arg(100)->Arg(10'000)->Arg(1'000'000);

void BM_Md4Hash(benchmark::State& state) {
  std::vector<uint8_t> data(static_cast<size_t>(state.range(0)), 0xa5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Md4::Hash(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Md4Hash)->Arg(64)->Arg(4096)->Arg(65536);

void BM_OverlapSize(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<FileId> a;
  std::vector<FileId> b;
  for (size_t i = 0; i < n; ++i) {
    a.push_back(FileId(static_cast<uint32_t>(2 * i)));
    b.push_back(FileId(static_cast<uint32_t>(3 * i)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(OverlapSize(a, b));
  }
}
BENCHMARK(BM_OverlapSize)->Arg(100)->Arg(1000);

void BM_RandomAccessSetChurn(benchmark::State& state) {
  RandomAccessSet<uint32_t> set;
  Rng rng(3);
  for (uint32_t i = 0; i < 1000; ++i) {
    set.Insert(i);
  }
  for (auto _ : state) {
    const uint32_t victim = set.RandomElement(rng);
    set.Erase(victim);
    set.Insert(victim + 1000 + static_cast<uint32_t>(rng.NextBelow(1000)));
  }
}
BENCHMARK(BM_RandomAccessSetChurn);

void BM_LruRecordUpload(benchmark::State& state) {
  auto list = MakeNeighbourList(StrategyKind::kLru, static_cast<size_t>(state.range(0)));
  Rng rng(4);
  for (auto _ : state) {
    list->RecordUpload(static_cast<uint32_t>(rng.NextBelow(500)), 1.0);
  }
}
BENCHMARK(BM_LruRecordUpload)->Arg(20)->Arg(200);

void BM_HistoryCollect(benchmark::State& state) {
  auto list = MakeNeighbourList(StrategyKind::kHistory, 20);
  Rng rng(5);
  for (int i = 0; i < 300; ++i) {
    list->RecordUpload(static_cast<uint32_t>(rng.NextBelow(200)), 1.0);
  }
  std::vector<uint32_t> out;
  for (auto _ : state) {
    out.clear();
    list->Collect(static_cast<size_t>(state.range(0)), out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_HistoryCollect)->Arg(5)->Arg(20);

void BM_RandomizeSwaps(benchmark::State& state) {
  // 500 peers x 40 files.
  StaticCaches caches;
  Rng setup(6);
  caches.caches.resize(500);
  for (auto& cache : caches.caches) {
    RandomAccessSet<uint32_t> unique;
    while (unique.size() < 40) {
      unique.Insert(static_cast<uint32_t>(setup.NextBelow(20'000)));
    }
    for (uint32_t f : unique) {
      cache.push_back(FileId(f));
    }
    std::sort(cache.begin(), cache.end());
  }
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RandomizeCaches(caches, 10'000, rng));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 10'000);
}
BENCHMARK(BM_RandomizeSwaps);

void BM_EventQueueThroughput(benchmark::State& state) {
  for (auto _ : state) {
    EventQueue queue;
    int sink = 0;
    for (int i = 0; i < 1000; ++i) {
      queue.Schedule(static_cast<double>(i % 17), [&sink] { ++sink; });
    }
    queue.Run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 1000);
}
BENCHMARK(BM_EventQueueThroughput);

// ---------------------------------------------------------------------------
// Overlap kernel suite: CSR production code vs the pre-CSR implementations.
// The legacy namespace holds verbatim copies of the hash-map kernels this
// repository shipped before the CacheStore rewrite, kept here solely as the
// measurement baseline for the BENCH_overlap.json trajectory.
// ---------------------------------------------------------------------------

namespace legacy {

template <typename Visitor>
void ForEachOverlappingPair(const Trace& trace, int day, Visitor visit) {
  const StaticCaches caches = BuildDayCaches(trace, day);
  std::unordered_map<uint32_t, std::vector<uint32_t>> holders;
  for (uint32_t p = 0; p < caches.caches.size(); ++p) {
    for (FileId f : caches.caches[p]) {
      holders[f.value].push_back(p);
    }
  }
  std::unordered_map<uint32_t, uint32_t> local;
  for (uint32_t p = 0; p < caches.caches.size(); ++p) {
    local.clear();
    for (FileId f : caches.caches[p]) {
      for (uint32_t q : holders[f.value]) {
        if (q > p) {
          ++local[q];
        }
      }
    }
    for (const auto& [q, overlap] : local) {
      visit(p, q, overlap);
    }
  }
}

std::vector<std::pair<uint32_t, uint64_t>> OverlapHistogramOnDay(const Trace& trace,
                                                                 int day) {
  std::map<uint32_t, uint64_t> histogram;
  ForEachOverlappingPair(trace, day, [&histogram](uint32_t, uint32_t, uint32_t overlap) {
    ++histogram[overlap];
  });
  return {histogram.begin(), histogram.end()};
}

std::vector<OverlapCohort> ComputeOverlapEvolution(const Trace& trace,
                                                   const OverlapEvolutionOptions& options) {
  std::vector<OverlapCohort> cohorts;
  cohorts.reserve(options.cohort_overlaps.size());
  std::unordered_map<uint32_t, size_t> cohort_index;
  for (uint32_t value : options.cohort_overlaps) {
    cohort_index[value] = cohorts.size();
    OverlapCohort cohort;
    cohort.initial_overlap = value;
    cohorts.push_back(std::move(cohort));
  }

  const int first_day = trace.first_day();
  Rng rng(options.seed);
  ForEachOverlappingPair(
      trace, first_day,
      [&](uint32_t p, uint32_t q, uint32_t overlap) {
        const auto it = cohort_index.find(overlap);
        if (it == cohort_index.end()) {
          return;
        }
        OverlapCohort& cohort = cohorts[it->second];
        ++cohort.pair_count;
        if (cohort.pairs.size() < options.max_pairs_per_cohort) {
          cohort.pairs.emplace_back(p, q);
        } else {
          const uint64_t slot = rng.NextBelow(cohort.pair_count);
          if (slot < options.max_pairs_per_cohort) {
            cohort.pairs[slot] = {p, q};
          }
        }
      });

  const size_t days = static_cast<size_t>(trace.last_day() - trace.first_day() + 1);
  for (auto& cohort : cohorts) {
    cohort.mean_overlap.assign(days, 0.0);
  }
  ParallelFor(0, days, [&](size_t d) {
    const int day = first_day + static_cast<int>(d);
    for (auto& cohort : cohorts) {
      if (cohort.pairs.empty()) {
        continue;
      }
      double sum = 0;
      uint64_t counted = 0;
      for (const auto& [p, q] : cohort.pairs) {
        const CacheSnapshot* a = trace.timeline(PeerId(p)).SnapshotOn(day);
        const CacheSnapshot* b = trace.timeline(PeerId(q)).SnapshotOn(day);
        if (a == nullptr || b == nullptr) {
          continue;
        }
        sum += static_cast<double>(OverlapSize(a->files, b->files));
        ++counted;
      }
      cohort.mean_overlap[d] = counted == 0 ? 0.0 : sum / static_cast<double>(counted);
    }
  });
  return cohorts;
}

ClusteringCurve ComputeClusteringCurve(const StaticCaches& caches, size_t max_k,
                                       const std::vector<bool>* file_mask) {
  std::unordered_map<uint32_t, std::vector<uint32_t>> holders;
  for (uint32_t p = 0; p < caches.caches.size(); ++p) {
    for (FileId f : caches.caches[p]) {
      if (file_mask != nullptr && !(*file_mask)[f.value]) {
        continue;
      }
      holders[f.value].push_back(p);
    }
  }

  std::unordered_map<uint64_t, uint64_t> overlap_histogram;
  {
    constexpr size_t kPeersPerBlock = 256;
    const size_t peer_count = caches.caches.size();
    const size_t blocks = (peer_count + kPeersPerBlock - 1) / kPeersPerBlock;
    std::vector<std::unordered_map<uint64_t, uint64_t>> block_histograms(blocks);
    ParallelFor(0, blocks, [&](size_t block) {
      auto& histogram = block_histograms[block];
      std::unordered_map<uint32_t, uint32_t> local;
      const uint32_t first = static_cast<uint32_t>(block * kPeersPerBlock);
      const uint32_t last =
          static_cast<uint32_t>(std::min(peer_count, (block + 1) * kPeersPerBlock));
      for (uint32_t p = first; p < last; ++p) {
        local.clear();
        for (FileId f : caches.caches[p]) {
          if (file_mask != nullptr && !(*file_mask)[f.value]) {
            continue;
          }
          const auto it = holders.find(f.value);
          if (it == holders.end()) {
            continue;
          }
          for (uint32_t q : it->second) {
            if (q > p) {
              ++local[q];
            }
          }
        }
        for (const auto& [q, count] : local) {
          ++histogram[count];
        }
      }
    });
    for (const auto& histogram : block_histograms) {
      for (const auto& [overlap, pairs] : histogram) {
        overlap_histogram[overlap] += pairs;
      }
    }
  }

  ClusteringCurve curve;
  curve.pairs_at_least.assign(max_k + 2, 0);
  for (const auto& [overlap, pairs] : overlap_histogram) {
    const size_t limit = std::min<uint64_t>(overlap, max_k + 1);
    for (size_t k = 1; k <= limit; ++k) {
      curve.pairs_at_least[k] += pairs;
    }
  }
  curve.probability.assign(max_k + 1, 0.0);
  for (size_t k = 1; k <= max_k; ++k) {
    if (curve.pairs_at_least[k] > 0) {
      curve.probability[k] = static_cast<double>(curve.pairs_at_least[k + 1]) /
                             static_cast<double>(curve.pairs_at_least[k]);
    }
  }
  return curve;
}

RandomizeResult RandomizeCaches(const StaticCaches& caches, uint64_t swaps, Rng& rng) {
  const size_t peer_count = caches.caches.size();
  std::vector<RandomAccessSet<uint32_t>> sets(peer_count);
  std::vector<uint32_t> replica_owner;
  replica_owner.reserve(caches.TotalReplicas());
  for (size_t p = 0; p < peer_count; ++p) {
    sets[p].Reserve(caches.caches[p].size());
    for (FileId f : caches.caches[p]) {
      sets[p].Insert(f.value);
      replica_owner.push_back(static_cast<uint32_t>(p));
    }
  }
  RandomizeResult result;
  if (replica_owner.size() < 2) {
    result.caches = caches;
    return result;
  }
  for (uint64_t iter = 0; iter < swaps; ++iter) {
    ++result.attempted_swaps;
    const uint32_t u = replica_owner[rng.NextBelow(replica_owner.size())];
    const uint32_t v = replica_owner[rng.NextBelow(replica_owner.size())];
    if (u == v) {
      continue;
    }
    const uint32_t f = sets[u].RandomElement(rng);
    const uint32_t f_prime = sets[v].RandomElement(rng);
    if (f == f_prime || sets[u].Contains(f_prime) || sets[v].Contains(f)) {
      continue;
    }
    sets[u].Erase(f);
    sets[u].Insert(f_prime);
    sets[v].Erase(f_prime);
    sets[v].Insert(f);
    ++result.successful_swaps;
  }
  result.caches.caches.resize(peer_count);
  for (size_t p = 0; p < peer_count; ++p) {
    auto& out = result.caches.caches[p];
    out.reserve(sets[p].size());
    for (uint32_t raw : sets[p]) {
      out.push_back(FileId(raw));
    }
    std::sort(out.begin(), out.end());
  }
  return result;
}

}  // namespace legacy

// Synthetic multi-day trace for the kernel suite: Zipf-popular files,
// assorted cache sizes, peers skipping days at random. Deterministic.
Trace MakeKernelTrace(size_t peers, size_t files, int days, size_t mean_cache) {
  Rng rng(42);
  ZipfSampler zipf(files, 0.9);
  Trace trace;
  for (size_t f = 0; f < files; ++f) {
    trace.AddFile(FileMeta{});
  }
  std::vector<uint32_t> cache;
  for (size_t p = 0; p < peers; ++p) {
    const PeerId id = trace.AddPeer(PeerInfo{});
    for (int day = 1; day <= days; ++day) {
      if (rng.NextBelow(4) == 0) {
        continue;  // Offline that day.
      }
      const size_t size = 1 + rng.NextBelow(2 * mean_cache);
      cache.clear();
      while (cache.size() < size) {
        const uint32_t f = static_cast<uint32_t>(zipf.Sample(rng));
        if (std::find(cache.begin(), cache.end(), f) == cache.end()) {
          cache.push_back(f);
        }
      }
      std::vector<FileId> snapshot;
      snapshot.reserve(cache.size());
      for (uint32_t f : cache) {
        snapshot.push_back(FileId(f));
      }
      trace.AddSnapshot(id, day, snapshot);
    }
  }
  return trace;
}

void BM_OverlapHistogramLegacy(benchmark::State& state) {
  const Trace trace =
      MakeKernelTrace(static_cast<size_t>(state.range(0)), 20'000, 1, 25);
  for (auto _ : state) {
    benchmark::DoNotOptimize(legacy::OverlapHistogramOnDay(trace, 1));
  }
}
BENCHMARK(BM_OverlapHistogramLegacy)->Arg(2000)->Unit(benchmark::kMillisecond);

void BM_OverlapHistogramCsr(benchmark::State& state) {
  const Trace trace =
      MakeKernelTrace(static_cast<size_t>(state.range(0)), 20'000, 1, 25);
  for (auto _ : state) {
    benchmark::DoNotOptimize(OverlapHistogramOnDay(trace, 1));
  }
}
BENCHMARK(BM_OverlapHistogramCsr)->Arg(2000)->Unit(benchmark::kMillisecond);

void BM_ClusteringCurveLegacy(benchmark::State& state) {
  const Trace trace =
      MakeKernelTrace(static_cast<size_t>(state.range(0)), 20'000, 1, 25);
  const StaticCaches caches = BuildDayCaches(trace, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(legacy::ComputeClusteringCurve(caches, 64, nullptr));
  }
}
BENCHMARK(BM_ClusteringCurveLegacy)->Arg(2000)->Unit(benchmark::kMillisecond);

void BM_ClusteringCurveCsr(benchmark::State& state) {
  const Trace trace =
      MakeKernelTrace(static_cast<size_t>(state.range(0)), 20'000, 1, 25);
  const StaticCaches caches = BuildDayCaches(trace, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeClusteringCurve(caches, 64, nullptr));
  }
}
BENCHMARK(BM_ClusteringCurveCsr)->Arg(2000)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// --json=FILE mode: one timed head-to-head run per kernel, plus an output
// equality check (the rewrite claims bit-identical results — verify it on
// this trace before reporting any speedup).
// ---------------------------------------------------------------------------

uint64_t WallNs(const std::function<void()>& fn) {
  // Best of three: on a shared single-core builder a single run is noisy.
  uint64_t best = ~0ull;
  for (int run = 0; run < 3; ++run) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const auto stop = std::chrono::steady_clock::now();
    const uint64_t ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start).count());
    best = std::min(best, ns);
  }
  return best;
}

int RunJsonSuite(const std::string& path) {
  constexpr size_t kPeers = 6000;
  constexpr size_t kFiles = 40'000;
  constexpr int kDays = 8;
  constexpr size_t kMeanCache = 25;
  const Trace trace = MakeKernelTrace(kPeers, kFiles, kDays, kMeanCache);
  const StaticCaches caches = BuildDayCaches(trace, 1);
  const size_t replicas = caches.TotalReplicas();
  size_t max_cache = 0;
  for (const auto& cache : caches.caches) {
    max_cache = std::max(max_cache, cache.size());
  }

  struct KernelRow {
    std::string name;
    uint64_t legacy_ns = 0;  // 0 = no legacy twin.
    uint64_t csr_ns = 0;
    bool matched = true;
  };
  std::vector<KernelRow> rows;

  {
    KernelRow row{.name = "overlap_histogram"};
    std::vector<std::pair<uint32_t, uint64_t>> want;
    std::vector<std::pair<uint32_t, uint64_t>> got;
    row.legacy_ns = WallNs([&] { want = legacy::OverlapHistogramOnDay(trace, 1); });
    row.csr_ns = WallNs([&] { got = OverlapHistogramOnDay(trace, 1); });
    row.matched = want == got;
    rows.push_back(row);
  }
  {
    KernelRow row{.name = "overlap_evolution"};
    OverlapEvolutionOptions options;
    options.cohort_overlaps = {1, 2, 3, 4, 5};
    options.max_pairs_per_cohort = 20'000;
    std::vector<OverlapCohort> want;
    std::vector<OverlapCohort> got;
    row.legacy_ns = WallNs([&] { want = legacy::ComputeOverlapEvolution(trace, options); });
    row.csr_ns = WallNs([&] { got = ComputeOverlapEvolution(trace, options); });
    row.matched = want.size() == got.size();
    for (size_t c = 0; row.matched && c < want.size(); ++c) {
      row.matched = want[c].pair_count == got[c].pair_count &&
                    want[c].pairs == got[c].pairs &&
                    want[c].mean_overlap == got[c].mean_overlap;
    }
    rows.push_back(row);
  }
  {
    KernelRow row{.name = "clustering_curve"};
    ClusteringCurve want;
    ClusteringCurve got;
    row.legacy_ns = WallNs([&] { want = legacy::ComputeClusteringCurve(caches, 64, nullptr); });
    row.csr_ns = WallNs([&] { got = ComputeClusteringCurve(caches, 64, nullptr); });
    row.matched = want.pairs_at_least == got.pairs_at_least &&
                  want.probability == got.probability;
    rows.push_back(row);
  }
  {
    KernelRow row{.name = "clustering_curve_masked"};
    Rng mask_rng(9);
    std::vector<bool> mask(kFiles);
    for (size_t f = 0; f < kFiles; ++f) {
      mask[f] = mask_rng.NextBelow(4) != 0;
    }
    ClusteringCurve want;
    ClusteringCurve got;
    row.legacy_ns = WallNs([&] { want = legacy::ComputeClusteringCurve(caches, 64, &mask); });
    row.csr_ns = WallNs([&] { got = ComputeClusteringCurve(caches, 64, &mask); });
    row.matched = want.pairs_at_least == got.pairs_at_least &&
                  want.probability == got.probability;
    rows.push_back(row);
  }
  {
    KernelRow row{.name = "randomize_swaps"};
    const uint64_t swaps = replicas;  // ~one attempted swap per replica.
    RandomizeResult want;
    RandomizeResult got;
    row.legacy_ns = WallNs([&] {
      Rng rng(7);
      want = legacy::RandomizeCaches(caches, swaps, rng);
    });
    row.csr_ns = WallNs([&] {
      Rng rng(7);
      got = RandomizeCaches(caches, swaps, rng);
    });
    row.matched = want.successful_swaps == got.successful_swaps &&
                  want.caches.caches == got.caches.caches;
    rows.push_back(row);
  }
  {
    // No legacy twin kept for the search simulator (its rewrite is pinned
    // byte-identical by the figure benches); recorded for the trajectory.
    KernelRow row{.name = "search_sim_lru"};
    SearchSimConfig config;
    config.strategy = StrategyKind::kLru;
    row.csr_ns = WallNs([&] {
      benchmark::DoNotOptimize(RunSearchSimulation(caches, config));
    });
    rows.push_back(row);
  }

  bool all_matched = true;
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "bench_micro: cannot write %s\n", path.c_str());
    return 1;
  }
  out << "{\n  \"schema\": \"edk.bench_micro.overlap.v1\",\n";
  out << "  \"trace\": {\"peers\": " << kPeers << ", \"files\": " << kFiles
      << ", \"days\": " << kDays << ", \"replicas\": " << replicas
      << ", \"max_cache\": " << max_cache << "},\n";
  out << "  \"kernels\": {\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const KernelRow& row = rows[i];
    all_matched = all_matched && row.matched;
    out << "    \"" << row.name << "\": {";
    if (row.legacy_ns > 0) {
      out << "\"legacy_wall_ns\": " << row.legacy_ns << ", ";
    }
    out << "\"csr_wall_ns\": " << row.csr_ns;
    if (row.legacy_ns > 0 && row.csr_ns > 0) {
      char speedup[32];
      std::snprintf(speedup, sizeof(speedup), "%.2f",
                    static_cast<double>(row.legacy_ns) / static_cast<double>(row.csr_ns));
      out << ", \"speedup\": " << speedup;
      out << ", \"outputs_match\": " << (row.matched ? "true" : "false");
    }
    out << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  }\n}\n";
  out.close();

  for (const KernelRow& row : rows) {
    if (row.legacy_ns > 0) {
      std::printf("%-24s legacy %12llu ns   csr %12llu ns   %.2fx%s\n",
                  row.name.c_str(), static_cast<unsigned long long>(row.legacy_ns),
                  static_cast<unsigned long long>(row.csr_ns),
                  static_cast<double>(row.legacy_ns) / static_cast<double>(row.csr_ns),
                  row.matched ? "" : "   OUTPUT MISMATCH");
    } else {
      std::printf("%-24s %38s csr %12llu ns\n", row.name.c_str(), "",
                  static_cast<unsigned long long>(row.csr_ns));
    }
  }
  if (!all_matched) {
    std::fprintf(stderr, "bench_micro: CSR kernel output diverged from legacy\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace edk

int main(int argc, char** argv) {
  // --json=FILE switches to the overlap kernel comparison suite, and the
  // shared observability flags (--metrics-out / --trace-out /
  // --trace-sample) are consumed here; all other arguments belong to
  // google-benchmark.
  std::string json_path;
  edk::obs::ObsFlagValues obs_flags;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (edk::obs::ConsumeObsFlag(argv[i], &obs_flags)) {
      // Consumed.
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  edk::obs::ApplyObsFlags(obs_flags);
  if (!json_path.empty()) {
    return edk::RunJsonSuite(json_path);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
