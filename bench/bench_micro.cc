// Microbenchmarks of the workbench's hot paths (google-benchmark):
// PRNG, Zipf sampling, MD4 hashing, overlap counting, neighbour-list
// operations, cache randomisation and the event queue.

#include <benchmark/benchmark.h>

#include "src/common/md4.h"
#include "src/common/random_access_set.h"
#include "src/common/rng.h"
#include "src/common/zipf.h"
#include "src/net/event_queue.h"
#include "src/semantic/neighbour_list.h"
#include "src/trace/randomize.h"
#include "src/trace/trace.h"

namespace edk {
namespace {

void BM_RngNextBelow(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.NextBelow(1'000'000));
  }
}
BENCHMARK(BM_RngNextBelow);

void BM_ZipfSample(benchmark::State& state) {
  Rng rng(2);
  ZipfSampler zipf(static_cast<uint64_t>(state.range(0)), 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Sample(rng));
  }
}
BENCHMARK(BM_ZipfSample)->Arg(100)->Arg(10'000)->Arg(1'000'000);

void BM_Md4Hash(benchmark::State& state) {
  std::vector<uint8_t> data(static_cast<size_t>(state.range(0)), 0xa5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Md4::Hash(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Md4Hash)->Arg(64)->Arg(4096)->Arg(65536);

void BM_OverlapSize(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<FileId> a;
  std::vector<FileId> b;
  for (size_t i = 0; i < n; ++i) {
    a.push_back(FileId(static_cast<uint32_t>(2 * i)));
    b.push_back(FileId(static_cast<uint32_t>(3 * i)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(OverlapSize(a, b));
  }
}
BENCHMARK(BM_OverlapSize)->Arg(100)->Arg(1000);

void BM_RandomAccessSetChurn(benchmark::State& state) {
  RandomAccessSet<uint32_t> set;
  Rng rng(3);
  for (uint32_t i = 0; i < 1000; ++i) {
    set.Insert(i);
  }
  for (auto _ : state) {
    const uint32_t victim = set.RandomElement(rng);
    set.Erase(victim);
    set.Insert(victim + 1000 + static_cast<uint32_t>(rng.NextBelow(1000)));
  }
}
BENCHMARK(BM_RandomAccessSetChurn);

void BM_LruRecordUpload(benchmark::State& state) {
  auto list = MakeNeighbourList(StrategyKind::kLru, static_cast<size_t>(state.range(0)));
  Rng rng(4);
  for (auto _ : state) {
    list->RecordUpload(static_cast<uint32_t>(rng.NextBelow(500)), 1.0);
  }
}
BENCHMARK(BM_LruRecordUpload)->Arg(20)->Arg(200);

void BM_HistoryCollect(benchmark::State& state) {
  auto list = MakeNeighbourList(StrategyKind::kHistory, 20);
  Rng rng(5);
  for (int i = 0; i < 300; ++i) {
    list->RecordUpload(static_cast<uint32_t>(rng.NextBelow(200)), 1.0);
  }
  std::vector<uint32_t> out;
  for (auto _ : state) {
    out.clear();
    list->Collect(static_cast<size_t>(state.range(0)), out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_HistoryCollect)->Arg(5)->Arg(20);

void BM_RandomizeSwaps(benchmark::State& state) {
  // 500 peers x 40 files.
  StaticCaches caches;
  Rng setup(6);
  caches.caches.resize(500);
  for (auto& cache : caches.caches) {
    RandomAccessSet<uint32_t> unique;
    while (unique.size() < 40) {
      unique.Insert(static_cast<uint32_t>(setup.NextBelow(20'000)));
    }
    for (uint32_t f : unique) {
      cache.push_back(FileId(f));
    }
    std::sort(cache.begin(), cache.end());
  }
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RandomizeCaches(caches, 10'000, rng));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 10'000);
}
BENCHMARK(BM_RandomizeSwaps);

void BM_EventQueueThroughput(benchmark::State& state) {
  for (auto _ : state) {
    EventQueue queue;
    int sink = 0;
    for (int i = 0; i < 1000; ++i) {
      queue.Schedule(static_cast<double>(i % 17), [&sink] { ++sink; });
    }
    queue.Run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 1000);
}
BENCHMARK(BM_EventQueueThroughput);

}  // namespace
}  // namespace edk

BENCHMARK_MAIN();
