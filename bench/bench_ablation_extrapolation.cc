// Ablation: extrapolation policy. The paper fills unobserved days with the
// intersection of the neighbouring observations ("pessimistic"); the
// alternative carries the previous snapshot forward ("optimistic"). The
// pessimistic fill under-estimates cache contents and therefore overlap —
// the paper's clustering conclusions hold despite this bias, which this
// bench quantifies.

#include <iostream>

#include "bench/bench_common.h"
#include "src/analysis/clustering.h"
#include "src/analysis/popularity.h"
#include "src/common/table.h"
#include "src/trace/filter.h"

int main(int argc, char** argv) {
  const edk::BenchOptions options = edk::ParseBenchOptions(argc, argv);
  edk::PrintBenchHeader("Ablation: pessimistic vs carry-forward extrapolation",
                        "intersection fill under-estimates contents; clustering "
                        "survives the bias",
                        options);

  const edk::Trace filtered = edk::LoadOrGenerateFiltered(options);
  const edk::Trace pessimistic = edk::Extrapolate(filtered);
  const edk::Trace optimistic = edk::ExtrapolateCarryForward(filtered);

  const auto days_p = edk::ComputeDailyActivity(pessimistic);
  const auto days_o = edk::ComputeDailyActivity(optimistic);
  double files_p = 0;
  double files_o = 0;
  for (size_t d = 0; d < days_p.size() && d < days_o.size(); ++d) {
    files_p += static_cast<double>(days_p[d].files_seen);
    files_o += static_cast<double>(days_o[d].files_seen);
  }

  edk::AsciiTable table({"metric", "pessimistic (paper)", "carry-forward"});
  table.AddRow({"mean files per day",
                edk::AsciiTable::FormatCell(files_p / static_cast<double>(days_p.size())),
                edk::AsciiTable::FormatCell(files_o / static_cast<double>(days_o.size()))});

  const int day = pessimistic.first_day() + 3;
  const auto curve_p =
      edk::ComputeClusteringCurve(edk::BuildDayCaches(pessimistic, day), 12);
  const auto curve_o =
      edk::ComputeClusteringCurve(edk::BuildDayCaches(optimistic, day), 12);
  for (size_t k : {1u, 3u, 5u, 10u}) {
    table.AddRow({"P(another common | >= " + std::to_string(k) + ")",
                  edk::FormatPercent(curve_p.ProbabilityAt(k)),
                  edk::FormatPercent(curve_o.ProbabilityAt(k))});
  }
  table.AddRow({"pairs with >= 1 common file", std::to_string(curve_p.pairs_at_least[1]),
                std::to_string(curve_o.pairs_at_least[1])});
  table.Print(std::cout);
  std::cout << "\n(carry-forward sees more content, hence more pairs; the clustering "
               "correlation itself is stable across policies)\n";
  return 0;
}
