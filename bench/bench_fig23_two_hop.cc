// Reproduces Figure 23: two-hop semantic search (querying the semantic
// neighbours of one's semantic neighbours on a miss), with and without the
// most generous uploaders. Paper: two-hop reaches > 55% at 20 neighbours —
// the semantic relation is transitive.

#include <array>
#include <iostream>

#include "bench/bench_common.h"
#include "src/common/table.h"
#include "src/exec/parallel.h"
#include "src/semantic/scenario.h"
#include "src/semantic/search_sim.h"

int main(int argc, char** argv) {
  const edk::BenchOptions options = edk::ParseBenchOptions(argc, argv);
  edk::PrintBenchHeader("Figure 23: two-hop semantic search",
                        "2-hop > 55% at 20 neighbours; transitivity survives "
                        "removal of generous uploaders",
                        options);

  const edk::Trace filtered = edk::LoadOrGenerateFiltered(options);
  const edk::StaticCaches base = edk::BuildUnionCaches(filtered);
  const edk::StaticCaches no_top5 = edk::RemoveTopUploaders(base, 0.05);
  const edk::StaticCaches no_top15 = edk::RemoveTopUploaders(base, 0.15);

  auto run = [&options](const edk::StaticCaches& caches, size_t k, bool two_hop) {
    edk::SearchSimConfig config;
    config.strategy = edk::StrategyKind::kLru;
    config.list_size = k;
    config.two_hop = two_hop;
    config.seed = options.workload.seed;
    config.track_load = false;
    const auto result = RunSearchSimulation(caches, config);
    return two_hop ? result.TotalHitRate() : result.OneHopHitRate();
  };

  // 5 list sizes x 4 columns = 20 independent simulations; each cell writes
  // its own slot so the table is identical for any --threads value.
  const std::array<size_t, 5> list_sizes = {5, 10, 20, 40, 80};
  struct Cell {
    const edk::StaticCaches* caches;
    bool two_hop;
  };
  const std::array<Cell, 4> columns = {{{&base, false},
                                        {&base, true},
                                        {&no_top5, true},
                                        {&no_top15, true}}};
  std::vector<double> rates(list_sizes.size() * columns.size(), 0.0);
  edk::SweepTimer timer("fig23 two-hop grid");
  edk::ParallelFor(0, rates.size(), [&](size_t cell) {
    const Cell& column = columns[cell % columns.size()];
    rates[cell] = run(*column.caches, list_sizes[cell / columns.size()], column.two_hop);
  });
  timer.Report(rates.size());

  edk::AsciiTable table({"neighbours", "1 hop", "2 hop", "2 hop w/o top 5%",
                         "2 hop w/o top 15%"});
  for (size_t r = 0; r < list_sizes.size(); ++r) {
    table.AddRow({std::to_string(list_sizes[r]),
                  edk::FormatPercent(rates[r * columns.size() + 0]),
                  edk::FormatPercent(rates[r * columns.size() + 1]),
                  edk::FormatPercent(rates[r * columns.size() + 2]),
                  edk::FormatPercent(rates[r * columns.size() + 3])});
  }
  table.Print(std::cout);
  std::cout << "\n(paper: 2-hop 32% at 5 neighbours rising > 55% at 20; removing "
               "popular files raises it further — see bench_fig20_popular)\n";
  return 0;
}
