// Reproduces Figure 23: two-hop semantic search (querying the semantic
// neighbours of one's semantic neighbours on a miss), with and without the
// most generous uploaders. Paper: two-hop reaches > 55% at 20 neighbours —
// the semantic relation is transitive.

#include <iostream>

#include "bench/bench_common.h"
#include "src/common/table.h"
#include "src/semantic/scenario.h"
#include "src/semantic/search_sim.h"

int main(int argc, char** argv) {
  const edk::BenchOptions options = edk::ParseBenchOptions(argc, argv);
  edk::PrintBenchHeader("Figure 23: two-hop semantic search",
                        "2-hop > 55% at 20 neighbours; transitivity survives "
                        "removal of generous uploaders",
                        options);

  const edk::Trace filtered = edk::LoadOrGenerateFiltered(options);
  const edk::StaticCaches base = edk::BuildUnionCaches(filtered);
  const edk::StaticCaches no_top5 = edk::RemoveTopUploaders(base, 0.05);
  const edk::StaticCaches no_top15 = edk::RemoveTopUploaders(base, 0.15);

  auto run = [&options](const edk::StaticCaches& caches, size_t k, bool two_hop) {
    edk::SearchSimConfig config;
    config.strategy = edk::StrategyKind::kLru;
    config.list_size = k;
    config.two_hop = two_hop;
    config.seed = options.workload.seed;
    config.track_load = false;
    const auto result = RunSearchSimulation(caches, config);
    return two_hop ? result.TotalHitRate() : result.OneHopHitRate();
  };

  edk::AsciiTable table({"neighbours", "1 hop", "2 hop", "2 hop w/o top 5%",
                         "2 hop w/o top 15%"});
  for (size_t k : {5u, 10u, 20u, 40u, 80u}) {
    table.AddRow({std::to_string(k), edk::FormatPercent(run(base, k, false)),
                  edk::FormatPercent(run(base, k, true)),
                  edk::FormatPercent(run(no_top5, k, true)),
                  edk::FormatPercent(run(no_top15, k, true))});
  }
  table.Print(std::cout);
  std::cout << "\n(paper: 2-hop 32% at 5 neighbours rising > 55% at 20; removing "
               "popular files raises it further — see bench_fig20_popular)\n";
  return 0;
}
