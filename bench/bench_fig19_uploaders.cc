// Reproduces Figure 19: LRU hit rate after removing the 5/10/15% most
// generous uploaders. Paper: hit rate drops by ~10 points (short lists) to
// ~20 points (long lists) but stays significant (> 30% at 20 neighbours
// even without the top 15%) — semantic clustering is not just generous
// peers.

#include <iostream>

#include "bench/bench_common.h"
#include "src/common/table.h"
#include "src/semantic/scenario.h"
#include "src/semantic/search_sim.h"

int main(int argc, char** argv) {
  const edk::BenchOptions options = edk::ParseBenchOptions(argc, argv);
  edk::PrintBenchHeader("Figure 19: LRU hit rate without the top 5-15% uploaders",
                        "drop of 10-20 points; still > 30% at 20 neighbours w/o top 15%",
                        options);

  const edk::Trace filtered = edk::LoadOrGenerateFiltered(options);
  const edk::StaticCaches base = edk::BuildUnionCaches(filtered);

  const double removals[] = {0.0, 0.05, 0.10, 0.15};
  std::vector<edk::StaticCaches> scenarios;
  for (double fraction : removals) {
    scenarios.push_back(fraction == 0.0 ? base
                                        : edk::RemoveTopUploaders(base, fraction));
  }

  edk::AsciiTable table({"neighbours", "all uploaders", "w/o top 5%", "w/o top 10%",
                         "w/o top 15%"});
  for (size_t k : {5u, 10u, 20u, 40u, 80u, 120u, 200u}) {
    std::vector<std::string> row = {std::to_string(k)};
    for (const auto& caches : scenarios) {
      edk::SearchSimConfig config;
      config.strategy = edk::StrategyKind::kLru;
      config.list_size = k;
      config.seed = options.workload.seed;
      config.track_load = false;
      row.push_back(edk::FormatPercent(RunSearchSimulation(caches, config).OneHopHitRate()));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::cout << "\n(paper at 20 neighbours: 41% all, 33% w/o 5%, 31% w/o 15%)\n";
  return 0;
}
