// Reproduces Table 3: combined influence of generous uploaders and popular
// files on the LRU hit ratio at 5/10/20 neighbours.
//
// Paper rows (%):             5   10   20
//   LRU                      28   34   41
//   w/o top 5% uploaders     21   26   33
//   w/o 5% popular files     36   42   47
//   w/o both (5%)            25   30   34
//   w/o top 15% uploaders    19   24   31
//   w/o 15% popular files    43   47   52
//   w/o both (15%)           28   30   31

#include <iostream>

#include "bench/bench_common.h"
#include "src/common/table.h"
#include "src/semantic/scenario.h"
#include "src/semantic/search_sim.h"

int main(int argc, char** argv) {
  const edk::BenchOptions options = edk::ParseBenchOptions(argc, argv);
  edk::PrintBenchHeader("Table 3: combined removal of uploaders and popular files",
                        "popular files and generous uploaders pull the hit "
                        "ratio in opposite directions",
                        options);

  const edk::Trace filtered = edk::LoadOrGenerateFiltered(options);
  const edk::StaticCaches base = edk::BuildUnionCaches(filtered);
  const size_t file_count = filtered.file_count();

  struct Row {
    const char* label;
    edk::StaticCaches caches;
  };
  std::vector<Row> rows;
  rows.push_back({"LRU (baseline)", base});
  rows.push_back({"w/o top 5% uploaders", edk::RemoveTopUploaders(base, 0.05)});
  rows.push_back({"w/o 5% popular files", edk::RemoveTopFiles(base, 0.05, file_count)});
  rows.push_back({"w/o both (5%)",
                  edk::RemoveTopUploadersAndFiles(base, 0.05, 0.05, file_count)});
  rows.push_back({"w/o top 15% uploaders", edk::RemoveTopUploaders(base, 0.15)});
  rows.push_back({"w/o 15% popular files", edk::RemoveTopFiles(base, 0.15, file_count)});
  rows.push_back({"w/o both (15%)",
                  edk::RemoveTopUploadersAndFiles(base, 0.15, 0.15, file_count)});

  edk::AsciiTable table({"scenario", "5 neighbours", "10 neighbours", "20 neighbours"});
  for (const auto& row : rows) {
    std::vector<std::string> cells = {row.label};
    for (size_t k : {5u, 10u, 20u}) {
      edk::SearchSimConfig config;
      config.strategy = edk::StrategyKind::kLru;
      config.list_size = k;
      config.seed = options.workload.seed;
      config.track_load = false;
      cells.push_back(
          edk::FormatPercent(RunSearchSimulation(row.caches, config).OneHopHitRate(), 0));
    }
    table.AddRow(std::move(cells));
  }
  table.Print(std::cout);
  return 0;
}
