// Reproduces Figure 20: LRU hit rate after removing the 5/15/30% most
// popular files. Paper: removal *raises* the hit rate (rare files cluster
// harder), most strongly for short lists; requests drop to 67/48/33% of the
// original volume.

#include <iostream>

#include "bench/bench_common.h"
#include "src/common/table.h"
#include "src/semantic/scenario.h"
#include "src/semantic/search_sim.h"

int main(int argc, char** argv) {
  const edk::BenchOptions options = edk::ParseBenchOptions(argc, argv);
  edk::PrintBenchHeader("Figure 20: LRU hit rate without the top 5-30% popular files",
                        "hit rate increases when popular files are removed; "
                        "requests shrink to 67/48/33%",
                        options);

  const edk::Trace filtered = edk::LoadOrGenerateFiltered(options);
  const edk::StaticCaches base = edk::BuildUnionCaches(filtered);

  const double removals[] = {0.0, 0.05, 0.15, 0.30};
  std::vector<edk::StaticCaches> scenarios;
  for (double fraction : removals) {
    scenarios.push_back(fraction == 0.0
                            ? base
                            : edk::RemoveTopFiles(base, fraction, filtered.file_count()));
  }

  edk::AsciiTable table({"neighbours", "all files", "w/o 5% popular", "w/o 15% popular",
                         "w/o 30% popular"});
  std::vector<uint64_t> request_counts(scenarios.size(), 0);
  for (size_t k : {5u, 10u, 20u, 100u, 200u}) {
    std::vector<std::string> row = {std::to_string(k)};
    for (size_t s = 0; s < scenarios.size(); ++s) {
      edk::SearchSimConfig config;
      config.strategy = edk::StrategyKind::kLru;
      config.list_size = k;
      config.seed = options.workload.seed;
      config.track_load = false;
      const auto result = RunSearchSimulation(scenarios[s], config);
      request_counts[s] = result.requests;
      row.push_back(edk::FormatPercent(result.OneHopHitRate()));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);

  std::cout << "\nremaining requests vs baseline (paper: 67% / 48% / 33%):\n";
  for (size_t s = 1; s < scenarios.size(); ++s) {
    std::cout << "  without " << edk::FormatPercent(removals[s], 0)
              << " of popular files: "
              << edk::FormatPercent(static_cast<double>(request_counts[s]) /
                                    static_cast<double>(request_counts[0]))
              << " (" << request_counts[s] << " requests)\n";
  }
  return 0;
}
