file(REMOVE_RECURSE
  "../bench/bench_ablation_interest"
  "../bench/bench_ablation_interest.pdb"
  "CMakeFiles/bench_ablation_interest.dir/bench_ablation_interest.cc.o"
  "CMakeFiles/bench_ablation_interest.dir/bench_ablation_interest.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_interest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
