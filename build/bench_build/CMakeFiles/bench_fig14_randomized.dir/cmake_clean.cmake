file(REMOVE_RECURSE
  "../bench/bench_fig14_randomized"
  "../bench/bench_fig14_randomized.pdb"
  "CMakeFiles/bench_fig14_randomized.dir/bench_fig14_randomized.cc.o"
  "CMakeFiles/bench_fig14_randomized.dir/bench_fig14_randomized.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_randomized.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
