# Empty dependencies file for bench_fig14_randomized.
# This may be replaced when dependencies are built.
