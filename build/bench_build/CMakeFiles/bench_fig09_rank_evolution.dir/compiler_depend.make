# Empty compiler generated dependencies file for bench_fig09_rank_evolution.
# This may be replaced when dependencies are built.
