# Empty compiler generated dependencies file for bench_fig19_uploaders.
# This may be replaced when dependencies are built.
