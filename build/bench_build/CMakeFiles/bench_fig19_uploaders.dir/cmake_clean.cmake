file(REMOVE_RECURSE
  "../bench/bench_fig19_uploaders"
  "../bench/bench_fig19_uploaders.pdb"
  "CMakeFiles/bench_fig19_uploaders.dir/bench_fig19_uploaders.cc.o"
  "CMakeFiles/bench_fig19_uploaders.dir/bench_fig19_uploaders.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_uploaders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
