# Empty dependencies file for bench_table2_top_as.
# This may be replaced when dependencies are built.
