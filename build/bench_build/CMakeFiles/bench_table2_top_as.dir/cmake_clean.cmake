file(REMOVE_RECURSE
  "../bench/bench_table2_top_as"
  "../bench/bench_table2_top_as.pdb"
  "CMakeFiles/bench_table2_top_as.dir/bench_table2_top_as.cc.o"
  "CMakeFiles/bench_table2_top_as.dir/bench_table2_top_as.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_top_as.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
