file(REMOVE_RECURSE
  "../bench_lib/libbench_common.a"
  "../bench_lib/libbench_common.pdb"
  "CMakeFiles/bench_common.dir/bench_common.cc.o"
  "CMakeFiles/bench_common.dir/bench_common.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
