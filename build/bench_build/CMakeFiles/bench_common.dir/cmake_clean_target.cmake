file(REMOVE_RECURSE
  "../bench_lib/libbench_common.a"
)
