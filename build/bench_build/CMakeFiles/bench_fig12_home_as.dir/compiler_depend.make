# Empty compiler generated dependencies file for bench_fig12_home_as.
# This may be replaced when dependencies are built.
