file(REMOVE_RECURSE
  "../bench/bench_fig12_home_as"
  "../bench/bench_fig12_home_as.pdb"
  "CMakeFiles/bench_fig12_home_as.dir/bench_fig12_home_as.cc.o"
  "CMakeFiles/bench_fig12_home_as.dir/bench_fig12_home_as.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_home_as.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
