# Empty dependencies file for bench_fig08_spread.
# This may be replaced when dependencies are built.
