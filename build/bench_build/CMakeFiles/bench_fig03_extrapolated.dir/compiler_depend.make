# Empty compiler generated dependencies file for bench_fig03_extrapolated.
# This may be replaced when dependencies are built.
