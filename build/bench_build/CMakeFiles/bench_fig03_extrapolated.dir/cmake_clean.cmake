file(REMOVE_RECURSE
  "../bench/bench_fig03_extrapolated"
  "../bench/bench_fig03_extrapolated.pdb"
  "CMakeFiles/bench_fig03_extrapolated.dir/bench_fig03_extrapolated.cc.o"
  "CMakeFiles/bench_fig03_extrapolated.dir/bench_fig03_extrapolated.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_extrapolated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
