file(REMOVE_RECURSE
  "../bench/bench_fig22_load"
  "../bench/bench_fig22_load.pdb"
  "CMakeFiles/bench_fig22_load.dir/bench_fig22_load.cc.o"
  "CMakeFiles/bench_fig22_load.dir/bench_fig22_load.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig22_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
