# Empty dependencies file for bench_ext_peercache.
# This may be replaced when dependencies are built.
