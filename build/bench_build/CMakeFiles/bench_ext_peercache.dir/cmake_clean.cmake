file(REMOVE_RECURSE
  "../bench/bench_ext_peercache"
  "../bench/bench_ext_peercache.pdb"
  "CMakeFiles/bench_ext_peercache.dir/bench_ext_peercache.cc.o"
  "CMakeFiles/bench_ext_peercache.dir/bench_ext_peercache.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_peercache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
