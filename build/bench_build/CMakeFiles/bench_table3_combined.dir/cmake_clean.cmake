file(REMOVE_RECURSE
  "../bench/bench_table3_combined"
  "../bench/bench_table3_combined.pdb"
  "CMakeFiles/bench_table3_combined.dir/bench_table3_combined.cc.o"
  "CMakeFiles/bench_table3_combined.dir/bench_table3_combined.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_combined.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
