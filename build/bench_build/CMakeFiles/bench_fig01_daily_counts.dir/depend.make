# Empty dependencies file for bench_fig01_daily_counts.
# This may be replaced when dependencies are built.
