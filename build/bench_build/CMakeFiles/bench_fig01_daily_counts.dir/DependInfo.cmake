
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig01_daily_counts.cc" "bench_build/CMakeFiles/bench_fig01_daily_counts.dir/bench_fig01_daily_counts.cc.o" "gcc" "bench_build/CMakeFiles/bench_fig01_daily_counts.dir/bench_fig01_daily_counts.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench_build/CMakeFiles/bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/edk_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/semantic/CMakeFiles/edk_semantic.dir/DependInfo.cmake"
  "/root/repo/build/src/crawler/CMakeFiles/edk_crawler.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/edk_net.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/edk_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/edk_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/edk_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/edk_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
