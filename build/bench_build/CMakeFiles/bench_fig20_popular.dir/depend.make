# Empty dependencies file for bench_fig20_popular.
# This may be replaced when dependencies are built.
