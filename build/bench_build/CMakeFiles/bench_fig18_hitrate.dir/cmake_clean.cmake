file(REMOVE_RECURSE
  "../bench/bench_fig18_hitrate"
  "../bench/bench_fig18_hitrate.pdb"
  "CMakeFiles/bench_fig18_hitrate.dir/bench_fig18_hitrate.cc.o"
  "CMakeFiles/bench_fig18_hitrate.dir/bench_fig18_hitrate.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_hitrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
