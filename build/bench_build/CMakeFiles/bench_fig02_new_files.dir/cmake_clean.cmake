file(REMOVE_RECURSE
  "../bench/bench_fig02_new_files"
  "../bench/bench_fig02_new_files.pdb"
  "CMakeFiles/bench_fig02_new_files.dir/bench_fig02_new_files.cc.o"
  "CMakeFiles/bench_fig02_new_files.dir/bench_fig02_new_files.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_new_files.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
