# Empty compiler generated dependencies file for bench_fig02_new_files.
# This may be replaced when dependencies are built.
