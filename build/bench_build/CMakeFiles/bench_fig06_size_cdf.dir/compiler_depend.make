# Empty compiler generated dependencies file for bench_fig06_size_cdf.
# This may be replaced when dependencies are built.
