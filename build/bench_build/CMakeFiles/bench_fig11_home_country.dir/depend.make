# Empty dependencies file for bench_fig11_home_country.
# This may be replaced when dependencies are built.
