file(REMOVE_RECURSE
  "../bench/bench_fig11_home_country"
  "../bench/bench_fig11_home_country.pdb"
  "CMakeFiles/bench_fig11_home_country.dir/bench_fig11_home_country.cc.o"
  "CMakeFiles/bench_fig11_home_country.dir/bench_fig11_home_country.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_home_country.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
