# Empty dependencies file for bench_fig15_overlap.
# This may be replaced when dependencies are built.
