file(REMOVE_RECURSE
  "../bench/bench_fig15_overlap"
  "../bench/bench_fig15_overlap.pdb"
  "CMakeFiles/bench_fig15_overlap.dir/bench_fig15_overlap.cc.o"
  "CMakeFiles/bench_fig15_overlap.dir/bench_fig15_overlap.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
