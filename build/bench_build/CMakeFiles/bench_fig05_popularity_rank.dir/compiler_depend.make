# Empty compiler generated dependencies file for bench_fig05_popularity_rank.
# This may be replaced when dependencies are built.
