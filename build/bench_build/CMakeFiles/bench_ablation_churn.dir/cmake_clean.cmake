file(REMOVE_RECURSE
  "../bench/bench_ablation_churn"
  "../bench/bench_ablation_churn.pdb"
  "CMakeFiles/bench_ablation_churn.dir/bench_ablation_churn.cc.o"
  "CMakeFiles/bench_ablation_churn.dir/bench_ablation_churn.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_churn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
