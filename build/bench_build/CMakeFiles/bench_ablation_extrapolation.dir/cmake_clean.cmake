file(REMOVE_RECURSE
  "../bench/bench_ablation_extrapolation"
  "../bench/bench_ablation_extrapolation.pdb"
  "CMakeFiles/bench_ablation_extrapolation.dir/bench_ablation_extrapolation.cc.o"
  "CMakeFiles/bench_ablation_extrapolation.dir/bench_ablation_extrapolation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_extrapolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
