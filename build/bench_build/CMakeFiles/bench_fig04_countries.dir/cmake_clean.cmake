file(REMOVE_RECURSE
  "../bench/bench_fig04_countries"
  "../bench/bench_fig04_countries.pdb"
  "CMakeFiles/bench_fig04_countries.dir/bench_fig04_countries.cc.o"
  "CMakeFiles/bench_fig04_countries.dir/bench_fig04_countries.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_countries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
