# Empty compiler generated dependencies file for bench_fig04_countries.
# This may be replaced when dependencies are built.
