# Empty dependencies file for bench_ext_rare_breakdown.
# This may be replaced when dependencies are built.
