file(REMOVE_RECURSE
  "../bench/bench_ext_rare_breakdown"
  "../bench/bench_ext_rare_breakdown.pdb"
  "CMakeFiles/bench_ext_rare_breakdown.dir/bench_ext_rare_breakdown.cc.o"
  "CMakeFiles/bench_ext_rare_breakdown.dir/bench_ext_rare_breakdown.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_rare_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
