file(REMOVE_RECURSE
  "../bench/bench_ext_dynamic"
  "../bench/bench_ext_dynamic.pdb"
  "CMakeFiles/bench_ext_dynamic.dir/bench_ext_dynamic.cc.o"
  "CMakeFiles/bench_ext_dynamic.dir/bench_ext_dynamic.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_dynamic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
