file(REMOVE_RECURSE
  "../bench/bench_fig23_two_hop"
  "../bench/bench_fig23_two_hop.pdb"
  "CMakeFiles/bench_fig23_two_hop.dir/bench_fig23_two_hop.cc.o"
  "CMakeFiles/bench_fig23_two_hop.dir/bench_fig23_two_hop.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig23_two_hop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
