# Empty compiler generated dependencies file for bench_fig23_two_hop.
# This may be replaced when dependencies are built.
