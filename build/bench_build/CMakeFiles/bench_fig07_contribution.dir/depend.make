# Empty dependencies file for bench_fig07_contribution.
# This may be replaced when dependencies are built.
