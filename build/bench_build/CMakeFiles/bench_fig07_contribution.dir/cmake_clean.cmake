file(REMOVE_RECURSE
  "../bench/bench_fig07_contribution"
  "../bench/bench_fig07_contribution.pdb"
  "CMakeFiles/bench_fig07_contribution.dir/bench_fig07_contribution.cc.o"
  "CMakeFiles/bench_fig07_contribution.dir/bench_fig07_contribution.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_contribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
