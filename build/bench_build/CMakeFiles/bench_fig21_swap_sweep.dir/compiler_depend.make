# Empty compiler generated dependencies file for bench_fig21_swap_sweep.
# This may be replaced when dependencies are built.
