file(REMOVE_RECURSE
  "../bench/bench_fig21_swap_sweep"
  "../bench/bench_fig21_swap_sweep.pdb"
  "CMakeFiles/bench_fig21_swap_sweep.dir/bench_fig21_swap_sweep.cc.o"
  "CMakeFiles/bench_fig21_swap_sweep.dir/bench_fig21_swap_sweep.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig21_swap_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
