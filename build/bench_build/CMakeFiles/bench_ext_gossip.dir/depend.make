# Empty dependencies file for bench_ext_gossip.
# This may be replaced when dependencies are built.
