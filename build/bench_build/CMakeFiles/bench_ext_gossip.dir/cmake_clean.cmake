file(REMOVE_RECURSE
  "../bench/bench_ext_gossip"
  "../bench/bench_ext_gossip.pdb"
  "CMakeFiles/bench_ext_gossip.dir/bench_ext_gossip.cc.o"
  "CMakeFiles/bench_ext_gossip.dir/bench_ext_gossip.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_gossip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
