file(REMOVE_RECURSE
  "../bench/bench_table1_characteristics"
  "../bench/bench_table1_characteristics.pdb"
  "CMakeFiles/bench_table1_characteristics.dir/bench_table1_characteristics.cc.o"
  "CMakeFiles/bench_table1_characteristics.dir/bench_table1_characteristics.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_characteristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
