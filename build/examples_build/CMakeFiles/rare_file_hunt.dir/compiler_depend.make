# Empty compiler generated dependencies file for rare_file_hunt.
# This may be replaced when dependencies are built.
