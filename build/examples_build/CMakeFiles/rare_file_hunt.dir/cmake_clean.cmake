file(REMOVE_RECURSE
  "../examples/rare_file_hunt"
  "../examples/rare_file_hunt.pdb"
  "CMakeFiles/rare_file_hunt.dir/rare_file_hunt.cpp.o"
  "CMakeFiles/rare_file_hunt.dir/rare_file_hunt.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rare_file_hunt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
