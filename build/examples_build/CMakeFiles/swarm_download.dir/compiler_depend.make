# Empty compiler generated dependencies file for swarm_download.
# This may be replaced when dependencies are built.
