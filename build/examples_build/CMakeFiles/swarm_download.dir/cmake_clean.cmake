file(REMOVE_RECURSE
  "../examples/swarm_download"
  "../examples/swarm_download.pdb"
  "CMakeFiles/swarm_download.dir/swarm_download.cpp.o"
  "CMakeFiles/swarm_download.dir/swarm_download.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swarm_download.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
