file(REMOVE_RECURSE
  "../examples/crawl_and_analyze"
  "../examples/crawl_and_analyze.pdb"
  "CMakeFiles/crawl_and_analyze.dir/crawl_and_analyze.cpp.o"
  "CMakeFiles/crawl_and_analyze.dir/crawl_and_analyze.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crawl_and_analyze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
