# Empty dependencies file for crawl_and_analyze.
# This may be replaced when dependencies are built.
