file(REMOVE_RECURSE
  "../examples/semantic_overlay"
  "../examples/semantic_overlay.pdb"
  "CMakeFiles/semantic_overlay.dir/semantic_overlay.cpp.o"
  "CMakeFiles/semantic_overlay.dir/semantic_overlay.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semantic_overlay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
