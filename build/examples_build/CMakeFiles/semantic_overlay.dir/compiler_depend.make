# Empty compiler generated dependencies file for semantic_overlay.
# This may be replaced when dependencies are built.
