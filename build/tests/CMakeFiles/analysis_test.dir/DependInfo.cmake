
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analysis/clustering_test.cc" "tests/CMakeFiles/analysis_test.dir/analysis/clustering_test.cc.o" "gcc" "tests/CMakeFiles/analysis_test.dir/analysis/clustering_test.cc.o.d"
  "/root/repo/tests/analysis/contribution_test.cc" "tests/CMakeFiles/analysis_test.dir/analysis/contribution_test.cc.o" "gcc" "tests/CMakeFiles/analysis_test.dir/analysis/contribution_test.cc.o.d"
  "/root/repo/tests/analysis/geo_clustering_test.cc" "tests/CMakeFiles/analysis_test.dir/analysis/geo_clustering_test.cc.o" "gcc" "tests/CMakeFiles/analysis_test.dir/analysis/geo_clustering_test.cc.o.d"
  "/root/repo/tests/analysis/overlap_test.cc" "tests/CMakeFiles/analysis_test.dir/analysis/overlap_test.cc.o" "gcc" "tests/CMakeFiles/analysis_test.dir/analysis/overlap_test.cc.o.d"
  "/root/repo/tests/analysis/popularity_test.cc" "tests/CMakeFiles/analysis_test.dir/analysis/popularity_test.cc.o" "gcc" "tests/CMakeFiles/analysis_test.dir/analysis/popularity_test.cc.o.d"
  "/root/repo/tests/analysis/report_test.cc" "tests/CMakeFiles/analysis_test.dir/analysis/report_test.cc.o" "gcc" "tests/CMakeFiles/analysis_test.dir/analysis/report_test.cc.o.d"
  "/root/repo/tests/analysis/spread_test.cc" "tests/CMakeFiles/analysis_test.dir/analysis/spread_test.cc.o" "gcc" "tests/CMakeFiles/analysis_test.dir/analysis/spread_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/edk_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/edk_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/edk_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/edk_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/edk_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
