
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/trace/filter_test.cc" "tests/CMakeFiles/trace_test.dir/trace/filter_test.cc.o" "gcc" "tests/CMakeFiles/trace_test.dir/trace/filter_test.cc.o.d"
  "/root/repo/tests/trace/randomize_test.cc" "tests/CMakeFiles/trace_test.dir/trace/randomize_test.cc.o" "gcc" "tests/CMakeFiles/trace_test.dir/trace/randomize_test.cc.o.d"
  "/root/repo/tests/trace/serialize_test.cc" "tests/CMakeFiles/trace_test.dir/trace/serialize_test.cc.o" "gcc" "tests/CMakeFiles/trace_test.dir/trace/serialize_test.cc.o.d"
  "/root/repo/tests/trace/trace_property_test.cc" "tests/CMakeFiles/trace_test.dir/trace/trace_property_test.cc.o" "gcc" "tests/CMakeFiles/trace_test.dir/trace/trace_property_test.cc.o.d"
  "/root/repo/tests/trace/trace_test.cc" "tests/CMakeFiles/trace_test.dir/trace/trace_test.cc.o" "gcc" "tests/CMakeFiles/trace_test.dir/trace/trace_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/edk_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/edk_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
