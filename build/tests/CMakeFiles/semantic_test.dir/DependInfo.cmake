
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/semantic/as_cache_test.cc" "tests/CMakeFiles/semantic_test.dir/semantic/as_cache_test.cc.o" "gcc" "tests/CMakeFiles/semantic_test.dir/semantic/as_cache_test.cc.o.d"
  "/root/repo/tests/semantic/dynamic_sim_test.cc" "tests/CMakeFiles/semantic_test.dir/semantic/dynamic_sim_test.cc.o" "gcc" "tests/CMakeFiles/semantic_test.dir/semantic/dynamic_sim_test.cc.o.d"
  "/root/repo/tests/semantic/gossip_overlay_test.cc" "tests/CMakeFiles/semantic_test.dir/semantic/gossip_overlay_test.cc.o" "gcc" "tests/CMakeFiles/semantic_test.dir/semantic/gossip_overlay_test.cc.o.d"
  "/root/repo/tests/semantic/neighbour_list_test.cc" "tests/CMakeFiles/semantic_test.dir/semantic/neighbour_list_test.cc.o" "gcc" "tests/CMakeFiles/semantic_test.dir/semantic/neighbour_list_test.cc.o.d"
  "/root/repo/tests/semantic/scenario_test.cc" "tests/CMakeFiles/semantic_test.dir/semantic/scenario_test.cc.o" "gcc" "tests/CMakeFiles/semantic_test.dir/semantic/scenario_test.cc.o.d"
  "/root/repo/tests/semantic/search_sim_property_test.cc" "tests/CMakeFiles/semantic_test.dir/semantic/search_sim_property_test.cc.o" "gcc" "tests/CMakeFiles/semantic_test.dir/semantic/search_sim_property_test.cc.o.d"
  "/root/repo/tests/semantic/search_sim_test.cc" "tests/CMakeFiles/semantic_test.dir/semantic/search_sim_test.cc.o" "gcc" "tests/CMakeFiles/semantic_test.dir/semantic/search_sim_test.cc.o.d"
  "/root/repo/tests/semantic/semantic_client_strategy_test.cc" "tests/CMakeFiles/semantic_test.dir/semantic/semantic_client_strategy_test.cc.o" "gcc" "tests/CMakeFiles/semantic_test.dir/semantic/semantic_client_strategy_test.cc.o.d"
  "/root/repo/tests/semantic/semantic_client_test.cc" "tests/CMakeFiles/semantic_test.dir/semantic/semantic_client_test.cc.o" "gcc" "tests/CMakeFiles/semantic_test.dir/semantic/semantic_client_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/semantic/CMakeFiles/edk_semantic.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/edk_net.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/edk_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/edk_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/edk_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
