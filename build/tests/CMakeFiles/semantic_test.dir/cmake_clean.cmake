file(REMOVE_RECURSE
  "CMakeFiles/semantic_test.dir/semantic/as_cache_test.cc.o"
  "CMakeFiles/semantic_test.dir/semantic/as_cache_test.cc.o.d"
  "CMakeFiles/semantic_test.dir/semantic/dynamic_sim_test.cc.o"
  "CMakeFiles/semantic_test.dir/semantic/dynamic_sim_test.cc.o.d"
  "CMakeFiles/semantic_test.dir/semantic/gossip_overlay_test.cc.o"
  "CMakeFiles/semantic_test.dir/semantic/gossip_overlay_test.cc.o.d"
  "CMakeFiles/semantic_test.dir/semantic/neighbour_list_test.cc.o"
  "CMakeFiles/semantic_test.dir/semantic/neighbour_list_test.cc.o.d"
  "CMakeFiles/semantic_test.dir/semantic/scenario_test.cc.o"
  "CMakeFiles/semantic_test.dir/semantic/scenario_test.cc.o.d"
  "CMakeFiles/semantic_test.dir/semantic/search_sim_property_test.cc.o"
  "CMakeFiles/semantic_test.dir/semantic/search_sim_property_test.cc.o.d"
  "CMakeFiles/semantic_test.dir/semantic/search_sim_test.cc.o"
  "CMakeFiles/semantic_test.dir/semantic/search_sim_test.cc.o.d"
  "CMakeFiles/semantic_test.dir/semantic/semantic_client_strategy_test.cc.o"
  "CMakeFiles/semantic_test.dir/semantic/semantic_client_strategy_test.cc.o.d"
  "CMakeFiles/semantic_test.dir/semantic/semantic_client_test.cc.o"
  "CMakeFiles/semantic_test.dir/semantic/semantic_client_test.cc.o.d"
  "semantic_test"
  "semantic_test.pdb"
  "semantic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semantic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
