
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/workload/catalog_test.cc" "tests/CMakeFiles/workload_test.dir/workload/catalog_test.cc.o" "gcc" "tests/CMakeFiles/workload_test.dir/workload/catalog_test.cc.o.d"
  "/root/repo/tests/workload/generator_test.cc" "tests/CMakeFiles/workload_test.dir/workload/generator_test.cc.o" "gcc" "tests/CMakeFiles/workload_test.dir/workload/generator_test.cc.o.d"
  "/root/repo/tests/workload/geography_test.cc" "tests/CMakeFiles/workload_test.dir/workload/geography_test.cc.o" "gcc" "tests/CMakeFiles/workload_test.dir/workload/geography_test.cc.o.d"
  "/root/repo/tests/workload/population_test.cc" "tests/CMakeFiles/workload_test.dir/workload/population_test.cc.o" "gcc" "tests/CMakeFiles/workload_test.dir/workload/population_test.cc.o.d"
  "/root/repo/tests/workload/validate_test.cc" "tests/CMakeFiles/workload_test.dir/workload/validate_test.cc.o" "gcc" "tests/CMakeFiles/workload_test.dir/workload/validate_test.cc.o.d"
  "/root/repo/tests/workload/workload_property_test.cc" "tests/CMakeFiles/workload_test.dir/workload/workload_property_test.cc.o" "gcc" "tests/CMakeFiles/workload_test.dir/workload/workload_property_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/edk_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/edk_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/edk_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
