file(REMOVE_RECURSE
  "CMakeFiles/crawler_test.dir/crawler/crawler_artifact_test.cc.o"
  "CMakeFiles/crawler_test.dir/crawler/crawler_artifact_test.cc.o.d"
  "CMakeFiles/crawler_test.dir/crawler/crawler_test.cc.o"
  "CMakeFiles/crawler_test.dir/crawler/crawler_test.cc.o.d"
  "crawler_test"
  "crawler_test.pdb"
  "crawler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crawler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
