
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/net/client_test.cc" "tests/CMakeFiles/net_test.dir/net/client_test.cc.o" "gcc" "tests/CMakeFiles/net_test.dir/net/client_test.cc.o.d"
  "/root/repo/tests/net/download_manager_test.cc" "tests/CMakeFiles/net_test.dir/net/download_manager_test.cc.o" "gcc" "tests/CMakeFiles/net_test.dir/net/download_manager_test.cc.o.d"
  "/root/repo/tests/net/event_queue_test.cc" "tests/CMakeFiles/net_test.dir/net/event_queue_test.cc.o" "gcc" "tests/CMakeFiles/net_test.dir/net/event_queue_test.cc.o.d"
  "/root/repo/tests/net/latency_test.cc" "tests/CMakeFiles/net_test.dir/net/latency_test.cc.o" "gcc" "tests/CMakeFiles/net_test.dir/net/latency_test.cc.o.d"
  "/root/repo/tests/net/network_test.cc" "tests/CMakeFiles/net_test.dir/net/network_test.cc.o" "gcc" "tests/CMakeFiles/net_test.dir/net/network_test.cc.o.d"
  "/root/repo/tests/net/server_test.cc" "tests/CMakeFiles/net_test.dir/net/server_test.cc.o" "gcc" "tests/CMakeFiles/net_test.dir/net/server_test.cc.o.d"
  "/root/repo/tests/net/swarm_test.cc" "tests/CMakeFiles/net_test.dir/net/swarm_test.cc.o" "gcc" "tests/CMakeFiles/net_test.dir/net/swarm_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/edk_net.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/edk_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/edk_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/edk_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
