# Empty dependencies file for edk_workload.
# This may be replaced when dependencies are built.
