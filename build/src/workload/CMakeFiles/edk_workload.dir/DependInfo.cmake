
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/behaviour.cc" "src/workload/CMakeFiles/edk_workload.dir/behaviour.cc.o" "gcc" "src/workload/CMakeFiles/edk_workload.dir/behaviour.cc.o.d"
  "/root/repo/src/workload/catalog.cc" "src/workload/CMakeFiles/edk_workload.dir/catalog.cc.o" "gcc" "src/workload/CMakeFiles/edk_workload.dir/catalog.cc.o.d"
  "/root/repo/src/workload/generator.cc" "src/workload/CMakeFiles/edk_workload.dir/generator.cc.o" "gcc" "src/workload/CMakeFiles/edk_workload.dir/generator.cc.o.d"
  "/root/repo/src/workload/geography.cc" "src/workload/CMakeFiles/edk_workload.dir/geography.cc.o" "gcc" "src/workload/CMakeFiles/edk_workload.dir/geography.cc.o.d"
  "/root/repo/src/workload/population.cc" "src/workload/CMakeFiles/edk_workload.dir/population.cc.o" "gcc" "src/workload/CMakeFiles/edk_workload.dir/population.cc.o.d"
  "/root/repo/src/workload/validate.cc" "src/workload/CMakeFiles/edk_workload.dir/validate.cc.o" "gcc" "src/workload/CMakeFiles/edk_workload.dir/validate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/edk_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/edk_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
