file(REMOVE_RECURSE
  "libedk_workload.a"
)
