# Empty compiler generated dependencies file for edk_workload.
# This may be replaced when dependencies are built.
