file(REMOVE_RECURSE
  "CMakeFiles/edk_workload.dir/behaviour.cc.o"
  "CMakeFiles/edk_workload.dir/behaviour.cc.o.d"
  "CMakeFiles/edk_workload.dir/catalog.cc.o"
  "CMakeFiles/edk_workload.dir/catalog.cc.o.d"
  "CMakeFiles/edk_workload.dir/generator.cc.o"
  "CMakeFiles/edk_workload.dir/generator.cc.o.d"
  "CMakeFiles/edk_workload.dir/geography.cc.o"
  "CMakeFiles/edk_workload.dir/geography.cc.o.d"
  "CMakeFiles/edk_workload.dir/population.cc.o"
  "CMakeFiles/edk_workload.dir/population.cc.o.d"
  "CMakeFiles/edk_workload.dir/validate.cc.o"
  "CMakeFiles/edk_workload.dir/validate.cc.o.d"
  "libedk_workload.a"
  "libedk_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edk_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
