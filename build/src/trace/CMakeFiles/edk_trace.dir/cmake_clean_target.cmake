file(REMOVE_RECURSE
  "libedk_trace.a"
)
