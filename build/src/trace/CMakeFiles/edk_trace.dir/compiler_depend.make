# Empty compiler generated dependencies file for edk_trace.
# This may be replaced when dependencies are built.
