file(REMOVE_RECURSE
  "CMakeFiles/edk_trace.dir/filter.cc.o"
  "CMakeFiles/edk_trace.dir/filter.cc.o.d"
  "CMakeFiles/edk_trace.dir/randomize.cc.o"
  "CMakeFiles/edk_trace.dir/randomize.cc.o.d"
  "CMakeFiles/edk_trace.dir/serialize.cc.o"
  "CMakeFiles/edk_trace.dir/serialize.cc.o.d"
  "CMakeFiles/edk_trace.dir/trace.cc.o"
  "CMakeFiles/edk_trace.dir/trace.cc.o.d"
  "libedk_trace.a"
  "libedk_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edk_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
