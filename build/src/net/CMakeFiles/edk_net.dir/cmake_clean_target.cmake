file(REMOVE_RECURSE
  "libedk_net.a"
)
