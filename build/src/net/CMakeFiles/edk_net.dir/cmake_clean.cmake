file(REMOVE_RECURSE
  "CMakeFiles/edk_net.dir/client.cc.o"
  "CMakeFiles/edk_net.dir/client.cc.o.d"
  "CMakeFiles/edk_net.dir/download_manager.cc.o"
  "CMakeFiles/edk_net.dir/download_manager.cc.o.d"
  "CMakeFiles/edk_net.dir/event_queue.cc.o"
  "CMakeFiles/edk_net.dir/event_queue.cc.o.d"
  "CMakeFiles/edk_net.dir/latency.cc.o"
  "CMakeFiles/edk_net.dir/latency.cc.o.d"
  "CMakeFiles/edk_net.dir/network.cc.o"
  "CMakeFiles/edk_net.dir/network.cc.o.d"
  "CMakeFiles/edk_net.dir/server.cc.o"
  "CMakeFiles/edk_net.dir/server.cc.o.d"
  "libedk_net.a"
  "libedk_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edk_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
