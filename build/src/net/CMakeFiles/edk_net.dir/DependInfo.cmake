
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/client.cc" "src/net/CMakeFiles/edk_net.dir/client.cc.o" "gcc" "src/net/CMakeFiles/edk_net.dir/client.cc.o.d"
  "/root/repo/src/net/download_manager.cc" "src/net/CMakeFiles/edk_net.dir/download_manager.cc.o" "gcc" "src/net/CMakeFiles/edk_net.dir/download_manager.cc.o.d"
  "/root/repo/src/net/event_queue.cc" "src/net/CMakeFiles/edk_net.dir/event_queue.cc.o" "gcc" "src/net/CMakeFiles/edk_net.dir/event_queue.cc.o.d"
  "/root/repo/src/net/latency.cc" "src/net/CMakeFiles/edk_net.dir/latency.cc.o" "gcc" "src/net/CMakeFiles/edk_net.dir/latency.cc.o.d"
  "/root/repo/src/net/network.cc" "src/net/CMakeFiles/edk_net.dir/network.cc.o" "gcc" "src/net/CMakeFiles/edk_net.dir/network.cc.o.d"
  "/root/repo/src/net/server.cc" "src/net/CMakeFiles/edk_net.dir/server.cc.o" "gcc" "src/net/CMakeFiles/edk_net.dir/server.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/edk_common.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/edk_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/edk_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
