# Empty dependencies file for edk_net.
# This may be replaced when dependencies are built.
