file(REMOVE_RECURSE
  "CMakeFiles/edk_analysis.dir/clustering.cc.o"
  "CMakeFiles/edk_analysis.dir/clustering.cc.o.d"
  "CMakeFiles/edk_analysis.dir/contribution.cc.o"
  "CMakeFiles/edk_analysis.dir/contribution.cc.o.d"
  "CMakeFiles/edk_analysis.dir/geo_clustering.cc.o"
  "CMakeFiles/edk_analysis.dir/geo_clustering.cc.o.d"
  "CMakeFiles/edk_analysis.dir/overlap.cc.o"
  "CMakeFiles/edk_analysis.dir/overlap.cc.o.d"
  "CMakeFiles/edk_analysis.dir/popularity.cc.o"
  "CMakeFiles/edk_analysis.dir/popularity.cc.o.d"
  "CMakeFiles/edk_analysis.dir/report.cc.o"
  "CMakeFiles/edk_analysis.dir/report.cc.o.d"
  "CMakeFiles/edk_analysis.dir/spread.cc.o"
  "CMakeFiles/edk_analysis.dir/spread.cc.o.d"
  "libedk_analysis.a"
  "libedk_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edk_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
