file(REMOVE_RECURSE
  "libedk_analysis.a"
)
