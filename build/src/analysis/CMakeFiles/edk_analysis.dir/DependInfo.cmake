
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/clustering.cc" "src/analysis/CMakeFiles/edk_analysis.dir/clustering.cc.o" "gcc" "src/analysis/CMakeFiles/edk_analysis.dir/clustering.cc.o.d"
  "/root/repo/src/analysis/contribution.cc" "src/analysis/CMakeFiles/edk_analysis.dir/contribution.cc.o" "gcc" "src/analysis/CMakeFiles/edk_analysis.dir/contribution.cc.o.d"
  "/root/repo/src/analysis/geo_clustering.cc" "src/analysis/CMakeFiles/edk_analysis.dir/geo_clustering.cc.o" "gcc" "src/analysis/CMakeFiles/edk_analysis.dir/geo_clustering.cc.o.d"
  "/root/repo/src/analysis/overlap.cc" "src/analysis/CMakeFiles/edk_analysis.dir/overlap.cc.o" "gcc" "src/analysis/CMakeFiles/edk_analysis.dir/overlap.cc.o.d"
  "/root/repo/src/analysis/popularity.cc" "src/analysis/CMakeFiles/edk_analysis.dir/popularity.cc.o" "gcc" "src/analysis/CMakeFiles/edk_analysis.dir/popularity.cc.o.d"
  "/root/repo/src/analysis/report.cc" "src/analysis/CMakeFiles/edk_analysis.dir/report.cc.o" "gcc" "src/analysis/CMakeFiles/edk_analysis.dir/report.cc.o.d"
  "/root/repo/src/analysis/spread.cc" "src/analysis/CMakeFiles/edk_analysis.dir/spread.cc.o" "gcc" "src/analysis/CMakeFiles/edk_analysis.dir/spread.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/edk_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/edk_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/edk_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/edk_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
