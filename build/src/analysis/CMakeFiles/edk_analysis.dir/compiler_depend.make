# Empty compiler generated dependencies file for edk_analysis.
# This may be replaced when dependencies are built.
