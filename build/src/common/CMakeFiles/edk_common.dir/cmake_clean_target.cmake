file(REMOVE_RECURSE
  "libedk_common.a"
)
