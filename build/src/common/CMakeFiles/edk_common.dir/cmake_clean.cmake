file(REMOVE_RECURSE
  "CMakeFiles/edk_common.dir/log.cc.o"
  "CMakeFiles/edk_common.dir/log.cc.o.d"
  "CMakeFiles/edk_common.dir/md4.cc.o"
  "CMakeFiles/edk_common.dir/md4.cc.o.d"
  "CMakeFiles/edk_common.dir/rng.cc.o"
  "CMakeFiles/edk_common.dir/rng.cc.o.d"
  "CMakeFiles/edk_common.dir/stats.cc.o"
  "CMakeFiles/edk_common.dir/stats.cc.o.d"
  "CMakeFiles/edk_common.dir/table.cc.o"
  "CMakeFiles/edk_common.dir/table.cc.o.d"
  "CMakeFiles/edk_common.dir/zipf.cc.o"
  "CMakeFiles/edk_common.dir/zipf.cc.o.d"
  "libedk_common.a"
  "libedk_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edk_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
