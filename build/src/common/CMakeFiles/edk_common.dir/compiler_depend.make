# Empty compiler generated dependencies file for edk_common.
# This may be replaced when dependencies are built.
