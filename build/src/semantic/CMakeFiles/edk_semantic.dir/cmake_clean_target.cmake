file(REMOVE_RECURSE
  "libedk_semantic.a"
)
