# Empty dependencies file for edk_semantic.
# This may be replaced when dependencies are built.
