
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/semantic/as_cache.cc" "src/semantic/CMakeFiles/edk_semantic.dir/as_cache.cc.o" "gcc" "src/semantic/CMakeFiles/edk_semantic.dir/as_cache.cc.o.d"
  "/root/repo/src/semantic/dynamic_sim.cc" "src/semantic/CMakeFiles/edk_semantic.dir/dynamic_sim.cc.o" "gcc" "src/semantic/CMakeFiles/edk_semantic.dir/dynamic_sim.cc.o.d"
  "/root/repo/src/semantic/gossip_overlay.cc" "src/semantic/CMakeFiles/edk_semantic.dir/gossip_overlay.cc.o" "gcc" "src/semantic/CMakeFiles/edk_semantic.dir/gossip_overlay.cc.o.d"
  "/root/repo/src/semantic/neighbour_list.cc" "src/semantic/CMakeFiles/edk_semantic.dir/neighbour_list.cc.o" "gcc" "src/semantic/CMakeFiles/edk_semantic.dir/neighbour_list.cc.o.d"
  "/root/repo/src/semantic/scenario.cc" "src/semantic/CMakeFiles/edk_semantic.dir/scenario.cc.o" "gcc" "src/semantic/CMakeFiles/edk_semantic.dir/scenario.cc.o.d"
  "/root/repo/src/semantic/search_sim.cc" "src/semantic/CMakeFiles/edk_semantic.dir/search_sim.cc.o" "gcc" "src/semantic/CMakeFiles/edk_semantic.dir/search_sim.cc.o.d"
  "/root/repo/src/semantic/semantic_client.cc" "src/semantic/CMakeFiles/edk_semantic.dir/semantic_client.cc.o" "gcc" "src/semantic/CMakeFiles/edk_semantic.dir/semantic_client.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/edk_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/edk_net.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/edk_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/edk_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
