# Empty compiler generated dependencies file for edk_semantic.
# This may be replaced when dependencies are built.
