file(REMOVE_RECURSE
  "CMakeFiles/edk_semantic.dir/as_cache.cc.o"
  "CMakeFiles/edk_semantic.dir/as_cache.cc.o.d"
  "CMakeFiles/edk_semantic.dir/dynamic_sim.cc.o"
  "CMakeFiles/edk_semantic.dir/dynamic_sim.cc.o.d"
  "CMakeFiles/edk_semantic.dir/gossip_overlay.cc.o"
  "CMakeFiles/edk_semantic.dir/gossip_overlay.cc.o.d"
  "CMakeFiles/edk_semantic.dir/neighbour_list.cc.o"
  "CMakeFiles/edk_semantic.dir/neighbour_list.cc.o.d"
  "CMakeFiles/edk_semantic.dir/scenario.cc.o"
  "CMakeFiles/edk_semantic.dir/scenario.cc.o.d"
  "CMakeFiles/edk_semantic.dir/search_sim.cc.o"
  "CMakeFiles/edk_semantic.dir/search_sim.cc.o.d"
  "CMakeFiles/edk_semantic.dir/semantic_client.cc.o"
  "CMakeFiles/edk_semantic.dir/semantic_client.cc.o.d"
  "libedk_semantic.a"
  "libedk_semantic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edk_semantic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
