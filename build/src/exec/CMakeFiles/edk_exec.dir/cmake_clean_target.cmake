file(REMOVE_RECURSE
  "libedk_exec.a"
)
