# Empty dependencies file for edk_exec.
# This may be replaced when dependencies are built.
