file(REMOVE_RECURSE
  "CMakeFiles/edk_exec.dir/parallel.cc.o"
  "CMakeFiles/edk_exec.dir/parallel.cc.o.d"
  "CMakeFiles/edk_exec.dir/thread_pool.cc.o"
  "CMakeFiles/edk_exec.dir/thread_pool.cc.o.d"
  "libedk_exec.a"
  "libedk_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edk_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
