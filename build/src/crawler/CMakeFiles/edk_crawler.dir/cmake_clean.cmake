file(REMOVE_RECURSE
  "CMakeFiles/edk_crawler.dir/crawler.cc.o"
  "CMakeFiles/edk_crawler.dir/crawler.cc.o.d"
  "libedk_crawler.a"
  "libedk_crawler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edk_crawler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
