file(REMOVE_RECURSE
  "libedk_crawler.a"
)
