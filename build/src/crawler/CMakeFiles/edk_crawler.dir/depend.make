# Empty dependencies file for edk_crawler.
# This may be replaced when dependencies are built.
