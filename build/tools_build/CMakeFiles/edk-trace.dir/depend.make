# Empty dependencies file for edk-trace.
# This may be replaced when dependencies are built.
