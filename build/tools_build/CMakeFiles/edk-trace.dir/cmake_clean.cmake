file(REMOVE_RECURSE
  "../tools/edk-trace"
  "../tools/edk-trace.pdb"
  "CMakeFiles/edk-trace.dir/trace_tool.cc.o"
  "CMakeFiles/edk-trace.dir/trace_tool.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edk-trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
