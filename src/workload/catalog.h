// File catalog: the universe of files peers can acquire.
//
// Every file belongs to one latent interest topic; topics have Zipf
// popularity, a home country (content language), and a category profile.
// Within a topic, files have Zipf popularity by rank. A file also has a
// release day and a flash-crowd attractiveness curve — sudden appearance
// followed by exponential decay, which reproduces the paper's file-spread
// dynamics (Fig. 8).

#ifndef SRC_WORKLOAD_CATALOG_H_
#define SRC_WORKLOAD_CATALOG_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "src/common/ids.h"
#include "src/common/rng.h"
#include "src/common/zipf.h"
#include "src/trace/trace.h"
#include "src/workload/config.h"
#include "src/workload/geography.h"

namespace edk {

struct CatalogFile {
  FileMeta meta;            // Size, category, topic.
  TopicId topic;
  uint32_t topic_rank = 1;  // 1 = most popular within the topic.
  int release_day = 0;
  double decay_days = 10.0;
};

struct TopicSpec {
  double weight = 0;        // Global popularity weight of the topic.
  CountryId home_country;
  std::vector<uint32_t> files_by_rank;  // Catalog indices, rank order.
};

class FileCatalog {
 public:
  // Builds the catalog deterministically from the config and geography.
  FileCatalog(const WorkloadConfig& config, const Geography& geography, Rng& rng);

  size_t file_count() const { return files_.size(); }
  size_t topic_count() const { return topics_.size(); }
  const CatalogFile& file(uint32_t index) const { return files_[index]; }
  const TopicSpec& topic(TopicId id) const { return topics_[id.value]; }
  const std::vector<TopicSpec>& topics() const { return topics_; }

  // Topic weight vector for weighted sampling.
  const std::vector<double>& topic_weights() const { return topic_weights_; }
  // Topic indices whose home country matches, for geo-affine interest picks.
  const std::vector<uint32_t>& topics_of_country(CountryId country) const;

  // Samples a released file from the topic on `day`, biased by within-topic
  // Zipf rank and by the flash-crowd attractiveness at that day. Returns
  // catalog index or -1 when the topic has no file released yet.
  // `hot` selects the steep global_zipf exponent (flash-crowd channel)
  // instead of the mild interest-driven file_zipf.
  int64_t SampleFromTopic(TopicId topic, int day, Rng& rng, bool hot = false) const;

  // Samples a topic by global weight.
  TopicId SampleTopic(Rng& rng) const;

  // Samples uniformly from one contiguous rank segment of the topic
  // (a collector niche; see WorkloadConfig::focus_fraction). Only the
  // release gate applies — niche interest does not fade with the flash
  // crowd. Returns -1 if the segment has no released file on `day`.
  int64_t SampleFromSegment(TopicId topic, uint32_t segment_index,
                            uint32_t segment_files, int day, Rng& rng) const;

  // Attractiveness multiplier of a file on `day` (0 before release).
  double Attractiveness(uint32_t file_index, int day) const;

  // Registers all catalog files into the trace; catalog index i becomes
  // FileId(i).
  void ExportFiles(Trace& trace) const;

 private:
  const ZipfSampler& SamplerForSize(uint64_t n, bool hot) const;

  WorkloadConfig config_;
  std::vector<CatalogFile> files_;
  std::vector<TopicSpec> topics_;
  std::vector<double> topic_weights_;
  std::vector<std::vector<uint32_t>> topics_by_country_;
  std::vector<uint32_t> empty_;
  // Zipf samplers keyed by (topic size, hot) — many topics share a size.
  mutable std::unordered_map<uint64_t, std::unique_ptr<ZipfSampler>> samplers_;
};

}  // namespace edk

#endif  // SRC_WORKLOAD_CATALOG_H_
