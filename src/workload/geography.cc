#include "src/workload/geography.h"

#include <cassert>

namespace edk {

Geography Geography::PaperDistribution() {
  Geography geo;
  // Fig. 4: FR 29%, DE 28%, ES 16%, US 5%, IT 3%, IL 2%, GB 2%, TW 1%,
  // PL 1%, AT 1%, NL 1%, Others 6% (modelled as five smaller countries).
  geo.countries_ = {
      {"FR", 0.29}, {"DE", 0.28}, {"ES", 0.16}, {"US", 0.05}, {"IT", 0.03},
      {"IL", 0.02}, {"GB", 0.02}, {"TW", 0.01}, {"PL", 0.01}, {"AT", 0.01},
      {"NL", 0.01}, {"CH", 0.02}, {"BE", 0.02}, {"PT", 0.015}, {"BR", 0.015},
      {"KR", 0.01}, {"RU", 0.01}, {"CA", 0.01}, {"JP", 0.005}, {"AU", 0.005},
  };

  auto country_of = [&geo](const std::string& code) {
    for (size_t i = 0; i < geo.countries_.size(); ++i) {
      if (geo.countries_[i].code == code) {
        return CountryId(static_cast<uint32_t>(i));
      }
    }
    assert(false && "unknown country code");
    return CountryId();
  };

  // Table 2 national shares, one dominant incumbent per large country plus a
  // catch-all. AS numbers for the incumbents are the real ones the paper
  // lists; catch-alls get synthetic numbers >= 64512 (private range).
  geo.systems_ = {
      {3215, "France Telecom Transpac", country_of("FR"), 0.51},
      {12322, "Proxad ISP France", country_of("FR"), 0.24},
      {64600, "FR other ISPs", country_of("FR"), 0.25},
      {3320, "Deutsche Telekom AG", country_of("DE"), 0.75},
      {64601, "DE other ISPs", country_of("DE"), 0.25},
      {3352, "Telefonica Data Espana", country_of("ES"), 0.53},
      {64602, "ES other ISPs", country_of("ES"), 0.47},
      {1668, "AOL-primehost USA", country_of("US"), 0.60},
      {64603, "US other ISPs", country_of("US"), 0.40},
  };
  // Every remaining country gets a single catch-all AS.
  for (size_t i = 0; i < geo.countries_.size(); ++i) {
    const CountryId country(static_cast<uint32_t>(i));
    bool covered = false;
    for (const auto& spec : geo.systems_) {
      if (spec.country == country) {
        covered = true;
        break;
      }
    }
    if (!covered) {
      geo.systems_.push_back({static_cast<uint32_t>(64610 + i),
                              geo.countries_[i].code + " ISPs", country, 1.0});
    }
  }

  geo.country_weights_.reserve(geo.countries_.size());
  for (const auto& spec : geo.countries_) {
    geo.country_weights_.push_back(spec.peer_fraction);
  }
  geo.as_by_country_.resize(geo.countries_.size());
  geo.as_weights_by_country_.resize(geo.countries_.size());
  for (size_t a = 0; a < geo.systems_.size(); ++a) {
    const auto& spec = geo.systems_[a];
    geo.as_by_country_[spec.country.value].push_back(static_cast<uint32_t>(a));
    geo.as_weights_by_country_[spec.country.value].push_back(spec.national_fraction);
  }
  return geo;
}

CountryId Geography::SampleCountry(Rng& rng) const {
  return CountryId(static_cast<uint32_t>(rng.NextWeighted(country_weights_)));
}

AsId Geography::SampleAs(CountryId country, Rng& rng) const {
  const auto& candidates = as_by_country_[country.value];
  const auto& weights = as_weights_by_country_[country.value];
  assert(!candidates.empty());
  return AsId(candidates[rng.NextWeighted(weights)]);
}

CountryId Geography::FindCountry(const std::string& code) const {
  for (size_t i = 0; i < countries_.size(); ++i) {
    if (countries_[i].code == code) {
      return CountryId(static_cast<uint32_t>(i));
    }
  }
  return CountryId();
}

}  // namespace edk
