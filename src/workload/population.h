// Peer population model: who the peers are (country, AS, identity), whether
// they share at all (free-riding), how much they share (heavy-tailed
// generosity), what they like (interest profiles over topics), and when
// they are online (availability, churn).

#ifndef SRC_WORKLOAD_POPULATION_H_
#define SRC_WORKLOAD_POPULATION_H_

#include <vector>

#include "src/common/ids.h"
#include "src/common/rng.h"
#include "src/trace/trace.h"
#include "src/workload/catalog.h"
#include "src/workload/config.h"
#include "src/workload/geography.h"

namespace edk {

struct PeerProfile {
  PeerInfo info;
  bool free_rider = false;
  uint32_t cache_target = 0;          // Steady-state cache size (0 for free-riders).
  double daily_additions = 0;          // Poisson rate of new files per online day.
  double availability = 0.5;           // Per-day connect probability.
  int join_day = 0;                    // First day the peer exists.
  int leave_day = 0;                   // Last day the peer exists (inclusive).
  std::vector<TopicId> interests;      // Latent interest profile.
  std::vector<double> interest_weights;
  // Per interest: index of the focus segment within the topic's catalog
  // (the peer's collector niche). Parallel to `interests`.
  std::vector<uint32_t> focus_segments;
};

class PeerPopulation {
 public:
  PeerPopulation(const WorkloadConfig& config, const Geography& geography,
                 const FileCatalog& catalog, Rng& rng);

  size_t size() const { return profiles_.size(); }
  const PeerProfile& profile(size_t index) const { return profiles_[index]; }
  const std::vector<PeerProfile>& profiles() const { return profiles_; }

  // Registers all peers into the trace; population index i becomes PeerId(i).
  void ExportPeers(Trace& trace) const;

 private:
  std::vector<PeerProfile> profiles_;
};

}  // namespace edk

#endif  // SRC_WORKLOAD_POPULATION_H_
