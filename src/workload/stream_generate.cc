#include "src/workload/stream_generate.h"

#include <algorithm>
#include <vector>

#include "src/common/log.h"
#include "src/obs/metrics.h"
#include "src/trace/stream/trace_writer.h"
#include "src/workload/behaviour.h"
#include "src/workload/catalog.h"
#include "src/workload/geography.h"
#include "src/workload/population.h"

namespace edk {

namespace {

std::optional<stream::TraceWriter> OpenWriter(
    const std::string& path, bool resume, std::span<const FileMeta> files,
    std::span<const PeerInfo> peers, std::string* error,
    const stream::TraceWriter::Options& options) {
  return resume
             ? stream::TraceWriter::Resume(path, files, peers, error, options)
             : stream::TraceWriter::Create(path, files, peers, error, options);
}

bool FinishWriter(stream::TraceWriter& writer, StreamGenerateStats& stats,
                  std::string* error) {
  if (!writer.ok() || !writer.Finish()) {
    if (error != nullptr) {
      *error = writer.error();
    }
    return false;
  }
  stats.bytes_written = writer.bytes_written();
  return true;
}

// SplitMix64: the standard 64-bit finaliser; every scale-model decision is
// one or two of these on (seed, peer, day) — no state between snapshots.
inline uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

std::optional<StreamGenerateStats> GenerateWorkloadStreaming(
    const WorkloadConfig& config, const std::string& path, bool resume,
    std::string* error, const stream::TraceWriter::Options& options) {
  obs::PhaseTimer timer("workload.stream_generate");
  Rng rng(config.seed);
  const Geography geography = Geography::PaperDistribution();
  FileCatalog catalog(config, geography, rng);
  PeerPopulation population(config, geography, catalog, rng);
  BehaviourEngine engine(config, catalog, population, rng);

  std::vector<FileMeta> files;
  files.reserve(catalog.file_count());
  for (uint32_t f = 0; f < catalog.file_count(); ++f) {
    files.push_back(catalog.file(f).meta);
  }
  std::vector<PeerInfo> peers;
  peers.reserve(population.size());
  for (const PeerProfile& profile : population.profiles()) {
    peers.push_back(profile.info);
  }

  auto writer = OpenWriter(path, resume, files, peers, error, options);
  if (!writer.has_value()) {
    return std::nullopt;
  }

  StreamGenerateStats stats;
  std::vector<uint32_t> online;
  std::vector<uint32_t> cache;
  const int last_day = config.first_day + config.num_days - 1;
  for (int day = config.first_day; day <= last_day; ++day) {
    // The engine must step every day to stay deterministic; resume only
    // skips the (re-)writing of days the file already holds.
    engine.StepDay(day);
    if (const auto written = writer->last_day();
        written.has_value() && day <= *written) {
      ++stats.days_skipped;
      continue;
    }
    if (engine.online_peers().empty()) {
      ++stats.days_skipped;  // Days with nobody online have no segment.
      continue;
    }
    online.assign(engine.online_peers().begin(), engine.online_peers().end());
    std::sort(online.begin(), online.end());
    if (!writer->BeginDay(day)) {
      break;
    }
    for (const uint32_t p : online) {
      const auto& peer_cache = engine.cache(p);
      cache.assign(peer_cache.begin(), peer_cache.end());
      std::sort(cache.begin(), cache.end());
      if (!writer->AddSnapshot(p, cache)) {
        break;
      }
      ++stats.snapshots;
      stats.file_entries += cache.size();
    }
    if (!writer->ok() || !writer->EndDay()) {
      break;
    }
    ++stats.days_written;
    Log(LogLevel::kDebug) << "streamed day " << day << ": " << online.size()
                          << " peers online";
  }
  if (!FinishWriter(*writer, stats, error)) {
    return std::nullopt;
  }
  return stats;
}

std::optional<StreamGenerateStats> GenerateScaleTrace(
    const ScaleTraceConfig& config, const std::string& path, bool resume,
    std::string* error, const stream::TraceWriter::Options& options) {
  obs::PhaseTimer timer("workload.scale_trace_generate");
  if (config.num_files < 64 || config.num_peers == 0 ||
      config.min_cache > config.max_cache || config.online_per_myriad > 10'000) {
    if (error != nullptr) {
      *error = "invalid ScaleTraceConfig";
    }
    return std::nullopt;
  }

  // Tables are pure hash functions of the config; building them is the only
  // O(population) memory this generator uses.
  std::vector<FileMeta> files;
  files.reserve(config.num_files);
  for (uint64_t f = 0; f < config.num_files; ++f) {
    const uint64_t h = Mix(config.seed ^ Mix(f * 2 + 1));
    FileMeta meta;
    meta.size_bytes = (1u << 20) + (h & 0x7fffff);  // ~1-9 MB (MP3 band).
    meta.category = static_cast<FileCategory>(h % 6);
    meta.topic = TopicId(static_cast<uint32_t>((h >> 8) % 1024));
    files.push_back(meta);
  }
  std::vector<PeerInfo> peers;
  peers.reserve(config.num_peers);
  for (uint64_t p = 0; p < config.num_peers; ++p) {
    const uint64_t h = Mix(config.seed ^ Mix(p * 2));
    PeerInfo info;
    info.country = CountryId(static_cast<uint32_t>(h % 200));
    info.autonomous_system = AsId(static_cast<uint32_t>((h >> 8) % 5000));
    info.ip_address = static_cast<uint32_t>(h >> 16);
    info.user_id = h;
    info.firewalled = ((h >> 5) & 1) != 0;
    peers.push_back(info);
  }

  auto writer = OpenWriter(path, resume, files, peers, error, options);
  if (!writer.has_value()) {
    return std::nullopt;
  }
  // Release the table copies before the day loop; the writer has emitted
  // them to disk already. (shrink via swap)
  std::vector<FileMeta>().swap(files);
  std::vector<PeerInfo>().swap(peers);

  // Cache ids are drawn strictly ascending from a band starting at a
  // per-peer anchor that drifts every 4 days. Gaps of 1..8 keep the band
  // span under max_cache * 8; the anchor range keeps every id in bounds.
  const uint64_t span_limit = std::min<uint64_t>(
      config.num_files,
      std::max<uint64_t>(static_cast<uint64_t>(config.max_cache) * 8 + 1, 64));
  const uint64_t anchor_range = config.num_files - span_limit + 1;

  StreamGenerateStats stats;
  std::vector<uint32_t> cache;
  const int last_day = config.first_day + config.num_days - 1;
  for (int day = config.first_day; day <= last_day; ++day) {
    if (const auto written = writer->last_day();
        written.has_value() && day <= *written) {
      ++stats.days_skipped;
      continue;
    }
    bool open = false;
    for (uint64_t p = 0; p < config.num_peers; ++p) {
      const uint64_t online_h =
          Mix(config.seed ^ Mix(p) ^ Mix(static_cast<uint64_t>(day) << 20));
      if (online_h % 10'000 >= config.online_per_myriad) {
        continue;
      }
      if (!open) {
        if (!writer->BeginDay(day)) {
          break;
        }
        open = true;
      }
      const uint64_t drift = static_cast<uint64_t>(day) / 4;
      uint64_t h = Mix(config.seed ^ Mix(p * 3 + 1) ^ Mix(drift));
      const uint64_t anchor = h % anchor_range;
      uint32_t count =
          config.min_cache +
          static_cast<uint32_t>(Mix(h) % (config.max_cache - config.min_cache + 1));
      // Keep the whole snapshot inside the band (and the id space): the
      // largest offset is 7 + (count - 1) * 8, which must stay below
      // span_limit (config validation guarantees num_files >= 64, so at
      // least one id always fits).
      count = static_cast<uint32_t>(
          std::min<uint64_t>(count, (span_limit - 8) / 8 + 1));
      cache.clear();
      uint64_t id = anchor;
      uint64_t gap_state = Mix(h ^ 0x5bf03635u);
      for (uint32_t i = 0; i < count; ++i) {
        gap_state = Mix(gap_state);
        id += i == 0 ? gap_state % 8 : 1 + gap_state % 8;
        cache.push_back(static_cast<uint32_t>(id));
      }
      if (!writer->AddSnapshot(static_cast<uint32_t>(p), cache)) {
        break;
      }
      ++stats.snapshots;
      stats.file_entries += cache.size();
    }
    if (!writer->ok()) {
      break;
    }
    if (open) {
      if (!writer->EndDay()) {
        break;
      }
      ++stats.days_written;
    } else {
      ++stats.days_skipped;
    }
  }
  if (!FinishWriter(*writer, stats, error)) {
    return std::nullopt;
  }
  return stats;
}

}  // namespace edk
