// Top-level synthetic trace generation.
//
// GenerateWorkload() runs the behaviour engine for the configured day span
// and records, for every online peer on every day, its shared-file list —
// exactly the observation a perfect crawler would make. The resulting Trace
// is what the paper calls the "full trace"; FilterDuplicates() and
// Extrapolate() derive the other two views.

#ifndef SRC_WORKLOAD_GENERATOR_H_
#define SRC_WORKLOAD_GENERATOR_H_

#include <vector>

#include "src/trace/trace.h"
#include "src/workload/config.h"
#include "src/workload/geography.h"
#include "src/workload/population.h"

namespace edk {

struct GeneratedWorkload {
  Trace trace;
  WorkloadConfig config;
  Geography geography;
  // Ground-truth peer profiles, index-aligned with trace PeerIds. Useful
  // for validating that measured clustering matches latent interests.
  std::vector<PeerProfile> profiles;
};

GeneratedWorkload GenerateWorkload(const WorkloadConfig& config);

// Convenience presets.
WorkloadConfig SmallWorkloadConfig();   // Seconds to generate; unit tests.
WorkloadConfig MediumWorkloadConfig();  // Default for bench harnesses.

}  // namespace edk

#endif  // SRC_WORKLOAD_GENERATOR_H_
