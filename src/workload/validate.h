// Workload validation: measures a trace's key marginals against the
// paper's reported values, so users re-calibrating WorkloadConfig can see
// at a glance what their change did. Used by `edk-trace validate` and by
// the generator's own regression tests.

#ifndef SRC_WORKLOAD_VALIDATE_H_
#define SRC_WORKLOAD_VALIDATE_H_

#include <string>
#include <vector>

#include "src/trace/trace.h"

namespace edk {

struct MarginalCheck {
  std::string name;
  double measured = 0;
  double target_low = 0;   // Acceptance band derived from the paper.
  double target_high = 0;

  bool Pass() const { return measured >= target_low && measured <= target_high; }
};

struct WorkloadValidation {
  std::vector<MarginalCheck> checks;

  bool AllPass() const;
  size_t PassCount() const;
};

// Runs every marginal check against the (filtered) trace. Bands are the
// paper's values with tolerance for the synthetic scale:
//   free-rider fraction            0.65 .. 0.90   (Table 1: 70-84%)
//   top-15% sharers' replica share 0.55 .. 0.90   (§5.3.2: ~75%)
//   files < 1 MB                   0.20 .. 0.50   (Fig. 6: ~40%)
//   files 1-10 MB                  0.30 .. 0.60   (Fig. 6: ~50%)
//   pop>=10 files > 600 MB         0.30 .. 0.80   (Fig. 6: ~55%)
//   FR + DE client share           0.45 .. 0.70   (Fig. 4: 57%)
//   Zipf tail slope                -1.2 .. -0.4   (Fig. 5)
//   peak file spread               0.001 .. 0.06  (Fig. 8: <0.7%, scaled)
//   daily cache churn (files/day)  0.5 .. 12      (§2.3: ~5)
WorkloadValidation ValidateWorkloadTrace(const Trace& trace);

// Renders the validation as an ASCII table with pass/fail marks.
std::string RenderValidation(const WorkloadValidation& validation);

}  // namespace edk

#endif  // SRC_WORKLOAD_VALIDATE_H_
