#include "src/workload/catalog.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace edk {

namespace {

// Popularity tier of a file, decided by its topic weight and in-topic rank.
// Hot files skew towards large video content (paper Fig. 6: 55% of files
// with popularity >= 10 are > 600 MB DIVX movies); the cold long tail is
// dominated by small files (40% of all files are < 1 MB).
enum class Tier { kHot, kWarm, kCold };

Tier ClassifyTier(double global_weight, double hot_threshold, double warm_threshold) {
  if (global_weight >= hot_threshold) {
    return Tier::kHot;
  }
  if (global_weight >= warm_threshold) {
    return Tier::kWarm;
  }
  return Tier::kCold;
}

FileCategory SampleCategory(Tier tier, Rng& rng) {
  const double u = rng.NextDouble();
  switch (tier) {
    case Tier::kHot:
      if (u < 0.72) {
        return FileCategory::kVideo;
      }
      if (u < 0.85) {
        return FileCategory::kAudio;
      }
      if (u < 0.94) {
        return FileCategory::kArchive;
      }
      if (u < 0.98) {
        return FileCategory::kProgram;
      }
      return FileCategory::kOther;
    case Tier::kWarm:
      if (u < 0.45) {
        return FileCategory::kAudio;
      }
      if (u < 0.70) {
        return FileCategory::kVideo;
      }
      if (u < 0.82) {
        return FileCategory::kArchive;
      }
      if (u < 0.90) {
        return FileCategory::kProgram;
      }
      return FileCategory::kDocument;
    case Tier::kCold:
      if (u < 0.40) {
        return FileCategory::kAudio;
      }
      if (u < 0.47) {
        return FileCategory::kVideo;
      }
      if (u < 0.52) {
        return FileCategory::kArchive;
      }
      if (u < 0.58) {
        return FileCategory::kProgram;
      }
      if (u < 0.82) {
        return FileCategory::kDocument;
      }
      return FileCategory::kOther;
  }
  return FileCategory::kOther;
}

constexpr uint64_t kKB = 1024;
constexpr uint64_t kMB = 1024 * 1024;

uint64_t LogUniform(Rng& rng, double lo, double hi) {
  const double v = std::exp(std::log(lo) + rng.NextDouble() * (std::log(hi) - std::log(lo)));
  return static_cast<uint64_t>(v);
}

uint64_t SampleSize(FileCategory category, Tier tier, Rng& rng) {
  switch (category) {
    case FileCategory::kAudio:
      // MP3 range: 1-10 MB.
      return LogUniform(rng, 1.0 * kMB, 10.0 * kMB);
    case FileCategory::kVideo: {
      // Hot video is overwhelmingly full DIVX movies (> 600 MB); colder
      // video mixes in clips and small videos.
      const double large_probability =
          tier == Tier::kHot ? 0.90 : (tier == Tier::kWarm ? 0.55 : 0.30);
      if (rng.NextBool(large_probability)) {
        return LogUniform(rng, 600.0 * kMB, 900.0 * kMB);
      }
      return LogUniform(rng, 30.0 * kMB, 400.0 * kMB);
    }
    case FileCategory::kArchive:
      // Complete albums, ISO chunks: 10-600 MB.
      return LogUniform(rng, 10.0 * kMB, 600.0 * kMB);
    case FileCategory::kProgram:
      return LogUniform(rng, 1.0 * kMB, 100.0 * kMB);
    case FileCategory::kDocument:
      return LogUniform(rng, 10.0 * kKB, 1.0 * kMB);
    case FileCategory::kOther:
      return LogUniform(rng, 10.0 * kKB, 2.0 * kMB);
  }
  return kMB;
}

}  // namespace

FileCatalog::FileCatalog(const WorkloadConfig& config, const Geography& geography,
                         Rng& rng)
    : config_(config) {
  assert(config.num_topics > 0);
  assert(config.num_files >= config.num_topics);

  // --- Topics ---------------------------------------------------------------
  topics_.resize(config.num_topics);
  topic_weights_.resize(config.num_topics);
  const double harmonic = GeneralizedHarmonic(config.num_topics, config.topic_zipf);
  for (uint32_t t = 0; t < config.num_topics; ++t) {
    topics_[t].weight =
        std::pow(static_cast<double>(t + 1), -config.topic_zipf) / harmonic;
    topics_[t].home_country = geography.SampleCountry(rng);
    topic_weights_[t] = topics_[t].weight;
  }
  topics_by_country_.resize(geography.countries().size());
  for (uint32_t t = 0; t < config.num_topics; ++t) {
    topics_by_country_[topics_[t].home_country.value].push_back(t);
  }

  // --- Files ------------------------------------------------------------------
  // Every topic gets at least one file; the remainder are apportioned by
  // topic weight but CAPPED near the average. A popular topic means more
  // interested peers, not an unboundedly larger catalog — keeping topic
  // catalogs comparable in size is what lets same-interest peers overlap on
  // a topic's tail files, which in turn produces the strong rare-file
  // clustering the paper measures (Figs. 13-14, 20).
  files_.resize(config.num_files);
  std::vector<uint32_t> files_per_topic(config.num_topics, 1);
  uint32_t assigned = config.num_topics;
  const uint32_t cap =
      std::max<uint32_t>(2, 5 * config.num_files / (2 * config.num_topics));
  for (uint32_t t = 0; t < config.num_topics && assigned < config.num_files; ++t) {
    const uint32_t by_weight =
        static_cast<uint32_t>(topics_[t].weight * (config.num_files - config.num_topics));
    const uint32_t extra =
        std::min({by_weight, cap, config.num_files - assigned});
    files_per_topic[t] += extra;
    assigned += extra;
  }
  // Distribute any rounding remainder round-robin.
  for (uint32_t t = 0; assigned < config.num_files; t = (t + 1) % config.num_topics) {
    ++files_per_topic[t];
    ++assigned;
  }

  const int release_lo = config.first_day - config.pre_release_window_days;
  const int last_day = config.first_day + config.num_days - 1;
  // Popularity-tier thresholds: quantiles of the global sampling weight
  // (topic weight / rank^s), so the hot tier is the top ~2% of files and
  // warm the next ~18% regardless of the skew parameters.
  std::vector<double> all_weights;
  all_weights.reserve(config.num_files);
  for (uint32_t t = 0; t < config.num_topics; ++t) {
    for (uint32_t rank = 1; rank <= files_per_topic[t]; ++rank) {
      all_weights.push_back(topics_[t].weight *
                            std::pow(static_cast<double>(rank), -config.file_zipf));
    }
  }
  std::vector<double> sorted_weights = all_weights;
  std::sort(sorted_weights.begin(), sorted_weights.end(), std::greater<>());
  const double hot_threshold = sorted_weights[sorted_weights.size() * 4 / 100];
  const double warm_threshold = sorted_weights[sorted_weights.size() * 20 / 100];

  uint32_t next_file = 0;
  for (uint32_t t = 0; t < config.num_topics; ++t) {
    auto& topic = topics_[t];
    topic.files_by_rank.reserve(files_per_topic[t]);
    for (uint32_t rank = 1; rank <= files_per_topic[t]; ++rank) {
      const uint32_t index = next_file++;
      CatalogFile& file = files_[index];
      file.topic = TopicId(t);
      file.topic_rank = rank;
      const double global_weight =
          topic.weight * std::pow(static_cast<double>(rank), -config.file_zipf);
      const Tier tier = ClassifyTier(global_weight, hot_threshold, warm_threshold);
      file.meta.category = SampleCategory(tier, rng);
      file.meta.size_bytes = SampleSize(file.meta.category, tier, rng);
      file.meta.topic = TopicId(t);
      if (rng.NextBool(config.pre_release_fraction)) {
        file.release_day =
            static_cast<int>(rng.NextInRange(release_lo, config.first_day - 1));
      } else {
        file.release_day = static_cast<int>(rng.NextInRange(config.first_day, last_day));
      }
      // Flash decay varies per file; hot content burns brighter and fades.
      file.decay_days = config.flash_decay_days * (0.5 + rng.NextDouble());
      topic.files_by_rank.push_back(index);
    }
  }
  assert(next_file == config.num_files);
}

const std::vector<uint32_t>& FileCatalog::topics_of_country(CountryId country) const {
  if (!country.valid() || country.value >= topics_by_country_.size()) {
    return empty_;
  }
  return topics_by_country_[country.value];
}

const ZipfSampler& FileCatalog::SamplerForSize(uint64_t n, bool hot) const {
  const uint64_t key = n * 2 + (hot ? 1 : 0);
  auto it = samplers_.find(key);
  if (it == samplers_.end()) {
    const double s = hot ? config_.global_zipf : config_.file_zipf;
    it = samplers_.emplace(key, std::make_unique<ZipfSampler>(n, s)).first;
  }
  return *it->second;
}

double FileCatalog::Attractiveness(uint32_t file_index, int day) const {
  const CatalogFile& file = files_[file_index];
  if (day < file.release_day) {
    return 0;
  }
  const double age = static_cast<double>(day - file.release_day);
  const double decayed = std::exp(-age / file.decay_days);
  return std::max(decayed, config_.attractiveness_floor);
}

int64_t FileCatalog::SampleFromTopic(TopicId topic_id, int day, Rng& rng,
                                     bool hot) const {
  const TopicSpec& topic = topics_[topic_id.value];
  if (topic.files_by_rank.empty()) {
    return -1;
  }
  const ZipfSampler& sampler = SamplerForSize(topic.files_by_rank.size(), hot);
  // Rejection on release + attractiveness; bounded retries keep sampling
  // O(1) even for topics whose files are mostly unreleased.
  constexpr int kMaxTries = 12;
  int64_t fallback = -1;
  for (int attempt = 0; attempt < kMaxTries; ++attempt) {
    const uint64_t rank = sampler.Sample(rng);
    const uint32_t index = topic.files_by_rank[rank - 1];
    const double a = Attractiveness(index, day);
    if (a <= 0) {
      continue;  // Not released yet.
    }
    fallback = index;
    if (rng.NextBool(a)) {
      return index;
    }
  }
  return fallback;
}

TopicId FileCatalog::SampleTopic(Rng& rng) const {
  return TopicId(static_cast<uint32_t>(rng.NextWeighted(topic_weights_)));
}

int64_t FileCatalog::SampleFromSegment(TopicId topic_id, uint32_t segment_index,
                                       uint32_t segment_files, int day,
                                       Rng& rng) const {
  const TopicSpec& topic = topics_[topic_id.value];
  const size_t begin = static_cast<size_t>(segment_index) * segment_files;
  if (begin >= topic.files_by_rank.size() || segment_files == 0) {
    return -1;
  }
  const size_t length = std::min<size_t>(segment_files, topic.files_by_rank.size() - begin);
  constexpr int kMaxTries = 8;
  for (int attempt = 0; attempt < kMaxTries; ++attempt) {
    const uint32_t index = topic.files_by_rank[begin + rng.NextBelow(length)];
    if (day >= files_[index].release_day) {
      return index;
    }
  }
  return -1;
}

void FileCatalog::ExportFiles(Trace& trace) const {
  for (const auto& file : files_) {
    trace.AddFile(file.meta);
  }
}

}  // namespace edk
