// Daily cache-evolution engine.
//
// Drives each sharer peer's cache through the trace period: on every online
// day the peer acquires a Poisson number of new files chosen through its
// interest profile (or global popularity), and evicts random files to stay
// near its generosity target. The resulting churn matches the paper's
// observation of ~5 cache replacements per client per day with a roughly
// constant cache size.

#ifndef SRC_WORKLOAD_BEHAVIOUR_H_
#define SRC_WORKLOAD_BEHAVIOUR_H_

#include <vector>

#include "src/common/random_access_set.h"
#include "src/common/rng.h"
#include "src/workload/catalog.h"
#include "src/workload/config.h"
#include "src/workload/population.h"

namespace edk {

class BehaviourEngine {
 public:
  BehaviourEngine(const WorkloadConfig& config, const FileCatalog& catalog,
                  const PeerPopulation& population, Rng& rng);

  // Simulates one day: updates caches of all live sharer peers and decides
  // who is online. Days must be stepped in increasing order.
  void StepDay(int day);

  // Peers online on the most recently stepped day.
  const std::vector<uint32_t>& online_peers() const { return online_; }

  // Current cache of a peer (unordered; free-riders stay empty).
  const RandomAccessSet<uint32_t>& cache(size_t peer_index) const {
    return caches_[peer_index];
  }

  // Picks one acquisition for the peer on `day` through the interest model.
  // Returns a catalog index, or -1 if nothing suitable was found.
  int64_t PickAcquisition(const PeerProfile& peer, int day, Rng& rng) const;

 private:
  void InitialFill(uint32_t peer_index, int day);

  const WorkloadConfig& config_;
  const FileCatalog& catalog_;
  const PeerPopulation& population_;
  Rng& rng_;
  std::vector<RandomAccessSet<uint32_t>> caches_;
  std::vector<bool> initialised_;
  std::vector<uint32_t> online_;
};

}  // namespace edk

#endif  // SRC_WORKLOAD_BEHAVIOUR_H_
