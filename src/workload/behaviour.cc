#include "src/workload/behaviour.h"

#include <algorithm>
#include <cassert>

namespace edk {

BehaviourEngine::BehaviourEngine(const WorkloadConfig& config, const FileCatalog& catalog,
                                 const PeerPopulation& population, Rng& rng)
    : config_(config),
      catalog_(catalog),
      population_(population),
      rng_(rng),
      caches_(population.size()),
      initialised_(population.size(), false) {}

int64_t BehaviourEngine::PickAcquisition(const PeerProfile& peer, int day,
                                         Rng& rng) const {
  TopicId topic;
  if (!peer.interests.empty() && rng.NextBool(config_.interest_locality)) {
    const size_t pick = rng.NextWeighted(peer.interest_weights);
    topic = peer.interests[pick];
    // Collector niche: part of the in-topic acquisitions come uniformly
    // from the peer's focus segment of that topic.
    if (rng.NextBool(config_.focus_fraction)) {
      const int64_t niche = catalog_.SampleFromSegment(
          topic, peer.focus_segments[pick], config_.focus_segment_files, day, rng);
      if (niche >= 0) {
        return niche;
      }
    }
    int64_t index = catalog_.SampleFromTopic(topic, day, rng, /*hot=*/false);
    if (index >= 0) {
      return index;
    }
  }
  // Global flash-crowd channel: steeply head-biased, weakly correlated
  // with the peer's own interests.
  int64_t index = -1;
  for (int attempt = 0; attempt < 5 && index < 0; ++attempt) {
    index = catalog_.SampleFromTopic(catalog_.SampleTopic(rng), day, rng, /*hot=*/true);
  }
  return index;
}

void BehaviourEngine::InitialFill(uint32_t peer_index, int day) {
  const PeerProfile& peer = population_.profile(peer_index);
  auto& cache = caches_[peer_index];
  // A joining peer already owns part of its steady-state collection,
  // acquired over past weeks; sampling at lagged days ages the content.
  const uint32_t fill =
      static_cast<uint32_t>(peer.cache_target * (0.3 + 0.7 * rng_.NextDouble()));
  cache.Reserve(peer.cache_target + 8);
  constexpr int kHistoryDays = 60;
  for (uint32_t i = 0; i < fill; ++i) {
    const int lag = static_cast<int>(rng_.NextBelow(kHistoryDays));
    const int64_t pick = PickAcquisition(peer, day - lag, rng_);
    if (pick >= 0) {
      cache.Insert(static_cast<uint32_t>(pick));
    }
  }
}

void BehaviourEngine::StepDay(int day) {
  online_.clear();
  for (uint32_t p = 0; p < population_.size(); ++p) {
    const PeerProfile& peer = population_.profile(p);
    if (day < peer.join_day || day > peer.leave_day) {
      continue;
    }
    if (!rng_.NextBool(peer.availability)) {
      continue;
    }
    online_.push_back(p);
    if (peer.free_rider) {
      continue;
    }
    if (!initialised_[p]) {
      initialised_[p] = true;
      InitialFill(p, day);
    }
    auto& cache = caches_[p];
    const uint64_t additions = rng_.NextPoisson(peer.daily_additions);
    for (uint64_t i = 0; i < additions; ++i) {
      const int64_t pick = PickAcquisition(peer, day, rng_);
      if (pick >= 0) {
        cache.Insert(static_cast<uint32_t>(pick));
      }
    }
    // Keep the cache near its generosity target: random eviction models
    // users pruning their shared folder.
    while (cache.size() > peer.cache_target) {
      cache.Erase(cache.RandomElement(rng_));
    }
  }
}

}  // namespace edk
