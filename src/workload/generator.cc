#include "src/workload/generator.h"

#include <algorithm>

#include "src/common/log.h"
#include "src/obs/metrics.h"
#include "src/workload/behaviour.h"
#include "src/workload/catalog.h"

namespace edk {

GeneratedWorkload GenerateWorkload(const WorkloadConfig& config) {
  // Generation-work counters live in the env domain: a bench that loads
  // the same trace from the on-disk cache performs none of this work, so
  // these values depend on cache warmth, not on (seed, --threads). The
  // cache-invariant trace-shape counters are recorded by bench_common.
  obs::PhaseTimer timer("workload.generate");
  auto& registry = obs::MetricsRegistry::Global();
  registry.GetCounter("workload.traces_generated", obs::Domain::kEnv).Increment();
  Rng rng(config.seed);
  GeneratedWorkload out;
  out.config = config;
  out.geography = Geography::PaperDistribution();

  FileCatalog catalog(config, out.geography, rng);
  PeerPopulation population(config, out.geography, catalog, rng);
  BehaviourEngine engine(config, catalog, population, rng);

  catalog.ExportFiles(out.trace);
  population.ExportPeers(out.trace);
  out.profiles = population.profiles();

  const int last_day = config.first_day + config.num_days - 1;
  uint64_t snapshots = 0;
  uint64_t file_instances = 0;
  for (int day = config.first_day; day <= last_day; ++day) {
    engine.StepDay(day);
    for (uint32_t p : engine.online_peers()) {
      const auto& cache = engine.cache(p);
      std::vector<FileId> files;
      files.reserve(cache.size());
      for (uint32_t raw : cache) {
        files.push_back(FileId(raw));
      }
      ++snapshots;
      file_instances += files.size();
      out.trace.AddSnapshot(PeerId(p), day, std::move(files));
    }
    Log(LogLevel::kDebug) << "generated day " << day << ": "
                          << engine.online_peers().size() << " peers online";
  }
  registry.GetCounter("workload.days_generated", obs::Domain::kEnv)
      .Increment(static_cast<uint64_t>(config.num_days));
  registry.GetCounter("workload.snapshots_generated", obs::Domain::kEnv)
      .Increment(snapshots);
  registry.GetCounter("workload.file_instances_generated", obs::Domain::kEnv)
      .Increment(file_instances);
  return out;
}

WorkloadConfig SmallWorkloadConfig() {
  WorkloadConfig config;
  config.num_peers = 1'200;
  config.num_files = 8'000;
  config.num_topics = 60;
  config.num_days = 20;
  return config;
}

WorkloadConfig MediumWorkloadConfig() {
  WorkloadConfig config;
  config.num_peers = 10'000;
  config.num_files = 60'000;
  config.num_topics = 300;
  config.num_days = 42;
  return config;
}

}  // namespace edk
