// Out-of-core workload generation: emit EDKT v2 day segments while the
// behaviour engine runs, never materialising a Trace (DESIGN.md §6h).
//
// Two generators share the TraceWriter back-end:
//
//  * GenerateWorkloadStreaming — the real behaviour engine
//    (catalog/population/BehaviourEngine, identical state evolution to
//    GenerateWorkload). The trace on disk is byte-identical to
//    SaveTraceV2ToFile(GenerateWorkload(config).trace, ...): same tables,
//    ascending peers per day, sorted caches, and days without online peers
//    absent from both. Peak memory excludes the Trace (the engine itself
//    still holds every live cache).
//
//  * GenerateScaleTrace — a hash-driven synthetic model with O(1) state
//    per snapshot, for populations the engine cannot hold (the 10M-peer
//    out-of-core benchmark, bench/bench_stream.cc). Every byte is a pure
//    function of (config, peer, day), so output is deterministic and
//    resume-safe without any saved state.
//
// Both accept resume = true: the writer re-opens the target file,
// truncates any torn tail, and this run re-steps the (deterministic)
// model but skips writing every day the file already contains — a killed
// multi-hour generation loses at most one day segment of work.

#ifndef SRC_WORKLOAD_STREAM_GENERATE_H_
#define SRC_WORKLOAD_STREAM_GENERATE_H_

#include <cstdint>
#include <optional>
#include <string>

#include "src/trace/stream/trace_writer.h"
#include "src/workload/config.h"

namespace edk {

struct StreamGenerateStats {
  uint64_t days_written = 0;   // Day segments emitted by THIS run.
  uint64_t days_skipped = 0;   // Already present (resume) or nobody online.
  uint64_t snapshots = 0;      // Snapshots written by this run.
  uint64_t file_entries = 0;   // Cache entries written by this run.
  uint64_t bytes_written = 0;  // Final file size.
};

std::optional<StreamGenerateStats> GenerateWorkloadStreaming(
    const WorkloadConfig& config, const std::string& path, bool resume = false,
    std::string* error = nullptr,
    const stream::TraceWriter::Options& options = {});

// Hash-model shape knobs. Caches are `min_cache..max_cache` ids drawn
// strictly ascending from a ~`window`-wide band of the id space anchored
// per peer (with slow per-day drift), which gives overlap kernels realistic
// holder counts without any cross-day state.
struct ScaleTraceConfig {
  uint64_t num_peers = 10'000'000;
  uint64_t num_files = 2'000'000;
  int first_day = 0;
  int num_days = 14;
  // Per-peer per-day online probability, in 1/10000ths (1200 = 12%).
  uint32_t online_per_myriad = 1200;
  uint32_t min_cache = 4;
  uint32_t max_cache = 48;
  uint64_t seed = 42;
};

std::optional<StreamGenerateStats> GenerateScaleTrace(
    const ScaleTraceConfig& config, const std::string& path,
    bool resume = false, std::string* error = nullptr,
    const stream::TraceWriter::Options& options = {});

}  // namespace edk

#endif  // SRC_WORKLOAD_STREAM_GENERATE_H_
