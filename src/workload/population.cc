#include "src/workload/population.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace edk {

namespace {

// Picks an interest topic for a peer: with probability geo_topic_affinity
// from the topics whose home country matches the peer's, otherwise from the
// global topic distribution. Duplicate topics are allowed and merged by the
// caller (they just raise the weight).
TopicId PickInterest(const FileCatalog& catalog, CountryId country,
                     double geo_topic_affinity, Rng& rng) {
  const auto& local = catalog.topics_of_country(country);
  if (!local.empty() && rng.NextBool(geo_topic_affinity)) {
    // Weighted pick among local topics by their global weight.
    double total = 0;
    for (uint32_t t : local) {
      total += catalog.topic(TopicId(t)).weight;
    }
    double target = rng.NextDouble() * total;
    for (uint32_t t : local) {
      target -= catalog.topic(TopicId(t)).weight;
      if (target <= 0) {
        return TopicId(t);
      }
    }
    return TopicId(local.back());
  }
  return catalog.SampleTopic(rng);
}

}  // namespace

PeerPopulation::PeerPopulation(const WorkloadConfig& config, const Geography& geography,
                               const FileCatalog& catalog, Rng& rng) {
  profiles_.resize(config.num_peers);
  const int last_day = config.first_day + config.num_days - 1;

  // Mean of the clamped Pareto, used to scale daily addition rates so the
  // population-wide average matches mean_daily_additions.
  double target_sum = 0;

  for (uint32_t p = 0; p < config.num_peers; ++p) {
    PeerProfile& peer = profiles_[p];
    peer.info.country = geography.SampleCountry(rng);
    peer.info.autonomous_system = geography.SampleAs(peer.info.country, rng);
    peer.info.ip_address = static_cast<uint32_t>(rng());
    peer.info.user_id = rng();
    peer.info.firewalled = rng.NextBool(config.firewalled_fraction);
    peer.free_rider = rng.NextBool(config.free_rider_fraction);

    peer.availability = config.min_availability +
                        rng.NextDouble() * (config.max_availability - config.min_availability);
    peer.join_day = config.first_day;
    peer.leave_day = last_day;
    if (rng.NextBool(config.late_joiner_fraction)) {
      peer.join_day = static_cast<int>(rng.NextInRange(config.first_day, last_day));
    }
    if (rng.NextBool(config.early_leaver_fraction)) {
      peer.leave_day = static_cast<int>(rng.NextInRange(peer.join_day, last_day));
    }

    if (peer.free_rider) {
      continue;
    }

    const double raw_target =
        rng.NextPareto(config.cache_pareto_xm, config.cache_pareto_alpha);
    peer.cache_target = static_cast<uint32_t>(
        std::clamp(raw_target, 2.0, config.cache_max));
    target_sum += peer.cache_target;

    const uint32_t interest_count = std::min<uint32_t>(
        config.max_interests,
        config.min_interests +
            static_cast<uint32_t>(rng.NextGeometric(config.interest_geometric_p)));
    peer.interests.reserve(interest_count);
    peer.interest_weights.reserve(interest_count);
    peer.focus_segments.reserve(interest_count);
    for (uint32_t i = 0; i < interest_count; ++i) {
      const TopicId topic =
          PickInterest(catalog, peer.info.country, config.geo_topic_affinity, rng);
      auto it = std::find(peer.interests.begin(), peer.interests.end(), topic);
      if (it != peer.interests.end()) {
        peer.interest_weights[static_cast<size_t>(it - peer.interests.begin())] += 1.0;
      } else {
        peer.interests.push_back(topic);
        peer.interest_weights.push_back(1.0 + rng.NextExponential(1.0));
        const size_t catalog_size = catalog.topic(topic).files_by_rank.size();
        const uint32_t segments = static_cast<uint32_t>(
            (catalog_size + config.focus_segment_files - 1) / config.focus_segment_files);
        peer.focus_segments.push_back(
            segments == 0 ? 0 : static_cast<uint32_t>(rng.NextBelow(segments)));
      }
    }
  }

  // Scale addition rates: generous peers both hold and churn more.
  const size_t sharer_count =
      static_cast<size_t>(std::count_if(profiles_.begin(), profiles_.end(),
                                        [](const PeerProfile& p) { return !p.free_rider; }));
  const double mean_target = sharer_count == 0 ? 1.0 : target_sum / static_cast<double>(sharer_count);
  for (auto& peer : profiles_) {
    if (peer.free_rider) {
      continue;
    }
    const double scaled =
        config.mean_daily_additions * static_cast<double>(peer.cache_target) / mean_target;
    peer.daily_additions = std::clamp(scaled, 0.2, 60.0);
  }

  // Duplicate identities: a slice of peers clones the IP of a neighbour
  // (DHCP reuse), another slice clones the user id (reinstall artefacts).
  const uint32_t ip_clones =
      static_cast<uint32_t>(config.duplicate_ip_fraction * config.num_peers);
  const uint32_t uid_clones =
      static_cast<uint32_t>(config.duplicate_uid_fraction * config.num_peers);
  for (uint32_t i = 0; i < ip_clones && config.num_peers >= 2; ++i) {
    const uint32_t a = static_cast<uint32_t>(rng.NextBelow(config.num_peers));
    const uint32_t b = static_cast<uint32_t>(rng.NextBelow(config.num_peers));
    if (a != b) {
      profiles_[a].info.ip_address = profiles_[b].info.ip_address;
    }
  }
  for (uint32_t i = 0; i < uid_clones && config.num_peers >= 2; ++i) {
    const uint32_t a = static_cast<uint32_t>(rng.NextBelow(config.num_peers));
    const uint32_t b = static_cast<uint32_t>(rng.NextBelow(config.num_peers));
    if (a != b) {
      profiles_[a].info.user_id = profiles_[b].info.user_id;
    }
  }
}

void PeerPopulation::ExportPeers(Trace& trace) const {
  for (const auto& peer : profiles_) {
    trace.AddPeer(peer.info);
  }
}

}  // namespace edk
