// Tunable parameters of the synthetic eDonkey workload, with defaults
// calibrated to the marginals the paper reports (§2.3, §3, §4, Table 1).

#ifndef SRC_WORKLOAD_CONFIG_H_
#define SRC_WORKLOAD_CONFIG_H_

#include <cstdint>

namespace edk {

struct WorkloadConfig {
  uint64_t seed = 42;

  // Population and catalog scale. The paper's extrapolated trace has 53,476
  // clients over 42 days; defaults are a laptop-scale reduction that keeps
  // every ratio intact.
  uint32_t num_peers = 20'000;
  uint32_t num_files = 150'000;
  uint32_t num_topics = 300;

  // Day numbering matches the paper's plots (day 348 = Dec 15).
  int first_day = 348;
  int num_days = 42;

  // Peer behaviour.
  double free_rider_fraction = 0.74;   // Table 1, extrapolated trace.
  double firewalled_fraction = 0.25;   // Unreachable for browsing.
  double mean_daily_additions = 5.0;   // "clients share 5 new files per day".
  double cache_pareto_alpha = 0.82;    // Generosity tail (top 15% hold ~75%).
  double cache_pareto_xm = 6.0;        // Minimum sharer cache target.
  double cache_max = 4'000;            // Clamp for the generosity tail.

  // Interest model.
  double interest_locality = 0.85;     // P(acquisition drawn from own topics).
  double geo_topic_affinity = 0.70;    // P(interest biased to home-country topics).
  double topic_zipf = 0.70;            // Topic popularity skew.
  // Within-topic skew of *interest-driven* acquisitions: mild, so topic
  // fans spread over the whole topic catalog (incl. its tail).
  double file_zipf = 0.40;
  // Skew of *global* (non-interest, flash-crowd) acquisitions: steep, so
  // globally popular files are held by a weakly interest-correlated crowd —
  // which is why, as in the paper, popular files contaminate semantic
  // lists while rare files strengthen them.
  double global_zipf = 1.30;
  uint32_t min_interests = 2;
  uint32_t max_interests = 8;
  double interest_geometric_p = 0.70;  // Interests per peer ~ min + Geom(p).
  // Collector structure: per interest, a peer focuses on one contiguous
  // segment of the topic's catalog (an "artist"/"series" niche). A fraction
  // of in-topic acquisitions come uniformly from that segment, which makes
  // peers who share one rare file share many — the rare-file clustering
  // the paper measures (Figs. 13-14, 20).
  double focus_fraction = 0.55;        // P(in-topic pick from the focus segment).
  uint32_t focus_segment_files = 15;   // Segment size in files.

  // Temporal dynamics.
  double pre_release_fraction = 0.5;   // Files already out before the trace.
  int pre_release_window_days = 90;
  double flash_decay_days = 10.0;      // Attractiveness e-folding time.
  double attractiveness_floor = 0.02;  // Old files keep circulating a little.

  // Availability / churn.
  double min_availability = 0.30;      // Per-day connect probability ranges.
  double max_availability = 0.95;
  double late_joiner_fraction = 0.15;  // Peers appearing mid-trace.
  double early_leaver_fraction = 0.15;

  // Duplicate identities (DHCP / reinstall artefacts the filtered trace
  // removes, §2.3).
  double duplicate_ip_fraction = 0.03;
  double duplicate_uid_fraction = 0.02;
};

}  // namespace edk

#endif  // SRC_WORKLOAD_CONFIG_H_
