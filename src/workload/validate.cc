#include "src/workload/validate.h"

#include <algorithm>
#include <functional>
#include <unordered_map>

#include "src/common/stats.h"
#include "src/common/table.h"

namespace edk {

bool WorkloadValidation::AllPass() const {
  return PassCount() == checks.size();
}

size_t WorkloadValidation::PassCount() const {
  size_t count = 0;
  for (const auto& check : checks) {
    count += check.Pass() ? 1 : 0;
  }
  return count;
}

namespace {

constexpr double kMB = 1024.0 * 1024.0;

MarginalCheck Check(std::string name, double measured, double lo, double hi) {
  MarginalCheck check;
  check.name = std::move(name);
  check.measured = measured;
  check.target_low = lo;
  check.target_high = hi;
  return check;
}

}  // namespace

WorkloadValidation ValidateWorkloadTrace(const Trace& trace) {
  WorkloadValidation validation;
  const size_t peers = trace.peer_count();
  if (peers == 0) {
    return validation;
  }

  // --- Free riding & sharing skew -------------------------------------------
  validation.checks.push_back(
      Check("free-rider fraction",
            static_cast<double>(trace.CountFreeRiders()) / static_cast<double>(peers),
            0.65, 0.90));

  std::vector<uint64_t> files_per_sharer;
  uint64_t total_replicas = 0;
  std::vector<std::vector<FileId>> unions(peers);
  for (size_t p = 0; p < peers; ++p) {
    unions[p] = trace.UnionCache(PeerId(static_cast<uint32_t>(p)));
    if (!unions[p].empty()) {
      files_per_sharer.push_back(unions[p].size());
      total_replicas += unions[p].size();
    }
  }
  double top15_share = 0;
  if (!files_per_sharer.empty() && total_replicas > 0) {
    std::sort(files_per_sharer.begin(), files_per_sharer.end(), std::greater<>());
    const size_t top = std::max<size_t>(1, files_per_sharer.size() * 15 / 100);
    uint64_t top_sum = 0;
    for (size_t i = 0; i < top; ++i) {
      top_sum += files_per_sharer[i];
    }
    top15_share = static_cast<double>(top_sum) / static_cast<double>(total_replicas);
  }
  validation.checks.push_back(Check("top-15% sharers' replica share", top15_share,
                                    0.55, 0.90));

  // --- Size mixture -----------------------------------------------------------
  std::vector<uint32_t> sources(trace.file_count(), 0);
  for (const auto& cache : unions) {
    for (FileId f : cache) {
      ++sources[f.value];
    }
  }
  uint64_t shared_files = 0;
  uint64_t below_1mb = 0;
  uint64_t audio_range = 0;
  uint64_t popular = 0;
  uint64_t popular_large = 0;
  for (size_t f = 0; f < trace.file_count(); ++f) {
    if (sources[f] == 0) {
      continue;
    }
    ++shared_files;
    const double size = static_cast<double>(trace.file(FileId(static_cast<uint32_t>(f))).size_bytes);
    if (size < kMB) {
      ++below_1mb;
    } else if (size <= 10 * kMB) {
      ++audio_range;
    }
    if (sources[f] >= 10) {
      ++popular;
      if (size > 600 * kMB) {
        ++popular_large;
      }
    }
  }
  if (shared_files > 0) {
    validation.checks.push_back(
        Check("shared files < 1MB",
              static_cast<double>(below_1mb) / static_cast<double>(shared_files), 0.20,
              0.50));
    validation.checks.push_back(
        Check("shared files 1-10MB",
              static_cast<double>(audio_range) / static_cast<double>(shared_files), 0.30,
              0.60));
  }
  if (popular > 0) {
    validation.checks.push_back(
        Check("popularity>=10 files > 600MB",
              static_cast<double>(popular_large) / static_cast<double>(popular), 0.30,
              0.80));
  }

  // --- Geography ----------------------------------------------------------------
  // FR + DE should dominate (the two largest country ids by count).
  std::unordered_map<uint32_t, uint32_t> country_counts;
  for (const auto& peer : trace.peers()) {
    ++country_counts[peer.country.value];
  }
  std::vector<uint32_t> counts;
  counts.reserve(country_counts.size());
  for (const auto& [country, count] : country_counts) {
    counts.push_back(count);
  }
  std::sort(counts.begin(), counts.end(), std::greater<>());
  double top2 = 0;
  for (size_t i = 0; i < counts.size() && i < 2; ++i) {
    top2 += counts[i];
  }
  validation.checks.push_back(
      Check("two largest countries' client share", top2 / static_cast<double>(peers),
            0.45, 0.70));

  // --- Popularity shape -----------------------------------------------------------
  std::vector<uint32_t> ranked;
  for (uint32_t c : sources) {
    if (c > 0) {
      ranked.push_back(c);
    }
  }
  std::sort(ranked.begin(), ranked.end(), std::greater<>());
  if (ranked.size() > 100) {
    std::vector<double> xs;
    std::vector<double> ys;
    for (size_t i = 10; i < ranked.size(); ++i) {
      xs.push_back(static_cast<double>(i + 1));
      ys.push_back(static_cast<double>(ranked[i]));
    }
    const LinearFit fit = FitLogLog(xs, ys);
    validation.checks.push_back(Check("Zipf tail slope", fit.slope, -1.2, -0.4));

    // Peak spread: the most replicated file against scanned peers.
    validation.checks.push_back(
        Check("peak file spread",
              static_cast<double>(ranked.front()) / static_cast<double>(peers), 0.001,
              0.06));
  }

  // --- Churn ------------------------------------------------------------------------
  double churn_sum = 0;
  uint64_t churn_pairs = 0;
  for (size_t p = 0; p < peers; ++p) {
    const auto& snapshots = trace.timeline(PeerId(static_cast<uint32_t>(p))).snapshots;
    for (size_t s = 1; s < snapshots.size(); ++s) {
      if (snapshots[s].day != snapshots[s - 1].day + 1 || snapshots[s].files.empty()) {
        continue;
      }
      const size_t overlap = OverlapSize(snapshots[s - 1].files, snapshots[s].files);
      churn_sum += static_cast<double>(snapshots[s].files.size() - overlap);
      ++churn_pairs;
    }
  }
  if (churn_pairs > 0) {
    validation.checks.push_back(Check("daily cache churn (new files/day)",
                                      churn_sum / static_cast<double>(churn_pairs), 0.5,
                                      12.0));
  }
  return validation;
}

std::string RenderValidation(const WorkloadValidation& validation) {
  AsciiTable table({"marginal", "measured", "target band", "verdict"});
  for (const auto& check : validation.checks) {
    table.AddRow({check.name, AsciiTable::FormatCell(check.measured),
                  AsciiTable::FormatCell(check.target_low) + " .. " +
                      AsciiTable::FormatCell(check.target_high),
                  check.Pass() ? "pass" : "FAIL"});
  }
  std::string out = table.ToString();
  out += "passed " + std::to_string(validation.PassCount()) + "/" +
         std::to_string(validation.checks.size()) + "\n";
  return out;
}

}  // namespace edk
