// Synthetic geography: country and autonomous-system populations calibrated
// to the paper's measurements (Fig. 4 country mix, Table 2 AS mix).

#ifndef SRC_WORKLOAD_GEOGRAPHY_H_
#define SRC_WORKLOAD_GEOGRAPHY_H_

#include <string>
#include <vector>

#include "src/common/ids.h"
#include "src/common/rng.h"

namespace edk {

struct CountrySpec {
  std::string code;      // ISO-3166-ish two-letter code.
  double peer_fraction;  // Fraction of the population (sums to 1).
};

struct AsSpec {
  uint32_t as_number;
  std::string name;
  CountryId country;
  double national_fraction;  // Fraction of its country's peers it hosts.
};

// The country/AS universe plus samplers. CountryId and AsId index into the
// tables returned by countries() and systems().
class Geography {
 public:
  // Builds the default universe from the paper's Fig. 4 / Table 2 numbers.
  static Geography PaperDistribution();

  const std::vector<CountrySpec>& countries() const { return countries_; }
  const std::vector<AsSpec>& systems() const { return systems_; }

  const CountrySpec& country(CountryId id) const { return countries_[id.value]; }
  const AsSpec& autonomous_system(AsId id) const { return systems_[id.value]; }

  // Samples a country according to peer fractions.
  CountryId SampleCountry(Rng& rng) const;
  // Samples an AS for a peer in the given country according to national
  // fractions (every country has a catch-all "other ISPs" AS).
  AsId SampleAs(CountryId country, Rng& rng) const;

  CountryId FindCountry(const std::string& code) const;

 private:
  std::vector<CountrySpec> countries_;
  std::vector<AsSpec> systems_;
  std::vector<double> country_weights_;
  // Per country: indices into systems_ and their weights.
  std::vector<std::vector<uint32_t>> as_by_country_;
  std::vector<std::vector<double>> as_weights_by_country_;
};

}  // namespace edk

#endif  // SRC_WORKLOAD_GEOGRAPHY_H_
