// Geographical clustering analyses (paper §4.1): Fig. 4 (clients per
// country), Figs. 11-12 (CDF of the fraction of a file's sources located in
// its home country / home AS, split by average popularity) and Table 2
// (top autonomous systems).

#ifndef SRC_ANALYSIS_GEO_CLUSTERING_H_
#define SRC_ANALYSIS_GEO_CLUSTERING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/trace/trace.h"
#include "src/workload/geography.h"

namespace edk {

struct CountryCount {
  CountryId country;
  uint32_t clients = 0;
  double fraction = 0;
};

// Clients per country, descending (Fig. 4).
std::vector<CountryCount> CountryHistogram(const Trace& trace);

struct AsShare {
  AsId autonomous_system;
  uint32_t clients = 0;
  double global_fraction = 0;    // Among all clients.
  double national_fraction = 0;  // Among clients of its own country.
};

// Top autonomous systems by hosted clients, descending (Table 2).
std::vector<AsShare> TopAutonomousSystems(const Trace& trace, size_t k);

// For every file with >= 1 source and average popularity >= min_popularity:
// the fraction of its sources in its home country (the country hosting the
// most sources). One Fig. 11 curve per popularity threshold.
std::vector<double> HomeCountryFractions(const Trace& trace, double min_popularity);

// Same at the AS level (Fig. 12).
std::vector<double> HomeAsFractions(const Trace& trace, double min_popularity);

}  // namespace edk

#endif  // SRC_ANALYSIS_GEO_CLUSTERING_H_
