#include "src/analysis/geo_clustering.h"

#include <algorithm>
#include <unordered_map>

#include "src/analysis/popularity.h"

namespace edk {

std::vector<CountryCount> CountryHistogram(const Trace& trace) {
  std::unordered_map<uint32_t, uint32_t> counts;
  for (const auto& peer : trace.peers()) {
    ++counts[peer.country.value];
  }
  std::vector<CountryCount> out;
  out.reserve(counts.size());
  for (const auto& [country, clients] : counts) {
    CountryCount entry;
    entry.country = CountryId(country);
    entry.clients = clients;
    entry.fraction =
        static_cast<double>(clients) / static_cast<double>(trace.peer_count());
    out.push_back(entry);
  }
  std::sort(out.begin(), out.end(), [](const CountryCount& a, const CountryCount& b) {
    return a.clients > b.clients;
  });
  return out;
}

std::vector<AsShare> TopAutonomousSystems(const Trace& trace, size_t k) {
  std::unordered_map<uint32_t, uint32_t> as_counts;
  std::unordered_map<uint32_t, uint32_t> country_counts;
  std::unordered_map<uint32_t, uint32_t> as_country;
  for (const auto& peer : trace.peers()) {
    ++as_counts[peer.autonomous_system.value];
    ++country_counts[peer.country.value];
    as_country[peer.autonomous_system.value] = peer.country.value;
  }
  std::vector<AsShare> out;
  out.reserve(as_counts.size());
  for (const auto& [as_number, clients] : as_counts) {
    AsShare share;
    share.autonomous_system = AsId(as_number);
    share.clients = clients;
    share.global_fraction =
        static_cast<double>(clients) / static_cast<double>(trace.peer_count());
    const uint32_t national = country_counts[as_country[as_number]];
    share.national_fraction =
        national == 0 ? 0 : static_cast<double>(clients) / static_cast<double>(national);
    out.push_back(share);
  }
  std::sort(out.begin(), out.end(),
            [](const AsShare& a, const AsShare& b) { return a.clients > b.clients; });
  if (out.size() > k) {
    out.resize(k);
  }
  return out;
}

namespace {

// Shared implementation: the "home" of a file is the attribute value (country
// or AS) hosting the most sources; returns, per qualifying file, the
// fraction of sources at home.
template <typename AttributeFn>
std::vector<double> HomeFractions(const Trace& trace, double min_popularity,
                                  AttributeFn attribute_of) {
  const auto popularity = AveragePopularity(trace);
  // Sources per file from union caches.
  std::vector<std::vector<uint32_t>> file_source_attr(trace.file_count());
  for (size_t p = 0; p < trace.peer_count(); ++p) {
    const PeerId id(static_cast<uint32_t>(p));
    const uint32_t attr = attribute_of(trace.peer(id));
    for (FileId f : trace.UnionCache(id)) {
      file_source_attr[f.value].push_back(attr);
    }
  }
  std::vector<double> out;
  std::unordered_map<uint32_t, uint32_t> histogram;
  for (size_t f = 0; f < trace.file_count(); ++f) {
    const auto& attrs = file_source_attr[f];
    if (attrs.empty() || popularity[f] < min_popularity) {
      continue;
    }
    histogram.clear();
    uint32_t best = 0;
    for (uint32_t attr : attrs) {
      best = std::max(best, ++histogram[attr]);
    }
    out.push_back(static_cast<double>(best) / static_cast<double>(attrs.size()));
  }
  return out;
}

}  // namespace

std::vector<double> HomeCountryFractions(const Trace& trace, double min_popularity) {
  return HomeFractions(trace, min_popularity,
                       [](const PeerInfo& peer) { return peer.country.value; });
}

std::vector<double> HomeAsFractions(const Trace& trace, double min_popularity) {
  return HomeFractions(trace, min_popularity,
                       [](const PeerInfo& peer) { return peer.autonomous_system.value; });
}

}  // namespace edk
