#include "src/analysis/spread.h"

#include <algorithm>
#include <numeric>

#include "src/exec/parallel.h"

namespace edk {

namespace {

std::vector<FileId> TopKFromCounts(const std::vector<uint32_t>& counts, size_t k) {
  std::vector<uint32_t> indices(counts.size());
  std::iota(indices.begin(), indices.end(), 0);
  const size_t top = std::min(k, indices.size());
  std::partial_sort(indices.begin(), indices.begin() + static_cast<long>(top),
                    indices.end(), [&counts](uint32_t a, uint32_t b) {
                      if (counts[a] != counts[b]) {
                        return counts[a] > counts[b];
                      }
                      return a < b;
                    });
  std::vector<FileId> out;
  out.reserve(top);
  for (size_t i = 0; i < top; ++i) {
    if (counts[indices[i]] == 0) {
      break;
    }
    out.push_back(FileId(indices[i]));
  }
  return out;
}

std::vector<uint32_t> SourcesOnDay(const Trace& trace, int day) {
  std::vector<uint32_t> counts(trace.file_count(), 0);
  for (size_t p = 0; p < trace.peer_count(); ++p) {
    const CacheSnapshot* snapshot =
        trace.timeline(PeerId(static_cast<uint32_t>(p))).SnapshotOn(day);
    if (snapshot == nullptr) {
      continue;
    }
    for (FileId f : snapshot->files) {
      ++counts[f.value];
    }
  }
  return counts;
}

}  // namespace

std::vector<FileId> TopFilesOverall(const Trace& trace, size_t k) {
  return TopKFromCounts(trace.SourceCounts(), k);
}

std::vector<FileId> TopFilesOnDay(const Trace& trace, int day, size_t k) {
  return TopKFromCounts(SourcesOnDay(trace, day), k);
}

std::vector<double> FileSpreadOverTime(const Trace& trace, FileId file) {
  std::vector<double> out;
  if (trace.last_day() < trace.first_day()) {
    return out;
  }
  out.resize(static_cast<size_t>(trace.last_day() - trace.first_day() + 1), 0.0);
  std::vector<uint32_t> scanned(out.size(), 0);
  std::vector<uint32_t> holders(out.size(), 0);
  for (size_t p = 0; p < trace.peer_count(); ++p) {
    for (const auto& snapshot : trace.timeline(PeerId(static_cast<uint32_t>(p))).snapshots) {
      const size_t d = static_cast<size_t>(snapshot.day - trace.first_day());
      ++scanned[d];
      if (std::binary_search(snapshot.files.begin(), snapshot.files.end(), file)) {
        ++holders[d];
      }
    }
  }
  for (size_t d = 0; d < out.size(); ++d) {
    if (scanned[d] > 0) {
      out[d] = static_cast<double>(holders[d]) / static_cast<double>(scanned[d]);
    }
  }
  return out;
}

std::vector<uint32_t> FileRankOverTime(const Trace& trace, FileId file) {
  return FileRanksOverTime(trace, {file})[0];
}

std::vector<std::vector<uint32_t>> FileRanksOverTime(const Trace& trace,
                                                     const std::vector<FileId>& files) {
  std::vector<std::vector<uint32_t>> out(files.size());
  if (trace.last_day() < trace.first_day()) {
    return out;
  }
  const size_t days = static_cast<size_t>(trace.last_day() - trace.first_day() + 1);
  for (auto& series : out) {
    series.assign(days, 0);
  }
  // Each day recomputes the full per-file source counts — the expensive
  // part — and writes only the (file, day) slots for that day, so the day
  // loop fans out without any cross-task state.
  ParallelFor(0, days, [&](size_t d) {
    const int day = trace.first_day() + static_cast<int>(d);
    const auto counts = SourcesOnDay(trace, day);
    for (size_t i = 0; i < files.size(); ++i) {
      const uint32_t own = counts[files[i].value];
      if (own == 0) {
        continue;
      }
      // Rank = 1 + number of files strictly more replicated (ties broken by
      // file id to keep ranks distinct and stable, as in ranked plots).
      uint32_t rank = 1;
      for (size_t f = 0; f < counts.size(); ++f) {
        if (counts[f] > own || (counts[f] == own && f < files[i].value)) {
          ++rank;
        }
      }
      out[i][d] = rank;
    }
  });
  return out;
}

}  // namespace edk
