// Semantic clustering correlation (paper §4.2.1, Figs. 13-14).
//
// The clustering metric: for peer pairs having at least k files in common,
// the probability that they share at least one more. The paper computes it
// on one day's caches, for all files and for restricted file classes (audio
// files in a popularity band; files of exact popularity 3 or 5), and
// compares against the randomised trace to separate genuine interest-based
// clustering from the effect of popular files and generous peers.

#ifndef SRC_ANALYSIS_CLUSTERING_H_
#define SRC_ANALYSIS_CLUSTERING_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/trace/cache_store.h"
#include "src/trace/trace.h"

namespace edk {

struct ClusteringCurve {
  // pairs_at_least[k] = number of peer pairs with >= k common files
  // (index 0 unused; k ranges 1..max_k+1).
  std::vector<uint64_t> pairs_at_least;
  // probability[k] = P(>= k+1 common | >= k common), for k in 1..max_k.
  std::vector<double> probability;

  // Convenience: probability at k, 0 when no pair reached k.
  double ProbabilityAt(size_t k) const;
};

// Computes the curve over all files, or over the subset selected by
// `file_mask` (mask size must equal the file-id space; overlaps count only
// masked files).
ClusteringCurve ComputeClusteringCurve(const StaticCaches& caches, size_t max_k,
                                       const std::vector<bool>* file_mask = nullptr);

// Store-level twin used by the streaming pipeline: takes an already-built
// (and, if needed, already-masked) one-day CacheStore view — either
// CacheStore::FromStaticCaches/FromTraceDay or a stream::TraceReader day
// view, which are layout-identical, so both paths give byte-identical
// curves.
ClusteringCurve ComputeClusteringCurve(const CacheStore& store, size_t max_k);

// Mask helpers for the paper's file classes.
// Files of the given category whose union-trace popularity lies in
// [min_sources, max_sources].
std::vector<bool> MaskCategoryPopularity(const Trace& trace, FileCategory category,
                                         uint32_t min_sources, uint32_t max_sources);
// Files with exactly `sources` sources in the given caches.
std::vector<bool> MaskExactPopularity(const StaticCaches& caches, size_t file_count,
                                      uint32_t sources);

}  // namespace edk

#endif  // SRC_ANALYSIS_CLUSTERING_H_
