// Out-of-core streaming twins of the day-sweep analyses (DESIGN.md §6h).
//
// Every function here consumes an EDKT v2 stream::TraceReader instead of
// an in-RAM Trace and is BYTE-IDENTICAL to its Trace-based twin on the
// materialised trace, at any thread count. That holds by construction:
//   * per-day work runs on TraceReader day views that are layout-identical
//     to CacheStore::FromTraceDay, through the same shared store-level
//     kernels (OverlapHistogramFromStore, SelectOverlapCohorts,
//     ComputeClusteringCurve's store overload);
//   * day sweeps accumulate exact integer quantities (in uint64 or as
//     integer-valued doubles), so task order cannot perturb results;
//   * blocked (tag 0x04) days additionally decode block-parallel — per-task
//     or per-worker partials merged through commutative integer sums or the
//     first-seen bitmap (DESIGN.md §6i) — so the same byte-identity holds
//     across thread counts AND across blocked/unblocked encodings;
//   * snapshot *presence* matters separately from cache content (a peer
//     observed with an empty cache is not the same as an unobserved peer),
//     so the sweeps consult the day view's observed-peer list, never just
//     row emptiness.
//
// Memory is bounded by one day's segment (times the worker count for the
// parallel sweeps), never by the trace: a 10M-peer multi-week trace
// analyses in well under 2 GB (bench/bench_stream.cc measures this).
//
// Deliberately NOT here: the whole-trace union analyses
// (RankedSourcesOverall, AveragePopularity, BuildUnionCaches consumers).
// Their state is O(distinct peer-file pairs) — the thing an out-of-core
// pipeline cannot hold — so they stay on the materialising path.

#ifndef SRC_ANALYSIS_STREAMING_H_
#define SRC_ANALYSIS_STREAMING_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/analysis/clustering.h"
#include "src/analysis/overlap.h"
#include "src/analysis/popularity.h"
#include "src/trace/stream/trace_reader.h"

namespace edk {

// Twin of ComputeDailyActivity (Figs. 1-3).
std::vector<DailyActivity> StreamingDailyActivity(
    const stream::TraceReader& reader);

// Twin of RankedSourcesOnDay (one Fig. 5 curve).
std::vector<uint32_t> StreamingRankedSourcesOnDay(
    const stream::TraceReader& reader, int day);

// Twin of FileSpreadOverTime (Fig. 8).
std::vector<double> StreamingFileSpreadOverTime(
    const stream::TraceReader& reader, FileId file);

// Twin of FileRanksOverTime (Figs. 9-10).
std::vector<std::vector<uint32_t>> StreamingFileRanksOverTime(
    const stream::TraceReader& reader, const std::vector<FileId>& files);

// Twin of OverlapHistogramOnDay.
std::vector<std::pair<uint32_t, uint64_t>> StreamingOverlapHistogramOnDay(
    const stream::TraceReader& reader, int day);

// Twin of ComputeOverlapEvolution (Figs. 15-17): cohort selection on the
// first day's view, then a parallel day sweep that decodes each day once.
std::vector<OverlapCohort> StreamingOverlapEvolution(
    const stream::TraceReader& reader, const OverlapEvolutionOptions& options);

// Twin of ComputeClusteringCurve(BuildDayCaches(trace, day), ...)
// (Figs. 13-14). The mask, if given, is indexed by file id as usual.
ClusteringCurve StreamingClusteringCurveOnDay(
    const stream::TraceReader& reader, int day, size_t max_k,
    const std::vector<bool>* file_mask = nullptr);

}  // namespace edk

#endif  // SRC_ANALYSIS_STREAMING_H_
