#include "src/analysis/report.h"

#include <sstream>

#include "src/common/table.h"

namespace edk {

TraceCharacteristics Characterize(const Trace& trace) {
  TraceCharacteristics out;
  if (trace.last_day() >= trace.first_day()) {
    out.duration_days = trace.last_day() - trace.first_day() + 1;
  }
  out.clients = trace.peer_count();
  out.free_riders = trace.CountFreeRiders();
  out.snapshots = trace.TotalSnapshots();
  const auto counts = trace.SourceCounts();
  for (size_t f = 0; f < counts.size(); ++f) {
    if (counts[f] > 0) {
      ++out.distinct_files;
      out.distinct_bytes += trace.file(FileId(static_cast<uint32_t>(f))).size_bytes;
    }
  }
  return out;
}

std::string RenderCharacteristics(const std::string& title,
                                  const TraceCharacteristics& characteristics) {
  AsciiTable table({title, "value"});
  table.AddRow({"Duration (days)", std::to_string(characteristics.duration_days)});
  table.AddRow({"Number of clients", std::to_string(characteristics.clients)});
  table.AddRow({"Number of free-riders",
                std::to_string(characteristics.free_riders) + " (" +
                    FormatPercent(characteristics.FreeRiderFraction(), 0) + ")"});
  table.AddRow({"Number of successful snapshots", std::to_string(characteristics.snapshots)});
  table.AddRow({"Number of distinct files", std::to_string(characteristics.distinct_files)});
  table.AddRow({"Space used by distinct files",
                FormatBytes(static_cast<double>(characteristics.distinct_bytes))});
  return table.ToString();
}

}  // namespace edk
