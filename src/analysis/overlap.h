// Overlap dynamics between peer pairs (paper §4.2.2, Figs. 15-17).
//
// Pairs of peers are grouped into cohorts by the number of files they have
// in common on the first day of the (extrapolated) trace; the mean overlap
// of each cohort is then tracked day by day. The paper's observation: small
// initial overlaps decay smoothly, large initial overlaps show long
// plateaux — i.e. interest-based proximity is stable over weeks even though
// the underlying files churn.

#ifndef SRC_ANALYSIS_OVERLAP_H_
#define SRC_ANALYSIS_OVERLAP_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/trace/cache_store.h"
#include "src/trace/trace.h"

namespace edk {

struct OverlapCohort {
  uint32_t initial_overlap = 0;                // Exact common-file count on day 1.
  uint64_t pair_count = 0;                     // Pairs in the cohort (pre-sampling).
  std::vector<std::pair<uint32_t, uint32_t>> pairs;  // Tracked (possibly sampled).
  std::vector<double> mean_overlap;            // Per day of the trace.
};

struct OverlapEvolutionOptions {
  // Cohorts to build, by exact initial overlap.
  std::vector<uint32_t> cohort_overlaps = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  // Large cohorts are subsampled to this many pairs for the daily sweep.
  size_t max_pairs_per_cohort = 20'000;
  uint64_t seed = 1;
};

// `trace` should be the extrapolated trace (dense daily snapshots). The
// overlap on a day counts only pairs where both peers have a snapshot.
std::vector<OverlapCohort> ComputeOverlapEvolution(const Trace& trace,
                                                   const OverlapEvolutionOptions& options);

// All pair overlaps on one day, as (pair, overlap) histogram support:
// returns exact-overlap -> pair count. Used by tests and by cohort
// selection.
std::vector<std::pair<uint32_t, uint64_t>> OverlapHistogramOnDay(const Trace& trace,
                                                                 int day);

// Store-level kernels shared by the in-RAM entry points above and the
// out-of-core streaming pipeline (src/analysis/streaming.h). Both take a
// one-day CacheStore view — CacheStore::FromTraceDay or a
// stream::TraceReader::ReadDay store, which are layout-identical — so the
// two pipelines produce byte-identical results by construction.
std::vector<std::pair<uint32_t, uint64_t>> OverlapHistogramFromStore(
    const CacheStore& store);

// Day-one cohort selection (pair enumeration + reservoir sampling) of
// ComputeOverlapEvolution, split out so the streaming sweep reuses it. The
// returned cohorts carry pair_count and the sampled pairs; mean_overlap is
// left empty for the caller's daily sweep to fill.
std::vector<OverlapCohort> SelectOverlapCohorts(
    const CacheStore& first_day_store, const OverlapEvolutionOptions& options);

}  // namespace edk

#endif  // SRC_ANALYSIS_OVERLAP_H_
