#include "src/analysis/clustering.h"

#include <algorithm>

#include "src/exec/parallel.h"
#include "src/obs/metrics.h"
#include "src/trace/cache_store.h"

namespace edk {

double ClusteringCurve::ProbabilityAt(size_t k) const {
  if (k == 0 || k >= probability.size()) {
    return 0;
  }
  return probability[k];
}

ClusteringCurve ComputeClusteringCurve(const StaticCaches& caches, size_t max_k,
                                       const std::vector<bool>* file_mask) {
  // Flat CSR store; a mask is applied once as a projection so the counting
  // loops below carry no per-file branch.
  CacheStore store = CacheStore::FromStaticCaches(caches);
  if (file_mask != nullptr) {
    store = store.Masked(*file_mask);
  }
  return ComputeClusteringCurve(store, max_k);
}

ClusteringCurve ComputeClusteringCurve(const CacheStore& store, size_t max_k) {
  obs::PhaseTimer timer("analysis.clustering.curve");
  // Pair overlap distribution, capped at max_k + 1 (the curve never reads
  // beyond it). Memory stays bounded by processing one anchor peer at a
  // time. Anchor peers are partitioned into fixed-size blocks that fan out
  // over the thread pool; each block accumulates a private dense histogram
  // and the merge is a pure integer sum, so the result is identical for
  // any thread count.
  const size_t cap = max_k + 1;
  constexpr size_t kPeersPerBlock = 256;
  const size_t peer_count = store.peer_count();
  const size_t blocks = (peer_count + kPeersPerBlock - 1) / kPeersPerBlock;
  std::vector<std::vector<uint64_t>> block_histograms(blocks);
  ParallelFor(0, blocks, [&](size_t block) {
    auto& histogram = block_histograms[block];
    histogram.assign(cap + 1, 0);
    OverlapCounter counter(peer_count);
    const uint32_t first = static_cast<uint32_t>(block * kPeersPerBlock);
    const uint32_t last =
        static_cast<uint32_t>(std::min(peer_count, (block + 1) * kPeersPerBlock));
    for (uint32_t p = first; p < last; ++p) {
      counter.ForAnchor(store, p, [&](uint32_t, uint32_t overlap) {
        ++histogram[std::min<size_t>(overlap, cap)];
      });
    }
  });

  ClusteringCurve curve;
  curve.pairs_at_least.assign(max_k + 2, 0);
  for (const auto& histogram : block_histograms) {
    // Every pair with overlap c contributes to pairs_at_least[1..c]; the
    // suffix-sum below converts "exactly c (capped)" into ">= k".
    for (size_t capped = 1; capped <= cap; ++capped) {
      curve.pairs_at_least[capped] += histogram[capped];
    }
  }
  for (size_t k = max_k; k >= 1; --k) {
    curve.pairs_at_least[k] += curve.pairs_at_least[k + 1];
  }
  curve.probability.assign(max_k + 1, 0.0);
  for (size_t k = 1; k <= max_k; ++k) {
    if (curve.pairs_at_least[k] > 0) {
      curve.probability[k] = static_cast<double>(curve.pairs_at_least[k + 1]) /
                             static_cast<double>(curve.pairs_at_least[k]);
    }
  }
  return curve;
}

std::vector<bool> MaskCategoryPopularity(const Trace& trace, FileCategory category,
                                         uint32_t min_sources, uint32_t max_sources) {
  const auto counts = trace.SourceCounts();
  std::vector<bool> mask(trace.file_count(), false);
  for (size_t f = 0; f < mask.size(); ++f) {
    mask[f] = trace.file(FileId(static_cast<uint32_t>(f))).category == category &&
              counts[f] >= min_sources && counts[f] <= max_sources;
  }
  return mask;
}

std::vector<bool> MaskExactPopularity(const StaticCaches& caches, size_t file_count,
                                      uint32_t sources) {
  const auto counts = caches.SourceCounts(file_count);
  std::vector<bool> mask(file_count, false);
  for (size_t f = 0; f < file_count; ++f) {
    mask[f] = counts[f] == sources;
  }
  return mask;
}

}  // namespace edk
