#include "src/analysis/clustering.h"

#include <algorithm>
#include <unordered_map>

#include "src/exec/parallel.h"

namespace edk {

double ClusteringCurve::ProbabilityAt(size_t k) const {
  if (k == 0 || k >= probability.size()) {
    return 0;
  }
  return probability[k];
}

ClusteringCurve ComputeClusteringCurve(const StaticCaches& caches, size_t max_k,
                                       const std::vector<bool>* file_mask) {
  // Inverted index: file -> holders (restricted to masked files).
  std::unordered_map<uint32_t, std::vector<uint32_t>> holders;
  for (uint32_t p = 0; p < caches.caches.size(); ++p) {
    for (FileId f : caches.caches[p]) {
      if (file_mask != nullptr && !(*file_mask)[f.value]) {
        continue;
      }
      holders[f.value].push_back(p);
    }
  }

  // Pair overlap distribution. overlap_histogram[c] = #pairs with exactly c
  // common (masked) files. Memory stays bounded by processing one anchor
  // peer at a time. Anchor peers are partitioned into fixed-size blocks
  // that fan out over the thread pool; each block accumulates a private
  // histogram and the merge is a pure integer sum, so the result is
  // identical for any thread count.
  std::unordered_map<uint64_t, uint64_t> overlap_histogram;
  {
    constexpr size_t kPeersPerBlock = 256;
    const size_t peer_count = caches.caches.size();
    const size_t blocks = (peer_count + kPeersPerBlock - 1) / kPeersPerBlock;
    std::vector<std::unordered_map<uint64_t, uint64_t>> block_histograms(blocks);
    ParallelFor(0, blocks, [&](size_t block) {
      auto& histogram = block_histograms[block];
      // Per-peer candidate counting. Holders lists are sorted by
      // construction (peers iterated in order), so "q > p" dedupes pairs.
      std::unordered_map<uint32_t, uint32_t> local;
      const uint32_t first = static_cast<uint32_t>(block * kPeersPerBlock);
      const uint32_t last =
          static_cast<uint32_t>(std::min(peer_count, (block + 1) * kPeersPerBlock));
      for (uint32_t p = first; p < last; ++p) {
        local.clear();
        for (FileId f : caches.caches[p]) {
          if (file_mask != nullptr && !(*file_mask)[f.value]) {
            continue;
          }
          const auto it = holders.find(f.value);
          if (it == holders.end()) {
            continue;
          }
          for (uint32_t q : it->second) {
            if (q > p) {
              ++local[q];
            }
          }
        }
        for (const auto& [q, count] : local) {
          ++histogram[count];
        }
      }
    });
    for (const auto& histogram : block_histograms) {
      for (const auto& [overlap, pairs] : histogram) {
        overlap_histogram[overlap] += pairs;
      }
    }
  }

  ClusteringCurve curve;
  curve.pairs_at_least.assign(max_k + 2, 0);
  for (const auto& [overlap, pairs] : overlap_histogram) {
    const uint64_t capped = std::min<uint64_t>(overlap, max_k + 1);
    // Every pair with overlap c contributes to pairs_at_least[1..c].
    curve.pairs_at_least[capped] += pairs;
  }
  // Suffix-sum to convert "exactly capped" buckets into ">= k" counts.
  for (size_t k = max_k; k >= 1; --k) {
    curve.pairs_at_least[k] += curve.pairs_at_least[k + 1];
  }
  curve.probability.assign(max_k + 1, 0.0);
  for (size_t k = 1; k <= max_k; ++k) {
    if (curve.pairs_at_least[k] > 0) {
      curve.probability[k] = static_cast<double>(curve.pairs_at_least[k + 1]) /
                             static_cast<double>(curve.pairs_at_least[k]);
    }
  }
  return curve;
}

std::vector<bool> MaskCategoryPopularity(const Trace& trace, FileCategory category,
                                         uint32_t min_sources, uint32_t max_sources) {
  const auto counts = trace.SourceCounts();
  std::vector<bool> mask(trace.file_count(), false);
  for (size_t f = 0; f < mask.size(); ++f) {
    mask[f] = trace.file(FileId(static_cast<uint32_t>(f))).category == category &&
              counts[f] >= min_sources && counts[f] <= max_sources;
  }
  return mask;
}

std::vector<bool> MaskExactPopularity(const StaticCaches& caches, size_t file_count,
                                      uint32_t sources) {
  const auto counts = caches.SourceCounts(file_count);
  std::vector<bool> mask(file_count, false);
  for (size_t f = 0; f < file_count; ++f) {
    mask[f] = counts[f] == sources;
  }
  return mask;
}

}  // namespace edk
