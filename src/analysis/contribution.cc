#include "src/analysis/contribution.h"

#include <algorithm>
#include <functional>

namespace edk {

double ContributionStats::FreeRiderFraction() const {
  if (clients == 0) {
    return 0;
  }
  return static_cast<double>(free_riders) / static_cast<double>(clients);
}

double ContributionStats::TopSharerShare(double fraction) const {
  std::vector<uint64_t> sharer_files;
  uint64_t total = 0;
  for (uint64_t files : files_per_client) {
    if (files > 0) {
      sharer_files.push_back(files);
      total += files;
    }
  }
  if (sharer_files.empty() || total == 0) {
    return 0;
  }
  std::sort(sharer_files.begin(), sharer_files.end(), std::greater<>());
  const size_t top = std::max<size_t>(
      1, static_cast<size_t>(fraction * static_cast<double>(sharer_files.size())));
  uint64_t top_sum = 0;
  for (size_t i = 0; i < top && i < sharer_files.size(); ++i) {
    top_sum += sharer_files[i];
  }
  return static_cast<double>(top_sum) / static_cast<double>(total);
}

ContributionStats ComputeContribution(const Trace& trace) {
  ContributionStats stats;
  stats.clients = trace.peer_count();
  stats.files_per_client.resize(trace.peer_count(), 0);
  stats.bytes_per_client.resize(trace.peer_count(), 0);
  for (size_t p = 0; p < trace.peer_count(); ++p) {
    const PeerId id(static_cast<uint32_t>(p));
    const auto cache = trace.UnionCache(id);
    stats.files_per_client[p] = cache.size();
    uint64_t bytes = 0;
    for (FileId f : cache) {
      bytes += trace.file(f).size_bytes;
    }
    stats.bytes_per_client[p] = bytes;
    if (cache.empty()) {
      ++stats.free_riders;
    }
  }
  return stats;
}

namespace {

std::vector<double> ToSamples(const std::vector<uint64_t>& values,
                              const std::vector<uint64_t>& files,
                              bool exclude_free_riders) {
  std::vector<double> out;
  out.reserve(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    if (exclude_free_riders && files[i] == 0) {
      continue;
    }
    out.push_back(static_cast<double>(values[i]));
  }
  return out;
}

}  // namespace

std::vector<double> FilesCdfSamples(const ContributionStats& stats,
                                    bool exclude_free_riders) {
  return ToSamples(stats.files_per_client, stats.files_per_client, exclude_free_riders);
}

std::vector<double> BytesCdfSamples(const ContributionStats& stats,
                                    bool exclude_free_riders) {
  return ToSamples(stats.bytes_per_client, stats.files_per_client, exclude_free_riders);
}

}  // namespace edk
