#include "src/analysis/streaming.h"

#include <algorithm>
#include <functional>

#include "src/exec/parallel.h"
#include "src/obs/metrics.h"
#include "src/trace/stream/parallel_scan.h"

namespace edk {

namespace {

// Per-file source counts on one day, from the segment decode (no CSR view
// needed). Days absent from the reader yield all zeros, matching what the
// in-RAM twin sees on a day without snapshots. Blocked days with more than
// one block count block-parallel into per-worker arrays summed element-wise
// afterwards — integer addition is commutative, so the result is identical
// to the serial decode for any thread count.
std::vector<uint32_t> StreamingSourcesOnDay(const stream::TraceReader& reader,
                                            int day) {
  std::vector<uint32_t> counts(reader.file_count(), 0);
  const stream::TraceReader::DayInfo* info = reader.FindDay(day);
  if (info == nullptr) {
    return counts;
  }
  const size_t blocks = stream::TraceReader::BlockCount(*info);
  if (blocks < 2 || DefaultThreads() <= 1) {
    stream::DecodeArena arena;
    reader.ForEachSnapshot(
        *info, arena, [&](uint32_t, const uint32_t* files, size_t count) {
          for (size_t i = 0; i < count; ++i) {
            ++counts[files[i]];
          }
        });
    return counts;
  }
  struct Worker {
    stream::DecodeArena arena;
    std::vector<uint32_t> counts;
  };
  stream::WorkerPool<Worker> workers;
  ParallelFor(0, blocks, [&](size_t b) {
    stream::WorkerPool<Worker>::Lease worker(workers);
    if (worker->counts.size() != counts.size()) {
      worker->counts.assign(counts.size(), 0);
    }
    reader.ForEachSnapshotInBlock(
        *info, b, worker->arena,
        [&](uint32_t, const uint32_t* files, size_t count) {
          for (size_t i = 0; i < count; ++i) {
            ++worker->counts[files[i]];
          }
        });
  });
  workers.ForEach([&](Worker& worker) {
    for (size_t f = 0; f < worker.counts.size(); ++f) {
      counts[f] += worker.counts[f];
    }
  });
  return counts;
}

}  // namespace

std::vector<DailyActivity> StreamingDailyActivity(
    const stream::TraceReader& reader) {
  obs::PhaseTimer timer("analysis.streaming.daily_activity");
  std::vector<DailyActivity> out;
  if (reader.last_day() < reader.first_day()) {
    return out;
  }
  const size_t days =
      static_cast<size_t>(reader.last_day() - reader.first_day() + 1);
  out.resize(days);
  for (size_t d = 0; d < days; ++d) {
    out[d].day = reader.first_day() + static_cast<int>(d);
  }
  // Day segments arrive in ascending day order, so the first sighting of a
  // file IS its first-seen day — one bitmap replaces the per-file min-day
  // array of the in-RAM twin. Days stay sequential (the bitmap carries
  // cross-day state); within a day, blocks decode in parallel into
  // per-block partials. A day's new_files is the number of DISTINCT
  // never-seen-before files it contains — a set size, independent of
  // snapshot order — so merging block candidates through the bitmap in any
  // order reproduces the serial sweep exactly.
  std::vector<uint8_t> seen(reader.file_count(), 0);
  stream::DecodeArena arena;
  struct Partial {
    uint64_t clients = 0;
    uint64_t non_empty = 0;
    uint64_t files_seen = 0;
    std::vector<uint32_t> candidates;  // seen[f] == 0 at decode time.
  };
  std::vector<Partial> partials;
  stream::ArenaPool arenas;
  for (const stream::TraceReader::DayInfo& info : reader.days()) {
    DailyActivity& day =
        out[static_cast<size_t>(info.day - reader.first_day())];
    const size_t blocks = stream::TraceReader::BlockCount(info);
    if (blocks < 2 || DefaultThreads() <= 1) {
      reader.ForEachSnapshot(
          info, arena, [&](uint32_t, const uint32_t* files, size_t count) {
            ++day.clients_scanned;
            if (count > 0) {
              ++day.non_empty_caches;
              day.files_seen += count;
              for (size_t i = 0; i < count; ++i) {
                if (seen[files[i]] == 0) {
                  seen[files[i]] = 1;
                  ++day.new_files;
                }
              }
            }
          });
      continue;
    }
    partials.assign(blocks, Partial{});
    // The bitmap is read-only for the duration of the day's scan; workers
    // record candidate ids instead of mutating it.
    ParallelFor(0, blocks, [&](size_t b) {
      stream::ArenaPool::Lease lease(arenas);
      Partial& part = partials[b];
      reader.ForEachSnapshotInBlock(
          info, b, *lease, [&](uint32_t, const uint32_t* files, size_t count) {
            ++part.clients;
            if (count > 0) {
              ++part.non_empty;
              part.files_seen += count;
              for (size_t i = 0; i < count; ++i) {
                if (seen[files[i]] == 0) {
                  part.candidates.push_back(files[i]);
                }
              }
            }
          });
    });
    for (Partial& part : partials) {
      day.clients_scanned += part.clients;
      day.non_empty_caches += part.non_empty;
      day.files_seen += part.files_seen;
      for (const uint32_t f : part.candidates) {
        if (seen[f] == 0) {
          seen[f] = 1;
          ++day.new_files;
        }
      }
    }
  }
  uint64_t cumulative = 0;
  for (DailyActivity& day : out) {
    cumulative += day.new_files;
    day.total_files = cumulative;
  }
  return out;
}

std::vector<uint32_t> StreamingRankedSourcesOnDay(
    const stream::TraceReader& reader, int day) {
  const auto counts = StreamingSourcesOnDay(reader, day);
  std::vector<uint32_t> ranked;
  ranked.reserve(counts.size());
  for (uint32_t c : counts) {
    if (c > 0) {
      ranked.push_back(c);
    }
  }
  std::sort(ranked.begin(), ranked.end(), std::greater<>());
  return ranked;
}

std::vector<double> StreamingFileSpreadOverTime(
    const stream::TraceReader& reader, FileId file) {
  std::vector<double> out;
  if (reader.last_day() < reader.first_day()) {
    return out;
  }
  out.resize(static_cast<size_t>(reader.last_day() - reader.first_day() + 1),
             0.0);
  std::vector<uint32_t> scanned(out.size(), 0);
  std::vector<uint32_t> holders(out.size(), 0);
  // One flat parallel scan over every block of every day; each task counts
  // into its own slot and slots merge into per-day totals afterwards
  // (commutative integer sums — identical to serial for any thread count).
  const std::vector<stream::ScanTask> tasks = stream::MakeScanTasks(reader);
  struct Partial {
    uint32_t scanned = 0;
    uint32_t holders = 0;
  };
  std::vector<Partial> partials(tasks.size());
  stream::ParallelScanSnapshots(
      reader, tasks,
      [&](size_t t, uint32_t, const uint32_t* files, size_t count) {
        ++partials[t].scanned;
        if (std::binary_search(files, files + count, file.value)) {
          ++partials[t].holders;
        }
      });
  for (size_t t = 0; t < tasks.size(); ++t) {
    const size_t d =
        static_cast<size_t>(tasks[t].day->day - reader.first_day());
    scanned[d] += partials[t].scanned;
    holders[d] += partials[t].holders;
  }
  for (size_t d = 0; d < out.size(); ++d) {
    if (scanned[d] > 0) {
      out[d] = static_cast<double>(holders[d]) / static_cast<double>(scanned[d]);
    }
  }
  return out;
}

std::vector<std::vector<uint32_t>> StreamingFileRanksOverTime(
    const stream::TraceReader& reader, const std::vector<FileId>& files) {
  std::vector<std::vector<uint32_t>> out(files.size());
  if (reader.last_day() < reader.first_day()) {
    return out;
  }
  const size_t days =
      static_cast<size_t>(reader.last_day() - reader.first_day() + 1);
  for (auto& series : out) {
    series.assign(days, 0);
  }
  // Same fan-out shape as the in-RAM twin: each day decodes its own segment
  // and writes only its own (file, day) slots. (Blocked days additionally
  // count block-parallel inside StreamingSourcesOnDay; nested ParallelFor
  // is deadlock-free by the caller-participates contract.)
  ParallelFor(0, days, [&](size_t d) {
    const int day = reader.first_day() + static_cast<int>(d);
    const auto counts = StreamingSourcesOnDay(reader, day);
    for (size_t i = 0; i < files.size(); ++i) {
      const uint32_t own = counts[files[i].value];
      if (own == 0) {
        continue;
      }
      uint32_t rank = 1;
      for (size_t f = 0; f < counts.size(); ++f) {
        if (counts[f] > own || (counts[f] == own && f < files[i].value)) {
          ++rank;
        }
      }
      out[i][d] = rank;
    }
  });
  return out;
}

std::vector<std::pair<uint32_t, uint64_t>> StreamingOverlapHistogramOnDay(
    const stream::TraceReader& reader, int day) {
  obs::PhaseTimer timer("analysis.streaming.overlap_histogram_day");
  const stream::TraceReader::DayInfo* info = reader.FindDay(day);
  if (info == nullptr) {
    return {};  // The in-RAM twin yields no pairs on an unobserved day.
  }
  // ReadDay fills blocked days block-parallel; the view is identical to the
  // serial fill by construction, so the histogram is too.
  const auto view = reader.ReadDay(*info);
  if (!view.has_value()) {
    return {};
  }
  return OverlapHistogramFromStore(view->store);
}

std::vector<OverlapCohort> StreamingOverlapEvolution(
    const stream::TraceReader& reader, const OverlapEvolutionOptions& options) {
  obs::PhaseTimer timer("analysis.streaming.overlap_evolution");
  // Cohort selection on the first day's view: same store layout, same
  // enumeration order, same rng draws as the in-RAM twin.
  std::vector<OverlapCohort> cohorts;
  if (const stream::TraceReader::DayInfo* info = reader.FindDay(reader.first_day());
      info != nullptr) {
    const auto view = reader.ReadDay(*info);
    cohorts = SelectOverlapCohorts(view.has_value() ? view->store : CacheStore(),
                                   options);
  } else {
    cohorts = SelectOverlapCohorts(CacheStore(), options);
  }

  const size_t days = reader.last_day() < reader.first_day()
                          ? 0
                          : static_cast<size_t>(reader.last_day() -
                                                reader.first_day() + 1);
  for (OverlapCohort& cohort : cohorts) {
    cohort.mean_overlap.assign(days, 0.0);
  }
  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> by_anchor(
      cohorts.size());
  for (size_t c = 0; c < cohorts.size(); ++c) {
    by_anchor[c] = cohorts[c].pairs;
    std::sort(by_anchor[c].begin(), by_anchor[c].end());
  }
  // Parallel day sweep; every addend is an integer below 2^32 summed fewer
  // than 2^21 times, so the double accumulators are exact and the schedule
  // cannot perturb results (same argument as the in-RAM twin). Each task
  // decodes one day segment: peak memory is one day view per worker.
  ParallelFor(0, days, [&](size_t d) {
    const int day = reader.first_day() + static_cast<int>(d);
    const stream::TraceReader::DayInfo* info = reader.FindDay(day);
    if (info == nullptr) {
      return;  // No snapshots: every cohort mean stays 0.0, as in RAM.
    }
    const auto view = reader.ReadDay(*info);
    if (!view.has_value()) {
      return;
    }
    // Snapshot presence, not row emptiness: a peer observed with an empty
    // cache still counts into its cohort's denominator.
    std::vector<uint8_t> observed(reader.peer_count(), 0);
    for (const uint32_t p : view->peers) {
      observed[p] = 1;
    }
    std::vector<uint32_t> file_stamp(reader.file_count(), 0);
    uint32_t stamp = 0;
    for (size_t c = 0; c < cohorts.size(); ++c) {
      const auto& pairs = by_anchor[c];
      if (pairs.empty()) {
        continue;
      }
      double sum = 0;
      uint64_t counted = 0;
      for (size_t i = 0; i < pairs.size();) {
        const uint32_t p = pairs[i].first;
        const bool p_observed = observed[p] != 0;
        if (p_observed) {
          ++stamp;
          for (const uint32_t f : view->store.PeerFiles(p)) {
            file_stamp[f] = stamp;
          }
        }
        for (; i < pairs.size() && pairs[i].first == p; ++i) {
          if (!p_observed || observed[pairs[i].second] == 0) {
            continue;
          }
          uint64_t overlap = 0;
          for (const uint32_t f : view->store.PeerFiles(pairs[i].second)) {
            overlap += file_stamp[f] == stamp ? 1 : 0;
          }
          sum += static_cast<double>(overlap);
          ++counted;
        }
      }
      cohorts[c].mean_overlap[d] =
          counted == 0 ? 0.0 : sum / static_cast<double>(counted);
    }
  });
  return cohorts;
}

ClusteringCurve StreamingClusteringCurveOnDay(
    const stream::TraceReader& reader, int day, size_t max_k,
    const std::vector<bool>* file_mask) {
  const stream::TraceReader::DayInfo* info = reader.FindDay(day);
  if (info == nullptr) {
    return ComputeClusteringCurve(CacheStore(), max_k);
  }
  const auto view = reader.ReadDay(*info);
  if (!view.has_value()) {
    return ComputeClusteringCurve(CacheStore(), max_k);
  }
  if (file_mask != nullptr) {
    return ComputeClusteringCurve(view->store.Masked(*file_mask), max_k);
  }
  return ComputeClusteringCurve(view->store, max_k);
}

}  // namespace edk
