// File popularity and daily activity analyses (paper §2.3 and §3):
// Fig. 1 (clients & files per day), Fig. 2 (new/total files discovered),
// Fig. 3 (extrapolated files & non-empty caches), Fig. 5 (replication vs
// rank) and Fig. 6 (size CDF by popularity).

#ifndef SRC_ANALYSIS_POPULARITY_H_
#define SRC_ANALYSIS_POPULARITY_H_

#include <cstdint>
#include <vector>

#include "src/common/stats.h"
#include "src/trace/trace.h"

namespace edk {

struct DailyActivity {
  int day = 0;
  uint32_t clients_scanned = 0;    // Peers with a snapshot that day.
  uint32_t non_empty_caches = 0;
  uint64_t files_seen = 0;         // Sum of snapshot cache sizes.
  uint32_t new_files = 0;          // Files first observed that day.
  uint64_t total_files = 0;        // Cumulative distinct files so far.
};

// One row per day of the trace (Figs. 1-3).
std::vector<DailyActivity> ComputeDailyActivity(const Trace& trace);

// Number of sources per file for files present on `day`, sorted descending
// (rank order) — one Fig. 5 curve.
std::vector<uint32_t> RankedSourcesOnDay(const Trace& trace, int day);

// Ranked distinct-source counts over the whole trace (union caches).
std::vector<uint32_t> RankedSourcesOverall(const Trace& trace);

// Zipf check: fits log(sources) vs log(rank) over the tail (ranks beyond
// the initial flat head).
LinearFit FitZipfTail(const std::vector<uint32_t>& ranked_sources,
                      size_t skip_head = 10);

// File sizes (bytes) of files with overall popularity >= threshold, for the
// Fig. 6 CDFs.
std::vector<double> SizesWithPopularityAtLeast(const Trace& trace,
                                               uint32_t threshold);

// Average popularity per file: distinct sources / days seen (paper §4.1).
std::vector<double> AveragePopularity(const Trace& trace);

}  // namespace edk

#endif  // SRC_ANALYSIS_POPULARITY_H_
