// Peer contribution analysis (paper §3, Fig. 7): files and bytes shared per
// client, with and without free-riders, plus sharing-skew summaries.

#ifndef SRC_ANALYSIS_CONTRIBUTION_H_
#define SRC_ANALYSIS_CONTRIBUTION_H_

#include <cstdint>
#include <vector>

#include "src/trace/trace.h"

namespace edk {

struct ContributionStats {
  // Indexed by peer; files/bytes from the union cache over the trace.
  std::vector<uint64_t> files_per_client;
  std::vector<uint64_t> bytes_per_client;

  size_t free_riders = 0;
  size_t clients = 0;

  double FreeRiderFraction() const;
  // Fraction of all shared file replicas held by the top `fraction` of
  // sharers (non-free-riders) by file count. The paper reports the top 15%
  // of peers offering ~75% of files.
  double TopSharerShare(double fraction) const;
};

ContributionStats ComputeContribution(const Trace& trace);

// CDF sample vectors for Fig. 7 (files axis and bytes axis), optionally
// excluding free riders.
std::vector<double> FilesCdfSamples(const ContributionStats& stats,
                                    bool exclude_free_riders);
std::vector<double> BytesCdfSamples(const ContributionStats& stats,
                                    bool exclude_free_riders);

}  // namespace edk

#endif  // SRC_ANALYSIS_CONTRIBUTION_H_
