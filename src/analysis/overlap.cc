#include "src/analysis/overlap.h"

#include <algorithm>
#include <unordered_map>

#include "src/exec/parallel.h"
#include "src/obs/metrics.h"
#include "src/trace/cache_store.h"

namespace edk {

namespace {

// Enumerates all peer pairs with >= 1 common file in `store` and calls
// visit(p, q, overlap) for each (p < q), serially. Counting runs on the
// dense CSR counter; the per-anchor visit order, however, is pinned to the
// historical implementation, which kept one unordered_map across anchors
// (cleared per anchor) and iterated it. Downstream reservoir sampling
// consumes rng draws in visit order, so changing the order would silently
// change which pairs the sampler keeps. The touched-list's first-encounter
// order equals the legacy map's key-insertion order, so replaying it into
// the same kind of reused map reproduces the legacy iteration order — and
// with it bit-identical sampled cohorts — at one hash insert per pair
// instead of one hash lookup per shared-file incidence.
template <typename Visitor>
void ForEachOverlappingPair(const CacheStore& store, Visitor visit) {
  OverlapCounter counter(store.peer_count());
  const size_t peers = store.peer_count();
  std::unordered_map<uint32_t, uint32_t> replay;
  for (uint32_t p = 0; p < peers; ++p) {
    replay.clear();
    counter.ForAnchor(store, p,
                      [&](uint32_t q, uint32_t overlap) { replay.emplace(q, overlap); });
    for (const auto& [q, overlap] : replay) {
      visit(p, q, overlap);
    }
  }
}

}  // namespace

std::vector<std::pair<uint32_t, uint64_t>> OverlapHistogramOnDay(const Trace& trace,
                                                                 int day) {
  obs::PhaseTimer timer("analysis.overlap.histogram_day");
  return OverlapHistogramFromStore(CacheStore::FromTraceDay(trace, day));
}

std::vector<std::pair<uint32_t, uint64_t>> OverlapHistogramFromStore(
    const CacheStore& store) {
  // No pairwise overlap can exceed the largest single cache, so per-block
  // histograms are dense arrays; the merge is a pure integer sum and the
  // result is identical for any thread count.
  const size_t bound = store.MaxCacheSize() + 1;
  constexpr size_t kPeersPerBlock = 256;
  const size_t peers = store.peer_count();
  const size_t blocks = (peers + kPeersPerBlock - 1) / kPeersPerBlock;
  std::vector<std::vector<uint64_t>> block_histograms(blocks);
  ParallelFor(0, blocks, [&](size_t block) {
    auto& histogram = block_histograms[block];
    histogram.assign(bound, 0);
    OverlapCounter counter(peers);
    const uint32_t first = static_cast<uint32_t>(block * kPeersPerBlock);
    const uint32_t last =
        static_cast<uint32_t>(std::min<size_t>(peers, (block + 1) * kPeersPerBlock));
    for (uint32_t p = first; p < last; ++p) {
      counter.ForAnchor(store, p,
                        [&](uint32_t, uint32_t overlap) { ++histogram[overlap]; });
    }
  });

  std::vector<uint64_t> merged(bound, 0);
  for (const auto& histogram : block_histograms) {
    for (size_t overlap = 0; overlap < bound; ++overlap) {
      merged[overlap] += histogram[overlap];
    }
  }
  std::vector<std::pair<uint32_t, uint64_t>> result;
  for (size_t overlap = 1; overlap < bound; ++overlap) {
    if (merged[overlap] > 0) {
      result.emplace_back(static_cast<uint32_t>(overlap), merged[overlap]);
    }
  }
  return result;
}

std::vector<OverlapCohort> SelectOverlapCohorts(
    const CacheStore& first_day_store, const OverlapEvolutionOptions& options) {
  obs::PhaseTimer enumerate_timer("analysis.overlap.evolution.enumerate");
  std::vector<OverlapCohort> cohorts;
  cohorts.reserve(options.cohort_overlaps.size());
  std::unordered_map<uint32_t, size_t> cohort_index;
  for (uint32_t value : options.cohort_overlaps) {
    cohort_index[value] = cohorts.size();
    OverlapCohort cohort;
    cohort.initial_overlap = value;
    cohorts.push_back(std::move(cohort));
  }

  Rng rng(options.seed);
  // Serial enumeration: the reservoir sampler below consumes rng draws, so
  // the pair visit order must not depend on scheduling.
  ForEachOverlappingPair(
      first_day_store, [&](uint32_t p, uint32_t q, uint32_t overlap) {
        const auto it = cohort_index.find(overlap);
        if (it == cohort_index.end()) {
          return;
        }
        OverlapCohort& cohort = cohorts[it->second];
        ++cohort.pair_count;
        if (cohort.pairs.size() < options.max_pairs_per_cohort) {
          cohort.pairs.emplace_back(p, q);
        } else {
          // Reservoir sampling keeps the subsample uniform.
          const uint64_t slot = rng.NextBelow(cohort.pair_count);
          if (slot < options.max_pairs_per_cohort) {
            cohort.pairs[slot] = {p, q};
          }
        }
      });
  return cohorts;
}

std::vector<OverlapCohort> ComputeOverlapEvolution(const Trace& trace,
                                                   const OverlapEvolutionOptions& options) {
  obs::PhaseTimer timer("analysis.overlap.evolution");
  const int first_day = trace.first_day();
  std::vector<OverlapCohort> cohorts =
      SelectOverlapCohorts(CacheStore::FromTraceDay(trace, first_day), options);

  const size_t days = static_cast<size_t>(trace.last_day() - trace.first_day() + 1);
  for (auto& cohort : cohorts) {
    cohort.mean_overlap.assign(days, 0.0);
  }
  // The sampled pairs are fixed from here on; the daily sweep only needs
  // their per-day overlap SUM per cohort, and every addend is an integer
  // below 2^32 summed fewer than 2^21 times, so the double accumulator is
  // exact and the pair visit order is free to change. Grouping each
  // cohort's pairs by anchor lets one stamped pass over the anchor's cache
  // serve all its partners: overlap becomes a linear scan of the partner's
  // cache against the stamp array instead of a two-pointer merge, and the
  // per-day snapshot lookup is memoised per peer instead of repeated per
  // pair.
  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> by_anchor(cohorts.size());
  for (size_t c = 0; c < cohorts.size(); ++c) {
    by_anchor[c] = cohorts[c].pairs;
    std::sort(by_anchor[c].begin(), by_anchor[c].end());
  }
  // Days are independent: each task only reads the trace and writes the
  // per-day slot of every cohort, so results match the serial loop exactly.
  ParallelFor(0, days, [&](size_t d) {
    const int day = first_day + static_cast<int>(d);
    std::vector<const CacheSnapshot*> snapshot(trace.peer_count(), nullptr);
    std::vector<uint8_t> snapshot_known(trace.peer_count(), 0);
    const auto snapshot_of = [&](uint32_t peer) {
      if (snapshot_known[peer] == 0) {
        snapshot_known[peer] = 1;
        snapshot[peer] = trace.timeline(PeerId(peer)).SnapshotOn(day);
      }
      return snapshot[peer];
    };
    std::vector<uint32_t> file_stamp(trace.file_count(), 0);
    uint32_t stamp = 0;
    for (size_t c = 0; c < cohorts.size(); ++c) {
      const auto& pairs = by_anchor[c];
      if (pairs.empty()) {
        continue;
      }
      double sum = 0;
      uint64_t counted = 0;
      for (size_t i = 0; i < pairs.size();) {
        const uint32_t p = pairs[i].first;
        const CacheSnapshot* a = snapshot_of(p);
        if (a != nullptr) {
          ++stamp;
          for (const FileId f : a->files) {
            file_stamp[f.value] = stamp;
          }
        }
        for (; i < pairs.size() && pairs[i].first == p; ++i) {
          if (a == nullptr) {
            continue;
          }
          const CacheSnapshot* b = snapshot_of(pairs[i].second);
          if (b == nullptr) {
            continue;
          }
          uint64_t overlap = 0;
          for (const FileId f : b->files) {
            overlap += file_stamp[f.value] == stamp ? 1 : 0;
          }
          sum += static_cast<double>(overlap);
          ++counted;
        }
      }
      cohorts[c].mean_overlap[d] = counted == 0 ? 0.0 : sum / static_cast<double>(counted);
    }
  });
  return cohorts;
}

}  // namespace edk
