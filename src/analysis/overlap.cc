#include "src/analysis/overlap.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "src/exec/parallel.h"

namespace edk {

namespace {

// Enumerates all peer pairs with >= 1 common file on `day` and calls
// visit(p, q, overlap) for each (p < q).
template <typename Visitor>
void ForEachOverlappingPair(const Trace& trace, int day, Visitor visit) {
  const StaticCaches caches = BuildDayCaches(trace, day);
  std::unordered_map<uint32_t, std::vector<uint32_t>> holders;
  for (uint32_t p = 0; p < caches.caches.size(); ++p) {
    for (FileId f : caches.caches[p]) {
      holders[f.value].push_back(p);
    }
  }
  std::unordered_map<uint32_t, uint32_t> local;
  for (uint32_t p = 0; p < caches.caches.size(); ++p) {
    local.clear();
    for (FileId f : caches.caches[p]) {
      for (uint32_t q : holders[f.value]) {
        if (q > p) {
          ++local[q];
        }
      }
    }
    for (const auto& [q, overlap] : local) {
      visit(p, q, overlap);
    }
  }
}

}  // namespace

std::vector<std::pair<uint32_t, uint64_t>> OverlapHistogramOnDay(const Trace& trace,
                                                                 int day) {
  std::map<uint32_t, uint64_t> histogram;
  ForEachOverlappingPair(trace, day, [&histogram](uint32_t, uint32_t, uint32_t overlap) {
    ++histogram[overlap];
  });
  return {histogram.begin(), histogram.end()};
}

std::vector<OverlapCohort> ComputeOverlapEvolution(const Trace& trace,
                                                   const OverlapEvolutionOptions& options) {
  std::vector<OverlapCohort> cohorts;
  cohorts.reserve(options.cohort_overlaps.size());
  std::unordered_map<uint32_t, size_t> cohort_index;
  for (uint32_t value : options.cohort_overlaps) {
    cohort_index[value] = cohorts.size();
    OverlapCohort cohort;
    cohort.initial_overlap = value;
    cohorts.push_back(std::move(cohort));
  }

  const int first_day = trace.first_day();
  Rng rng(options.seed);
  ForEachOverlappingPair(
      trace, first_day,
      [&](uint32_t p, uint32_t q, uint32_t overlap) {
        const auto it = cohort_index.find(overlap);
        if (it == cohort_index.end()) {
          return;
        }
        OverlapCohort& cohort = cohorts[it->second];
        ++cohort.pair_count;
        if (cohort.pairs.size() < options.max_pairs_per_cohort) {
          cohort.pairs.emplace_back(p, q);
        } else {
          // Reservoir sampling keeps the subsample uniform.
          const uint64_t slot = rng.NextBelow(cohort.pair_count);
          if (slot < options.max_pairs_per_cohort) {
            cohort.pairs[slot] = {p, q};
          }
        }
      });

  const size_t days = static_cast<size_t>(trace.last_day() - trace.first_day() + 1);
  for (auto& cohort : cohorts) {
    cohort.mean_overlap.assign(days, 0.0);
  }
  // Days are independent: each task only reads the trace and writes the
  // per-day slot of every cohort, so results match the serial loop exactly.
  ParallelFor(0, days, [&](size_t d) {
    const int day = first_day + static_cast<int>(d);
    for (auto& cohort : cohorts) {
      if (cohort.pairs.empty()) {
        continue;
      }
      double sum = 0;
      uint64_t counted = 0;
      for (const auto& [p, q] : cohort.pairs) {
        const CacheSnapshot* a = trace.timeline(PeerId(p)).SnapshotOn(day);
        const CacheSnapshot* b = trace.timeline(PeerId(q)).SnapshotOn(day);
        if (a == nullptr || b == nullptr) {
          continue;
        }
        sum += static_cast<double>(OverlapSize(a->files, b->files));
        ++counted;
      }
      cohort.mean_overlap[d] = counted == 0 ? 0.0 : sum / static_cast<double>(counted);
    }
  });
  return cohorts;
}

}  // namespace edk
