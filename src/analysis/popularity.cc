#include "src/analysis/popularity.h"

#include <algorithm>
#include <functional>
#include <unordered_map>

#include "src/exec/parallel.h"

namespace edk {

std::vector<DailyActivity> ComputeDailyActivity(const Trace& trace) {
  std::vector<DailyActivity> out;
  if (trace.last_day() < trace.first_day()) {
    return out;
  }
  const size_t days = static_cast<size_t>(trace.last_day() - trace.first_day() + 1);
  out.resize(days);
  for (size_t d = 0; d < days; ++d) {
    out[d].day = trace.first_day() + static_cast<int>(d);
  }
  // first_seen_day per file; kInvalid marks never-seen.
  std::vector<int> first_seen(trace.file_count(), -1);
  for (size_t p = 0; p < trace.peer_count(); ++p) {
    for (const auto& snapshot : trace.timeline(PeerId(static_cast<uint32_t>(p))).snapshots) {
      auto& day = out[static_cast<size_t>(snapshot.day - trace.first_day())];
      ++day.clients_scanned;
      if (!snapshot.files.empty()) {
        ++day.non_empty_caches;
        day.files_seen += snapshot.files.size();
        for (FileId f : snapshot.files) {
          if (first_seen[f.value] == -1 || snapshot.day < first_seen[f.value]) {
            first_seen[f.value] = snapshot.day;
          }
        }
      }
    }
  }
  for (int day : first_seen) {
    if (day >= 0) {
      ++out[static_cast<size_t>(day - trace.first_day())].new_files;
    }
  }
  uint64_t cumulative = 0;
  for (auto& day : out) {
    cumulative += day.new_files;
    day.total_files = cumulative;
  }
  return out;
}

std::vector<uint32_t> RankedSourcesOnDay(const Trace& trace, int day) {
  std::vector<uint32_t> counts(trace.file_count(), 0);
  for (size_t p = 0; p < trace.peer_count(); ++p) {
    const CacheSnapshot* snapshot =
        trace.timeline(PeerId(static_cast<uint32_t>(p))).SnapshotOn(day);
    if (snapshot == nullptr) {
      continue;
    }
    for (FileId f : snapshot->files) {
      ++counts[f.value];
    }
  }
  std::vector<uint32_t> ranked;
  ranked.reserve(counts.size());
  for (uint32_t c : counts) {
    if (c > 0) {
      ranked.push_back(c);
    }
  }
  std::sort(ranked.begin(), ranked.end(), std::greater<>());
  return ranked;
}

std::vector<uint32_t> RankedSourcesOverall(const Trace& trace) {
  auto counts = trace.SourceCounts();
  std::vector<uint32_t> ranked;
  ranked.reserve(counts.size());
  for (uint32_t c : counts) {
    if (c > 0) {
      ranked.push_back(c);
    }
  }
  std::sort(ranked.begin(), ranked.end(), std::greater<>());
  return ranked;
}

LinearFit FitZipfTail(const std::vector<uint32_t>& ranked_sources, size_t skip_head) {
  std::vector<double> ranks;
  std::vector<double> sources;
  for (size_t i = skip_head; i < ranked_sources.size(); ++i) {
    ranks.push_back(static_cast<double>(i + 1));
    sources.push_back(static_cast<double>(ranked_sources[i]));
  }
  return FitLogLog(ranks, sources);
}

std::vector<double> SizesWithPopularityAtLeast(const Trace& trace, uint32_t threshold) {
  const auto counts = trace.SourceCounts();
  std::vector<double> sizes;
  for (size_t f = 0; f < counts.size(); ++f) {
    if (counts[f] >= threshold) {
      sizes.push_back(static_cast<double>(trace.file(FileId(static_cast<uint32_t>(f))).size_bytes));
    }
  }
  return sizes;
}

std::vector<double> AveragePopularity(const Trace& trace) {
  std::vector<uint32_t> days_seen(trace.file_count(), 0);
  // Distinct sources via union caches.
  std::vector<uint32_t> sources(trace.file_count(), 0);
  for (size_t p = 0; p < trace.peer_count(); ++p) {
    for (FileId f : trace.UnionCache(PeerId(static_cast<uint32_t>(p)))) {
      ++sources[f.value];
    }
  }
  // Day-major sweep so each (file, day) is counted exactly once. Days fan
  // out in parallel, each producing a private seen-bitmap; the merge is a
  // plain integer sum, so the result is independent of task ordering.
  const size_t days = trace.last_day() < trace.first_day()
                          ? 0
                          : static_cast<size_t>(trace.last_day() - trace.first_day() + 1);
  std::vector<std::vector<uint8_t>> seen_by_day(days);
  ParallelFor(0, days, [&](size_t d) {
    const int day = trace.first_day() + static_cast<int>(d);
    auto& seen = seen_by_day[d];
    seen.assign(trace.file_count(), 0);
    for (size_t p = 0; p < trace.peer_count(); ++p) {
      const CacheSnapshot* snapshot =
          trace.timeline(PeerId(static_cast<uint32_t>(p))).SnapshotOn(day);
      if (snapshot == nullptr) {
        continue;
      }
      for (FileId f : snapshot->files) {
        seen[f.value] = 1;
      }
    }
  });
  for (const auto& seen : seen_by_day) {
    for (size_t f = 0; f < seen.size(); ++f) {
      days_seen[f] += seen[f];
    }
  }
  std::vector<double> out(trace.file_count(), 0);
  for (size_t f = 0; f < out.size(); ++f) {
    if (days_seen[f] > 0) {
      out[f] = static_cast<double>(sources[f]) / static_cast<double>(days_seen[f]);
    }
  }
  return out;
}

}  // namespace edk
