// General trace characterisation (paper Table 1).

#ifndef SRC_ANALYSIS_REPORT_H_
#define SRC_ANALYSIS_REPORT_H_

#include <cstdint>
#include <string>

#include "src/trace/trace.h"

namespace edk {

struct TraceCharacteristics {
  int duration_days = 0;
  size_t clients = 0;
  size_t free_riders = 0;
  size_t snapshots = 0;          // "Successful snapshots".
  size_t distinct_files = 0;     // Files observed at least once.
  uint64_t distinct_bytes = 0;   // Space used by distinct observed files.

  double FreeRiderFraction() const {
    return clients == 0 ? 0 : static_cast<double>(free_riders) / static_cast<double>(clients);
  }
};

TraceCharacteristics Characterize(const Trace& trace);

// Renders the Table-1-style report for one trace view.
std::string RenderCharacteristics(const std::string& title,
                                  const TraceCharacteristics& characteristics);

}  // namespace edk

#endif  // SRC_ANALYSIS_REPORT_H_
