// Temporal popularity analyses (paper §3): Fig. 8 (spread of the most
// popular files over time) and Figs. 9-10 (rank evolution of a day's top
// files).

#ifndef SRC_ANALYSIS_SPREAD_H_
#define SRC_ANALYSIS_SPREAD_H_

#include <cstdint>
#include <vector>

#include "src/trace/trace.h"

namespace edk {

// Files with the most distinct sources over the whole trace, most popular
// first.
std::vector<FileId> TopFilesOverall(const Trace& trace, size_t k);

// Files with the most sources on one day, most popular first.
std::vector<FileId> TopFilesOnDay(const Trace& trace, int day, size_t k);

// Fraction of scanned clients sharing `file` on each day of the trace
// (Fig. 8's "spread"). Entry d corresponds to day first_day + d; days with
// no scanned client yield 0.
std::vector<double> FileSpreadOverTime(const Trace& trace, FileId file);

// Rank (1 = most replicated) of `file` among all files on each day
// (Figs. 9-10). Days where the file has no sources yield 0.
std::vector<uint32_t> FileRankOverTime(const Trace& trace, FileId file);

// Batched variant: ranks for several files in one sweep over the trace.
std::vector<std::vector<uint32_t>> FileRanksOverTime(const Trace& trace,
                                                     const std::vector<FileId>& files);

}  // namespace edk

#endif  // SRC_ANALYSIS_SPREAD_H_
