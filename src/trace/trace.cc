#include "src/trace/trace.h"

#include <algorithm>
#include <cassert>

#include "src/obs/metrics.h"

namespace edk {

const char* FileCategoryName(FileCategory category) {
  switch (category) {
    case FileCategory::kAudio:
      return "audio";
    case FileCategory::kVideo:
      return "video";
    case FileCategory::kArchive:
      return "archive";
    case FileCategory::kProgram:
      return "program";
    case FileCategory::kDocument:
      return "document";
    case FileCategory::kOther:
      return "other";
  }
  return "?";
}

const CacheSnapshot* PeerTimeline::SnapshotAtOrBefore(int day) const {
  const CacheSnapshot* best = nullptr;
  for (const auto& snapshot : snapshots) {
    if (snapshot.day > day) {
      break;
    }
    best = &snapshot;
  }
  return best;
}

const CacheSnapshot* PeerTimeline::SnapshotOn(int day) const {
  auto it = std::lower_bound(
      snapshots.begin(), snapshots.end(), day,
      [](const CacheSnapshot& s, int d) { return s.day < d; });
  if (it != snapshots.end() && it->day == day) {
    return &*it;
  }
  return nullptr;
}

bool PeerTimeline::SharesAnything() const {
  for (const auto& snapshot : snapshots) {
    if (!snapshot.files.empty()) {
      return true;
    }
  }
  return false;
}

PeerId Trace::AddPeer(const PeerInfo& info) {
  peers_.push_back(info);
  timelines_.emplace_back();
  return PeerId(static_cast<uint32_t>(peers_.size() - 1));
}

FileId Trace::AddFile(const FileMeta& meta) {
  files_.push_back(meta);
  return FileId(static_cast<uint32_t>(files_.size() - 1));
}

void Trace::AddSnapshot(PeerId peer, int day, std::vector<FileId> files) {
  assert(peer.value < timelines_.size());
  auto& timeline = timelines_[peer.value];
  assert(timeline.snapshots.empty() || timeline.snapshots.back().day < day);
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  timeline.snapshots.push_back(CacheSnapshot{day, std::move(files)});
  if (last_day_ < first_day_) {
    first_day_ = day;
    last_day_ = day;
  } else {
    first_day_ = std::min(first_day_, day);
    last_day_ = std::max(last_day_, day);
  }
}

bool Trace::IsFreeRider(PeerId id) const { return !timelines_[id.value].SharesAnything(); }

size_t Trace::CountFreeRiders() const {
  size_t count = 0;
  for (const auto& timeline : timelines_) {
    if (!timeline.SharesAnything()) {
      ++count;
    }
  }
  return count;
}

size_t Trace::TotalSnapshots() const {
  size_t count = 0;
  for (const auto& timeline : timelines_) {
    count += timeline.snapshots.size();
  }
  return count;
}

std::vector<FileId> Trace::UnionCache(PeerId id) const {
  std::vector<FileId> all;
  for (const auto& snapshot : timelines_[id.value].snapshots) {
    all.insert(all.end(), snapshot.files.begin(), snapshot.files.end());
  }
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  return all;
}

std::vector<uint32_t> Trace::SourceCounts() const {
  obs::PhaseTimer timer("trace.source_counts");
  // Union semantics without materialising per-peer unions: a file counts
  // once per peer that ever held it. The stamp array records the last peer
  // that counted each file, so duplicate sightings across a peer's
  // snapshots are skipped in O(1) — no concatenate/sort/unique churn.
  std::vector<uint32_t> counts(files_.size(), 0);
  std::vector<uint32_t> last_counted(files_.size(), 0);
  for (size_t p = 0; p < peers_.size(); ++p) {
    const uint32_t stamp = static_cast<uint32_t>(p) + 1;
    for (const auto& snapshot : timelines_[p].snapshots) {
      for (const FileId f : snapshot.files) {
        if (last_counted[f.value] != stamp) {
          last_counted[f.value] = stamp;
          ++counts[f.value];
        }
      }
    }
  }
  return counts;
}

uint64_t Trace::DistinctBytes() const {
  uint64_t total = 0;
  for (const auto& meta : files_) {
    total += meta.size_bytes;
  }
  return total;
}

size_t StaticCaches::TotalReplicas() const {
  size_t total = 0;
  for (const auto& cache : caches) {
    total += cache.size();
  }
  return total;
}

std::vector<uint32_t> StaticCaches::SourceCounts(size_t file_count) const {
  std::vector<uint32_t> counts(file_count, 0);
  for (const auto& cache : caches) {
    for (FileId f : cache) {
      ++counts[f.value];
    }
  }
  return counts;
}

StaticCaches BuildUnionCaches(const Trace& trace) {
  StaticCaches out;
  out.caches.resize(trace.peer_count());
  for (size_t p = 0; p < trace.peer_count(); ++p) {
    out.caches[p] = trace.UnionCache(PeerId(static_cast<uint32_t>(p)));
  }
  return out;
}

StaticCaches BuildDayCaches(const Trace& trace, int day) {
  StaticCaches out;
  out.caches.resize(trace.peer_count());
  for (size_t p = 0; p < trace.peer_count(); ++p) {
    const CacheSnapshot* snapshot =
        trace.timeline(PeerId(static_cast<uint32_t>(p))).SnapshotOn(day);
    if (snapshot != nullptr) {
      out.caches[p] = snapshot->files;
    }
  }
  return out;
}

size_t OverlapSize(std::span<const FileId> a, std::span<const FileId> b) {
  size_t count = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

}  // namespace edk
