// Trace randomisation (paper appendix).
//
// Randomly swaps files between peer caches in a way that preserves both
// peer generosity (cache sizes) and file popularity (replica counts) while
// destroying any other structure — in particular interest-based clustering.
// The paper shows that ½·N·ln(N) swaps suffice, where N is the total number
// of file replicas; the resulting trace is uniform among all traces with
// the same generosity and popularity marginals.

#ifndef SRC_TRACE_RANDOMIZE_H_
#define SRC_TRACE_RANDOMIZE_H_

#include <cstdint>

#include "src/common/rng.h"
#include "src/trace/trace.h"

namespace edk {

struct RandomizeResult {
  StaticCaches caches;
  uint64_t attempted_swaps = 0;
  uint64_t successful_swaps = 0;
};

// Number of swap iterations the paper prescribes for full mixing:
// (1/2) * N * ln(N), N = total replicas.
uint64_t RecommendedSwapCount(const StaticCaches& caches);

// Runs `swaps` swap attempts of the appendix algorithm:
//   1. pick peer u with probability |C_u| / sum |C_w|
//   2. pick f uniformly from C_u
//   3. likewise pick (v, f')
//   4. swap f and f' unless f' ∈ C_u or f ∈ C_v (or u == v)
// Swap attempts that fail the membership test count as attempted, not
// successful; this matches the paper's accounting of "number of file
// swappings" on the x-axis of Fig. 21.
RandomizeResult RandomizeCaches(const StaticCaches& caches, uint64_t swaps, Rng& rng);

// Convenience: fully randomises using RecommendedSwapCount.
RandomizeResult RandomizeCachesFully(const StaticCaches& caches, Rng& rng);

}  // namespace edk

#endif  // SRC_TRACE_RANDOMIZE_H_
