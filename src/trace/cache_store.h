// Flat compressed-sparse-row (CSR) view of a set of peer caches, plus the
// transposed index (file -> holders), built once and shared by the pairwise
// overlap kernels in src/analysis and the semantic search simulator.
//
// Layout. All caches live in one flat `files` array; peer p's (sorted)
// cache is the slice [peer_offsets[p], peer_offsets[p+1]). The transpose
// stores, for every file f, the ascending list of peers holding it in one
// flat `holders` array sliced by `file_offsets`. Compared to the previous
// std::unordered_map<uint32_t, std::vector<uint32_t>> inverted indexes this
// removes per-file allocations and hashing from the hottest loops: a full
// pass over all (peer, file) incidences is a linear scan of two arrays.
//
// Counting idiom. Per-anchor pair counting uses OverlapCounter: a dense
// per-peer counter array plus an explicit touched list, reset by walking
// the touched entries rather than clearing the whole array. Because holder
// lists are ascending, the peers q > p relevant for pair deduplication form
// a suffix of each holder slice, located with one binary search instead of
// a per-element branch.
//
// Determinism. The store is a pure function of its input caches, and
// OverlapCounter visits candidates in first-encounter order, which depends
// only on the store. Parallel consumers merge per-block integer histograms
// (commutative sums), so results are bit-identical for any thread count.

#ifndef SRC_TRACE_CACHE_STORE_H_
#define SRC_TRACE_CACHE_STORE_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "src/trace/trace.h"

namespace edk {

class CacheStore {
 public:
  CacheStore() = default;

  // Flattens `caches` (sorted per peer, as per the StaticCaches contract)
  // and builds the transpose. The file-id space is sized to the largest id
  // present (or `file_count_hint` if larger).
  static CacheStore FromStaticCaches(const StaticCaches& caches,
                                     size_t file_count_hint = 0);
  // Equivalent to FromStaticCaches(BuildDayCaches(trace, day)) without the
  // intermediate per-peer vector copies.
  static CacheStore FromTraceDay(const Trace& trace, int day);
  // Adopts an already-flattened CSR (sorted ascending within each peer
  // slice; `peer_offsets` has peer_count + 1 entries starting at 0) and
  // builds the transpose. The file-id space is sized to the largest id
  // present (or `file_count_hint` if larger) — the same sizing rule as the
  // other factories, so a stream::TraceReader day view is layout-identical
  // to FromTraceDay on the materialised trace.
  static CacheStore FromCsr(std::vector<uint32_t> files,
                            std::vector<size_t> peer_offsets,
                            size_t file_count_hint = 0);

  size_t peer_count() const { return peer_offsets_.size() - 1; }
  // One past the largest file id present (0 for an empty store).
  size_t file_bound() const { return file_offsets_.size() - 1; }
  size_t total_replicas() const { return files_.size(); }
  // Size of the largest single cache (0 for an empty store); bounds every
  // pairwise overlap, so dense histograms can be sized from it.
  size_t MaxCacheSize() const;

  std::span<const uint32_t> PeerFiles(uint32_t p) const {
    return {files_.data() + peer_offsets_[p],
            files_.data() + peer_offsets_[p + 1]};
  }
  std::span<const uint32_t> FileHolders(uint32_t f) const {
    if (f >= file_bound()) {
      return {};
    }
    return {holders_.data() + file_offsets_[f],
            holders_.data() + file_offsets_[f + 1]};
  }
  size_t CacheSize(uint32_t p) const {
    return peer_offsets_[p + 1] - peer_offsets_[p];
  }
  // Global replica slot range of peer p (slots index the flat files array;
  // the search simulator keys per-replica state off them).
  size_t PeerBegin(uint32_t p) const { return peer_offsets_[p]; }
  size_t PeerEnd(uint32_t p) const { return peer_offsets_[p + 1]; }
  uint32_t FileAtSlot(size_t slot) const { return files_[slot]; }

  // Slot of file f in peer p's slice, or kNoSlot if p does not hold f.
  // Binary search over the sorted slice.
  static constexpr size_t kNoSlot = static_cast<size_t>(-1);
  size_t FindSlot(uint32_t p, uint32_t f) const {
    const uint32_t* begin = files_.data() + peer_offsets_[p];
    const uint32_t* end = files_.data() + peer_offsets_[p + 1];
    const uint32_t* it = std::lower_bound(begin, end, f);
    if (it == end || *it != f) {
      return kNoSlot;
    }
    return static_cast<size_t>(it - files_.data());
  }

  // Projection keeping only files with mask[f] == true (files at or beyond
  // mask.size() are dropped). Replaces per-file mask branches in the
  // counting loops with a one-off pre-filter.
  CacheStore Masked(const std::vector<bool>& mask) const;

  // Inflates back to the per-peer vector representation.
  StaticCaches ToStaticCaches() const;

 private:
  void BuildTranspose(size_t file_bound);

  // peer -> files CSR. Sorted ascending within each peer slice.
  std::vector<uint32_t> files_;
  std::vector<size_t> peer_offsets_{0};
  // file -> holders CSR. Ascending within each file slice (peers are
  // scanned in order during construction).
  std::vector<uint32_t> holders_;
  std::vector<size_t> file_offsets_{0};
};

// Dense per-peer overlap counter with an explicit touched list. Reusable
// across anchors: after each ForAnchor call the counter array is all zeros
// again (reset via the touched entries, not by clearing the array).
class OverlapCounter {
 public:
  OverlapCounter() = default;
  explicit OverlapCounter(size_t peer_count) { Resize(peer_count); }

  void Resize(size_t peer_count) { counts_.assign(peer_count, 0); }

  // Counts the common files between anchor `p` and every peer q > p that
  // shares at least one file with it, then calls visit(q, overlap) for each
  // such q in first-encounter order (a pure function of the store).
  template <typename Visit>
  void ForAnchor(const CacheStore& store, uint32_t p, Visit&& visit) {
    for (uint32_t f : store.PeerFiles(p)) {
      const std::span<const uint32_t> holders = store.FileHolders(f);
      // Holder lists are ascending, so the q > p candidates are a suffix.
      const uint32_t* it =
          std::upper_bound(holders.data(), holders.data() + holders.size(), p);
      const uint32_t* end = holders.data() + holders.size();
      for (; it != end; ++it) {
        const uint32_t q = *it;
        if (counts_[q]++ == 0) {
          touched_.push_back(q);
        }
      }
    }
    for (const uint32_t q : touched_) {
      visit(q, counts_[q]);
      counts_[q] = 0;
    }
    touched_.clear();
  }

 private:
  std::vector<uint32_t> counts_;
  std::vector<uint32_t> touched_;
};

}  // namespace edk

#endif  // SRC_TRACE_CACHE_STORE_H_
