// Trace data model: the in-memory representation of a multi-day crawl of
// peer cache contents, mirroring the structure of the paper's eDonkey trace
// (peers, file metadata, and one cache snapshot per peer per observed day).

#ifndef SRC_TRACE_TRACE_H_
#define SRC_TRACE_TRACE_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/common/ids.h"

namespace edk {

// Broad content categories; the paper distinguishes the MP3 range (1-10 MB),
// albums/small videos/programs (10-600 MB), and DIVX movies (> 600 MB).
enum class FileCategory : uint8_t {
  kAudio = 0,
  kVideo = 1,
  kArchive = 2,
  kProgram = 3,
  kDocument = 4,
  kOther = 5,
};

const char* FileCategoryName(FileCategory category);

struct FileMeta {
  uint64_t size_bytes = 0;
  FileCategory category = FileCategory::kOther;
  // Ground-truth interest topic when the trace came from the synthetic
  // workload generator; invalid for traces of unknown provenance.
  TopicId topic;
};

struct PeerInfo {
  CountryId country;
  AsId autonomous_system;
  uint32_t ip_address = 0;   // For duplicate filtering, as in the paper.
  uint64_t user_id = 0;      // eDonkey "user hash" stand-in.
  bool firewalled = false;   // Firewalled peers cannot be browsed.
};

// One observation of a peer's shared-file list on a given day. Files are
// kept sorted so that overlap computation is a linear merge.
struct CacheSnapshot {
  int day = 0;
  std::vector<FileId> files;  // Sorted ascending by FileId::value.
};

// A peer's observations over the trace, ordered by day (strictly
// increasing).
struct PeerTimeline {
  std::vector<CacheSnapshot> snapshots;

  // Latest snapshot at or before `day`, if any.
  const CacheSnapshot* SnapshotAtOrBefore(int day) const;
  const CacheSnapshot* SnapshotOn(int day) const;
  bool SharesAnything() const;
};

// The full trace: peers, files, and per-peer timelines.
class Trace {
 public:
  Trace() = default;

  // --- Construction -------------------------------------------------------
  PeerId AddPeer(const PeerInfo& info);
  FileId AddFile(const FileMeta& meta);
  // `files` need not be sorted; it is sorted on insertion. Days must be
  // added in increasing order per peer.
  void AddSnapshot(PeerId peer, int day, std::vector<FileId> files);

  // --- Accessors -----------------------------------------------------------
  size_t peer_count() const { return peers_.size(); }
  size_t file_count() const { return files_.size(); }
  const PeerInfo& peer(PeerId id) const { return peers_[id.value]; }
  const FileMeta& file(FileId id) const { return files_[id.value]; }
  const PeerTimeline& timeline(PeerId id) const { return timelines_[id.value]; }
  const std::vector<PeerInfo>& peers() const { return peers_; }
  const std::vector<FileMeta>& files() const { return files_; }

  // Day span covered by any snapshot; {0, -1} for an empty trace.
  int first_day() const { return first_day_; }
  int last_day() const { return last_day_; }

  // --- Derived quantities ---------------------------------------------------
  // A free-rider never shares a file in any snapshot.
  bool IsFreeRider(PeerId id) const;
  size_t CountFreeRiders() const;
  // Total number of snapshot observations across all peers.
  size_t TotalSnapshots() const;
  // Union of all files ever observed in this peer's cache (sorted).
  std::vector<FileId> UnionCache(PeerId id) const;
  // Number of distinct sources that ever shared the file.
  std::vector<uint32_t> SourceCounts() const;
  // Sum of sizes of distinct files (the paper's "space used by distinct
  // files": each file counted once).
  uint64_t DistinctBytes() const;

 private:
  std::vector<PeerInfo> peers_;
  std::vector<FileMeta> files_;
  std::vector<PeerTimeline> timelines_;
  int first_day_ = 0;
  int last_day_ = -1;
};

// Per-peer static cache view (one file list per peer) used by the semantic
// search simulator and the randomiser. Built from a trace either as the
// union over all days or as a single day's snapshot.
struct StaticCaches {
  std::vector<std::vector<FileId>> caches;  // Sorted per peer.

  size_t TotalReplicas() const;
  std::vector<uint32_t> SourceCounts(size_t file_count) const;
};

StaticCaches BuildUnionCaches(const Trace& trace);
StaticCaches BuildDayCaches(const Trace& trace, int day);

// Number of common files between two sorted file lists (linear merge).
size_t OverlapSize(std::span<const FileId> a, std::span<const FileId> b);

}  // namespace edk

#endif  // SRC_TRACE_TRACE_H_
