// Multi-core scan over EDKT v2 day blocks (DESIGN.md §6i).
//
// The unit of work is one block of one day (a block-less day is one task).
// Tasks are enumerated in canonical order — ascending day, ascending block
// — and run concurrently on the src/exec pool. Each worker decodes with a
// DecodeArena drawn from a free-list pool (ParallelFor exposes no worker
// identity, so arenas are leased per task; a lease is two mutex ops
// against ~1 MiB of decode work), so steady-state scanning performs no
// per-snapshot or per-task allocation.
//
// Determinism contract: within one task callbacks arrive in ascending peer
// order on a single thread, but tasks interleave freely. Callers therefore
// accumulate into PER-TASK slots (indexed by the task number) and merge in
// task order after Run returns — the merged result is identical to a
// serial scan for any thread count. The cross-block invariant (a block's
// first peer exceeds the previous block's last) cannot be checked inline
// when blocks decode out of order; Run records each task's peer bounds and
// validates the chain in block order at the end.

#ifndef SRC_TRACE_STREAM_PARALLEL_SCAN_H_
#define SRC_TRACE_STREAM_PARALLEL_SCAN_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "src/exec/parallel.h"
#include "src/trace/stream/format.h"
#include "src/trace/stream/trace_reader.h"

namespace edk::stream {

// Free-list pool of decode arenas (or any default-constructible per-worker
// state T): Acquire leases an instance, Release returns it. At most one
// instance per concurrently running task is ever constructed. `ForEach`
// visits every instance ever leased — the canonical way to merge
// per-worker partials AFTER the parallel loop has joined.
template <typename T>
class WorkerPool {
 public:
  T* Acquire() {
    std::lock_guard<std::mutex> lock(mu_);
    if (free_.empty()) {
      owned_.push_back(std::make_unique<T>());
      return owned_.back().get();
    }
    T* state = free_.back();
    free_.pop_back();
    return state;
  }

  void Release(T* state) {
    std::lock_guard<std::mutex> lock(mu_);
    free_.push_back(state);
  }

  // RAII lease for exception safety inside parallel tasks.
  class Lease {
   public:
    explicit Lease(WorkerPool& pool) : pool_(pool), state_(pool.Acquire()) {}
    ~Lease() { pool_.Release(state_); }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    T& operator*() const { return *state_; }
    T* operator->() const { return state_; }

   private:
    WorkerPool& pool_;
    T* state_;
  };

  template <typename Fn>
  void ForEach(Fn&& fn) {
    for (const auto& state : owned_) {
      fn(*state);
    }
  }

 private:
  std::mutex mu_;
  std::vector<std::unique_ptr<T>> owned_;
  std::vector<T*> free_;
};

using ArenaPool = WorkerPool<DecodeArena>;

// One unit of parallel scan work: block `block` of `*day`.
struct ScanTask {
  const TraceReader::DayInfo* day = nullptr;
  size_t day_index = 0;  // Index into reader.days().
  size_t block = 0;      // 0 for block-less days.

  uint64_t snapshots() const {
    return day->blocks.empty() ? day->snapshots
                               : day->blocks[block].snapshots;
  }
  uint64_t file_entries() const {
    return day->blocks.empty() ? day->file_entries
                               : day->blocks[block].file_entries;
  }
};

// Every block of every day, in canonical (day, block) order.
inline std::vector<ScanTask> MakeScanTasks(const TraceReader& reader) {
  std::vector<ScanTask> tasks;
  for (size_t d = 0; d < reader.days().size(); ++d) {
    const TraceReader::DayInfo& info = reader.days()[d];
    for (size_t b = 0; b < TraceReader::BlockCount(info); ++b) {
      tasks.push_back(ScanTask{&info, d, b});
    }
  }
  return tasks;
}

// Decodes `tasks` concurrently, calling
//   fn(size_t task_index, uint32_t peer, const uint32_t* files, size_t count)
// per snapshot. Within a task callbacks are ordered and single-threaded;
// across tasks they interleave — accumulate per task_index and merge in
// order. Returns false on any decode failure or on a cross-block peer
// ordering violation. `threads` as in ParallelFor (0 = DefaultThreads).
template <typename Fn>
bool ParallelScanSnapshots(const TraceReader& reader,
                           const std::vector<ScanTask>& tasks, Fn&& fn,
                           size_t threads = 0) {
  struct TaskBounds {
    uint32_t first_peer = 0;
    uint32_t last_peer = 0;
    bool ok = false;
  };
  std::vector<TaskBounds> bounds(tasks.size());
  ArenaPool arenas;
  ParallelFor(
      0, tasks.size(),
      [&](size_t t) {
        const ScanTask& task = tasks[t];
        ArenaPool::Lease arena(arenas);
        bounds[t].ok = reader.ForEachSnapshotInBlock(
            *task.day, task.block, *arena,
            [&](uint32_t peer, const uint32_t* files, size_t count) {
              fn(t, peer, files, count);
            },
            &bounds[t].first_peer, &bounds[t].last_peer);
      },
      threads);
  // Deterministic block-ordered reduction of the validity checks: every
  // task decoded, and consecutive blocks of one day stayed strictly
  // ascending across the boundary.
  for (size_t t = 0; t < tasks.size(); ++t) {
    if (!bounds[t].ok) {
      return false;
    }
    if (t > 0 && tasks[t].day == tasks[t - 1].day &&
        tasks[t].snapshots() > 0 && tasks[t - 1].snapshots() > 0 &&
        bounds[t].first_peer <= bounds[t - 1].last_peer) {
      return false;
    }
  }
  return true;
}

// Parallel twin of a ForEachSnapshot sweep over every day of the trace.
// The callback must be safe to run from multiple threads at once and its
// accumulation must be order-free (commutative and associative — e.g. the
// bench checksum XOR); for anything order-sensitive use
// ParallelScanSnapshots with per-task slots directly.
template <typename Fn>
bool ParallelForEachSnapshot(const TraceReader& reader, Fn&& fn,
                             size_t threads = 0) {
  const std::vector<ScanTask> tasks = MakeScanTasks(reader);
  return ParallelScanSnapshots(
      reader, tasks,
      [&](size_t, uint32_t peer, const uint32_t* files, size_t count) {
        fn(peer, files, count);
      },
      threads);
}

}  // namespace edk::stream

#endif  // SRC_TRACE_STREAM_PARALLEL_SCAN_H_
