#include "src/trace/stream/convert.h"

#include <fstream>
#include <utility>
#include <vector>

#include "src/trace/serialize.h"
#include "src/trace/stream/format.h"
#include "src/trace/stream/trace_writer.h"

namespace edk::stream {

bool SaveTraceV2ToFile(const Trace& trace, const std::string& path,
                       std::string* error, const TraceWriter::Options& options) {
  auto writer =
      TraceWriter::Create(path, trace.files(), trace.peers(), error, options);
  if (!writer.has_value()) {
    return false;
  }
  const size_t peers = trace.peer_count();
  std::vector<uint32_t> files;
  for (int day = trace.first_day(); day <= trace.last_day(); ++day) {
    // Transpose peer-major v1 timelines into day-major segments; days with
    // no snapshots are not represented in either format.
    bool open = false;
    for (size_t p = 0; p < peers; ++p) {
      const CacheSnapshot* snapshot =
          trace.timeline(PeerId(static_cast<uint32_t>(p))).SnapshotOn(day);
      if (snapshot == nullptr) {
        continue;
      }
      if (!open) {
        if (!writer->BeginDay(day)) {
          break;
        }
        open = true;
      }
      files.clear();
      files.reserve(snapshot->files.size());
      for (const FileId f : snapshot->files) {
        files.push_back(f.value);
      }
      if (!writer->AddSnapshot(static_cast<uint32_t>(p), files)) {
        break;
      }
    }
    if (open && !writer->EndDay()) {
      break;
    }
  }
  const bool ok = writer->ok() && writer->Finish();
  if (!ok && error != nullptr) {
    *error = writer->error();
  }
  return ok;
}

std::optional<Trace> MaterializeTrace(const TraceReader& reader,
                                      std::string* error) {
  Trace trace;
  for (uint64_t f = 0; f < reader.file_count(); ++f) {
    trace.AddFile(reader.FileAt(static_cast<uint32_t>(f)));
  }
  for (uint64_t p = 0; p < reader.peer_count(); ++p) {
    trace.AddPeer(reader.PeerAt(static_cast<uint32_t>(p)));
  }
  // Day segments are ascending, so per-peer AddSnapshot calls arrive in
  // increasing-day order — exactly the PeerTimeline invariant.
  DecodeArena arena;
  std::vector<FileId> cache;
  for (const TraceReader::DayInfo& info : reader.days()) {
    const bool ok = reader.ForEachSnapshot(
        info, arena, [&](uint32_t peer, const uint32_t* files, size_t count) {
          cache.clear();
          cache.reserve(count);
          for (size_t i = 0; i < count; ++i) {
            cache.push_back(FileId(files[i]));
          }
          trace.AddSnapshot(PeerId(peer), info.day, cache);
        });
    if (!ok) {
      if (error != nullptr) {
        *error = "corrupt day segment for day " + std::to_string(info.day);
      }
      return std::nullopt;
    }
  }
  return trace;
}

std::optional<uint32_t> SniffTraceVersion(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  uint8_t magic_bytes[4];
  if (!is || !is.read(reinterpret_cast<char*>(magic_bytes), 4)) {
    return std::nullopt;
  }
  const uint32_t magic = LoadU32(magic_bytes);
  if (magic == kMagicV1) {
    return 1;
  }
  if (magic == kMagicV2) {
    return 2;
  }
  return std::nullopt;
}

std::optional<Trace> LoadAnyTraceFromFile(const std::string& path,
                                          std::string* error) {
  const auto version = SniffTraceVersion(path);
  if (!version.has_value()) {
    if (error != nullptr) {
      *error = "'" + path + "' is not an EDKT trace (unknown magic)";
    }
    return std::nullopt;
  }
  if (*version == 1) {
    auto trace = LoadTraceFromFile(path);
    if (!trace.has_value() && error != nullptr) {
      *error = "'" + path + "' failed EDKT v1 validation";
    }
    return trace;
  }
  auto reader = TraceReader::Open(path, error);
  if (!reader.has_value()) {
    return std::nullopt;
  }
  return MaterializeTrace(*reader, error);
}

bool ConvertTraceFile(const std::string& input, const std::string& output,
                      uint32_t target_version, std::string* error,
                      const TraceWriter::Options& options) {
  if (target_version != 1 && target_version != 2) {
    if (error != nullptr) {
      *error = "unsupported target version " + std::to_string(target_version);
    }
    return false;
  }
  // The load materialises (and unmaps) the input before any write happens,
  // so output == input performs an in-place upgrade.
  auto trace = LoadAnyTraceFromFile(input, error);
  if (!trace.has_value()) {
    return false;
  }
  if (target_version == 1) {
    if (!SaveTraceToFile(*trace, output)) {
      if (error != nullptr) {
        *error = "failed to write '" + output + "' (disk full?)";
      }
      return false;
    }
    return true;
  }
  return SaveTraceV2ToFile(*trace, output, error, options);
}

ValidationReport ValidateTraceFile(const std::string& path) {
  ValidationReport report;
  const auto version = SniffTraceVersion(path);
  if (!version.has_value()) {
    report.error = "'" + path + "' is not an EDKT trace (unknown magic)";
    return report;
  }
  report.version = *version;
  if (*version == 1) {
    const auto trace = LoadTraceFromFile(path);
    if (!trace.has_value()) {
      report.error = "'" + path + "' failed EDKT v1 validation";
      return report;
    }
    report.peers = trace->peer_count();
    report.files = trace->file_count();
    report.snapshots = trace->TotalSnapshots();
    std::vector<bool> seen;
    if (trace->last_day() >= trace->first_day()) {
      seen.assign(static_cast<size_t>(trace->last_day() - trace->first_day()) + 1,
                  false);
    }
    for (size_t p = 0; p < trace->peer_count(); ++p) {
      for (const CacheSnapshot& snapshot :
           trace->timeline(PeerId(static_cast<uint32_t>(p))).snapshots) {
        report.file_entries += snapshot.files.size();
        seen[static_cast<size_t>(snapshot.day - trace->first_day())] = true;
      }
    }
    for (const bool day_seen : seen) {
      report.days += day_seen ? 1 : 0;
    }
    report.ok = true;
    return report;
  }
  auto reader = TraceReader::Open(path, &report.error);
  if (!reader.has_value()) {
    return report;
  }
  report.peers = reader->peer_count();
  report.files = reader->file_count();
  // Open validates the skeleton; finish the job by decoding every payload
  // and verifying every block checksum against the footer directory.
  DecodeArena arena;
  for (const TraceReader::DayInfo& info : reader->days()) {
    for (const TraceReader::BlockInfo& block : info.blocks) {
      if (HashBytes64(reader->DataAt(block.offset),
                      static_cast<size_t>(block.bytes)) != block.checksum) {
        report.error = "block checksum mismatch in day " +
                       std::to_string(info.day);
        return report;
      }
    }
    if (!reader->ForEachSnapshot(info, arena,
                                 [](uint32_t, const uint32_t*, size_t) {})) {
      report.error = "corrupt day segment for day " + std::to_string(info.day);
      return report;
    }
    ++report.days;
    report.snapshots += info.snapshots;
    report.file_entries += info.file_entries;
    report.blocks += TraceReader::BlockCount(info);
  }
  report.ok = true;
  return report;
}

}  // namespace edk::stream
