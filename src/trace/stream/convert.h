// Bridges between EDKT v1 (the in-RAM Trace serialisation) and EDKT v2
// (the streaming columnar format): save/load, format sniffing, conversion
// and deep validation. Used by the edk-trace `convert`/`validate-format`
// subcommands and by every tool that accepts "either format" input.
//
// Conversion is lossless in both directions for any trace the v1 writer
// can produce: the same tables, and per peer the same (day, files)
// snapshots — v1 groups snapshots by peer, v2 groups them by day, which is
// a pure transposition. `v1 -> v2 -> v1` is byte-identical (covered by
// tests/trace/stream_test.cc). Days with no snapshots are not represented
// in either format.

#ifndef SRC_TRACE_STREAM_CONVERT_H_
#define SRC_TRACE_STREAM_CONVERT_H_

#include <cstdint>
#include <optional>
#include <string>

#include "src/trace/stream/trace_reader.h"
#include "src/trace/stream/trace_writer.h"
#include "src/trace/trace.h"

namespace edk::stream {

// Writes `trace` at `path` in EDKT v2 via TraceWriter (one day segment per
// observed day, ascending; blocked per `options`). False on I/O failure or
// invariant violation, with the writer's message in *error.
bool SaveTraceV2ToFile(const Trace& trace, const std::string& path,
                       std::string* error = nullptr,
                       const TraceWriter::Options& options = {});

// Inflates an opened v2 file into the in-RAM Trace model. Decodes every
// day segment; nullopt on corruption. Memory: the whole trace — use the
// reader's day views when out-of-core behaviour matters.
std::optional<Trace> MaterializeTrace(const TraceReader& reader,
                                      std::string* error = nullptr);

// Sniffs the magic and loads either format into a Trace. v1 goes through
// the hardened LoadTraceFromFile; v2 through Open + MaterializeTrace.
std::optional<Trace> LoadAnyTraceFromFile(const std::string& path,
                                          std::string* error = nullptr);

// Detected on-disk format version from the leading magic: 1, 2, or nullopt
// for anything else (including unreadable/short files).
std::optional<uint32_t> SniffTraceVersion(const std::string& path);

// Loads `input` (either format) and writes it at `output` in
// `target_version` (1 or 2, blocked per `options` for 2). `output` may
// equal `input` — the load fully materialises before the write truncates,
// which is how `edk-trace convert` upgrades block-less files in place.
bool ConvertTraceFile(const std::string& input, const std::string& output,
                      uint32_t target_version, std::string* error = nullptr,
                      const TraceWriter::Options& options = {});

// Deep-validates a trace file of either format: v1 via the hardened
// loader, v2 via Open plus a full decode of every day segment (the part
// Open defers) plus a HashBytes64 verification of every block against the
// footer block directory. `ok == false` leaves the counters at whatever
// was established before the failure.
struct ValidationReport {
  bool ok = false;
  uint32_t version = 0;
  std::string error;
  uint64_t peers = 0;
  uint64_t files = 0;
  uint64_t days = 0;
  uint64_t snapshots = 0;      // Total (peer, day) observations.
  uint64_t file_entries = 0;   // Total cache entries across snapshots.
  uint64_t blocks = 0;         // Day blocks (block-less days count 1 each).
};

ValidationReport ValidateTraceFile(const std::string& path);

}  // namespace edk::stream

#endif  // SRC_TRACE_STREAM_CONVERT_H_
