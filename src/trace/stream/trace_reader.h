// mmap-backed EDKT v2 reader (DESIGN.md §6h).
//
// Open() maps the whole file read-only and validates the fixed skeleton:
// header, trailer, footer index, both tables (including every file row's
// category byte, mirroring the v1 loader), and the header of every day
// segment against its footer entry. Crucially it does NOT decode day
// payloads — opening a multi-GB trace touches a few pages plus the tables,
// and serving one day touches only that day's segment. That is what makes
// the analysis pipeline out-of-core: memory is bounded by the largest
// single day, never by the trace.
//
// Day access comes in two shapes:
//   * ForEachSnapshot(info, scratch, fn) — zero-copy streaming decode,
//     fn(peer, files, count) per snapshot in ascending peer order;
//   * ReadDay(info) — a DayCaches view: the observed-peer list plus a
//     CacheStore with one (possibly empty) row per peer, layout-identical
//     to CacheStore::FromTraceDay on the materialised trace. The analysis
//     streaming entry points consume this and are byte-identical to their
//     in-RAM twins.
//
// Every decode re-validates against the mapped bytes (the file may change
// or be corrupt on disk); failures return nullopt/false, never UB.

#ifndef SRC_TRACE_STREAM_TRACE_READER_H_
#define SRC_TRACE_STREAM_TRACE_READER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/trace/cache_store.h"
#include "src/trace/stream/format.h"
#include "src/trace/trace.h"

namespace edk::stream {

class TraceReader {
 public:
  // One block of a blocked (tag 0x04) day segment, from the footer block
  // directory cross-checked against the block's own header at Open.
  struct BlockInfo {
    uint64_t offset = 0;  // Absolute offset of the block's first byte.
    uint64_t bytes = 0;
    uint64_t snapshots = 0;
    uint64_t file_entries = 0;
    uint64_t checksum = 0;  // HashBytes64 over the block's bytes.
  };

  struct DayInfo {
    int day = 0;
    uint64_t payload_offset = 0;  // Absolute offset of the segment payload.
    uint64_t payload_bytes = 0;
    uint64_t snapshots = 0;
    uint64_t file_entries = 0;
    std::vector<BlockInfo> blocks;  // Empty for block-less (0x03) days.
  };

  // One day's caches in CacheStore form. `store` has a row for every peer
  // in the trace (empty when the peer was not observed that day) and its
  // file bound is the largest id present plus one — exactly the
  // CacheStore::FromTraceDay layout, so downstream kernels cannot tell the
  // difference.
  struct DayCaches {
    int day = 0;
    std::vector<uint32_t> peers;  // Peers observed this day, ascending.
    CacheStore store;
  };

  TraceReader(TraceReader&& other) noexcept { *this = std::move(other); }
  TraceReader& operator=(TraceReader&& other) noexcept;
  TraceReader(const TraceReader&) = delete;
  TraceReader& operator=(const TraceReader&) = delete;
  ~TraceReader();

  static std::optional<TraceReader> Open(const std::string& path,
                                         std::string* error = nullptr);

  uint64_t file_count() const { return file_count_; }
  uint64_t peer_count() const { return peer_count_; }
  uint64_t size_bytes() const { return size_; }

  // Raw mapped bytes at `offset` (which must come from a validated
  // DayInfo/BlockInfo) — checksum verification hashes blocks in place.
  const uint8_t* DataAt(uint64_t offset) const { return data_ + offset; }

  // Day index from the footer, ascending by day.
  const std::vector<DayInfo>& days() const { return days_; }
  const DayInfo* FindDay(int day) const;  // nullptr when absent.
  // Day span like Trace::first_day()/last_day(): {0, -1} when no days.
  int first_day() const { return days_.empty() ? 0 : days_.front().day; }
  int last_day() const { return days_.empty() ? -1 : days_.back().day; }

  // Random access into the fixed-width tables (bounds are the caller's
  // contract; ids come from validated decodes).
  FileMeta FileAt(uint32_t f) const;
  PeerInfo PeerAt(uint32_t p) const;
  // Materialised copies, for conversion back to Trace / v1.
  std::vector<FileMeta> Files() const;
  std::vector<PeerInfo> Peers() const;

  // Streaming decode of one day: fn(uint32_t peer, const uint32_t* files,
  // size_t count) per snapshot in ascending peer order (block chains are
  // walked in order with the cross-block peer monotonicity enforced
  // inline). Returns false on corruption (possibly after some callbacks).
  // `arena` is reused across calls to avoid reallocation in day sweeps.
  template <typename Fn>
  bool ForEachSnapshot(const DayInfo& info, DecodeArena& arena,
                       Fn&& fn) const {
    const uint8_t* p = data_ + info.payload_offset;
    return DecodeDayPayload(p, p + info.payload_bytes, peer_count_,
                            file_count_, arena, static_cast<Fn&&>(fn),
                            /*blocked=*/!info.blocks.empty());
  }

  // Number of independently decodable pieces of a day: its block count, or
  // 1 for a block-less day (whose whole payload is the single piece).
  static size_t BlockCount(const DayInfo& info) {
    return info.blocks.empty() ? 1 : info.blocks.size();
  }

  // Streaming decode of ONE block of a day (block-less days expose their
  // whole payload as block 0) — the unit of the parallel scan
  // (parallel_scan.h). Callbacks arrive in ascending peer order within the
  // block; cross-block ordering is the caller's merge-time check, via
  // `first_peer`/`last_peer` (set only when the block has snapshots).
  template <typename Fn>
  bool ForEachSnapshotInBlock(const DayInfo& info, size_t block,
                              DecodeArena& arena, Fn&& fn,
                              uint32_t* first_peer = nullptr,
                              uint32_t* last_peer = nullptr) const {
    const uint8_t* p = data_ + (info.blocks.empty()
                                    ? info.payload_offset
                                    : info.blocks[block].offset);
    const uint8_t* end =
        p + (info.blocks.empty() ? info.payload_bytes : info.blocks[block].bytes);
    if (!DecodeDayBlock(p, end, peer_count_, file_count_, /*peer_floor=*/0,
                        arena, static_cast<Fn&&>(fn), nullptr, last_peer)) {
      return false;
    }
    if (first_peer != nullptr && !arena.peers.empty()) {
      *first_peer = arena.peers.front();
    }
    return p == end;
  }

  // Decodes one day into the FromTraceDay-identical CacheStore view.
  // Blocked days with more than one block fill the view block-parallel on
  // the exec pool (disjoint slices — the result is identical to the serial
  // fill by construction); block-less days and --threads=1 decode serially.
  std::optional<DayCaches> ReadDay(const DayInfo& info,
                                   std::string* error = nullptr) const;

 private:
  TraceReader() = default;

  const uint8_t* data_ = nullptr;
  uint64_t size_ = 0;
  uint64_t file_count_ = 0;
  uint64_t peer_count_ = 0;
  uint64_t file_rows_offset_ = 0;  // First 13-byte file row.
  uint64_t peer_rows_offset_ = 0;  // First 21-byte peer row.
  std::vector<DayInfo> days_;
};

}  // namespace edk::stream

#endif  // SRC_TRACE_STREAM_TRACE_READER_H_
