// Append-only EDKT v2 writer (DESIGN.md §6h).
//
// Usage:
//   auto writer = TraceWriter::Create(path, files, peers);
//   for each day (ascending):
//     writer->BeginDay(day);
//     for each observed peer (ascending): writer->AddSnapshot(peer, cache);
//     writer->EndDay();           // one flushed segment per day
//   writer->Finish();             // footer + trailer; false on I/O error
//
// Memory is bounded by one day: AddSnapshot appends to in-RAM columns that
// EndDay encodes, length-prefixes and flushes. Every method returns false
// (with a sticky error() message) on an invariant violation or I/O failure;
// Finish() additionally verifies the flush-and-close so a full disk cannot
// be reported as success — the same discipline as SaveTraceToFile.
//
// Restartability. Segments are self-delimiting and the footer is written
// last, so a crashed or killed generation run leaves a valid prefix.
// Resume() re-opens such a file, verifies the header and the table counts
// against the caller's catalog, deep-validates complete day segments
// (stopping at a truncated or corrupt tail, or at a stale footer, and
// truncating the file there) and continues appending with the day list
// preloaded — the generator then skips every day at or below last_day().

#ifndef SRC_TRACE_STREAM_TRACE_WRITER_H_
#define SRC_TRACE_STREAM_TRACE_WRITER_H_

#include <cstdint>
#include <fstream>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/trace/stream/format.h"
#include "src/trace/trace.h"

namespace edk::stream {

// Namespace-scope (not nested) so it is a complete type when used as an
// in-class default argument below; spelled TraceWriter::Options at call
// sites via the alias.
struct WriterOptions {
  // Target encoded size per day block (tag 0x04). 0 writes legacy
  // block-less tag-0x03 segments — byte-compatible with PR 7 files.
  uint64_t block_target_bytes = kDefaultBlockTargetBytes;
};

class TraceWriter {
 public:
  using Options = WriterOptions;

  struct DayEntry {
    int day = 0;
    uint64_t offset = 0;  // Absolute offset of the segment's tag byte.
    uint64_t snapshots = 0;
    uint64_t file_entries = 0;
    std::vector<BlockEntry> blocks;  // Empty for block-less (0x03) days.
  };

  TraceWriter(TraceWriter&&) = default;
  TraceWriter& operator=(TraceWriter&&) = default;

  // Creates (truncating) `path` and writes header + file/peer tables.
  static std::optional<TraceWriter> Create(const std::string& path,
                                           std::span<const FileMeta> files,
                                           std::span<const PeerInfo> peers,
                                           std::string* error = nullptr,
                                           const Options& options = {});

  // Re-opens an unfinished (or finished) v2 file whose tables match the
  // given catalog sizes, truncates any partial tail or stale footer, and
  // resumes appending after the last complete day. Both day-segment tags
  // are accepted regardless of `options` (block boundaries and checksums
  // are recovered from the self-delimiting blocks); `options` governs the
  // days appended from here on.
  static std::optional<TraceWriter> Resume(const std::string& path,
                                           std::span<const FileMeta> files,
                                           std::span<const PeerInfo> peers,
                                           std::string* error = nullptr,
                                           const Options& options = {});

  // Days already in the file (ascending). Empty until the first EndDay().
  const std::vector<DayEntry>& days() const { return days_; }
  // Largest day written so far; nullopt when no day segment exists yet.
  std::optional<int> last_day() const;

  bool BeginDay(int day);  // day must exceed last_day().
  // `files` sorted strictly ascending, all ids < file table size; `peer`
  // strictly greater than the previous snapshot's peer in this day.
  bool AddSnapshot(uint32_t peer, std::span<const uint32_t> files);
  bool EndDay();
  // Footer + trailer + flush + close. The writer is unusable afterwards.
  bool Finish();

  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }

  uint64_t bytes_written() const { return offset_; }

 private:
  TraceWriter() = default;
  bool Fail(const std::string& message);
  bool WriteSegment(uint8_t tag, const std::string& payload);

  std::ofstream os_;
  std::string path_;
  Options options_;
  uint64_t offset_ = 0;  // Bytes written so far == current file size.
  uint64_t file_count_ = 0;
  uint64_t peer_count_ = 0;
  uint64_t file_table_offset_ = 0;
  uint64_t peer_table_offset_ = 0;
  std::vector<DayEntry> days_;
  std::string error_;

  // In-flight day state.
  bool day_open_ = false;
  int day_ = 0;
  std::vector<uint32_t> day_peers_;
  std::vector<uint32_t> day_sizes_;
  std::vector<uint32_t> day_entries_;
};

}  // namespace edk::stream

#endif  // SRC_TRACE_STREAM_TRACE_WRITER_H_
