#include "src/trace/stream/trace_writer.h"

#include <unistd.h>

#include <algorithm>

#include "src/trace/stream/format.h"

namespace edk::stream {

namespace {

// Chunked table emission keeps the transient encoding buffer at ~1 MB even
// for a 10M-row peer table (a monolithic payload string would briefly cost
// hundreds of MB — real memory on the 10M-peer out-of-core runs).
constexpr size_t kTableChunkBytes = 1 << 20;

void AppendFileRow(std::string& out, const FileMeta& meta) {
  AppendU64(out, meta.size_bytes);
  out.push_back(static_cast<char>(static_cast<uint8_t>(meta.category)));
  AppendU32(out, meta.topic.value);
}

void AppendPeerRow(std::string& out, const PeerInfo& info) {
  AppendU32(out, info.country.value);
  AppendU32(out, info.autonomous_system.value);
  AppendU32(out, info.ip_address);
  AppendU64(out, info.user_id);
  out.push_back(static_cast<char>(info.firewalled ? 1 : 0));
}

}  // namespace

std::optional<int> TraceWriter::last_day() const {
  if (days_.empty()) {
    return std::nullopt;
  }
  return days_.back().day;
}

bool TraceWriter::Fail(const std::string& message) {
  if (error_.empty()) {
    error_ = message;
  }
  return false;
}

bool TraceWriter::WriteSegment(uint8_t tag, const std::string& payload) {
  std::string header;
  header.push_back(static_cast<char>(tag));
  AppendU64(header, payload.size());
  os_.write(header.data(), static_cast<std::streamsize>(header.size()));
  os_.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  if (!os_.good()) {
    return Fail("write failed at offset " + std::to_string(offset_));
  }
  offset_ += header.size() + payload.size();
  return true;
}

std::optional<TraceWriter> TraceWriter::Create(const std::string& path,
                                               std::span<const FileMeta> files,
                                               std::span<const PeerInfo> peers,
                                               std::string* error,
                                               const Options& options) {
  const auto fail = [&](const std::string& message) -> std::optional<TraceWriter> {
    if (error != nullptr) {
      *error = message;
    }
    return std::nullopt;
  };
  if (files.size() > 0xffffffffu || peers.size() > 0xffffffffu) {
    return fail("table larger than the 32-bit id space");
  }
  TraceWriter writer;
  writer.path_ = path;
  writer.options_ = options;
  writer.file_count_ = files.size();
  writer.peer_count_ = peers.size();
  writer.os_.open(path, std::ios::binary | std::ios::trunc);
  if (!writer.os_) {
    return fail("cannot open '" + path + "' for writing");
  }

  std::string buffer;
  AppendU32(buffer, kMagicV2);
  AppendU32(buffer, kVersionV2);
  writer.os_.write(buffer.data(), static_cast<std::streamsize>(buffer.size()));
  writer.offset_ = buffer.size();

  // Tables are written as one segment each but encoded in bounded chunks.
  const auto write_table = [&](uint8_t tag, uint64_t count, uint64_t row_bytes,
                               auto&& append_row) {
    writer.os_.put(static_cast<char>(tag));
    buffer.clear();
    AppendU64(buffer, 8 + count * row_bytes);  // Segment payload size.
    AppendU64(buffer, count);                  // Leading count field.
    writer.os_.write(buffer.data(), static_cast<std::streamsize>(buffer.size()));
    buffer.clear();
    for (uint64_t i = 0; i < count; ++i) {
      append_row(buffer, i);
      if (buffer.size() >= kTableChunkBytes) {
        writer.os_.write(buffer.data(), static_cast<std::streamsize>(buffer.size()));
        buffer.clear();
      }
    }
    writer.os_.write(buffer.data(), static_cast<std::streamsize>(buffer.size()));
    buffer.clear();
    const uint64_t segment_offset = writer.offset_;
    writer.offset_ += kSegmentHeaderBytes + 8 + count * row_bytes;
    return segment_offset;
  };
  writer.file_table_offset_ =
      write_table(kTagFileTable, files.size(), kFileRowBytes,
                  [&](std::string& out, uint64_t i) { AppendFileRow(out, files[i]); });
  writer.peer_table_offset_ =
      write_table(kTagPeerTable, peers.size(), kPeerRowBytes,
                  [&](std::string& out, uint64_t i) { AppendPeerRow(out, peers[i]); });
  writer.os_.flush();
  if (!writer.os_.good()) {
    return fail("write failed while emitting tables to '" + path + "'");
  }
  return writer;
}

std::optional<TraceWriter> TraceWriter::Resume(const std::string& path,
                                               std::span<const FileMeta> files,
                                               std::span<const PeerInfo> peers,
                                               std::string* error,
                                               const Options& options) {
  const auto fail = [&](const std::string& message) -> std::optional<TraceWriter> {
    if (error != nullptr) {
      *error = message;
    }
    return std::nullopt;
  };

  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return fail("cannot open '" + path + "' for resume");
  }
  in.seekg(0, std::ios::end);
  const uint64_t size = static_cast<uint64_t>(in.tellg());
  in.seekg(0);
  uint8_t header[kHeaderBytes];
  if (size < kHeaderBytes ||
      !in.read(reinterpret_cast<char*>(header), kHeaderBytes) ||
      LoadU32(header) != kMagicV2 || LoadU32(header + 4) != kVersionV2) {
    return fail("'" + path + "' is not an EDKT v2 file");
  }

  TraceWriter writer;
  writer.path_ = path;
  writer.options_ = options;
  writer.file_count_ = files.size();
  writer.peer_count_ = peers.size();

  // Scan complete segments; stop at the first partial/corrupt one or at a
  // stale footer. Everything after the stop point is truncated away.
  uint64_t offset = kHeaderBytes;
  uint64_t valid_end = offset;
  int stage = 0;  // 0 = expect file table, 1 = expect peer table, 2 = days.
  std::string payload;
  DecodeArena arena;
  while (offset + kSegmentHeaderBytes <= size) {
    uint8_t segment_header[kSegmentHeaderBytes];
    in.seekg(static_cast<std::streamoff>(offset));
    if (!in.read(reinterpret_cast<char*>(segment_header), kSegmentHeaderBytes)) {
      break;
    }
    const uint8_t tag = segment_header[0];
    const uint64_t payload_bytes = LoadU64(segment_header + 1);
    if (payload_bytes > size - offset - kSegmentHeaderBytes) {
      break;  // Partial tail segment.
    }
    if (tag == kTagFooter) {
      break;  // Stale footer: drop it, Finish() rewrites it.
    }
    const uint64_t expected_table =
        stage == 0 ? 8 + files.size() * kFileRowBytes
                   : 8 + peers.size() * kPeerRowBytes;
    if (stage < 2) {
      const uint8_t expected_tag = stage == 0 ? kTagFileTable : kTagPeerTable;
      uint8_t count_bytes[8];
      if (tag != expected_tag || payload_bytes != expected_table ||
          !in.read(reinterpret_cast<char*>(count_bytes), 8) ||
          LoadU64(count_bytes) != (stage == 0 ? files.size() : peers.size())) {
        return fail("'" + path + "' tables do not match the catalog being resumed");
      }
      if (stage == 0) {
        writer.file_table_offset_ = offset;
      } else {
        writer.peer_table_offset_ = offset;
      }
      ++stage;
    } else if (tag == kTagDay || tag == kTagDayBlocked) {
      payload.resize(payload_bytes);
      if (!in.read(payload.data(), static_cast<std::streamsize>(payload_bytes))) {
        break;
      }
      const uint8_t* p = reinterpret_cast<const uint8_t*>(payload.data());
      const uint8_t* end = p + payload_bytes;
      // Deep validation: the last segment before a crash may be complete at
      // the framing level but torn inside. Blocks are self-delimiting, so a
      // blocked segment's directory (per-block snapshot counts, sizes and
      // checksums — the footer was dropped or never written) is rebuilt
      // from the same pass.
      DayEntry entry;
      entry.offset = offset;
      uint64_t floor = 0;
      bool torn = false;
      bool first = true;
      while (true) {
        const uint8_t* block_begin = p;
        DayHeader block_header;
        uint32_t last = 0;
        if (!DecodeDayBlock(p, end, peers.size(), files.size(), floor, arena,
                            [](uint32_t, const uint32_t*, size_t) {},
                            &block_header, &last)) {
          torn = true;
          break;
        }
        if (first) {
          entry.day = block_header.day;
          first = false;
        } else if (block_header.day != entry.day) {
          torn = true;
          break;
        }
        if (tag == kTagDayBlocked) {
          const uint64_t block_bytes = static_cast<uint64_t>(p - block_begin);
          entry.blocks.push_back(BlockEntry{
              block_header.snapshots, block_bytes,
              HashBytes64(block_begin, static_cast<size_t>(block_bytes))});
        }
        entry.snapshots += block_header.snapshots;
        entry.file_entries += block_header.file_entries;
        if (block_header.snapshots > 0) {
          floor = static_cast<uint64_t>(last) + 1;
        }
        if (p == end) {
          break;
        }
        if (tag == kTagDay) {
          torn = true;  // Trailing bytes after a block-less day payload.
          break;
        }
      }
      if (torn) {
        break;
      }
      if (!writer.days_.empty() && entry.day <= writer.days_.back().day) {
        break;
      }
      writer.days_.push_back(std::move(entry));
    } else {
      break;  // Unknown tag: treat as a torn tail.
    }
    offset += kSegmentHeaderBytes + payload_bytes;
    valid_end = offset;
  }
  in.close();
  if (stage < 2) {
    return fail("'" + path + "' has no complete file/peer tables to resume from");
  }

  if (valid_end < size && ::truncate(path.c_str(), static_cast<off_t>(valid_end)) != 0) {
    return fail("cannot truncate '" + path + "' to its valid prefix");
  }
  writer.os_.open(path, std::ios::binary | std::ios::in | std::ios::out);
  if (!writer.os_) {
    return fail("cannot re-open '" + path + "' for appending");
  }
  writer.os_.seekp(static_cast<std::streamoff>(valid_end));
  writer.offset_ = valid_end;
  return writer;
}

bool TraceWriter::BeginDay(int day) {
  if (!ok()) {
    return false;
  }
  if (day_open_) {
    return Fail("BeginDay while a day is already open");
  }
  if (day < 0 || static_cast<uint64_t>(day) > kMaxTraceDay) {
    return Fail("day " + std::to_string(day) + " out of range");
  }
  if (const auto last = last_day(); last.has_value() && day <= *last) {
    return Fail("day " + std::to_string(day) + " not after day " +
                std::to_string(*last));
  }
  day_open_ = true;
  day_ = day;
  day_peers_.clear();
  day_sizes_.clear();
  day_entries_.clear();
  return true;
}

bool TraceWriter::AddSnapshot(uint32_t peer, std::span<const uint32_t> files) {
  if (!ok()) {
    return false;
  }
  if (!day_open_) {
    return Fail("AddSnapshot outside BeginDay/EndDay");
  }
  if (peer >= peer_count_ || (!day_peers_.empty() && peer <= day_peers_.back())) {
    return Fail("snapshot peers must be strictly ascending and in range");
  }
  uint64_t previous = 0;
  for (size_t i = 0; i < files.size(); ++i) {
    if (files[i] >= file_count_ || (i > 0 && files[i] <= previous)) {
      return Fail("snapshot file ids must be strictly ascending and in range");
    }
    previous = files[i];
  }
  day_peers_.push_back(peer);
  day_sizes_.push_back(static_cast<uint32_t>(files.size()));
  day_entries_.insert(day_entries_.end(), files.begin(), files.end());
  return true;
}

bool TraceWriter::EndDay() {
  if (!ok()) {
    return false;
  }
  if (!day_open_) {
    return Fail("EndDay without BeginDay");
  }
  std::string payload;
  payload.reserve(8 + day_peers_.size() * 2 + day_entries_.size() * 2);
  std::vector<BlockEntry> blocks;
  uint8_t tag = kTagDay;
  if (options_.block_target_bytes == 0) {
    EncodeDayPayload(payload, day_, day_peers_, day_sizes_, day_entries_);
  } else {
    tag = kTagDayBlocked;
    EncodeDayBlocks(payload, day_, day_peers_, day_sizes_, day_entries_,
                    options_.block_target_bytes, blocks);
  }
  const uint64_t segment_offset = offset_;
  if (!WriteSegment(tag, payload)) {
    return false;
  }
  // Flush per day: a killed run leaves complete, resumable segments.
  os_.flush();
  if (!os_.good()) {
    return Fail("flush failed after day " + std::to_string(day_));
  }
  days_.push_back(DayEntry{day_, segment_offset, day_peers_.size(),
                           day_entries_.size(), std::move(blocks)});
  day_open_ = false;
  return true;
}

bool TraceWriter::Finish() {
  if (!ok()) {
    return false;
  }
  if (day_open_) {
    return Fail("Finish with an open day");
  }
  std::string payload;
  AppendU64(payload, file_count_);
  AppendU64(payload, peer_count_);
  AppendU64(payload, file_table_offset_);
  AppendU64(payload, peer_table_offset_);
  wire::AppendVarint(payload, days_.size());
  for (const DayEntry& entry : days_) {
    wire::AppendVarint(payload, wire::ZigZagEncode(entry.day));
    AppendU64(payload, entry.offset);
    wire::AppendVarint(payload, entry.snapshots);
    wire::AppendVarint(payload, entry.file_entries);
    // Blocked days (tag 0x04 — the reader keys off the segment tag, so
    // block-less footers stay byte-identical to PR 7) append their block
    // directory right after the index entry.
    if (!entry.blocks.empty()) {
      wire::AppendVarint(payload, entry.blocks.size());
      for (const BlockEntry& block : entry.blocks) {
        wire::AppendVarint(payload, block.snapshots);
        wire::AppendVarint(payload, block.bytes);
        AppendU64(payload, block.checksum);
      }
    }
  }
  const uint64_t footer_offset = offset_;
  if (!WriteSegment(kTagFooter, payload)) {
    return false;
  }
  std::string trailer;
  AppendU64(trailer, footer_offset);
  AppendU32(trailer, kTrailerMagic);
  os_.write(trailer.data(), static_cast<std::streamsize>(trailer.size()));
  offset_ += trailer.size();
  // The same flush-then-close verification as SaveTraceToFile: a full disk
  // must not be reported as a finished trace.
  os_.flush();
  if (!os_.good()) {
    return Fail("flush failed while finishing");
  }
  os_.close();
  if (!os_.good()) {
    return Fail("close failed while finishing");
  }
  return true;
}

}  // namespace edk::stream
