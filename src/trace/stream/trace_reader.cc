#include "src/trace/stream/trace_reader.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <utility>

namespace edk::stream {

TraceReader& TraceReader::operator=(TraceReader&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) {
      ::munmap(const_cast<uint8_t*>(data_), size_);
    }
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    file_count_ = other.file_count_;
    peer_count_ = other.peer_count_;
    file_rows_offset_ = other.file_rows_offset_;
    peer_rows_offset_ = other.peer_rows_offset_;
    days_ = std::move(other.days_);
  }
  return *this;
}

TraceReader::~TraceReader() {
  if (data_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(data_), size_);
  }
}

std::optional<TraceReader> TraceReader::Open(const std::string& path,
                                             std::string* error) {
  const auto fail = [&](const std::string& message) -> std::optional<TraceReader> {
    if (error != nullptr) {
      *error = "'" + path + "': " + message;
    }
    return std::nullopt;
  };

  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return fail("cannot open");
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    return fail("cannot stat");
  }
  const uint64_t size = static_cast<uint64_t>(st.st_size);
  // Smallest valid file: header, two empty tables, empty-day footer, trailer.
  const uint64_t min_size = kHeaderBytes + 2 * (kSegmentHeaderBytes + 8) +
                            kSegmentHeaderBytes + 33 + kTrailerBytes;
  if (size < min_size) {
    ::close(fd);
    return fail("too small to be an EDKT v2 file");
  }
  void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // The mapping keeps the file alive.
  if (map == MAP_FAILED) {
    return fail("mmap failed");
  }

  TraceReader reader;
  reader.data_ = static_cast<const uint8_t*>(map);
  reader.size_ = size;
  const uint8_t* data = reader.data_;

  if (LoadU32(data) != kMagicV2 || LoadU32(data + 4) != kVersionV2) {
    return fail(LoadU32(data) == kMagicV1
                    ? "EDKT v1 file (use convert, or LoadAnyTraceFromFile)"
                    : "bad magic/version");
  }
  if (LoadU32(data + size - 4) != kTrailerMagic) {
    return fail("bad trailer magic (truncated or unfinished file?)");
  }
  const uint64_t footer_offset = LoadU64(data + size - kTrailerBytes);
  // Compare by subtraction: `footer_offset + kSegmentHeaderBytes` can wrap
  // for adversarial offsets near UINT64_MAX and sneak past the bound.
  if (footer_offset < kHeaderBytes ||
      footer_offset > size - kTrailerBytes - kSegmentHeaderBytes) {
    return fail("footer offset out of range");
  }
  if (data[footer_offset] != kTagFooter) {
    return fail("trailer does not point at a footer segment");
  }
  const uint64_t footer_bytes = LoadU64(data + footer_offset + 1);
  // The footer must run exactly up to the trailer: trailing junk between
  // them would mean the trailer belongs to some other write.
  if (footer_bytes != size - kTrailerBytes - footer_offset - kSegmentHeaderBytes) {
    return fail("footer size does not reach the trailer");
  }

  const uint8_t* p = data + footer_offset + kSegmentHeaderBytes;
  const uint8_t* end = p + footer_bytes;
  if (footer_bytes < 33) {  // 4 x u64 + >= 1 varint byte.
    return fail("footer too small");
  }
  reader.file_count_ = LoadU64(p);
  reader.peer_count_ = LoadU64(p + 8);
  const uint64_t file_table_offset = LoadU64(p + 16);
  const uint64_t peer_table_offset = LoadU64(p + 24);
  p += 32;
  if (reader.file_count_ > 0xffffffffu || reader.peer_count_ > 0xffffffffu) {
    return fail("table count exceeds the 32-bit id space");
  }

  // Validate a table segment in place and return the offset of its first row.
  const auto check_table = [&](uint64_t offset, uint8_t tag, uint64_t count,
                               uint64_t row_bytes, uint64_t& rows_offset) {
    const uint64_t payload = 8 + count * row_bytes;
    if (offset < kHeaderBytes || offset >= footer_offset ||
        footer_offset - offset < kSegmentHeaderBytes ||
        payload > footer_offset - offset - kSegmentHeaderBytes) {
      return false;
    }
    if (data[offset] != tag || LoadU64(data + offset + 1) != payload ||
        LoadU64(data + offset + kSegmentHeaderBytes) != count) {
      return false;
    }
    rows_offset = offset + kSegmentHeaderBytes + 8;
    return true;
  };
  if (!check_table(file_table_offset, kTagFileTable, reader.file_count_,
                   kFileRowBytes, reader.file_rows_offset_)) {
    return fail("file table does not match the footer");
  }
  if (!check_table(peer_table_offset, kTagPeerTable, reader.peer_count_,
                   kPeerRowBytes, reader.peer_rows_offset_)) {
    return fail("peer table does not match the footer");
  }
  // The v1 loader rejects unknown category bytes; the mmap path must not be
  // the one place a wild enum value can enter the system.
  for (uint64_t f = 0; f < reader.file_count_; ++f) {
    const uint8_t category = data[reader.file_rows_offset_ + f * kFileRowBytes + 8];
    if (category > static_cast<uint8_t>(FileCategory::kOther)) {
      return fail("file row with invalid category byte");
    }
  }

  uint64_t day_count = 0;
  if (!wire::ReadVarint(p, end, day_count) || day_count > kMaxTraceDay + 1 ||
      day_count > static_cast<uint64_t>(end - p) / 11) {
    // Each footer day entry is >= 11 bytes (1 + 8 + 1 + 1).
    return fail("footer day count not backed by the footer size");
  }
  reader.days_.reserve(day_count);
  int previous_day = -1;
  for (uint64_t i = 0; i < day_count; ++i) {
    uint64_t zz_day = 0;
    if (!wire::ReadVarint(p, end, zz_day) || end - p < 8) {
      return fail("truncated footer day entry");
    }
    const int64_t day = wire::ZigZagDecode(zz_day);
    const uint64_t offset = LoadU64(p);
    p += 8;
    uint64_t snapshots = 0;
    uint64_t entries = 0;
    if (!wire::ReadVarint(p, end, snapshots) ||
        !wire::ReadVarint(p, end, entries)) {
      return fail("truncated footer day entry");
    }
    if (day < 0 || day > static_cast<int64_t>(kMaxTraceDay) ||
        static_cast<int64_t>(previous_day) >= day) {
      return fail("footer days not strictly increasing in range");
    }
    if (offset < kHeaderBytes || offset >= footer_offset ||
        footer_offset - offset < kSegmentHeaderBytes) {
      return fail("footer day offset out of range");
    }
    if (data[offset] != kTagDay) {
      return fail("footer day entry does not point at a day segment");
    }
    const uint64_t payload_bytes = LoadU64(data + offset + 1);
    if (payload_bytes > footer_offset - offset - kSegmentHeaderBytes) {
      return fail("day segment overruns the footer");
    }
    // Cross-check the segment's own header against the index entry; full
    // payload decoding stays deferred to ReadDay/ForEachSnapshot.
    const uint8_t* dp = data + offset + kSegmentHeaderBytes;
    DayHeader header;
    if (!ParseDayHeader(dp, dp + payload_bytes, reader.peer_count_, header) ||
        header.day != static_cast<int>(day) || header.snapshots != snapshots ||
        header.file_entries != entries) {
      return fail("day segment header disagrees with the footer");
    }
    reader.days_.push_back(DayInfo{static_cast<int>(day),
                                   offset + kSegmentHeaderBytes, payload_bytes,
                                   snapshots, entries});
    previous_day = static_cast<int>(day);
  }
  if (p != end) {
    return fail("trailing bytes in the footer");
  }
  return reader;
}

const TraceReader::DayInfo* TraceReader::FindDay(int day) const {
  const auto it = std::lower_bound(
      days_.begin(), days_.end(), day,
      [](const DayInfo& info, int d) { return info.day < d; });
  if (it == days_.end() || it->day != day) {
    return nullptr;
  }
  return &*it;
}

FileMeta TraceReader::FileAt(uint32_t f) const {
  const uint8_t* row = data_ + file_rows_offset_ + f * kFileRowBytes;
  FileMeta meta;
  meta.size_bytes = LoadU64(row);
  meta.category = static_cast<FileCategory>(row[8]);  // Validated at Open.
  meta.topic = TopicId(LoadU32(row + 9));
  return meta;
}

PeerInfo TraceReader::PeerAt(uint32_t p) const {
  const uint8_t* row = data_ + peer_rows_offset_ + p * kPeerRowBytes;
  PeerInfo info;
  info.country = CountryId(LoadU32(row));
  info.autonomous_system = AsId(LoadU32(row + 4));
  info.ip_address = LoadU32(row + 8);
  info.user_id = LoadU64(row + 12);
  info.firewalled = row[20] != 0;
  return info;
}

std::vector<FileMeta> TraceReader::Files() const {
  std::vector<FileMeta> files;
  files.reserve(file_count_);
  for (uint64_t f = 0; f < file_count_; ++f) {
    files.push_back(FileAt(static_cast<uint32_t>(f)));
  }
  return files;
}

std::vector<PeerInfo> TraceReader::Peers() const {
  std::vector<PeerInfo> peers;
  peers.reserve(peer_count_);
  for (uint64_t p = 0; p < peer_count_; ++p) {
    peers.push_back(PeerAt(static_cast<uint32_t>(p)));
  }
  return peers;
}

std::optional<TraceReader::DayCaches> TraceReader::ReadDay(
    const DayInfo& info, std::string* error) const {
  DayCaches result;
  result.day = info.day;
  result.peers.reserve(info.snapshots);
  std::vector<uint32_t> flat;
  flat.reserve(info.file_entries);
  std::vector<size_t> offsets;
  offsets.reserve(peer_count_ + 1);
  offsets.push_back(0);
  std::vector<uint32_t> scratch;
  const bool ok = ForEachSnapshot(
      info, scratch, [&](uint32_t peer, const uint32_t* files, size_t count) {
        // Empty rows for the peers not observed since the previous snapshot.
        while (offsets.size() < static_cast<size_t>(peer) + 1) {
          offsets.push_back(flat.size());
        }
        flat.insert(flat.end(), files, files + count);
        offsets.push_back(flat.size());
        result.peers.push_back(peer);
      });
  if (!ok) {
    if (error != nullptr) {
      *error = "corrupt day segment for day " + std::to_string(info.day);
    }
    return std::nullopt;
  }
  while (offsets.size() < peer_count_ + 1) {
    offsets.push_back(flat.size());
  }
  result.store = CacheStore::FromCsr(std::move(flat), std::move(offsets));
  return result;
}

}  // namespace edk::stream
