#include "src/trace/stream/trace_reader.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <utility>

#include "src/exec/parallel.h"
#include "src/trace/stream/parallel_scan.h"

namespace edk::stream {

TraceReader& TraceReader::operator=(TraceReader&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) {
      ::munmap(const_cast<uint8_t*>(data_), size_);
    }
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    file_count_ = other.file_count_;
    peer_count_ = other.peer_count_;
    file_rows_offset_ = other.file_rows_offset_;
    peer_rows_offset_ = other.peer_rows_offset_;
    days_ = std::move(other.days_);
  }
  return *this;
}

TraceReader::~TraceReader() {
  if (data_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(data_), size_);
  }
}

std::optional<TraceReader> TraceReader::Open(const std::string& path,
                                             std::string* error) {
  const auto fail = [&](const std::string& message) -> std::optional<TraceReader> {
    if (error != nullptr) {
      *error = "'" + path + "': " + message;
    }
    return std::nullopt;
  };

  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return fail("cannot open");
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    return fail("cannot stat");
  }
  const uint64_t size = static_cast<uint64_t>(st.st_size);
  // Smallest valid file: header, two empty tables, empty-day footer, trailer.
  const uint64_t min_size = kHeaderBytes + 2 * (kSegmentHeaderBytes + 8) +
                            kSegmentHeaderBytes + 33 + kTrailerBytes;
  if (size < min_size) {
    ::close(fd);
    return fail("too small to be an EDKT v2 file");
  }
  void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // The mapping keeps the file alive.
  if (map == MAP_FAILED) {
    return fail("mmap failed");
  }

  TraceReader reader;
  reader.data_ = static_cast<const uint8_t*>(map);
  reader.size_ = size;
  const uint8_t* data = reader.data_;

  if (LoadU32(data) != kMagicV2 || LoadU32(data + 4) != kVersionV2) {
    return fail(LoadU32(data) == kMagicV1
                    ? "EDKT v1 file (use convert, or LoadAnyTraceFromFile)"
                    : "bad magic/version");
  }
  if (LoadU32(data + size - 4) != kTrailerMagic) {
    return fail("bad trailer magic (truncated or unfinished file?)");
  }
  const uint64_t footer_offset = LoadU64(data + size - kTrailerBytes);
  // Compare by subtraction: `footer_offset + kSegmentHeaderBytes` can wrap
  // for adversarial offsets near UINT64_MAX and sneak past the bound.
  if (footer_offset < kHeaderBytes ||
      footer_offset > size - kTrailerBytes - kSegmentHeaderBytes) {
    return fail("footer offset out of range");
  }
  if (data[footer_offset] != kTagFooter) {
    return fail("trailer does not point at a footer segment");
  }
  const uint64_t footer_bytes = LoadU64(data + footer_offset + 1);
  // The footer must run exactly up to the trailer: trailing junk between
  // them would mean the trailer belongs to some other write.
  if (footer_bytes != size - kTrailerBytes - footer_offset - kSegmentHeaderBytes) {
    return fail("footer size does not reach the trailer");
  }

  const uint8_t* p = data + footer_offset + kSegmentHeaderBytes;
  const uint8_t* end = p + footer_bytes;
  if (footer_bytes < 33) {  // 4 x u64 + >= 1 varint byte.
    return fail("footer too small");
  }
  reader.file_count_ = LoadU64(p);
  reader.peer_count_ = LoadU64(p + 8);
  const uint64_t file_table_offset = LoadU64(p + 16);
  const uint64_t peer_table_offset = LoadU64(p + 24);
  p += 32;
  if (reader.file_count_ > 0xffffffffu || reader.peer_count_ > 0xffffffffu) {
    return fail("table count exceeds the 32-bit id space");
  }

  // Validate a table segment in place and return the offset of its first row.
  const auto check_table = [&](uint64_t offset, uint8_t tag, uint64_t count,
                               uint64_t row_bytes, uint64_t& rows_offset) {
    const uint64_t payload = 8 + count * row_bytes;
    if (offset < kHeaderBytes || offset >= footer_offset ||
        footer_offset - offset < kSegmentHeaderBytes ||
        payload > footer_offset - offset - kSegmentHeaderBytes) {
      return false;
    }
    if (data[offset] != tag || LoadU64(data + offset + 1) != payload ||
        LoadU64(data + offset + kSegmentHeaderBytes) != count) {
      return false;
    }
    rows_offset = offset + kSegmentHeaderBytes + 8;
    return true;
  };
  if (!check_table(file_table_offset, kTagFileTable, reader.file_count_,
                   kFileRowBytes, reader.file_rows_offset_)) {
    return fail("file table does not match the footer");
  }
  if (!check_table(peer_table_offset, kTagPeerTable, reader.peer_count_,
                   kPeerRowBytes, reader.peer_rows_offset_)) {
    return fail("peer table does not match the footer");
  }
  // The v1 loader rejects unknown category bytes; the mmap path must not be
  // the one place a wild enum value can enter the system.
  for (uint64_t f = 0; f < reader.file_count_; ++f) {
    const uint8_t category = data[reader.file_rows_offset_ + f * kFileRowBytes + 8];
    if (category > static_cast<uint8_t>(FileCategory::kOther)) {
      return fail("file row with invalid category byte");
    }
  }

  uint64_t day_count = 0;
  if (!wire::ReadVarint(p, end, day_count) || day_count > kMaxTraceDay + 1 ||
      day_count > static_cast<uint64_t>(end - p) / 11) {
    // Each footer day entry is >= 11 bytes (1 + 8 + 1 + 1).
    return fail("footer day count not backed by the footer size");
  }
  reader.days_.reserve(day_count);
  int previous_day = -1;
  for (uint64_t i = 0; i < day_count; ++i) {
    uint64_t zz_day = 0;
    if (!wire::ReadVarint(p, end, zz_day) || end - p < 8) {
      return fail("truncated footer day entry");
    }
    const int64_t day = wire::ZigZagDecode(zz_day);
    const uint64_t offset = LoadU64(p);
    p += 8;
    uint64_t snapshots = 0;
    uint64_t entries = 0;
    if (!wire::ReadVarint(p, end, snapshots) ||
        !wire::ReadVarint(p, end, entries)) {
      return fail("truncated footer day entry");
    }
    if (day < 0 || day > static_cast<int64_t>(kMaxTraceDay) ||
        static_cast<int64_t>(previous_day) >= day) {
      return fail("footer days not strictly increasing in range");
    }
    if (offset < kHeaderBytes || offset >= footer_offset ||
        footer_offset - offset < kSegmentHeaderBytes) {
      return fail("footer day offset out of range");
    }
    const uint8_t tag = data[offset];
    if (tag != kTagDay && tag != kTagDayBlocked) {
      return fail("footer day entry does not point at a day segment");
    }
    const uint64_t payload_bytes = LoadU64(data + offset + 1);
    if (payload_bytes > footer_offset - offset - kSegmentHeaderBytes) {
      return fail("day segment overruns the footer");
    }
    DayInfo info{static_cast<int>(day), offset + kSegmentHeaderBytes,
                 payload_bytes, snapshots, entries, {}};
    if (tag == kTagDay) {
      // Cross-check the segment's own header against the index entry; full
      // payload decoding stays deferred to ReadDay/ForEachSnapshot.
      const uint8_t* dp = data + offset + kSegmentHeaderBytes;
      DayHeader header;
      if (!ParseDayHeader(dp, dp + payload_bytes, reader.peer_count_, header) ||
          header.day != static_cast<int>(day) || header.snapshots != snapshots ||
          header.file_entries != entries) {
        return fail("day segment header disagrees with the footer");
      }
    } else {
      // Blocked day: the index entry carries the block directory. Validate
      // that the blocks tile the payload exactly and that every block's own
      // header agrees with its directory entry (payload decoding and
      // checksum verification stay deferred).
      uint64_t block_count = 0;
      // Each directory entry is >= 10 bytes (1 + 1 + 8).
      if (!wire::ReadVarint(p, end, block_count) || block_count == 0 ||
          block_count > static_cast<uint64_t>(end - p) / 10) {
        return fail("footer block count not backed by the footer size");
      }
      info.blocks.reserve(block_count);
      uint64_t cursor = info.payload_offset;
      uint64_t bytes_left = payload_bytes;
      uint64_t sum_snapshots = 0;
      uint64_t sum_entries = 0;
      for (uint64_t b = 0; b < block_count; ++b) {
        uint64_t block_snapshots = 0;
        uint64_t block_bytes = 0;
        if (!wire::ReadVarint(p, end, block_snapshots) ||
            !wire::ReadVarint(p, end, block_bytes) || end - p < 8) {
          return fail("truncated footer block entry");
        }
        const uint64_t checksum = LoadU64(p);
        p += 8;
        if (block_bytes > bytes_left) {
          return fail("block directory overruns its day segment");
        }
        const uint8_t* bp = data + cursor;
        DayHeader header;
        if (!ParseDayHeader(bp, bp + block_bytes, reader.peer_count_, header) ||
            header.day != static_cast<int>(day) ||
            header.snapshots != block_snapshots) {
          return fail("block header disagrees with the footer directory");
        }
        sum_snapshots += block_snapshots;
        sum_entries += header.file_entries;
        info.blocks.push_back(BlockInfo{cursor, block_bytes, block_snapshots,
                                        header.file_entries, checksum});
        cursor += block_bytes;
        bytes_left -= block_bytes;
      }
      if (bytes_left != 0 || sum_snapshots != snapshots ||
          sum_entries != entries) {
        return fail("block directory disagrees with the day index entry");
      }
    }
    reader.days_.push_back(std::move(info));
    previous_day = static_cast<int>(day);
  }
  if (p != end) {
    return fail("trailing bytes in the footer");
  }
  return reader;
}

const TraceReader::DayInfo* TraceReader::FindDay(int day) const {
  const auto it = std::lower_bound(
      days_.begin(), days_.end(), day,
      [](const DayInfo& info, int d) { return info.day < d; });
  if (it == days_.end() || it->day != day) {
    return nullptr;
  }
  return &*it;
}

FileMeta TraceReader::FileAt(uint32_t f) const {
  const uint8_t* row = data_ + file_rows_offset_ + f * kFileRowBytes;
  FileMeta meta;
  meta.size_bytes = LoadU64(row);
  meta.category = static_cast<FileCategory>(row[8]);  // Validated at Open.
  meta.topic = TopicId(LoadU32(row + 9));
  return meta;
}

PeerInfo TraceReader::PeerAt(uint32_t p) const {
  const uint8_t* row = data_ + peer_rows_offset_ + p * kPeerRowBytes;
  PeerInfo info;
  info.country = CountryId(LoadU32(row));
  info.autonomous_system = AsId(LoadU32(row + 4));
  info.ip_address = LoadU32(row + 8);
  info.user_id = LoadU64(row + 12);
  info.firewalled = row[20] != 0;
  return info;
}

std::vector<FileMeta> TraceReader::Files() const {
  std::vector<FileMeta> files;
  files.reserve(file_count_);
  for (uint64_t f = 0; f < file_count_; ++f) {
    files.push_back(FileAt(static_cast<uint32_t>(f)));
  }
  return files;
}

std::vector<PeerInfo> TraceReader::Peers() const {
  std::vector<PeerInfo> peers;
  peers.reserve(peer_count_);
  for (uint64_t p = 0; p < peer_count_; ++p) {
    peers.push_back(PeerAt(static_cast<uint32_t>(p)));
  }
  return peers;
}

std::optional<TraceReader::DayCaches> TraceReader::ReadDay(
    const DayInfo& info, std::string* error) const {
  const auto fail = [&]() -> std::optional<DayCaches> {
    if (error != nullptr) {
      *error = "corrupt day segment for day " + std::to_string(info.day);
    }
    return std::nullopt;
  };
  DayCaches result;
  result.day = info.day;
  if (info.blocks.size() >= 2 && DefaultThreads() > 1) {
    // Block-parallel fill. The footer block directory gives every block's
    // snapshot and entry counts up front, so each block owns a disjoint
    // slice of the observed-peer, size and flat-entry arrays — the filled
    // contents are position-identical to the serial decode by construction.
    result.peers.resize(info.snapshots);
    std::vector<uint32_t> sizes(info.snapshots);
    std::vector<uint32_t> flat(info.file_entries);
    std::vector<uint64_t> snap_base(info.blocks.size(), 0);
    std::vector<uint64_t> entry_base(info.blocks.size(), 0);
    for (size_t b = 1; b < info.blocks.size(); ++b) {
      snap_base[b] = snap_base[b - 1] + info.blocks[b - 1].snapshots;
      entry_base[b] = entry_base[b - 1] + info.blocks[b - 1].file_entries;
    }
    std::vector<uint8_t> ok(info.blocks.size(), 0);
    ArenaPool arenas;
    ParallelFor(0, info.blocks.size(), [&](size_t b) {
      ArenaPool::Lease arena(arenas);
      // Open pinned each block's header against the footer directory, so
      // the decode fills its slice exactly — but the mapped bytes can
      // change under us on disk, so the slice bounds are re-checked before
      // every write rather than trusted.
      const uint64_t snap_limit = snap_base[b] + info.blocks[b].snapshots;
      const uint64_t entry_limit = entry_base[b] + info.blocks[b].file_entries;
      uint64_t snap = snap_base[b];
      uint64_t entry = entry_base[b];
      bool in_bounds = true;
      const bool decoded = ForEachSnapshotInBlock(
          info, b, *arena,
          [&](uint32_t peer, const uint32_t* files, size_t count) {
            if (snap >= snap_limit || count > entry_limit - entry) {
              in_bounds = false;
              return;
            }
            result.peers[snap] = peer;
            sizes[snap] = static_cast<uint32_t>(count);
            ++snap;
            std::copy(files, files + count, flat.begin() + entry);
            entry += count;
          });
      ok[b] = decoded && in_bounds && snap == snap_limit && entry == entry_limit;
    });
    for (size_t b = 0; b < info.blocks.size(); ++b) {
      if (ok[b] == 0) {
        return fail();
      }
    }
    // Cross-block peer ordering, in block order (the parallel decode could
    // not check it inline).
    for (uint64_t i = 1; i < info.snapshots; ++i) {
      if (result.peers[i] <= result.peers[i - 1]) {
        return fail();
      }
    }
    std::vector<size_t> offsets(peer_count_ + 1);
    size_t idx = 0;
    size_t acc = 0;
    for (uint64_t i = 0; i < info.snapshots; ++i) {
      const uint32_t peer = result.peers[i];
      while (idx <= peer) {
        offsets[idx++] = acc;
      }
      acc += sizes[i];
      offsets[idx++] = acc;
    }
    while (idx <= peer_count_) {
      offsets[idx++] = acc;
    }
    result.store = CacheStore::FromCsr(std::move(flat), std::move(offsets));
    return result;
  }
  result.peers.reserve(info.snapshots);
  std::vector<uint32_t> flat;
  flat.reserve(info.file_entries);
  std::vector<size_t> offsets;
  offsets.reserve(peer_count_ + 1);
  offsets.push_back(0);
  DecodeArena arena;
  const bool ok = ForEachSnapshot(
      info, arena, [&](uint32_t peer, const uint32_t* files, size_t count) {
        // Empty rows for the peers not observed since the previous snapshot.
        while (offsets.size() < static_cast<size_t>(peer) + 1) {
          offsets.push_back(flat.size());
        }
        flat.insert(flat.end(), files, files + count);
        offsets.push_back(flat.size());
        result.peers.push_back(peer);
      });
  if (!ok) {
    return fail();
  }
  while (offsets.size() < peer_count_ + 1) {
    offsets.push_back(flat.size());
  }
  result.store = CacheStore::FromCsr(std::move(flat), std::move(offsets));
  return result;
}

}  // namespace edk::stream
