// EDKT v2: the columnar on-disk trace format behind the out-of-core
// streaming pipeline (DESIGN.md §6h).
//
// Layout. A v2 file is a header, a sequence of length-prefixed segments,
// and a fixed-size trailer pointing at a footer segment:
//
//   header   : u32 magic "EDK2", u32 version = 2
//   segment  : u8 tag, u64 payload_bytes, payload
//     0x01 file table : u64 count, then `count` fixed 13-byte rows
//                       {u64 size_bytes, u8 category, u32 topic}
//     0x02 peer table : u64 count, then `count` fixed 21-byte rows
//                       {u32 country, u32 as, u32 ip, u64 user_id, u8 fw}
//     0x03 day segment: columnar snapshot data for ONE day (below)
//     0x7f footer     : the index (below)
//   trailer  : u64 footer_segment_offset, u32 magic "EDT2"
//
// Day segments are columnar: a small varint header (zigzag day, snapshot
// count n, total file entries), then three columns — peer ids (n varints,
// first absolute then strictly positive deltas), cache sizes (n varints),
// and the concatenated delta-varint file lists (the same encoding as EDKT
// v1 snapshot runs: previous starts at 0, deltas strictly positive after
// the first element). Fixed-width table rows make peer/file metadata
// random-accessible straight out of the mmap; everything per-day decodes
// with one bounded linear scan.
//
// The footer indexes every day segment (day, absolute offset, snapshot
// count, file entries) plus the table offsets and global counts, so a
// reader can open a multi-GB file, mmap it, and serve any single day
// without touching the rest. Writers emit segments append-only and write
// the footer last, which is what makes generation restartable: a crashed
// writer leaves a valid prefix of complete segments, and Resume() scans,
// truncates any partial tail, and continues.
//
// Every decode path validates against attacker-controlled input: counts
// are checked against the sizes of the regions that must back them before
// anything is allocated, days must be strictly increasing, peer and file
// ids strictly ascending and in range, and varints reject overlong
// encodings (shared rules with edk::wire).

#ifndef SRC_TRACE_STREAM_FORMAT_H_
#define SRC_TRACE_STREAM_FORMAT_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/varint.h"
#include "src/trace/serialize.h"  // kMaxTraceDay.

namespace edk::stream {

inline constexpr uint32_t kMagicV2 = 0x324b4445;    // "EDK2" little-endian.
inline constexpr uint32_t kTrailerMagic = 0x32544445;  // "EDT2".
inline constexpr uint32_t kVersionV2 = 2;
inline constexpr uint32_t kMagicV1 = 0x544b4445;    // "EDKT" (version 1).

inline constexpr uint8_t kTagFileTable = 0x01;
inline constexpr uint8_t kTagPeerTable = 0x02;
inline constexpr uint8_t kTagDay = 0x03;
inline constexpr uint8_t kTagFooter = 0x7f;

inline constexpr size_t kHeaderBytes = 8;            // magic + version.
inline constexpr size_t kSegmentHeaderBytes = 9;     // tag + payload size.
inline constexpr size_t kTrailerBytes = 12;          // footer offset + magic.
inline constexpr size_t kFileRowBytes = 13;
inline constexpr size_t kPeerRowBytes = 21;

// --- Little-endian fixed-width helpers (buffer variants) -------------------

inline void AppendU32(std::string& out, uint32_t v) {
  const char b[4] = {static_cast<char>(v), static_cast<char>(v >> 8),
                     static_cast<char>(v >> 16), static_cast<char>(v >> 24)};
  out.append(b, 4);
}

inline void AppendU64(std::string& out, uint64_t v) {
  AppendU32(out, static_cast<uint32_t>(v));
  AppendU32(out, static_cast<uint32_t>(v >> 32));
}

inline uint32_t LoadU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) | (static_cast<uint32_t>(p[3]) << 24);
}

inline uint64_t LoadU64(const uint8_t* p) {
  return static_cast<uint64_t>(LoadU32(p)) |
         (static_cast<uint64_t>(LoadU32(p + 4)) << 32);
}

// --- Day segment decoding ---------------------------------------------------

struct DayHeader {
  int day = 0;
  uint64_t snapshots = 0;     // Peers with a cache observation this day.
  uint64_t file_entries = 0;  // Sum of their cache sizes.
};

// Parses and validates the varint header of a day segment payload.
// `payload_bytes` is the segment's full payload size: snapshot and entry
// counts are rejected unless the remaining payload could actually hold
// them (each costs at least one byte), so no downstream allocation can
// exceed the segment's own on-disk size.
inline bool ParseDayHeader(const uint8_t*& p, const uint8_t* end,
                           uint64_t peer_count, DayHeader& out) {
  uint64_t zz_day = 0;
  uint64_t snapshots = 0;
  uint64_t entries = 0;
  if (!wire::ReadVarint(p, end, zz_day) || !wire::ReadVarint(p, end, snapshots) ||
      !wire::ReadVarint(p, end, entries)) {
    return false;
  }
  const int64_t day = wire::ZigZagDecode(zz_day);
  if (day < 0 || day > static_cast<int64_t>(kMaxTraceDay)) {
    return false;
  }
  const uint64_t remaining = static_cast<uint64_t>(end - p);
  // Peer-id and size columns cost >= 1 byte per snapshot each; every file
  // entry costs >= 1 byte. Snapshots are one observation per distinct peer.
  if (snapshots > peer_count || snapshots * 2 > remaining ||
      entries > remaining) {
    return false;
  }
  out.day = static_cast<int>(day);
  out.snapshots = snapshots;
  out.file_entries = entries;
  return true;
}

// Decodes the three columns of a day segment and calls
//   fn(uint32_t peer, const uint32_t* files, size_t count)
// once per snapshot, in ascending peer order. `scratch` holds the decoded
// file ids of the current snapshot (reused across calls; resized once to
// the largest cache). Returns false — possibly after some callbacks — on
// any corruption: non-ascending peers, ids out of range, column/entry
// count mismatches, or truncated/overlong varints.
template <typename Fn>
bool DecodeDayPayload(const uint8_t* p, const uint8_t* end, uint64_t peer_count,
                      uint64_t file_count, std::vector<uint32_t>& scratch,
                      Fn&& fn) {
  DayHeader header;
  if (!ParseDayHeader(p, end, peer_count, header)) {
    return false;
  }
  // Column 1: peer ids (delta-encoded, strictly ascending).
  std::vector<uint32_t> peers;
  peers.reserve(header.snapshots);
  uint64_t peer = 0;
  for (uint64_t i = 0; i < header.snapshots; ++i) {
    uint64_t delta = 0;
    if (!wire::ReadVarint(p, end, delta)) {
      return false;
    }
    if (i > 0 && delta == 0) {
      return false;
    }
    if (delta >= peer_count - peer) {
      return false;  // Out of range (or would wrap).
    }
    peer += delta;
    peers.push_back(static_cast<uint32_t>(peer));
  }
  // Column 2: cache sizes.
  std::vector<uint32_t> sizes;
  sizes.reserve(header.snapshots);
  uint64_t total = 0;
  for (uint64_t i = 0; i < header.snapshots; ++i) {
    uint64_t size = 0;
    if (!wire::ReadVarint(p, end, size)) {
      return false;
    }
    total += size;
    if (size > file_count || total > header.file_entries) {
      return false;
    }
    sizes.push_back(static_cast<uint32_t>(size));
  }
  if (total != header.file_entries) {
    return false;
  }
  // Column 3: concatenated delta-varint file lists.
  for (uint64_t i = 0; i < header.snapshots; ++i) {
    const uint32_t size = sizes[i];
    if (scratch.size() < size) {
      scratch.resize(size);
    }
    uint64_t current = 0;
    for (uint32_t f = 0; f < size; ++f) {
      uint64_t delta = 0;
      if (!wire::ReadVarint(p, end, delta)) {
        return false;
      }
      if ((f > 0 && delta == 0) || delta >= file_count - current) {
        return false;
      }
      current += delta;
      scratch[f] = static_cast<uint32_t>(current);
    }
    fn(peers[i], scratch.data(), static_cast<size_t>(size));
  }
  return p == end;  // Trailing bytes in the payload are corruption too.
}

// Appends the columnar payload for one day. `peers` must be strictly
// ascending; `sizes[i]` entries of `entries` belong to snapshot i and must
// be sorted strictly ascending per snapshot. The caller (TraceWriter)
// enforces those invariants at AddSnapshot time.
inline void EncodeDayPayload(std::string& out, int day,
                             const std::vector<uint32_t>& peers,
                             const std::vector<uint32_t>& sizes,
                             const std::vector<uint32_t>& entries) {
  wire::AppendVarint(out, wire::ZigZagEncode(day));
  wire::AppendVarint(out, peers.size());
  wire::AppendVarint(out, entries.size());
  uint64_t previous = 0;
  for (size_t i = 0; i < peers.size(); ++i) {
    wire::AppendVarint(out, peers[i] - previous);
    previous = peers[i];
  }
  for (const uint32_t size : sizes) {
    wire::AppendVarint(out, size);
  }
  size_t cursor = 0;
  for (const uint32_t size : sizes) {
    uint64_t prev_file = 0;
    for (uint32_t f = 0; f < size; ++f) {
      wire::AppendVarint(out, entries[cursor] - prev_file);
      prev_file = entries[cursor];
      ++cursor;
    }
  }
}

}  // namespace edk::stream

#endif  // SRC_TRACE_STREAM_FORMAT_H_
