// EDKT v2: the columnar on-disk trace format behind the out-of-core
// streaming pipeline (DESIGN.md §6h).
//
// Layout. A v2 file is a header, a sequence of length-prefixed segments,
// and a fixed-size trailer pointing at a footer segment:
//
//   header   : u32 magic "EDK2", u32 version = 2
//   segment  : u8 tag, u64 payload_bytes, payload
//     0x01 file table : u64 count, then `count` fixed 13-byte rows
//                       {u64 size_bytes, u8 category, u32 topic}
//     0x02 peer table : u64 count, then `count` fixed 21-byte rows
//                       {u32 country, u32 as, u32 ip, u64 user_id, u8 fw}
//     0x03 day segment: columnar snapshot data for ONE day (below)
//     0x04 day segment, blocked: the same day data split into blocks
//     0x7f footer     : the index (below)
//   trailer  : u64 footer_segment_offset, u32 magic "EDT2"
//
// Day segments are columnar: a small varint header (zigzag day, snapshot
// count n, total file entries), then three columns — peer ids (n varints,
// first absolute then strictly positive deltas), cache sizes (n varints),
// and the concatenated delta-varint file lists (the same encoding as EDKT
// v1 snapshot runs: previous starts at 0, deltas strictly positive after
// the first element). Fixed-width table rows make peer/file metadata
// random-accessible straight out of the mmap; everything per-day decodes
// with one bounded linear scan.
//
// Blocked day segments (tag 0x04, DESIGN.md §6i) concatenate N blocks,
// each with exactly the day-payload layout above (same day value in every
// block header). All delta state re-anchors at a block boundary: a block's
// first peer id encodes absolute (delta from 0), and file lists already
// re-anchor per snapshot — so every block decodes independently and a day
// can be scanned by N threads. The only cross-block invariant is that a
// block's first peer exceeds the previous block's last peer; serial decode
// checks it inline, parallel decode checks it at merge time in block
// order. The footer records a per-day block directory (snapshot count,
// payload bytes and a HashBytes64 checksum per block) right after the
// day's index entry, so a reader can seek to any block without touching
// the payload. Block-less v2 files (tag 0x03 only) remain fully readable.
//
// The footer indexes every day segment (day, absolute offset, snapshot
// count, file entries, and the block directory for 0x04 segments) plus the
// table offsets and global counts, so a reader can open a multi-GB file,
// mmap it, and serve any single day without touching the rest. Writers
// emit segments append-only and write the footer last, which is what makes
// generation restartable: a crashed writer leaves a valid prefix of
// complete segments, and Resume() scans, truncates any partial tail, and
// continues (blocks are self-delimiting — each block header says how much
// column data follows — so Resume recovers block boundaries and checksums
// without a footer).
//
// Every decode path validates against attacker-controlled input: counts
// are checked against the sizes of the regions that must back them before
// anything is allocated, days must be strictly increasing, peer and file
// ids strictly ascending and in range, and varints reject overlong
// encodings (shared rules with edk::wire).

#ifndef SRC_TRACE_STREAM_FORMAT_H_
#define SRC_TRACE_STREAM_FORMAT_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/varint.h"
#include "src/trace/serialize.h"  // kMaxTraceDay.

namespace edk::stream {

inline constexpr uint32_t kMagicV2 = 0x324b4445;    // "EDK2" little-endian.
inline constexpr uint32_t kTrailerMagic = 0x32544445;  // "EDT2".
inline constexpr uint32_t kVersionV2 = 2;
inline constexpr uint32_t kMagicV1 = 0x544b4445;    // "EDKT" (version 1).

inline constexpr uint8_t kTagFileTable = 0x01;
inline constexpr uint8_t kTagPeerTable = 0x02;
inline constexpr uint8_t kTagDay = 0x03;
inline constexpr uint8_t kTagDayBlocked = 0x04;
inline constexpr uint8_t kTagFooter = 0x7f;

// Default writer block budget. ~1 MiB of encoded columns per block keeps
// per-task scheduling overhead negligible while a 50 MB day still splits
// into ~50 independently scannable pieces.
inline constexpr uint64_t kDefaultBlockTargetBytes = 1 << 20;

inline constexpr size_t kHeaderBytes = 8;            // magic + version.
inline constexpr size_t kSegmentHeaderBytes = 9;     // tag + payload size.
inline constexpr size_t kTrailerBytes = 12;          // footer offset + magic.
inline constexpr size_t kFileRowBytes = 13;
inline constexpr size_t kPeerRowBytes = 21;

// --- Little-endian fixed-width helpers (buffer variants) -------------------

inline void AppendU32(std::string& out, uint32_t v) {
  const char b[4] = {static_cast<char>(v), static_cast<char>(v >> 8),
                     static_cast<char>(v >> 16), static_cast<char>(v >> 24)};
  out.append(b, 4);
}

inline void AppendU64(std::string& out, uint64_t v) {
  AppendU32(out, static_cast<uint32_t>(v));
  AppendU32(out, static_cast<uint32_t>(v >> 32));
}

inline uint32_t LoadU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) | (static_cast<uint32_t>(p[3]) << 24);
}

inline uint64_t LoadU64(const uint8_t* p) {
  return static_cast<uint64_t>(LoadU32(p)) |
         (static_cast<uint64_t>(LoadU32(p + 4)) << 32);
}

// --- Block checksums --------------------------------------------------------

inline uint64_t HashMix64(uint64_t x) {  // SplitMix64 finaliser.
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

// 64-bit content checksum of a block payload. Built from 8-byte
// little-endian chunks (LoadU64, so the value is endian-stable) folded
// through the SplitMix64 finaliser — fast enough to verify at scan rates,
// strong enough that any single byte flip changes the value.
inline uint64_t HashBytes64(const uint8_t* p, size_t n) {
  uint64_t h = 0x9e3779b97f4a7c15ull ^ n;
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    h = HashMix64(h ^ LoadU64(p + i));
  }
  if (i < n) {
    uint64_t tail = 0;
    for (size_t b = 0; i + b < n; ++b) {
      tail |= static_cast<uint64_t>(p[i + b]) << (8 * b);
    }
    h = HashMix64(h ^ tail);
  }
  return HashMix64(h);
}

// --- Day segment decoding ---------------------------------------------------

struct DayHeader {
  int day = 0;
  uint64_t snapshots = 0;     // Peers with a cache observation this day.
  uint64_t file_entries = 0;  // Sum of their cache sizes.
};

// Parses and validates the varint header of a day segment payload.
// `payload_bytes` is the segment's full payload size: snapshot and entry
// counts are rejected unless the remaining payload could actually hold
// them (each costs at least one byte), so no downstream allocation can
// exceed the segment's own on-disk size.
inline bool ParseDayHeader(const uint8_t*& p, const uint8_t* end,
                           uint64_t peer_count, DayHeader& out) {
  uint64_t zz_day = 0;
  uint64_t snapshots = 0;
  uint64_t entries = 0;
  if (!wire::ReadVarint(p, end, zz_day) || !wire::ReadVarint(p, end, snapshots) ||
      !wire::ReadVarint(p, end, entries)) {
    return false;
  }
  const int64_t day = wire::ZigZagDecode(zz_day);
  if (day < 0 || day > static_cast<int64_t>(kMaxTraceDay)) {
    return false;
  }
  const uint64_t remaining = static_cast<uint64_t>(end - p);
  // Peer-id and size columns cost >= 1 byte per snapshot each; every file
  // entry costs >= 1 byte. Snapshots are one observation per distinct peer.
  if (snapshots > peer_count || snapshots * 2 > remaining ||
      entries > remaining) {
    return false;
  }
  out.day = static_cast<int>(day);
  out.snapshots = snapshots;
  out.file_entries = entries;
  return true;
}

// Reusable decode state for day scans. One arena serves any number of
// blocks/days/snapshots without per-snapshot allocation: `peers`/`sizes`
// hold the current block's first two columns, `files` the current
// snapshot's decoded file ids. Growth stops at the largest block a sweep
// meets; parallel scans keep one arena per worker.
struct DecodeArena {
  std::vector<uint32_t> peers;
  std::vector<uint32_t> sizes;
  std::vector<uint32_t> files;
};

// Decodes ONE block (or one whole tag-0x03 day payload — the layouts are
// identical) starting at `p`, advancing `p` past its last column byte, and
// calls
//   fn(uint32_t peer, const uint32_t* files, size_t count)
// once per snapshot, in ascending peer order. `peer_floor` re-anchors the
// cross-block ordering: the block's first peer id (encoded absolute) must
// be >= floor — pass 0 for the first block / a whole day, last_peer + 1
// for each subsequent block of a blocked segment. On success `header` (if
// non-null) receives the block's parsed header and `last_peer` (if
// non-null) its final peer id. Returns false — possibly after some
// callbacks — on any corruption: non-ascending peers, ids out of range,
// column/entry count mismatches, or truncated/overlong varints.
template <typename Fn>
bool DecodeDayBlock(const uint8_t*& p, const uint8_t* end, uint64_t peer_count,
                    uint64_t file_count, uint64_t peer_floor,
                    DecodeArena& arena, Fn&& fn, DayHeader* header = nullptr,
                    uint32_t* last_peer = nullptr) {
  DayHeader local;
  if (!ParseDayHeader(p, end, peer_count, local)) {
    return false;
  }
  if (header != nullptr) {
    *header = local;
  }
  // Column 1: peer ids (delta-encoded, strictly ascending).
  std::vector<uint32_t>& peers = arena.peers;
  peers.clear();
  peers.reserve(local.snapshots);
  uint64_t peer = 0;
  for (uint64_t i = 0; i < local.snapshots; ++i) {
    uint64_t delta = 0;
    if (!wire::ReadVarint(p, end, delta)) {
      return false;
    }
    if (i > 0 && delta == 0) {
      return false;
    }
    if (delta >= peer_count - peer) {
      return false;  // Out of range (or would wrap).
    }
    peer += delta;
    if (i == 0 && peer < peer_floor) {
      return false;  // Block not after its predecessor.
    }
    peers.push_back(static_cast<uint32_t>(peer));
  }
  if (last_peer != nullptr && !peers.empty()) {
    *last_peer = peers.back();
  }
  // Column 2: cache sizes.
  std::vector<uint32_t>& sizes = arena.sizes;
  sizes.clear();
  sizes.reserve(local.snapshots);
  uint64_t total = 0;
  for (uint64_t i = 0; i < local.snapshots; ++i) {
    uint64_t size = 0;
    if (!wire::ReadVarint(p, end, size)) {
      return false;
    }
    total += size;
    if (size > file_count || total > local.file_entries) {
      return false;
    }
    sizes.push_back(static_cast<uint32_t>(size));
  }
  if (total != local.file_entries) {
    return false;
  }
  // Column 3: concatenated delta-varint file lists.
  std::vector<uint32_t>& scratch = arena.files;
  for (uint64_t i = 0; i < local.snapshots; ++i) {
    const uint32_t size = sizes[i];
    if (scratch.size() < size) {
      scratch.resize(size);
    }
    uint64_t current = 0;
    for (uint32_t f = 0; f < size; ++f) {
      uint64_t delta = 0;
      if (!wire::ReadVarint(p, end, delta)) {
        return false;
      }
      if ((f > 0 && delta == 0) || delta >= file_count - current) {
        return false;
      }
      current += delta;
      scratch[f] = static_cast<uint32_t>(current);
    }
    fn(peers[i], scratch.data(), static_cast<size_t>(size));
  }
  return true;
}

// Decodes a whole day payload: one block for tag-0x03 segments, a chain of
// re-anchored blocks for tag-0x04 segments (`expected_day`, from the
// footer/first block, keeps every block on the same day). The payload must
// be consumed exactly.
template <typename Fn>
bool DecodeDayPayload(const uint8_t* p, const uint8_t* end, uint64_t peer_count,
                      uint64_t file_count, DecodeArena& arena, Fn&& fn,
                      bool blocked = false) {
  uint64_t floor = 0;
  int expected_day = 0;
  bool first = true;
  do {
    DayHeader header;
    uint32_t last = 0;
    if (!DecodeDayBlock(p, end, peer_count, file_count, floor, arena,
                        static_cast<Fn&&>(fn), &header, &last)) {
      return false;
    }
    if (first) {
      expected_day = header.day;
      first = false;
    } else if (header.day != expected_day) {
      return false;  // A block wandered onto another day.
    }
    if (header.snapshots > 0) {
      floor = static_cast<uint64_t>(last) + 1;
    }
  } while (blocked && p != end);
  return p == end;  // Trailing bytes in the payload are corruption too.
}

// Appends the columnar payload for one day. `peers` must be strictly
// ascending; `sizes[i]` entries of `entries` belong to snapshot i and must
// be sorted strictly ascending per snapshot. The caller (TraceWriter)
// enforces those invariants at AddSnapshot time.
inline void EncodeDayPayload(std::string& out, int day,
                             const std::vector<uint32_t>& peers,
                             const std::vector<uint32_t>& sizes,
                             const std::vector<uint32_t>& entries) {
  wire::AppendVarint(out, wire::ZigZagEncode(day));
  wire::AppendVarint(out, peers.size());
  wire::AppendVarint(out, entries.size());
  uint64_t previous = 0;
  for (size_t i = 0; i < peers.size(); ++i) {
    wire::AppendVarint(out, peers[i] - previous);
    previous = peers[i];
  }
  for (const uint32_t size : sizes) {
    wire::AppendVarint(out, size);
  }
  size_t cursor = 0;
  for (const uint32_t size : sizes) {
    uint64_t prev_file = 0;
    for (uint32_t f = 0; f < size; ++f) {
      wire::AppendVarint(out, entries[cursor] - prev_file);
      prev_file = entries[cursor];
      ++cursor;
    }
  }
}

// One entry of a blocked day's footer block directory.
struct BlockEntry {
  uint64_t snapshots = 0;
  uint64_t bytes = 0;     // Encoded block size (header + columns).
  uint64_t checksum = 0;  // HashBytes64 over those bytes.
};

// Appends the payload of a tag-0x04 blocked day segment: the same columns
// as EncodeDayPayload, split into independently decodable blocks. A block
// closes once its encoded columns reach `block_target_bytes` (so one
// oversized snapshot still fits a block alone), and the next block
// re-anchors its peer deltas at absolute ids. Appends one BlockEntry per
// block to `blocks`. A day with no snapshots emits a single header-only
// block. With a target no block can reach, the single block's bytes equal
// EncodeDayPayload's output exactly — blocked and unblocked files differ
// only in segment tags and the footer.
inline void EncodeDayBlocks(std::string& out, int day,
                            const std::vector<uint32_t>& peers,
                            const std::vector<uint32_t>& sizes,
                            const std::vector<uint32_t>& entries,
                            uint64_t block_target_bytes,
                            std::vector<BlockEntry>& blocks) {
  std::string col_peers;
  std::string col_sizes;
  std::string col_files;
  const auto flush_block = [&](uint64_t snapshots, uint64_t block_entries) {
    const size_t begin = out.size();
    wire::AppendVarint(out, wire::ZigZagEncode(day));
    wire::AppendVarint(out, snapshots);
    wire::AppendVarint(out, block_entries);
    out.append(col_peers);
    out.append(col_sizes);
    out.append(col_files);
    const uint8_t* p = reinterpret_cast<const uint8_t*>(out.data()) + begin;
    blocks.push_back(BlockEntry{snapshots, out.size() - begin,
                                HashBytes64(p, out.size() - begin)});
    col_peers.clear();
    col_sizes.clear();
    col_files.clear();
  };
  uint64_t block_snapshots = 0;
  uint64_t block_entries = 0;
  uint64_t previous_peer = 0;  // Reset at each block boundary: re-anchoring.
  size_t cursor = 0;
  for (size_t i = 0; i < peers.size(); ++i) {
    wire::AppendVarint(col_peers, peers[i] - previous_peer);
    previous_peer = peers[i];
    wire::AppendVarint(col_sizes, sizes[i]);
    uint64_t prev_file = 0;
    for (uint32_t f = 0; f < sizes[i]; ++f) {
      wire::AppendVarint(col_files, entries[cursor] - prev_file);
      prev_file = entries[cursor];
      ++cursor;
    }
    ++block_snapshots;
    block_entries += sizes[i];
    if (col_peers.size() + col_sizes.size() + col_files.size() >=
        block_target_bytes) {
      flush_block(block_snapshots, block_entries);
      block_snapshots = 0;
      block_entries = 0;
      previous_peer = 0;
    }
  }
  if (block_snapshots > 0 || blocks.empty()) {
    flush_block(block_snapshots, block_entries);
  }
}

}  // namespace edk::stream

#endif  // SRC_TRACE_STREAM_FORMAT_H_
