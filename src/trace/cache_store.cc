#include "src/trace/cache_store.h"

namespace edk {

void CacheStore::BuildTranspose(size_t file_bound) {
  // Counting sort: holder counts -> offsets -> fill. Scanning peers in
  // ascending order leaves every holder slice ascending.
  file_offsets_.assign(file_bound + 1, 0);
  for (const uint32_t f : files_) {
    ++file_offsets_[f + 1];
  }
  for (size_t f = 0; f < file_bound; ++f) {
    file_offsets_[f + 1] += file_offsets_[f];
  }
  holders_.resize(files_.size());
  std::vector<size_t> cursor(file_offsets_.begin(), file_offsets_.end() - 1);
  const size_t peers = peer_count();
  for (uint32_t p = 0; p < peers; ++p) {
    for (const uint32_t f : PeerFiles(p)) {
      holders_[cursor[f]++] = p;
    }
  }
}

CacheStore CacheStore::FromStaticCaches(const StaticCaches& caches,
                                        size_t file_count_hint) {
  CacheStore store;
  store.peer_offsets_.reserve(caches.caches.size() + 1);
  size_t total = 0;
  for (const auto& cache : caches.caches) {
    total += cache.size();
  }
  store.files_.reserve(total);
  size_t file_bound = file_count_hint;
  for (const auto& cache : caches.caches) {
    for (const FileId f : cache) {
      store.files_.push_back(f.value);
      file_bound = std::max<size_t>(file_bound, f.value + 1);
    }
    store.peer_offsets_.push_back(store.files_.size());
  }
  store.BuildTranspose(file_bound);
  return store;
}

CacheStore CacheStore::FromTraceDay(const Trace& trace, int day) {
  CacheStore store;
  const size_t peers = trace.peer_count();
  store.peer_offsets_.reserve(peers + 1);
  size_t file_bound = 0;
  for (size_t p = 0; p < peers; ++p) {
    const CacheSnapshot* snapshot =
        trace.timeline(PeerId(static_cast<uint32_t>(p))).SnapshotOn(day);
    if (snapshot != nullptr) {
      for (const FileId f : snapshot->files) {
        store.files_.push_back(f.value);
        file_bound = std::max<size_t>(file_bound, f.value + 1);
      }
    }
    store.peer_offsets_.push_back(store.files_.size());
  }
  store.BuildTranspose(file_bound);
  return store;
}

CacheStore CacheStore::FromCsr(std::vector<uint32_t> files,
                               std::vector<size_t> peer_offsets,
                               size_t file_count_hint) {
  CacheStore store;
  store.files_ = std::move(files);
  store.peer_offsets_ = std::move(peer_offsets);
  size_t file_bound = file_count_hint;
  for (const uint32_t f : store.files_) {
    file_bound = std::max<size_t>(file_bound, f + 1);
  }
  store.BuildTranspose(file_bound);
  return store;
}

size_t CacheStore::MaxCacheSize() const {
  size_t max_size = 0;
  for (size_t p = 0; p + 1 < peer_offsets_.size(); ++p) {
    max_size = std::max(max_size, peer_offsets_[p + 1] - peer_offsets_[p]);
  }
  return max_size;
}

CacheStore CacheStore::Masked(const std::vector<bool>& mask) const {
  CacheStore store;
  store.peer_offsets_.reserve(peer_offsets_.size());
  store.files_.reserve(files_.size());
  size_t file_bound = 0;
  const size_t peers = peer_count();
  for (uint32_t p = 0; p < peers; ++p) {
    for (const uint32_t f : PeerFiles(p)) {
      if (f < mask.size() && mask[f]) {
        store.files_.push_back(f);
        file_bound = std::max<size_t>(file_bound, f + 1);
      }
    }
    store.peer_offsets_.push_back(store.files_.size());
  }
  store.BuildTranspose(file_bound);
  return store;
}

StaticCaches CacheStore::ToStaticCaches() const {
  StaticCaches caches;
  const size_t peers = peer_count();
  caches.caches.resize(peers);
  for (uint32_t p = 0; p < peers; ++p) {
    const auto slice = PeerFiles(p);
    auto& out = caches.caches[p];
    out.reserve(slice.size());
    for (const uint32_t f : slice) {
      out.push_back(FileId(f));
    }
  }
  return caches;
}

}  // namespace edk
