#include "src/trace/filter.h"

#include <algorithm>
#include <unordered_map>

namespace edk {

namespace {

// Copies `source` peers selected by `keep` into a new trace, preserving the
// file table so FileIds stay valid.
Trace CopySelectedPeers(const Trace& source, const std::vector<bool>& keep) {
  Trace out;
  for (const auto& meta : source.files()) {
    out.AddFile(meta);
  }
  for (size_t p = 0; p < source.peer_count(); ++p) {
    if (!keep[p]) {
      continue;
    }
    const PeerId old_id(static_cast<uint32_t>(p));
    const PeerId new_id = out.AddPeer(source.peer(old_id));
    for (const auto& snapshot : source.timeline(old_id).snapshots) {
      out.AddSnapshot(new_id, snapshot.day, snapshot.files);
    }
  }
  return out;
}

}  // namespace

Trace FilterDuplicates(const Trace& trace) {
  std::unordered_map<uint32_t, int> ip_count;
  std::unordered_map<uint64_t, int> uid_count;
  for (const auto& info : trace.peers()) {
    ++ip_count[info.ip_address];
    ++uid_count[info.user_id];
  }
  std::vector<bool> keep(trace.peer_count(), false);
  for (size_t p = 0; p < trace.peer_count(); ++p) {
    const PeerId id(static_cast<uint32_t>(p));
    const PeerInfo& info = trace.peer(id);
    const bool duplicated =
        ip_count[info.ip_address] > 1 || uid_count[info.user_id] > 1;
    keep[p] = !duplicated || trace.IsFreeRider(id);
  }
  return CopySelectedPeers(trace, keep);
}

std::vector<FileId> IntersectSorted(const std::vector<FileId>& a,
                                    const std::vector<FileId>& b) {
  std::vector<FileId> out;
  out.reserve(std::min(a.size(), b.size()));
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
  return out;
}

namespace {

enum class FillPolicy { kIntersection, kCarryForward };

Trace ExtrapolateImpl(const Trace& trace, const ExtrapolationOptions& options,
                      FillPolicy policy) {
  Trace out;
  for (const auto& meta : trace.files()) {
    out.AddFile(meta);
  }
  for (size_t p = 0; p < trace.peer_count(); ++p) {
    const PeerId id(static_cast<uint32_t>(p));
    const auto& snapshots = trace.timeline(id).snapshots;
    if (static_cast<int>(snapshots.size()) < options.min_connections) {
      continue;
    }
    const int span = snapshots.back().day - snapshots.front().day;
    if (span < options.min_span_days) {
      continue;
    }
    const PeerId new_id = out.AddPeer(trace.peer(id));
    for (size_t i = 0; i < snapshots.size(); ++i) {
      out.AddSnapshot(new_id, snapshots[i].day, snapshots[i].files);
      if (i + 1 >= snapshots.size()) {
        continue;
      }
      // Fill the gap between observation i and i+1.
      std::vector<FileId> filler;
      if (policy == FillPolicy::kIntersection) {
        filler = IntersectSorted(snapshots[i].files, snapshots[i + 1].files);
      } else {
        filler = snapshots[i].files;
      }
      for (int day = snapshots[i].day + 1; day < snapshots[i + 1].day; ++day) {
        out.AddSnapshot(new_id, day, filler);
      }
    }
  }
  return out;
}

}  // namespace

Trace Extrapolate(const Trace& trace, const ExtrapolationOptions& options) {
  return ExtrapolateImpl(trace, options, FillPolicy::kIntersection);
}

Trace ExtrapolateCarryForward(const Trace& trace, const ExtrapolationOptions& options) {
  return ExtrapolateImpl(trace, options, FillPolicy::kCarryForward);
}

}  // namespace edk
