#include "src/trace/randomize.h"

#include <algorithm>
#include <cmath>

#include "src/common/random_access_set.h"

namespace edk {

uint64_t RecommendedSwapCount(const StaticCaches& caches) {
  const double n = static_cast<double>(caches.TotalReplicas());
  if (n < 2) {
    return 0;
  }
  return static_cast<uint64_t>(0.5 * n * std::log(n)) + 1;
}

RandomizeResult RandomizeCaches(const StaticCaches& caches, uint64_t swaps, Rng& rng) {
  const size_t peer_count = caches.caches.size();

  // Mutable cache sets with O(1) membership / random pick / swap.
  std::vector<RandomAccessSet<uint32_t>> sets(peer_count);
  // Picking a peer proportionally to |C_u| == picking a replica uniformly
  // and taking its owner. Swaps never change cache sizes, so this flat
  // owner table stays valid for the whole run.
  std::vector<uint32_t> replica_owner;
  replica_owner.reserve(caches.TotalReplicas());
  for (size_t p = 0; p < peer_count; ++p) {
    sets[p].Reserve(caches.caches[p].size());
    for (FileId f : caches.caches[p]) {
      sets[p].Insert(f.value);
      replica_owner.push_back(static_cast<uint32_t>(p));
    }
  }

  RandomizeResult result;
  if (replica_owner.size() < 2) {
    result.caches = caches;
    return result;
  }

  for (uint64_t iter = 0; iter < swaps; ++iter) {
    ++result.attempted_swaps;
    const uint32_t u = replica_owner[rng.NextBelow(replica_owner.size())];
    const uint32_t v = replica_owner[rng.NextBelow(replica_owner.size())];
    if (u == v) {
      continue;
    }
    const uint32_t f = sets[u].RandomElement(rng);
    const uint32_t f_prime = sets[v].RandomElement(rng);
    if (f == f_prime || sets[u].Contains(f_prime) || sets[v].Contains(f)) {
      continue;
    }
    sets[u].Erase(f);
    sets[u].Insert(f_prime);
    sets[v].Erase(f_prime);
    sets[v].Insert(f);
    ++result.successful_swaps;
  }

  result.caches.caches.resize(peer_count);
  for (size_t p = 0; p < peer_count; ++p) {
    auto& out = result.caches.caches[p];
    out.reserve(sets[p].size());
    for (uint32_t raw : sets[p]) {
      out.push_back(FileId(raw));
    }
    std::sort(out.begin(), out.end());
  }
  return result;
}

RandomizeResult RandomizeCachesFully(const StaticCaches& caches, Rng& rng) {
  return RandomizeCaches(caches, RecommendedSwapCount(caches), rng);
}

}  // namespace edk
