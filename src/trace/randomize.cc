#include "src/trace/randomize.h"

#include <algorithm>
#include <cmath>

#include "src/obs/metrics.h"

namespace edk {

uint64_t RecommendedSwapCount(const StaticCaches& caches) {
  const double n = static_cast<double>(caches.TotalReplicas());
  if (n < 2) {
    return 0;
  }
  return static_cast<uint64_t>(0.5 * n * std::log(n)) + 1;
}

namespace {

// Removes `out` from the sorted slice [begin, end) and inserts `in`,
// shifting only the elements between the two positions. `out` must be
// present and `in` absent.
void ReplaceSorted(uint32_t* begin, uint32_t* end, uint32_t out, uint32_t in) {
  uint32_t* pos = std::lower_bound(begin, end, out);
  if (in > out) {
    uint32_t* ins = std::lower_bound(pos + 1, end, in);
    std::move(pos + 1, ins, pos);
    *(ins - 1) = in;
  } else {
    uint32_t* ins = std::lower_bound(begin, pos, in);
    std::move_backward(ins, pos, pos + 1);
    *ins = in;
  }
}

}  // namespace

RandomizeResult RandomizeCaches(const StaticCaches& caches, uint64_t swaps, Rng& rng) {
  obs::PhaseTimer timer("trace.randomize");
  const size_t peer_count = caches.caches.size();

  // Flat CSR layout: swaps never change cache sizes, so the offsets stay
  // valid for the whole run. Two parallel flat arrays per replica slot:
  //   items  — draw order. Mirrors the historical RandomAccessSet exactly
  //            (erase = swap-with-last, insert = append), so RandomElement
  //            picks, and with them the whole swap trajectory, are
  //            bit-identical to the previous implementation.
  //   sorted — each peer's cache ascending, giving O(log k) membership
  //            tests with no hashing; kept sorted with an O(k) shift only
  //            on the (rarer) successful swaps.
  std::vector<size_t> offsets(peer_count + 1, 0);
  for (size_t p = 0; p < peer_count; ++p) {
    offsets[p + 1] = offsets[p] + caches.caches[p].size();
  }
  const size_t total = offsets[peer_count];
  std::vector<uint32_t> items(total);
  std::vector<uint32_t> sorted(total);
  // Picking a peer proportionally to |C_u| == picking a replica uniformly
  // and taking its owner.
  std::vector<uint32_t> replica_owner(total);
  for (size_t p = 0; p < peer_count; ++p) {
    size_t slot = offsets[p];
    for (const FileId f : caches.caches[p]) {
      items[slot] = f.value;
      sorted[slot] = f.value;
      replica_owner[slot] = static_cast<uint32_t>(p);
      ++slot;
    }
  }

  RandomizeResult result;
  if (total < 2) {
    result.caches = caches;
    return result;
  }

  const auto contains = [&](uint32_t p, uint32_t f) {
    return std::binary_search(sorted.data() + offsets[p],
                              sorted.data() + offsets[p + 1], f);
  };

  for (uint64_t iter = 0; iter < swaps; ++iter) {
    ++result.attempted_swaps;
    const uint32_t u = replica_owner[rng.NextBelow(total)];
    const uint32_t v = replica_owner[rng.NextBelow(total)];
    if (u == v) {
      continue;
    }
    const size_t u_begin = offsets[u];
    const size_t u_last = offsets[u + 1] - 1;
    const size_t v_begin = offsets[v];
    const size_t v_last = offsets[v + 1] - 1;
    const size_t fi = u_begin + rng.NextBelow(u_last - u_begin + 1);
    const size_t gi = v_begin + rng.NextBelow(v_last - v_begin + 1);
    const uint32_t f = items[fi];
    const uint32_t f_prime = items[gi];
    if (f == f_prime || contains(u, f_prime) || contains(v, f)) {
      continue;
    }
    // Erase-then-insert in RandomAccessSet order: the erased slot takes the
    // last element, the last slot takes the inserted file.
    items[fi] = items[u_last];
    items[u_last] = f_prime;
    items[gi] = items[v_last];
    items[v_last] = f;
    ReplaceSorted(sorted.data() + u_begin, sorted.data() + u_last + 1, f, f_prime);
    ReplaceSorted(sorted.data() + v_begin, sorted.data() + v_last + 1, f_prime, f);
    ++result.successful_swaps;
  }

  result.caches.caches.resize(peer_count);
  for (size_t p = 0; p < peer_count; ++p) {
    auto& out = result.caches.caches[p];
    out.reserve(offsets[p + 1] - offsets[p]);
    for (size_t slot = offsets[p]; slot < offsets[p + 1]; ++slot) {
      out.push_back(FileId(sorted[slot]));
    }
  }
  return result;
}

RandomizeResult RandomizeCachesFully(const StaticCaches& caches, Rng& rng) {
  return RandomizeCaches(caches, RecommendedSwapCount(caches), rng);
}

}  // namespace edk
