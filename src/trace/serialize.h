// Binary (de)serialisation of traces.
//
// The format is a compact little-endian stream ("EDKT" magic, version 1):
// file table, peer table, then per-peer snapshot runs with delta-encoded
// file ids. A 50-day trace of tens of thousands of peers round-trips in a
// few tens of megabytes, so generated workloads can be cached between bench
// invocations.

#ifndef SRC_TRACE_SERIALIZE_H_
#define SRC_TRACE_SERIALIZE_H_

#include <iosfwd>
#include <optional>
#include <string>

#include "src/trace/trace.h"

namespace edk {

// Writes `trace` to the stream. Returns false on I/O failure.
bool SaveTrace(const Trace& trace, std::ostream& os);
bool SaveTraceToFile(const Trace& trace, const std::string& path);

// Reads a trace; returns std::nullopt on corrupt input or I/O failure.
std::optional<Trace> LoadTrace(std::istream& is);
std::optional<Trace> LoadTraceFromFile(const std::string& path);

}  // namespace edk

#endif  // SRC_TRACE_SERIALIZE_H_
