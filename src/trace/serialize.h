// Binary (de)serialisation of traces.
//
// The format is a compact little-endian stream ("EDKT" magic, version 1):
// file table, peer table, then per-peer snapshot runs with delta-encoded
// file ids. A 50-day trace of tens of thousands of peers round-trips in a
// few tens of megabytes, so generated workloads can be cached between bench
// invocations.

#ifndef SRC_TRACE_SERIALIZE_H_
#define SRC_TRACE_SERIALIZE_H_

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>

// Re-exports edk::wire::{Write,Read}Varint for this header's existing
// includers; the primitives themselves live in edk_common so lower layers
// (the edk::obs span stream) share the encoding.
#include "src/common/varint.h"
#include "src/trace/trace.h"

namespace edk {

// Largest day number any EDKT loader accepts (v1 and v2). The paper's day
// numbering stays in the hundreds; the cap exists so a corrupt stream
// cannot smuggle a day that overflows `int` arithmetic or explodes the
// day-indexed arrays every per-day analysis allocates.
inline constexpr uint64_t kMaxTraceDay = 1'000'000;

// Writes `trace` to the stream. Returns false on I/O failure, or if a
// snapshot's file ids are not sorted strictly ascending — the delta
// encoding cannot represent out-of-order ids. Trace::AddSnapshot sorts and
// de-duplicates, so every Trace built through the public API satisfies the
// precondition; the check guards hand-built snapshot data.
bool SaveTrace(const Trace& trace, std::ostream& os);
bool SaveTraceToFile(const Trace& trace, const std::string& path);

// Reads a trace; returns std::nullopt on corrupt input or I/O failure.
std::optional<Trace> LoadTrace(std::istream& is);
std::optional<Trace> LoadTraceFromFile(const std::string& path);

}  // namespace edk

#endif  // SRC_TRACE_SERIALIZE_H_
