// Binary (de)serialisation of traces.
//
// The format is a compact little-endian stream ("EDKT" magic, version 1):
// file table, peer table, then per-peer snapshot runs with delta-encoded
// file ids. A 50-day trace of tens of thousands of peers round-trips in a
// few tens of megabytes, so generated workloads can be cached between bench
// invocations.

#ifndef SRC_TRACE_SERIALIZE_H_
#define SRC_TRACE_SERIALIZE_H_

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>

#include "src/trace/trace.h"

namespace edk {

// Low-level wire primitives, exposed so malformed-stream handling can be
// tested directly (the trace format is built from these).
namespace wire {

// LEB128-style variable-length encoding; at most 10 bytes per value.
void WriteVarint(std::ostream& os, uint64_t v);

// Reads one varint. Returns false on EOF and on any encoding that does not
// fit in 64 bits: an 11th continuation byte, or a 10th byte carrying more
// than the single bit that remains (the old decoder silently dropped those
// high bits, so two distinct byte strings aliased to the same value).
bool ReadVarint(std::istream& is, uint64_t& v);

}  // namespace wire

// Writes `trace` to the stream. Returns false on I/O failure, or if a
// snapshot's file ids are not sorted strictly ascending — the delta
// encoding cannot represent out-of-order ids. Trace::AddSnapshot sorts and
// de-duplicates, so every Trace built through the public API satisfies the
// precondition; the check guards hand-built snapshot data.
bool SaveTrace(const Trace& trace, std::ostream& os);
bool SaveTraceToFile(const Trace& trace, const std::string& path);

// Reads a trace; returns std::nullopt on corrupt input or I/O failure.
std::optional<Trace> LoadTrace(std::istream& is);
std::optional<Trace> LoadTraceFromFile(const std::string& path);

}  // namespace edk

#endif  // SRC_TRACE_SERIALIZE_H_
