#include "src/trace/serialize.h"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

namespace edk {

namespace {

constexpr uint32_t kMagic = 0x544b4445;  // "EDKT" little-endian.
constexpr uint32_t kVersion = 1;

void WriteU32(std::ostream& os, uint32_t v) {
  uint8_t b[4] = {static_cast<uint8_t>(v), static_cast<uint8_t>(v >> 8),
                  static_cast<uint8_t>(v >> 16), static_cast<uint8_t>(v >> 24)};
  os.write(reinterpret_cast<const char*>(b), 4);
}

void WriteU64(std::ostream& os, uint64_t v) {
  WriteU32(os, static_cast<uint32_t>(v));
  WriteU32(os, static_cast<uint32_t>(v >> 32));
}

bool ReadU32(std::istream& is, uint32_t& v) {
  uint8_t b[4];
  if (!is.read(reinterpret_cast<char*>(b), 4)) {
    return false;
  }
  v = static_cast<uint32_t>(b[0]) | (static_cast<uint32_t>(b[1]) << 8) |
      (static_cast<uint32_t>(b[2]) << 16) | (static_cast<uint32_t>(b[3]) << 24);
  return true;
}

bool ReadU64(std::istream& is, uint64_t& v) {
  uint32_t lo = 0;
  uint32_t hi = 0;
  if (!ReadU32(is, lo) || !ReadU32(is, hi)) {
    return false;
  }
  v = static_cast<uint64_t>(hi) << 32 | lo;
  return true;
}

// Bytes left between the current position and the end of the stream, or
// nullopt when the stream is not seekable (a pipe). Element counts read
// from the header are checked against this before any loop runs, so a
// corrupt file cannot demand more elements than its own size could hold.
std::optional<uint64_t> RemainingBytes(std::istream& is) {
  const std::istream::pos_type current = is.tellg();
  if (current == std::istream::pos_type(-1)) {
    is.clear();
    return std::nullopt;
  }
  is.seekg(0, std::ios::end);
  const std::istream::pos_type end = is.tellg();
  is.seekg(current);
  if (end == std::istream::pos_type(-1) || end < current || !is.good()) {
    is.clear();
    is.seekg(current);
    return std::nullopt;
  }
  return static_cast<uint64_t>(end - current);
}

}  // namespace

namespace {
using wire::ReadVarint;
using wire::WriteVarint;
}  // namespace

bool SaveTrace(const Trace& trace, std::ostream& os) {
  WriteU32(os, kMagic);
  WriteU32(os, kVersion);

  WriteU64(os, trace.file_count());
  for (const auto& meta : trace.files()) {
    WriteU64(os, meta.size_bytes);
    const uint8_t category = static_cast<uint8_t>(meta.category);
    os.write(reinterpret_cast<const char*>(&category), 1);
    WriteU32(os, meta.topic.value);
  }

  WriteU64(os, trace.peer_count());
  for (size_t p = 0; p < trace.peer_count(); ++p) {
    const PeerId id(static_cast<uint32_t>(p));
    const PeerInfo& info = trace.peer(id);
    WriteU32(os, info.country.value);
    WriteU32(os, info.autonomous_system.value);
    WriteU32(os, info.ip_address);
    WriteU64(os, info.user_id);
    const uint8_t firewalled = info.firewalled ? 1 : 0;
    os.write(reinterpret_cast<const char*>(&firewalled), 1);

    const auto& snapshots = trace.timeline(id).snapshots;
    WriteVarint(os, snapshots.size());
    for (const auto& snapshot : snapshots) {
      WriteVarint(os, static_cast<uint64_t>(snapshot.day));
      WriteVarint(os, snapshot.files.size());
      uint32_t previous = 0;
      bool first = true;
      for (FileId f : snapshot.files) {
        // Files must be sorted strictly ascending (Trace::AddSnapshot
        // guarantees this), so deltas are small and non-negative. An
        // out-of-order id would wrap the subtraction into a huge delta
        // that decodes to garbage — refuse to emit it.
        if (!first && f.value <= previous) {
          return false;
        }
        WriteVarint(os, f.value - previous);
        previous = f.value;
        first = false;
      }
    }
  }
  return os.good();
}

bool SaveTraceToFile(const Trace& trace, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) {
    return false;
  }
  if (!SaveTrace(trace, os)) {
    return false;
  }
  // A full disk surfaces when the last buffered block is written out, which
  // without an explicit flush happens in the destructor — after the return
  // value was already decided. Flush and close while we can still report it.
  os.flush();
  if (!os.good()) {
    return false;
  }
  os.close();
  return os.good();
}

std::optional<Trace> LoadTrace(std::istream& is) {
  uint32_t magic = 0;
  uint32_t version = 0;
  if (!ReadU32(is, magic) || magic != kMagic || !ReadU32(is, version) ||
      version != kVersion) {
    return std::nullopt;
  }

  Trace trace;
  uint64_t file_count = 0;
  if (!ReadU64(is, file_count)) {
    return std::nullopt;
  }
  // Fail fast on counts the stream could not possibly back: every file row
  // is at least 13 bytes (u64 size + category byte + u32 topic) and every
  // peer row at least 22 (21 fixed bytes + a one-byte snapshot count). On a
  // non-seekable stream the per-element reads below still fail cleanly at
  // EOF — the bound only removes the long walk to get there.
  constexpr uint64_t kMinFileRowBytes = 13;
  constexpr uint64_t kMinPeerRowBytes = 22;
  constexpr uint64_t kMaxIdSpace = 0xffffffffu;  // FileId/PeerId are u32.
  if (file_count > kMaxIdSpace) {
    return std::nullopt;
  }
  if (const auto remaining = RemainingBytes(is);
      remaining.has_value() && file_count > *remaining / kMinFileRowBytes) {
    return std::nullopt;
  }
  for (uint64_t i = 0; i < file_count; ++i) {
    FileMeta meta;
    uint8_t category = 0;
    if (!ReadU64(is, meta.size_bytes) ||
        !is.read(reinterpret_cast<char*>(&category), 1)) {
      return std::nullopt;
    }
    if (category > static_cast<uint8_t>(FileCategory::kOther)) {
      return std::nullopt;
    }
    meta.category = static_cast<FileCategory>(category);
    uint32_t topic = 0;
    if (!ReadU32(is, topic)) {
      return std::nullopt;
    }
    meta.topic = TopicId(topic);
    trace.AddFile(meta);
  }

  uint64_t peer_count = 0;
  if (!ReadU64(is, peer_count)) {
    return std::nullopt;
  }
  if (peer_count > kMaxIdSpace) {
    return std::nullopt;
  }
  if (const auto remaining = RemainingBytes(is);
      remaining.has_value() && peer_count > *remaining / kMinPeerRowBytes) {
    return std::nullopt;
  }
  for (uint64_t p = 0; p < peer_count; ++p) {
    PeerInfo info;
    uint32_t country = 0;
    uint32_t as_number = 0;
    uint8_t firewalled = 0;
    if (!ReadU32(is, country) || !ReadU32(is, as_number) ||
        !ReadU32(is, info.ip_address) || !ReadU64(is, info.user_id) ||
        !is.read(reinterpret_cast<char*>(&firewalled), 1)) {
      return std::nullopt;
    }
    info.country = CountryId(country);
    info.autonomous_system = AsId(as_number);
    info.firewalled = firewalled != 0;
    const PeerId id = trace.AddPeer(info);

    uint64_t snapshot_count = 0;
    if (!ReadVarint(is, snapshot_count)) {
      return std::nullopt;
    }
    // Days are strictly increasing per peer and capped at kMaxTraceDay, so
    // no valid stream holds more than kMaxTraceDay + 1 snapshots per peer.
    if (snapshot_count > kMaxTraceDay + 1) {
      return std::nullopt;
    }
    int64_t previous_day = -1;
    for (uint64_t s = 0; s < snapshot_count; ++s) {
      uint64_t day = 0;
      uint64_t count = 0;
      if (!ReadVarint(is, day) || !ReadVarint(is, count)) {
        return std::nullopt;
      }
      // Validate the day before the unchecked-int cast ever happens, and
      // enforce the PeerTimeline "strictly increasing days" invariant that
      // SnapshotAtOrBefore/SnapshotOn and the day-sweep kernels rely on.
      if (day > kMaxTraceDay || static_cast<int64_t>(day) <= previous_day) {
        return std::nullopt;
      }
      previous_day = static_cast<int64_t>(day);
      // File ids are strictly ascending within a snapshot and below
      // file_count, so `count` is bounded by the (already loaded) file
      // table — a crafted count cannot reserve more than the table allows.
      if (count > trace.file_count()) {
        return std::nullopt;
      }
      std::vector<FileId> files;
      files.reserve(count);
      uint64_t current = 0;
      for (uint64_t f = 0; f < count; ++f) {
        uint64_t delta = 0;
        if (!ReadVarint(is, delta)) {
          return std::nullopt;
        }
        // SaveTrace only emits strictly ascending ids (delta >= 1 after the
        // first element); a zero delta or a delta that would land at or past
        // file_count — including one large enough to wrap `current` — is
        // corrupt.
        if ((f > 0 && delta == 0) || delta >= file_count - current) {
          return std::nullopt;
        }
        current += delta;
        files.push_back(FileId(static_cast<uint32_t>(current)));
      }
      trace.AddSnapshot(id, static_cast<int>(day), std::move(files));
    }
  }
  return trace;
}

std::optional<Trace> LoadTraceFromFile(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    return std::nullopt;
  }
  return LoadTrace(is);
}

}  // namespace edk
