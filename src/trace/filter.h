// Derivations of the paper's three trace views (§2.3, Table 1):
//
//   full trace          -> as collected
//   filtered trace      -> duplicate peers (same IP or same user id) removed,
//                          free-riders kept
//   extrapolated trace  -> activity-filtered peers with missing days filled
//                          pessimistically (intersection of neighbouring
//                          observations)

#ifndef SRC_TRACE_FILTER_H_
#define SRC_TRACE_FILTER_H_

#include "src/trace/trace.h"

namespace edk {

// Removes peers that share an IP address or a user id with another peer.
// Free-riders are kept even when duplicated, as in the paper ("we removed
// all clients sharing either the same IP address or the same unique
// identifier (and kept the free riders)"). File metadata is preserved
// unchanged; file ids remain stable across filtering.
Trace FilterDuplicates(const Trace& trace);

struct ExtrapolationOptions {
  // Keep peers observed at least this many times...
  int min_connections = 5;
  // ...with at least this many days between first and last observation.
  int min_span_days = 10;
};

// Produces the extrapolated trace: qualifying peers get one snapshot for
// every day between their first and last observation; for unobserved days
// the cache is the intersection of the previous and next real observations
// (a pessimistic under-estimate of the actual content, per §2.3).
Trace Extrapolate(const Trace& trace, const ExtrapolationOptions& options = {});

// Alternative extrapolation used by the ablation bench: carry the previous
// observation forward instead of intersecting (an optimistic estimate).
Trace ExtrapolateCarryForward(const Trace& trace, const ExtrapolationOptions& options = {});

// Sorted intersection helper shared with the analyses.
std::vector<FileId> IntersectSorted(const std::vector<FileId>& a,
                                    const std::vector<FileId>& b);

}  // namespace edk

#endif  // SRC_TRACE_FILTER_H_
