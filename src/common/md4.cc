#include "src/common/md4.h"

#include <cassert>
#include <cstring>

namespace edk {

namespace {

inline uint32_t Rotl32(uint32_t x, int n) { return (x << n) | (x >> (32 - n)); }

inline uint32_t F(uint32_t x, uint32_t y, uint32_t z) { return (x & y) | (~x & z); }
inline uint32_t G(uint32_t x, uint32_t y, uint32_t z) {
  return (x & y) | (x & z) | (y & z);
}
inline uint32_t Hf(uint32_t x, uint32_t y, uint32_t z) { return x ^ y ^ z; }

inline uint32_t LoadLe32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) | (static_cast<uint32_t>(p[3]) << 24);
}

inline void StoreLe32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
  p[2] = static_cast<uint8_t>(v >> 16);
  p[3] = static_cast<uint8_t>(v >> 24);
}

}  // namespace

Md4::Md4() {
  state_[0] = 0x67452301;
  state_[1] = 0xefcdab89;
  state_[2] = 0x98badcfe;
  state_[3] = 0x10325476;
}

void Md4::ProcessBlock(const uint8_t* block) {
  uint32_t x[16];
  for (int i = 0; i < 16; ++i) {
    x[i] = LoadLe32(block + 4 * i);
  }
  uint32_t a = state_[0];
  uint32_t b = state_[1];
  uint32_t c = state_[2];
  uint32_t d = state_[3];

  // Round 1.
  auto ff = [&x](uint32_t& aa, uint32_t bb, uint32_t cc, uint32_t dd, int k, int s) {
    aa = Rotl32(aa + F(bb, cc, dd) + x[k], s);
  };
  ff(a, b, c, d, 0, 3);
  ff(d, a, b, c, 1, 7);
  ff(c, d, a, b, 2, 11);
  ff(b, c, d, a, 3, 19);
  ff(a, b, c, d, 4, 3);
  ff(d, a, b, c, 5, 7);
  ff(c, d, a, b, 6, 11);
  ff(b, c, d, a, 7, 19);
  ff(a, b, c, d, 8, 3);
  ff(d, a, b, c, 9, 7);
  ff(c, d, a, b, 10, 11);
  ff(b, c, d, a, 11, 19);
  ff(a, b, c, d, 12, 3);
  ff(d, a, b, c, 13, 7);
  ff(c, d, a, b, 14, 11);
  ff(b, c, d, a, 15, 19);

  // Round 2.
  auto gg = [&x](uint32_t& aa, uint32_t bb, uint32_t cc, uint32_t dd, int k, int s) {
    aa = Rotl32(aa + G(bb, cc, dd) + x[k] + 0x5a827999u, s);
  };
  gg(a, b, c, d, 0, 3);
  gg(d, a, b, c, 4, 5);
  gg(c, d, a, b, 8, 9);
  gg(b, c, d, a, 12, 13);
  gg(a, b, c, d, 1, 3);
  gg(d, a, b, c, 5, 5);
  gg(c, d, a, b, 9, 9);
  gg(b, c, d, a, 13, 13);
  gg(a, b, c, d, 2, 3);
  gg(d, a, b, c, 6, 5);
  gg(c, d, a, b, 10, 9);
  gg(b, c, d, a, 14, 13);
  gg(a, b, c, d, 3, 3);
  gg(d, a, b, c, 7, 5);
  gg(c, d, a, b, 11, 9);
  gg(b, c, d, a, 15, 13);

  // Round 3.
  auto hh = [&x](uint32_t& aa, uint32_t bb, uint32_t cc, uint32_t dd, int k, int s) {
    aa = Rotl32(aa + Hf(bb, cc, dd) + x[k] + 0x6ed9eba1u, s);
  };
  hh(a, b, c, d, 0, 3);
  hh(d, a, b, c, 8, 9);
  hh(c, d, a, b, 4, 11);
  hh(b, c, d, a, 12, 15);
  hh(a, b, c, d, 2, 3);
  hh(d, a, b, c, 10, 9);
  hh(c, d, a, b, 6, 11);
  hh(b, c, d, a, 14, 15);
  hh(a, b, c, d, 1, 3);
  hh(d, a, b, c, 9, 9);
  hh(c, d, a, b, 5, 11);
  hh(b, c, d, a, 13, 15);
  hh(a, b, c, d, 3, 3);
  hh(d, a, b, c, 11, 9);
  hh(c, d, a, b, 7, 11);
  hh(b, c, d, a, 15, 15);

  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
}

void Md4::Update(std::span<const uint8_t> data) {
  assert(!finished_);
  total_bytes_ += data.size();
  size_t offset = 0;
  if (buffered_ > 0) {
    const size_t take = std::min(data.size(), sizeof(buffer_) - buffered_);
    std::memcpy(buffer_ + buffered_, data.data(), take);
    buffered_ += take;
    offset = take;
    if (buffered_ == sizeof(buffer_)) {
      ProcessBlock(buffer_);
      buffered_ = 0;
    }
  }
  while (data.size() - offset >= sizeof(buffer_)) {
    ProcessBlock(data.data() + offset);
    offset += sizeof(buffer_);
  }
  if (offset < data.size()) {
    std::memcpy(buffer_, data.data() + offset, data.size() - offset);
    buffered_ = data.size() - offset;
  }
}

void Md4::Update(std::string_view data) {
  Update(std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(data.data()),
                                  data.size()));
}

Md4Digest Md4::Finish() {
  assert(!finished_);
  finished_ = true;
  const uint64_t bit_length = total_bytes_ * 8;
  // Append 0x80 then zeros until 8 bytes remain in the final block.
  uint8_t pad[72] = {0x80};
  const size_t remainder = static_cast<size_t>(total_bytes_ % 64);
  const size_t pad_length = (remainder < 56) ? (56 - remainder) : (120 - remainder);
  finished_ = false;  // Allow the padding Updates below.
  Update(std::span<const uint8_t>(pad, pad_length));
  uint8_t length_bytes[8];
  for (int i = 0; i < 8; ++i) {
    length_bytes[i] = static_cast<uint8_t>(bit_length >> (8 * i));
  }
  // The length bytes must not be counted; Update() above already adjusted
  // total_bytes_ for padding but the digest ignores it from here on.
  Update(std::span<const uint8_t>(length_bytes, 8));
  finished_ = true;
  assert(buffered_ == 0);

  Md4Digest digest;
  for (int i = 0; i < 4; ++i) {
    StoreLe32(digest.data() + 4 * i, state_[i]);
  }
  return digest;
}

Md4Digest Md4::Hash(std::span<const uint8_t> data) {
  Md4 md4;
  md4.Update(data);
  return md4.Finish();
}

Md4Digest Md4::Hash(std::string_view data) {
  Md4 md4;
  md4.Update(data);
  return md4.Finish();
}

std::string ToHex(const Md4Digest& digest) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(32);
  for (uint8_t byte : digest) {
    out.push_back(kHex[byte >> 4]);
    out.push_back(kHex[byte & 0xf]);
  }
  return out;
}

Md4Digest EdonkeyFileId(std::span<const uint8_t> content, size_t block_size) {
  assert(block_size > 0);
  if (content.size() < block_size) {
    return Md4::Hash(content);
  }
  // Hash each block, then hash the concatenated digests. Note that eDonkey
  // includes a trailing empty block when the size is an exact multiple.
  Md4 outer;
  size_t offset = 0;
  while (offset < content.size()) {
    const size_t take = std::min(block_size, content.size() - offset);
    const Md4Digest block_digest = Md4::Hash(content.subspan(offset, take));
    outer.Update(std::span<const uint8_t>(block_digest.data(), block_digest.size()));
    offset += take;
  }
  if (content.size() % block_size == 0) {
    const Md4Digest empty_digest = Md4::Hash(std::span<const uint8_t>{});
    outer.Update(std::span<const uint8_t>(empty_digest.data(), empty_digest.size()));
  }
  return outer.Finish();
}

}  // namespace edk
