#include "src/common/table.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

namespace edk {

AsciiTable::AsciiTable(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void AsciiTable::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string AsciiTable::FormatCell(double v) {
  std::ostringstream os;
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    os << std::fixed << std::setprecision(0) << v;
  } else {
    os << std::fixed << std::setprecision(3) << v;
  }
  return os.str();
}

void AsciiTable::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t i = 0; i < headers_.size(); ++i) {
    widths[i] = headers_[i].size();
  }
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      os << ' ' << cell << std::string(widths[i] - cell.size(), ' ') << " |";
    }
    os << '\n';
  };
  auto print_rule = [&] {
    os << "+";
    for (size_t w : widths) {
      os << std::string(w + 2, '-') << "+";
    }
    os << '\n';
  };
  print_rule();
  print_row(headers_);
  print_rule();
  for (const auto& row : rows_) {
    print_row(row);
  }
  print_rule();
}

std::string AsciiTable::ToString() const {
  std::ostringstream os;
  Print(os);
  return os.str();
}

void CsvWriter::WriteRow(const std::vector<std::string>& cells) {
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) {
      os_ << ',';
    }
    os_ << Escape(cells[i]);
  }
  os_ << '\n';
}

std::string CsvWriter::Escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) {
    return cell;
  }
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') {
      out += "\"\"";
    } else {
      out += c;
    }
  }
  out += '"';
  return out;
}

std::string FormatBytes(double bytes) {
  static constexpr const char* kUnits[] = {"B", "KB", "MB", "GB", "TB", "PB"};
  int unit = 0;
  while (bytes >= 1024.0 && unit < 5) {
    bytes /= 1024.0;
    ++unit;
  }
  std::ostringstream os;
  os << std::fixed << std::setprecision(1) << bytes << ' ' << kUnits[unit];
  return os.str();
}

std::string FormatPercent(double fraction, int decimals) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << fraction * 100.0 << '%';
  return os.str();
}

}  // namespace edk
