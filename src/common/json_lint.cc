#include "src/common/json_lint.h"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

namespace edk {

namespace {

constexpr int kMaxDepth = 256;

class Linter {
 public:
  explicit Linter(std::string_view text) : text_(text) {}

  JsonLintResult Run() {
    SkipWhitespace();
    if (!Value(0)) {
      return Fail();
    }
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON value");
    }
    JsonLintResult result;
    result.ok = true;
    return result;
  }

 private:
  JsonLintResult Fail() {
    JsonLintResult result;
    result.ok = false;
    result.offset = error_offset_;
    result.error = error_;
    return result;
  }

  JsonLintResult Error(std::string message) {
    error_offset_ = pos_;
    error_ = std::move(message);
    return Fail();
  }

  bool SetError(std::string message) {
    if (error_.empty()) {
      error_offset_ = pos_;
      error_ = std::move(message);
    }
    return false;
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  void SkipWhitespace() {
    while (!AtEnd()) {
      const char c = Peek();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') {
        break;
      }
      ++pos_;
    }
  }

  bool Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      return SetError("invalid literal");
    }
    pos_ += word.size();
    return true;
  }

  bool String() {
    ++pos_;  // Opening quote, checked by the caller.
    while (!AtEnd()) {
      const unsigned char c = static_cast<unsigned char>(Peek());
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (AtEnd()) {
          return SetError("unterminated escape");
        }
        const char e = Peek();
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (AtEnd() || std::isxdigit(static_cast<unsigned char>(Peek())) == 0) {
              return SetError("bad \\u escape");
            }
          }
          ++pos_;
        } else if (e == '"' || e == '\\' || e == '/' || e == 'b' || e == 'f' ||
                   e == 'n' || e == 'r' || e == 't') {
          ++pos_;
        } else {
          return SetError("unknown escape character");
        }
      } else if (c < 0x20) {
        return SetError("unescaped control character in string");
      } else {
        ++pos_;
      }
    }
    return SetError("unterminated string");
  }

  bool Digits() {
    if (AtEnd() || std::isdigit(static_cast<unsigned char>(Peek())) == 0) {
      return SetError("digit expected");
    }
    while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek())) != 0) {
      ++pos_;
    }
    return true;
  }

  bool Number() {
    if (!AtEnd() && Peek() == '-') {
      ++pos_;
    }
    if (AtEnd()) {
      return SetError("digit expected");
    }
    if (Peek() == '0') {
      ++pos_;  // No leading zeros: "0" must be the whole integer part.
    } else if (!Digits()) {
      return false;
    }
    if (!AtEnd() && Peek() == '.') {
      ++pos_;
      if (!Digits()) {
        return false;
      }
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      ++pos_;
      if (!AtEnd() && (Peek() == '+' || Peek() == '-')) {
        ++pos_;
      }
      if (!Digits()) {
        return false;
      }
    }
    return true;
  }

  bool Object(int depth) {
    ++pos_;  // '{'
    SkipWhitespace();
    if (!AtEnd() && Peek() == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWhitespace();
      if (AtEnd() || Peek() != '"') {
        return SetError("object key must be a string");
      }
      if (!String()) {
        return false;
      }
      SkipWhitespace();
      if (AtEnd() || Peek() != ':') {
        return SetError("':' expected after object key");
      }
      ++pos_;
      SkipWhitespace();
      if (!Value(depth + 1)) {
        return false;
      }
      SkipWhitespace();
      if (!AtEnd() && Peek() == ',') {
        ++pos_;
        continue;
      }
      if (!AtEnd() && Peek() == '}') {
        ++pos_;
        return true;
      }
      return SetError("',' or '}' expected in object");
    }
  }

  bool Array(int depth) {
    ++pos_;  // '['
    SkipWhitespace();
    if (!AtEnd() && Peek() == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWhitespace();
      if (!Value(depth + 1)) {
        return false;
      }
      SkipWhitespace();
      if (!AtEnd() && Peek() == ',') {
        ++pos_;
        continue;
      }
      if (!AtEnd() && Peek() == ']') {
        ++pos_;
        return true;
      }
      return SetError("',' or ']' expected in array");
    }
  }

  bool Value(int depth) {
    if (depth > kMaxDepth) {
      return SetError("nesting too deep");
    }
    if (AtEnd()) {
      return SetError("value expected");
    }
    const char c = Peek();
    switch (c) {
      case '{':
        return Object(depth);
      case '[':
        return Array(depth);
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        if (c == '-' || std::isdigit(static_cast<unsigned char>(c)) != 0) {
          return Number();
        }
        return SetError("value expected");
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
  size_t error_offset_ = 0;
  std::string error_;
};

}  // namespace

JsonLintResult LintJson(std::string_view text) { return Linter(text).Run(); }

void WriteJsonString(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    const unsigned char byte = static_cast<unsigned char>(c);
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\r':
        os << "\\r";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (byte < 0x20 || byte >= 0x7f) {
          // The unsigned cast matters: formatting a negative char with
          // %04x would print a sign-extended 8-hex-digit escape, which is
          // not valid JSON.
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", byte);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

JsonLintResult LintJsonFile(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    JsonLintResult result;
    result.error = "cannot open file";
    return result;
  }
  std::ostringstream buffer;
  buffer << is.rdbuf();
  const std::string text = buffer.str();
  return LintJson(text);
}

}  // namespace edk
