#include "src/common/rng.h"

#include <cassert>
#include <cmath>
#include <unordered_set>

namespace edk {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& lane : s_) {
    lane = SplitMix64(sm);
  }
  // xoshiro must not start from the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) {
    s_[0] = 0x9e3779b97f4a7c15ULL;
  }
}

uint64_t Rng::operator()() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  assert(bound > 0);
  // Lemire's nearly-divisionless unbiased bounded generation.
  uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBelow(span));
}

double Rng::NextDouble() {
  // 53 high bits -> uniform in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return NextDouble() < p;
}

double Rng::NextExponential(double rate) {
  assert(rate > 0);
  double u;
  do {
    u = NextDouble();
  } while (u == 0.0);
  return -std::log(u) / rate;
}

double Rng::NextGaussian() {
  double u1;
  do {
    u1 = NextDouble();
  } while (u1 == 0.0);
  double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double Rng::NextPareto(double x_m, double alpha) {
  assert(x_m > 0 && alpha > 0);
  double u;
  do {
    u = NextDouble();
  } while (u == 0.0);
  return x_m / std::pow(u, 1.0 / alpha);
}

uint64_t Rng::NextGeometric(double p) {
  assert(p > 0 && p <= 1.0);
  if (p == 1.0) {
    return 0;
  }
  double u;
  do {
    u = NextDouble();
  } while (u == 0.0);
  return static_cast<uint64_t>(std::floor(std::log(u) / std::log1p(-p)));
}

uint64_t Rng::NextPoisson(double mean) {
  assert(mean >= 0);
  if (mean == 0) {
    return 0;
  }
  if (mean < 30.0) {
    // Knuth: multiply uniforms until the product drops below e^-mean.
    const double limit = std::exp(-mean);
    uint64_t k = 0;
    double product = NextDouble();
    while (product > limit) {
      ++k;
      product *= NextDouble();
    }
    return k;
  }
  // Normal approximation with continuity correction, clamped at zero.
  double sample = mean + std::sqrt(mean) * NextGaussian() + 0.5;
  if (sample < 0) {
    return 0;
  }
  return static_cast<uint64_t>(sample);
}

size_t Rng::NextWeighted(std::span<const double> weights) {
  double total = 0;
  for (double w : weights) {
    assert(w >= 0);
    total += w;
  }
  assert(total > 0);
  double target = NextDouble() * total;
  double cumulative = 0;
  for (size_t i = 0; i < weights.size(); ++i) {
    cumulative += weights[i];
    if (target < cumulative) {
      return i;
    }
  }
  return weights.size() - 1;  // Floating-point slack: fall back to the last bin.
}

Rng Rng::Fork() {
  // A fresh generator seeded from two draws keeps child streams decorrelated.
  uint64_t seed = (*this)() ^ Rotl((*this)(), 31);
  return Rng(seed);
}

std::vector<size_t> SampleWithoutReplacement(Rng& rng, size_t n, size_t k) {
  assert(k <= n);
  // Floyd's algorithm.
  std::unordered_set<size_t> chosen;
  std::vector<size_t> result;
  result.reserve(k);
  for (size_t j = n - k; j < n; ++j) {
    size_t t = rng.NextBelow(j + 1);
    if (chosen.contains(t)) {
      t = j;
    }
    chosen.insert(t);
    result.push_back(t);
  }
  return result;
}

}  // namespace edk
