// Low-level wire primitives shared by the binary serialisation formats
// (trace snapshots in src/trace/serialize.cc, span streams in
// src/obs/trace_log.cc). Exposed from edk_common so layers below edk_trace
// can reuse the encoding without a dependency cycle; src/trace/serialize.h
// re-exports the same `edk::wire` names for its existing includers.

#ifndef SRC_COMMON_VARINT_H_
#define SRC_COMMON_VARINT_H_

#include <cstdint>
#include <iosfwd>

namespace edk::wire {

// LEB128-style variable-length encoding; at most 10 bytes per value.
void WriteVarint(std::ostream& os, uint64_t v);

// Reads one varint. Returns false on EOF and on any encoding that does not
// fit in 64 bits: an 11th continuation byte, or a 10th byte carrying more
// than the single bit that remains (the old decoder silently dropped those
// high bits, so two distinct byte strings aliased to the same value).
bool ReadVarint(std::istream& is, uint64_t& v);

}  // namespace edk::wire

#endif  // SRC_COMMON_VARINT_H_
