// Low-level wire primitives shared by the binary serialisation formats
// (trace snapshots in src/trace/serialize.cc, span streams in
// src/obs/trace_log.cc). Exposed from edk_common so layers below edk_trace
// can reuse the encoding without a dependency cycle; src/trace/serialize.h
// re-exports the same `edk::wire` names for its existing includers.

#ifndef SRC_COMMON_VARINT_H_
#define SRC_COMMON_VARINT_H_

#include <cstdint>
#include <iosfwd>
#include <string>

namespace edk::wire {

// LEB128-style variable-length encoding; at most 10 bytes per value.
void WriteVarint(std::ostream& os, uint64_t v);

// Reads one varint. Returns false on EOF and on any encoding that does not
// fit in 64 bits: an 11th continuation byte, or a 10th byte carrying more
// than the single bit that remains (the old decoder silently dropped those
// high bits, so two distinct byte strings aliased to the same value).
bool ReadVarint(std::istream& is, uint64_t& v);

// Memory-buffer twins of the stream primitives, with identical encoding
// rules (the EDKT v2 reader decodes mmapped segments in place). The read
// variant advances `p` past the consumed bytes on success and applies the
// same overlong-encoding rejections as the stream decoder. It is inline:
// the streaming scan decodes one varint per column entry, and the call
// would otherwise dominate the day-segment decode.
void AppendVarint(std::string& out, uint64_t v);

inline bool ReadVarint(const uint8_t*& p, const uint8_t* end, uint64_t& v) {
  const uint8_t* cursor = p;
  if (cursor != end && *cursor < 0x80) {  // Single-byte values dominate.
    v = *cursor;
    p = cursor + 1;
    return true;
  }
  v = 0;
  int shift = 0;
  while (shift < 64) {
    if (cursor == end) {
      return false;
    }
    const uint8_t byte = *cursor++;
    const uint64_t payload = byte & 0x7f;
    // Same overlong rule as the stream decoder: the 10th byte has room for
    // one bit only.
    if (shift == 63 && payload > 1) {
      return false;
    }
    v |= payload << shift;
    if ((byte & 0x80) == 0) {
      p = cursor;
      return true;
    }
    shift += 7;
  }
  return false;  // Continuation bit on the 10th byte: > 64 bits.
}

// ZigZag mapping for signed values (trace day numbers): small magnitudes
// of either sign encode to short varints.
inline uint64_t ZigZagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}
inline int64_t ZigZagDecode(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

}  // namespace edk::wire

#endif  // SRC_COMMON_VARINT_H_
