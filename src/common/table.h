// Plain-text table and CSV emitters used by the bench harnesses to print
// the rows/series of each paper table and figure.

#ifndef SRC_COMMON_TABLE_H_
#define SRC_COMMON_TABLE_H_

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace edk {

// Accumulates rows of strings and renders them as an aligned ASCII table.
class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> headers);

  // Adds one row; the row is padded or truncated to the header width.
  void AddRow(std::vector<std::string> cells);

  // Convenience: formats arithmetic cells with default precision.
  template <typename... Args>
  void AddRowValues(const Args&... args) {
    AddRow({FormatCell(args)...});
  }

  void Print(std::ostream& os) const;
  std::string ToString() const;

  size_t rows() const { return rows_.size(); }

  static std::string FormatCell(const std::string& v) { return v; }
  static std::string FormatCell(const char* v) { return v; }
  static std::string FormatCell(double v);
  static std::string FormatCell(float v) { return FormatCell(static_cast<double>(v)); }
  static std::string FormatCell(int v) { return std::to_string(v); }
  static std::string FormatCell(long v) { return std::to_string(v); }
  static std::string FormatCell(long long v) { return std::to_string(v); }
  static std::string FormatCell(unsigned v) { return std::to_string(v); }
  static std::string FormatCell(unsigned long v) { return std::to_string(v); }
  static std::string FormatCell(unsigned long long v) { return std::to_string(v); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Minimal CSV writer with RFC-4180-style quoting.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& os) : os_(os) {}

  void WriteRow(const std::vector<std::string>& cells);

 private:
  static std::string Escape(const std::string& cell);
  std::ostream& os_;
};

// Formats a byte count in binary units ("318.0 TB" style, as in Table 1).
std::string FormatBytes(double bytes);

// Formats 0.4131 as "41.3%".
std::string FormatPercent(double fraction, int decimals = 1);

}  // namespace edk

#endif  // SRC_COMMON_TABLE_H_
