#include "src/common/zipf.h"

#include <cassert>
#include <cmath>

namespace edk {

namespace {

// log1p(x) / x, continuous at 0 (value 1). Accurate for |x| << 1.
double Helper1(double x) {
  if (std::abs(x) > 1e-8) {
    return std::log1p(x) / x;
  }
  return 1.0 - x * (0.5 - x * (1.0 / 3.0 - 0.25 * x));
}

// expm1(x) / x, continuous at 0 (value 1).
double Helper2(double x) {
  if (std::abs(x) > 1e-8) {
    return std::expm1(x) / x;
  }
  return 1.0 + 0.5 * x * (1.0 + x / 3.0 * (1.0 + 0.25 * x));
}

}  // namespace

ZipfSampler::ZipfSampler(uint64_t n, double s) : n_(n), s_(s) {
  assert(n >= 1);
  assert(s >= 0);
  h_x1_ = H(1.5) - 1.0;
  h_n_ = H(static_cast<double>(n) + 0.5);
  normalization_ = GeneralizedHarmonic(n, s);
  acceptance_slack_ = 2.0 - HInverse(H(2.5) - std::exp(-s * std::log(2.0)));
}

// H(x) = integral of t^-s from some fixed point: ((x^(1-s)) - 1) / (1 - s),
// expressed via expm1 for stability near s == 1 (where it tends to log x).
double ZipfSampler::H(double x) const {
  const double log_x = std::log(x);
  return Helper2((1.0 - s_) * log_x) * log_x;
}

double ZipfSampler::HInverse(double x) const {
  double t = x * (1.0 - s_);
  if (t < -1.0) {
    // Numerical guard: t may slip below the domain boundary by rounding.
    t = -1.0;
  }
  return std::exp(Helper1(t) * x);
}

uint64_t ZipfSampler::Sample(Rng& rng) const {
  if (n_ == 1) {
    return 1;
  }
  if (s_ == 0.0) {
    return rng.NextBelow(n_) + 1;
  }
  // Rejection-inversion sampling (Hörmann & Derflinger 1996). The hat
  // function is the continuous density t^-s shifted by 1/2, which majorises
  // the discrete pmf; acceptance is tested in the integrated (H) domain.
  while (true) {
    const double u = h_n_ + rng.NextDouble() * (h_x1_ - h_n_);
    // u is uniform in (h_x1_, h_n_].
    const double x = HInverse(u);
    uint64_t k = static_cast<uint64_t>(x + 0.5);
    if (k < 1) {
      k = 1;
    } else if (k > n_) {
      k = n_;
    }
    const double kd = static_cast<double>(k);
    if (kd - x <= acceptance_slack_ ||
        u >= H(kd + 0.5) - std::exp(-s_ * std::log(kd))) {
      return k;
    }
  }
}

double ZipfSampler::Pmf(uint64_t k) const {
  assert(k >= 1 && k <= n_);
  return std::pow(static_cast<double>(k), -s_) / normalization_;
}

double GeneralizedHarmonic(uint64_t n, double s) {
  // Backward summation accumulates the many small tail terms first, which
  // is more accurate for the n used in this project (up to ~1e8).
  double sum = 0;
  for (uint64_t k = n; k >= 1; --k) {
    sum += std::pow(static_cast<double>(k), -s);
  }
  return sum;
}

}  // namespace edk
