#include "src/common/log.h"

#include <iostream>

namespace edk {

namespace {

LogLevel g_level = LogLevel::kInfo;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }

LogLevel GetLogLevel() { return g_level; }

void LogMessage(LogLevel level, const std::string& message) {
  if (level < g_level) {
    return;
  }
  std::cerr << '[' << LevelName(level) << "] " << message << '\n';
}

LogStream::~LogStream() {
  if (level_ >= GetLogLevel()) {
    LogMessage(level_, buffer_.str());
  }
}

}  // namespace edk
