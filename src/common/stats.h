// Descriptive statistics used throughout the analysis modules: empirical
// CDFs, histograms, running summaries, quantiles and log-log regression
// (for checking Zipf-like tails, paper Fig. 5).

#ifndef SRC_COMMON_STATS_H_
#define SRC_COMMON_STATS_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace edk {

// Incremental mean / variance / extrema (Welford's algorithm).
class RunningSummary {
 public:
  void Add(double x);

  uint64_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double min() const { return min_; }
  double max() const { return max_; }
  // Unbiased sample variance; 0 when fewer than two observations.
  double variance() const;
  double stddev() const;
  double sum() const { return sum_; }

 private:
  uint64_t count_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

// Empirical CDF over a fixed sample. Construction sorts a copy of the data.
class EmpiricalCdf {
 public:
  explicit EmpiricalCdf(std::vector<double> samples);

  // Fraction of samples <= x.
  double At(double x) const;

  // Smallest sample value v with At(v) >= q. q is clamped to [0, 1]
  // (q <= 0 returns the minimum sample, q >= 1 the maximum); returns NaN
  // for an empty sample or NaN q. Safe in release (NDEBUG) builds: no
  // assert-only guarding.
  double Quantile(double q) const;

  size_t size() const { return sorted_.size(); }
  const std::vector<double>& sorted() const { return sorted_; }

  // Evaluates the CDF at each of the given points (convenience for plotting
  // the same x-axis the paper uses).
  std::vector<double> Evaluate(std::span<const double> points) const;

 private:
  std::vector<double> sorted_;
};

// Fixed-bin histogram on [lo, hi). Out-of-range samples are NOT folded into
// the edge bins (that silently skews distribution tails, e.g. the size-CDF
// of Fig. 6); they are tracked as explicit underflow/overflow counts and
// excluded from Fraction().
class Histogram {
 public:
  Histogram(double lo, double hi, size_t bins);

  void Add(double x);
  // All observations, including out-of-range ones.
  uint64_t total() const { return total_; }
  uint64_t underflow() const { return underflow_; }
  uint64_t overflow() const { return overflow_; }
  // Observations that landed in a bin.
  uint64_t in_range() const { return total_ - underflow_ - overflow_; }
  size_t bins() const { return counts_.size(); }
  uint64_t count(size_t bin) const { return counts_[bin]; }
  double BinLow(size_t bin) const;
  double BinHigh(size_t bin) const;
  // Fraction of *in-range* observations in `bin`.
  double Fraction(size_t bin) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
  uint64_t underflow_ = 0;
  uint64_t overflow_ = 0;
};

struct LinearFit {
  double slope = 0;
  double intercept = 0;
  double r_squared = 0;
};

// Ordinary least squares fit of y = slope * x + intercept.
LinearFit FitLine(std::span<const double> xs, std::span<const double> ys);

// Fits log(y) = slope * log(x) + intercept, skipping non-positive points.
// A Zipf-like sample yields slope close to -s.
LinearFit FitLogLog(std::span<const double> xs, std::span<const double> ys);

// Gini coefficient of a non-negative sample: 0 = perfectly equal
// contribution, 1 = single contributor. Used for sharing-skew reporting.
double GiniCoefficient(std::vector<double> values);

// Returns logarithmically spaced values between lo and hi inclusive
// (both > 0), useful for log-scale plot axes.
std::vector<double> LogSpace(double lo, double hi, size_t points);

}  // namespace edk

#endif  // SRC_COMMON_STATS_H_
