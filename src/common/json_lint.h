// Minimal JSON well-formedness checker (RFC 8259 grammar, no DOM).
//
// The observability exporters (MetricsRegistry::WriteJson, the Chrome
// trace-event writer in src/obs/trace_log.cc) hand-emit JSON for speed;
// this linter is the cheap independent check that what they produced is
// actually parseable — used by their regression tests, by
// `edk-trace-inspect validate-json`, and by the CI trace smoke step.
// It validates structure and string/number syntax only; it does not build
// a document and does not validate UTF-8 beyond the escape grammar.

#ifndef SRC_COMMON_JSON_LINT_H_
#define SRC_COMMON_JSON_LINT_H_

#include <iosfwd>
#include <string>
#include <string_view>

namespace edk {

struct JsonLintResult {
  bool ok = false;
  // Byte offset of the first error and a short description; meaningful
  // only when !ok.
  size_t offset = 0;
  std::string error;
};

// Checks that `text` is exactly one JSON value (plus surrounding
// whitespace). Nesting depth is capped at 256 to bound recursion.
JsonLintResult LintJson(std::string_view text);

// Convenience: lints the whole content of `path`. Unreadable files report
// ok=false with an explanatory error.
JsonLintResult LintJsonFile(const std::string& path);

// Writes `s` as a quoted JSON string, escaping quotes, backslashes,
// control characters AND every byte >= 0x7f as \u00xx. The high-byte
// escaping is deliberate: names are arbitrary byte strings, and passing
// non-UTF-8 bytes through raw would make the surrounding document
// unparseable; escaping per byte keeps the output valid JSON for any
// input (non-ASCII UTF-8 decodes as Latin-1, an accepted trade-off for
// identifier-style names). The shared escaper behind MetricsRegistry's
// JSON export and the Chrome trace writer.
void WriteJsonString(std::ostream& os, std::string_view s);

}  // namespace edk

#endif  // SRC_COMMON_JSON_LINT_H_
