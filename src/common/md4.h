// MD4 message digest (RFC 1320), implemented from scratch.
//
// eDonkey identifies files by an MD4 hash: each 9.5 MB block is hashed, and
// the file identifier is the MD4 of the concatenated block hashes (paper
// §2.1). The net substrate uses this exact scheme for corruption detection
// and for generating file identifiers.

#ifndef SRC_COMMON_MD4_H_
#define SRC_COMMON_MD4_H_

#include <array>
#include <cstdint>
#include <cstddef>
#include <span>
#include <string>

namespace edk {

using Md4Digest = std::array<uint8_t, 16>;

// Streaming MD4. Usage: construct, Update() any number of times, Finish().
class Md4 {
 public:
  Md4();

  void Update(std::span<const uint8_t> data);
  void Update(std::string_view data);

  // Finalises and returns the digest. The object must not be reused after.
  Md4Digest Finish();

  // One-shot convenience.
  static Md4Digest Hash(std::span<const uint8_t> data);
  static Md4Digest Hash(std::string_view data);

 private:
  void ProcessBlock(const uint8_t* block);

  uint32_t state_[4];
  uint64_t total_bytes_ = 0;
  uint8_t buffer_[64];
  size_t buffered_ = 0;
  bool finished_ = false;
};

// Lowercase hex rendering of a digest.
std::string ToHex(const Md4Digest& digest);

// eDonkey file identifier: MD4 of the whole content if it fits one block,
// otherwise MD4 of the concatenation of per-block MD4 digests.
// block_size defaults to the eDonkey block size of 9,728,000 bytes.
Md4Digest EdonkeyFileId(std::span<const uint8_t> content,
                        size_t block_size = 9'728'000);

}  // namespace edk

#endif  // SRC_COMMON_MD4_H_
