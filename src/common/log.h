// Lightweight leveled logger for the simulators and bench harnesses.
//
// Not thread-aware by design: the workbench is a single-threaded
// discrete-event simulation; serialising stderr writes is all we need.

#ifndef SRC_COMMON_LOG_H_
#define SRC_COMMON_LOG_H_

#include <sstream>
#include <string>

namespace edk {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Global minimum level; messages below it are discarded cheaply.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Emits one formatted line to stderr: "[LEVEL] message".
void LogMessage(LogLevel level, const std::string& message);

// Stream-style helper: Log(LogLevel::kInfo) << "x = " << x;
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream();

  template <typename T>
  LogStream& operator<<(const T& value) {
    if (level_ >= GetLogLevel()) {
      buffer_ << value;
    }
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream buffer_;
};

inline LogStream Log(LogLevel level) { return LogStream(level); }

}  // namespace edk

#endif  // SRC_COMMON_LOG_H_
