#include "src/common/varint.h"

#include <istream>
#include <ostream>

namespace edk::wire {

void WriteVarint(std::ostream& os, uint64_t v) {
  while (v >= 0x80) {
    const uint8_t byte = static_cast<uint8_t>(v) | 0x80;
    os.write(reinterpret_cast<const char*>(&byte), 1);
    v >>= 7;
  }
  const uint8_t byte = static_cast<uint8_t>(v);
  os.write(reinterpret_cast<const char*>(&byte), 1);
}

void AppendVarint(std::string& out, uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>(static_cast<uint8_t>(v) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(static_cast<uint8_t>(v)));
}

bool ReadVarint(std::istream& is, uint64_t& v) {
  v = 0;
  int shift = 0;
  while (shift < 64) {
    uint8_t byte = 0;
    if (!is.read(reinterpret_cast<char*>(&byte), 1)) {
      return false;
    }
    const uint64_t payload = byte & 0x7f;
    // The 10th byte (shift 63) has room for a single bit. A larger payload
    // used to be shifted anyway, silently dropping its high bits — two
    // distinct encodings aliased to one value. Reject instead.
    if (shift == 63 && payload > 1) {
      return false;
    }
    v |= payload << shift;
    if ((byte & 0x80) == 0) {
      return true;
    }
    shift += 7;
  }
  return false;  // Continuation bit on the 10th byte: > 64 bits.
}

}  // namespace edk::wire
