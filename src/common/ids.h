// Strongly typed identifiers for the entities of the workbench.
//
// Peer, file, server, country and AS identifiers are all integer-backed but
// mutually incompatible at the type level, which rules out a whole class of
// index-mixup bugs in the analysis code.

#ifndef SRC_COMMON_IDS_H_
#define SRC_COMMON_IDS_H_

#include <cstdint>
#include <functional>

namespace edk {

// CRTP-free strong id: distinct Tag types produce distinct, non-convertible
// wrappers around uint32_t.
template <typename Tag>
struct StrongId {
  uint32_t value = kInvalid;

  static constexpr uint32_t kInvalid = 0xffffffffu;

  constexpr StrongId() = default;
  constexpr explicit StrongId(uint32_t v) : value(v) {}

  constexpr bool valid() const { return value != kInvalid; }
  constexpr auto operator<=>(const StrongId&) const = default;
};

struct PeerTag {};
struct FileTag {};
struct ServerTag {};
struct CountryTag {};
struct AsTag {};
struct TopicTag {};

using PeerId = StrongId<PeerTag>;
using FileId = StrongId<FileTag>;
using ServerId = StrongId<ServerTag>;
using CountryId = StrongId<CountryTag>;
using AsId = StrongId<AsTag>;
using TopicId = StrongId<TopicTag>;

}  // namespace edk

// Hash support so strong ids can key unordered containers.
template <typename Tag>
struct std::hash<edk::StrongId<Tag>> {
  size_t operator()(const edk::StrongId<Tag>& id) const noexcept {
    // Fibonacci hashing spreads sequential ids across buckets.
    return static_cast<size_t>(id.value) * 0x9e3779b97f4a7c15ULL >> 32;
  }
};

#endif  // SRC_COMMON_IDS_H_
