// Bounded Zipf(s, n) sampling.
//
// File popularity in peer-to-peer workloads follows a Zipf-like law (paper
// §3, Fig. 5). The generator needs to draw millions of ranks from such a
// distribution, so we implement the rejection-inversion sampler of
// Hörmann & Derflinger (1996), which is O(1) per draw regardless of n.

#ifndef SRC_COMMON_ZIPF_H_
#define SRC_COMMON_ZIPF_H_

#include <cstdint>

#include "src/common/rng.h"

namespace edk {

// Samples ranks in [1, n] with P(k) proportional to 1 / k^s.
// s >= 0 (s == 0 degenerates to the uniform distribution on [1, n]).
class ZipfSampler {
 public:
  ZipfSampler(uint64_t n, double s);

  uint64_t n() const { return n_; }
  double s() const { return s_; }

  // Draws one rank in [1, n].
  uint64_t Sample(Rng& rng) const;

  // Probability mass of rank k under this distribution.
  double Pmf(uint64_t k) const;

 private:
  // H(x) is the integral of the (continuous relaxation of the) unnormalised
  // density; HInverse is its inverse. Both are closed-form.
  double H(double x) const;
  double HInverse(double x) const;

  uint64_t n_;
  double s_;
  double h_x1_;              // H(1.5) - 1
  double h_n_;               // H(n + 0.5)
  double normalization_;     // generalized harmonic number H_{n,s}
  double acceptance_slack_;  // fast-accept threshold, see Hörmann & Derflinger
};

// Generalized harmonic number sum_{k=1..n} 1/k^s (exact summation; O(n),
// intended for setup and tests rather than inner loops).
double GeneralizedHarmonic(uint64_t n, double s);

}  // namespace edk

#endif  // SRC_COMMON_ZIPF_H_
