// Deterministic pseudo-random number generation for simulations.
//
// All stochastic components of the workbench draw from Rng so that every
// experiment is reproducible from a single 64-bit seed. The generator is
// xoshiro256** (Blackman & Vigna), seeded through SplitMix64; both are
// implemented here to avoid any dependence on the standard library's
// unspecified distributions.

#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace edk {

// SplitMix64 step: used for seeding and as a cheap stateless mixer.
uint64_t SplitMix64(uint64_t& state);

// xoshiro256** generator. Satisfies the C++ UniformRandomBitGenerator
// concept so it can also drive <random> machinery when needed.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<uint64_t>::max(); }

  // Raw 64 random bits.
  uint64_t operator()();

  // Uniform integer in [0, bound). bound must be > 0. Uses Lemire's
  // multiply-shift rejection method (unbiased).
  uint64_t NextBelow(uint64_t bound);

  // Uniform integer in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // Bernoulli trial with success probability p (clamped to [0,1]).
  bool NextBool(double p);

  // Exponentially distributed double with the given rate (> 0).
  double NextExponential(double rate);

  // Standard normal via Box-Muller (no caching; both values derivable).
  double NextGaussian();

  // Pareto-distributed double with scale x_m > 0 and shape alpha > 0.
  double NextPareto(double x_m, double alpha);

  // Geometrically distributed count of failures before first success,
  // success probability p in (0, 1].
  uint64_t NextGeometric(double p);

  // Poisson-distributed count with the given mean (>= 0). Uses Knuth's
  // method for small means and a normal approximation for large means.
  uint64_t NextPoisson(double mean);

  // Index into a discrete weight vector, proportional to weights[i].
  // Weights must be non-negative with a positive sum.
  size_t NextWeighted(std::span<const double> weights);

  // Fisher-Yates shuffle of the given vector.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = NextBelow(i);
      std::swap(items[i - 1], items[j]);
    }
  }

  // Derive an independent child generator (for parallel or per-entity
  // streams) without correlating with this generator's future output.
  Rng Fork();

 private:
  uint64_t s_[4];
};

// Picks k distinct indices uniformly from [0, n). Order is unspecified.
// Requires k <= n. Uses Floyd's algorithm: O(k) expected time.
std::vector<size_t> SampleWithoutReplacement(Rng& rng, size_t n, size_t k);

}  // namespace edk

#endif  // SRC_COMMON_RNG_H_
