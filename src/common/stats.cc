#include "src/common/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>

namespace edk {

void RunningSummary::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningSummary::variance() const {
  if (count_ < 2) {
    return 0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningSummary::stddev() const { return std::sqrt(variance()); }

EmpiricalCdf::EmpiricalCdf(std::vector<double> samples) : sorted_(std::move(samples)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::At(double x) const {
  if (sorted_.empty()) {
    return 0;
  }
  auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

double EmpiricalCdf::Quantile(double q) const {
  // Explicit edge handling rather than asserts: under NDEBUG the old
  // assert-guarded path computed ceil(0) - 1 == SIZE_MAX for q == 0 and the
  // clamp then returned the *maximum* sample instead of the minimum.
  if (sorted_.empty() || std::isnan(q)) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  if (q <= 0.0) {
    return sorted_.front();
  }
  if (q >= 1.0) {
    return sorted_.back();
  }
  // q in (0, 1): ceil(q * n) >= 1, so the subtraction cannot wrap.
  const size_t index =
      static_cast<size_t>(std::ceil(q * static_cast<double>(sorted_.size()))) - 1;
  return sorted_[std::min(index, sorted_.size() - 1)];
}

std::vector<double> EmpiricalCdf::Evaluate(std::span<const double> points) const {
  std::vector<double> out;
  out.reserve(points.size());
  for (double p : points) {
    out.push_back(At(p));
  }
  return out;
}

Histogram::Histogram(double lo, double hi, size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  assert(hi > lo);
  assert(bins > 0);
}

void Histogram::Add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  size_t bin = static_cast<size_t>((x - lo_) / width_);
  bin = std::min(bin, counts_.size() - 1);  // Floating-point edge guard.
  ++counts_[bin];
}

double Histogram::BinLow(size_t bin) const { return lo_ + width_ * static_cast<double>(bin); }

double Histogram::BinHigh(size_t bin) const {
  return lo_ + width_ * static_cast<double>(bin + 1);
}

double Histogram::Fraction(size_t bin) const {
  const uint64_t in = in_range();
  if (in == 0) {
    return 0;
  }
  return static_cast<double>(counts_[bin]) / static_cast<double>(in);
}

LinearFit FitLine(std::span<const double> xs, std::span<const double> ys) {
  assert(xs.size() == ys.size());
  LinearFit fit;
  const size_t n = xs.size();
  if (n < 2) {
    return fit;
  }
  double mean_x = 0;
  double mean_y = 0;
  for (size_t i = 0; i < n; ++i) {
    mean_x += xs[i];
    mean_y += ys[i];
  }
  mean_x /= static_cast<double>(n);
  mean_y /= static_cast<double>(n);
  double sxx = 0;
  double sxy = 0;
  double syy = 0;
  for (size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mean_x;
    const double dy = ys[i] - mean_y;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx == 0) {
    return fit;
  }
  fit.slope = sxy / sxx;
  fit.intercept = mean_y - fit.slope * mean_x;
  fit.r_squared = syy == 0 ? 1.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

LinearFit FitLogLog(std::span<const double> xs, std::span<const double> ys) {
  std::vector<double> lx;
  std::vector<double> ly;
  lx.reserve(xs.size());
  ly.reserve(ys.size());
  for (size_t i = 0; i < xs.size() && i < ys.size(); ++i) {
    if (xs[i] > 0 && ys[i] > 0) {
      lx.push_back(std::log(xs[i]));
      ly.push_back(std::log(ys[i]));
    }
  }
  return FitLine(lx, ly);
}

double GiniCoefficient(std::vector<double> values) {
  if (values.empty()) {
    return 0;
  }
  std::sort(values.begin(), values.end());
  const double total = std::accumulate(values.begin(), values.end(), 0.0);
  if (total <= 0) {
    return 0;
  }
  double weighted = 0;
  for (size_t i = 0; i < values.size(); ++i) {
    weighted += static_cast<double>(i + 1) * values[i];
  }
  const double n = static_cast<double>(values.size());
  return (2.0 * weighted) / (n * total) - (n + 1.0) / n;
}

std::vector<double> LogSpace(double lo, double hi, size_t points) {
  assert(lo > 0 && hi > lo);
  assert(points >= 2);
  std::vector<double> out;
  out.reserve(points);
  const double log_lo = std::log(lo);
  const double log_hi = std::log(hi);
  for (size_t i = 0; i < points; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(points - 1);
    out.push_back(std::exp(log_lo + t * (log_hi - log_lo)));
  }
  return out;
}

}  // namespace edk
