// A set with O(1) insert, erase, membership test AND O(1) uniform random
// element selection. The trace randomisation algorithm (paper appendix)
// performs ~N·ln(N)/2 swap attempts, each needing a random member and two
// membership tests, so all four operations must be constant time.

#ifndef SRC_COMMON_RANDOM_ACCESS_SET_H_
#define SRC_COMMON_RANDOM_ACCESS_SET_H_

#include <cassert>
#include <unordered_map>
#include <vector>

#include "src/common/rng.h"

namespace edk {

template <typename T>
class RandomAccessSet {
 public:
  RandomAccessSet() = default;

  // Returns false if the value was already present.
  bool Insert(const T& value) {
    auto [it, inserted] = index_.try_emplace(value, items_.size());
    if (!inserted) {
      return false;
    }
    items_.push_back(value);
    return true;
  }

  // Returns false if the value was absent. Erase is swap-with-last.
  bool Erase(const T& value) {
    auto it = index_.find(value);
    if (it == index_.end()) {
      return false;
    }
    const size_t pos = it->second;
    const size_t last = items_.size() - 1;
    if (pos != last) {
      items_[pos] = items_[last];
      index_[items_[pos]] = pos;
    }
    items_.pop_back();
    index_.erase(it);
    return true;
  }

  bool Contains(const T& value) const { return index_.contains(value); }

  size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }

  const T& RandomElement(Rng& rng) const {
    assert(!items_.empty());
    return items_[rng.NextBelow(items_.size())];
  }

  const T& operator[](size_t i) const { return items_[i]; }

  const std::vector<T>& items() const { return items_; }

  void Reserve(size_t n) {
    items_.reserve(n);
    index_.reserve(n);
  }

  void Clear() {
    items_.clear();
    index_.clear();
  }

  auto begin() const { return items_.begin(); }
  auto end() const { return items_.end(); }

 private:
  std::vector<T> items_;
  std::unordered_map<T, size_t> index_;
};

}  // namespace edk

#endif  // SRC_COMMON_RANDOM_ACCESS_SET_H_
