// Simulated crawler reproducing the paper's measurement process (§2.2).
//
// The crawler is an instrumented client (the paper modified MLdonkey). It
// connects to every known server, discovers more servers through the server
// lists, enumerates users with repeated nickname-prefix query-users requests
// (server replies are capped at 200 users), filters out firewalled clients,
// and browses the remaining clients' caches once per day under a declining
// browse budget — the same bandwidth artefact that makes the paper's Fig. 1
// client counts sink from 65k to 35k.
//
// RunCrawlSimulation() wires the crawler to a full simulated eDonkey
// network whose peers behave per the workload model, and returns both the
// observed trace (what the crawler saw) and the ground truth (what a
// perfect observer would have seen) so the measurement bias itself can be
// studied.

#ifndef SRC_CRAWLER_CRAWLER_H_
#define SRC_CRAWLER_CRAWLER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/net/client.h"
#include "src/net/network.h"
#include "src/net/server.h"
#include "src/trace/trace.h"
#include "src/workload/config.h"

namespace edk {

struct CrawlConfig {
  WorkloadConfig workload;
  uint32_t num_servers = 4;
  // query-users prefixes of this length are enumerated ("aa".."zz" for 2;
  // the paper used all 26^3 three-letter prefixes).
  uint32_t prefix_length = 2;
  // Browses the crawler can perform on day 0; decays geometrically, which
  // reproduces the declining daily coverage of Fig. 1.
  uint32_t initial_daily_browse_budget = 1'000'000;
  double browse_budget_decay = 0.985;
};

struct CrawlDayStats {
  int day = 0;
  uint32_t users_discovered = 0;   // Distinct users returned by query-users.
  uint32_t reachable_users = 0;    // After the firewall filter.
  uint32_t browses_attempted = 0;
  uint32_t browses_succeeded = 0;
  uint64_t files_seen = 0;         // Sum of browsed cache sizes.
};

struct CrawlResult {
  Trace observed;      // Snapshots only for peers the crawler browsed.
  Trace ground_truth;  // Snapshots for every online peer (perfect observer).
  std::vector<CrawlDayStats> days;
  uint64_t messages_sent = 0;  // Total simulated network messages.
};

CrawlResult RunCrawlSimulation(const CrawlConfig& config);

// All letter prefixes of the given length ("a".."z", "aa".."zz", ...).
std::vector<std::string> MakePrefixes(uint32_t length);

// Deterministic searchable display name for a catalog file: tokens carry
// the topic, in-topic rank and category so keyword search is exercised.
std::string SyntheticFileName(uint32_t file_index, const FileMeta& meta,
                              uint32_t topic_rank);

}  // namespace edk

#endif  // SRC_CRAWLER_CRAWLER_H_
