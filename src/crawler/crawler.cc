#include "src/crawler/crawler.h"

#include <algorithm>
#include <cassert>
#include <memory>
#include <unordered_set>

#include "src/common/log.h"
#include "src/workload/behaviour.h"
#include "src/workload/catalog.h"
#include "src/workload/population.h"

namespace edk {

std::vector<std::string> MakePrefixes(uint32_t length) {
  assert(length >= 1 && length <= 3);
  std::vector<std::string> prefixes = {""};
  for (uint32_t i = 0; i < length; ++i) {
    std::vector<std::string> next;
    next.reserve(prefixes.size() * 26);
    for (const std::string& prefix : prefixes) {
      for (char c = 'a'; c <= 'z'; ++c) {
        next.push_back(prefix + c);
      }
    }
    prefixes = std::move(next);
  }
  return prefixes;
}

std::string SyntheticFileName(uint32_t file_index, const FileMeta& meta,
                              uint32_t topic_rank) {
  static constexpr const char* kExtensions[] = {".mp3", ".avi", ".zip",
                                                ".exe", ".pdf", ".bin"};
  std::string name = "t" + std::to_string(meta.topic.value) + " r" +
                     std::to_string(topic_rank) + " " +
                     FileCategoryName(meta.category) + " f" +
                     std::to_string(file_index) +
                     kExtensions[static_cast<size_t>(meta.category)];
  return name;
}

namespace {

constexpr double kSecondsPerDay = 86'400.0;

// Random lowercase nickname whose first characters are letters, so the
// prefix enumeration can find it.
std::string RandomNickname(Rng& rng) {
  const size_t length = 4 + rng.NextBelow(6);
  std::string name;
  name.reserve(length);
  for (size_t i = 0; i < length; ++i) {
    name.push_back(static_cast<char>('a' + rng.NextBelow(26)));
  }
  return name;
}

class CrawlSimulation {
 public:
  explicit CrawlSimulation(const CrawlConfig& config)
      : config_(config),
        geography_(Geography::PaperDistribution()),
        rng_(config.workload.seed),
        catalog_(config.workload, geography_, rng_),
        population_(config.workload, geography_, catalog_, rng_),
        engine_(config.workload, catalog_, population_, rng_),
        network_(&geography_, config.workload.seed ^ 0x9e3779b97f4a7c15ULL),
        file_infos_(catalog_.file_count()) {}

  CrawlResult Run();

 private:
  const SharedFileInfo& InfoFor(uint32_t file_index);
  void SetupNodes();
  void SyncClientCache(uint32_t peer_index);
  void ConnectOnlinePeers(double day_start);
  void DisconnectAll();
  // The crawler's day: enumerate users on every server, browse reachable
  // ones under the day's budget, record observed snapshots.
  void CrawlDay(int day, uint32_t budget, CrawlDayStats& stats);

  CrawlConfig config_;
  Geography geography_;
  Rng rng_;
  FileCatalog catalog_;
  PeerPopulation population_;
  BehaviourEngine engine_;
  SimNetwork network_;

  std::vector<std::unique_ptr<SimServer>> servers_;
  std::vector<std::unique_ptr<SimClient>> clients_;     // One per peer.
  std::vector<std::unique_ptr<SimClient>> probes_;      // Crawler, one per server.
  std::vector<std::unordered_set<uint32_t>> synced_;    // Files mirrored per peer.
  std::vector<SharedFileInfo> file_infos_;              // Lazy per catalog file.
  std::vector<uint8_t> online_now_;

  CrawlResult result_;
};

const SharedFileInfo& CrawlSimulation::InfoFor(uint32_t file_index) {
  SharedFileInfo& info = file_infos_[file_index];
  if (info.name.empty()) {
    const CatalogFile& file = catalog_.file(file_index);
    info = SimClient::MakeFileInfo(
        FileId(file_index), file.meta.size_bytes,
        SyntheticFileName(file_index, file.meta, file.topic_rank));
  }
  return info;
}

void CrawlSimulation::SetupNodes() {
  // Servers, attached to the biggest countries (operators of that era ran
  // the large servers in DE and FR).
  servers_.reserve(config_.num_servers);
  for (uint32_t s = 0; s < config_.num_servers; ++s) {
    auto server = std::make_unique<SimServer>(&network_, ServerConfig{});
    const CountryId country = geography_.SampleCountry(network_.rng());
    server->set_attachment(country, geography_.SampleAs(country, network_.rng()));
    servers_.push_back(std::move(server));
  }
  // Full server mesh: the server list is the only server-server data (§2.1).
  for (auto& a : servers_) {
    for (auto& b : servers_) {
      a->AddKnownServer(b->node_id());
    }
  }

  clients_.reserve(population_.size());
  synced_.resize(population_.size());
  for (uint32_t p = 0; p < population_.size(); ++p) {
    const PeerProfile& profile = population_.profile(p);
    ClientConfig client_config;
    client_config.nickname = RandomNickname(network_.rng());
    client_config.firewalled = profile.info.firewalled;
    client_config.uplink_bytes_per_second =
        network_.latency().SampleUplinkBytesPerSecond(network_.rng());
    auto client = std::make_unique<SimClient>(&network_, client_config);
    client->set_attachment(profile.info.country, profile.info.autonomous_system);
    clients_.push_back(std::move(client));
  }

  // Crawler probes: one well-connected, unfirewalled client per server.
  probes_.reserve(servers_.size());
  for (size_t s = 0; s < servers_.size(); ++s) {
    ClientConfig probe_config;
    probe_config.nickname = "zzcrawler" + std::to_string(s);
    probe_config.firewalled = false;
    probe_config.uplink_bytes_per_second = 1e6;
    auto probe = std::make_unique<SimClient>(&network_, probe_config);
    probe->set_attachment(geography_.FindCountry("FR"),
                          geography_.SampleAs(geography_.FindCountry("FR"),
                                              network_.rng()));
    probes_.push_back(std::move(probe));
  }
}

void CrawlSimulation::SyncClientCache(uint32_t peer_index) {
  const auto& cache = engine_.cache(peer_index);
  auto& synced = synced_[peer_index];
  SimClient& client = *clients_[peer_index];
  // Remove files the behaviour engine evicted.
  std::vector<uint32_t> to_remove;
  for (uint32_t f : synced) {
    if (!cache.Contains(f)) {
      to_remove.push_back(f);
    }
  }
  for (uint32_t f : to_remove) {
    client.RemoveLocalFile(InfoFor(f).digest);
    synced.erase(f);
  }
  // Add new acquisitions.
  for (uint32_t f : cache) {
    if (synced.insert(f).second) {
      client.AddLocalFile(InfoFor(f));
    }
  }
}

void CrawlSimulation::ConnectOnlinePeers(double day_start) {
  online_now_.assign(population_.size(), 0);
  for (uint32_t p : engine_.online_peers()) {
    online_now_[p] = 1;
    if (!population_.profile(p).free_rider) {
      SyncClientCache(p);
    }
    // Each peer prefers a stable server (hash of its id).
    const size_t server_index = p % servers_.size();
    SimClient* client = clients_[p].get();
    const double jitter = network_.rng().NextDouble() * 600.0;
    network_.queue().ScheduleAt(day_start + jitter, [client, this, server_index] {
      client->Connect(servers_[server_index]->node_id(), nullptr);
    });
  }
}

void CrawlSimulation::DisconnectAll() {
  for (uint32_t p = 0; p < population_.size(); ++p) {
    if (online_now_[p] != 0) {
      clients_[p]->Disconnect();
    }
  }
}

void CrawlSimulation::CrawlDay(int day, uint32_t budget, CrawlDayStats& stats) {
  stats.day = day;
  // Phase 1: enumerate users on every server with prefix queries.
  const auto prefixes = MakePrefixes(config_.prefix_length);
  std::unordered_set<NodeId> discovered;
  auto pending = std::make_shared<size_t>(0);
  for (size_t s = 0; s < servers_.size(); ++s) {
    SimClient* probe = probes_[s].get();
    for (const std::string& prefix : prefixes) {
      ++*pending;
      probe->QueryUsers(prefix, [&discovered, pending](std::vector<UserRecord> users) {
        for (const UserRecord& user : users) {
          if (!user.low_id) {
            discovered.insert(user.node);
          }
        }
        --*pending;
      });
    }
  }
  network_.queue().Run();
  assert(*pending == 0);
  stats.users_discovered = static_cast<uint32_t>(discovered.size());
  stats.reachable_users = stats.users_discovered;

  // Phase 2: browse every discovered client, budget permitting. Node ids of
  // clients are peer_index + num_servers (servers were registered first),
  // but we map robustly through the network's node table.
  std::vector<NodeId> targets;
  targets.reserve(discovered.size());
  const NodeId first_client = static_cast<NodeId>(servers_.size());
  const NodeId past_clients = first_client + static_cast<NodeId>(clients_.size());
  for (NodeId node : discovered) {
    // The crawler's own probes also appear in user listings; skip them.
    if (node >= first_client && node < past_clients) {
      targets.push_back(node);
    }
  }
  std::sort(targets.begin(), targets.end());
  if (targets.size() > budget) {
    // Bandwidth-constrained days browse a random subset, like the real
    // crawler that could no longer cycle through everyone.
    network_.rng().Shuffle(targets);
    targets.resize(budget);
    std::sort(targets.begin(), targets.end());
  }
  SimClient* browser = probes_[0].get();
  for (NodeId target : targets) {
    ++stats.browses_attempted;
    auto* target_client = dynamic_cast<SimClient*>(network_.node(target));
    assert(target_client != nullptr);
    browser->Browse(target, [this, day, target_client, &stats](
                                std::optional<std::vector<SharedFileInfo>> reply) {
      if (!reply.has_value()) {
        return;
      }
      ++stats.browses_succeeded;
      stats.files_seen += reply->size();
      // Locate the peer index of this client to record the snapshot.
      const NodeId node = target_client->node_id();
      const uint32_t peer_index = node - static_cast<uint32_t>(servers_.size());
      std::vector<FileId> files;
      files.reserve(reply->size());
      for (const SharedFileInfo& info : *reply) {
        files.push_back(info.file);
      }
      result_.observed.AddSnapshot(PeerId(peer_index), day, std::move(files));
    });
  }
  network_.queue().Run();
}

CrawlResult CrawlSimulation::Run() {
  SetupNodes();
  catalog_.ExportFiles(result_.observed);
  population_.ExportPeers(result_.observed);
  catalog_.ExportFiles(result_.ground_truth);
  population_.ExportPeers(result_.ground_truth);

  // The crawler probes stay connected for the whole crawl.
  for (size_t s = 0; s < probes_.size(); ++s) {
    probes_[s]->Connect(servers_[s]->node_id(), nullptr);
  }
  network_.queue().Run();

  const int last_day = config_.workload.first_day + config_.workload.num_days - 1;
  double budget = config_.initial_daily_browse_budget;
  for (int day = config_.workload.first_day; day <= last_day; ++day) {
    const double day_start =
        static_cast<double>(day - config_.workload.first_day) * kSecondsPerDay;
    engine_.StepDay(day);

    // Ground truth: a perfect observer records every online peer.
    for (uint32_t p : engine_.online_peers()) {
      const auto& cache = engine_.cache(p);
      std::vector<FileId> files;
      files.reserve(cache.size());
      for (uint32_t raw : cache) {
        files.push_back(FileId(raw));
      }
      result_.ground_truth.AddSnapshot(PeerId(p), day, std::move(files));
    }

    ConnectOnlinePeers(day_start);
    network_.queue().RunUntil(day_start + 1'200.0);  // Let connects settle.

    CrawlDayStats stats;
    CrawlDay(day, static_cast<uint32_t>(budget), stats);
    result_.days.push_back(stats);
    Log(LogLevel::kDebug) << "crawl day " << day << ": " << stats.users_discovered
                          << " users, " << stats.browses_succeeded << " browses";

    DisconnectAll();
    network_.queue().Run();
    budget *= config_.browse_budget_decay;
  }
  result_.messages_sent = network_.messages_sent();
  return result_;
}

}  // namespace

CrawlResult RunCrawlSimulation(const CrawlConfig& config) {
  CrawlSimulation simulation(config);
  return simulation.Run();
}

}  // namespace edk
