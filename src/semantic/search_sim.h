// Trace-driven simulation of semantic-neighbour search (paper §5.1).
//
// Request generation follows the paper exactly: (peer, file) pairs from the
// static trace are drawn in random order; if nobody shares the file yet the
// requesting peer is deemed its original contributor, otherwise a request
// is simulated — the peer queries its semantic neighbours (optionally the
// neighbours' neighbours at two hops), falls back to the server/flooding
// mechanism on a miss, updates its neighbour list with the uploader, and in
// all cases starts sharing the file afterwards.

#ifndef SRC_SEMANTIC_SEARCH_SIM_H_
#define SRC_SEMANTIC_SEARCH_SIM_H_

#include <cstdint>
#include <vector>

#include "src/semantic/neighbour_list.h"
#include "src/trace/trace.h"

namespace edk {

class CacheStore;

struct SearchSimConfig {
  StrategyKind strategy = StrategyKind::kLru;
  size_t list_size = 20;   // Semantic neighbours queried per request.
  bool two_hop = false;    // Also query neighbours' neighbours on a miss.
  uint64_t seed = 1;
  bool track_load = true;  // Collect per-peer query load (Fig. 22).
  // Probability a queried neighbour is online when asked. 1.0 reproduces
  // the paper's setting; lower values model the churn a deployed
  // server-less design would face (offline neighbours cannot answer; the
  // server fallback still resolves the request).
  double neighbour_availability = 1.0;
  // When set, per-peer neighbour lists are FIXED to these views (e.g. the
  // converged views of the gossip overlay) instead of being learned from
  // uploads; `strategy` is ignored. Must outlive the simulation; indexed
  // by peer id.
  const std::vector<std::vector<uint32_t>>* fixed_views = nullptr;
};

struct SearchSimResult {
  uint64_t seeds = 0;          // Picks that made the peer the first source.
  uint64_t requests = 0;       // Simulated requests.
  uint64_t one_hop_hits = 0;
  uint64_t two_hop_hits = 0;   // Extra hits found only at the second hop.
  uint64_t fallbacks = 0;      // Requests resolved by the fallback mechanism.
  uint64_t messages = 0;       // Queries sent to peers (load sum).
  uint64_t two_hop_probes = 0;  // Second-hop queries sent (fan-out cost).
  std::vector<uint32_t> load;  // Queries received, per peer (if tracked).

  // Requests/hits bucketed by the requested file's popularity (its source
  // count at request time): bucket b covers [2^b, 2^(b+1)) sources.
  // Directly exhibits the paper's "semantic links work best for rare
  // files" without re-running filtered scenarios.
  std::vector<uint64_t> requests_by_popularity;
  std::vector<uint64_t> hits_by_popularity;

  double OneHopHitRate() const {
    return requests == 0 ? 0 : static_cast<double>(one_hop_hits) / static_cast<double>(requests);
  }
  double TotalHitRate() const {
    return requests == 0
               ? 0
               : static_cast<double>(one_hop_hits + two_hop_hits) / static_cast<double>(requests);
  }
  // Hit rate (1- and 2-hop combined) of popularity bucket b; 0 if empty.
  double BucketHitRate(size_t bucket) const {
    if (bucket >= requests_by_popularity.size() || requests_by_popularity[bucket] == 0) {
      return 0;
    }
    return static_cast<double>(hits_by_popularity[bucket]) /
           static_cast<double>(requests_by_popularity[bucket]);
  }
};

// Maximum number of distinct random neighbours a requester can be handed
// by the Random baseline: the sharer universe, minus the requester itself
// when (and only when) it is a sharer, capped at the list size. Split out
// so the guard is testable — an earlier version always reserved a slot for
// the requester, under-serving non-sharing requesters by one.
size_t MaxRandomNeighbours(size_t sharer_count, bool requester_shares,
                           size_t list_size);

// `potential` holds, per peer, the set of files it will request during the
// simulation (its cache content in the static trace).
SearchSimResult RunSearchSimulation(const StaticCaches& potential,
                                    const SearchSimConfig& config);

// Store-level core: `potential` as an already-flattened CacheStore (one
// row per peer). The StaticCaches overload delegates here, and the
// streaming pipeline feeds stream::TraceReader day views in directly —
// both are layout-identical, so results are byte-identical.
SearchSimResult RunSearchSimulation(const CacheStore& potential,
                                    const SearchSimConfig& config);

}  // namespace edk

#endif  // SRC_SEMANTIC_SEARCH_SIM_H_
