#include "src/semantic/as_cache.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "src/common/rng.h"

namespace edk {

AsLocalityStats EvaluateAsLocality(const Trace& trace, const StaticCaches& caches,
                                   const AsLocalityConfig& config) {
  AsLocalityStats stats;
  const size_t peer_count = caches.caches.size();
  Rng rng(config.seed);

  // Request stream, exactly as in the search simulator (§5.1).
  std::vector<uint64_t> requests;
  requests.reserve(caches.TotalReplicas());
  uint32_t max_file = 0;
  for (uint32_t p = 0; p < peer_count; ++p) {
    for (FileId f : caches.caches[p]) {
      requests.push_back((static_cast<uint64_t>(p) << 32) | f.value);
      max_file = std::max(max_file, f.value);
    }
  }
  rng.Shuffle(requests);

  // Peer attachments, plus the shuffled-AS control labelling.
  std::vector<uint32_t> as_of(peer_count);
  std::vector<uint32_t> country_of(peer_count);
  for (uint32_t p = 0; p < peer_count; ++p) {
    as_of[p] = trace.peer(PeerId(p)).autonomous_system.value;
    country_of[p] = trace.peer(PeerId(p)).country.value;
  }
  std::vector<uint32_t> shuffled_as = as_of;
  if (config.run_shuffled_control) {
    rng.Shuffle(shuffled_as);
  }

  // Evolving per-file source membership, tracked as sets of AS / country /
  // shuffled-AS labels so each request is O(1).
  struct FileSources {
    std::unordered_set<uint32_t> as;
    std::unordered_set<uint32_t> country;
    std::unordered_set<uint32_t> shuffled_as;
    std::unordered_set<uint32_t> peers;
  };
  std::vector<FileSources> sources(static_cast<size_t>(max_file) + 1);

  std::unordered_map<uint32_t, AsLocalityStats::PerAs> per_as;

  for (uint64_t packed : requests) {
    const uint32_t p = static_cast<uint32_t>(packed >> 32);
    const uint32_t f = static_cast<uint32_t>(packed);
    FileSources& file = sources[f];
    if (file.peers.contains(p)) {
      continue;
    }
    if (!file.peers.empty()) {
      ++stats.requests;
      auto& as_entry = per_as[as_of[p]];
      as_entry.autonomous_system = AsId(as_of[p]);
      ++as_entry.requests;
      if (file.as.contains(as_of[p])) {
        ++stats.as_local_hits;
        ++as_entry.hits;
      }
      if (file.country.contains(country_of[p])) {
        ++stats.country_local_hits;
      }
      if (config.run_shuffled_control && file.shuffled_as.contains(shuffled_as[p])) {
        ++stats.shuffled_as_hits;
      }
    }
    file.peers.insert(p);
    file.as.insert(as_of[p]);
    file.country.insert(country_of[p]);
    if (config.run_shuffled_control) {
      file.shuffled_as.insert(shuffled_as[p]);
    }
  }

  stats.by_as.reserve(per_as.size());
  for (auto& [as_number, entry] : per_as) {
    stats.by_as.push_back(entry);
  }
  std::sort(stats.by_as.begin(), stats.by_as.end(),
            [](const AsLocalityStats::PerAs& a, const AsLocalityStats::PerAs& b) {
              return a.requests > b.requests;
            });
  return stats;
}

}  // namespace edk
