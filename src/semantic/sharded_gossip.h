// Event-driven two-tier semantic gossip on the sharded engine.
//
// The synchronous GossipOverlay (gossip_overlay.h) studies convergence in
// lock-step rounds; this scenario runs the same exchange protocol as real
// discrete events on edk::sim::ShardedEngine, which is what lets it scale
// to the million-peer populations the paper crawled (§3: 1.16 M distinct
// peers). Every participant initiates one exchange per nominal round:
//
//   initiator --(request: self + view head + random spice)--> partner
//   partner merges the offer, replies with its own view head
//   initiator merges the reply
//
// Partner selection mixes exploitation (the best semantic neighbour) with
// uniform exploration: every `explore_every`-th round explores, the rest
// exploit (explore_every=2 is the synchronous implementation's strict
// alternation). All randomness is drawn from the node's private stream and
// all view mutations happen in the owning node's events, so the run is
// bit-identical for any --shards/--threads/--placement combination (the
// engine's determinism contract).
//
// RunShardedGossip is the entry point used by bench_ext_gossip,
// bench_ext_dynamic --shards sections, bench_scale and the equivalence
// tests.

#ifndef SRC_SEMANTIC_SHARDED_GOSSIP_H_
#define SRC_SEMANTIC_SHARDED_GOSSIP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/placement.h"
#include "src/trace/trace.h"
#include "src/workload/geography.h"

namespace edk {

struct ShardedGossipConfig {
  size_t view_size = 10;      // Semantic view size K.
  size_t gossip_length = 5;   // Entries shipped per exchange (incl. self).
  size_t rounds = 16;         // Nominal gossip rounds per participant.
  // Explore (uniform partner) every this many rounds, exploit the best
  // semantic neighbour otherwise; round 0 always explores. 2 = strict
  // alternation (the synchronous overlay's behaviour); larger values
  // spend more rounds on semantic partners. Clamped to >= 1.
  size_t explore_every = 2;
  // Seconds between a participant's successive initiations. Must leave
  // room for one full exchange (two one-way delays): RunShardedGossip
  // rejects periods below 2 * LatencyModel::MinDelay() with
  // std::invalid_argument (shorter periods would silently pile the next
  // initiation onto a still-in-flight exchange).
  double round_period = 10.0;
  // Local semantic-probe events per participant after the gossip rounds:
  // each draws a file from the node's own cache and checks whether its
  // semantic view can serve it (the event-driven ViewHitRate analogue).
  size_t probe_rounds = 0;
  uint64_t seed = 1;
  size_t shards = 1;   // Engine shards.
  size_t threads = 0;  // Worker threads (0 = DefaultThreads()).
  // Node→shard placement policy. Pure performance knob (results are
  // bit-identical across policies); kInterestClustered derives labels
  // from the participant caches via InterestLabels().
  sim::PlacementPolicy placement = sim::PlacementPolicy::kRoundRobin;
  // Adaptive engine window cap as a multiple of the MinDelay() lookahead
  // (<= 1 keeps fixed lookahead-wide windows; see SimNetConfig).
  double window_factor = 1.0;
  // Samples for the final (and per-round) view-hit-rate estimate.
  size_t hit_samples = 20'000;
  // Measure overlap/hit-rate at every round boundary. Costs one pass over
  // all views per round; bench_scale disables it for the big populations.
  bool trajectory = true;
};

struct GossipRoundPoint {
  size_t round = 0;  // 1-based: measured after this many rounds elapsed.
  double mean_view_overlap = 0;
  double view_hit_rate = 0;
};

struct ShardedGossipStats {
  // Everything except wall_seconds is deterministic: a function of
  // (caches, geography, config seed/rounds/...) only, bit-identical for
  // any shards/threads combination.
  size_t participants = 0;
  uint64_t events_executed = 0;
  uint64_t messages_sent = 0;
  uint64_t exchanges = 0;
  uint64_t probes = 0;
  uint64_t probe_hits = 0;
  uint64_t windows = 0;
  // Sends whose sampled delay undercut the engine lookahead (clamped up)
  // and arrivals deferred to their window barrier by adaptive windows.
  // Both are functions of the RNG streams only, so they belong to the
  // deterministic domain.
  uint64_t clamped_sends = 0;
  uint64_t deferred_sends = 0;
  double sim_seconds = 0;
  double mean_view_overlap = 0;
  double view_hit_rate = 0;
  std::vector<GossipRoundPoint> trajectory;
  // Partition/environment-dependent: excluded from DeterministicSummary.
  uint64_t cross_shard_messages = 0;
  double wall_seconds = 0;

  double EventsPerSecond() const;
  double ProbeHitRate() const;
  // Fixed-format dump of every deterministic field (full double
  // precision). Two runs agree on the simulation iff the strings match —
  // this is what the equivalence tests and bench_scale cross-checks
  // compare.
  std::string DeterministicSummary() const;
};

// Runs the scenario over the given static caches (only peers with
// non-empty caches participate). Geography attachments are sampled at
// setup from the config seed.
ShardedGossipStats RunShardedGossip(const StaticCaches& caches,
                                    const Geography& geography,
                                    const ShardedGossipConfig& config);

// Synthetic clustered population for scale runs: `peers` caches over
// `files` files partitioned into `topics` interest clusters; each peer
// draws most of its (geometrically sized) cache from its own topic plus
// uniform spice. Deterministic in `seed` for any thread count.
//
// Topic membership is pseudo-random in (seed, peer) — deliberately
// uncorrelated with the peer id, like the real network where a peer's
// interest is latent in its cache, not its address. Id-based shard
// placements therefore can't exploit the clustering by accident; only
// content-derived labels (src/semantic/interest_placement.h) can.
StaticCaches MakeClusteredCaches(uint32_t peers, uint32_t files,
                                 uint32_t topics, uint64_t seed);

// The topic MakeClusteredCaches assigned to `peer` (tests use it as the
// planted ground truth for label recovery).
uint32_t ClusteredCacheTopic(uint32_t peer, uint32_t topics, uint64_t seed);

}  // namespace edk

#endif  // SRC_SEMANTIC_SHARDED_GOSSIP_H_
