// Two-tier epidemic semantic overlay.
//
// The paper's §6 describes the follow-on design (Voulgaris & van Steen,
// Euro-Par 2005) that was evaluated on this very eDonkey trace: a bottom
// epidemic protocol maintains connectivity through random peer sampling,
// and a top protocol clusters peers by semantic proximity — each gossip
// round a peer exchanges view entries with a neighbour and keeps the K
// peers whose caches overlap its own the most.
//
// This implementation runs trace-driven over static caches in synchronous
// rounds, which is enough to study the property of interest: how quickly
// gossip converges to semantic views of LRU-or-better quality, without any
// download history at all.

#ifndef SRC_SEMANTIC_GOSSIP_OVERLAY_H_
#define SRC_SEMANTIC_GOSSIP_OVERLAY_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/trace/trace.h"

namespace edk {

struct GossipConfig {
  size_t view_size = 10;          // Semantic (top-tier) view size K.
  size_t random_view_size = 15;   // Bottom-tier random view size.
  size_t gossip_length = 5;       // Entries shipped per exchange.
  uint64_t seed = 1;
};

class GossipOverlay {
 public:
  // Only peers with non-empty caches participate.
  GossipOverlay(const StaticCaches& caches, GossipConfig config);

  // One synchronous round: every participant gossips once as initiator.
  void RunRound();
  size_t rounds_run() const { return rounds_; }
  size_t participant_count() const { return participants_.size(); }

  // Current semantic view of a peer (cache indices into the original
  // StaticCaches), best first. Empty for non-participants.
  const std::vector<uint32_t>& SemanticView(uint32_t peer) const;

  // Mean, over participants, of the average cache overlap with their
  // semantic view members. Rises as the overlay converges.
  double MeanViewOverlap() const;

  // Semantic-search quality proxy: over `samples` random (peer, file)
  // draws, the fraction of files found in the caches of the peer's
  // semantic view. With converged views this matches or beats the
  // history-based neighbour lists of the search simulator.
  double ViewHitRate(size_t samples, Rng& rng) const;

  // Cache overlap between two peers (exposed for tests / analyses).
  uint32_t Overlap(uint32_t a, uint32_t b) const;

 private:
  void RefreshRandomView(uint32_t participant_index);
  void MergeIntoView(uint32_t peer, const std::vector<uint32_t>& candidates);

  const StaticCaches* caches_;
  GossipConfig config_;
  Rng rng_;
  std::vector<uint32_t> participants_;        // Peer ids with content.
  std::vector<int32_t> participant_index_;    // Peer id -> index or -1.
  std::vector<std::vector<uint32_t>> semantic_views_;  // Per participant.
  std::vector<std::vector<uint32_t>> random_views_;    // Per participant.
  std::vector<uint32_t> empty_;
  size_t rounds_ = 0;
};

}  // namespace edk

#endif  // SRC_SEMANTIC_GOSSIP_OVERLAY_H_
