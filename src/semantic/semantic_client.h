// SemanticClient: an eDonkey client extended with semantic links.
//
// The paper's conclusion announces "an implementation of semantic links in
// an eDonkey client, MLdonkey"; this class is that design on top of the
// simulated client. The client keeps an LRU list of peers that served it
// before and resolves file requests by asking those peers directly —
// entirely server-lessly — falling back to the index server only on a miss.

#ifndef SRC_SEMANTIC_SEMANTIC_CLIENT_H_
#define SRC_SEMANTIC_SEMANTIC_CLIENT_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/net/client.h"
#include "src/semantic/neighbour_list.h"

namespace edk {

struct FetchOutcome {
  bool success = false;
  bool semantic_hit = false;       // Resolved without the server.
  NodeId source = kInvalidNode;
};

class SemanticClient : public SimClient {
 public:
  SemanticClient(SimNetwork* network, ClientConfig config, size_t list_size,
                 StrategyKind strategy = StrategyKind::kLru);

  // Locates and downloads `info`: queries the semantic neighbours first,
  // then the connected server's source index. Requires a server connection
  // for the fallback path.
  void FetchFile(const SharedFileInfo& info, std::function<void(FetchOutcome)> done);

  // Current semantic neighbours, best first.
  std::vector<NodeId> SemanticNeighbours() const;

  uint64_t semantic_hits() const { return semantic_hits_; }
  uint64_t server_hits() const { return server_hits_; }
  uint64_t fetch_failures() const { return fetch_failures_; }

  // Remote-invoked: does this client share the file? (lightweight
  // availability probe, the "is file available" exchange of §2.1).
  bool HandleAvailabilityProbe(const Md4Digest& digest) const { return SharesFile(digest); }

 private:
  void ProbeNeighbourChain(std::shared_ptr<struct FetchContext> context, size_t index);
  void FallBackToServer(std::shared_ptr<struct FetchContext> context);
  void DownloadAndFinish(std::shared_ptr<struct FetchContext> context, NodeId source,
                         bool semantic);

  SimNetwork* network_;
  size_t list_size_;
  std::unique_ptr<NeighbourList> neighbours_;
  uint64_t semantic_hits_ = 0;
  uint64_t server_hits_ = 0;
  uint64_t fetch_failures_ = 0;
};

}  // namespace edk

#endif  // SRC_SEMANTIC_SEMANTIC_CLIENT_H_
