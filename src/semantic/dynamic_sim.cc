#include "src/semantic/dynamic_sim.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "src/common/rng.h"
#include "src/obs/span.h"
#include "src/obs/trace_log.h"

namespace edk {

bool TraceDaySource::ForEachSnapshotOnDay(int day, const SnapshotFn& fn) {
  for (uint32_t p = 0; p < trace_.peer_count(); ++p) {
    const CacheSnapshot* snapshot = trace_.timeline(PeerId(p)).SnapshotOn(day);
    if (snapshot == nullptr) {
      continue;
    }
    scratch_.clear();
    for (const FileId f : snapshot->files) {
      scratch_.push_back(f.value);
    }
    fn(p, scratch_.data(), scratch_.size());
  }
  return true;
}

bool StreamingDaySource::ForEachSnapshotOnDay(int day, const SnapshotFn& fn) {
  const stream::TraceReader::DayInfo* info = reader_.FindDay(day);
  if (info == nullptr) {
    return true;  // Nobody observed: a valid, empty day.
  }
  return reader_.ForEachSnapshot(
      *info, arena_, [&](uint32_t peer, const uint32_t* files, size_t count) {
        fn(peer, files, count);
      });
}

std::optional<DynamicSimResult> RunDynamicSearchSimulation(
    DaySource& source, const DynamicSimConfig& config, std::string* error) {
  DynamicSimResult result;
  if (source.last_day() < source.first_day()) {
    return result;
  }
  const size_t peer_count = source.peer_count();
  Rng rng(config.seed);

  // Per-peer knowledge as of the last observed snapshot: what the peer was
  // sharing *before* today, i.e. what it can serve to others today.
  std::vector<std::unordered_set<uint32_t>> known(peer_count);
  std::vector<bool> seen_before(peer_count, false);

  std::vector<std::unique_ptr<NeighbourList>> lists(peer_count);
  const bool random_strategy = config.strategy == StrategyKind::kRandom;

  // Audit trail: one record per replayed request — including unresolvable
  // ones (kNoOnlineSource), so the trace explains every line of the replay.
  // The ordinal counts all records; `extra` carries the replay day.
  const bool tracing = obs::TraceLog::Enabled();
  const uint16_t audit_name = tracing ? obs::DynamicAuditName() : 0;
  uint64_t audit_ordinal = 0;

  // The current day's snapshots, buffered once per day: `online` ascending,
  // peer i's cache at today_files[today_offset[i]..today_offset[i + 1]).
  // This is the only per-day state, so memory stays bounded by one day for
  // a StreamingDaySource.
  std::vector<uint32_t> online;
  std::vector<size_t> today_offset;
  std::vector<uint32_t> today_files;

  std::vector<uint32_t> neighbours;
  for (int day = source.first_day(); day <= source.last_day(); ++day) {
    online.clear();
    today_offset.clear();
    today_files.clear();
    if (!source.ForEachSnapshotOnDay(
            day, [&](uint32_t p, const uint32_t* files, size_t count) {
              online.push_back(p);
              today_offset.push_back(today_files.size());
              today_files.insert(today_files.end(), files, files + count);
            })) {
      if (error != nullptr) {
        *error = "failed to decode day " + std::to_string(day);
      }
      return std::nullopt;
    }
    today_offset.push_back(today_files.size());

    // What does each online peer newly request today?
    std::vector<uint64_t> requests;  // (peer << 32) | file.
    for (size_t i = 0; i < online.size(); ++i) {
      const uint32_t p = online[i];
      if (!seen_before[p]) {
        continue;  // First observation: the initial cache is pre-owned.
      }
      for (size_t k = today_offset[i]; k < today_offset[i + 1]; ++k) {
        if (!known[p].contains(today_files[k])) {
          requests.push_back((static_cast<uint64_t>(p) << 32) | today_files[k]);
        }
      }
    }

    // Today's servable content: file -> online peers that already shared
    // it before today.
    std::unordered_map<uint32_t, std::vector<uint32_t>> servers_of;
    std::unordered_set<uint32_t> online_set(online.begin(), online.end());
    for (uint32_t p : online) {
      for (uint32_t f : known[p]) {
        servers_of[f].push_back(p);
      }
    }

    rng.Shuffle(requests);
    DynamicDayStats day_stats;
    day_stats.day = day;
    for (uint64_t packed : requests) {
      const uint32_t p = static_cast<uint32_t>(packed >> 32);
      const uint32_t f = static_cast<uint32_t>(packed);
      const auto sources_it = servers_of.find(f);
      if (sources_it == servers_of.end() || sources_it->second.empty()) {
        ++result.unresolvable;  // Nobody online serves it today.
        if (tracing) {
          obs::EmitAudit(audit_name, audit_ordinal++, p, f,
                         obs::QueryOutcome::kNoOnlineSource, 0,
                         static_cast<uint64_t>(config.strategy),
                         config.list_size, static_cast<uint64_t>(day));
        }
        continue;
      }
      ++result.requests;
      ++day_stats.requests;

      uint32_t uploader = 0xffffffffu;
      neighbours.clear();
      if (random_strategy) {
        for (size_t attempts = 0;
             neighbours.size() < config.list_size && attempts < 4 * config.list_size;
             ++attempts) {
          const uint32_t candidate = online[rng.NextBelow(online.size())];
          if (candidate != p &&
              std::find(neighbours.begin(), neighbours.end(), candidate) ==
                  neighbours.end()) {
            neighbours.push_back(candidate);
          }
        }
      } else if (lists[p] != nullptr) {
        lists[p]->Collect(config.list_size, neighbours);
      }
      bool hit = false;
      for (uint32_t q : neighbours) {
        if (online_set.contains(q) && known[q].contains(f)) {
          uploader = q;
          hit = true;
          break;
        }
      }
      if (hit) {
        ++result.hits;
        ++day_stats.hits;
      } else {
        ++result.fallbacks;
        const auto& sources = sources_it->second;
        uploader = sources[rng.NextBelow(sources.size())];
      }
      if (tracing) {
        const obs::QueryOutcome outcome =
            hit ? obs::QueryOutcome::kOneHopHit
                : (neighbours.empty() ? obs::QueryOutcome::kNeighbourAbsent
                                      : obs::QueryOutcome::kCacheMiss);
        obs::EmitAudit(audit_name, audit_ordinal++, p, f, outcome,
                       neighbours.size(),
                       static_cast<uint64_t>(config.strategy),
                       config.list_size, static_cast<uint64_t>(day));
      }
      if (!random_strategy) {
        if (lists[p] == nullptr) {
          lists[p] = MakeNeighbourList(config.strategy, config.list_size);
        }
        lists[p]->RecordUpload(uploader,
                               1.0 / static_cast<double>(sources_it->second.size()));
      }
    }
    result.days.push_back(day_stats);

    // End of day: knowledge advances to today's snapshots.
    for (size_t i = 0; i < online.size(); ++i) {
      const uint32_t p = online[i];
      known[p].clear();
      for (size_t k = today_offset[i]; k < today_offset[i + 1]; ++k) {
        known[p].insert(today_files[k]);
      }
      seen_before[p] = true;
    }
  }
  return result;
}

DynamicSimResult RunDynamicSearchSimulation(const Trace& trace,
                                            const DynamicSimConfig& config) {
  TraceDaySource source(trace);
  // A TraceDaySource cannot fail to decode.
  return *RunDynamicSearchSimulation(source, config);
}

std::optional<DynamicSimResult> RunDynamicSearchSimulation(
    const stream::TraceReader& reader, const DynamicSimConfig& config,
    std::string* error) {
  StreamingDaySource source(reader);
  return RunDynamicSearchSimulation(source, config, error);
}

}  // namespace edk
