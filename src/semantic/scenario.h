// Scenario transformations of the static request caches (paper §5.3.2):
// removal of the most generous uploaders and of the most popular files,
// used to isolate which part of the semantic hit rate is genuine
// interest-based clustering.

#ifndef SRC_SEMANTIC_SCENARIO_H_
#define SRC_SEMANTIC_SCENARIO_H_

#include <cstddef>

#include "src/trace/trace.h"

namespace edk {

// Clears the caches of the top `fraction` most generous uploaders (among
// peers with non-empty caches, ranked by cache size). Their files disappear
// both as offers and as requests, exactly as in the paper's re-runs.
StaticCaches RemoveTopUploaders(const StaticCaches& caches, double fraction);

// Removes the top `fraction` most popular files (among files with >= 1
// source, ranked by source count) from every cache.
StaticCaches RemoveTopFiles(const StaticCaches& caches, double fraction,
                            size_t file_count);

// Combined scenario: uploaders first, then files (ranked on the reduced
// trace), matching Table 3's "without both" rows.
StaticCaches RemoveTopUploadersAndFiles(const StaticCaches& caches,
                                        double uploader_fraction, double file_fraction,
                                        size_t file_count);

}  // namespace edk

#endif  // SRC_SEMANTIC_SCENARIO_H_
