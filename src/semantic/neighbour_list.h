// Semantic neighbour list strategies (paper §5.2).
//
// Each peer maintains a small list of peers that successfully served it in
// the past and queries them first on future searches:
//   - LRU: most-recently-used uploader at the head, fixed capacity.
//   - History: frequency-based — peers with the most successful uploads
//     (the "History" policy of Voulgaris et al. [30]).
//   - PopularityWeighted: like History but an upload of a rare file counts
//     for more (1/popularity), which keeps lists from being contaminated by
//     links that only reflect popular files (§5.3.2 discussion / [30]).
// The Random baseline needs no per-peer state and lives in the simulator.

#ifndef SRC_SEMANTIC_NEIGHBOUR_LIST_H_
#define SRC_SEMANTIC_NEIGHBOUR_LIST_H_

#include <cstdint>
#include <memory>
#include <vector>

namespace edk {

enum class StrategyKind {
  kLru,
  kHistory,
  kRandom,
  kPopularityWeighted,
};

const char* StrategyName(StrategyKind kind);

class NeighbourList {
 public:
  virtual ~NeighbourList() = default;

  // Records a successful retrieval from `uploader`. `rarity_weight` is
  // 1/popularity of the retrieved file at retrieval time (only the
  // popularity-weighted strategy uses it).
  virtual void RecordUpload(uint32_t uploader, double rarity_weight) = 0;

  // Appends up to `k` neighbours to `out`, best candidate first.
  virtual void Collect(size_t k, std::vector<uint32_t>& out) const = 0;

  virtual size_t size() const = 0;
};

// `capacity` is the neighbour-list length (the single design parameter of
// LRU, §5.2); frequency-based strategies keep full history and use capacity
// only as the default Collect bound.
std::unique_ptr<NeighbourList> MakeNeighbourList(StrategyKind kind, size_t capacity);

}  // namespace edk

#endif  // SRC_SEMANTIC_NEIGHBOUR_LIST_H_
