#include "src/semantic/neighbour_list.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "src/obs/metrics.h"

namespace edk {

namespace {

// Counts list-churn events across every NeighbourList in the process:
// inserts of a previously unknown uploader and swaps (an insert that
// evicted the list tail). Totals are sums of per-list work, so they stay
// deterministic under parallel sweeps.
struct ListMetrics {
  obs::Counter* inserts;
  obs::Counter* swaps;
};

ListMetrics& Metrics() {
  auto& registry = obs::MetricsRegistry::Global();
  static ListMetrics metrics{
      &registry.GetCounter("semantic.neighbour_inserts"),
      &registry.GetCounter("semantic.neighbour_swaps"),
  };
  return metrics;
}

}  // namespace

const char* StrategyName(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kLru:
      return "LRU";
    case StrategyKind::kHistory:
      return "History";
    case StrategyKind::kRandom:
      return "Random";
    case StrategyKind::kPopularityWeighted:
      return "PopularityWeighted";
  }
  return "?";
}

namespace {

class LruList final : public NeighbourList {
 public:
  explicit LruList(size_t capacity) : capacity_(capacity) {}

  void RecordUpload(uint32_t uploader, double /*rarity_weight*/) override {
    auto it = std::find(peers_.begin(), peers_.end(), uploader);
    if (it != peers_.end()) {
      peers_.erase(it);
    } else {
      Metrics().inserts->Increment();
    }
    peers_.insert(peers_.begin(), uploader);
    if (peers_.size() > capacity_) {
      peers_.pop_back();
      Metrics().swaps->Increment();
    }
  }

  void Collect(size_t k, std::vector<uint32_t>& out) const override {
    const size_t take = std::min(k, peers_.size());
    out.insert(out.end(), peers_.begin(), peers_.begin() + static_cast<long>(take));
  }

  size_t size() const override { return peers_.size(); }

 private:
  size_t capacity_;
  std::vector<uint32_t> peers_;  // Most recent first; small (<= capacity).
};

// Shared implementation of the two frequency-based strategies; they differ
// only in the per-upload score increment.
class ScoredList final : public NeighbourList {
 public:
  ScoredList(size_t capacity, bool rarity_weighted)
      : capacity_(capacity), rarity_weighted_(rarity_weighted) {}

  void RecordUpload(uint32_t uploader, double rarity_weight) override {
    if (!entries_.contains(uploader)) {
      Metrics().inserts->Increment();
    }
    Entry& entry = entries_[uploader];
    entry.score += rarity_weighted_ ? rarity_weight : 1.0;
    entry.last_used = ++clock_;
  }

  void Collect(size_t k, std::vector<uint32_t>& out) const override {
    scratch_.clear();
    scratch_.reserve(entries_.size());
    for (const auto& [peer, entry] : entries_) {
      scratch_.push_back({peer, entry});
    }
    const size_t take = std::min(k, scratch_.size());
    std::partial_sort(scratch_.begin(), scratch_.begin() + static_cast<long>(take),
                      scratch_.end(), [](const auto& a, const auto& b) {
                        if (a.second.score != b.second.score) {
                          return a.second.score > b.second.score;
                        }
                        return a.second.last_used > b.second.last_used;
                      });
    for (size_t i = 0; i < take; ++i) {
      out.push_back(scratch_[i].first);
    }
  }

  size_t size() const override { return std::min(entries_.size(), capacity_); }

 private:
  struct Entry {
    double score = 0;
    uint64_t last_used = 0;
  };

  size_t capacity_;
  bool rarity_weighted_;
  uint64_t clock_ = 0;
  std::unordered_map<uint32_t, Entry> entries_;
  mutable std::vector<std::pair<uint32_t, Entry>> scratch_;
};

}  // namespace

std::unique_ptr<NeighbourList> MakeNeighbourList(StrategyKind kind, size_t capacity) {
  assert(capacity > 0);
  switch (kind) {
    case StrategyKind::kLru:
      return std::make_unique<LruList>(capacity);
    case StrategyKind::kHistory:
      return std::make_unique<ScoredList>(capacity, /*rarity_weighted=*/false);
    case StrategyKind::kPopularityWeighted:
      return std::make_unique<ScoredList>(capacity, /*rarity_weighted=*/true);
    case StrategyKind::kRandom:
      break;
  }
  assert(false && "Random strategy has no per-peer list");
  return nullptr;
}

}  // namespace edk
