#include "src/semantic/gossip_overlay.h"

#include <algorithm>
#include <cassert>

namespace edk {

GossipOverlay::GossipOverlay(const StaticCaches& caches, GossipConfig config)
    : caches_(&caches), config_(config), rng_(config.seed) {
  assert(config.view_size > 0);
  participant_index_.assign(caches.caches.size(), -1);
  for (uint32_t p = 0; p < caches.caches.size(); ++p) {
    if (!caches.caches[p].empty()) {
      participant_index_[p] = static_cast<int32_t>(participants_.size());
      participants_.push_back(p);
    }
  }
  semantic_views_.resize(participants_.size());
  random_views_.resize(participants_.size());
  for (uint32_t i = 0; i < participants_.size(); ++i) {
    RefreshRandomView(i);
  }
}

uint32_t GossipOverlay::Overlap(uint32_t a, uint32_t b) const {
  return static_cast<uint32_t>(OverlapSize(caches_->caches[a], caches_->caches[b]));
}

void GossipOverlay::RefreshRandomView(uint32_t participant_index) {
  // Bottom tier: a fresh uniform sample stands in for a cyclon-style
  // shuffling protocol — what the top tier needs from it is exactly a
  // stream of uniformly random live peers.
  auto& view = random_views_[participant_index];
  view.clear();
  if (participants_.size() <= 1) {
    return;
  }
  const uint32_t self = participants_[participant_index];
  while (view.size() < std::min(config_.random_view_size, participants_.size() - 1)) {
    const uint32_t candidate = participants_[rng_.NextBelow(participants_.size())];
    if (candidate != self &&
        std::find(view.begin(), view.end(), candidate) == view.end()) {
      view.push_back(candidate);
    }
  }
}

void GossipOverlay::MergeIntoView(uint32_t peer, const std::vector<uint32_t>& candidates) {
  const int32_t index = participant_index_[peer];
  assert(index >= 0);
  auto& view = semantic_views_[static_cast<size_t>(index)];
  for (uint32_t candidate : candidates) {
    if (candidate == peer || participant_index_[candidate] < 0) {
      continue;
    }
    if (std::find(view.begin(), view.end(), candidate) != view.end()) {
      continue;
    }
    view.push_back(candidate);
  }
  // Keep the K candidates with the highest cache overlap; ties broken by
  // peer id for determinism.
  std::sort(view.begin(), view.end(), [this, peer](uint32_t a, uint32_t b) {
    const uint32_t oa = Overlap(peer, a);
    const uint32_t ob = Overlap(peer, b);
    if (oa != ob) {
      return oa > ob;
    }
    return a < b;
  });
  if (view.size() > config_.view_size) {
    view.resize(config_.view_size);
  }
}

void GossipOverlay::RunRound() {
  ++rounds_;
  // Every participant initiates one exchange per round, in random order.
  std::vector<uint32_t> order(participants_.size());
  for (uint32_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  rng_.Shuffle(order);

  std::vector<uint32_t> offered;
  for (uint32_t i : order) {
    const uint32_t self = participants_[i];
    RefreshRandomView(i);
    auto& semantic = semantic_views_[i];
    const auto& random_view = random_views_[i];

    // Partner selection: alternate between the best semantic neighbour
    // (exploitation: my neighbour's neighbours are likely mine too) and a
    // random peer (exploration: escape local optima, find new clusters).
    uint32_t partner;
    if (!semantic.empty() && rounds_ % 2 == 0) {
      partner = semantic[0];
    } else if (!random_view.empty()) {
      partner = random_view[rng_.NextBelow(random_view.size())];
    } else {
      continue;
    }
    const int32_t partner_index = participant_index_[partner];
    if (partner_index < 0) {
      continue;
    }

    // Build the offer: self + a slice of my semantic view + random spice.
    offered.clear();
    offered.push_back(self);
    for (uint32_t n : semantic) {
      if (offered.size() >= config_.gossip_length) {
        break;
      }
      offered.push_back(n);
    }
    for (uint32_t n : random_view) {
      if (offered.size() >= config_.gossip_length) {
        break;
      }
      offered.push_back(n);
    }
    // Symmetric exchange: the partner's reply is its own view head.
    std::vector<uint32_t> reply;
    reply.push_back(partner);
    const auto& partner_view = semantic_views_[static_cast<size_t>(partner_index)];
    for (uint32_t n : partner_view) {
      if (reply.size() >= config_.gossip_length) {
        break;
      }
      reply.push_back(n);
    }

    MergeIntoView(partner, offered);
    MergeIntoView(self, reply);
  }
}

const std::vector<uint32_t>& GossipOverlay::SemanticView(uint32_t peer) const {
  if (peer >= participant_index_.size() || participant_index_[peer] < 0) {
    return empty_;
  }
  return semantic_views_[static_cast<size_t>(participant_index_[peer])];
}

double GossipOverlay::MeanViewOverlap() const {
  double total = 0;
  uint64_t counted = 0;
  for (uint32_t i = 0; i < participants_.size(); ++i) {
    const uint32_t self = participants_[i];
    for (uint32_t neighbour : semantic_views_[i]) {
      total += static_cast<double>(Overlap(self, neighbour));
      ++counted;
    }
  }
  return counted == 0 ? 0.0 : total / static_cast<double>(counted);
}

double GossipOverlay::ViewHitRate(size_t samples, Rng& rng) const {
  if (participants_.empty()) {
    return 0;
  }
  uint64_t hits = 0;
  uint64_t draws = 0;
  for (size_t s = 0; s < samples; ++s) {
    const uint32_t i = static_cast<uint32_t>(rng.NextBelow(participants_.size()));
    const uint32_t self = participants_[i];
    const auto& cache = caches_->caches[self];
    const FileId file = cache[rng.NextBelow(cache.size())];
    ++draws;
    for (uint32_t neighbour : semantic_views_[i]) {
      const auto& other = caches_->caches[neighbour];
      if (std::binary_search(other.begin(), other.end(), file)) {
        ++hits;
        break;
      }
    }
  }
  return draws == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(draws);
}

}  // namespace edk
