#include "src/semantic/semantic_client.h"

#include <cassert>

namespace edk {

struct FetchContext {
  SharedFileInfo info;
  std::vector<uint32_t> candidates;  // Semantic neighbours, best first.
  std::function<void(FetchOutcome)> done;
};

SemanticClient::SemanticClient(SimNetwork* network, ClientConfig config,
                               size_t list_size, StrategyKind strategy)
    : SimClient(network, std::move(config)),
      network_(network),
      list_size_(list_size),
      neighbours_(MakeNeighbourList(strategy, list_size)) {}

std::vector<NodeId> SemanticClient::SemanticNeighbours() const {
  std::vector<uint32_t> out;
  neighbours_->Collect(list_size_, out);
  return out;
}

void SemanticClient::FetchFile(const SharedFileInfo& info,
                               std::function<void(FetchOutcome)> done) {
  auto context = std::make_shared<FetchContext>();
  context->info = info;
  context->done = std::move(done);
  neighbours_->Collect(list_size_, context->candidates);
  ProbeNeighbourChain(context, 0);
}

void SemanticClient::ProbeNeighbourChain(std::shared_ptr<FetchContext> context,
                                         size_t index) {
  if (index >= context->candidates.size()) {
    FallBackToServer(std::move(context));
    return;
  }
  const NodeId target = context->candidates[index];
  auto* remote = dynamic_cast<SemanticClient*>(network_->node(target));
  if (remote == nullptr) {
    ProbeNeighbourChain(std::move(context), index + 1);
    return;
  }
  const NodeId self = node_id();
  network_->Send(self, target, [this, remote, target, self, context, index] {
    const bool available = remote->HandleAvailabilityProbe(context->info.digest);
    network_->Send(target, self, [this, context, index, target, available] {
      if (available) {
        DownloadAndFinish(context, target, /*semantic=*/true);
      } else {
        ProbeNeighbourChain(context, index + 1);
      }
    });
  });
}

void SemanticClient::FallBackToServer(std::shared_ptr<FetchContext> context) {
  if (!connected()) {
    ++fetch_failures_;
    if (context->done) {
      context->done(FetchOutcome{});
    }
    return;
  }
  QuerySources(context->info.digest, [this, context](std::vector<SourceRecord> sources) {
    // Prefer a high-id source; a firewalled one still works through the
    // server callback path inside Download().
    for (const SourceRecord& source : sources) {
      if (!source.low_id || !firewalled()) {
        DownloadAndFinish(context, source.node, /*semantic=*/false);
        return;
      }
    }
    ++fetch_failures_;
    if (context->done) {
      context->done(FetchOutcome{});
    }
  });
}

void SemanticClient::DownloadAndFinish(std::shared_ptr<FetchContext> context,
                                       NodeId source, bool semantic) {
  Download(source, context->info, [this, context, source, semantic](bool success) {
    FetchOutcome outcome;
    outcome.success = success;
    outcome.semantic_hit = semantic && success;
    outcome.source = source;
    if (success) {
      // Whoever served us becomes (or moves up as) a semantic neighbour.
      neighbours_->RecordUpload(source, 1.0);
      if (semantic) {
        ++semantic_hits_;
      } else {
        ++server_hits_;
      }
    } else {
      ++fetch_failures_;
    }
    if (context->done) {
      context->done(outcome);
    }
  });
}

}  // namespace edk
