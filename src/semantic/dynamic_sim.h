// Dynamic (day-by-day) semantic search simulation.
//
// The paper's §5 simulation is *static*: requests are replayed from the
// union caches in one shuffled pass. This extension replays the trace as
// it actually unfolded: each day, a peer's requests are the files that
// newly appeared in its cache that day; queries can only be answered by
// peers that are online that day and share the file *on that day*; and
// neighbour lists persist across days. It connects the temporal findings
// (overlap plateaux, Figs. 15-17) to the search results: if interest
// proximity really is stable over weeks, neighbour lists learned early
// must keep paying off late.

#ifndef SRC_SEMANTIC_DYNAMIC_SIM_H_
#define SRC_SEMANTIC_DYNAMIC_SIM_H_

#include <cstdint>
#include <vector>

#include "src/semantic/neighbour_list.h"
#include "src/trace/trace.h"

namespace edk {

struct DynamicSimConfig {
  StrategyKind strategy = StrategyKind::kLru;
  size_t list_size = 20;
  uint64_t seed = 1;
};

struct DynamicDayStats {
  int day = 0;
  uint64_t requests = 0;
  uint64_t hits = 0;

  double HitRate() const {
    return requests == 0 ? 0 : static_cast<double>(hits) / static_cast<double>(requests);
  }
};

struct DynamicSimResult {
  uint64_t requests = 0;
  uint64_t hits = 0;
  uint64_t fallbacks = 0;          // Resolved by server among online sources.
  uint64_t unresolvable = 0;       // No online source existed that day.
  std::vector<DynamicDayStats> days;

  double HitRate() const {
    return requests == 0 ? 0 : static_cast<double>(hits) / static_cast<double>(requests);
  }
};

// `trace` should be dense per peer (the extrapolated trace); days without a
// snapshot mean the peer is offline (cannot ask, answer, or upload).
DynamicSimResult RunDynamicSearchSimulation(const Trace& trace,
                                            const DynamicSimConfig& config);

}  // namespace edk

#endif  // SRC_SEMANTIC_DYNAMIC_SIM_H_
