// Dynamic (day-by-day) semantic search simulation.
//
// The paper's §5 simulation is *static*: requests are replayed from the
// union caches in one shuffled pass. This extension replays the trace as
// it actually unfolded: each day, a peer's requests are the files that
// newly appeared in its cache that day; queries can only be answered by
// peers that are online that day and share the file *on that day*; and
// neighbour lists persist across days. It connects the temporal findings
// (overlap plateaux, Figs. 15-17) to the search results: if interest
// proximity really is stable over weeks, neighbour lists learned early
// must keep paying off late.
//
// The replay consumes days through the DaySource interface, so the same
// core runs from an in-RAM Trace or straight off an EDKT v2 file
// (StreamingDaySource, DESIGN.md §6i) without materialising the whole
// trace — memory stays bounded by one day. Both sources visit snapshots
// in ascending peer order with identical cache contents, so the replay —
// every rng draw, every audit record — is byte-identical across them.

#ifndef SRC_SEMANTIC_DYNAMIC_SIM_H_
#define SRC_SEMANTIC_DYNAMIC_SIM_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "src/semantic/neighbour_list.h"
#include "src/trace/stream/trace_reader.h"
#include "src/trace/trace.h"

namespace edk {

struct DynamicSimConfig {
  StrategyKind strategy = StrategyKind::kLru;
  size_t list_size = 20;
  uint64_t seed = 1;
};

struct DynamicDayStats {
  int day = 0;
  uint64_t requests = 0;
  uint64_t hits = 0;

  double HitRate() const {
    return requests == 0 ? 0 : static_cast<double>(hits) / static_cast<double>(requests);
  }
};

struct DynamicSimResult {
  uint64_t requests = 0;
  uint64_t hits = 0;
  uint64_t fallbacks = 0;          // Resolved by server among online sources.
  uint64_t unresolvable = 0;       // No online source existed that day.
  std::vector<DynamicDayStats> days;

  double HitRate() const {
    return requests == 0 ? 0 : static_cast<double>(hits) / static_cast<double>(requests);
  }
};

// Where the replay's days come from. The contract every implementation
// must honour (it is what makes Trace- and reader-backed runs identical):
//   * ForEachSnapshotOnDay visits the peers observed on `day` in strictly
//     ascending peer order, passing each peer's cache in stored order;
//   * a day nobody was observed on visits nothing and returns true;
//   * false means the day could not be decoded (corrupt streaming file).
class DaySource {
 public:
  using SnapshotFn =
      std::function<void(uint32_t peer, const uint32_t* files, size_t count)>;

  virtual ~DaySource() = default;
  virtual size_t peer_count() const = 0;
  virtual int first_day() const = 0;
  virtual int last_day() const = 0;
  virtual bool ForEachSnapshotOnDay(int day, const SnapshotFn& fn) = 0;
};

// In-RAM source: walks Trace::timeline snapshots.
class TraceDaySource final : public DaySource {
 public:
  explicit TraceDaySource(const Trace& trace) : trace_(trace) {}

  size_t peer_count() const override { return trace_.peer_count(); }
  int first_day() const override { return trace_.first_day(); }
  int last_day() const override { return trace_.last_day(); }
  bool ForEachSnapshotOnDay(int day, const SnapshotFn& fn) override;

 private:
  const Trace& trace_;
  std::vector<uint32_t> scratch_;  // FileId -> uint32 staging per snapshot.
};

// Out-of-core source: decodes one EDKT v2 day segment at a time through a
// reused arena. The reader must outlive the source.
class StreamingDaySource final : public DaySource {
 public:
  explicit StreamingDaySource(const stream::TraceReader& reader)
      : reader_(reader) {}

  size_t peer_count() const override {
    return static_cast<size_t>(reader_.peer_count());
  }
  int first_day() const override { return reader_.first_day(); }
  int last_day() const override { return reader_.last_day(); }
  bool ForEachSnapshotOnDay(int day, const SnapshotFn& fn) override;

 private:
  const stream::TraceReader& reader_;
  stream::DecodeArena arena_;
};

// Core replay over any DaySource. Returns nullopt (with `error` set) only
// when the source fails to decode a day.
std::optional<DynamicSimResult> RunDynamicSearchSimulation(
    DaySource& source, const DynamicSimConfig& config,
    std::string* error = nullptr);

// `trace` should be dense per peer (the extrapolated trace); days without a
// snapshot mean the peer is offline (cannot ask, answer, or upload).
DynamicSimResult RunDynamicSearchSimulation(const Trace& trace,
                                            const DynamicSimConfig& config);

// Streaming twin: replays an EDKT v2 file day by day without materialising
// it. Byte-identical to the Trace overload on the same data.
std::optional<DynamicSimResult> RunDynamicSearchSimulation(
    const stream::TraceReader& reader, const DynamicSimConfig& config,
    std::string* error = nullptr);

}  // namespace edk

#endif  // SRC_SEMANTIC_DYNAMIC_SIM_H_
