#include "src/semantic/interest_placement.h"

#include <algorithm>

#include "src/exec/parallel.h"

namespace edk {

namespace {

// Interest bucket of one sorted cache: the bucket holding the cache's
// median file. A cluster's draws concentrate in one contiguous file
// range, so the median sits inside that range unless more than half the
// cache is outside it — far more robust than any per-bucket plurality
// count, which degenerates into singleton ties once caches are smaller
// than the bucket grid is fine. (A peer drawing 80% of its files from
// its cluster range mislabels only when binomially > half its draws are
// spice: well under 1% for a ten-file cache.)
uint32_t DominantBucket(std::span<const FileId> cache, uint32_t file_bound,
                        uint32_t buckets) {
  if (cache.empty()) {
    return buckets;  // Past-the-end label: no interest signal.
  }
  const FileId median = cache[cache.size() / 2];
  return static_cast<uint32_t>(
      static_cast<uint64_t>(std::min(median.value, file_bound - 1)) * buckets /
      file_bound);
}

uint32_t ResolveBuckets(uint32_t file_bound, uint32_t buckets) {
  if (file_bound == 0) {
    return 1;
  }
  if (buckets == 0) {
    buckets = std::min(file_bound, kDefaultInterestBuckets);
  }
  return std::min(buckets, file_bound);
}

}  // namespace

std::vector<uint32_t> InterestLabels(
    std::span<const std::span<const FileId>> caches, uint32_t file_bound,
    uint32_t buckets) {
  if (file_bound == 0) {
    for (const auto& cache : caches) {
      for (const FileId file : cache) {
        file_bound = std::max(file_bound, file.value + 1);
      }
    }
  }
  const uint32_t grid = ResolveBuckets(file_bound, buckets);
  std::vector<uint32_t> labels(caches.size());
  ParallelFor(0, caches.size(), [&](size_t p) {
    labels[p] = DominantBucket(caches[p], std::max(file_bound, 1u), grid);
  });
  return labels;
}

std::vector<uint32_t> InterestLabels(const StaticCaches& caches,
                                     uint32_t buckets) {
  std::vector<std::span<const FileId>> spans;
  spans.reserve(caches.caches.size());
  for (const auto& cache : caches.caches) {
    spans.emplace_back(cache.data(), cache.size());
  }
  return InterestLabels(std::span<const std::span<const FileId>>(spans), 0,
                        buckets);
}

std::vector<uint32_t> InterestLabels(const CacheStore& store, uint32_t buckets) {
  const uint32_t file_bound = static_cast<uint32_t>(store.file_bound());
  const uint32_t grid = ResolveBuckets(file_bound, buckets);
  std::vector<uint32_t> labels(store.peer_count());
  ParallelFor(0, store.peer_count(), [&](size_t p) {
    const auto files = store.PeerFiles(static_cast<uint32_t>(p));
    if (files.empty()) {
      labels[p] = grid;
      return;
    }
    // CSR rows are sorted uint32 file ids; same median-bucket estimate as
    // the FileId overload.
    const uint32_t median = files[files.size() / 2];
    labels[p] = static_cast<uint32_t>(
        static_cast<uint64_t>(std::min(median, file_bound - 1)) * grid /
        std::max(file_bound, 1u));
  });
  return labels;
}

sim::Placement InterestClusteredPlacement(
    std::span<const std::span<const FileId>> caches, uint32_t file_bound,
    uint32_t buckets) {
  const std::vector<uint32_t> labels = InterestLabels(caches, file_bound, buckets);
  return sim::Placement::InterestClustered(labels);
}

sim::Placement InterestClusteredPlacement(const CacheStore& store,
                                          uint32_t buckets) {
  const std::vector<uint32_t> labels = InterestLabels(store, buckets);
  return sim::Placement::InterestClustered(labels);
}

}  // namespace edk
