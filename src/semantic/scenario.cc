#include "src/semantic/scenario.h"

#include <algorithm>
#include <numeric>

namespace edk {

StaticCaches RemoveTopUploaders(const StaticCaches& caches, double fraction) {
  std::vector<uint32_t> sharers;
  for (uint32_t p = 0; p < caches.caches.size(); ++p) {
    if (!caches.caches[p].empty()) {
      sharers.push_back(p);
    }
  }
  std::sort(sharers.begin(), sharers.end(), [&caches](uint32_t a, uint32_t b) {
    if (caches.caches[a].size() != caches.caches[b].size()) {
      return caches.caches[a].size() > caches.caches[b].size();
    }
    return a < b;
  });
  const size_t remove =
      static_cast<size_t>(fraction * static_cast<double>(sharers.size()));
  StaticCaches out = caches;
  for (size_t i = 0; i < remove; ++i) {
    out.caches[sharers[i]].clear();
  }
  return out;
}

StaticCaches RemoveTopFiles(const StaticCaches& caches, double fraction,
                            size_t file_count) {
  const auto counts = caches.SourceCounts(file_count);
  std::vector<uint32_t> files;
  for (uint32_t f = 0; f < file_count; ++f) {
    if (counts[f] > 0) {
      files.push_back(f);
    }
  }
  std::sort(files.begin(), files.end(), [&counts](uint32_t a, uint32_t b) {
    if (counts[a] != counts[b]) {
      return counts[a] > counts[b];
    }
    return a < b;
  });
  const size_t remove = static_cast<size_t>(fraction * static_cast<double>(files.size()));
  std::vector<bool> removed(file_count, false);
  for (size_t i = 0; i < remove; ++i) {
    removed[files[i]] = true;
  }
  StaticCaches out;
  out.caches.resize(caches.caches.size());
  for (size_t p = 0; p < caches.caches.size(); ++p) {
    auto& cache = out.caches[p];
    cache.reserve(caches.caches[p].size());
    for (FileId f : caches.caches[p]) {
      if (!removed[f.value]) {
        cache.push_back(f);
      }
    }
  }
  return out;
}

StaticCaches RemoveTopUploadersAndFiles(const StaticCaches& caches,
                                        double uploader_fraction, double file_fraction,
                                        size_t file_count) {
  return RemoveTopFiles(RemoveTopUploaders(caches, uploader_fraction), file_fraction,
                        file_count);
}

}  // namespace edk
