// Interest labels for shard placement (the greedy topic-bucketing pass).
//
// The paper's clustering finding (§4–5) is that peers with overlapping
// caches form stable interest clusters; the sharded engine can exploit
// that by co-locating a cluster on one shard (src/sim/placement.h). This
// module derives the per-node labels the interest-clustered placement
// consumes, without ever materialising the O(N²) overlap matrix:
//
//   1. The file-id space is cut into `buckets` equal ranges ("topics" in
//      the MakeClusteredCaches sense; for real traces, popularity-sorted
//      file ids make ranges a serviceable topic proxy).
//   2. Each peer is labelled by the bucket of its median file — O(1) on
//      the sorted CSR / cache arrays, trivially parallel, deterministic
//      for any thread count (labels[i] is a pure function of cache i).
//      The median is the robust point estimate of the cluster range: a
//      peer mislabels only when over half its cache is drawn outside its
//      cluster's file range.
//
// Two peers drawing from the same cluster range get labels inside that
// range's few adjacent buckets, so the Placement rank permutation makes
// them shard-mates (exactly when the cluster count comfortably exceeds
// the shard count — a boundary cluster can still straddle two shards).
// Peers with empty caches get the past-the-end label and sort to the
// tail.

#ifndef SRC_SEMANTIC_INTEREST_PLACEMENT_H_
#define SRC_SEMANTIC_INTEREST_PLACEMENT_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/sim/placement.h"
#include "src/trace/cache_store.h"
#include "src/trace/trace.h"

namespace edk {

// Default bucket-grid resolution when `buckets == 0`. Placement only
// needs the label order to track file-space locality — not to separate
// every cluster — so the grid merely has to stay far finer than any
// realistic shard count; 256 leaves dozens of buckets per shard even at
// the widest sweeps while keeping labels stable for small caches.
inline constexpr uint32_t kDefaultInterestBuckets = 256;

// Dominant-bucket label per cache. `file_bound` is one past the largest
// file id (0 = computed from the caches); `buckets` is the grid
// resolution (0 = min(file_bound, kDefaultInterestBuckets)). Empty caches
// label as `buckets` (one past the real label range).
std::vector<uint32_t> InterestLabels(
    std::span<const std::span<const FileId>> caches, uint32_t file_bound = 0,
    uint32_t buckets = 0);
std::vector<uint32_t> InterestLabels(const StaticCaches& caches,
                                     uint32_t buckets = 0);
// Trace-driven variant over the flat CSR store (no per-peer copies).
std::vector<uint32_t> InterestLabels(const CacheStore& store,
                                     uint32_t buckets = 0);

// Convenience: the full greedy pass, labels folded into a Placement.
sim::Placement InterestClusteredPlacement(
    std::span<const std::span<const FileId>> caches, uint32_t file_bound = 0,
    uint32_t buckets = 0);
sim::Placement InterestClusteredPlacement(const CacheStore& store,
                                          uint32_t buckets = 0);

}  // namespace edk

#endif  // SRC_SEMANTIC_INTEREST_PLACEMENT_H_
