#include "src/semantic/sharded_gossip.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <iomanip>
#include <span>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "src/exec/parallel.h"
#include "src/net/latency.h"
#include "src/net/network.h"
#include "src/semantic/interest_placement.h"

namespace edk {

namespace {

// A participant: its semantic view (node ids, best overlap first) plus the
// nominal round counter. State is only ever touched from the node's own
// events, which is what makes the run partition-independent.
struct GossipNode : SimNode {
  std::vector<uint32_t> view;
  uint32_t round = 0;
};

// Per-shard tallies; inside a window each shard is driven by exactly one
// worker, so plain counters suffice. Cache-line separated to avoid false
// sharing between workers.
struct alignas(64) ShardTally {
  uint64_t exchanges = 0;
  uint64_t probes = 0;
  uint64_t probe_hits = 0;
};

class Scenario {
 public:
  Scenario(const StaticCaches& caches, const Geography& geography,
           const ShardedGossipConfig& config)
      : config_(config),
        caches_(CompactCaches(caches)),
        network_(&geography, MakeNetConfig(config, caches_)),
        tallies_(network_.engine().shard_count()) {
    nodes_.resize(caches_.size());
    Rng setup_rng(config_.seed);
    for (GossipNode& node : nodes_) {
      const CountryId country = geography.SampleCountry(setup_rng);
      node.set_attachment(country, geography.SampleAs(country, setup_rng));
      network_.Register(&node);
    }
    // Stagger the first initiation across the first half of a round so the
    // per-round event load spreads over simulated time; the half-period
    // cap plus two one-way delays keeps round r inside (r-1, r] periods,
    // which is what lets the trajectory loop measure at round boundaries.
    for (uint32_t i = 0; i < nodes_.size(); ++i) {
      const double jitter =
          1.0 + network_.NodeRng(i).NextDouble() * (config_.round_period * 0.5);
      network_.ScheduleOn(i, jitter, [this, i] { InitiateRound(i); });
    }
  }

  ShardedGossipStats Run() {
    const auto wall_start = std::chrono::steady_clock::now();
    ShardedGossipStats stats;
    if (config_.trajectory) {
      for (size_t r = 1; r <= config_.rounds; ++r) {
        network_.RunUntil(static_cast<double>(r) * config_.round_period);
        GossipRoundPoint point;
        point.round = r;
        point.mean_view_overlap = MeanViewOverlap();
        point.view_hit_rate = ViewHitRate();
        stats.trajectory.push_back(point);
      }
    }
    network_.Run();  // Drain stragglers and the probe phase.
    stats.wall_seconds =
        std::chrono::duration_cast<std::chrono::duration<double>>(
            std::chrono::steady_clock::now() - wall_start)
            .count();

    const sim::ShardedEngine& engine = network_.engine();
    stats.participants = nodes_.size();
    stats.events_executed = engine.events_executed();
    stats.messages_sent = engine.messages_sent();
    stats.windows = engine.windows_run();
    stats.clamped_sends = engine.clamped_sends();
    stats.deferred_sends = engine.deferred_sends();
    stats.cross_shard_messages = engine.cross_shard_messages();
    stats.sim_seconds = engine.now();
    for (const ShardTally& tally : tallies_) {
      stats.exchanges += tally.exchanges;
      stats.probes += tally.probes;
      stats.probe_hits += tally.probe_hits;
    }
    stats.mean_view_overlap =
        stats.trajectory.empty() ? MeanViewOverlap()
                                 : stats.trajectory.back().mean_view_overlap;
    stats.view_hit_rate = stats.trajectory.empty()
                              ? ViewHitRate()
                              : stats.trajectory.back().view_hit_rate;
    return stats;
  }

 private:
  uint32_t Overlap(uint32_t a, uint32_t b) const {
    return static_cast<uint32_t>(OverlapSize(caches_[a], caches_[b]));
  }

  // Folds `candidates` into the node's view and keeps the view_size best
  // by cache overlap, ties by node id. Scores are computed once per entry
  // (not inside the sort comparator): the merge runs tens of millions of
  // times in a scale run.
  void MergeIntoView(uint32_t node_id, std::span<const uint32_t> candidates) {
    auto& view = nodes_[node_id].view;
    std::vector<std::pair<uint32_t, uint32_t>> scored;  // (overlap, id)
    scored.reserve(view.size() + candidates.size());
    for (uint32_t member : view) {
      scored.emplace_back(Overlap(node_id, member), member);
    }
    for (uint32_t candidate : candidates) {
      if (candidate == node_id) {
        continue;
      }
      if (std::find(view.begin(), view.end(), candidate) != view.end()) {
        continue;
      }
      scored.emplace_back(Overlap(node_id, candidate), candidate);
    }
    std::sort(scored.begin(), scored.end(),
              [](const auto& a, const auto& b) {
                if (a.first != b.first) {
                  return a.first > b.first;
                }
                return a.second < b.second;
              });
    if (scored.size() > config_.view_size) {
      scored.resize(config_.view_size);
    }
    view.clear();
    for (const auto& [overlap, id] : scored) {
      view.push_back(id);
    }
  }

  void InitiateRound(uint32_t i) {
    GossipNode& node = nodes_[i];
    const uint32_t round = node.round++;
    Rng& rng = network_.NodeRng(i);
    const size_t n = nodes_.size();

    // Explore a uniformly random participant every explore_every-th round
    // (round 0 always explores: views start empty), exploit the best
    // semantic neighbour otherwise.
    const size_t explore_every = std::max<size_t>(1, config_.explore_every);
    uint32_t partner = i;
    if (!node.view.empty() && round % explore_every != 0) {
      partner = node.view[0];
    } else if (n > 1) {
      do {
        partner = static_cast<uint32_t>(rng.NextBelow(n));
      } while (partner == i);
    }

    if (partner != i) {
      // Offer: self + own view head + random spice, gossip_length total.
      std::vector<uint32_t> offer;
      offer.reserve(config_.gossip_length);
      offer.push_back(i);
      for (uint32_t member : node.view) {
        if (offer.size() >= config_.gossip_length) {
          break;
        }
        offer.push_back(member);
      }
      for (int attempt = 0;
           attempt < 8 && offer.size() < config_.gossip_length && n > 1;
           ++attempt) {
        const uint32_t spice = static_cast<uint32_t>(rng.NextBelow(n));
        if (spice != i &&
            std::find(offer.begin(), offer.end(), spice) == offer.end()) {
          offer.push_back(spice);
        }
      }
      ++tallies_[network_.engine().shard_of(i)].exchanges;
      network_.Send(i, partner,
                    [this, i, partner, offer = std::move(offer)] {
                      OnRequest(partner, i, offer);
                    });
    }

    if (round + 1 < config_.rounds) {
      network_.ScheduleOn(i, config_.round_period,
                          [this, i] { InitiateRound(i); });
    } else if (config_.probe_rounds > 0) {
      network_.ScheduleOn(i, config_.round_period,
                          [this, i] { Probe(i, 0); });
    }
  }

  // Runs on the partner's shard: fold the initiator's offer in and reply
  // with our own view head.
  void OnRequest(uint32_t partner, uint32_t initiator,
                 const std::vector<uint32_t>& offer) {
    MergeIntoView(partner, offer);
    std::vector<uint32_t> reply;
    reply.reserve(config_.gossip_length);
    reply.push_back(partner);
    for (uint32_t member : nodes_[partner].view) {
      if (reply.size() >= config_.gossip_length) {
        break;
      }
      reply.push_back(member);
    }
    network_.Send(partner, initiator,
                  [this, initiator, reply = std::move(reply)] {
                    MergeIntoView(initiator, reply);
                  });
  }

  // Local semantic probe: can my view serve a file I hold? Purely local
  // (caches are immutable shared state), so no messages are needed.
  void Probe(uint32_t i, size_t k) {
    ShardTally& tally = tallies_[network_.engine().shard_of(i)];
    ++tally.probes;
    Rng& rng = network_.NodeRng(i);
    const auto& cache = caches_[i];
    const FileId file = cache[rng.NextBelow(cache.size())];
    for (uint32_t member : nodes_[i].view) {
      const auto& other = caches_[member];
      if (std::binary_search(other.begin(), other.end(), file)) {
        ++tally.probe_hits;
        break;
      }
    }
    if (k + 1 < config_.probe_rounds) {
      network_.ScheduleOn(i, config_.round_period,
                          [this, i, k] { Probe(i, k + 1); });
    }
  }

  // Mean cache overlap between every participant and its view members.
  // ParallelFor writes per-node slots; the reduction is sequential, so the
  // total is bit-identical for any thread count.
  double MeanViewOverlap() {
    const size_t n = nodes_.size();
    std::vector<double> sums(n);
    std::vector<uint32_t> counts(n);
    ParallelFor(
        0, n,
        [this, &sums, &counts](size_t i) {
          const uint32_t self = static_cast<uint32_t>(i);
          double sum = 0;
          for (uint32_t member : nodes_[i].view) {
            sum += static_cast<double>(Overlap(self, member));
          }
          sums[i] = sum;
          counts[i] = static_cast<uint32_t>(nodes_[i].view.size());
        },
        config_.threads);
    double total = 0;
    uint64_t counted = 0;
    for (size_t i = 0; i < n; ++i) {
      total += sums[i];
      counted += counts[i];
    }
    return counted == 0 ? 0.0 : total / static_cast<double>(counted);
  }

  // Fraction of (peer, file-from-its-own-cache) draws served by the
  // peer's semantic view. A dedicated sequential stream keeps the
  // estimate independent of the node streams and of the partitioning.
  double ViewHitRate() {
    if (nodes_.empty() || config_.hit_samples == 0) {
      return 0;
    }
    Rng rng(config_.seed ^ 0x5851f42d4c957f2dULL);
    uint64_t hits = 0;
    for (size_t s = 0; s < config_.hit_samples; ++s) {
      const uint32_t i = static_cast<uint32_t>(rng.NextBelow(nodes_.size()));
      const auto& cache = caches_[i];
      const FileId file = cache[rng.NextBelow(cache.size())];
      for (uint32_t member : nodes_[i].view) {
        const auto& other = caches_[member];
        if (std::binary_search(other.begin(), other.end(), file)) {
          ++hits;
          break;
        }
      }
    }
    return static_cast<double>(hits) /
           static_cast<double>(config_.hit_samples);
  }

  // Only peers with content participate (matches GossipOverlay).
  static std::vector<std::span<const FileId>> CompactCaches(
      const StaticCaches& caches) {
    std::vector<std::span<const FileId>> out;
    for (const auto& cache : caches.caches) {
      if (!cache.empty()) {
        out.push_back(cache);
      }
    }
    return out;
  }

  // Placement labels must come from the *compacted* caches: the node ids
  // the engine sees are participant indices, not raw peer ids.
  static SimNetConfig MakeNetConfig(
      const ShardedGossipConfig& config,
      std::span<const std::span<const FileId>> caches) {
    SimNetConfig net;
    net.seed = config.seed;
    net.shards = config.shards;
    net.threads = config.threads;
    net.window_factor = config.window_factor;
    switch (config.placement) {
      case sim::PlacementPolicy::kContiguous:
        net.placement =
            sim::Placement::Contiguous(static_cast<uint32_t>(caches.size()));
        break;
      case sim::PlacementPolicy::kInterestClustered:
        net.placement = InterestClusteredPlacement(caches);
        break;
      case sim::PlacementPolicy::kRoundRobin:
        break;
    }
    return net;
  }

  ShardedGossipConfig config_;
  std::vector<std::span<const FileId>> caches_;  // Indexed by node id.
  SimNetwork network_;
  std::vector<GossipNode> nodes_;
  std::vector<ShardTally> tallies_;
};

}  // namespace

double ShardedGossipStats::EventsPerSecond() const {
  return wall_seconds > 0 ? static_cast<double>(events_executed) / wall_seconds
                          : 0.0;
}

double ShardedGossipStats::ProbeHitRate() const {
  return probes > 0 ? static_cast<double>(probe_hits) / static_cast<double>(probes)
                    : 0.0;
}

std::string ShardedGossipStats::DeterministicSummary() const {
  std::ostringstream os;
  os << std::setprecision(17);
  os << "participants=" << participants << " events=" << events_executed
     << " messages=" << messages_sent << " exchanges=" << exchanges
     << " probes=" << probes << " probe_hits=" << probe_hits
     << " windows=" << windows << " clamped=" << clamped_sends
     << " deferred=" << deferred_sends << " sim_seconds=" << sim_seconds
     << " mean_view_overlap=" << mean_view_overlap
     << " view_hit_rate=" << view_hit_rate;
  for (const GossipRoundPoint& point : trajectory) {
    os << " r" << point.round << "=" << point.mean_view_overlap << ","
       << point.view_hit_rate;
  }
  return os.str();
}

ShardedGossipStats RunShardedGossip(const StaticCaches& caches,
                                    const Geography& geography,
                                    const ShardedGossipConfig& config) {
  // An exchange needs two one-way delays inside one period; shorter
  // periods would stack the next initiation onto a still-in-flight
  // exchange and silently skew every derived metric, so reject them
  // outright rather than warn.
  const double min_period = 2 * LatencyModel::MinDelay();
  if (!(config.round_period >= min_period)) {
    std::ostringstream os;
    os << "ShardedGossipConfig::round_period = " << config.round_period
       << " must be >= 2 * LatencyModel::MinDelay() = " << min_period;
    throw std::invalid_argument(os.str());
  }
  Scenario scenario(caches, geography, config);
  return scenario.Run();
}

uint32_t ClusteredCacheTopic(uint32_t peer, uint32_t topics, uint64_t seed) {
  if (topics <= 1) {
    return 0;
  }
  // A dedicated stream (salted off the cache-content streams) so the
  // assignment is a pure function of (seed, peer).
  Rng rng = TaskRng(seed ^ 0x746f706963ULL, peer);  // "topic"
  return static_cast<uint32_t>(rng.NextBelow(topics));
}

StaticCaches MakeClusteredCaches(uint32_t peers, uint32_t files,
                                 uint32_t topics, uint64_t seed) {
  assert(files > 0);
  if (topics == 0) {
    topics = 1;
  }
  topics = std::min(topics, files);
  StaticCaches out;
  out.caches.resize(peers);
  ParallelFor(0, peers, [&](size_t p) {
    Rng rng = TaskRng(seed, p);
    const uint32_t topic =
        ClusteredCacheTopic(static_cast<uint32_t>(p), topics, seed);
    // Contiguous slice of the file space for this topic.
    const uint32_t lo = static_cast<uint32_t>(
        static_cast<uint64_t>(files) * topic / topics);
    const uint32_t hi = static_cast<uint32_t>(
        static_cast<uint64_t>(files) * (topic + 1) / topics);
    // Geometric cache sizes: most peers share a handful of files, a few
    // share a lot (the paper's skewed sharing profile, §4).
    const size_t size =
        1 + static_cast<size_t>(std::min<uint64_t>(rng.NextGeometric(0.08), 99));
    auto& cache = out.caches[p];
    cache.reserve(size);
    for (size_t f = 0; f < size; ++f) {
      const uint32_t file =
          (hi > lo && rng.NextBool(0.8))
              ? lo + static_cast<uint32_t>(rng.NextBelow(hi - lo))
              : static_cast<uint32_t>(rng.NextBelow(files));
      cache.push_back(FileId(file));
    }
    std::sort(cache.begin(), cache.end());
    cache.erase(std::unique(cache.begin(), cache.end()), cache.end());
  });
  return out;
}

}  // namespace edk
