#include "src/semantic/search_sim.h"

#include <algorithm>
#include <cassert>
#include <string>

#include "src/common/rng.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"
#include "src/obs/trace_log.h"
#include "src/trace/cache_store.h"

namespace edk {

namespace {

// Packs a (peer, replica slot) pair into one 64-bit value for the request
// shuffle. The slot indexes the flat CSR files array, so it both recovers
// the file id and addresses the per-replica acquired flag directly.
inline uint64_t PackRequest(uint32_t peer, size_t slot) {
  return (static_cast<uint64_t>(peer) << 32) | static_cast<uint32_t>(slot);
}

constexpr uint32_t kSentinelNoUploader = 0xffffffffu;

}  // namespace

size_t MaxRandomNeighbours(size_t sharer_count, bool requester_shares,
                           size_t list_size) {
  // The requester never queries itself, so it occupies a candidate slot
  // only when it is itself a sharer.
  const size_t reachable = sharer_count - (requester_shares ? 1 : 0);
  return std::min(list_size, reachable);
}

SearchSimResult RunSearchSimulation(const StaticCaches& potential,
                                    const SearchSimConfig& config) {
  // Flat CSR view of the request universe. Every peer only ever acquires
  // files from its own potential cache, so "which files does q share right
  // now" is a per-replica bit over the CSR slots: O(log k) binary search in
  // q's sorted slice instead of one unordered_set per peer.
  return RunSearchSimulation(CacheStore::FromStaticCaches(potential), config);
}

SearchSimResult RunSearchSimulation(const CacheStore& store,
                                    const SearchSimConfig& config) {
  obs::PhaseTimer timer("semantic.search_sim.run");
  const size_t peer_count = store.peer_count();
  Rng rng(config.seed);
  SearchSimResult result;

  assert(store.total_replicas() <= 0xffffffffu);

  // Request stream: every (peer, file) pair in uniform random order. This
  // realises the paper's "successively pick at random a peer p and a file f
  // in its set of files to be requested". Slots enumerate each peer's cache
  // in ascending file order, matching the historical (peer, file) stream.
  std::vector<uint64_t> requests;
  requests.reserve(store.total_replicas());
  for (uint32_t p = 0; p < peer_count; ++p) {
    for (size_t slot = store.PeerBegin(p); slot < store.PeerEnd(p); ++slot) {
      requests.push_back(PackRequest(p, slot));
    }
  }
  rng.Shuffle(requests);

  // Evolving state: which replica slots have been acquired, and the known
  // sources of each file (sources only ever grow in this simulation).
  std::vector<uint8_t> acquired(store.total_replicas(), 0);
  std::vector<std::vector<uint32_t>> sources(store.file_bound());
  const auto shares_file = [&](uint32_t q, uint32_t f) {
    const size_t slot = store.FindSlot(q, f);
    return slot != CacheStore::kNoSlot && acquired[slot] != 0;
  };

  // Per-peer neighbour lists (lazily created; free-riders have no requests
  // so they never allocate one). With fixed views, no lists are learned.
  std::vector<std::unique_ptr<NeighbourList>> lists;
  const bool fixed_views = config.fixed_views != nullptr;
  const bool random_strategy =
      !fixed_views && config.strategy == StrategyKind::kRandom;
  if (!random_strategy && !fixed_views) {
    lists.resize(peer_count);
  }
  // Audit trail: one record per request, keyed by the deterministic request
  // ordinal (== result.requests - 1 at emission time). The enabled check is
  // hoisted; EmitAudit itself applies the sampling modulus.
  const bool tracing = obs::TraceLog::Enabled();
  const uint16_t audit_name = tracing ? obs::AuditName() : 0;
  const uint64_t audit_strategy =
      fixed_views ? obs::kAuditStrategyFixedViews
                  : static_cast<uint64_t>(config.strategy);

  // Sharer universe for the Random baseline.
  std::vector<uint32_t> sharer_ids;
  if (random_strategy) {
    for (uint32_t p = 0; p < peer_count; ++p) {
      if (store.CacheSize(p) > 0) {
        sharer_ids.push_back(p);
      }
    }
  }

  if (config.track_load) {
    result.load.assign(peer_count, 0);
  }
  auto charge = [&result, &config](uint32_t peer) {
    ++result.messages;
    if (config.track_load) {
      ++result.load[peer];
    }
  };

  std::vector<uint32_t> neighbours;
  std::vector<uint32_t> second_hop;
  // Per-request membership (two-hop visited set, Random-strategy neighbour
  // dedup, offline neighbours): epoch-stamped dense arrays. Bumping the
  // epoch empties them in O(1); no hashing, no clears.
  std::vector<uint64_t> visited_stamp(peer_count, 0);
  std::vector<uint64_t> offline_stamp(peer_count, 0);
  uint64_t epoch = 0;

  for (uint64_t packed : requests) {
    const uint32_t p = static_cast<uint32_t>(packed >> 32);
    const size_t slot = static_cast<uint32_t>(packed);
    const uint32_t f = store.FileAtSlot(slot);
    ++epoch;
    if (acquired[slot] != 0) {
      continue;  // Already acquired earlier in the run (e.g. as a seed).
    }
    auto& file_sources = sources[f];
    if (file_sources.empty()) {
      // p is the original contributor of f.
      ++result.seeds;
      acquired[slot] = 1;
      file_sources.push_back(p);
      continue;
    }

    ++result.requests;
    // Popularity bucket: floor(log2(source count)).
    size_t bucket = 0;
    for (size_t remaining = file_sources.size(); remaining > 1; remaining >>= 1) {
      ++bucket;
    }
    if (result.requests_by_popularity.size() <= bucket) {
      result.requests_by_popularity.resize(bucket + 1, 0);
      result.hits_by_popularity.resize(bucket + 1, 0);
    }
    ++result.requests_by_popularity[bucket];

    uint32_t uploader = kSentinelNoUploader;
    bool one_hop = false;
    bool two_hop = false;

    neighbours.clear();
    if (fixed_views) {
      if (p < config.fixed_views->size()) {
        const auto& view = (*config.fixed_views)[p];
        const size_t take = std::min(config.list_size, view.size());
        neighbours.assign(view.begin(), view.begin() + static_cast<long>(take));
      }
    } else if (random_strategy) {
      // k distinct random sharers (excluding the requester). Every request
      // here comes from the requester's own cache, so it is a sharer; the
      // guard still accounts for non-sharing requesters explicitly rather
      // than always reserving them a slot.
      const size_t max_neighbours = MaxRandomNeighbours(
          sharer_ids.size(), store.CacheSize(p) > 0, config.list_size);
      visited_stamp[p] = epoch;
      for (int attempts = 0;
           neighbours.size() < max_neighbours &&
           attempts < static_cast<int>(4 * config.list_size);
           ++attempts) {
        const uint32_t candidate = sharer_ids[rng.NextBelow(sharer_ids.size())];
        if (visited_stamp[candidate] != epoch) {
          visited_stamp[candidate] = epoch;
          neighbours.push_back(candidate);
        }
      }
    } else if (lists[p] != nullptr) {
      lists[p]->Collect(config.list_size, neighbours);
    }

    for (uint32_t q : neighbours) {
      // Churn model: an offline neighbour receives no query and cannot
      // answer; the message is never sent. The draw is per request and
      // per peer, so the two-hop stage sees the same offline set.
      if (config.neighbour_availability < 1.0 &&
          !rng.NextBool(config.neighbour_availability)) {
        offline_stamp[q] = epoch;
        continue;
      }
      charge(q);
      if (shares_file(q, f)) {
        uploader = q;
        one_hop = true;
        break;
      }
    }

    if (!one_hop && config.two_hop && !random_strategy) {
      visited_stamp[p] = epoch;
      for (uint32_t q : neighbours) {
        visited_stamp[q] = epoch;
      }
      for (uint32_t q : neighbours) {
        if (two_hop) {
          break;
        }
        // An offline neighbour cannot forward to its own neighbours.
        if (offline_stamp[q] == epoch) {
          continue;
        }
        second_hop.clear();
        if (fixed_views) {
          if (q < config.fixed_views->size()) {
            const auto& view = (*config.fixed_views)[q];
            const size_t take = std::min(config.list_size, view.size());
            second_hop.assign(view.begin(), view.begin() + static_cast<long>(take));
          }
        } else if (lists[q] != nullptr) {
          lists[q]->Collect(config.list_size, second_hop);
        }
        for (uint32_t r : second_hop) {
          if (visited_stamp[r] == epoch) {
            continue;
          }
          visited_stamp[r] = epoch;
          if (config.neighbour_availability < 1.0 &&
              !rng.NextBool(config.neighbour_availability)) {
            continue;
          }
          charge(r);
          ++result.two_hop_probes;
          if (shares_file(r, f)) {
            uploader = r;
            two_hop = true;
            break;
          }
        }
      }
    }

    if (uploader == kSentinelNoUploader) {
      // Fallback: server lookup / flooding returns a random current source.
      ++result.fallbacks;
      uploader = file_sources[rng.NextBelow(file_sources.size())];
    }
    result.one_hop_hits += one_hop ? 1 : 0;
    result.two_hop_hits += two_hop ? 1 : 0;
    result.hits_by_popularity[bucket] += (one_hop || two_hop) ? 1 : 0;

    if (tracing) {
      obs::QueryOutcome outcome;
      if (one_hop) {
        outcome = obs::QueryOutcome::kOneHopHit;
      } else if (two_hop) {
        outcome = obs::QueryOutcome::kTwoHopHit;
      } else if (neighbours.empty()) {
        outcome = obs::QueryOutcome::kNeighbourAbsent;
      } else if (config.two_hop && !random_strategy) {
        outcome = obs::QueryOutcome::kHopBudgetExhausted;
      } else {
        outcome = obs::QueryOutcome::kCacheMiss;
      }
      obs::EmitAudit(audit_name, result.requests - 1, p, f, outcome,
                     neighbours.size(), audit_strategy, config.list_size,
                     config.two_hop ? 1 : 0);
    }

    if (!random_strategy && !fixed_views) {
      if (lists[p] == nullptr) {
        lists[p] = MakeNeighbourList(config.strategy, config.list_size);
      }
      const double rarity = 1.0 / static_cast<double>(file_sources.size());
      lists[p]->RecordUpload(uploader, rarity);
    }
    acquired[slot] = 1;
    file_sources.push_back(p);
  }

  // Fold the run's totals into the process-wide registry, keyed by
  // strategy. One bulk Increment per metric keeps the hot loop free of
  // instrumentation, and summing per-run totals is commutative, so a
  // parallel sweep over many simulations yields thread-count-independent
  // values.
  auto& registry = obs::MetricsRegistry::Global();
  const std::string prefix =
      std::string("semantic.") +
      (fixed_views ? "FixedViews" : StrategyName(config.strategy)) + ".";
  registry.GetCounter(prefix + "seeds").Increment(result.seeds);
  registry.GetCounter(prefix + "requests").Increment(result.requests);
  registry.GetCounter(prefix + "one_hop_hits").Increment(result.one_hop_hits);
  registry.GetCounter(prefix + "two_hop_hits").Increment(result.two_hop_hits);
  registry.GetCounter(prefix + "misses")
      .Increment(result.requests - result.one_hop_hits - result.two_hop_hits);
  registry.GetCounter(prefix + "fallbacks").Increment(result.fallbacks);
  registry.GetCounter(prefix + "messages").Increment(result.messages);
  registry.GetCounter(prefix + "two_hop_probes").Increment(result.two_hop_probes);
  if (config.two_hop && result.requests > 0) {
    // Average second-hop queries per request — the two-hop fan-out cost.
    // Fixed range (not derived from config.list_size): histogram bounds
    // bind on first creation, so a config-dependent range would depend on
    // which sweep task registered it first.
    registry.GetHistogram("semantic.two_hop_fanout_per_request", 0.0, 512.0, 32)
        .Record(static_cast<double>(result.two_hop_probes) /
                static_cast<double>(result.requests));
  }
  return result;
}

}  // namespace edk
