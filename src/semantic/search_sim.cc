#include "src/semantic/search_sim.h"

#include <algorithm>
#include <string>
#include <unordered_set>

#include "src/common/rng.h"
#include "src/obs/metrics.h"

namespace edk {

namespace {

// Packs a (peer, file) pair into one 64-bit value for the request shuffle.
inline uint64_t PackRequest(uint32_t peer, uint32_t file) {
  return (static_cast<uint64_t>(peer) << 32) | file;
}

constexpr uint32_t kSentinelNoUploader = 0xffffffffu;

}  // namespace

SearchSimResult RunSearchSimulation(const StaticCaches& potential,
                                    const SearchSimConfig& config) {
  const size_t peer_count = potential.caches.size();
  Rng rng(config.seed);
  SearchSimResult result;

  // Request stream: every (peer, file) pair in uniform random order. This
  // realises the paper's "successively pick at random a peer p and a file f
  // in its set of files to be requested".
  std::vector<uint64_t> requests;
  requests.reserve(potential.TotalReplicas());
  uint32_t max_file = 0;
  for (uint32_t p = 0; p < peer_count; ++p) {
    for (FileId f : potential.caches[p]) {
      requests.push_back(PackRequest(p, f.value));
      max_file = std::max(max_file, f.value);
    }
  }
  rng.Shuffle(requests);

  // Evolving state: which files each peer currently shares, and the known
  // sources of each file (sources only ever grow in this simulation).
  std::vector<std::unordered_set<uint32_t>> shared(peer_count);
  std::vector<std::vector<uint32_t>> sources(static_cast<size_t>(max_file) + 1);

  // Per-peer neighbour lists (lazily created; free-riders have no requests
  // so they never allocate one). With fixed views, no lists are learned.
  std::vector<std::unique_ptr<NeighbourList>> lists;
  const bool fixed_views = config.fixed_views != nullptr;
  const bool random_strategy =
      !fixed_views && config.strategy == StrategyKind::kRandom;
  if (!random_strategy && !fixed_views) {
    lists.resize(peer_count);
  }
  // Sharer universe for the Random baseline.
  std::vector<uint32_t> sharer_ids;
  if (random_strategy) {
    for (uint32_t p = 0; p < peer_count; ++p) {
      if (!potential.caches[p].empty()) {
        sharer_ids.push_back(p);
      }
    }
  }

  if (config.track_load) {
    result.load.assign(peer_count, 0);
  }
  auto charge = [&result, &config](uint32_t peer) {
    ++result.messages;
    if (config.track_load) {
      ++result.load[peer];
    }
  };

  std::vector<uint32_t> neighbours;
  std::vector<uint32_t> second_hop;
  std::unordered_set<uint32_t> visited;
  std::unordered_set<uint32_t> offline;  // Per-request offline neighbours.

  for (uint64_t packed : requests) {
    const uint32_t p = static_cast<uint32_t>(packed >> 32);
    const uint32_t f = static_cast<uint32_t>(packed);
    if (shared[p].contains(f)) {
      continue;  // Already acquired earlier in the run (e.g. as a seed).
    }
    auto& file_sources = sources[f];
    if (file_sources.empty()) {
      // p is the original contributor of f.
      ++result.seeds;
      shared[p].insert(f);
      file_sources.push_back(p);
      continue;
    }

    ++result.requests;
    // Popularity bucket: floor(log2(source count)).
    size_t bucket = 0;
    for (size_t remaining = file_sources.size(); remaining > 1; remaining >>= 1) {
      ++bucket;
    }
    if (result.requests_by_popularity.size() <= bucket) {
      result.requests_by_popularity.resize(bucket + 1, 0);
      result.hits_by_popularity.resize(bucket + 1, 0);
    }
    ++result.requests_by_popularity[bucket];

    uint32_t uploader = kSentinelNoUploader;
    bool one_hop = false;
    bool two_hop = false;

    neighbours.clear();
    if (fixed_views) {
      if (p < config.fixed_views->size()) {
        const auto& view = (*config.fixed_views)[p];
        const size_t take = std::min(config.list_size, view.size());
        neighbours.assign(view.begin(), view.begin() + static_cast<long>(take));
      }
    } else if (random_strategy) {
      // k distinct random sharers (excluding the requester).
      for (int attempts = 0;
           neighbours.size() < config.list_size &&
           attempts < static_cast<int>(4 * config.list_size) &&
           neighbours.size() + 1 < sharer_ids.size();
           ++attempts) {
        const uint32_t candidate = sharer_ids[rng.NextBelow(sharer_ids.size())];
        if (candidate != p &&
            std::find(neighbours.begin(), neighbours.end(), candidate) ==
                neighbours.end()) {
          neighbours.push_back(candidate);
        }
      }
    } else if (lists[p] != nullptr) {
      lists[p]->Collect(config.list_size, neighbours);
    }

    if (config.neighbour_availability < 1.0) {
      offline.clear();
    }
    for (uint32_t q : neighbours) {
      // Churn model: an offline neighbour receives no query and cannot
      // answer; the message is never sent. The draw is per request and
      // per peer, so the two-hop stage sees the same offline set.
      if (config.neighbour_availability < 1.0 &&
          !rng.NextBool(config.neighbour_availability)) {
        offline.insert(q);
        continue;
      }
      charge(q);
      if (shared[q].contains(f)) {
        uploader = q;
        one_hop = true;
        break;
      }
    }

    if (!one_hop && config.two_hop && !random_strategy) {
      visited.clear();
      visited.insert(p);
      for (uint32_t q : neighbours) {
        visited.insert(q);
      }
      for (uint32_t q : neighbours) {
        if (two_hop) {
          break;
        }
        // An offline neighbour cannot forward to its own neighbours.
        if (offline.contains(q)) {
          continue;
        }
        second_hop.clear();
        if (fixed_views) {
          if (q < config.fixed_views->size()) {
            const auto& view = (*config.fixed_views)[q];
            const size_t take = std::min(config.list_size, view.size());
            second_hop.assign(view.begin(), view.begin() + static_cast<long>(take));
          }
        } else if (lists[q] != nullptr) {
          lists[q]->Collect(config.list_size, second_hop);
        }
        for (uint32_t r : second_hop) {
          if (!visited.insert(r).second) {
            continue;
          }
          if (config.neighbour_availability < 1.0 &&
              !rng.NextBool(config.neighbour_availability)) {
            continue;
          }
          charge(r);
          ++result.two_hop_probes;
          if (shared[r].contains(f)) {
            uploader = r;
            two_hop = true;
            break;
          }
        }
      }
    }

    if (uploader == kSentinelNoUploader) {
      // Fallback: server lookup / flooding returns a random current source.
      ++result.fallbacks;
      uploader = file_sources[rng.NextBelow(file_sources.size())];
    }
    result.one_hop_hits += one_hop ? 1 : 0;
    result.two_hop_hits += two_hop ? 1 : 0;
    result.hits_by_popularity[bucket] += (one_hop || two_hop) ? 1 : 0;

    if (!random_strategy && !fixed_views) {
      if (lists[p] == nullptr) {
        lists[p] = MakeNeighbourList(config.strategy, config.list_size);
      }
      const double rarity = 1.0 / static_cast<double>(file_sources.size());
      lists[p]->RecordUpload(uploader, rarity);
    }
    shared[p].insert(f);
    file_sources.push_back(p);
  }

  // Fold the run's totals into the process-wide registry, keyed by
  // strategy. One bulk Increment per metric keeps the hot loop free of
  // instrumentation, and summing per-run totals is commutative, so a
  // parallel sweep over many simulations yields thread-count-independent
  // values.
  auto& registry = obs::MetricsRegistry::Global();
  const std::string prefix =
      std::string("semantic.") +
      (fixed_views ? "FixedViews" : StrategyName(config.strategy)) + ".";
  registry.GetCounter(prefix + "seeds").Increment(result.seeds);
  registry.GetCounter(prefix + "requests").Increment(result.requests);
  registry.GetCounter(prefix + "one_hop_hits").Increment(result.one_hop_hits);
  registry.GetCounter(prefix + "two_hop_hits").Increment(result.two_hop_hits);
  registry.GetCounter(prefix + "misses")
      .Increment(result.requests - result.one_hop_hits - result.two_hop_hits);
  registry.GetCounter(prefix + "fallbacks").Increment(result.fallbacks);
  registry.GetCounter(prefix + "messages").Increment(result.messages);
  registry.GetCounter(prefix + "two_hop_probes").Increment(result.two_hop_probes);
  if (config.two_hop && result.requests > 0) {
    // Average second-hop queries per request — the two-hop fan-out cost.
    // Fixed range (not derived from config.list_size): histogram bounds
    // bind on first creation, so a config-dependent range would depend on
    // which sweep task registered it first.
    registry.GetHistogram("semantic.two_hop_fanout_per_request", 0.0, 512.0, 32)
        .Record(static_cast<double>(result.two_hop_probes) /
                static_cast<double>(result.requests));
  }
  return result;
}

}  // namespace edk
