// AS-level index caching ("PeerCache", paper §4.1).
//
// The paper observes that 54% of clients sit in five autonomous systems and
// that file sources cluster geographically, and points at operator-run
// per-AS caches (indexes, to avoid storing content) as the way to exploit
// it. This module quantifies that opportunity on a trace: replaying the
// §5.1 request stream, what fraction of requests could be answered by an
// index covering only the requester's AS (or country)? A shuffled-labels
// control separates genuine locality from group-size effects.

#ifndef SRC_SEMANTIC_AS_CACHE_H_
#define SRC_SEMANTIC_AS_CACHE_H_

#include <cstdint>
#include <vector>

#include "src/trace/trace.h"

namespace edk {

struct AsLocalityConfig {
  uint64_t seed = 1;
  // Also evaluate the control where AS/country labels are randomly
  // permuted across peers (group sizes preserved, locality destroyed).
  bool run_shuffled_control = true;
};

struct AsLocalityStats {
  uint64_t requests = 0;
  uint64_t as_local_hits = 0;        // Another source in the requester's AS.
  uint64_t country_local_hits = 0;   // ... or at least country.
  uint64_t shuffled_as_hits = 0;     // Control with permuted AS labels.

  double AsLocalRate() const {
    return requests == 0 ? 0 : static_cast<double>(as_local_hits) / static_cast<double>(requests);
  }
  double CountryLocalRate() const {
    return requests == 0 ? 0
                         : static_cast<double>(country_local_hits) / static_cast<double>(requests);
  }
  double ShuffledAsRate() const {
    return requests == 0 ? 0 : static_cast<double>(shuffled_as_hits) / static_cast<double>(requests);
  }

  struct PerAs {
    AsId autonomous_system;
    uint64_t requests = 0;
    uint64_t hits = 0;
  };
  // Per-AS breakdown, sorted by request volume descending.
  std::vector<PerAs> by_as;
};

// `trace` provides peer attachments (AS, country); `caches` the per-peer
// request sets (typically BuildUnionCaches(filtered)).
AsLocalityStats EvaluateAsLocality(const Trace& trace, const StaticCaches& caches,
                                   const AsLocalityConfig& config = {});

}  // namespace edk

#endif  // SRC_SEMANTIC_AS_CACHE_H_
