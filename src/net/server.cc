#include "src/net/server.h"

#include <algorithm>

namespace edk {

SimServer::SimServer(SimNetwork* network, ServerConfig config)
    : network_(network), core_(config) {
  network_->Register(this);
}

void SimServer::AddKnownServer(NodeId server) {
  if (server == node_id()) {
    return;
  }
  if (std::find(known_servers_.begin(), known_servers_.end(), server) ==
      known_servers_.end()) {
    known_servers_.push_back(server);
  }
}

}  // namespace edk
