#include "src/net/event_queue.h"

#include <cassert>
#include <optional>

#include "src/obs/metrics.h"
#include "src/obs/span.h"
#include "src/obs/trace_log.h"

namespace edk {

namespace {

// Process-wide simulation-kernel metrics (see DESIGN.md on edk::obs).
// Counters sum and the depth gauge takes a max across every queue in the
// process, so totals are deterministic even when parallel sweep tasks each
// drive their own queue. Pointers are fetched once; Reset() never
// invalidates them.
struct QueueMetrics {
  obs::Counter* scheduled;
  obs::Counter* cancelled;
  obs::Counter* run;
  obs::Counter* sim_millis;  // Sim-time advanced by executed events.
  obs::Gauge* max_pending;
};

QueueMetrics& Metrics() {
  auto& registry = obs::MetricsRegistry::Global();
  static QueueMetrics metrics{
      &registry.GetCounter("eventq.events_scheduled"),
      &registry.GetCounter("eventq.events_cancelled"),
      &registry.GetCounter("eventq.events_run"),
      &registry.GetCounter("eventq.sim_millis"),
      &registry.GetGauge("eventq.max_pending"),
  };
  return metrics;
}

// Wall spans for whole-queue drains. Engine-owned (uninstrumented) queues
// skip these exactly like the eventq.* metrics: a per-shard drain is
// already traced by the engine as sim.shard_drain.
uint16_t RunSpanName() {
  static const uint16_t name =
      obs::TraceLog::Global().InternName("eventq.run", {"events"});
  return name;
}

uint16_t RunUntilSpanName() {
  static const uint16_t name =
      obs::TraceLog::Global().InternName("eventq.run_until", {"events"});
  return name;
}

}  // namespace

bool EventQueue::EventHandle::Cancel() {
  if (cancelled_ == nullptr || *cancelled_) {
    return false;
  }
  *cancelled_ = true;
  // The event is dead from this moment even though it still sits in the
  // priority queue; the pop paths discard it without touching the count.
  --*live_;
  Metrics().cancelled->Increment();
  return true;
}

bool EventQueue::EventHandle::pending() const {
  return cancelled_ != nullptr && !*cancelled_;
}

EventQueue::EventHandle EventQueue::Schedule(double delay, Callback fn) {
  assert(delay >= 0);
  return ScheduleAt(now_ + delay, std::move(fn));
}

EventQueue::EventHandle EventQueue::ScheduleAt(double when, Callback fn) {
  // Contract: a `when` in the past is clamped to now() rather than letting
  // the clock run backwards. The sharded-engine mailbox merge depends on
  // this: a message whose arrival lands exactly on a window boundary is
  // scheduled at the shard clock and runs in the next window.
  if (when < now_) {
    when = now_;
  }
  auto cancelled = std::make_shared<bool>(false);
  events_.push(Event{when, next_sequence_++, std::move(fn), cancelled});
  ++*live_;
  if (metrics_enabled_) {
    QueueMetrics& metrics = Metrics();
    metrics.scheduled->Increment();
    metrics.max_pending->UpdateMax(static_cast<int64_t>(*live_));
  }
  return EventHandle(std::move(cancelled), live_);
}

bool EventQueue::PeekNextTime(double* when) {
  while (!events_.empty()) {
    if (*events_.top().cancelled) {
      events_.pop();
      continue;
    }
    *when = events_.top().time;
    return true;
  }
  return false;
}

bool EventQueue::PopAndRun() {
  while (!events_.empty()) {
    // Safe to move from under the comparator: the event is popped before
    // the queue's ordering is consulted again.
    Event event = std::move(const_cast<Event&>(events_.top()));
    events_.pop();
    if (*event.cancelled) {
      continue;  // Cancel() already removed it from the live count.
    }
    --*live_;
    if (metrics_enabled_) {
      QueueMetrics& metrics = Metrics();
      metrics.run->Increment();
      if (event.time > now_) {
        metrics.sim_millis->Increment(static_cast<uint64_t>((event.time - now_) * 1e3));
      }
    }
    now_ = event.time;
    // Mark consumed before running: handles report not-pending from inside
    // the callback, and a late Cancel() is a no-op.
    *event.cancelled = true;
    event.fn();
    return true;
  }
  return false;
}

size_t EventQueue::Run() {
  // Wall-clock cost of draining the queue; together with the deterministic
  // eventq.sim_millis counter this yields the sim-time / wall-time ratio.
  // Engine-owned (uninstrumented) queues skip the timer: it takes the
  // registry mutex, which would serialise the per-window shard drains.
  std::optional<obs::PhaseTimer> timer;
  if (metrics_enabled_) {
    timer.emplace("eventq.run");
  }
  obs::WallSpan span(metrics_enabled_ ? RunSpanName() : 0);
  if (!metrics_enabled_) {
    span.Cancel();
  }
  size_t executed = 0;
  while (PopAndRun()) {
    ++executed;
  }
  span.AddArg(executed);
  return executed;
}

size_t EventQueue::RunUntil(double until) {
  std::optional<obs::PhaseTimer> timer;
  if (metrics_enabled_) {
    timer.emplace("eventq.run_until");
  }
  obs::WallSpan span(metrics_enabled_ ? RunUntilSpanName() : 0);
  if (!metrics_enabled_) {
    span.Cancel();
  }
  size_t executed = 0;
  while (!events_.empty()) {
    // Skip cancelled events eagerly so the top is always live.
    if (*events_.top().cancelled) {
      events_.pop();
      continue;
    }
    if (events_.top().time > until) {
      break;
    }
    if (PopAndRun()) {
      ++executed;
    }
  }
  if (now_ < until) {
    now_ = until;
  }
  span.AddArg(executed);
  return executed;
}

bool EventQueue::Step() { return PopAndRun(); }

}  // namespace edk
