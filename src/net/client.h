// Simulated eDonkey client (paper §2.1, "Client-client interactions").
//
// Implements the client half of the protocol: connect/publish to an index
// server, keyword search, source queries, browsing other clients' caches
// (the feature the paper's crawler exploits), and block-wise downloads with
// per-block MD4 verification, retry on corruption, and partial sharing
// (a file is re-shared as soon as one block verifies).
//
// Content scaling: transfers move synthetic payloads whose size is the real
// file size times `content_scale`, so multi-hundred-MB files can be
// exercised in milliseconds of real time while every byte that does move is
// genuinely hashed and verified.

#ifndef SRC_NET_CLIENT_H_
#define SRC_NET_CLIENT_H_

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/net/network.h"
#include "src/net/protocol.h"
#include "src/net/server.h"

namespace edk {

struct ClientConfig {
  std::string nickname;
  bool firewalled = false;
  bool browse_enabled = true;              // Users may disable browsing (§2.2).
  double uplink_bytes_per_second = 16'000;
  uint64_t block_size = 9'500;             // 9.28 MB scaled by content_scale.
  double content_scale = 1.0 / 1024.0;
  double corruption_probability = 0.0;     // Per-block transit corruption.
  int max_block_retries = 3;
};

// Generates the deterministic synthetic payload of one block. Both sides of
// a transfer derive identical bytes from (file, block), so MD4 verification
// is end-to-end real.
std::vector<uint8_t> SyntheticBlockPayload(FileId file, uint32_t block_index,
                                           size_t length);

class SimClient : public SimNode {
 public:
  using BrowseCallback =
      std::function<void(std::optional<std::vector<SharedFileInfo>>)>;
  using DownloadCallback = std::function<void(bool success)>;

  SimClient(SimNetwork* network, ClientConfig config);

  const ClientConfig& config() const { return config_; }
  const std::string& nickname() const { return config_.nickname; }
  bool firewalled() const { return config_.firewalled; }

  // Builds the canonical SharedFileInfo (digest derived from file identity).
  static SharedFileInfo MakeFileInfo(FileId file, uint64_t size_bytes,
                                     std::string name);

  // --- Local cache ---------------------------------------------------------
  void AddLocalFile(const SharedFileInfo& info);
  // Records one verified block of an in-progress download (partial
  // sharing, §2.1): after the first block the file is offered to others
  // and republished. Partial sharers serve only blocks they hold.
  void RegisterPartialBlock(const SharedFileInfo& info, uint32_t block_index);
  bool RemoveLocalFile(const Md4Digest& digest);
  bool HasCompleteFile(const Md4Digest& digest) const;
  // True once at least one block has been verified (partial sharing).
  bool SharesFile(const Md4Digest& digest) const;
  std::vector<SharedFileInfo> SharedFiles() const;
  size_t shared_file_count() const { return shared_.size(); }

  // --- Server interaction ---------------------------------------------------
  // Connects, then publishes the cache. `done(false)` when the server is full.
  void Connect(NodeId server, std::function<void(bool)> done);
  void Disconnect();
  NodeId connected_server() const { return server_; }
  bool connected() const { return server_ != kInvalidNode; }
  // Re-publishes the current shared list to the connected server.
  void Publish();
  void QueryUsers(const std::string& prefix,
                  std::function<void(std::vector<UserRecord>)> on_reply);
  void Search(const std::vector<std::string>& keywords,
              std::function<void(std::vector<SharedFileInfo>)> on_reply);
  void QuerySources(const Md4Digest& digest,
                    std::function<void(std::vector<SourceRecord>)> on_reply);
  // Cross-server source discovery: asks the connected server AND, via UDP
  // (no session needed), every server on its server list — "clients also
  // use UDP messages to propagate their queries to other servers" (§2.1).
  // The reply aggregates deduplicated sources from all servers.
  void QuerySourcesGlobal(const Md4Digest& digest,
                          std::function<void(std::vector<SourceRecord>)> on_reply);
  // Server list propagation: retrieves the connected server's known-server
  // list (the only data communicated between servers, §2.1).
  void GetServerList(std::function<void(std::vector<NodeId>)> on_reply);

  // --- Client-client --------------------------------------------------------
  // Asks `target` for its shared list. nullopt when the target is
  // unreachable (firewalled with no relay, or both ends firewalled) or has
  // browsing disabled.
  void Browse(NodeId target, BrowseCallback on_reply);
  // Downloads the file from `source` block by block with verification.
  void Download(NodeId source, const SharedFileInfo& info, DownloadCallback on_done);

  // --- Stats ------------------------------------------------------------------
  uint64_t blocks_received() const { return blocks_received_; }
  uint64_t blocks_corrupted() const { return blocks_corrupted_; }
  uint64_t downloads_completed() const { return downloads_completed_; }
  uint64_t downloads_failed() const { return downloads_failed_; }

  // --- Remote-invoked handlers (public for SimNetwork closures) -------------
  std::optional<std::vector<SharedFileInfo>> HandleBrowse() const;
  // Block digests of the (scaled) content, for downloader verification.
  std::vector<Md4Digest> HandleHashsetRequest(const Md4Digest& digest) const;
  // "The client asks the source ... which blocks of the file are
  // available" (§2.1): per-block availability bitmap; empty when the file
  // is not shared at all.
  std::vector<bool> HandleAvailableBlocks(const Md4Digest& digest) const;
  // Payload of one block; corruption is injected here with the configured
  // probability. Empty when the block is not held (partial source) or the
  // file is not shared (source went away).
  std::vector<uint8_t> HandleBlockRequest(const Md4Digest& digest,
                                          uint32_t block_index, Rng& rng) const;

  // Scaled transfer size of a file.
  uint64_t ScaledSize(uint64_t size_bytes) const;
  uint32_t BlockCount(uint64_t size_bytes) const;

 private:
  struct LocalFile {
    SharedFileInfo info;
    bool complete = true;
    uint32_t verified_blocks = 0;
    // Per-block availability while incomplete (empty when complete: all
    // blocks are held).
    std::vector<bool> block_map;
  };

  struct DownloadState {
    NodeId source = kInvalidNode;
    SharedFileInfo info;
    std::vector<Md4Digest> hashset;
    uint32_t next_block = 0;
    uint32_t block_count = 0;
    int retries_left = 0;
    DownloadCallback on_done;
    // Trace span covering the whole download (id 0 = unsampled/disabled).
    uint64_t trace_id = 0;
    uint64_t trace_parent = 0;
    double trace_start = 0;
  };

  // True if a direct or relayed connection to `target` can be established.
  bool CanReach(const SimClient& target) const;
  // Extra delay for the server-mediated callback used to reach a
  // firewalled source (paper: "the client may ask the source server to
  // force the source to initiate the connection").
  double RelayPenalty(const SimClient& target) const;
  void RequestNextBlock(std::shared_ptr<DownloadState> state);
  void FinishDownload(std::shared_ptr<DownloadState> state, bool success);
  SimClient* ClientAt(NodeId id) const;

  SimNetwork* network_;
  ClientConfig config_;
  NodeId server_ = kInvalidNode;
  // Ordinal feeding content-derived trace span ids (MixId2(self, seq)).
  // Only advanced from this node's own events, so — like the node RNG
  // stream — its trajectory is independent of the shard partitioning.
  uint64_t trace_seq_ = 0;
  std::map<Md4Digest, LocalFile> shared_;
  uint64_t blocks_received_ = 0;
  uint64_t blocks_corrupted_ = 0;
  uint64_t downloads_completed_ = 0;
  uint64_t downloads_failed_ = 0;
};

}  // namespace edk

#endif  // SRC_NET_CLIENT_H_
