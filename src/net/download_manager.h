// Multi-source swarming download (paper §2.1: "concurrent downloads of a
// file from different sources", "queries for sources are retried every
// twenty minutes").
//
// The DownloadManager discovers sources through the connected server and
// cross-server UDP queries, fetches the hashset once, then schedules block
// requests across up to max_parallel_sources sources concurrently. Each
// block is MD4-verified on arrival; corrupted blocks are retried (possibly
// from another source), dead sources are dropped, and while unfinished the
// manager re-queries for new sources on the protocol's 20-minute timer.
// Partial sharing applies: after the first verified block the owner
// publishes the file and serves other downloaders.

#ifndef SRC_NET_DOWNLOAD_MANAGER_H_
#define SRC_NET_DOWNLOAD_MANAGER_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/net/client.h"

namespace edk {

struct MultiSourceConfig {
  double source_requery_interval = 1'200.0;  // 20 minutes (§2.1).
  size_t max_parallel_sources = 4;
  int max_block_retries = 3;
  int max_requery_rounds = 8;  // Give up after this many fruitless rounds.
  bool use_global_queries = true;  // UDP queries to non-connected servers.
};

struct MultiSourceReport {
  bool success = false;
  uint32_t block_count = 0;
  uint32_t corrupted_blocks = 0;   // Detected and retried.
  uint32_t sources_discovered = 0;
  uint32_t sources_used = 0;       // Sources that delivered >= 1 verified block.
  uint32_t requery_rounds = 0;
  double duration_seconds = 0;
};

class DownloadManager {
 public:
  using Callback = std::function<void(const MultiSourceReport&)>;

  // `owner` must be connected to a server and outlive the manager.
  DownloadManager(SimNetwork* network, SimClient* owner, MultiSourceConfig config);
  ~DownloadManager();

  DownloadManager(const DownloadManager&) = delete;
  DownloadManager& operator=(const DownloadManager&) = delete;

  // Starts a multi-source fetch. One fetch at a time per manager.
  void Fetch(const SharedFileInfo& info, Callback on_done);

  bool active() const;

 private:
  struct Transfer;

  void DiscoverSources();
  void OnSources(std::vector<SourceRecord> sources);
  void RequestHashset(NodeId source);
  void ScheduleBlocks();
  void RequestBlockMap(NodeId source);
  void RequestBlock(NodeId source, uint32_t block);
  void OnBlockPayload(NodeId source, uint32_t block, std::vector<uint8_t> payload);
  void DropSource(NodeId source);
  void ArmRequeryTimer();
  void Finish(bool success);

  SimNetwork* network_;
  SimClient* owner_;
  MultiSourceConfig config_;
  std::shared_ptr<Transfer> transfer_;  // Null when idle.
};

}  // namespace edk

#endif  // SRC_NET_DOWNLOAD_MANAGER_H_
