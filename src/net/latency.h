// Network latency and bandwidth model.
//
// Latency between two peers is driven by geography: same-AS, same-country,
// same-continent and intercontinental tiers plus lognormal-ish jitter.
// Bandwidth uses the asymmetric DSL profile of the 2003-era access links
// the paper's population used.

#ifndef SRC_NET_LATENCY_H_
#define SRC_NET_LATENCY_H_

#include "src/common/ids.h"
#include "src/common/rng.h"
#include "src/workload/geography.h"

namespace edk {

enum class Continent { kEurope, kAmericas, kAsiaPacific };

Continent ContinentOf(const std::string& country_code);

class LatencyModel {
 public:
  explicit LatencyModel(const Geography* geography) : geography_(geography) {}

  // One-way delay in seconds between two attachment points.
  double Delay(CountryId from_country, AsId from_as, CountryId to_country, AsId to_as,
               Rng& rng) const;

  // Deterministic lower bound on Delay() over every geography tier and
  // jitter draw: the intra-AS base with zero jitter. The sharded engine
  // uses this as its conservative lookahead (window width) — any message
  // sent inside a window arrives at or beyond the next window boundary.
  static double MinDelay();

  // Typical client uplink in bytes/second (heavy-tailed across peers).
  double SampleUplinkBytesPerSecond(Rng& rng) const;

 private:
  const Geography* geography_;
};

}  // namespace edk

#endif  // SRC_NET_LATENCY_H_
