// Simulated eDonkey index server (paper §2.1, "Client-server interactions").
//
// Servers index the files published by connected clients, answer keyword
// searches, source queries, and — crucially for the paper's crawler — the
// legacy query-users request that returns up to 200 users whose nickname
// matches a prefix. Servers also maintain and propagate the server list,
// the only data exchanged between servers.

#ifndef SRC_NET_SERVER_H_
#define SRC_NET_SERVER_H_

#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/net/network.h"
#include "src/net/protocol.h"

namespace edk {

struct ServerConfig {
  size_t max_users = 200'000;          // Connection cap (paper: >200k users).
  size_t max_user_results = 200;       // query-users reply cap.
  size_t max_search_results = 300;
  size_t max_source_results = 100;
  bool supports_query_users = true;    // Old servers only (paper §2.1).
};

class SimServer : public SimNode {
 public:
  SimServer(SimNetwork* network, ServerConfig config);

  const ServerConfig& config() const { return config_; }

  // --- Server-server -------------------------------------------------------
  void AddKnownServer(NodeId server);
  const std::vector<NodeId>& known_servers() const { return known_servers_; }

  // --- Client-server handlers (invoked on message delivery) ----------------
  // Returns false when the server is full. On success the client is
  // registered and will be reported by query-users.
  bool HandleLogin(NodeId client, const std::string& nickname, bool firewalled);
  void HandleLogout(NodeId client);
  // Replaces the published file list of a connected client.
  void HandlePublish(NodeId client, const std::vector<SharedFileInfo>& files);
  // Nickname prefix search, capped at max_user_results.
  std::vector<UserRecord> HandleQueryUsers(const std::string& prefix) const;
  // Sources currently sharing the file.
  std::vector<SourceRecord> HandleQuerySources(const Md4Digest& digest) const;
  // Conjunctive keyword search over published file names.
  std::vector<SharedFileInfo> HandleSearch(const std::vector<std::string>& keywords) const;

  bool IsConnected(NodeId client) const { return sessions_.contains(client); }
  size_t connected_users() const { return sessions_.size(); }
  size_t indexed_files() const { return files_.size(); }
  uint64_t queries_served() const { return queries_served_; }

  // Splits a file name into lowercase keyword tokens.
  static std::vector<std::string> Tokenize(const std::string& name);

 private:
  struct Session {
    std::string nickname;
    bool low_id = false;
    std::vector<Md4Digest> published;
  };
  struct FileEntry {
    SharedFileInfo info;
    std::unordered_set<NodeId> sources;
  };

  void RemovePublished(NodeId client);

  SimNetwork* network_;
  ServerConfig config_;
  std::vector<NodeId> known_servers_;
  std::unordered_map<NodeId, Session> sessions_;
  std::unordered_map<Md4Digest, FileEntry> files_;
  // Keyword -> digests of files whose name contains the keyword.
  std::unordered_map<std::string, std::unordered_set<Md4Digest>> keyword_index_;
  // Nicknames sorted for prefix scans.
  std::multimap<std::string, NodeId> users_by_nickname_;
  mutable uint64_t queries_served_ = 0;
};

}  // namespace edk

#endif  // SRC_NET_SERVER_H_
