// Simulated eDonkey index server (paper §2.1, "Client-server interactions").
//
// Servers index the files published by connected clients, answer keyword
// searches, source queries, and — crucially for the paper's crawler — the
// legacy query-users request that returns up to 200 users whose nickname
// matches a prefix. Servers also maintain and propagate the server list,
// the only data exchanged between servers.
//
// The request/response logic itself lives in the transport-agnostic
// ServerCore (src/net/server_core.h); SimServer is the SimNetwork-attached
// front-end and delegates every handler, so the identical index also runs
// behind the real TCP transport (src/netio/tcp_server.h).

#ifndef SRC_NET_SERVER_H_
#define SRC_NET_SERVER_H_

#include <string>
#include <vector>

#include "src/net/network.h"
#include "src/net/protocol.h"
#include "src/net/server_core.h"

namespace edk {

class SimServer : public SimNode {
 public:
  SimServer(SimNetwork* network, ServerConfig config);

  const ServerConfig& config() const { return core_.config(); }
  // The underlying transport-agnostic index.
  ServerCore& core() { return core_; }
  const ServerCore& core() const { return core_; }

  // --- Server-server -------------------------------------------------------
  void AddKnownServer(NodeId server);
  const std::vector<NodeId>& known_servers() const { return known_servers_; }

  // --- Client-server handlers (invoked on message delivery) ----------------
  // Returns false when the server is full. On success the client is
  // registered and will be reported by query-users.
  bool HandleLogin(NodeId client, const std::string& nickname, bool firewalled) {
    return core_.HandleLogin(client, nickname, firewalled);
  }
  void HandleLogout(NodeId client) { core_.HandleLogout(client); }
  // Replaces the published file list of a connected client.
  void HandlePublish(NodeId client, const std::vector<SharedFileInfo>& files) {
    core_.HandlePublish(client, files);
  }
  // Nickname prefix search, capped at max_user_results.
  std::vector<UserRecord> HandleQueryUsers(const std::string& prefix) const {
    return core_.HandleQueryUsers(prefix);
  }
  // Sources currently sharing the file.
  std::vector<SourceRecord> HandleQuerySources(const Md4Digest& digest) const {
    return core_.HandleQuerySources(digest);
  }
  // Conjunctive keyword search over published file names.
  std::vector<SharedFileInfo> HandleSearch(
      const std::vector<std::string>& keywords) const {
    return core_.HandleSearch(keywords);
  }

  bool IsConnected(NodeId client) const { return core_.IsConnected(client); }
  size_t connected_users() const { return core_.connected_users(); }
  size_t indexed_files() const { return core_.indexed_files(); }
  uint64_t queries_served() const { return core_.queries_served(); }

  // Splits a file name into lowercase keyword tokens.
  static std::vector<std::string> Tokenize(const std::string& name) {
    return ServerCore::Tokenize(name);
  }

 private:
  SimNetwork* network_;
  ServerCore core_;
  std::vector<NodeId> known_servers_;
};

}  // namespace edk

#endif  // SRC_NET_SERVER_H_
