// Discrete-event simulation kernel.
//
// A single-threaded event queue with virtual time in seconds. Events are
// closures ordered by (time, insertion sequence), which gives two ordering
// contracts that the rest of the system (in particular the sharded-engine
// mailbox merge, see src/sim/sharded_engine.h) relies on:
//
//   1. FIFO tiebreak: events scheduled for the same timestamp run in
//      insertion order. Inserting a batch of same-time events in a chosen
//      order therefore fixes their execution order exactly.
//   2. Clamping: ScheduleAt(when < now()) clamps `when` to now() — the
//      event runs at the current time, after everything already scheduled
//      for now(), and the clock never moves backwards.

#ifndef SRC_NET_EVENT_QUEUE_H_
#define SRC_NET_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

namespace edk {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  // Handle for cancelling a scheduled event. Default-constructed handles
  // are inert.
  class EventHandle {
   public:
    EventHandle() = default;
    // Returns true if the event was still pending and is now cancelled.
    bool Cancel();
    bool pending() const;

   private:
    friend class EventQueue;
    EventHandle(std::shared_ptr<bool> cancelled, std::shared_ptr<size_t> live)
        : cancelled_(std::move(cancelled)), live_(std::move(live)) {}
    std::shared_ptr<bool> cancelled_;
    // Shares the queue's live-event counter so Cancel() can keep
    // pending_events() exact; outlives the queue harmlessly.
    std::shared_ptr<size_t> live_;
  };

  EventQueue() = default;

  double now() const { return now_; }
  size_t pending_events() const { return *live_; }

  // Schedules `fn` to run `delay` seconds from now (delay >= 0).
  EventHandle Schedule(double delay, Callback fn);
  // Schedules `fn` at absolute time `when`. A `when` in the past is clamped
  // to now(): the event runs at the current time, in FIFO position after
  // events already scheduled for now().
  EventHandle ScheduleAt(double when, Callback fn);

  // Runs events until the queue drains. Returns the number executed.
  size_t Run();
  // Runs events with time <= `until`, then advances the clock to `until`.
  size_t RunUntil(double until);
  // Executes at most one event; returns false if none is pending.
  bool Step();

  // Time of the next live (non-cancelled) event. Returns false when the
  // queue is empty. Discards cancelled events encountered at the top, so
  // it is O(1) amortised.
  bool PeekNextTime(double* when);

  // Disables the process-wide eventq.* metrics for this queue. The sharded
  // engine owns one queue per shard and reports aggregated sim.* metrics
  // instead: the per-queue totals (sim-time deltas, max depth) depend on
  // how nodes are partitioned, which would break the bit-identical-across
  // --shards guarantee of the deterministic metrics domain.
  void set_metrics_enabled(bool enabled) { metrics_enabled_ = enabled; }

 private:
  struct Event {
    double time;
    uint64_t sequence;
    Callback fn;
    std::shared_ptr<bool> cancelled;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.sequence > b.sequence;
    }
  };

  bool PopAndRun();

  std::priority_queue<Event, std::vector<Event>, Later> events_;
  double now_ = 0;
  uint64_t next_sequence_ = 0;
  bool metrics_enabled_ = true;
  // Pending (non-cancelled, not yet executed) events. Shared with handles:
  // Cancel() decrements it directly, execution paths decrement on pop.
  std::shared_ptr<size_t> live_ = std::make_shared<size_t>(0);
};

}  // namespace edk

#endif  // SRC_NET_EVENT_QUEUE_H_
