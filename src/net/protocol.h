// Wire-level records of the simulated eDonkey protocol (paper §2.1).
//
// The simulator exchanges these records between clients and servers through
// SimNetwork; they correspond one-to-one to the messages of the real
// protocol that the paper's crawler relied on (login, publish, search,
// query-sources, query-users, browse, block transfer).

#ifndef SRC_NET_PROTOCOL_H_
#define SRC_NET_PROTOCOL_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/common/ids.h"
#include "src/common/md4.h"

namespace edk {

// Index of a node (server or client) in the SimNetwork node table.
using NodeId = uint32_t;
inline constexpr NodeId kInvalidNode = 0xffffffffu;

// Description of one shared file, as published to servers and returned by
// browse replies. `file` is the ground-truth catalog id (what a real trace
// would reconstruct from the digest); `digest` is the eDonkey identifier.
struct SharedFileInfo {
  FileId file;
  Md4Digest digest{};
  uint64_t size_bytes = 0;
  std::string name;
};

// Entry of a query-users reply.
struct UserRecord {
  std::string nickname;
  NodeId node = kInvalidNode;
  bool low_id = false;  // Firewalled clients get a "low id".
};

// Entry of a query-sources reply.
struct SourceRecord {
  NodeId node = kInvalidNode;
  bool low_id = false;
};

}  // namespace edk

// Md4Digest (std::array<uint8_t,16>) as an unordered_map key.
template <>
struct std::hash<edk::Md4Digest> {
  size_t operator()(const edk::Md4Digest& digest) const noexcept {
    // The digest is already uniform; fold the first 8 bytes.
    size_t h = 0;
    for (int i = 0; i < 8; ++i) {
      h = (h << 8) | digest[i];
    }
    return h;
  }
};

#endif  // SRC_NET_PROTOCOL_H_
