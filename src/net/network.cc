#include "src/net/network.h"

#include <cassert>

#include "src/obs/metrics.h"

namespace edk {

namespace {

struct NetMetrics {
  obs::Counter* messages;
  obs::HistogramMetric* delay;
};

NetMetrics& Metrics() {
  auto& registry = obs::MetricsRegistry::Global();
  static NetMetrics metrics{
      &registry.GetCounter("net.messages_sent"),
      // One-way delays are tens to hundreds of ms; 2 s covers relay
      // penalties with headroom (the overflow bucket catches outliers).
      &registry.GetHistogram("net.delay_seconds", 0.0, 2.0, 40),
  };
  return metrics;
}

}  // namespace

SimNetwork::SimNetwork(const Geography* geography, uint64_t seed)
    : geography_(geography), rng_(seed), latency_(geography) {}

SimNetwork::SimNetwork(const Geography* geography, const SimNetConfig& config)
    : geography_(geography), rng_(config.seed), latency_(geography) {
  sim::ShardedEngineConfig engine_config;
  engine_config.shards = config.shards == 0 ? 1 : config.shards;
  engine_config.placement = config.placement;
  engine_config.threads = config.threads;
  engine_config.seed = config.seed;
  // The conservative window width floor: no Send() can undercut it, so
  // shards only exchange messages at window barriers.
  engine_config.lookahead = LatencyModel::MinDelay();
  // window_factor <= 1 pins the width to the lookahead (max_window 0
  // disables adaptation in the engine).
  engine_config.max_window =
      config.window_factor > 1.0 ? config.window_factor * LatencyModel::MinDelay()
                                 : 0.0;
  engine_ = std::make_unique<sim::ShardedEngine>(std::move(engine_config));
}

EventQueue& SimNetwork::queue() {
  assert(engine_ == nullptr && "queue() is a legacy-kernel seam; sharded-mode "
                               "code must use ScheduleOn/NodeNow");
  return queue_;
}

NodeId SimNetwork::Register(SimNode* node) {
  assert(node != nullptr);
  assert(node->node_id_ == kInvalidNode && "node registered twice");
  node->node_id_ = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(node);
  if (engine_ != nullptr) {
    engine_->EnsureNodes(static_cast<uint32_t>(nodes_.size()));
  }
  return node->node_id_;
}

double SimNetwork::DelayBetween(NodeId from, NodeId to) {
  const SimNode* a = nodes_[from];
  const SimNode* b = nodes_[to];
  return latency_.Delay(a->country(), a->autonomous_system(), b->country(),
                        b->autonomous_system(), NodeRng(from));
}

void SimNetwork::Send(NodeId from, NodeId to, std::function<void()> handler,
                      double extra_delay) {
  assert(from < nodes_.size() && to < nodes_.size());
  const double delay = DelayBetween(from, to) + extra_delay;
  NetMetrics& metrics = Metrics();
  metrics.messages->Increment();
  metrics.delay->Record(delay);
  if (engine_ != nullptr) {
    engine_->Send(from, to, delay, std::move(handler));
    return;
  }
  ++messages_sent_;
  queue_.Schedule(delay, std::move(handler));
}

EventQueue::EventHandle SimNetwork::ScheduleOn(NodeId node, double delay,
                                               EventQueue::Callback fn) {
  if (engine_ != nullptr) {
    return engine_->ScheduleOn(node, delay, std::move(fn));
  }
  (void)node;
  return queue_.Schedule(delay, std::move(fn));
}

double SimNetwork::NodeNow(NodeId node) const {
  if (engine_ != nullptr) {
    return engine_->NodeNow(node);
  }
  (void)node;
  return queue_.now();
}

Rng& SimNetwork::NodeRng(NodeId node) {
  if (engine_ != nullptr) {
    return engine_->NodeRng(node);
  }
  (void)node;
  return rng_;
}

size_t SimNetwork::Run() {
  if (engine_ != nullptr) {
    return static_cast<size_t>(engine_->Run());
  }
  return queue_.Run();
}

size_t SimNetwork::RunUntil(double until) {
  if (engine_ != nullptr) {
    return static_cast<size_t>(engine_->RunUntil(until));
  }
  return queue_.RunUntil(until);
}

uint64_t SimNetwork::messages_sent() const {
  if (engine_ != nullptr) {
    return engine_->messages_sent();
  }
  return messages_sent_;
}

}  // namespace edk
