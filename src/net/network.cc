#include "src/net/network.h"

#include <cassert>

#include "src/obs/metrics.h"

namespace edk {

namespace {

struct NetMetrics {
  obs::Counter* messages;
  obs::HistogramMetric* delay;
};

NetMetrics& Metrics() {
  auto& registry = obs::MetricsRegistry::Global();
  static NetMetrics metrics{
      &registry.GetCounter("net.messages_sent"),
      // One-way delays are tens to hundreds of ms; 2 s covers relay
      // penalties with headroom (the overflow bucket catches outliers).
      &registry.GetHistogram("net.delay_seconds", 0.0, 2.0, 40),
  };
  return metrics;
}

}  // namespace

SimNetwork::SimNetwork(const Geography* geography, uint64_t seed)
    : geography_(geography), rng_(seed), latency_(geography) {}

NodeId SimNetwork::Register(SimNode* node) {
  assert(node != nullptr);
  assert(node->node_id_ == kInvalidNode && "node registered twice");
  node->node_id_ = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(node);
  return node->node_id_;
}

double SimNetwork::DelayBetween(NodeId from, NodeId to) {
  const SimNode* a = nodes_[from];
  const SimNode* b = nodes_[to];
  return latency_.Delay(a->country(), a->autonomous_system(), b->country(),
                        b->autonomous_system(), rng_);
}

void SimNetwork::Send(NodeId from, NodeId to, std::function<void()> handler,
                      double extra_delay) {
  assert(from < nodes_.size() && to < nodes_.size());
  ++messages_sent_;
  const double delay = DelayBetween(from, to) + extra_delay;
  NetMetrics& metrics = Metrics();
  metrics.messages->Increment();
  metrics.delay->Record(delay);
  queue_.Schedule(delay, std::move(handler));
}

}  // namespace edk
