#include "src/net/network.h"

#include <cassert>

namespace edk {

SimNetwork::SimNetwork(const Geography* geography, uint64_t seed)
    : geography_(geography), rng_(seed), latency_(geography) {}

NodeId SimNetwork::Register(SimNode* node) {
  assert(node != nullptr);
  assert(node->node_id_ == kInvalidNode && "node registered twice");
  node->node_id_ = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(node);
  return node->node_id_;
}

double SimNetwork::DelayBetween(NodeId from, NodeId to) {
  const SimNode* a = nodes_[from];
  const SimNode* b = nodes_[to];
  return latency_.Delay(a->country(), a->autonomous_system(), b->country(),
                        b->autonomous_system(), rng_);
}

void SimNetwork::Send(NodeId from, NodeId to, std::function<void()> handler,
                      double extra_delay) {
  assert(from < nodes_.size() && to < nodes_.size());
  ++messages_sent_;
  queue_.Schedule(DelayBetween(from, to) + extra_delay, std::move(handler));
}

}  // namespace edk
