#include "src/net/client.h"

#include <algorithm>
#include <cassert>
#include <memory>
#include <unordered_set>

#include "src/obs/metrics.h"
#include "src/obs/span.h"
#include "src/obs/trace_log.h"

namespace edk {

namespace {

// Interned span names for the client protocol verbs. Request–reply verbs
// are kSim spans covering request departure to reply arrival; Publish is
// one-way and traces as an instant.
struct NetTraceNames {
  uint16_t connect;
  uint16_t publish;
  uint16_t query_users;
  uint16_t search;
  uint16_t query_sources;
  uint16_t query_sources_global;
  uint16_t server_list;
  uint16_t browse;
  uint16_t download;
};

const NetTraceNames& NetNames() {
  auto& log = obs::TraceLog::Global();
  static const NetTraceNames names{
      log.InternName("net.connect", {"client", "accepted"}),
      log.InternName("net.publish", {"client", "files"}),
      log.InternName("net.query_users", {"client", "results"}),
      log.InternName("net.search", {"client", "results"}),
      log.InternName("net.query_sources", {"client", "results"}),
      log.InternName("net.query_sources.global", {"client", "results"}),
      log.InternName("net.server_list", {"client", "results"}),
      log.InternName("net.browse", {"client", "target", "ok", "results"}),
      log.InternName("net.download", {"client", "source", "blocks", "success"}),
  };
  return names;
}

// Everything a reply handler needs to emit the request's span: captured by
// value at request time, carried through the delivery closures. Sampling is
// keyed on the requesting node id, so one client's protocol activity is
// either fully traced or fully absent (id 0).
struct RequestTrace {
  uint16_t name = 0;
  uint64_t id = 0;
  uint64_t parent = 0;
  double start = 0;
};

RequestTrace BeginRequestTrace(uint16_t name, NodeId self, uint64_t* seq,
                               SimNetwork* network) {
  RequestTrace trace;
  if (!obs::TraceLog::SampledIn(self)) {
    return trace;
  }
  trace.name = name;
  trace.id = obs::MixId2(self, ++*seq);
  trace.parent = obs::CurrentSpanParent();
  trace.start = network->NodeNow(self);
  return trace;
}

// Emits the completed request span at reply-arrival time. The caller then
// scopes the reply callback under the span id (SpanParentScope) so nested
// requests chain causally.
void EndRequestTrace(const RequestTrace& trace, SimNetwork* network, NodeId self,
                     std::initializer_list<uint64_t> args) {
  if (trace.id == 0) {
    return;
  }
  obs::EmitSimSpan(trace.name, trace.start, network->NodeNow(self), trace.id,
                   trace.parent, args);
}

}  // namespace

std::vector<uint8_t> SyntheticBlockPayload(FileId file, uint32_t block_index,
                                           size_t length) {
  std::vector<uint8_t> payload(length);
  uint64_t state = (static_cast<uint64_t>(file.value) << 32) | block_index;
  size_t offset = 0;
  while (offset < length) {
    const uint64_t word = SplitMix64(state);
    for (int b = 0; b < 8 && offset < length; ++b, ++offset) {
      payload[offset] = static_cast<uint8_t>(word >> (8 * b));
    }
  }
  return payload;
}

SimClient::SimClient(SimNetwork* network, ClientConfig config)
    : network_(network), config_(std::move(config)) {
  network_->Register(this);
}

SharedFileInfo SimClient::MakeFileInfo(FileId file, uint64_t size_bytes,
                                       std::string name) {
  SharedFileInfo info;
  info.file = file;
  info.size_bytes = size_bytes;
  info.name = std::move(name);
  // Cheap stand-in for the real content hash: unique per (file, size) and
  // stable across clients, which is all the index and the trace need.
  std::string identity = "edk-file-" + std::to_string(file.value) + "-" +
                         std::to_string(size_bytes);
  info.digest = Md4::Hash(identity);
  return info;
}

uint64_t SimClient::ScaledSize(uint64_t size_bytes) const {
  const double scaled = static_cast<double>(size_bytes) * config_.content_scale;
  return std::max<uint64_t>(1, static_cast<uint64_t>(scaled));
}

uint32_t SimClient::BlockCount(uint64_t size_bytes) const {
  const uint64_t scaled = ScaledSize(size_bytes);
  return static_cast<uint32_t>((scaled + config_.block_size - 1) / config_.block_size);
}

void SimClient::AddLocalFile(const SharedFileInfo& info) {
  LocalFile local;
  local.info = info;
  local.complete = true;
  local.verified_blocks = BlockCount(info.size_bytes);
  shared_[info.digest] = std::move(local);
}

void SimClient::RegisterPartialBlock(const SharedFileInfo& info, uint32_t block_index) {
  auto& local = shared_[info.digest];
  const bool first = local.verified_blocks == 0;
  if (first) {
    local.info = info;
    local.complete = false;
    local.block_map.assign(BlockCount(info.size_bytes), false);
  }
  if (local.complete || block_index >= local.block_map.size() ||
      local.block_map[block_index]) {
    return;
  }
  local.block_map[block_index] = true;
  ++local.verified_blocks;
  if (local.verified_blocks == local.block_map.size()) {
    local.complete = true;
    local.block_map.clear();
  }
  if (first) {
    Publish();
  }
}

bool SimClient::RemoveLocalFile(const Md4Digest& digest) {
  return shared_.erase(digest) > 0;
}

bool SimClient::HasCompleteFile(const Md4Digest& digest) const {
  const auto it = shared_.find(digest);
  return it != shared_.end() && it->second.complete;
}

bool SimClient::SharesFile(const Md4Digest& digest) const {
  const auto it = shared_.find(digest);
  return it != shared_.end() && it->second.verified_blocks > 0;
}

std::vector<SharedFileInfo> SimClient::SharedFiles() const {
  std::vector<SharedFileInfo> out;
  out.reserve(shared_.size());
  for (const auto& [digest, local] : shared_) {
    if (local.verified_blocks > 0) {
      out.push_back(local.info);
    }
  }
  return out;
}

void SimClient::Connect(NodeId server, std::function<void(bool)> done) {
  auto* remote = dynamic_cast<SimServer*>(network_->node(server));
  assert(remote != nullptr && "Connect target is not a server");
  const NodeId self = node_id();
  const RequestTrace trace =
      BeginRequestTrace(NetNames().connect, self, &trace_seq_, network_);
  network_->Send(self, server, [this, remote, server, self, trace, done = std::move(done)] {
    const bool accepted = remote->HandleLogin(self, config_.nickname, config_.firewalled);
    network_->Send(server, self, [this, server, self, accepted, trace, done = std::move(done)] {
      EndRequestTrace(trace, network_, self, {self, accepted ? 1u : 0u});
      obs::SpanParentScope scope(trace.id);
      if (accepted) {
        server_ = server;
        Publish();
      }
      if (done) {
        done(accepted);
      }
    });
  });
}

void SimClient::Disconnect() {
  if (server_ == kInvalidNode) {
    return;
  }
  auto* remote = dynamic_cast<SimServer*>(network_->node(server_));
  const NodeId self = node_id();
  const NodeId server = server_;
  server_ = kInvalidNode;
  network_->Send(self, server, [remote, self] { remote->HandleLogout(self); });
}

void SimClient::Publish() {
  if (server_ == kInvalidNode) {
    return;
  }
  auto* remote = dynamic_cast<SimServer*>(network_->node(server_));
  const NodeId self = node_id();
  auto files = SharedFiles();
  if (obs::TraceLog::SampledIn(self)) {
    obs::EmitSimInstant(NetNames().publish,
                        obs::SimMicros(network_->NodeNow(self)),
                        obs::MixId2(self, ++trace_seq_),
                        obs::CurrentSpanParent(), {self, files.size()});
  }
  network_->Send(self, server_, [remote, self, files = std::move(files)] {
    remote->HandlePublish(self, files);
  });
}

void SimClient::QueryUsers(const std::string& prefix,
                           std::function<void(std::vector<UserRecord>)> on_reply) {
  assert(server_ != kInvalidNode);
  auto* remote = dynamic_cast<SimServer*>(network_->node(server_));
  const NodeId self = node_id();
  const NodeId server = server_;
  const RequestTrace trace =
      BeginRequestTrace(NetNames().query_users, self, &trace_seq_, network_);
  network_->Send(self, server,
                 [this, remote, server, self, trace, prefix, on_reply = std::move(on_reply)] {
                   auto users = remote->HandleQueryUsers(prefix);
                   network_->Send(server, self,
                                  [this, self, trace, users = std::move(users),
                                   on_reply = std::move(on_reply)]() mutable {
                                    EndRequestTrace(trace, network_, self,
                                                    {self, users.size()});
                                    obs::SpanParentScope scope(trace.id);
                                    on_reply(std::move(users));
                                  });
                 });
}

void SimClient::Search(const std::vector<std::string>& keywords,
                       std::function<void(std::vector<SharedFileInfo>)> on_reply) {
  assert(server_ != kInvalidNode);
  auto* remote = dynamic_cast<SimServer*>(network_->node(server_));
  const NodeId self = node_id();
  const NodeId server = server_;
  const RequestTrace trace =
      BeginRequestTrace(NetNames().search, self, &trace_seq_, network_);
  network_->Send(self, server,
                 [this, remote, server, self, trace, keywords, on_reply = std::move(on_reply)] {
                   auto results = remote->HandleSearch(keywords);
                   network_->Send(server, self,
                                  [this, self, trace, results = std::move(results),
                                   on_reply = std::move(on_reply)]() mutable {
                                    EndRequestTrace(trace, network_, self,
                                                    {self, results.size()});
                                    obs::SpanParentScope scope(trace.id);
                                    on_reply(std::move(results));
                                  });
                 });
}

void SimClient::QuerySources(const Md4Digest& digest,
                             std::function<void(std::vector<SourceRecord>)> on_reply) {
  assert(server_ != kInvalidNode);
  auto* remote = dynamic_cast<SimServer*>(network_->node(server_));
  const NodeId self = node_id();
  const NodeId server = server_;
  const RequestTrace trace =
      BeginRequestTrace(NetNames().query_sources, self, &trace_seq_, network_);
  network_->Send(self, server,
                 [this, remote, server, self, trace, digest, on_reply = std::move(on_reply)] {
                   auto sources = remote->HandleQuerySources(digest);
                   network_->Send(server, self,
                                  [this, self, trace, sources = std::move(sources),
                                   on_reply = std::move(on_reply)]() mutable {
                                    EndRequestTrace(trace, network_, self,
                                                    {self, sources.size()});
                                    obs::SpanParentScope scope(trace.id);
                                    on_reply(std::move(sources));
                                  });
                 });
}

void SimClient::GetServerList(std::function<void(std::vector<NodeId>)> on_reply) {
  assert(server_ != kInvalidNode);
  auto* remote = dynamic_cast<SimServer*>(network_->node(server_));
  const NodeId self = node_id();
  const NodeId server = server_;
  const RequestTrace trace =
      BeginRequestTrace(NetNames().server_list, self, &trace_seq_, network_);
  network_->Send(self, server,
                 [this, remote, server, self, trace, on_reply = std::move(on_reply)] {
    auto servers = remote->known_servers();
    network_->Send(server, self,
                   [this, self, trace, servers = std::move(servers),
                    on_reply = std::move(on_reply)]() mutable {
                     EndRequestTrace(trace, network_, self, {self, servers.size()});
                     obs::SpanParentScope scope(trace.id);
                     on_reply(std::move(servers));
                   });
  });
}

void SimClient::QuerySourcesGlobal(
    const Md4Digest& digest, std::function<void(std::vector<SourceRecord>)> on_reply) {
  assert(server_ != kInvalidNode);
  // One span covers the whole fan-out; the server-list fetch and every
  // UDP exchange become its causal children.
  const RequestTrace trace = BeginRequestTrace(NetNames().query_sources_global,
                                               node_id(), &trace_seq_, network_);
  obs::SpanParentScope fanout_scope(trace.id);
  GetServerList([this, digest, trace, on_reply = std::move(on_reply)](std::vector<NodeId> servers) {
    // Always include the connected server itself.
    if (std::find(servers.begin(), servers.end(), server_) == servers.end()) {
      servers.push_back(server_);
    }
    struct Aggregate {
      std::vector<SourceRecord> sources;
      std::unordered_set<NodeId> seen;
      size_t pending = 0;
      std::function<void(std::vector<SourceRecord>)> on_reply;
    };
    auto aggregate = std::make_shared<Aggregate>();
    aggregate->pending = servers.size();
    const NodeId self = node_id();
    aggregate->on_reply = [this, self, trace, on_reply = std::move(on_reply)](
                              std::vector<SourceRecord> sources) mutable {
      EndRequestTrace(trace, network_, self, {self, sources.size()});
      obs::SpanParentScope scope(trace.id);
      on_reply(std::move(sources));
    };
    obs::SpanParentScope scope(trace.id);
    for (NodeId server : servers) {
      auto* remote = dynamic_cast<SimServer*>(network_->node(server));
      if (remote == nullptr) {
        if (--aggregate->pending == 0) {
          aggregate->on_reply(std::move(aggregate->sources));
        }
        continue;
      }
      // UDP-style exchange: no session, one request, one reply.
      network_->Send(self, server, [this, remote, server, self, digest, aggregate] {
        auto sources = remote->HandleQuerySources(digest);
        network_->Send(server, self,
                       [aggregate, sources = std::move(sources)]() mutable {
                         for (const SourceRecord& source : sources) {
                           if (aggregate->seen.insert(source.node).second) {
                             aggregate->sources.push_back(source);
                           }
                         }
                         if (--aggregate->pending == 0) {
                           aggregate->on_reply(std::move(aggregate->sources));
                         }
                       });
      });
    }
    if (servers.empty()) {
      aggregate->on_reply({});
    }
  });
}

SimClient* SimClient::ClientAt(NodeId id) const {
  return dynamic_cast<SimClient*>(network_->node(id));
}

bool SimClient::CanReach(const SimClient& target) const {
  if (!target.firewalled()) {
    return true;
  }
  // A firewalled target can only be reached through a server-forced
  // callback, and only if this client itself accepts inbound connections.
  return !config_.firewalled && target.connected();
}

double SimClient::RelayPenalty(const SimClient& target) const {
  if (!target.firewalled()) {
    return 0.0;
  }
  // Request travels client -> server -> target before the target dials back.
  return network_->DelayBetween(node_id(), target.connected_server()) +
         network_->DelayBetween(target.connected_server(), target.node_id());
}

std::optional<std::vector<SharedFileInfo>> SimClient::HandleBrowse() const {
  if (!config_.browse_enabled) {
    return std::nullopt;
  }
  return SharedFiles();
}

void SimClient::Browse(NodeId target, BrowseCallback on_reply) {
  static obs::Counter* browses =
      &obs::MetricsRegistry::Global().GetCounter("net.client.browses");
  browses->Increment();
  SimClient* remote = ClientAt(target);
  assert(remote != nullptr && "Browse target is not a client");
  const NodeId self = node_id();
  const RequestTrace trace =
      BeginRequestTrace(NetNames().browse, self, &trace_seq_, network_);
  if (!CanReach(*remote)) {
    network_->ScheduleOn(self, 0, [this, self, target, trace,
                                   on_reply = std::move(on_reply)] {
      EndRequestTrace(trace, network_, self, {self, target, 0u, 0u});
      obs::SpanParentScope scope(trace.id);
      on_reply(std::nullopt);
    });
    return;
  }
  const double penalty = RelayPenalty(*remote);
  network_->Send(
      self, target,
      [this, remote, target, self, trace, on_reply = std::move(on_reply)] {
        auto reply = remote->HandleBrowse();
        // Reply size costs transfer time on the target's uplink.
        double transfer = 0;
        if (reply.has_value()) {
          constexpr double kBytesPerEntry = 120.0;  // Name + hash + metadata.
          transfer = kBytesPerEntry * static_cast<double>(reply->size()) /
                     remote->config().uplink_bytes_per_second;
        }
        network_->Send(target, self,
                       [this, self, target, trace, reply = std::move(reply),
                        on_reply = std::move(on_reply)]() mutable {
                         EndRequestTrace(trace, network_, self,
                                         {self, target,
                                          reply.has_value() ? 1u : 0u,
                                          reply.has_value() ? reply->size() : 0});
                         obs::SpanParentScope scope(trace.id);
                         on_reply(std::move(reply));
                       },
                       transfer);
      },
      penalty);
}

std::vector<Md4Digest> SimClient::HandleHashsetRequest(const Md4Digest& digest) const {
  std::vector<Md4Digest> hashset;
  const auto it = shared_.find(digest);
  if (it == shared_.end() || it->second.verified_blocks == 0) {
    return hashset;
  }
  const SharedFileInfo& info = it->second.info;
  const uint64_t scaled = ScaledSize(info.size_bytes);
  const uint32_t blocks = BlockCount(info.size_bytes);
  hashset.reserve(blocks);
  for (uint32_t b = 0; b < blocks; ++b) {
    const size_t length = static_cast<size_t>(
        std::min<uint64_t>(config_.block_size, scaled - uint64_t{b} * config_.block_size));
    hashset.push_back(Md4::Hash(SyntheticBlockPayload(info.file, b, length)));
  }
  return hashset;
}

std::vector<bool> SimClient::HandleAvailableBlocks(const Md4Digest& digest) const {
  const auto it = shared_.find(digest);
  if (it == shared_.end() || it->second.verified_blocks == 0) {
    return {};
  }
  if (it->second.complete) {
    return std::vector<bool>(BlockCount(it->second.info.size_bytes), true);
  }
  return it->second.block_map;
}

std::vector<uint8_t> SimClient::HandleBlockRequest(const Md4Digest& digest,
                                                   uint32_t block_index, Rng& rng) const {
  const auto it = shared_.find(digest);
  if (it == shared_.end() || it->second.verified_blocks == 0) {
    return {};
  }
  // Partial sources only serve blocks they verified (§2.1).
  if (!it->second.complete && (block_index >= it->second.block_map.size() ||
                               !it->second.block_map[block_index])) {
    return {};
  }
  const SharedFileInfo& info = it->second.info;
  const uint64_t scaled = ScaledSize(info.size_bytes);
  if (uint64_t{block_index} * config_.block_size >= scaled) {
    return {};
  }
  const size_t length = static_cast<size_t>(std::min<uint64_t>(
      config_.block_size, scaled - uint64_t{block_index} * config_.block_size));
  auto payload = SyntheticBlockPayload(info.file, block_index, length);
  if (!payload.empty() && rng.NextBool(config_.corruption_probability)) {
    // Transit corruption: flip one byte; the downloader's MD4 check catches it.
    payload[rng.NextBelow(payload.size())] ^= 0xff;
  }
  return payload;
}

void SimClient::Download(NodeId source, const SharedFileInfo& info,
                         DownloadCallback on_done) {
  static obs::Counter* downloads =
      &obs::MetricsRegistry::Global().GetCounter("net.client.downloads");
  downloads->Increment();
  SimClient* remote = ClientAt(source);
  assert(remote != nullptr && "Download source is not a client");
  const NodeId self = node_id();

  auto state = std::make_shared<DownloadState>();
  state->source = source;
  state->info = info;
  state->block_count = BlockCount(info.size_bytes);
  state->retries_left = config_.max_block_retries;
  state->on_done = std::move(on_done);
  const RequestTrace trace =
      BeginRequestTrace(NetNames().download, self, &trace_seq_, network_);
  state->trace_id = trace.id;
  state->trace_parent = trace.parent;
  state->trace_start = trace.start;

  if (!CanReach(*remote) || HasCompleteFile(info.digest)) {
    const bool already = HasCompleteFile(info.digest);
    network_->ScheduleOn(self, 0, [this, state, already] {
      FinishDownload(state, already);
    });
    return;
  }

  // Phase 1: fetch the hashset ("checksums can be propagated between
  // clients on demand", §2.1).
  network_->Send(
      self, source,
      [this, remote, source, self, state] {
        auto hashset = remote->HandleHashsetRequest(state->info.digest);
        network_->Send(source, self, [this, state, hashset = std::move(hashset)]() mutable {
          if (hashset.empty() || hashset.size() != state->block_count) {
            FinishDownload(state, false);
            return;
          }
          state->hashset = std::move(hashset);
          RequestNextBlock(state);
        });
      },
      RelayPenalty(*remote));
}

void SimClient::RequestNextBlock(std::shared_ptr<DownloadState> state) {
  if (state->next_block >= state->block_count) {
    FinishDownload(state, true);
    return;
  }
  SimClient* remote = ClientAt(state->source);
  const NodeId self = node_id();
  const uint32_t block = state->next_block;
  network_->Send(self, state->source, [this, remote, self, state, block] {
    auto payload = remote->HandleBlockRequest(state->info.digest, block, network_->rng());
    const double transfer = static_cast<double>(payload.size()) /
                            remote->config().uplink_bytes_per_second;
    network_->Send(state->source, self,
                   [this, state, block, payload = std::move(payload)]() mutable {
                     // Republishes triggered by verified blocks chain to the
                     // download span.
                     obs::SpanParentScope scope(state->trace_id);
                     if (payload.empty()) {
                       FinishDownload(state, false);  // Source stopped sharing.
                       return;
                     }
                     ++blocks_received_;
                     const Md4Digest actual = Md4::Hash(payload);
                     if (actual != state->hashset[block]) {
                       ++blocks_corrupted_;
                       if (--state->retries_left < 0) {
                         FinishDownload(state, false);
                         return;
                       }
                       RequestNextBlock(state);  // Re-request the same block.
                       return;
                     }
                     // Verified. Partial sharing: after the first block the
                     // file is offered to others and republished.
                     RegisterPartialBlock(state->info, block);
                     ++state->next_block;
                     state->retries_left = config_.max_block_retries;
                     RequestNextBlock(state);
                   },
                   transfer);
  });
}

void SimClient::FinishDownload(std::shared_ptr<DownloadState> state, bool success) {
  if (state->trace_id != 0) {
    obs::EmitSimSpan(NetNames().download, state->trace_start,
                     network_->NodeNow(node_id()), state->trace_id,
                     state->trace_parent,
                     {node_id(), state->source, state->next_block,
                      success ? 1u : 0u});
  }
  obs::SpanParentScope scope(state->trace_id);
  if (success) {
    auto& local = shared_[state->info.digest];
    local.info = state->info;
    local.complete = true;
    local.verified_blocks = state->block_count;
    local.block_map.clear();
    ++downloads_completed_;
    Publish();
  } else {
    ++downloads_failed_;
  }
  if (state->on_done) {
    state->on_done(success);
  }
}

}  // namespace edk
