#include "src/net/latency.h"

#include <algorithm>

namespace edk {

Continent ContinentOf(const std::string& country_code) {
  // The measured population is mostly European; IL is folded into Europe
  // for routing purposes (paths via European exchanges).
  static const char* kAmericas[] = {"US", "CA", "BR"};
  static const char* kAsiaPacific[] = {"TW", "KR", "JP", "AU", "CN"};
  for (const char* code : kAmericas) {
    if (country_code == code) {
      return Continent::kAmericas;
    }
  }
  for (const char* code : kAsiaPacific) {
    if (country_code == code) {
      return Continent::kAsiaPacific;
    }
  }
  return Continent::kEurope;
}

namespace {

// Tier bases; the intra-AS tier is the global floor that MinDelay()
// promises (jitter is multiplicative and >= 1, so it never dips below).
constexpr double kIntraAsBase = 0.010;

}  // namespace

double LatencyModel::MinDelay() { return kIntraAsBase; }

double LatencyModel::Delay(CountryId from_country, AsId from_as, CountryId to_country,
                           AsId to_as, Rng& rng) const {
  double base;
  if (from_as == to_as && from_as.valid()) {
    base = kIntraAsBase;  // Intra-AS.
  } else if (from_country == to_country) {
    base = 0.025;  // Domestic peering.
  } else {
    const Continent a = ContinentOf(geography_->country(from_country).code);
    const Continent b = ContinentOf(geography_->country(to_country).code);
    base = (a == b) ? 0.045 : 0.130;
  }
  // Multiplicative jitter in [1, 2): queueing and access-link variance.
  return base * (1.0 + rng.NextDouble());
}

double LatencyModel::SampleUplinkBytesPerSecond(Rng& rng) const {
  // 2003-era access mix: mostly ADSL uplinks of 8-32 KB/s, a minority of
  // well-connected peers (university / early FTTH) far above that.
  const double u = rng.NextDouble();
  if (u < 0.70) {
    return 8'000 + rng.NextDouble() * 24'000;
  }
  if (u < 0.95) {
    return 32'000 + rng.NextDouble() * 96'000;
  }
  return 250'000 + rng.NextDouble() * 750'000;
}

}  // namespace edk
