#include "src/net/server_core.h"

#include <algorithm>
#include <cctype>

#include "src/obs/metrics.h"

namespace edk {

namespace {

// Per-message-type protocol counters plus peak index sizes, aggregated
// across every index core in the process (simulated servers and TCP
// front-ends alike). Gauges use UpdateMax so the totals stay deterministic
// when parallel sweep tasks run their own sims.
struct ServerMetrics {
  obs::Counter* logins;
  obs::Counter* logouts;
  obs::Counter* publishes;
  obs::Counter* published_files;
  obs::Counter* query_users;
  obs::Counter* query_sources;
  obs::Counter* searches;
  obs::Counter* browses;
  obs::Gauge* max_indexed_files;
  obs::Gauge* max_connected_users;
};

ServerMetrics& Metrics() {
  auto& registry = obs::MetricsRegistry::Global();
  static ServerMetrics metrics{
      &registry.GetCounter("net.server.logins"),
      &registry.GetCounter("net.server.logouts"),
      &registry.GetCounter("net.server.publishes"),
      &registry.GetCounter("net.server.published_files"),
      &registry.GetCounter("net.server.query_users"),
      &registry.GetCounter("net.server.query_sources"),
      &registry.GetCounter("net.server.searches"),
      &registry.GetCounter("net.server.browses"),
      &registry.GetGauge("net.server.max_indexed_files"),
      &registry.GetGauge("net.server.max_connected_users"),
  };
  return metrics;
}

}  // namespace

ServerCore::ServerCore(ServerConfig config) : config_(config) {}

bool ServerCore::HandleLogin(NodeId client, const std::string& nickname,
                             bool firewalled) {
  if (sessions_.contains(client)) {
    return true;  // Idempotent re-login.
  }
  if (sessions_.size() >= config_.max_users) {
    return false;
  }
  Session session;
  session.nickname = nickname;
  session.low_id = firewalled;
  sessions_.emplace(client, std::move(session));
  users_by_nickname_.emplace(nickname, client);
  ServerMetrics& metrics = Metrics();
  metrics.logins->Increment();
  metrics.max_connected_users->UpdateMax(static_cast<int64_t>(sessions_.size()));
  return true;
}

void ServerCore::HandleLogout(NodeId client) {
  auto it = sessions_.find(client);
  if (it == sessions_.end()) {
    return;
  }
  Metrics().logouts->Increment();
  RemovePublished(client);
  auto [lo, hi] = users_by_nickname_.equal_range(it->second.nickname);
  for (auto u = lo; u != hi; ++u) {
    if (u->second == client) {
      users_by_nickname_.erase(u);
      break;
    }
  }
  sessions_.erase(it);
}

void ServerCore::RemovePublished(NodeId client) {
  auto it = sessions_.find(client);
  if (it == sessions_.end()) {
    return;
  }
  for (const Md4Digest& digest : it->second.published) {
    auto file_it = files_.find(digest);
    if (file_it == files_.end()) {
      continue;
    }
    file_it->second.sources.erase(client);
    if (file_it->second.sources.empty()) {
      for (const std::string& token : Tokenize(file_it->second.info.name)) {
        auto kw = keyword_index_.find(token);
        if (kw != keyword_index_.end()) {
          kw->second.erase(digest);
          if (kw->second.empty()) {
            keyword_index_.erase(kw);
          }
        }
      }
      files_.erase(file_it);
    }
  }
  it->second.published.clear();
}

void ServerCore::HandlePublish(NodeId client,
                               const std::vector<SharedFileInfo>& files) {
  auto it = sessions_.find(client);
  if (it == sessions_.end()) {
    return;  // Publishing without a session is dropped, as in the protocol.
  }
  RemovePublished(client);
  it->second.published.reserve(files.size());
  for (const SharedFileInfo& info : files) {
    it->second.published.push_back(info.digest);
    auto [file_it, inserted] = files_.try_emplace(info.digest);
    if (inserted) {
      file_it->second.info = info;
      for (const std::string& token : Tokenize(info.name)) {
        keyword_index_[token].insert(info.digest);
      }
    }
    file_it->second.sources.insert(client);
  }
  ServerMetrics& metrics = Metrics();
  metrics.publishes->Increment();
  metrics.published_files->Increment(files.size());
  metrics.max_indexed_files->UpdateMax(static_cast<int64_t>(files_.size()));
}

std::vector<UserRecord> ServerCore::HandleQueryUsers(
    const std::string& prefix) const {
  ++queries_served_;
  Metrics().query_users->Increment();
  std::vector<UserRecord> out;
  if (!config_.supports_query_users) {
    return out;
  }
  out.reserve(std::min(config_.max_user_results, sessions_.size()));
  auto it = users_by_nickname_.lower_bound(prefix);
  while (it != users_by_nickname_.end() && out.size() < config_.max_user_results) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) {
      break;
    }
    const auto session = sessions_.find(it->second);
    if (session != sessions_.end()) {
      out.push_back(UserRecord{it->first, it->second, session->second.low_id});
    }
    ++it;
  }
  return out;
}

std::vector<SourceRecord> ServerCore::HandleQuerySources(
    const Md4Digest& digest) const {
  ++queries_served_;
  Metrics().query_sources->Increment();
  std::vector<SourceRecord> out;
  const auto it = files_.find(digest);
  if (it == files_.end()) {
    return out;
  }
  out.reserve(std::min(config_.max_source_results, it->second.sources.size()));
  for (NodeId source : it->second.sources) {
    if (out.size() >= config_.max_source_results) {
      break;
    }
    const auto session = sessions_.find(source);
    if (session != sessions_.end()) {
      out.push_back(SourceRecord{source, session->second.low_id});
    }
  }
  return out;
}

std::vector<SharedFileInfo> ServerCore::HandleSearch(
    const std::vector<std::string>& keywords) const {
  ++queries_served_;
  Metrics().searches->Increment();
  std::vector<SharedFileInfo> out;
  if (keywords.empty()) {
    return out;
  }
  // Start from the rarest keyword's posting set, then filter conjunctively.
  const std::unordered_set<Md4Digest>* smallest = nullptr;
  for (const std::string& keyword : keywords) {
    const auto it = keyword_index_.find(keyword);
    if (it == keyword_index_.end()) {
      return out;  // One keyword has no match: conjunction is empty.
    }
    if (smallest == nullptr || it->second.size() < smallest->size()) {
      smallest = &it->second;
    }
  }
  out.reserve(std::min(config_.max_search_results, smallest->size()));
  std::vector<std::string> tokens;
  for (const Md4Digest& digest : *smallest) {
    const auto file_it = files_.find(digest);
    if (file_it == files_.end()) {
      continue;
    }
    TokenizeInto(file_it->second.info.name, &tokens);
    bool all = true;
    for (const std::string& keyword : keywords) {
      if (std::find(tokens.begin(), tokens.end(), keyword) == tokens.end()) {
        all = false;
        break;
      }
    }
    if (all) {
      out.push_back(file_it->second.info);
      if (out.size() >= config_.max_search_results) {
        break;
      }
    }
  }
  return out;
}

std::optional<std::vector<SharedFileInfo>> ServerCore::HandleBrowse(
    NodeId target) const {
  ++queries_served_;
  Metrics().browses->Increment();
  const auto it = sessions_.find(target);
  if (it == sessions_.end()) {
    return std::nullopt;
  }
  std::vector<SharedFileInfo> out;
  out.reserve(it->second.published.size());
  for (const Md4Digest& digest : it->second.published) {
    const auto file_it = files_.find(digest);
    if (file_it != files_.end()) {
      out.push_back(file_it->second.info);
    }
  }
  return out;
}

void ServerCore::TokenizeInto(const std::string& name,
                              std::vector<std::string>* out) {
  out->clear();
  std::string current;
  for (char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      current.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else if (!current.empty()) {
      out->push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) {
    out->push_back(std::move(current));
  }
}

std::vector<std::string> ServerCore::Tokenize(const std::string& name) {
  std::vector<std::string> tokens;
  TokenizeInto(name, &tokens);
  return tokens;
}

}  // namespace edk
