// Transport-agnostic eDonkey index core (paper §2.1).
//
// ServerCore is the request/response half of the index server with every
// transport concern stripped out: it owns the session table, the published
// file index, the conjunctive keyword index and the nickname map, and
// answers the protocol's requests (login, logout, publish, search,
// query-sources, query-users, browse) as plain function calls.
//
// Two front-ends drive the identical logic:
//
//   * SimServer (src/net/server.h) delivers simulated messages through
//     SimNetwork — the original behaviour, byte-identical to the
//     pre-extraction code because the core keeps the same containers and
//     the same insertion/iteration sequences.
//   * TcpServer (src/netio/tcp_server.h) decodes framed requests from real
//     sockets and calls the same handlers, so queries/sec and tail latency
//     measured over TCP exercise exactly the index the simulations use.
//
// The core itself is single-threaded: callers that dispatch from multiple
// I/O threads must serialise calls (TcpServer holds one mutex around the
// core; the simulator is single-threaded per shard by construction).
//
// Allocation discipline: every reply is reserved up front to
// min(result cap, candidate count) and never grows past its cap, so a
// hostile corpus (millions of files matching one keyword) costs one
// bounded allocation per request, not a geometric growth series.

#ifndef SRC_NET_SERVER_CORE_H_
#define SRC_NET_SERVER_CORE_H_

#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/net/protocol.h"

namespace edk {

struct ServerConfig {
  size_t max_users = 200'000;          // Connection cap (paper: >200k users).
  size_t max_user_results = 200;       // query-users reply cap.
  size_t max_search_results = 300;
  size_t max_source_results = 100;
  bool supports_query_users = true;    // Old servers only (paper §2.1).
};

class ServerCore {
 public:
  explicit ServerCore(ServerConfig config);

  const ServerConfig& config() const { return config_; }

  // --- Request handlers -----------------------------------------------------
  // Returns false when the server is full. On success the client is
  // registered and will be reported by query-users.
  bool HandleLogin(NodeId client, const std::string& nickname, bool firewalled);
  void HandleLogout(NodeId client);
  // Replaces the published file list of a connected client.
  void HandlePublish(NodeId client, const std::vector<SharedFileInfo>& files);
  // Nickname prefix search, capped at max_user_results.
  std::vector<UserRecord> HandleQueryUsers(const std::string& prefix) const;
  // Sources currently sharing the file.
  std::vector<SourceRecord> HandleQuerySources(const Md4Digest& digest) const;
  // Conjunctive keyword search over published file names.
  std::vector<SharedFileInfo> HandleSearch(
      const std::vector<std::string>& keywords) const;
  // Server-mediated browse: the published list of a connected client, in
  // publish order. nullopt when the target is not connected. Because
  // SimClient publishes exactly SharedFiles() (digest-sorted), this equals
  // the client-side browse reply for any client whose publish is current —
  // the invariant the TCP transport relies on for sim-equality.
  std::optional<std::vector<SharedFileInfo>> HandleBrowse(NodeId target) const;

  bool IsConnected(NodeId client) const { return sessions_.contains(client); }
  size_t connected_users() const { return sessions_.size(); }
  size_t indexed_files() const { return files_.size(); }
  uint64_t queries_served() const { return queries_served_; }

  // Splits a file name into lowercase keyword tokens.
  static std::vector<std::string> Tokenize(const std::string& name);
  // Allocation-reusing variant for hot loops: clears and refills `out`.
  static void TokenizeInto(const std::string& name,
                           std::vector<std::string>* out);

 private:
  struct Session {
    std::string nickname;
    bool low_id = false;
    std::vector<Md4Digest> published;
  };
  struct FileEntry {
    SharedFileInfo info;
    std::unordered_set<NodeId> sources;
  };

  void RemovePublished(NodeId client);

  ServerConfig config_;
  std::unordered_map<NodeId, Session> sessions_;
  std::unordered_map<Md4Digest, FileEntry> files_;
  // Keyword -> digests of files whose name contains the keyword.
  std::unordered_map<std::string, std::unordered_set<Md4Digest>> keyword_index_;
  // Nicknames sorted for prefix scans.
  std::multimap<std::string, NodeId> users_by_nickname_;
  mutable uint64_t queries_served_ = 0;
};

}  // namespace edk

#endif  // SRC_NET_SERVER_CORE_H_
