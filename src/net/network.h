// SimNetwork: the fabric connecting simulated nodes.
//
// Owns the event queue, the latency model and the node table. Message
// delivery is modelled as a scheduled closure executed after the one-way
// geographic delay between the two endpoints; nodes never call each other
// directly, so all interactions respect simulated time.

#ifndef SRC_NET_NETWORK_H_
#define SRC_NET_NETWORK_H_

#include <functional>
#include <vector>

#include "src/common/rng.h"
#include "src/net/event_queue.h"
#include "src/net/latency.h"
#include "src/net/protocol.h"
#include "src/workload/geography.h"

namespace edk {

// Base class for anything attached to the network.
class SimNode {
 public:
  virtual ~SimNode() = default;

  NodeId node_id() const { return node_id_; }
  CountryId country() const { return country_; }
  AsId autonomous_system() const { return as_; }

  void set_attachment(CountryId country, AsId as) {
    country_ = country;
    as_ = as;
  }

 private:
  friend class SimNetwork;
  NodeId node_id_ = kInvalidNode;
  CountryId country_;
  AsId as_;
};

class SimNetwork {
 public:
  // `geography` must outlive the network.
  SimNetwork(const Geography* geography, uint64_t seed);

  EventQueue& queue() { return queue_; }
  Rng& rng() { return rng_; }
  const LatencyModel& latency() const { return latency_; }
  const Geography& geography() const { return *geography_; }

  // Registers a node; the node must outlive the network. Returns its id.
  NodeId Register(SimNode* node);
  SimNode* node(NodeId id) const { return nodes_[id]; }
  size_t node_count() const { return nodes_.size(); }

  // Delivers `handler` at the destination after the one-way delay between
  // the two nodes (plus `extra_delay`, e.g. serialisation time).
  void Send(NodeId from, NodeId to, std::function<void()> handler,
            double extra_delay = 0.0);

  // One-way delay sample between two registered nodes.
  double DelayBetween(NodeId from, NodeId to);

  uint64_t messages_sent() const { return messages_sent_; }

 private:
  const Geography* geography_;
  Rng rng_;
  EventQueue queue_;
  LatencyModel latency_;
  std::vector<SimNode*> nodes_;
  uint64_t messages_sent_ = 0;
};

}  // namespace edk

#endif  // SRC_NET_NETWORK_H_
