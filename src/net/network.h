// SimNetwork: the fabric connecting simulated nodes.
//
// Owns the simulation kernel, the latency model and the node table.
// Message delivery is modelled as a scheduled closure executed after the
// one-way geographic delay between the two endpoints; nodes never call
// each other directly, so all interactions respect simulated time.
//
// Two kernels back the fabric:
//
//   * Legacy single-queue mode (the `(geography, seed)` constructor):
//     one EventQueue, one shared RNG — exactly the original behaviour,
//     still used by the crawler and the unit tests.
//   * Sharded mode (the `(geography, SimNetConfig)` constructor): an
//     edk::sim::ShardedEngine partitions the nodes across K shards and
//     runs them in conservative windows whose width is the latency
//     model's MinDelay() lookahead. Delays are then sampled from the
//     *sender's* per-node RNG stream, so results are bit-identical for
//     any shards/threads combination (see src/sim/sharded_engine.h).
//
// Code meant to run in either mode must use the node-scoped seams
// (Send, ScheduleOn, NodeNow) instead of touching queue() directly.

#ifndef SRC_NET_NETWORK_H_
#define SRC_NET_NETWORK_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/net/event_queue.h"
#include "src/net/latency.h"
#include "src/net/protocol.h"
#include "src/sim/sharded_engine.h"
#include "src/workload/geography.h"

namespace edk {

// Base class for anything attached to the network.
class SimNode {
 public:
  virtual ~SimNode() = default;

  NodeId node_id() const { return node_id_; }
  CountryId country() const { return country_; }
  AsId autonomous_system() const { return as_; }

  void set_attachment(CountryId country, AsId as) {
    country_ = country;
    as_ = as;
  }

 private:
  friend class SimNetwork;
  NodeId node_id_ = kInvalidNode;
  CountryId country_;
  AsId as_;
};

struct SimNetConfig {
  uint64_t seed = 1;
  // Shard count for the sharded engine (>= 1). Even shards=1 runs on the
  // engine — the partition-independent determinism contract compares
  // engine runs with each other, not with the legacy kernel.
  size_t shards = 1;
  // Worker threads per window (0 = DefaultThreads()).
  size_t threads = 0;
  // Node→shard placement (src/sim/placement.h). A pure performance knob:
  // results are bit-identical for every placement; interest-clustered
  // placements cut the cross-shard message ratio.
  sim::Placement placement;
  // Adaptive window cap as a multiple of the MinDelay() lookahead
  // (engine max_window = window_factor * MinDelay()). <= 1 (default)
  // pins windows to the lookahead and keeps arrival times exact; > 1
  // lets windows widen to the observed send-delay slack, deferring the
  // rare undercutting arrival to its window barrier (deterministic, see
  // src/sim/sharded_engine.h).
  double window_factor = 1.0;
};

class SimNetwork {
 public:
  // Legacy single-queue kernel. `geography` must outlive the network.
  SimNetwork(const Geography* geography, uint64_t seed);
  // Sharded conservative engine with MinDelay() lookahead.
  SimNetwork(const Geography* geography, const SimNetConfig& config);

  bool sharded() const { return engine_ != nullptr; }
  // Legacy mode only: the single event queue.
  EventQueue& queue();
  // Sharded mode only: the underlying engine.
  sim::ShardedEngine& engine() { return *engine_; }

  Rng& rng() { return rng_; }
  const LatencyModel& latency() const { return latency_; }
  const Geography& geography() const { return *geography_; }

  // Registers a node; the node must outlive the network. Returns its id.
  NodeId Register(SimNode* node);
  SimNode* node(NodeId id) const { return nodes_[id]; }
  size_t node_count() const { return nodes_.size(); }

  // Delivers `handler` at the destination after the one-way delay between
  // the two nodes (plus `extra_delay`, e.g. serialisation time). In
  // sharded mode the delay is drawn from the sender's node RNG stream and
  // must be issued from the sender's own events (or setup).
  void Send(NodeId from, NodeId to, std::function<void()> handler,
            double extra_delay = 0.0);

  // Node-scoped kernel seams, valid in both modes. In sharded mode they
  // target the node's shard and must be called from setup or from that
  // node's own events.
  EventQueue::EventHandle ScheduleOn(NodeId node, double delay,
                                     EventQueue::Callback fn);
  double NodeNow(NodeId node) const;
  // The node's private RNG stream (sharded mode); the shared network RNG
  // in legacy mode.
  Rng& NodeRng(NodeId node);

  // Drives the kernel in either mode. Returns events executed.
  size_t Run();
  size_t RunUntil(double until);

  // One-way delay sample between two registered nodes. Draws from the
  // sender's stream in sharded mode.
  double DelayBetween(NodeId from, NodeId to);

  uint64_t messages_sent() const;

 private:
  const Geography* geography_;
  Rng rng_;
  EventQueue queue_;
  LatencyModel latency_;
  std::unique_ptr<sim::ShardedEngine> engine_;
  std::vector<SimNode*> nodes_;
  uint64_t messages_sent_ = 0;
};

}  // namespace edk

#endif  // SRC_NET_NETWORK_H_
