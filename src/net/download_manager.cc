#include "src/net/download_manager.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>
#include <unordered_set>

#include "src/common/log.h"

namespace edk {

namespace {

enum class BlockState : uint8_t { kPending, kInFlight, kDone };

struct SourceState {
  bool busy = false;
  bool dead = false;
  int consecutive_failures = 0;
  uint32_t blocks_delivered = 0;
  // Block availability of this source ("which blocks are available", §2.1).
  bool map_requested = false;
  bool map_known = false;
  std::vector<bool> available;
};

}  // namespace

struct DownloadManager::Transfer {
  SharedFileInfo info;
  Callback on_done;
  std::vector<Md4Digest> hashset;
  std::vector<BlockState> blocks;
  std::vector<int> retries_left;
  uint32_t blocks_done = 0;
  bool hashset_requested = false;
  std::unordered_map<NodeId, SourceState> sources;
  std::unordered_set<NodeId> ever_seen;
  MultiSourceReport report;
  double start_time = 0;
  EventQueue::EventHandle requery_timer;
  // Generation guard: events belonging to a finished transfer are ignored.
  bool finished = false;
};

DownloadManager::DownloadManager(SimNetwork* network, SimClient* owner,
                                 MultiSourceConfig config)
    : network_(network), owner_(owner), config_(config) {
  assert(config_.max_parallel_sources > 0);
}

DownloadManager::~DownloadManager() {
  if (transfer_ != nullptr) {
    transfer_->requery_timer.Cancel();
    transfer_->finished = true;
  }
}

bool DownloadManager::active() const { return transfer_ != nullptr; }

void DownloadManager::Fetch(const SharedFileInfo& info, Callback on_done) {
  assert(transfer_ == nullptr && "one fetch at a time");
  transfer_ = std::make_shared<Transfer>();
  transfer_->info = info;
  transfer_->on_done = std::move(on_done);
  transfer_->start_time = network_->NodeNow(owner_->node_id());
  const uint32_t blocks = owner_->BlockCount(info.size_bytes);
  transfer_->blocks.assign(blocks, BlockState::kPending);
  transfer_->retries_left.assign(blocks, config_.max_block_retries);
  transfer_->report.block_count = blocks;

  if (owner_->HasCompleteFile(info.digest)) {
    Finish(true);
    return;
  }
  DiscoverSources();
}

void DownloadManager::DiscoverSources() {
  auto transfer = transfer_;
  ++transfer->report.requery_rounds;
  auto handler = [this, transfer](std::vector<SourceRecord> sources) {
    if (transfer->finished || transfer != transfer_) {
      return;
    }
    OnSources(std::move(sources));
  };
  if (config_.use_global_queries) {
    owner_->QuerySourcesGlobal(transfer->info.digest, std::move(handler));
  } else {
    owner_->QuerySources(transfer->info.digest, std::move(handler));
  }
}

void DownloadManager::OnSources(std::vector<SourceRecord> sources) {
  auto& transfer = *transfer_;
  for (const SourceRecord& record : sources) {
    if (record.node == owner_->node_id()) {
      continue;
    }
    // Two firewalled ends cannot connect (§2.1).
    if (record.low_id && owner_->firewalled()) {
      continue;
    }
    if (transfer.ever_seen.insert(record.node).second) {
      transfer.sources.emplace(record.node, SourceState{});
      ++transfer.report.sources_discovered;
    } else {
      // Re-discovered: resurrect if it had been dropped.
      auto it = transfer.sources.find(record.node);
      if (it != transfer.sources.end() && it->second.dead) {
        it->second.dead = false;
        it->second.consecutive_failures = 0;
      }
    }
  }
  if (transfer.sources.empty() ||
      std::all_of(transfer.sources.begin(), transfer.sources.end(),
                  [](const auto& entry) { return entry.second.dead; })) {
    if (transfer.report.requery_rounds >= static_cast<uint32_t>(config_.max_requery_rounds)) {
      Finish(false);
      return;
    }
    ArmRequeryTimer();
    return;
  }
  if (!transfer.hashset_requested) {
    transfer.hashset_requested = true;
    // Ask the first live source for the hashset.
    for (const auto& [node, state] : transfer.sources) {
      if (!state.dead) {
        RequestHashset(node);
        return;
      }
    }
  } else {
    ScheduleBlocks();
  }
}

void DownloadManager::RequestHashset(NodeId source) {
  auto transfer = transfer_;
  auto* remote = dynamic_cast<SimClient*>(network_->node(source));
  if (remote == nullptr) {
    transfer->hashset_requested = false;
    DropSource(source);
    DiscoverSources();
    return;
  }
  const NodeId self = owner_->node_id();
  network_->Send(self, source, [this, transfer, remote, source, self] {
    auto hashset = remote->HandleHashsetRequest(transfer->info.digest);
    network_->Send(source, self, [this, transfer, source, hashset = std::move(hashset)]() mutable {
      if (transfer->finished || transfer != transfer_) {
        return;
      }
      if (hashset.size() != transfer->blocks.size()) {
        transfer->hashset_requested = false;
        DropSource(source);
        DiscoverSources();
        return;
      }
      transfer->hashset = std::move(hashset);
      ScheduleBlocks();
    });
  });
}

void DownloadManager::ScheduleBlocks() {
  auto& transfer = *transfer_;
  if (transfer.hashset.empty()) {
    return;  // Still waiting for the hashset.
  }
  size_t in_flight = 0;
  for (const auto& [node, state] : transfer.sources) {
    if (state.busy) {
      ++in_flight;
    }
  }
  for (auto& [node, state] : transfer.sources) {
    if (in_flight >= config_.max_parallel_sources) {
      break;
    }
    if (state.busy || state.dead) {
      continue;
    }
    if (!state.map_known) {
      // First exchange with a new source: which blocks does it hold?
      if (!state.map_requested) {
        state.map_requested = true;
        state.busy = true;
        ++in_flight;
        RequestBlockMap(node);
      }
      continue;
    }
    // Assign the first pending block this source actually holds.
    uint32_t block = static_cast<uint32_t>(transfer.blocks.size());
    for (uint32_t b = 0; b < transfer.blocks.size(); ++b) {
      if (transfer.blocks[b] == BlockState::kPending && b < state.available.size() &&
          state.available[b]) {
        block = b;
        break;
      }
    }
    if (block == transfer.blocks.size()) {
      continue;  // This source holds nothing we still need.
    }
    transfer.blocks[block] = BlockState::kInFlight;
    state.busy = true;
    ++in_flight;
    RequestBlock(node, block);
  }
  // Completion is handled in OnBlockPayload. If blocks remain but nothing
  // is in flight (no live source holds what we need), wait for the
  // 20-minute source re-query.
  if (transfer.blocks_done < transfer.blocks.size() && in_flight == 0) {
    if (transfer.report.requery_rounds >= static_cast<uint32_t>(config_.max_requery_rounds)) {
      Finish(false);
      return;
    }
    ArmRequeryTimer();
  }
}

void DownloadManager::RequestBlockMap(NodeId source) {
  auto transfer = transfer_;
  auto* remote = dynamic_cast<SimClient*>(network_->node(source));
  const NodeId self = owner_->node_id();
  if (remote == nullptr) {
    DropSource(source);
    ScheduleBlocks();
    return;
  }
  network_->Send(self, source, [this, transfer, remote, source, self] {
    auto map = remote->HandleAvailableBlocks(transfer->info.digest);
    network_->Send(source, self, [this, transfer, source, map = std::move(map)]() mutable {
      if (transfer->finished || transfer != transfer_) {
        return;
      }
      auto it = transfer->sources.find(source);
      if (it == transfer->sources.end()) {
        return;
      }
      it->second.busy = false;
      if (map.empty()) {
        DropSource(source);  // No longer shares anything of this file.
      } else {
        it->second.map_known = true;
        it->second.available = std::move(map);
      }
      ScheduleBlocks();
    });
  });
}

void DownloadManager::RequestBlock(NodeId source, uint32_t block) {
  auto transfer = transfer_;
  auto* remote = dynamic_cast<SimClient*>(network_->node(source));
  const NodeId self = owner_->node_id();
  network_->Send(self, source, [this, transfer, remote, source, self, block] {
    auto payload = remote->HandleBlockRequest(transfer->info.digest, block,
                                              network_->rng());
    const double transmit = static_cast<double>(payload.size()) /
                            remote->config().uplink_bytes_per_second;
    network_->Send(source, self,
                   [this, transfer, source, block, payload = std::move(payload)]() mutable {
                     if (transfer->finished || transfer != transfer_) {
                       return;
                     }
                     OnBlockPayload(source, block, std::move(payload));
                   },
                   transmit);
  });
}

void DownloadManager::OnBlockPayload(NodeId source, uint32_t block,
                                     std::vector<uint8_t> payload) {
  auto& transfer = *transfer_;
  auto source_it = transfer.sources.find(source);
  if (source_it != transfer.sources.end()) {
    source_it->second.busy = false;
  }
  bool verified = false;
  if (!payload.empty()) {
    verified = Md4::Hash(payload) == transfer.hashset[block];
  }
  if (verified) {
    transfer.blocks[block] = BlockState::kDone;
    ++transfer.blocks_done;
    if (source_it != transfer.sources.end()) {
      source_it->second.consecutive_failures = 0;
      if (++source_it->second.blocks_delivered == 1) {
        ++transfer.report.sources_used;
      }
    }
    // Partial sharing: every verified block is offered on; the first one
    // triggers a republish so the owner becomes a source immediately.
    owner_->RegisterPartialBlock(transfer.info, block);
    if (transfer.blocks_done == transfer.blocks.size()) {
      Finish(true);
      return;
    }
  } else {
    if (!payload.empty()) {
      ++transfer.report.corrupted_blocks;
    }
    transfer.blocks[block] = BlockState::kPending;
    if (--transfer.retries_left[block] < 0) {
      Finish(false);
      return;
    }
    if (source_it != transfer.sources.end()) {
      if (payload.empty()) {
        // The source does not hold this block (any more): refresh its map
        // and strike it; repeated strikes retire the source.
        if (block < source_it->second.available.size()) {
          source_it->second.available[block] = false;
        }
        source_it->second.map_known = false;
        source_it->second.map_requested = false;
      }
      if (++source_it->second.consecutive_failures >= 3) {
        DropSource(source);
      }
    }
  }
  ScheduleBlocks();
}

void DownloadManager::DropSource(NodeId source) {
  auto it = transfer_->sources.find(source);
  if (it != transfer_->sources.end()) {
    it->second.dead = true;
    it->second.busy = false;
  }
}

void DownloadManager::ArmRequeryTimer() {
  auto transfer = transfer_;
  if (transfer->requery_timer.pending()) {
    return;
  }
  transfer->requery_timer = network_->ScheduleOn(
      owner_->node_id(), config_.source_requery_interval, [this, transfer] {
        if (transfer->finished || transfer != transfer_) {
          return;
        }
        DiscoverSources();
      });
}

void DownloadManager::Finish(bool success) {
  auto transfer = transfer_;
  transfer->finished = true;
  transfer->requery_timer.Cancel();
  transfer->report.success = success;
  transfer->report.duration_seconds =
      network_->NodeNow(owner_->node_id()) - transfer->start_time;
  if (success && !owner_->HasCompleteFile(transfer->info.digest)) {
    owner_->AddLocalFile(transfer->info);
    owner_->Publish();
  }
  transfer_.reset();
  if (transfer->on_done) {
    transfer->on_done(transfer->report);
  }
}

}  // namespace edk
