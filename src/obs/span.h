// Span emission helpers and the per-query audit record schema on top of
// TraceLog.
//
// Three kinds of instrumentation sites use this header:
//
//   * Deterministic spans/instants (EmitSimSpan / EmitSimInstant): stamped
//     with simulation time or a deterministic ordinal, recorded only with
//     values that are pure functions of (seed, workload). Span ids must be
//     content-derived (query ordinal, window index, (node, per-node seq))
//     — NEVER a global counter, whose allocation order would depend on the
//     partitioning.
//   * Wall spans (WallSpan): RAII scope measuring real elapsed time, for
//     profiling timelines (barrier merges, queue drains).
//   * Causal parents (SpanParentScope): a thread-local "current span"
//     that request/reply instrumentation threads through its callbacks, so
//     a publish triggered inside a connect reply links back to the connect
//     span. Safe under the sharded engine because one worker drives one
//     shard at a time and the scope is restored around every callback.
//
// The audit record is the paper-facing payload: one kSim instant per
// simulated query, carrying strategy, neighbours consulted, hop depth and
// the hit/miss cause. `edk-trace-inspect queries` and the fig18
// reproduction test rebuild aggregate hit rates from these records alone.

#ifndef SRC_OBS_SPAN_H_
#define SRC_OBS_SPAN_H_

#include <array>
#include <cstdint>
#include <initializer_list>
#include <map>
#include <tuple>

#include "src/obs/trace_log.h"

namespace edk::obs {

// Stateless SplitMix64-style mixers for content-derived span ids. Ids only
// need to be stable and well-spread; 0 is reserved for "no span".
uint64_t MixId(uint64_t a);
uint64_t MixId2(uint64_t a, uint64_t b);

// The calling thread's current causal parent span id (0 = none).
uint64_t CurrentSpanParent();

// RAII: makes `span_id` the current parent for the scope's lifetime.
class SpanParentScope {
 public:
  explicit SpanParentScope(uint64_t span_id);
  ~SpanParentScope();
  SpanParentScope(const SpanParentScope&) = delete;
  SpanParentScope& operator=(const SpanParentScope&) = delete;

 private:
  uint64_t saved_;
};

// Simulation seconds -> the microsecond timestamps TraceEvent carries.
uint64_t SimMicros(double seconds);

// Complete deterministic span covering [start, end] simulation seconds.
void EmitSimSpan(uint16_t name, double start_seconds, double end_seconds,
                 uint64_t id, uint64_t parent,
                 std::initializer_list<uint64_t> args);

// Deterministic instant at a raw timestamp (micros or an ordinal).
void EmitSimInstant(uint16_t name, uint64_t ts, uint64_t id, uint64_t parent,
                    std::initializer_list<uint64_t> args);

// Wall-clock scope: starts on construction when tracing is enabled, emits
// a kWall span on destruction (or Finish()).
class WallSpan {
 public:
  explicit WallSpan(uint16_t name);
  ~WallSpan();
  WallSpan(const WallSpan&) = delete;
  WallSpan& operator=(const WallSpan&) = delete;

  bool active() const { return active_; }
  void set_id(uint64_t id) { event_.id = id; }
  // Appends one positional arg (dropped beyond kTraceMaxArgs).
  void AddArg(uint64_t value);
  // Emits now; the destructor becomes a no-op.
  void Finish();
  // Discards the span without emitting (for scopes that turned out to do
  // no work).
  void Cancel() { active_ = false; }

 private:
  TraceEvent event_;
  bool active_;
};

// ---------------------------------------------------------------------------
// Per-query audit records.

// Why a simulated query ended the way it did. Values are stable wire
// constants (they appear in trace files).
enum class QueryOutcome : uint64_t {
  kOneHopHit = 1,           // A queried neighbour shared the file.
  kTwoHopHit = 2,           // Found only via a neighbour's neighbour.
  kNeighbourAbsent = 3,     // No neighbours to ask (empty/unlearned list).
  kCacheMiss = 4,           // Neighbours asked; none shared the file.
  kHopBudgetExhausted = 5,  // Two-hop probing ran out without a hit.
  kNoOnlineSource = 6,      // Dynamic replay: nobody online served it.
};
const char* QueryOutcomeName(QueryOutcome outcome);

// Strategy code carried in the audit record: StrategyKind's integer value,
// or this sentinel when fixed (gossip-converged) views replace learning.
inline constexpr uint64_t kAuditStrategyFixedViews = 255;

// Positional arg layout of an audit record (the interned arg names match).
inline constexpr size_t kAuditArgRequester = 0;
inline constexpr size_t kAuditArgFile = 1;
inline constexpr size_t kAuditArgOutcome = 2;
inline constexpr size_t kAuditArgConsulted = 3;  // Neighbours in the 1-hop list.
inline constexpr size_t kAuditArgStrategy = 4;
inline constexpr size_t kAuditArgListSize = 5;
// Static sim: 1 when two-hop probing was enabled. Dynamic sim: replay day.
inline constexpr size_t kAuditArgExtra = 6;
inline constexpr size_t kAuditArgCount = 7;

// Interned audit span names ("query.audit" / "query.audit.dynamic") with
// the arg labels above. An event's ts and id are both the deterministic
// query ordinal, which is what `edk-trace-inspect query ID` drills into.
uint16_t AuditName();
uint16_t DynamicAuditName();

// Emits one audit record if tracing is enabled and the ordinal is sampled
// in. `name` is AuditName() or DynamicAuditName().
void EmitAudit(uint16_t name, uint64_t ordinal, uint32_t requester,
               uint32_t file, QueryOutcome outcome, uint64_t consulted,
               uint64_t strategy, uint64_t list_size, uint64_t extra);

// Aggregate of one (audit kind, strategy, list size) cell rebuilt from a
// trace file — the bridge from per-query records back to the paper's
// aggregate hit-rate tables.
struct AuditCell {
  uint64_t queries = 0;   // All audit records in the cell.
  uint64_t requests = 0;  // Excluding kNoOnlineSource (matches result.requests).
  uint64_t one_hop_hits = 0;
  uint64_t two_hop_hits = 0;
  // Outcome histogram indexed by QueryOutcome's value (slot 0 unused).
  std::array<uint64_t, 8> outcomes{};

  double OneHopHitRate() const {
    return requests == 0 ? 0
                         : static_cast<double>(one_hop_hits) /
                               static_cast<double>(requests);
  }
  double TotalHitRate() const {
    return requests == 0 ? 0
                         : static_cast<double>(one_hop_hits + two_hop_hits) /
                               static_cast<double>(requests);
  }
};

// Key: (dynamic?, strategy code, list size).
using AuditSummary = std::map<std::tuple<int, uint64_t, uint64_t>, AuditCell>;

// Folds every audit record of `file` into per-cell aggregates. Non-audit
// events are ignored, so it works on mixed traces.
AuditSummary SummarizeAudits(const TraceFile& file);

}  // namespace edk::obs

#endif  // SRC_OBS_SPAN_H_
