#include "src/obs/metrics.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ostream>

#include "src/common/json_lint.h"

namespace edk::obs {

namespace {

// Each thread gets a stable slot on first use; slots wrap around the shard
// count, so contention only appears once more than kShards threads
// increment the same counter simultaneously.
size_t ThreadShard() {
  static std::atomic<size_t> next_slot{0};
  thread_local const size_t slot =
      next_slot.fetch_add(1, std::memory_order_relaxed) % Counter::kShards;
  return slot;
}

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Metric/phase names are escaped with the shared edk::WriteJsonString
// (src/common/json_lint.h), which also handles bytes >= 0x7f — the local
// escaper it replaced emitted sign-extended \u escapes for high-bit chars
// and passed DEL and non-UTF-8 bytes through raw, producing unparseable
// documents for arbitrary names.

}  // namespace

void Counter::Increment(uint64_t n) {
  cells_[ThreadShard()].value.fetch_add(n, std::memory_order_relaxed);
}

uint64_t Counter::Value() const {
  uint64_t sum = 0;
  for (const Cell& cell : cells_) {
    sum += cell.value.load(std::memory_order_relaxed);
  }
  return sum;
}

void Counter::Reset() {
  for (Cell& cell : cells_) {
    cell.value.store(0, std::memory_order_relaxed);
  }
}

void Gauge::UpdateMax(int64_t v) {
  int64_t current = value_.load(std::memory_order_relaxed);
  while (v > current &&
         !value_.compare_exchange_weak(current, v, std::memory_order_relaxed)) {
  }
}

HistogramMetric::HistogramMetric(double lo, double hi, size_t bins)
    : lo_(lo), hi_(hi), bins_(bins), histogram_(lo, hi, bins) {}

void HistogramMetric::Record(double x) {
  std::lock_guard<std::mutex> lock(mu_);
  histogram_.Add(x);
}

Histogram HistogramMetric::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return histogram_;
}

void HistogramMetric::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  histogram_ = Histogram(lo_, hi_, bins_);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::GetCounter(std::string_view name, Domain domain) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& map = domain == Domain::kEnv ? env_counters_ : counters_;
  auto it = map.find(name);
  if (it == map.end()) {
    it = map.emplace(std::piecewise_construct,
                     std::forward_as_tuple(std::string(name)),
                     std::forward_as_tuple())
             .first;
  }
  return it->second;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_
             .emplace(std::piecewise_construct,
                      std::forward_as_tuple(std::string(name)),
                      std::forward_as_tuple())
             .first;
  }
  return it->second;
}

HistogramMetric& MetricsRegistry::GetHistogram(std::string_view name, double lo,
                                               double hi, size_t bins,
                                               Domain domain) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& map = domain == Domain::kEnv ? env_histograms_ : histograms_;
  auto it = map.find(name);
  if (it == map.end()) {
    it = map.emplace(std::piecewise_construct,
                     std::forward_as_tuple(std::string(name)),
                     std::forward_as_tuple(lo, hi, bins))
             .first;
  }
  return it->second;
}

void MetricsRegistry::RecordWallSeconds(std::string_view name, double seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = wall_.find(name);
  if (it == wall_.end()) {
    it = wall_.emplace(std::string(name), WallPhase{}).first;
  }
  WallPhase& phase = it->second;
  ++phase.count;
  phase.total_seconds += seconds;
  phase.max_seconds = std::max(phase.max_seconds, seconds);
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) {
    counter.Reset();
  }
  for (auto& [name, counter] : env_counters_) {
    counter.Reset();
  }
  for (auto& [name, gauge] : gauges_) {
    gauge.Reset();
  }
  for (auto& [name, histogram] : histograms_) {
    histogram.Reset();
  }
  for (auto& [name, histogram] : env_histograms_) {
    histogram.Reset();
  }
  for (auto& [name, phase] : wall_) {
    phase = WallPhase{};
  }
  delta_prev_ = MetricsSnapshot{};
}

MetricsSnapshot MetricsRegistry::SnapshotLocked() const {
  MetricsSnapshot out;
  out.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.counters.emplace_back(name, counter.Value());
  }
  out.env_counters.reserve(env_counters_.size());
  for (const auto& [name, counter] : env_counters_) {
    out.env_counters.emplace_back(name, counter.Value());
  }
  out.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    out.gauges.emplace_back(name, gauge.Value());
  }
  auto copy_histograms = [](const std::map<std::string, HistogramMetric,
                                           std::less<>>& map,
                            std::vector<MetricsSnapshot::HistogramData>* dst) {
    dst->reserve(map.size());
    for (const auto& [name, histogram] : map) {
      const Histogram snapshot = histogram.Snapshot();
      MetricsSnapshot::HistogramData data;
      data.name = name;
      data.lo = snapshot.BinLow(0);
      data.hi = snapshot.BinHigh(snapshot.bins() - 1);
      data.total = snapshot.total();
      data.underflow = snapshot.underflow();
      data.overflow = snapshot.overflow();
      data.counts.reserve(snapshot.bins());
      for (size_t b = 0; b < snapshot.bins(); ++b) {
        data.counts.push_back(snapshot.count(b));
      }
      dst->push_back(std::move(data));
    }
  };
  copy_histograms(histograms_, &out.histograms);
  copy_histograms(env_histograms_, &out.env_histograms);
  return out;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return SnapshotLocked();
}

namespace {

// current - previous for name-sorted (name, value) vectors. Metrics are
// never removed, so `prev` is always a (not necessarily strict) name
// subset of `cur`; a name without a baseline delta-s from zero. Counters
// are monotonic, but a clamp guards a torn baseline anyway.
void DiffValues(const std::vector<std::pair<std::string, uint64_t>>& prev,
                std::vector<std::pair<std::string, uint64_t>>* cur) {
  size_t p = 0;
  for (auto& [name, value] : *cur) {
    while (p < prev.size() && prev[p].first < name) {
      ++p;
    }
    if (p < prev.size() && prev[p].first == name) {
      value -= std::min(prev[p].second, value);
    }
  }
}

void DiffHistograms(const std::vector<MetricsSnapshot::HistogramData>& prev,
                    std::vector<MetricsSnapshot::HistogramData>* cur) {
  size_t p = 0;
  for (auto& histogram : *cur) {
    while (p < prev.size() && prev[p].name < histogram.name) {
      ++p;
    }
    if (p >= prev.size() || prev[p].name != histogram.name) {
      continue;
    }
    const MetricsSnapshot::HistogramData& base = prev[p];
    histogram.total -= std::min(base.total, histogram.total);
    histogram.underflow -= std::min(base.underflow, histogram.underflow);
    histogram.overflow -= std::min(base.overflow, histogram.overflow);
    const size_t bins = std::min(histogram.counts.size(), base.counts.size());
    for (size_t b = 0; b < bins; ++b) {
      histogram.counts[b] -= std::min(base.counts[b], histogram.counts[b]);
    }
  }
}

}  // namespace

MetricsSnapshot MetricsRegistry::SnapshotDelta() {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot current = SnapshotLocked();
  MetricsSnapshot delta = current;
  DiffValues(delta_prev_.counters, &delta.counters);
  DiffValues(delta_prev_.env_counters, &delta.env_counters);
  DiffHistograms(delta_prev_.histograms, &delta.histograms);
  DiffHistograms(delta_prev_.env_histograms, &delta.env_histograms);
  // Gauges stay point-in-time: a rate of a level makes no sense.
  delta_prev_ = std::move(current);
  return delta;
}

void MetricsRegistry::WriteDeterministicSections(std::ostream& os) const {
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    os << (first ? "\n    " : ",\n    ");
    first = false;
    WriteJsonString(os, name);
    os << ": " << counter.Value();
  }
  os << (first ? "}" : "\n  }") << ",\n  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    os << (first ? "\n    " : ",\n    ");
    first = false;
    WriteJsonString(os, name);
    os << ": " << gauge.Value();
  }
  os << (first ? "}" : "\n  }") << ",\n  \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    os << (first ? "\n    " : ",\n    ");
    first = false;
    WriteJsonString(os, name);
    const Histogram snapshot = histogram.Snapshot();
    os << ": {\"lo\": " << snapshot.BinLow(0)
       << ", \"hi\": " << snapshot.BinHigh(snapshot.bins() - 1)
       << ", \"total\": " << snapshot.total()
       << ", \"underflow\": " << snapshot.underflow()
       << ", \"overflow\": " << snapshot.overflow() << ", \"counts\": [";
    for (size_t b = 0; b < snapshot.bins(); ++b) {
      os << (b == 0 ? "" : ", ") << snapshot.count(b);
    }
    os << "]}";
  }
  os << (first ? "}" : "\n  }");
}

std::string MetricsRegistry::DeterministicJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  WriteDeterministicSections(os);
  os << "\n}\n";
  return os.str();
}

void MetricsRegistry::WriteJson(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  WriteDeterministicSections(os);
  os << ",\n  \"wall\": {\n    \"phases\": {";
  bool first = true;
  for (const auto& [name, phase] : wall_) {
    os << (first ? "\n      " : ",\n      ");
    first = false;
    WriteJsonString(os, name);
    os << ": {\"count\": " << phase.count
       << ", \"total_seconds\": " << phase.total_seconds
       << ", \"max_seconds\": " << phase.max_seconds << "}";
  }
  os << (first ? "}" : "\n    }") << ",\n    \"env_counters\": {";
  first = true;
  for (const auto& [name, counter] : env_counters_) {
    os << (first ? "\n      " : ",\n      ");
    first = false;
    WriteJsonString(os, name);
    os << ": " << counter.Value();
  }
  os << (first ? "}" : "\n    }") << ",\n    \"env_histograms\": {";
  first = true;
  for (const auto& [name, histogram] : env_histograms_) {
    os << (first ? "\n      " : ",\n      ");
    first = false;
    WriteJsonString(os, name);
    const Histogram snapshot = histogram.Snapshot();
    os << ": {\"lo\": " << snapshot.BinLow(0)
       << ", \"hi\": " << snapshot.BinHigh(snapshot.bins() - 1)
       << ", \"total\": " << snapshot.total()
       << ", \"underflow\": " << snapshot.underflow()
       << ", \"overflow\": " << snapshot.overflow() << ", \"counts\": [";
    for (size_t b = 0; b < snapshot.bins(); ++b) {
      os << (b == 0 ? "" : ", ") << snapshot.count(b);
    }
    os << "]}";
  }
  os << (first ? "}" : "\n    }") << "\n  }\n}\n";
}

bool MetricsRegistry::WriteJsonToFile(const std::string& path) const {
  std::ofstream os(path);
  if (!os) {
    return false;
  }
  WriteJson(os);
  // Flush and close before reporting success: on a full disk the failure
  // only surfaces when the last buffered block is written out, and the
  // destructor swallows it.
  os.flush();
  if (!os.good()) {
    return false;
  }
  os.close();
  return os.good();
}

void MetricsRegistry::WriteCsv(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  os << "section,kind,name,field,value\n";
  for (const auto& [name, counter] : counters_) {
    os << "deterministic,counter," << name << ",value," << counter.Value() << "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    os << "deterministic,gauge," << name << ",value," << gauge.Value() << "\n";
  }
  for (const auto& [name, histogram] : histograms_) {
    const Histogram snapshot = histogram.Snapshot();
    os << "deterministic,histogram," << name << ",total," << snapshot.total() << "\n";
    os << "deterministic,histogram," << name << ",underflow," << snapshot.underflow()
       << "\n";
    os << "deterministic,histogram," << name << ",overflow," << snapshot.overflow()
       << "\n";
    for (size_t b = 0; b < snapshot.bins(); ++b) {
      os << "deterministic,histogram," << name << ",bin" << b << ","
         << snapshot.count(b) << "\n";
    }
  }
  for (const auto& [name, phase] : wall_) {
    os << "wall,phase," << name << ",count," << phase.count << "\n";
    os << "wall,phase," << name << ",total_seconds," << phase.total_seconds << "\n";
    os << "wall,phase," << name << ",max_seconds," << phase.max_seconds << "\n";
  }
  for (const auto& [name, counter] : env_counters_) {
    os << "wall,env_counter," << name << ",value," << counter.Value() << "\n";
  }
  for (const auto& [name, histogram] : env_histograms_) {
    const Histogram snapshot = histogram.Snapshot();
    os << "wall,env_histogram," << name << ",total," << snapshot.total() << "\n";
    os << "wall,env_histogram," << name << ",underflow," << snapshot.underflow()
       << "\n";
    os << "wall,env_histogram," << name << ",overflow," << snapshot.overflow()
       << "\n";
    for (size_t b = 0; b < snapshot.bins(); ++b) {
      os << "wall,env_histogram," << name << ",bin" << b << ","
         << snapshot.count(b) << "\n";
    }
  }
}

PhaseTimer::PhaseTimer(std::string name, MetricsRegistry* registry)
    : name_(std::move(name)),
      registry_(registry != nullptr ? registry : &MetricsRegistry::Global()),
      start_ns_(NowNanos()),
      running_(true) {}

PhaseTimer::~PhaseTimer() {
  if (running_) {
    Stop();
  }
}

void PhaseTimer::RecordMisuse(const char* what) {
  registry_->GetCounter(std::string("obs.phase_timer.misuse.") + what,
                        Domain::kEnv)
      .Increment();
}

void PhaseTimer::Start() {
  if (running_) {
    // Nested Start would silently discard the first interval's beginning;
    // keep the original start so the measurement stays intact.
    RecordMisuse("start_while_running");
    return;
  }
  start_ns_ = NowNanos();
  running_ = true;
}

double PhaseTimer::Stop() {
  if (!running_) {
    return recorded_seconds_ < 0 ? 0 : recorded_seconds_;
  }
  running_ = false;
  const uint64_t now = NowNanos();
  if (now < start_ns_) {
    // A steady clock cannot go backwards; guard anyway so a broken
    // platform clock corrupts a counter, not the phase totals.
    RecordMisuse("clock_regression");
    recorded_seconds_ = 0;
    return recorded_seconds_;
  }
  recorded_seconds_ = static_cast<double>(now - start_ns_) * 1e-9;
  registry_->RecordWallSeconds(name_, recorded_seconds_);
  return recorded_seconds_;
}

namespace {

std::string& AtExitPath() {
  static std::string path;
  return path;
}

void DumpGlobalMetrics() {
  const std::string& path = AtExitPath();
  if (!path.empty()) {
    MetricsRegistry::Global().WriteJsonToFile(path);
  }
}

}  // namespace

void WriteGlobalMetricsAtExit(std::string path) {
  static bool registered = false;
  AtExitPath() = std::move(path);
  if (!registered) {
    registered = true;
    // Construct the registry (and the path string, above) BEFORE
    // registering the handler: exit() unwinds the atexit/static-destructor
    // list LIFO, so anything constructed later is destroyed before the
    // handler runs — the dump must not touch a destroyed registry.
    MetricsRegistry::Global();
    std::atexit(&DumpGlobalMetrics);
  }
}

}  // namespace edk::obs
