// edk::obs — lightweight metrics & tracing for the simulation stack.
//
// A process-wide MetricsRegistry holds named counters, gauges and value
// histograms that the hot layers (EventQueue, net, semantic, workload)
// increment, plus wall-clock phase timings kept strictly apart from the
// simulation-derived values. The split matters for reproducibility:
//
//   * Deterministic section ("counters"/"gauges"/"histograms" in the JSON
//     export): values are pure functions of the work performed — for a
//     fixed seed they are bit-identical for any --threads value and any
//     scheduling order. This holds because every primitive folds its
//     updates with a commutative operation (sum for counters and
//     histogram bins, max for gauges), so concurrent increments from the
//     edk_exec pool land in the same totals regardless of interleaving.
//   * Wall section ("wall" in the JSON export): PhaseTimer measurements,
//     and environment-dependent counters (Domain::kEnv — e.g. trace-cache
//     hits, generation work that is skipped on a warm cache). These vary
//     run to run and must be excluded from bit-comparisons.
//
// Counters are sharded across cache-line-sized cells indexed by a
// per-thread slot, so the edk_exec pool can increment without contention;
// Value() sums the cells. Histograms reuse edk::Histogram under a mutex
// (bin increments commute, so totals stay deterministic).
//
// Hot paths fetch a Counter*/Gauge* once (registration takes a mutex) and
// increment through the pointer. Reset() zeroes values but never
// invalidates previously returned pointers.

#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/common/stats.h"

namespace edk::obs {

// Monotonic event counter, sharded to keep concurrent increments off the
// same cache line. Increment() is wait-free after the first registry
// lookup; Value() is a relaxed sum and should be read once writers have
// quiesced (e.g. after a ParallelFor join).
class Counter {
 public:
  static constexpr size_t kShards = 32;

  void Increment(uint64_t n = 1);
  uint64_t Value() const;
  void Reset();

 private:
  struct alignas(64) Cell {
    std::atomic<uint64_t> value{0};
  };
  std::array<Cell, kShards> cells_;
};

// Point-in-time value. Instrumentation that can run concurrently must use
// UpdateMax (max is commutative, so the final value is deterministic);
// Set/Add are for single-threaded contexts only.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  // Raises the gauge to `v` if it is currently lower.
  void UpdateMax(int64_t v);
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Fixed-range value/latency histogram. Thread-safe; bin counts are sums,
// so concurrent Record() calls fold deterministically.
class HistogramMetric {
 public:
  HistogramMetric(double lo, double hi, size_t bins);

  void Record(double x);
  // Consistent copy of the underlying histogram.
  Histogram Snapshot() const;
  void Reset();

 private:
  const double lo_;
  const double hi_;
  const size_t bins_;
  mutable std::mutex mu_;
  Histogram histogram_;
};

// Where a counter's value is exported. kDeterministic values are functions
// of (seed, workload) only; kEnv values depend on the run environment
// (disk caches, retries, ...) and are exported inside the "wall" section.
enum class Domain {
  kDeterministic,
  kEnv,
};

// Aggregated wall-clock measurements of one named phase.
struct WallPhase {
  uint64_t count = 0;
  double total_seconds = 0;
  double max_seconds = 0;
};

// Structured, consistent copy of a registry's values — the form the live
// stats protocol (DESIGN.md §6k) ships over the wire. Every vector is
// sorted by name (the registry maps are ordered), so two snapshots of the
// same registry can be diffed by a linear merge.
struct MetricsSnapshot {
  struct HistogramData {
    std::string name;
    double lo = 0;
    double hi = 0;
    uint64_t total = 0;
    uint64_t underflow = 0;
    uint64_t overflow = 0;
    std::vector<uint64_t> counts;
  };
  std::vector<std::pair<std::string, uint64_t>> counters;      // Deterministic.
  std::vector<std::pair<std::string, uint64_t>> env_counters;  // Wall section.
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<HistogramData> histograms;      // Deterministic.
  std::vector<HistogramData> env_histograms;  // Wall section.
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // The process-wide registry used by library instrumentation.
  static MetricsRegistry& Global();

  // Find-or-create by name. Returned references stay valid for the
  // registry's lifetime (Reset() zeroes values, it never removes metrics).
  Counter& GetCounter(std::string_view name, Domain domain = Domain::kDeterministic);
  Gauge& GetGauge(std::string_view name);
  // `lo`/`hi`/`bins` apply on first creation; later calls with the same
  // name return the existing histogram unchanged. Domain::kEnv histograms
  // (e.g. real-socket request latency) export under the "wall" section and
  // never participate in determinism comparisons.
  HistogramMetric& GetHistogram(std::string_view name, double lo, double hi,
                                size_t bins,
                                Domain domain = Domain::kDeterministic);

  // Accumulates one wall-clock measurement of `name` (see PhaseTimer).
  void RecordWallSeconds(std::string_view name, double seconds);

  // Zeroes every value (counters, gauges, histogram bins, wall phases)
  // without invalidating references handed out earlier. Also clears the
  // SnapshotDelta baseline, so the next delta reports from zero.
  void Reset();

  // Consistent structured copy of every metric, all domains.
  MetricsSnapshot Snapshot() const;

  // Values accumulated since the previous SnapshotDelta() call (or since
  // construction/Reset() for the first call): counters and histogram
  // bucket counts are differences, gauges are point-in-time values copied
  // as-is. Thread-safe against concurrent increments — an increment that
  // races the snapshot lands in this delta or the next one, never in both
  // and never in neither, so the deltas plus a final call always sum to
  // the cumulative totals. Scrapers use this to report rates instead of
  // lifetime counts.
  MetricsSnapshot SnapshotDelta();

  // Deterministic-ordered JSON snapshot:
  //   {"counters": {...}, "gauges": {...}, "histograms": {...},
  //    "wall": {"phases": {...}, "env_counters": {...}}}
  // Everything under "wall" is run-environment-dependent; the rest is
  // bit-stable for a fixed seed regardless of thread count.
  void WriteJson(std::ostream& os) const;
  bool WriteJsonToFile(const std::string& path) const;
  // Flat CSV (section,kind,name,field,value), same ordering guarantees.
  void WriteCsv(std::ostream& os) const;

  // The deterministic sections of WriteJson only (no "wall"): counters,
  // gauges and histograms, sorted by name. Two runs of the same seeded
  // workload must produce byte-identical strings for any shard/thread
  // count — the comparison the sharded-engine equivalence tests make.
  std::string DeterministicJson() const;

 private:
  // Emits the counters/gauges/histograms sections; caller holds mu_.
  void WriteDeterministicSections(std::ostream& os) const;
  // Builds the structured copy; caller holds mu_.
  MetricsSnapshot SnapshotLocked() const;

  mutable std::mutex mu_;
  // std::map keeps the export order sorted and the nodes pointer-stable.
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Counter, std::less<>> env_counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, HistogramMetric, std::less<>> histograms_;
  std::map<std::string, HistogramMetric, std::less<>> env_histograms_;
  std::map<std::string, WallPhase, std::less<>> wall_;
  // Baseline of the previous SnapshotDelta() call; guarded by mu_.
  MetricsSnapshot delta_prev_;
};

// Scoped wall-clock timer: records the elapsed time of a named phase into
// the registry's wall section on destruction (or explicit Stop()).
//
// Contract: the constructor starts the first measurement. Stop() ends the
// running measurement, records it once, and returns the elapsed seconds;
// Stop() while nothing is running is a benign no-op returning the last
// recorded value (so an explicit Stop() followed by destruction records
// exactly once). Start() re-arms a stopped timer for another measurement
// of the same phase. Misuse never corrupts the recorded timings: Start()
// while already running keeps the original start, and a (theoretically
// impossible) backwards step of the steady clock records zero; both bump
// an `obs.phase_timer.misuse.*` counter in the kEnv domain instead.
class PhaseTimer {
 public:
  explicit PhaseTimer(std::string name, MetricsRegistry* registry = nullptr);
  ~PhaseTimer();
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

  // Begins a new measurement; no-op (plus misuse counter) if one is
  // already running.
  void Start();
  // Ends and records the running measurement; see the class contract.
  double Stop();

 private:
  void RecordMisuse(const char* what);

  std::string name_;
  MetricsRegistry* registry_;
  uint64_t start_ns_;
  bool running_ = false;
  double recorded_seconds_ = -1;
};

// Registers a process-exit hook that writes Global() as JSON to `path`
// (the --metrics-out plumbing shared by bench_common and edk-trace). The
// last registered path wins; an empty path disables the dump.
void WriteGlobalMetricsAtExit(std::string path);

}  // namespace edk::obs

#endif  // SRC_OBS_METRICS_H_
