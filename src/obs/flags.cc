#include "src/obs/flags.h"

#include <cstdlib>
#include <cstring>

#include "src/obs/metrics.h"
#include "src/obs/trace_log.h"

namespace edk::obs {

bool ConsumeObsFlag(const char* arg, ObsFlagValues* values) {
  auto value = [arg](const char* prefix) -> const char* {
    const size_t n = std::strlen(prefix);
    return std::strncmp(arg, prefix, n) == 0 ? arg + n : nullptr;
  };
  if (const char* v = value("--metrics-out=")) {
    values->metrics_out = v;
    return true;
  }
  if (const char* v = value("--trace-out=")) {
    values->trace_out = v;
    return true;
  }
  if (const char* v = value("--trace-sample=")) {
    const uint64_t n = std::strtoull(v, nullptr, 10);
    values->trace_sample = n == 0 ? 1 : n;
    return true;
  }
  return false;
}

void ApplyObsFlags(const ObsFlagValues& values) {
  if (!values.metrics_out.empty()) {
    // Dump at exit so every main() gets the snapshot for free, after all
    // of its sweeps have folded their counters in.
    WriteGlobalMetricsAtExit(values.metrics_out);
  }
  if (!values.trace_out.empty()) {
    TraceLog::SetSampleModulus(values.trace_sample);
    TraceLog::SetEnabled(true);
    WriteGlobalTraceAtExit(values.trace_out);
  }
}

const char* ObsFlagsUsage() {
  return "[--metrics-out=FILE] [--trace-out=FILE] [--trace-sample=N]";
}

}  // namespace edk::obs
