#include "src/obs/trace_log.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <ostream>
#include <tuple>

#include "src/common/json_lint.h"
#include "src/common/rng.h"
#include "src/common/varint.h"

namespace edk::obs {

namespace {

// Stateless SplitMix64 finalisation of a sampling key. The same mixer the
// RNG seeding uses, but applied to a copy: sampling never advances any
// generator state.
uint64_t MixKey(uint64_t key) {
  uint64_t state = key;
  return SplitMix64(state);
}

// Full lexicographic record order. For kSim events (tid already erased)
// this is partition-independent because the event multiset is; sorting by
// it therefore canonicalises the stream byte-for-byte. Wall events lead
// with the recording thread so each thread's timeline stays contiguous.
struct CanonicalOrder {
  static auto Key(const TraceEvent& e) {
    return std::tie(e.tid, e.ts, e.name, e.id, e.parent, e.dur, e.arg_count,
                    e.args);
  }
  bool operator()(const TraceEvent& a, const TraceEvent& b) const {
    return Key(a) < Key(b);
  }
};

}  // namespace

std::atomic<bool> TraceLog::enabled_{false};
std::atomic<uint64_t> TraceLog::sample_modulus_{1};

TraceLog& TraceLog::Global() {
  static TraceLog log;
  return log;
}

void TraceLog::SetSampleModulus(uint64_t modulus) {
  sample_modulus_.store(modulus == 0 ? 1 : modulus, std::memory_order_relaxed);
}

uint64_t TraceLog::sample_modulus() {
  return sample_modulus_.load(std::memory_order_relaxed);
}

bool TraceLog::SampledIn(uint64_t key) {
  if (!Enabled()) {
    return false;
  }
  const uint64_t modulus = sample_modulus();
  return modulus <= 1 || MixKey(key) % modulus == 0;
}

uint16_t TraceLog::InternName(std::string_view name,
                              std::initializer_list<std::string_view> arg_names) {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i].name == name) {
      return static_cast<uint16_t>(i);
    }
  }
  if (names_.size() >= 0xffff) {
    assert(false && "trace name table full");
    return 0;
  }
  TraceName entry;
  entry.name = std::string(name);
  for (std::string_view arg : arg_names) {
    entry.arg_names.emplace_back(arg);
  }
  names_.push_back(std::move(entry));
  return static_cast<uint16_t>(names_.size() - 1);
}

FlightRecorder& TraceLog::RecorderForThisThread(uint16_t* tid) {
  // One registration per (thread, process): the Global() log is the only
  // instance, so a plain thread_local cache is enough.
  struct ThreadSlot {
    FlightRecorder* recorder = nullptr;
    uint16_t tid = 0;
  };
  thread_local ThreadSlot slot;
  if (slot.recorder == nullptr) {
    std::lock_guard<std::mutex> lock(mu_);
    recorders_.push_back(std::make_unique<FlightRecorder>(ring_capacity_));
    slot.recorder = recorders_.back().get();
    slot.tid = static_cast<uint16_t>(recorders_.size() - 1);
  }
  *tid = slot.tid;
  return *slot.recorder;
}

void TraceLog::Record(TraceEvent event) {
  if (!Enabled()) {
    return;
  }
  uint16_t tid = 0;
  FlightRecorder& recorder = RecorderForThisThread(&tid);
  event.tid = tid;
  recorder.Append(event);
}

void TraceLog::SetRingCapacity(size_t events) {
  std::lock_guard<std::mutex> lock(mu_);
  ring_capacity_ = std::max<size_t>(1, events);
}

void TraceLog::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& recorder : recorders_) {
    recorder->ResetWithCapacity(ring_capacity_);
  }
}

TraceFile TraceLog::Snapshot() const {
  TraceFile file;
  file.sample_modulus = sample_modulus();

  std::vector<TraceEvent> all;
  std::vector<TraceName> names;
  {
    std::lock_guard<std::mutex> lock(mu_);
    names = names_;
    for (const auto& recorder : recorders_) {
      recorder->Collect(&all);
      file.sim_dropped += recorder->dropped(TimeDomain::kSim);
      file.wall_dropped += recorder->dropped(TimeDomain::kWall);
    }
  }

  // Intern order depends on which thread first hit each call site, so the
  // snapshot re-keys events onto the SORTED name table — the only order
  // that is partition-independent.
  std::vector<uint16_t> order(names.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<uint16_t>(i);
  }
  std::sort(order.begin(), order.end(), [&names](uint16_t a, uint16_t b) {
    return names[a].name < names[b].name;
  });
  std::vector<uint16_t> remap(names.size());
  file.names.reserve(names.size());
  for (size_t rank = 0; rank < order.size(); ++rank) {
    remap[order[rank]] = static_cast<uint16_t>(rank);
    file.names.push_back(std::move(names[order[rank]]));
  }

  for (TraceEvent& event : all) {
    if (event.name < remap.size()) {
      event.name = remap[event.name];
    }
    if (event.domain == TimeDomain::kSim) {
      event.tid = 0;  // Which thread recorded it is partition-dependent.
      file.sim_events.push_back(event);
    } else {
      file.wall_events.push_back(event);
    }
  }
  std::sort(file.sim_events.begin(), file.sim_events.end(), CanonicalOrder{});
  std::sort(file.wall_events.begin(), file.wall_events.end(), CanonicalOrder{});
  return file;
}

bool TraceLog::WriteToFile(const std::string& path) const {
  const TraceFile file = Snapshot();
  std::ofstream os(path, std::ios::binary);
  if (!os) {
    return false;
  }
  if (path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0) {
    WriteChromeTraceJson(os, file);
  } else {
    WriteTraceBinary(os, file);
  }
  // Flush and close before reporting success: on a full disk the failure
  // only surfaces when the last buffered block is written out, and the
  // destructor swallows it.
  os.flush();
  if (!os.good()) {
    return false;
  }
  os.close();
  return os.good();
}

// ---------------------------------------------------------------------------
// Binary format. "EDKS" magic, then varints throughout (the same LEB128
// primitives as the trace snapshot format): header values, the name table,
// one section per domain. Events repeat the field order of TraceEvent;
// kSim events omit the tid (it is 0 by construction).

namespace {

constexpr char kTraceMagic[4] = {'E', 'D', 'K', 'S'};
constexpr uint64_t kTraceVersion = 1;

void WriteString(std::ostream& os, const std::string& s) {
  wire::WriteVarint(os, s.size());
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

bool ReadString(std::istream& is, std::string& s) {
  uint64_t size = 0;
  if (!wire::ReadVarint(is, size) || size > (uint64_t{1} << 24)) {
    return false;
  }
  s.resize(size);
  return size == 0 ||
         static_cast<bool>(is.read(s.data(), static_cast<std::streamsize>(size)));
}

void WriteEvent(std::ostream& os, const TraceEvent& event, bool with_tid) {
  wire::WriteVarint(os, event.ts);
  wire::WriteVarint(os, event.dur);
  wire::WriteVarint(os, event.id);
  wire::WriteVarint(os, event.parent);
  wire::WriteVarint(os, event.name);
  if (with_tid) {
    wire::WriteVarint(os, event.tid);
  }
  wire::WriteVarint(os, event.arg_count);
  for (size_t i = 0; i < event.arg_count; ++i) {
    wire::WriteVarint(os, event.args[i]);
  }
}

bool ReadEvent(std::istream& is, TraceEvent& event, bool with_tid,
               TimeDomain domain) {
  uint64_t name = 0;
  uint64_t tid = 0;
  uint64_t arg_count = 0;
  if (!wire::ReadVarint(is, event.ts) || !wire::ReadVarint(is, event.dur) ||
      !wire::ReadVarint(is, event.id) || !wire::ReadVarint(is, event.parent) ||
      !wire::ReadVarint(is, name)) {
    return false;
  }
  if (with_tid && !wire::ReadVarint(is, tid)) {
    return false;
  }
  if (!wire::ReadVarint(is, arg_count) || name > 0xffff || tid > 0xffff ||
      arg_count > kTraceMaxArgs) {
    return false;
  }
  event.name = static_cast<uint16_t>(name);
  event.tid = static_cast<uint16_t>(tid);
  event.domain = domain;
  event.arg_count = static_cast<uint8_t>(arg_count);
  event.args = {};
  for (size_t i = 0; i < arg_count; ++i) {
    if (!wire::ReadVarint(is, event.args[i])) {
      return false;
    }
  }
  return true;
}

}  // namespace

void WriteTraceBinary(std::ostream& os, const TraceFile& file) {
  os.write(kTraceMagic, sizeof(kTraceMagic));
  wire::WriteVarint(os, kTraceVersion);
  wire::WriteVarint(os, file.sample_modulus);
  wire::WriteVarint(os, file.sim_dropped);
  wire::WriteVarint(os, file.wall_dropped);
  wire::WriteVarint(os, file.names.size());
  for (const TraceName& name : file.names) {
    WriteString(os, name.name);
    wire::WriteVarint(os, name.arg_names.size());
    for (const std::string& arg : name.arg_names) {
      WriteString(os, arg);
    }
  }
  wire::WriteVarint(os, file.sim_events.size());
  for (const TraceEvent& event : file.sim_events) {
    WriteEvent(os, event, /*with_tid=*/false);
  }
  wire::WriteVarint(os, file.wall_events.size());
  for (const TraceEvent& event : file.wall_events) {
    WriteEvent(os, event, /*with_tid=*/true);
  }
}

std::optional<TraceFile> ReadTraceBinary(std::istream& is) {
  char magic[4] = {};
  if (!is.read(magic, sizeof(magic)) ||
      !std::equal(magic, magic + 4, kTraceMagic)) {
    return std::nullopt;
  }
  uint64_t version = 0;
  TraceFile file;
  uint64_t name_count = 0;
  if (!wire::ReadVarint(is, version) || version != kTraceVersion ||
      !wire::ReadVarint(is, file.sample_modulus) ||
      !wire::ReadVarint(is, file.sim_dropped) ||
      !wire::ReadVarint(is, file.wall_dropped) ||
      !wire::ReadVarint(is, name_count) || name_count > 0xffff) {
    return std::nullopt;
  }
  file.names.resize(name_count);
  for (TraceName& name : file.names) {
    uint64_t arg_count = 0;
    if (!ReadString(is, name.name) || !wire::ReadVarint(is, arg_count) ||
        arg_count > kTraceMaxArgs) {
      return std::nullopt;
    }
    name.arg_names.resize(arg_count);
    for (std::string& arg : name.arg_names) {
      if (!ReadString(is, arg)) {
        return std::nullopt;
      }
    }
  }
  uint64_t sim_count = 0;
  if (!wire::ReadVarint(is, sim_count)) {
    return std::nullopt;
  }
  for (uint64_t i = 0; i < sim_count; ++i) {
    TraceEvent event;
    if (!ReadEvent(is, event, /*with_tid=*/false, TimeDomain::kSim)) {
      return std::nullopt;
    }
    file.sim_events.push_back(event);
  }
  uint64_t wall_count = 0;
  if (!wire::ReadVarint(is, wall_count)) {
    return std::nullopt;
  }
  for (uint64_t i = 0; i < wall_count; ++i) {
    TraceEvent event;
    if (!ReadEvent(is, event, /*with_tid=*/true, TimeDomain::kWall)) {
      return std::nullopt;
    }
    file.wall_events.push_back(event);
  }
  return file;
}

std::optional<TraceFile> ReadTraceBinaryFromFile(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    return std::nullopt;
  }
  return ReadTraceBinary(is);
}

// ---------------------------------------------------------------------------
// Chrome trace-event JSON. Sim spans land under pid 1 ("simulation"), one
// track per span name, with ts/dur already in the micros the format wants.
// Wall spans land under pid 2 ("wall clock"), one track per recording
// thread, rebased to the earliest wall timestamp and converted ns -> us.

namespace {

constexpr int kSimPid = 1;
constexpr int kWallPid = 2;

void WriteWallMicros(std::ostream& os, uint64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%llu.%03u",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned>(ns % 1000));
  os << buf;
}

void WriteEventJson(std::ostream& os, const TraceFile& file,
                    const TraceEvent& event, int pid, int tid,
                    uint64_t wall_base_ns) {
  const bool wall = event.domain == TimeDomain::kWall;
  const TraceName* name =
      event.name < file.names.size() ? &file.names[event.name] : nullptr;
  os << "{\"ph\":\"" << (event.dur == 0 ? 'i' : 'X') << "\",\"pid\":" << pid
     << ",\"tid\":" << tid << ",\"ts\":";
  if (wall) {
    WriteWallMicros(os, event.ts - wall_base_ns);
  } else {
    os << event.ts;
  }
  if (event.dur != 0) {
    os << ",\"dur\":";
    if (wall) {
      WriteWallMicros(os, event.dur);
    } else {
      os << event.dur;
    }
  } else {
    os << ",\"s\":\"t\"";
  }
  os << ",\"name\":";
  if (name != nullptr) {
    WriteJsonString(os, name->name);
  } else {
    os << "\"name" << event.name << "\"";
  }
  os << ",\"args\":{\"id\":" << event.id;
  if (event.parent != 0) {
    os << ",\"parent\":" << event.parent;
  }
  for (size_t i = 0; i < event.arg_count; ++i) {
    os << ",";
    if (name != nullptr && i < name->arg_names.size()) {
      WriteJsonString(os, name->arg_names[i]);
    } else {
      os << "\"arg" << i << "\"";
    }
    os << ":" << event.args[i];
  }
  os << "}}";
}

void WriteMetadataJson(std::ostream& os, int pid, int tid, const char* kind,
                       std::string_view value) {
  os << "{\"ph\":\"M\",\"pid\":" << pid;
  if (tid >= 0) {
    os << ",\"tid\":" << tid;
  }
  os << ",\"name\":\"" << kind << "\",\"args\":{\"name\":";
  WriteJsonString(os, value);
  os << "}}";
}

}  // namespace

void WriteChromeTraceJson(std::ostream& os, const TraceFile& file) {
  os << "{\"traceEvents\":[";
  bool first = true;
  auto separator = [&os, &first] {
    if (!first) {
      os << ",\n";
    }
    first = false;
  };

  separator();
  WriteMetadataJson(os, kSimPid, -1, "process_name", "simulation");
  separator();
  WriteMetadataJson(os, kWallPid, -1, "process_name", "wall clock");

  // One named track per sim span type: the deterministic timeline reads as
  // "windows", "queries", ... rather than an interleaved soup.
  std::vector<bool> sim_name_used(file.names.size(), false);
  for (const TraceEvent& event : file.sim_events) {
    if (event.name < sim_name_used.size()) {
      sim_name_used[event.name] = true;
    }
  }
  for (size_t i = 0; i < sim_name_used.size(); ++i) {
    if (sim_name_used[i]) {
      separator();
      WriteMetadataJson(os, kSimPid, static_cast<int>(i), "thread_name",
                        file.names[i].name);
    }
  }

  uint64_t wall_base_ns = 0;
  if (!file.wall_events.empty()) {
    wall_base_ns = file.wall_events.front().ts;
    for (const TraceEvent& event : file.wall_events) {
      wall_base_ns = std::min(wall_base_ns, event.ts);
    }
    std::vector<bool> tid_used;
    for (const TraceEvent& event : file.wall_events) {
      if (tid_used.size() <= event.tid) {
        tid_used.resize(event.tid + 1, false);
      }
      tid_used[event.tid] = true;
    }
    for (size_t t = 0; t < tid_used.size(); ++t) {
      if (tid_used[t]) {
        separator();
        WriteMetadataJson(os, kWallPid, static_cast<int>(t), "thread_name",
                          "thread " + std::to_string(t));
      }
    }
  }

  for (const TraceEvent& event : file.sim_events) {
    separator();
    WriteEventJson(os, file, event, kSimPid, event.name, 0);
  }
  for (const TraceEvent& event : file.wall_events) {
    separator();
    WriteEventJson(os, file, event, kWallPid, event.tid, wall_base_ns);
  }

  os << "],\n\"displayTimeUnit\":\"ms\",\"otherData\":{\"sample_modulus\":"
     << file.sample_modulus << ",\"sim_dropped\":" << file.sim_dropped
     << ",\"wall_dropped\":" << file.wall_dropped << "}}\n";
}

// ---------------------------------------------------------------------------

namespace {

std::string& TraceAtExitPath() {
  static std::string path;
  return path;
}

void DumpGlobalTrace() {
  const std::string& path = TraceAtExitPath();
  if (!path.empty()) {
    TraceLog::Global().WriteToFile(path);
  }
}

}  // namespace

void WriteGlobalTraceAtExit(std::string path) {
  static bool registered = false;
  TraceAtExitPath() = std::move(path);
  if (!registered) {
    registered = true;
    // Same atexit-ordering discipline as WriteGlobalMetricsAtExit: the log
    // (and the path string) must be constructed before the handler is
    // registered so they are destroyed after it runs.
    TraceLog::Global();
    std::atexit(&DumpGlobalTrace);
  }
}

}  // namespace edk::obs
