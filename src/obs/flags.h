// Shared command-line plumbing for the observability sinks.
//
// Every binary that wants --metrics-out / --trace-out / --trace-sample
// parses them through ConsumeObsFlag and activates them with
// ApplyObsFlags, so the flags mean exactly the same thing in every bench
// and tool (bench_common's ParseBenchOptions, bench_micro's hand-rolled
// argv loop, edk-trace, edk-trace-inspect). This replaces the per-binary
// copies of the --metrics-out handling.

#ifndef SRC_OBS_FLAGS_H_
#define SRC_OBS_FLAGS_H_

#include <cstdint>
#include <string>

namespace edk::obs {

struct ObsFlagValues {
  // JSON metrics snapshot written at process exit ("" = disabled).
  std::string metrics_out;
  // Trace written at process exit: Chrome trace JSON if the path ends in
  // ".json", the EDKS binary otherwise ("" = tracing stays disabled).
  std::string trace_out;
  // Keep 1-in-N sampled records (audit records, per-peer net spans);
  // engine-level spans are never sampled out. 1 = keep everything.
  uint64_t trace_sample = 1;
};

// If `arg` is one of the observability flags, stores its value and
// returns true; returns false otherwise (caller handles the flag).
// A malformed value (--trace-sample=0) is normalised to the default.
bool ConsumeObsFlag(const char* arg, ObsFlagValues* values);

// Activates the parsed flags: registers the metrics exit dump, and — when
// trace_out is set — configures sampling, enables the global TraceLog and
// registers the trace exit dump.
void ApplyObsFlags(const ObsFlagValues& values);

// Usage-string fragment listing the flags ConsumeObsFlag understands.
const char* ObsFlagsUsage();

}  // namespace edk::obs

#endif  // SRC_OBS_FLAGS_H_
