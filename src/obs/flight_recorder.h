// Per-thread bounded event ring ("flight recorder") backing TraceLog.
//
// Each recording thread owns one FlightRecorder; TraceLog hands a thread
// its recorder once and the thread appends without touching any other
// thread's buffer. The ring keeps the NEWEST `capacity` events: once full,
// every append overwrites the oldest retained event and bumps a per-domain
// drop counter. Storage grows lazily up to the capacity, so an idle thread
// costs nothing and a short run never allocates the full ring.
//
// Dropping interacts with the determinism contract (see trace_log.h): the
// deterministic span stream is only guaranteed bit-identical across
// partitionings while no kSim event was dropped, which is why the drop
// counters are exported per domain — a snapshot with sim_dropped == 0 is
// provably complete.
//
// Thread safety: Append() and Collect() take the recorder's own mutex. The
// mutex is uncontended on the hot path (only the owning thread appends);
// it exists so a snapshot from another thread (end-of-run export, tests)
// reads a consistent ring, including under TSan.

#ifndef SRC_OBS_FLIGHT_RECORDER_H_
#define SRC_OBS_FLIGHT_RECORDER_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace edk::obs {

enum class TimeDomain : uint8_t {
  // Stamped with simulation time (or a deterministic ordinal): a pure
  // function of (seed, workload) — bit-identical for any partitioning.
  kSim = 0,
  // Stamped with the steady wall clock: profiling data, varies run to run.
  kWall = 1,
};

inline constexpr size_t kTraceMaxArgs = 8;

// One structured trace record. POD by design: events are copied into the
// ring, sorted during snapshots and round-tripped through the binary
// format, so everything is a fixed-width integer. Interpretation of `ts`
// and `dur` depends on the domain: kSim uses microseconds of simulation
// time (or a deterministic ordinal for instants), kWall uses nanoseconds
// of the steady clock.
struct TraceEvent {
  uint64_t ts = 0;
  uint64_t dur = 0;  // 0 = instant event.
  uint64_t id = 0;   // Span id; content-derived, never a global counter.
  uint64_t parent = 0;  // Causal parent span id; 0 = root.
  std::array<uint64_t, kTraceMaxArgs> args{};
  uint16_t name = 0;  // Index into the TraceLog name table.
  uint16_t tid = 0;   // Recording-thread slot; forced to 0 for kSim events.
  TimeDomain domain = TimeDomain::kSim;
  uint8_t arg_count = 0;

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

class FlightRecorder {
 public:
  explicit FlightRecorder(size_t capacity);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // Appends one event, overwriting the oldest retained event when the ring
  // is full (the overwrite is counted in dropped(event.domain)).
  void Append(const TraceEvent& event);

  // Copies the retained events, oldest first, onto the end of `out`.
  void Collect(std::vector<TraceEvent>* out) const;

  // Events overwritten so far, per time domain.
  uint64_t dropped(TimeDomain domain) const;

  size_t size() const;
  size_t capacity() const;

  // Empties the ring, zeroes the drop counters and adopts a new capacity
  // (shrinking the backing storage if it exceeds it).
  void ResetWithCapacity(size_t capacity);

 private:
  mutable std::mutex mu_;
  size_t capacity_;
  std::vector<TraceEvent> ring_;  // Grows to capacity_, then wraps.
  size_t head_ = 0;               // Next overwrite position once full.
  std::array<uint64_t, 2> dropped_{};  // Indexed by TimeDomain.
};

}  // namespace edk::obs

#endif  // SRC_OBS_FLIGHT_RECORDER_H_
