#include "src/obs/flight_recorder.h"

#include <algorithm>

namespace edk::obs {

FlightRecorder::FlightRecorder(size_t capacity)
    : capacity_(std::max<size_t>(1, capacity)) {}

void FlightRecorder::Append(const TraceEvent& event) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(event);
    return;
  }
  ++dropped_[static_cast<size_t>(ring_[head_].domain)];
  ring_[head_] = event;
  head_ = (head_ + 1) % capacity_;
}

void FlightRecorder::Collect(std::vector<TraceEvent>* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  out->reserve(out->size() + ring_.size());
  // Once the ring has wrapped, head_ points at the oldest retained event.
  for (size_t i = head_; i < ring_.size(); ++i) {
    out->push_back(ring_[i]);
  }
  for (size_t i = 0; i < head_; ++i) {
    out->push_back(ring_[i]);
  }
}

uint64_t FlightRecorder::dropped(TimeDomain domain) const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_[static_cast<size_t>(domain)];
}

size_t FlightRecorder::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

size_t FlightRecorder::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

void FlightRecorder::ResetWithCapacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = std::max<size_t>(1, capacity);
  ring_.clear();
  ring_.shrink_to_fit();
  head_ = 0;
  dropped_ = {};
}

}  // namespace edk::obs
