// edk::obs tracing — the span/flight-recorder layer.
//
// TraceLog is the process-wide structured event log that complements the
// aggregate MetricsRegistry: where a counter tells you HOW OFTEN something
// happened, a trace event tells you WHICH query, WHEN, and WHY. The design
// mirrors the metrics subsystem's two-domain split exactly:
//
//   * TimeDomain::kSim events are stamped with simulation time (or a
//     deterministic ordinal such as the query index) and carry only values
//     that are pure functions of (seed, workload). For a fixed seed the
//     snapshot's canonical sim stream is BIT-IDENTICAL for any --shards
//     and any --threads value — provided no kSim event was dropped by a
//     full ring (TraceFile::sim_dropped == 0 certifies that). Which thread
//     recorded an event is partition-dependent, so the canonical form
//     erases it: Snapshot() zeroes kSim tids, remaps name ids onto a
//     sorted name table (intern order is thread-dependent) and sorts the
//     events by their full lexicographic record order. The underlying
//     multiset of events is partition-independent; the sort makes the
//     byte stream so.
//   * TimeDomain::kWall events are stamped with the steady clock and keep
//     their recording-thread slot: profiling timelines (engine windows'
//     wall cost, barrier merges), excluded from bit-comparisons.
//
// Sampling is deterministic by construction: SampledIn(key) hashes the
// caller-supplied key (query ordinal, peer id) with SplitMix64 and keeps
// the record iff hash % modulus == 0. No RNG draw is ever consumed, so
// enabling or changing sampling cannot perturb a simulation trajectory.
//
// Recording costs one branch when disabled (a relaxed atomic load at the
// call site via TraceLog::Enabled()), and one uncontended mutex plus a
// copy into the thread's own FlightRecorder when enabled.
//
// Two export formats, chosen by file extension in WriteToFile():
//   * ".json": Chrome trace-event JSON ("traceEvents" array) — load it in
//     Perfetto (ui.perfetto.dev) or chrome://tracing. Sim spans appear as
//     one track per span name under a "simulation" process; wall spans as
//     one track per recording thread under a "wall clock" process.
//   * anything else: the compact "EDKS" binary built from the same varint
//     primitives as the trace snapshot format (src/common/varint.h),
//     readable back via ReadTraceBinary for tools and tests.

#ifndef SRC_OBS_TRACE_LOG_H_
#define SRC_OBS_TRACE_LOG_H_

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/obs/flight_recorder.h"

namespace edk::obs {

// One interned span name plus the labels of its positional args (the
// TraceEvent arg slots are unlabeled u64s; the labels live here once).
struct TraceName {
  std::string name;
  std::vector<std::string> arg_names;
};

// A materialised trace: what Snapshot() returns and what the binary format
// round-trips. Names are sorted lexicographically; sim_events are in
// canonical (fully sorted) order; wall_events are ordered (tid, ts).
struct TraceFile {
  uint64_t sample_modulus = 1;
  uint64_t sim_dropped = 0;
  uint64_t wall_dropped = 0;
  std::vector<TraceName> names;
  std::vector<TraceEvent> sim_events;
  std::vector<TraceEvent> wall_events;
};

class TraceLog {
 public:
  TraceLog(const TraceLog&) = delete;
  TraceLog& operator=(const TraceLog&) = delete;

  // The process-wide log used by library instrumentation.
  static TraceLog& Global();

  // Cheap global gate for call sites: when false, instrumentation must
  // skip all argument marshalling. Record() also checks it.
  static bool Enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }
  static void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  // Keep 1-in-N of the sampled record families (see SampledIn). 0 and 1
  // both mean "keep everything".
  static void SetSampleModulus(uint64_t modulus);
  static uint64_t sample_modulus();

  // Deterministic sampling decision for `key` (a query ordinal, peer id —
  // anything stable across partitionings). True iff tracing is enabled and
  // SplitMix64(key) falls in the kept residue class. Never draws from an
  // Rng, so sampling cannot change a simulation's trajectory.
  static bool SampledIn(uint64_t key);

  // Interns a span name with its positional arg labels; returns the id to
  // store in TraceEvent::name. Idempotent per name; at most 65535 names.
  // Call sites cache the id in a function-local static.
  uint16_t InternName(std::string_view name,
                      std::initializer_list<std::string_view> arg_names = {});

  // Appends `event` to the calling thread's ring buffer (no-op when
  // disabled). The event's tid field is assigned here.
  void Record(TraceEvent event);

  // Ring capacity, in events per recording thread, applied to new threads
  // immediately and to existing ones at the next Reset().
  void SetRingCapacity(size_t events);

  // Collects every thread's ring into canonical TraceFile form. Call once
  // writers have quiesced (after a join / at process exit): concurrent
  // recording is safe but the cut is not atomic across threads.
  TraceFile Snapshot() const;

  // Empties every ring and re-applies the configured capacity. Interned
  // names and previously returned name ids stay valid (mirroring
  // MetricsRegistry::Reset()).
  void Reset();

  // Writes Snapshot() to `path`: Chrome trace JSON if it ends in ".json",
  // the EDKS binary otherwise. Returns false on I/O failure.
  bool WriteToFile(const std::string& path) const;

 private:
  TraceLog() = default;

  FlightRecorder& RecorderForThisThread(uint16_t* tid);

  static std::atomic<bool> enabled_;
  static std::atomic<uint64_t> sample_modulus_;

  mutable std::mutex mu_;
  std::vector<TraceName> names_;
  std::vector<std::unique_ptr<FlightRecorder>> recorders_;
  size_t ring_capacity_ = size_t{1} << 20;
};

// Binary round-trip ("EDKS" magic, varint-encoded). WriteTraceBinary
// expects the canonical TraceFile form that Snapshot() produces.
void WriteTraceBinary(std::ostream& os, const TraceFile& file);
std::optional<TraceFile> ReadTraceBinary(std::istream& is);
std::optional<TraceFile> ReadTraceBinaryFromFile(const std::string& path);

// Chrome trace-event JSON (Perfetto/chrome://tracing loadable).
void WriteChromeTraceJson(std::ostream& os, const TraceFile& file);

// Registers a process-exit hook that writes Global().Snapshot() to `path`
// (the --trace-out plumbing shared by bench_common and the tools). The
// last registered path wins; an empty path disables the dump.
void WriteGlobalTraceAtExit(std::string path);

}  // namespace edk::obs

#endif  // SRC_OBS_TRACE_LOG_H_
