#include "src/obs/span.h"

#include <chrono>
#include <cmath>

namespace edk::obs {

namespace {

// SplitMix64 finaliser (Steele et al.), inlined so id mixing never touches
// generator state.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t WallNowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

thread_local uint64_t tls_current_parent = 0;

constexpr const char* kAuditNameStatic = "query.audit";
constexpr const char* kAuditNameDynamic = "query.audit.dynamic";

}  // namespace

uint64_t MixId(uint64_t a) {
  const uint64_t id = Mix(a);
  return id == 0 ? 1 : id;  // 0 is reserved for "no span".
}

uint64_t MixId2(uint64_t a, uint64_t b) { return MixId(Mix(a) ^ b); }

uint64_t CurrentSpanParent() { return tls_current_parent; }

SpanParentScope::SpanParentScope(uint64_t span_id) : saved_(tls_current_parent) {
  tls_current_parent = span_id;
}

SpanParentScope::~SpanParentScope() { tls_current_parent = saved_; }

uint64_t SimMicros(double seconds) {
  return seconds <= 0 ? 0 : static_cast<uint64_t>(std::llround(seconds * 1e6));
}

void EmitSimSpan(uint16_t name, double start_seconds, double end_seconds,
                 uint64_t id, uint64_t parent,
                 std::initializer_list<uint64_t> args) {
  if (!TraceLog::Enabled()) {
    return;
  }
  TraceEvent event;
  event.domain = TimeDomain::kSim;
  event.name = name;
  event.ts = SimMicros(start_seconds);
  const uint64_t end = SimMicros(end_seconds);
  event.dur = end > event.ts ? end - event.ts : 0;
  event.id = id;
  event.parent = parent;
  for (uint64_t arg : args) {
    if (event.arg_count >= kTraceMaxArgs) {
      break;
    }
    event.args[event.arg_count++] = arg;
  }
  TraceLog::Global().Record(event);
}

void EmitSimInstant(uint16_t name, uint64_t ts, uint64_t id, uint64_t parent,
                    std::initializer_list<uint64_t> args) {
  if (!TraceLog::Enabled()) {
    return;
  }
  TraceEvent event;
  event.domain = TimeDomain::kSim;
  event.name = name;
  event.ts = ts;
  event.id = id;
  event.parent = parent;
  for (uint64_t arg : args) {
    if (event.arg_count >= kTraceMaxArgs) {
      break;
    }
    event.args[event.arg_count++] = arg;
  }
  TraceLog::Global().Record(event);
}

WallSpan::WallSpan(uint16_t name) : active_(TraceLog::Enabled()) {
  if (!active_) {
    return;
  }
  event_.domain = TimeDomain::kWall;
  event_.name = name;
  event_.parent = CurrentSpanParent();
  event_.ts = WallNowNanos();
}

void WallSpan::AddArg(uint64_t value) {
  if (active_ && event_.arg_count < kTraceMaxArgs) {
    event_.args[event_.arg_count++] = value;
  }
}

void WallSpan::Finish() {
  if (!active_) {
    return;
  }
  active_ = false;
  const uint64_t now = WallNowNanos();
  event_.dur = now > event_.ts ? now - event_.ts : 1;
  TraceLog::Global().Record(event_);
}

WallSpan::~WallSpan() { Finish(); }

// ---------------------------------------------------------------------------
// Audit records.

const char* QueryOutcomeName(QueryOutcome outcome) {
  switch (outcome) {
    case QueryOutcome::kOneHopHit:
      return "one-hop-hit";
    case QueryOutcome::kTwoHopHit:
      return "two-hop-hit";
    case QueryOutcome::kNeighbourAbsent:
      return "neighbour-absent";
    case QueryOutcome::kCacheMiss:
      return "cache-miss";
    case QueryOutcome::kHopBudgetExhausted:
      return "hop-budget-exhausted";
    case QueryOutcome::kNoOnlineSource:
      return "no-online-source";
  }
  return "unknown";
}

namespace {

uint16_t InternAuditName(const char* name) {
  return TraceLog::Global().InternName(
      name, {"requester", "file", "outcome", "consulted", "strategy",
             "list_size", "extra"});
}

}  // namespace

uint16_t AuditName() {
  static const uint16_t name = InternAuditName(kAuditNameStatic);
  return name;
}

uint16_t DynamicAuditName() {
  static const uint16_t name = InternAuditName(kAuditNameDynamic);
  return name;
}

void EmitAudit(uint16_t name, uint64_t ordinal, uint32_t requester,
               uint32_t file, QueryOutcome outcome, uint64_t consulted,
               uint64_t strategy, uint64_t list_size, uint64_t extra) {
  if (!TraceLog::SampledIn(ordinal)) {
    return;
  }
  TraceEvent event;
  event.domain = TimeDomain::kSim;
  event.name = name;
  event.ts = ordinal;
  event.id = ordinal;
  event.args[kAuditArgRequester] = requester;
  event.args[kAuditArgFile] = file;
  event.args[kAuditArgOutcome] = static_cast<uint64_t>(outcome);
  event.args[kAuditArgConsulted] = consulted;
  event.args[kAuditArgStrategy] = strategy;
  event.args[kAuditArgListSize] = list_size;
  event.args[kAuditArgExtra] = extra;
  event.arg_count = kAuditArgCount;
  TraceLog::Global().Record(event);
}

AuditSummary SummarizeAudits(const TraceFile& file) {
  // Trace files carry their own name table; resolve the audit names by
  // string so summaries work on deserialised traces too.
  int static_name = -1;
  int dynamic_name = -1;
  for (size_t i = 0; i < file.names.size(); ++i) {
    if (file.names[i].name == kAuditNameStatic) {
      static_name = static_cast<int>(i);
    } else if (file.names[i].name == kAuditNameDynamic) {
      dynamic_name = static_cast<int>(i);
    }
  }
  AuditSummary summary;
  for (const TraceEvent& event : file.sim_events) {
    const int name = static_cast<int>(event.name);
    if ((name != static_name && name != dynamic_name) ||
        event.arg_count < kAuditArgCount) {
      continue;
    }
    const int dynamic = name == dynamic_name ? 1 : 0;
    AuditCell& cell = summary[{dynamic, event.args[kAuditArgStrategy],
                               event.args[kAuditArgListSize]}];
    ++cell.queries;
    const uint64_t outcome = event.args[kAuditArgOutcome];
    if (outcome < cell.outcomes.size()) {
      ++cell.outcomes[outcome];
    }
    if (outcome == static_cast<uint64_t>(QueryOutcome::kNoOnlineSource)) {
      continue;
    }
    ++cell.requests;
    if (outcome == static_cast<uint64_t>(QueryOutcome::kOneHopHit)) {
      ++cell.one_hop_hits;
    } else if (outcome == static_cast<uint64_t>(QueryOutcome::kTwoHopHit)) {
      ++cell.two_hop_hits;
    }
  }
  return summary;
}

}  // namespace edk::obs
