// Structured data parallelism with deterministic results (edk::exec).
//
// ParallelFor / ParallelSweep distribute independent task indices over the
// shared ThreadPool. The determinism contract is structural, not
// scheduling-based: callers write all task output into slots indexed by the
// task index and derive any randomness from TaskRng(base_seed, index), so a
// sweep produces bit-identical results for any worker count (including 1)
// and any scheduling order. The calling thread always participates in the
// work, which both keeps the serial path allocation-free and makes nested
// ParallelFor calls deadlock-free even when the pool is saturated.
//
// The simulation kernel (EventQueue) stays single-threaded; only the
// embarrassingly parallel *outer* loops — per-day analyses, per-list-size /
// per-strategy sweeps, randomisation trials — run on the pool.

#ifndef SRC_EXEC_PARALLEL_H_
#define SRC_EXEC_PARALLEL_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "src/common/rng.h"

namespace edk {

// Worker count used when ParallelFor's `threads` argument is 0. Defaults to
// the hardware concurrency; SetDefaultThreads(0) restores that. A value of
// 1 disables parallelism entirely (today's single-core behaviour).
size_t DefaultThreads();
void SetDefaultThreads(size_t threads);
size_t HardwareThreads();

// Runs fn(i) exactly once for every i in [begin, end), distributing indices
// dynamically over up to `threads` workers (0 = DefaultThreads()). Blocks
// until every index has finished. If any fn throws, indices not yet started
// are skipped and the first exception is rethrown on the calling thread
// after all in-flight indices drain. fn is invoked concurrently and must
// only touch shared state that is safe under concurrent access (typically:
// write to output slots indexed by i).
void ParallelFor(size_t begin, size_t end, const std::function<void(size_t)>& fn,
                 size_t threads = 0);

// Runs every task exactly once; same scheduling and exception contract as
// ParallelFor.
void ParallelSweep(const std::vector<std::function<void()>>& tasks, size_t threads = 0);

// Deterministic per-task seed: element `task_index` of the SplitMix64
// stream seeded at `base_seed`. Distinct indices give decorrelated seeds;
// the mapping depends only on (base_seed, task_index), never on the
// executing thread.
uint64_t TaskSeed(uint64_t base_seed, uint64_t task_index);

// Rng seeded with TaskSeed(base_seed, task_index).
Rng TaskRng(uint64_t base_seed, uint64_t task_index);

}  // namespace edk

#endif  // SRC_EXEC_PARALLEL_H_
