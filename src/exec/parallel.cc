#include "src/exec/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>

#include "src/exec/thread_pool.h"

namespace edk {

namespace {

size_t g_default_threads = 0;  // 0 = hardware concurrency.

// Shared between the calling thread and the helper jobs it submits. Held
// through a shared_ptr so a helper that starts only after the loop already
// finished (and the caller returned) still finds live state to inspect.
struct ForState {
  std::function<void(size_t)> fn;
  size_t end = 0;
  size_t total = 0;
  std::atomic<size_t> next{0};
  std::atomic<size_t> done{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex mutex;
  std::condition_variable all_done;

  // Grabs indices until the range drains. Every index is counted in `done`
  // exactly once, whether it ran, threw, or was skipped after a failure, so
  // done == total means no fn invocation is still in flight.
  void RunWorker() {
    for (;;) {
      const size_t i = next.fetch_add(1);
      if (i >= end) {
        return;
      }
      if (!failed.load()) {
        try {
          fn(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(mutex);
          if (!failed.exchange(true)) {
            error = std::current_exception();
          }
        }
      }
      if (done.fetch_add(1) + 1 == total) {
        std::lock_guard<std::mutex> lock(mutex);
        all_done.notify_all();
      }
    }
  }
};

}  // namespace

size_t HardwareThreads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

size_t DefaultThreads() {
  return g_default_threads == 0 ? HardwareThreads() : g_default_threads;
}

void SetDefaultThreads(size_t threads) { g_default_threads = threads; }

void ParallelFor(size_t begin, size_t end, const std::function<void(size_t)>& fn,
                 size_t threads) {
  if (begin >= end) {
    return;
  }
  const size_t count = end - begin;
  size_t workers = threads == 0 ? DefaultThreads() : threads;
  workers = std::min(workers, count);
  if (workers <= 1) {
    for (size_t i = begin; i < end; ++i) {
      fn(i);
    }
    return;
  }

  auto state = std::make_shared<ForState>();
  state->fn = fn;
  state->end = end;
  state->total = count;
  state->next.store(begin);

  // The caller is worker 0; only workers-1 helper jobs are submitted. A
  // helper that never gets a pool slot before the range drains exits
  // immediately on its first grab, so completion never depends on pool
  // availability — the caller alone can drain the range.
  for (size_t w = 1; w < workers; ++w) {
    ThreadPool::Shared().Submit([state] { state->RunWorker(); });
  }
  state->RunWorker();

  std::unique_lock<std::mutex> lock(state->mutex);
  state->all_done.wait(lock, [&state] { return state->done.load() >= state->total; });
  if (state->failed.load()) {
    std::rethrow_exception(state->error);
  }
}

void ParallelSweep(const std::vector<std::function<void()>>& tasks, size_t threads) {
  ParallelFor(
      0, tasks.size(), [&tasks](size_t i) { tasks[i](); }, threads);
}

uint64_t TaskSeed(uint64_t base_seed, uint64_t task_index) {
  // SplitMix64 advances its state by the golden gamma per step, so starting
  // task_index steps past base_seed and taking one output is exactly
  // "element task_index of the SplitMix64 stream seeded at base_seed".
  uint64_t state = base_seed + task_index * 0x9e3779b97f4a7c15ULL;
  return SplitMix64(state);
}

Rng TaskRng(uint64_t base_seed, uint64_t task_index) {
  return Rng(TaskSeed(base_seed, task_index));
}

}  // namespace edk
