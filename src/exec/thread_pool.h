// Fixed-size worker pool backing the structured parallel helpers in
// parallel.h. The pool itself is deliberately dumb: it runs submitted jobs
// in FIFO order on a fixed set of threads. All scheduling-independence
// guarantees (deterministic results, exception propagation, nest safety)
// live in ParallelFor, not here.

#ifndef SRC_EXEC_THREAD_POOL_H_
#define SRC_EXEC_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace edk {

class ThreadPool {
 public:
  // Spawns exactly `threads` workers (at least one).
  explicit ThreadPool(size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a job; it runs on some worker thread in submission order.
  // Jobs must not block waiting for jobs submitted after them (ParallelFor
  // upholds this by having the submitting thread participate in the work).
  void Submit(std::function<void()> job);

  size_t size() const { return workers_.size(); }

  // Process-wide pool sized to the hardware concurrency, created on first
  // use and joined at exit.
  static ThreadPool& Shared();

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<std::function<void()>> jobs_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace edk

#endif  // SRC_EXEC_THREAD_POOL_H_
