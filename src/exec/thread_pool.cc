#include "src/exec/thread_pool.h"

#include <utility>

namespace edk {

ThreadPool::ThreadPool(size_t threads) {
  if (threads == 0) {
    threads = 1;
  }
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Submit(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    jobs_.push_back(std::move(job));
  }
  wake_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stop_ || !jobs_.empty(); });
      if (jobs_.empty()) {
        return;  // stop_ set and queue drained.
      }
      job = std::move(jobs_.front());
      jobs_.pop_front();
    }
    job();
  }
}

ThreadPool& ThreadPool::Shared() {
  const unsigned hardware = std::thread::hardware_concurrency();
  static ThreadPool pool(hardware == 0 ? 1 : hardware);
  return pool;
}

}  // namespace edk
