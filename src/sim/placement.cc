#include "src/sim/placement.h"

#include <algorithm>
#include <numeric>

namespace edk::sim {

const char* PlacementPolicyName(PlacementPolicy policy) {
  switch (policy) {
    case PlacementPolicy::kRoundRobin:
      return "roundrobin";
    case PlacementPolicy::kContiguous:
      return "contiguous";
    case PlacementPolicy::kInterestClustered:
      return "interest";
  }
  return "unknown";
}

bool ParsePlacementPolicy(std::string_view text, PlacementPolicy* policy) {
  if (text == "roundrobin" || text == "round-robin") {
    *policy = PlacementPolicy::kRoundRobin;
    return true;
  }
  if (text == "contiguous") {
    *policy = PlacementPolicy::kContiguous;
    return true;
  }
  if (text == "interest" || text == "interest-clustered") {
    *policy = PlacementPolicy::kInterestClustered;
    return true;
  }
  return false;
}

Placement Placement::RoundRobin() { return Placement(); }

Placement Placement::Contiguous(uint32_t nodes) {
  Placement placement;
  if (nodes > 0) {
    placement.policy_ = PlacementPolicy::kContiguous;
    placement.nodes_ = nodes;
  }
  return placement;
}

Placement Placement::InterestClustered(std::span<const uint32_t> labels) {
  Placement placement;
  if (labels.empty()) {
    return placement;
  }
  placement.policy_ = PlacementPolicy::kInterestClustered;
  // Stable order by (label, id): same-label nodes become rank-adjacent,
  // and label order preserves any locality the label space itself has
  // (e.g. adjacent file-space buckets of one topic stay adjacent).
  std::vector<uint32_t> order(labels.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&labels](uint32_t a, uint32_t b) {
    if (labels[a] != labels[b]) {
      return labels[a] < labels[b];
    }
    return a < b;
  });
  placement.rank_.resize(labels.size());
  for (uint32_t r = 0; r < order.size(); ++r) {
    placement.rank_[order[r]] = r;
  }
  return placement;
}

}  // namespace edk::sim
