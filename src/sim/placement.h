// Node→shard placement policies for the sharded engine.
//
// The engine's determinism contract makes the partitioning a pure
// performance knob: results are bit-identical for every node→shard map,
// so the map is free to chase locality. The paper's central observation
// (peers cluster by cache overlap / interest, §4–5) says exactly where
// that locality is — co-sharding interest-clustered peers turns the
// semantic-neighbour half of every gossip exchange into an intra-shard
// message, which is what collapses the cross-shard ratio that made the
// naive round-robin partitioning regress at 8 shards (BENCH_scale.json).
//
// A Placement is a cheap id permutation, not a lookup service: ShardOf()
// is O(1) — arithmetic for the round-robin and contiguous policies, one
// array read for the interest-clustered rank table. The same Placement
// value works for any shard count, because interest clustering is
// expressed as a rank permutation (same-label nodes become rank-adjacent)
// composed with the contiguous rank→shard block map, which also keeps
// shard populations balanced to ±1 regardless of label skew.
//
// Label derivation from caches lives in src/semantic/interest_placement.h
// (this layer knows nothing about caches or topics; it only consumes
// per-node labels).

#ifndef SRC_SIM_PLACEMENT_H_
#define SRC_SIM_PLACEMENT_H_

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace edk::sim {

enum class PlacementPolicy {
  kRoundRobin,         // shard = node % K (the historical default).
  kContiguous,         // shard = node * K / N (block partition).
  kInterestClustered,  // rank permutation groups same-label nodes.
};

// Short stable name used by flags, JSON exports and log lines.
const char* PlacementPolicyName(PlacementPolicy policy);
// Parses "roundrobin"/"round-robin", "contiguous", "interest"/
// "interest-clustered". Returns false (leaving *policy untouched) on
// anything else.
bool ParsePlacementPolicy(std::string_view text, PlacementPolicy* policy);

class Placement {
 public:
  // Default-constructed placements are round-robin: node % shards.
  Placement() = default;

  static Placement RoundRobin();
  // Block partition of [0, nodes): shard = node * K / nodes. Nodes beyond
  // `nodes` fall back to round-robin.
  static Placement Contiguous(uint32_t nodes);
  // Interest clustering from per-node labels: nodes are ranked by
  // (label, id) — every label group becomes a contiguous rank range — and
  // ShardOf block-partitions the rank space. Nodes beyond labels.size()
  // fall back to round-robin.
  static Placement InterestClustered(std::span<const uint32_t> labels);

  PlacementPolicy policy() const { return policy_; }
  const char* name() const { return PlacementPolicyName(policy_); }

  // O(1) node→shard map; `shards` >= 1. Stable for the lifetime of the
  // placement (the engine caches nothing).
  size_t ShardOf(uint32_t node, size_t shards) const {
    switch (policy_) {
      case PlacementPolicy::kContiguous:
        if (node < nodes_) {
          return static_cast<size_t>(static_cast<uint64_t>(node) * shards / nodes_);
        }
        break;
      case PlacementPolicy::kInterestClustered:
        if (node < rank_.size()) {
          return static_cast<size_t>(static_cast<uint64_t>(rank_[node]) * shards /
                                     rank_.size());
        }
        break;
      case PlacementPolicy::kRoundRobin:
        break;
    }
    return node % shards;
  }

 private:
  PlacementPolicy policy_ = PlacementPolicy::kRoundRobin;
  uint32_t nodes_ = 0;          // kContiguous: the partitioned id range.
  std::vector<uint32_t> rank_;  // kInterestClustered: node -> rank.
};

}  // namespace edk::sim

#endif  // SRC_SIM_PLACEMENT_H_
