#include "src/sim/sharded_engine.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <limits>
#include <string>

#include "src/exec/parallel.h"
#include "src/obs/metrics.h"

namespace edk::sim {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr size_t kNoShard = static_cast<size_t>(-1);

// Shard currently being executed by this thread; only meaningful while the
// engine is inside a window. Used to assert that nodes schedule and send
// exclusively from their own shard (the determinism contract).
thread_local size_t tls_current_shard = kNoShard;

double Seconds(std::chrono::steady_clock::duration d) {
  return std::chrono::duration_cast<std::chrono::duration<double>>(d).count();
}

}  // namespace

ShardedEngine::ShardedEngine(ShardedEngineConfig config) : config_(config) {
  if (config_.shards == 0) {
    config_.shards = 1;
  }
  assert(config_.lookahead > 0 && "conservative lookahead must be positive");
  shards_ = std::vector<Shard>(config_.shards);
  for (Shard& shard : shards_) {
    shard.outbox.resize(config_.shards);
    // Shard queues report through the engine's sim.* metrics; the
    // per-queue eventq.* totals would depend on the partitioning.
    shard.queue.set_metrics_enabled(false);
  }
  obs::MetricsRegistry::Global()
      .GetGauge("sim.window_width_micros")
      .Set(static_cast<int64_t>(config_.lookahead * 1e6));
}

void ShardedEngine::EnsureNodes(uint32_t count) {
  assert(!running_);
  while (node_rngs_.size() < count) {
    node_rngs_.push_back(TaskRng(config_.seed, node_rngs_.size()));
    node_send_seq_.push_back(0);
  }
}

double ShardedEngine::NodeNow(uint32_t node) const {
  return shards_[shard_of(node)].queue.now();
}

EventQueue::EventHandle ShardedEngine::ScheduleOn(uint32_t node, double delay,
                                                  EventQueue::Callback fn) {
  assert(node < node_count());
  const size_t shard = shard_of(node);
  assert((!running_ || tls_current_shard == shard) &&
         "ScheduleOn must run on the node's own shard");
  return shards_[shard].queue.Schedule(delay, std::move(fn));
}

void ShardedEngine::Send(uint32_t src, uint32_t dst, double delay,
                         EventQueue::Callback fn) {
  assert(src < node_count() && dst < node_count());
  assert(delay >= config_.lookahead && "Send below the conservative lookahead");
  // Release builds clamp rather than violate the window invariant: a
  // too-small delay would let a message arrive inside the window that sent
  // it, after its shard already drained that interval.
  if (delay < config_.lookahead) {
    delay = config_.lookahead;
  }
  const size_t src_shard = shard_of(src);
  assert((!running_ || tls_current_shard == src_shard) &&
         "Send must run on the sender's own shard");
  Shard& shard = shards_[src_shard];
  const size_t dst_shard = shard_of(dst);
  shard.outbox[dst_shard].push_back(
      Message{shard.queue.now() + delay, src, node_send_seq_[src]++, std::move(fn)});
  ++shard.messages;
  if (dst_shard != src_shard) {
    ++shard.cross_messages;
  }
}

bool ShardedEngine::AnyOutboxPending() const {
  for (const Shard& shard : shards_) {
    for (const auto& box : shard.outbox) {
      if (!box.empty()) {
        return true;
      }
    }
  }
  return false;
}

void ShardedEngine::MergeMailboxes() {
  if (!AnyOutboxPending()) {
    return;
  }
  const size_t shard_count = shards_.size();
  // Each destination drains its own column of the mailbox matrix: the
  // destination worker reads what source workers wrote last window, with
  // the ParallelFor fork/join barrier ordering the two phases.
  ParallelFor(
      0, shard_count,
      [this, shard_count](size_t dst) {
        Shard& to = shards_[dst];
        auto& scratch = to.merge_scratch;
        scratch.clear();
        for (size_t src = 0; src < shard_count; ++src) {
          auto& box = shards_[src].outbox[dst];
          for (Message& message : box) {
            scratch.push_back(std::move(message));
          }
          box.clear();
        }
        if (scratch.empty()) {
          return;
        }
        // (time, src, seq) is a total order (src+seq is unique), and the
        // FIFO tiebreak of ScheduleAt preserves it for same-time arrivals:
        // the destination observes messages in a partition-independent
        // order.
        std::sort(scratch.begin(), scratch.end(),
                  [](const Message& a, const Message& b) {
                    if (a.time != b.time) {
                      return a.time < b.time;
                    }
                    if (a.src != b.src) {
                      return a.src < b.src;
                    }
                    return a.seq < b.seq;
                  });
        for (Message& message : scratch) {
          to.queue.ScheduleAt(message.time, std::move(message.fn));
        }
        scratch.clear();
      },
      config_.threads);
}

double ShardedEngine::NextEventTime() {
  double next = kInf;
  for (Shard& shard : shards_) {
    double when;
    if (shard.queue.PeekNextTime(&when)) {
      next = std::min(next, when);
    }
  }
  return next;
}

uint64_t ShardedEngine::RunUntil(double until) {
  const size_t shard_count = shards_.size();
  const uint64_t events_before = events_executed();
  const uint64_t windows_before = windows_;
  std::vector<uint64_t> shard_events_before(shard_count);
  for (size_t k = 0; k < shard_count; ++k) {
    shard_events_before[k] = shards_[k].executed;
  }

  const auto loop_start = std::chrono::steady_clock::now();
  double stall_seconds = 0;
  std::vector<double> window_busy(shard_count);

  running_ = true;
  for (;;) {
    // Loop-top merge hands setup-time sends and last window's mailboxes to
    // their destination queues before the next window is chosen.
    MergeMailboxes();
    const double window_start = NextEventTime();
    // kInf means every queue is empty (drained); the second clause stops a
    // finite horizon. Checked separately because inf <= inf holds.
    if (window_start == kInf || !(window_start <= until)) {
      break;
    }
    const double window_end = std::min(window_start + config_.lookahead, until);
    ParallelFor(
        0, shard_count,
        [this, window_end, &window_busy](size_t k) {
          const auto start = std::chrono::steady_clock::now();
          tls_current_shard = k;
          shards_[k].executed += shards_[k].queue.RunUntil(window_end);
          tls_current_shard = kNoShard;
          window_busy[k] = Seconds(std::chrono::steady_clock::now() - start);
        },
        config_.threads);
    ++windows_;
    const double max_busy = *std::max_element(window_busy.begin(), window_busy.end());
    for (double busy : window_busy) {
      stall_seconds += max_busy - busy;
    }
  }
  running_ = false;

  if (std::isfinite(until)) {
    // No event at or before `until` remains; align every shard clock.
    for (Shard& shard : shards_) {
      shard.queue.RunUntil(until);
    }
  }

  // Metrics flush (single-threaded): counter deltas fold commutatively, so
  // the deterministic totals are identical for any shard/thread count;
  // everything partitioning- or wall-dependent goes to the env domain.
  auto& registry = obs::MetricsRegistry::Global();
  const uint64_t executed = events_executed() - events_before;
  registry.GetCounter("sim.events_run").Increment(executed);
  registry.GetCounter("sim.windows_run").Increment(windows_ - windows_before);
  const uint64_t messages = messages_sent();
  const uint64_t cross = cross_shard_messages();
  registry.GetCounter("sim.messages_total").Increment(messages - messages_reported_);
  registry.GetCounter("sim.cross_shard_messages", obs::Domain::kEnv)
      .Increment(cross - cross_reported_);
  messages_reported_ = messages;
  cross_reported_ = cross;
  for (size_t k = 0; k < shard_count; ++k) {
    registry.GetCounter("sim.shard" + std::to_string(k) + ".events", obs::Domain::kEnv)
        .Increment(shards_[k].executed - shard_events_before[k]);
  }
  if (windows_ != windows_before) {
    registry.RecordWallSeconds("sim.window_loop",
                               Seconds(std::chrono::steady_clock::now() - loop_start));
    registry.RecordWallSeconds("sim.barrier_stall", stall_seconds);
  }
  return executed;
}

uint64_t ShardedEngine::Run() { return RunUntil(kInf); }

double ShardedEngine::now() const { return shards_[0].queue.now(); }

uint64_t ShardedEngine::events_executed() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.executed;
  }
  return total;
}

uint64_t ShardedEngine::messages_sent() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.messages;
  }
  return total;
}

uint64_t ShardedEngine::cross_shard_messages() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.cross_messages;
  }
  return total;
}

uint64_t ShardedEngine::windows_run() const { return windows_; }

}  // namespace edk::sim
