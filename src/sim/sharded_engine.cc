#include "src/sim/sharded_engine.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <limits>
#include <string>

#include "src/common/log.h"
#include "src/exec/parallel.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"
#include "src/obs/trace_log.h"

namespace edk::sim {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr size_t kNoShard = static_cast<size_t>(-1);

// Trace span names (interned once; ids are stable for the process).
// sim.window and sim.barrier are deterministic — their timestamps, ids
// and args are functions of the global event timeline only. The wall
// spans profile the same structure in real time and stay in the kWall
// domain because their durations (and the per-destination merge split)
// depend on the partitioning.
struct EngineTraceNames {
  uint16_t window;         // kSim: one span per window.
  uint16_t barrier;        // kSim: one instant per non-empty barrier merge.
  uint16_t window_wall;    // kWall: the window's real drain time.
  uint16_t barrier_merge;  // kWall: the whole barrier merge.
  uint16_t mailbox_flush;  // kWall: one destination's merge share.
  uint16_t shard_drain;    // kWall: one shard's share of a window.
};

const EngineTraceNames& TraceNames() {
  auto& log = obs::TraceLog::Global();
  static const EngineTraceNames names{
      log.InternName("sim.window", {"index", "events"}),
      log.InternName("sim.barrier", {"index", "merged"}),
      log.InternName("sim.window.wall", {"index", "events"}),
      log.InternName("sim.barrier_merge", {"index", "merged"}),
      log.InternName("sim.mailbox_flush", {"dst_shard", "merged"}),
      log.InternName("sim.shard_drain", {"shard", "events"}),
  };
  return names;
}

// Salts keeping content-derived ids of different span kinds apart.
constexpr uint64_t kWindowIdSalt = 0x77696e646f77ULL;   // "window"
constexpr uint64_t kBarrierIdSalt = 0x62617272ULL;      // "barr"

// Shard currently being executed by this thread; only meaningful while the
// engine is inside a window. Used to assert that nodes schedule and send
// exclusively from their own shard (the determinism contract).
thread_local size_t tls_current_shard = kNoShard;

double Seconds(std::chrono::steady_clock::duration d) {
  return std::chrono::duration_cast<std::chrono::duration<double>>(d).count();
}

}  // namespace

ShardedEngine::ShardedEngine(ShardedEngineConfig config)
    : config_(std::move(config)) {
  if (config_.shards == 0) {
    config_.shards = 1;
  }
  assert(config_.lookahead > 0 && "conservative lookahead must be positive");
  window_width_ = config_.lookahead;
  shards_ = std::vector<Shard>(config_.shards);
  for (Shard& shard : shards_) {
    shard.outbox.resize(config_.shards);
    // Shard queues report through the engine's sim.* metrics; the
    // per-queue eventq.* totals would depend on the partitioning.
    shard.queue.set_metrics_enabled(false);
  }
  obs::MetricsRegistry::Global()
      .GetGauge("sim.window_width_micros")
      .Set(static_cast<int64_t>(window_width_ * 1e6));
}

void ShardedEngine::EnsureNodes(uint32_t count) {
  assert(!running_);
  while (node_rngs_.size() < count) {
    node_rngs_.push_back(TaskRng(config_.seed, node_rngs_.size()));
    node_send_seq_.push_back(0);
  }
}

double ShardedEngine::NodeNow(uint32_t node) const {
  return shards_[shard_of(node)].queue.now();
}

EventQueue::EventHandle ShardedEngine::ScheduleOn(uint32_t node, double delay,
                                                  EventQueue::Callback fn) {
  assert(node < node_count());
  const size_t shard = shard_of(node);
  assert((!running_ || tls_current_shard == shard) &&
         "ScheduleOn must run on the node's own shard");
  return shards_[shard].queue.Schedule(delay, std::move(fn));
}

void ShardedEngine::Send(uint32_t src, uint32_t dst, double delay,
                         EventQueue::Callback fn) {
  assert(src < node_count() && dst < node_count());
  const size_t src_shard = shard_of(src);
  assert((!running_ || tls_current_shard == src_shard) &&
         "Send must run on the sender's own shard");
  Shard& shard = shards_[src_shard];
  // The conservative invariant: no message may undercut the lookahead, or
  // it could arrive inside the window that sent it, after its shard
  // already drained that interval. Debug and release builds agree on the
  // behaviour — clamp, count, and warn once — so a scenario that is
  // "valid" in one build cannot silently disagree in the other; the
  // deterministic sim.clamped_sends counter makes the violation visible.
  if (delay < config_.lookahead) {
    ++shard.clamped;
    if (!clamp_warned_.exchange(true, std::memory_order_relaxed)) {
      Log(LogLevel::kWarning)
          << "sim: Send delay " << delay << "s below the conservative lookahead "
          << config_.lookahead << "s; clamping (counted in sim.clamped_sends)";
    }
    delay = config_.lookahead;
  }
  shard.min_send_delay = std::min(shard.min_send_delay, delay);
  double arrival = shard.queue.now() + delay;
  if (running_ && arrival < window_end_) {
    // Adaptive widening let this window outgrow the send's delay: the
    // destination may already have drained past the natural arrival, so
    // the message is deferred to the barrier. Window ends are
    // deterministic, hence so is the deferred arrival time.
    arrival = window_end_;
    ++shard.deferred;
  }
  const size_t dst_shard = shard_of(dst);
  shard.outbox[dst_shard].push_back(
      Message{arrival, src, node_send_seq_[src]++, std::move(fn)});
  ++shard.messages;
  if (dst_shard != src_shard) {
    ++shard.cross_messages;
  }
}

bool ShardedEngine::AnyOutboxPending() const {
  for (const Shard& shard : shards_) {
    for (const auto& box : shard.outbox) {
      if (!box.empty()) {
        return true;
      }
    }
  }
  return false;
}

bool ShardedEngine::MessageBefore(const Message& a, const Message& b) {
  if (a.time != b.time) {
    return a.time < b.time;
  }
  if (a.src != b.src) {
    return a.src < b.src;
  }
  return a.seq < b.seq;
}

void ShardedEngine::SortOutboxRuns() {
  ParallelFor(
      0, shards_.size(),
      [this](size_t src) {
        for (auto& box : shards_[src].outbox) {
          std::sort(box.begin(), box.end(), MessageBefore);
        }
      },
      config_.threads);
}

size_t ShardedEngine::MergeMailboxes() {
  if (!AnyOutboxPending()) {
    return 0;
  }
  const size_t shard_count = shards_.size();
  const bool tracing = obs::TraceLog::Enabled();
  obs::WallSpan merge_span(tracing ? TraceNames().barrier_merge : 0);
  std::vector<size_t> merged_per_dst(shard_count, 0);
  // Each destination drains its own column of the mailbox matrix: the
  // destination worker reads what source workers wrote (and pre-sorted)
  // last window, with the ParallelFor fork/join barrier ordering the two
  // phases. (time, src, seq) is a total order (src+seq is unique), every
  // run arrives sorted by it, and the FIFO tiebreak of ScheduleAt
  // preserves it for same-time arrivals: the destination observes its
  // messages in a partition-independent order at k-way-merge cost
  // (O(M log K) versus the old concat-then-sort O(M log M)).
  ParallelFor(
      0, shard_count,
      [this, shard_count, tracing, &merged_per_dst](size_t dst) {
        obs::WallSpan flush_span(tracing ? TraceNames().mailbox_flush : 0);
        Shard& to = shards_[dst];
        // Gather this destination's non-empty runs.
        std::vector<std::vector<Message>*> runs;
        runs.reserve(shard_count);
        size_t total = 0;
        for (size_t src = 0; src < shard_count; ++src) {
          auto& box = shards_[src].outbox[dst];
          if (!box.empty()) {
            total += box.size();
            runs.push_back(&box);
          }
        }
        merged_per_dst[dst] = total;
        if (total == 0) {
          flush_span.Cancel();
          return;
        }
        flush_span.AddArg(dst);
        flush_span.AddArg(total);
        if (runs.size() == 1) {
          for (Message& message : *runs.front()) {
            to.queue.ScheduleAt(message.time, std::move(message.fn));
          }
        } else {
          // Min-heap over the run heads; pop-advance-reheap is
          // O(M log K) with K = live runs.
          std::vector<size_t> pos(runs.size(), 0);
          std::vector<size_t> heap(runs.size());
          for (size_t r = 0; r < runs.size(); ++r) {
            heap[r] = r;
          }
          const auto later = [&runs, &pos](size_t a, size_t b) {
            return MessageBefore((*runs[b])[pos[b]], (*runs[a])[pos[a]]);
          };
          std::make_heap(heap.begin(), heap.end(), later);
          while (!heap.empty()) {
            std::pop_heap(heap.begin(), heap.end(), later);
            const size_t r = heap.back();
            Message& message = (*runs[r])[pos[r]];
            to.queue.ScheduleAt(message.time, std::move(message.fn));
            if (++pos[r] < runs[r]->size()) {
              std::push_heap(heap.begin(), heap.end(), later);
            } else {
              heap.pop_back();
            }
          }
        }
        for (auto* box : runs) {
          box->clear();
        }
      },
      config_.threads);
  size_t merged = 0;
  for (size_t count : merged_per_dst) {
    merged += count;
  }
  if (merged == 0) {
    merge_span.Cancel();
  } else {
    merge_span.AddArg(windows_);
    merge_span.AddArg(merged);
  }
  return merged;
}

double ShardedEngine::NextEventTime() {
  double next = kInf;
  for (Shard& shard : shards_) {
    double when;
    if (shard.queue.PeekNextTime(&when)) {
      next = std::min(next, when);
    }
  }
  return next;
}

uint64_t ShardedEngine::RunUntil(double until) {
  const size_t shard_count = shards_.size();
  const uint64_t events_before = events_executed();
  const uint64_t windows_before = windows_;
  std::vector<uint64_t> shard_events_before(shard_count);
  for (size_t k = 0; k < shard_count; ++k) {
    shard_events_before[k] = shards_[k].executed;
  }

  const auto loop_start = std::chrono::steady_clock::now();
  double stall_seconds = 0;
  std::vector<double> shard_stall(shard_count, 0.0);
  std::vector<double> window_busy(shard_count);

  const bool tracing = obs::TraceLog::Enabled();
  std::vector<uint64_t> window_executed(shard_count);

  // Setup-time sends were buffered outside any window; sort them into
  // runs so the first barrier's k-way merge sees sorted input (windowed
  // sends are sorted by their own worker at the end of each drain).
  SortOutboxRuns();
  // Adaptive widening never exceeds the configured cap and never dips
  // below the conservative lookahead.
  const bool adaptive = config_.max_window > config_.lookahead;

  running_ = true;
  for (;;) {
    // Loop-top merge hands setup-time sends and last window's mailboxes to
    // their destination queues before the next window is chosen.
    const size_t merged = MergeMailboxes();
    const double window_start = NextEventTime();
    if (tracing && merged > 0) {
      // Every send is buffered until the barrier, so the merged total (and
      // the barrier's position on the window timeline) is deterministic —
      // only the per-destination split depends on the partitioning.
      obs::EmitSimInstant(TraceNames().barrier, obs::SimMicros(window_start),
                          obs::MixId2(kBarrierIdSalt, windows_), 0,
                          {windows_, merged});
    }
    // kInf means every queue is empty (drained); the second clause stops a
    // finite horizon. Checked separately because inf <= inf holds.
    if (window_start == kInf || !(window_start <= until)) {
      break;
    }
    const double window_end = std::min(window_start + window_width_, until);
    window_end_ = window_end;
    obs::WallSpan window_span(tracing ? TraceNames().window_wall : 0);
    ParallelFor(
        0, shard_count,
        [this, window_end, tracing, &window_busy, &window_executed](size_t k) {
          obs::WallSpan drain_span(tracing ? TraceNames().shard_drain : 0);
          const auto start = std::chrono::steady_clock::now();
          tls_current_shard = k;
          shards_[k].min_send_delay = kInf;
          const uint64_t executed = shards_[k].queue.RunUntil(window_end);
          shards_[k].executed += executed;
          // Pre-sort this shard's outgoing runs while the pool is hot:
          // the destination's barrier merge then only pays O(M log K).
          for (auto& box : shards_[k].outbox) {
            std::sort(box.begin(), box.end(), MessageBefore);
          }
          tls_current_shard = kNoShard;
          window_busy[k] = Seconds(std::chrono::steady_clock::now() - start);
          window_executed[k] = executed;
          if (executed == 0) {
            drain_span.Cancel();
          } else {
            drain_span.AddArg(k);
            drain_span.AddArg(executed);
          }
        },
        config_.threads);
    if (tracing) {
      uint64_t events_in_window = 0;
      for (uint64_t executed : window_executed) {
        events_in_window += executed;
      }
      window_span.AddArg(windows_);
      window_span.AddArg(events_in_window);
      window_span.Finish();
      // The deterministic twin of the wall span: window boundaries and the
      // events-per-window total are partition-independent.
      obs::EmitSimSpan(TraceNames().window, window_start, window_end,
                       obs::MixId2(kWindowIdSalt, windows_), 0,
                       {windows_, events_in_window});
    }
    ++windows_;
    if (adaptive) {
      // The window's send multiset is partition-independent, so the
      // observed slack (its minimum delay) — and therefore the whole
      // width trajectory — is deterministic. No sends leaves the width
      // untouched.
      double observed = kInf;
      for (const Shard& shard : shards_) {
        observed = std::min(observed, shard.min_send_delay);
      }
      if (std::isfinite(observed)) {
        window_width_ =
            std::clamp(observed, config_.lookahead, config_.max_window);
      }
    }
    const double max_busy = *std::max_element(window_busy.begin(), window_busy.end());
    for (size_t k = 0; k < shard_count; ++k) {
      const double stall = max_busy - window_busy[k];
      shard_stall[k] += stall;
      stall_seconds += stall;
    }
  }
  running_ = false;

  // Align every shard clock to the engine-wide horizon: the caller's
  // `until` for a finite run, the global drain time for an infinite one
  // (the maximum any shard reached — NOT shard 0's clock, which may sit
  // earlier when the final events lived elsewhere).
  double horizon = until;
  if (!std::isfinite(until)) {
    horizon = now_;
    for (const Shard& shard : shards_) {
      horizon = std::max(horizon, shard.queue.now());
    }
  }
  for (Shard& shard : shards_) {
    shard.queue.RunUntil(horizon);
  }
  now_ = std::max(now_, horizon);

  // Metrics flush (single-threaded): counter deltas fold commutatively, so
  // the deterministic totals are identical for any shard/thread count;
  // everything partitioning- or wall-dependent goes to the env domain.
  auto& registry = obs::MetricsRegistry::Global();
  const uint64_t executed = events_executed() - events_before;
  registry.GetCounter("sim.events_run").Increment(executed);
  registry.GetCounter("sim.windows_run").Increment(windows_ - windows_before);
  const uint64_t messages = messages_sent();
  const uint64_t cross = cross_shard_messages();
  const uint64_t clamped = clamped_sends();
  const uint64_t deferred = deferred_sends();
  registry.GetCounter("sim.messages_total").Increment(messages - messages_reported_);
  registry.GetCounter("sim.clamped_sends").Increment(clamped - clamped_reported_);
  registry.GetCounter("sim.window_deferred_sends")
      .Increment(deferred - deferred_reported_);
  registry.GetCounter("sim.cross_shard_messages", obs::Domain::kEnv)
      .Increment(cross - cross_reported_);
  messages_reported_ = messages;
  cross_reported_ = cross;
  clamped_reported_ = clamped;
  deferred_reported_ = deferred;
  registry.GetGauge("sim.window_width_micros")
      .Set(static_cast<int64_t>(window_width_ * 1e6));
  for (size_t k = 0; k < shard_count; ++k) {
    registry.GetCounter("sim.shard" + std::to_string(k) + ".events", obs::Domain::kEnv)
        .Increment(shards_[k].executed - shard_events_before[k]);
  }
  if (windows_ != windows_before) {
    registry.RecordWallSeconds("sim.window_loop",
                               Seconds(std::chrono::steady_clock::now() - loop_start));
    registry.RecordWallSeconds("sim.barrier_stall", stall_seconds);
    // Per-shard share of the barrier imbalance: which shard the others
    // wait for. Wall domain — the split depends on the partitioning and
    // the machine.
    for (size_t k = 0; k < shard_count; ++k) {
      registry.RecordWallSeconds("sim.shard" + std::to_string(k) + ".barrier_stall",
                                 shard_stall[k]);
    }
  }
  return executed;
}

uint64_t ShardedEngine::Run() { return RunUntil(kInf); }

uint64_t ShardedEngine::events_executed() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.executed;
  }
  return total;
}

uint64_t ShardedEngine::messages_sent() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.messages;
  }
  return total;
}

uint64_t ShardedEngine::cross_shard_messages() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.cross_messages;
  }
  return total;
}

uint64_t ShardedEngine::clamped_sends() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.clamped;
  }
  return total;
}

uint64_t ShardedEngine::deferred_sends() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.deferred;
  }
  return total;
}

uint64_t ShardedEngine::windows_run() const { return windows_; }

}  // namespace edk::sim
