// edk::sim — sharded conservative parallel discrete-event engine.
//
// The single-threaded EventQueue caps simulations at a small fraction of
// the network the paper measured (1.16 M distinct peers). ShardedEngine
// partitions nodes across K shards — each with its own EventQueue and its
// own clock — and executes them in bounded time windows on the edk_exec
// ThreadPool. The window width starts at the conservative lookahead L:
// the minimum one-way delay any message can have (LatencyModel::MinDelay()
// for the network fabric). Because every Send() takes at least L of
// simulated time, a message sent anywhere inside the window [t, t+L]
// arrives at or beyond the next window's start, so shards never need to
// interrupt each other mid-window: cross-shard (and intra-shard) sends are
// buffered into per-(src,dst) mailboxes and merged at the window barrier.
//
// Node→shard placement is a policy (src/sim/placement.h): round-robin,
// contiguous, or interest-clustered. Placement is a pure performance knob
// — see the determinism contract below — that trades cross-shard traffic
// for locality; the cross_shard_messages() counter measures it.
//
// Determinism contract — results are bit-identical for ANY shard count,
// ANY placement and ANY worker thread count (the same invariant edk_exec
// established for the analysis kernels):
//
//   * Node state is only touched by that node's own events, and every
//     random draw a node makes comes from its own SplitMix64-derived
//     stream (NodeRng), so cross-node interleaving inside a window cannot
//     change behaviour. Shared instrumentation folds with commutative
//     operations only (see src/obs).
//   * Window boundaries are a function of the global next-event time and
//     the window width — and the width itself evolves only from the
//     deterministic send history (see "adaptive windows" below) — so they
//     are identical for every partitioning.
//   * Mailboxes are merged at the barrier in (arrival time, sending node,
//     per-sender sequence) order, and EventQueue's FIFO tiebreak for
//     same-time events preserves that order, so each node observes its
//     incoming messages in a partition-independent order.
//
// Adaptive windows (config.max_window > lookahead): after each window the
// engine folds the minimum delay requested by that window's sends — the
// observed lookahead slack — and widens (or narrows) the next window to
// it, clamped to [lookahead, max_window]. The send multiset of a window
// is partition-independent, so the width trajectory is too. A send whose
// arrival would land inside its own window (its delay undercuts the
// widened width) is deferred to the window barrier — a deterministic
// clamp counted in deferred_sends() / the sim.window_deferred_sends
// counter. With max_window == 0 (the default) the width is pinned to the
// lookahead and no send is ever deferred: arrival times are exact.
//
// The engine deliberately knows nothing about SimNode/protocols: nodes
// are dense uint32 ids. SimNetwork wires it to the latency model and the
// node table (src/net/network.h).

#ifndef SRC_SIM_SHARDED_ENGINE_H_
#define SRC_SIM_SHARDED_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/net/event_queue.h"
#include "src/sim/placement.h"

namespace edk::sim {

struct ShardedEngineConfig {
  // Number of shards K (>= 1). `placement` maps nodes to shards;
  // determinism never depends on the mapping.
  size_t shards = 1;
  // Node→shard placement policy (default round-robin: node % K).
  Placement placement;
  // Worker threads driving the shards each window (0 = DefaultThreads()).
  size_t threads = 0;
  // Base seed of the per-node SplitMix64-derived RNG streams.
  uint64_t seed = 1;
  // Conservative lookahead: the minimum window width, and the minimum
  // delay every Send() must respect (smaller delays are clamped up and
  // counted — see clamped_sends()). Must be > 0. SimNetwork passes
  // LatencyModel::MinDelay().
  double lookahead = 0.010;
  // Upper bound for adaptive window widening (see the header comment).
  // <= lookahead (including the default 0) disables adaptation: every
  // window is exactly `lookahead` wide and arrivals are never deferred.
  double max_window = 0;
};

class ShardedEngine {
 public:
  explicit ShardedEngine(ShardedEngineConfig config);

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  size_t shard_count() const { return shards_.size(); }
  size_t shard_of(uint32_t node) const {
    return config_.placement.ShardOf(node, shards_.size());
  }
  double lookahead() const { return config_.lookahead; }
  // Current window width: lookahead unless adaptive widening is on.
  double window_width() const { return window_width_; }

  // Grows the node table so ids [0, count) are valid. Each node gets an
  // independent RNG stream seeded TaskSeed(config.seed, node).
  void EnsureNodes(uint32_t count);
  uint32_t node_count() const { return static_cast<uint32_t>(node_rngs_.size()); }

  // The node's private random stream. Draws must happen either during
  // setup (single-threaded) or from the node's own events; the stream's
  // trajectory is then independent of the partitioning.
  Rng& NodeRng(uint32_t node) { return node_rngs_[node]; }

  // The owning shard's clock. Inside one of the node's events this is the
  // event's timestamp; between Run calls all shard clocks agree (they are
  // aligned to now() when a Run/RunUntil returns).
  double NodeNow(uint32_t node) const;

  // Timer on the node's own shard, `delay` seconds after the shard clock.
  // Must only be called from setup or from one of `node`'s own events.
  // The handle supports Cancel() from the same contexts.
  EventQueue::EventHandle ScheduleOn(uint32_t node, double delay,
                                     EventQueue::Callback fn);

  // Message from `src` to `dst`: runs `fn` on dst's shard at (src shard
  // clock + delay). `delay` must be >= lookahead — the conservative bound
  // that makes the window protocol sound; a smaller delay is clamped up
  // to it, counted in clamped_sends() and warned about once (debug and
  // release builds agree on the behaviour). Buffered in the src shard's
  // mailbox as a per-(src,dst) run, sorted at the end of the window, and
  // k-way merged into dst's queue at the next window barrier, in
  // (time, src, per-src sequence) order.
  void Send(uint32_t src, uint32_t dst, double delay, EventQueue::Callback fn);

  // Runs windows until every queue and mailbox drains, then aligns every
  // shard clock to the global drain time (= now()). Returns events run.
  uint64_t Run();
  // Runs windows while the next global event is <= `until`, then advances
  // every shard clock to `until`.
  uint64_t RunUntil(double until);

  // Engine-wide clock: the horizon every shard clock was aligned to when
  // the last Run/RunUntil returned (monotonic; 0 before the first run).
  double now() const { return now_; }

  uint64_t events_executed() const;
  uint64_t messages_sent() const;
  // Messages that crossed a shard boundary (partition-dependent: exported
  // to the env metrics domain, not the deterministic one).
  uint64_t cross_shard_messages() const;
  // Sends whose delay undercut the conservative lookahead and were
  // clamped up to it. Deterministic; nonzero means the scenario violates
  // the fabric's minimum-delay contract (sim.clamped_sends counter).
  uint64_t clamped_sends() const;
  // Sends deferred to their window barrier by adaptive widening
  // (deterministic; always 0 when max_window <= lookahead).
  uint64_t deferred_sends() const;
  // Windows executed so far. Window boundaries are partition-independent,
  // so this count is deterministic.
  uint64_t windows_run() const;

 private:
  struct Message {
    double time;       // Arrival time on the destination shard.
    uint32_t src;      // Sending node.
    uint64_t seq;      // Per-sender sequence number.
    EventQueue::Callback fn;
  };

  // Per-shard state, cache-line separated: inside a window each shard is
  // touched by exactly one worker.
  struct alignas(64) Shard {
    EventQueue queue;
    // Outgoing messages buffered this window, indexed by destination
    // shard. Each box is one pre-sorted run by the time the barrier
    // merges it (the owning worker sorts its runs at the end of the
    // window drain); the destination's worker k-way merges its column.
    std::vector<std::vector<Message>> outbox;
    uint64_t executed = 0;
    uint64_t messages = 0;
    uint64_t cross_messages = 0;
    uint64_t clamped = 0;
    uint64_t deferred = 0;
    // Minimum delay requested by this shard's sends in the current
    // window (adaptive-width signal; +inf when it sent nothing).
    double min_send_delay = 0;
    double stall_seconds = 0;
  };

  static bool MessageBefore(const Message& a, const Message& b);

  // Sorts every outbox run in (time, src, seq) order. Only needed for
  // setup-time sends: runs produced inside a window are sorted by the
  // owning worker before the barrier.
  void SortOutboxRuns();
  // K-way merges every destination's column of pre-sorted runs into its
  // queue, in (time, src, seq) order. Runs at window barriers and before
  // the first window (setup-time sends). Returns the number of messages
  // merged — partition-independent, because EVERY send (intra- and
  // cross-shard) is buffered until the next barrier.
  size_t MergeMailboxes();
  bool AnyOutboxPending() const;
  double NextEventTime();

  ShardedEngineConfig config_;
  std::vector<Shard> shards_;
  std::vector<Rng> node_rngs_;
  std::vector<uint64_t> node_send_seq_;
  uint64_t windows_ = 0;
  // Engine-wide clock: see now().
  double now_ = 0;
  // Adaptive window width, in [lookahead, max_window]; pinned to
  // lookahead when max_window <= lookahead.
  double window_width_;
  // End of the window currently executing; workers read it to defer
  // arrivals that would land inside the window (written only between
  // barriers).
  double window_end_ = 0;
  // Cursors for the metrics flush at the end of each RunUntil: counters
  // receive deltas, so several engines can coexist in one registry.
  uint64_t messages_reported_ = 0;
  uint64_t cross_reported_ = 0;
  uint64_t clamped_reported_ = 0;
  uint64_t deferred_reported_ = 0;
  // Warn-once latch for below-lookahead sends; workers race to set it.
  std::atomic<bool> clamp_warned_{false};
  bool running_ = false;
};

}  // namespace edk::sim

#endif  // SRC_SIM_SHARDED_ENGINE_H_
