#include "src/netio/frame.h"

#include <algorithm>
#include <cstring>

#include "src/common/varint.h"

namespace edk::netio {

namespace {

// --- Little-endian fixed-width helpers --------------------------------------

void AppendU32(std::string& out, uint32_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 24) & 0xff));
}

uint32_t ReadU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

// --- Payload cursor ---------------------------------------------------------
//
// Thin wrapper over the shared varint decoder that also carries string and
// digest reads, each validated against the bytes that remain before any
// allocation happens.

struct Reader {
  const uint8_t* p;
  const uint8_t* end;

  explicit Reader(std::string_view payload)
      : p(reinterpret_cast<const uint8_t*>(payload.data())),
        end(p + payload.size()) {}

  size_t remaining() const { return static_cast<size_t>(end - p); }
  bool done() const { return p == end; }

  bool Varint(uint64_t* v) {
    const uint8_t* before = p;
    if (!wire::ReadVarint(p, end, *v)) {
      return false;
    }
    // The wire protocol is strictly canonical: a non-minimal encoding
    // (0x80 0x00 for zero, ...) is rejected so no two byte strings alias
    // to one value. Stricter than the trace decoder, which only rejects
    // encodings that overflow 64 bits.
    size_t min_len = 1;
    for (uint64_t x = *v; x >= 0x80; x >>= 7) {
      ++min_len;
    }
    return static_cast<size_t>(p - before) == min_len;
  }

  // Varint value that must fit the destination width.
  bool U32(uint32_t* v) {
    uint64_t raw;
    if (!Varint(&raw) || raw > 0xffffffffull) {
      return false;
    }
    *v = static_cast<uint32_t>(raw);
    return true;
  }

  bool Bool(bool* v) {
    uint64_t raw;
    if (!Varint(&raw) || raw > 1) {
      return false;
    }
    *v = raw != 0;
    return true;
  }

  bool String(std::string* out) {
    uint64_t len;
    if (!Varint(&len) || len > remaining()) {
      return false;
    }
    out->assign(reinterpret_cast<const char*>(p), static_cast<size_t>(len));
    p += len;
    return true;
  }

  // String with an explicit length ceiling (metric names on the stats
  // wire): an oversized name is rejected before any allocation.
  bool BoundedString(size_t max_bytes, std::string* out) {
    uint64_t len;
    if (!Varint(&len) || len > max_bytes || len > remaining()) {
      return false;
    }
    out->assign(reinterpret_cast<const char*>(p), static_cast<size_t>(len));
    p += len;
    return true;
  }

  // Zigzag-encoded signed varint (gauges can be negative).
  bool I64(int64_t* v) {
    uint64_t raw;
    if (!Varint(&raw)) {
      return false;
    }
    *v = static_cast<int64_t>((raw >> 1) ^ (~(raw & 1) + 1));
    return true;
  }

  // Fixed 8-byte little-endian IEEE754 double (histogram bounds). Raw bit
  // patterns round-trip exactly, so the encoding is canonical per value.
  bool F64(double* v) {
    if (remaining() < 8) {
      return false;
    }
    uint64_t bits = 0;
    for (size_t i = 0; i < 8; ++i) {
      bits |= static_cast<uint64_t>(p[i]) << (8 * i);
    }
    std::memcpy(v, &bits, sizeof(bits));
    p += 8;
    return true;
  }

  bool Digest(Md4Digest* out) {
    if (remaining() < out->size()) {
      return false;
    }
    std::memcpy(out->data(), p, out->size());
    p += out->size();
    return true;
  }

  // Element count for a vector whose elements occupy at least
  // `min_element_bytes` each: a count the payload cannot possibly hold is
  // rejected before any reserve().
  bool Count(size_t min_element_bytes, uint64_t* count) {
    if (!Varint(count)) {
      return false;
    }
    return *count <= remaining() / std::max<size_t>(min_element_bytes, 1);
  }
};

void AppendString(std::string& out, std::string_view s) {
  wire::AppendVarint(out, s.size());
  out.append(s.data(), s.size());
}

void AppendI64(std::string& out, int64_t v) {
  const uint64_t zigzag =
      (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
  wire::AppendVarint(out, zigzag);
}

void AppendF64(std::string& out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  for (size_t i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((bits >> (8 * i)) & 0xff));
  }
}

void AppendDigest(std::string& out, const Md4Digest& digest) {
  out.append(reinterpret_cast<const char*>(digest.data()), digest.size());
}

// SharedFileInfo record: varint file id, 16-byte digest, varint size,
// string name. Minimum wire size: 1 + 16 + 1 + 1 = 19 bytes.
constexpr size_t kMinFileRecordBytes = 19;

void AppendFileInfo(std::string& out, const SharedFileInfo& info) {
  wire::AppendVarint(out, info.file.value);
  AppendDigest(out, info.digest);
  wire::AppendVarint(out, info.size_bytes);
  AppendString(out, info.name);
}

bool ReadFileInfo(Reader& r, SharedFileInfo* out) {
  return r.U32(&out->file.value) && r.Digest(&out->digest) &&
         r.Varint(&out->size_bytes) && r.String(&out->name);
}

bool ReadFileList(Reader& r, std::vector<SharedFileInfo>* out) {
  uint64_t count;
  if (!r.Count(kMinFileRecordBytes, &count)) {
    return false;
  }
  out->clear();
  out->reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    SharedFileInfo info;
    if (!ReadFileInfo(r, &info)) {
      return false;
    }
    out->push_back(std::move(info));
  }
  return true;
}

void AppendFileList(std::string& out, const std::vector<SharedFileInfo>& files) {
  wire::AppendVarint(out, files.size());
  for (const SharedFileInfo& info : files) {
    AppendFileInfo(out, info);
  }
}

// A decode succeeds only when the payload was consumed exactly: trailing
// bytes mean a desynchronised or tampered stream.
bool Finish(const Reader& r, bool ok) { return ok && r.done(); }

}  // namespace

const char* MsgTypeName(MsgType type) {
  switch (type) {
    case MsgType::kLoginReq: return "login-req";
    case MsgType::kLoginRep: return "login-rep";
    case MsgType::kLogoutReq: return "logout-req";
    case MsgType::kLogoutRep: return "logout-rep";
    case MsgType::kPublishReq: return "publish-req";
    case MsgType::kPublishRep: return "publish-rep";
    case MsgType::kSearchReq: return "search-req";
    case MsgType::kSearchRep: return "search-rep";
    case MsgType::kQuerySourcesReq: return "query-sources-req";
    case MsgType::kSourcesRep: return "sources-rep";
    case MsgType::kQueryUsersReq: return "query-users-req";
    case MsgType::kUsersRep: return "users-rep";
    case MsgType::kBrowseReq: return "browse-req";
    case MsgType::kBrowseRep: return "browse-rep";
    case MsgType::kStatsReq: return "stats-req";
    case MsgType::kStatsRep: return "stats-rep";
    case MsgType::kHealthReq: return "health-req";
    case MsgType::kHealthRep: return "health-rep";
    case MsgType::kError: return "error";
  }
  return "unknown";
}

bool IsKnownMsgType(uint8_t tag) {
  return (tag >= static_cast<uint8_t>(MsgType::kLoginReq) &&
          tag <= static_cast<uint8_t>(MsgType::kBrowseRep)) ||
         (tag >= static_cast<uint8_t>(MsgType::kStatsReq) &&
          tag <= static_cast<uint8_t>(MsgType::kHealthRep)) ||
         tag == static_cast<uint8_t>(MsgType::kError);
}

const char* FrameErrorName(FrameError error) {
  switch (error) {
    case FrameError::kNone: return "none";
    case FrameError::kBadMagic: return "bad-magic";
    case FrameError::kBadVersion: return "bad-version";
    case FrameError::kBadReserved: return "bad-reserved";
    case FrameError::kOversizePayload: return "oversize-payload";
  }
  return "unknown";
}

std::string EncodeFrame(MsgType type, std::string_view payload) {
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  AppendU32(out, kFrameMagic);
  out.push_back(static_cast<char>(kFrameVersion));
  out.push_back(static_cast<char>(type));
  out.push_back(0);
  out.push_back(0);
  AppendU32(out, static_cast<uint32_t>(payload.size()));
  out.append(payload.data(), payload.size());
  return out;
}

FrameAssembler::FrameAssembler(size_t max_payload) : max_payload_(max_payload) {}

void FrameAssembler::Feed(const char* data, size_t n) {
  if (broken()) {
    return;
  }
  // Reclaim the consumed prefix before growing; keeps the buffer bounded
  // by one partial frame plus one read chunk.
  if (consumed_ > 0 && (consumed_ >= buffer_.size() || consumed_ > 4096)) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(data, n);
}

std::optional<Frame> FrameAssembler::Next() {
  if (broken() || buffered_bytes() < kFrameHeaderBytes) {
    return std::nullopt;
  }
  const uint8_t* head =
      reinterpret_cast<const uint8_t*>(buffer_.data()) + consumed_;
  if (ReadU32(head) != kFrameMagic) {
    error_ = FrameError::kBadMagic;
    return std::nullopt;
  }
  if (head[4] != kFrameVersion) {
    error_ = FrameError::kBadVersion;
    return std::nullopt;
  }
  if (head[6] != 0 || head[7] != 0) {
    error_ = FrameError::kBadReserved;
    return std::nullopt;
  }
  const uint32_t payload_len = ReadU32(head + 8);
  if (payload_len > max_payload_) {
    error_ = FrameError::kOversizePayload;
    return std::nullopt;
  }
  if (buffered_bytes() < kFrameHeaderBytes + payload_len) {
    return std::nullopt;  // Wait for the rest of the payload.
  }
  Frame frame;
  frame.type = static_cast<MsgType>(head[5]);
  frame.payload.assign(buffer_, consumed_ + kFrameHeaderBytes, payload_len);
  consumed_ += kFrameHeaderBytes + payload_len;
  return frame;
}

// --- Login ------------------------------------------------------------------

std::string EncodeLoginReq(const LoginReq& msg) {
  std::string out;
  AppendString(out, msg.nickname);
  wire::AppendVarint(out, msg.firewalled ? 1 : 0);
  return out;
}

bool DecodeLoginReq(std::string_view payload, LoginReq* out) {
  Reader r(payload);
  return Finish(r, r.String(&out->nickname) && r.Bool(&out->firewalled));
}

std::string EncodeLoginRep(const LoginRep& msg) {
  std::string out;
  wire::AppendVarint(out, msg.accepted ? 1 : 0);
  wire::AppendVarint(out, msg.client_id);
  return out;
}

bool DecodeLoginRep(std::string_view payload, LoginRep* out) {
  Reader r(payload);
  return Finish(r, r.Bool(&out->accepted) && r.U32(&out->client_id));
}

// --- Publish ----------------------------------------------------------------

std::string EncodePublishReq(const PublishReq& msg) {
  std::string out;
  AppendFileList(out, msg.files);
  return out;
}

bool DecodePublishReq(std::string_view payload, PublishReq* out) {
  Reader r(payload);
  return Finish(r, ReadFileList(r, &out->files));
}

std::string EncodePublishRep(const PublishRep& msg) {
  std::string out;
  wire::AppendVarint(out, msg.indexed_files);
  return out;
}

bool DecodePublishRep(std::string_view payload, PublishRep* out) {
  Reader r(payload);
  return Finish(r, r.Varint(&out->indexed_files));
}

// --- Search -----------------------------------------------------------------

std::string EncodeSearchReq(const SearchReq& msg) {
  std::string out;
  wire::AppendVarint(out, msg.keywords.size());
  for (const std::string& keyword : msg.keywords) {
    AppendString(out, keyword);
  }
  return out;
}

bool DecodeSearchReq(std::string_view payload, SearchReq* out) {
  Reader r(payload);
  uint64_t count;
  if (!r.Count(1, &count)) {
    return false;
  }
  out->keywords.clear();
  out->keywords.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    std::string keyword;
    if (!r.String(&keyword)) {
      return false;
    }
    out->keywords.push_back(std::move(keyword));
  }
  return Finish(r, true);
}

std::string EncodeSearchRep(const SearchRep& msg) {
  std::string out;
  AppendFileList(out, msg.files);
  return out;
}

bool DecodeSearchRep(std::string_view payload, SearchRep* out) {
  Reader r(payload);
  return Finish(r, ReadFileList(r, &out->files));
}

// --- Query sources ----------------------------------------------------------

std::string EncodeQuerySourcesReq(const QuerySourcesReq& msg) {
  std::string out;
  AppendDigest(out, msg.digest);
  return out;
}

bool DecodeQuerySourcesReq(std::string_view payload, QuerySourcesReq* out) {
  Reader r(payload);
  return Finish(r, r.Digest(&out->digest));
}

std::string EncodeSourcesRep(const SourcesRep& msg) {
  std::string out;
  wire::AppendVarint(out, msg.sources.size());
  for (const SourceRecord& source : msg.sources) {
    wire::AppendVarint(out, source.node);
    wire::AppendVarint(out, source.low_id ? 1 : 0);
  }
  return out;
}

bool DecodeSourcesRep(std::string_view payload, SourcesRep* out) {
  Reader r(payload);
  uint64_t count;
  // A source record is at least 2 bytes (node varint + flag varint).
  if (!r.Count(2, &count)) {
    return false;
  }
  out->sources.clear();
  out->sources.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    SourceRecord record;
    if (!r.U32(&record.node) || !r.Bool(&record.low_id)) {
      return false;
    }
    out->sources.push_back(record);
  }
  return Finish(r, true);
}

// --- Query users ------------------------------------------------------------

std::string EncodeQueryUsersReq(const QueryUsersReq& msg) {
  std::string out;
  AppendString(out, msg.prefix);
  return out;
}

bool DecodeQueryUsersReq(std::string_view payload, QueryUsersReq* out) {
  Reader r(payload);
  return Finish(r, r.String(&out->prefix));
}

std::string EncodeUsersRep(const UsersRep& msg) {
  std::string out;
  wire::AppendVarint(out, msg.users.size());
  for (const UserRecord& user : msg.users) {
    AppendString(out, user.nickname);
    wire::AppendVarint(out, user.node);
    wire::AppendVarint(out, user.low_id ? 1 : 0);
  }
  return out;
}

bool DecodeUsersRep(std::string_view payload, UsersRep* out) {
  Reader r(payload);
  uint64_t count;
  // A user record is at least 3 bytes (empty name + node + flag).
  if (!r.Count(3, &count)) {
    return false;
  }
  out->users.clear();
  out->users.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    UserRecord record;
    if (!r.String(&record.nickname) || !r.U32(&record.node) ||
        !r.Bool(&record.low_id)) {
      return false;
    }
    out->users.push_back(std::move(record));
  }
  return Finish(r, true);
}

// --- Browse -----------------------------------------------------------------

std::string EncodeBrowseReq(const BrowseReq& msg) {
  std::string out;
  wire::AppendVarint(out, msg.target);
  return out;
}

bool DecodeBrowseReq(std::string_view payload, BrowseReq* out) {
  Reader r(payload);
  return Finish(r, r.U32(&out->target));
}

std::string EncodeBrowseRep(const BrowseRep& msg) {
  std::string out;
  wire::AppendVarint(out, msg.ok ? 1 : 0);
  AppendFileList(out, msg.files);
  return out;
}

bool DecodeBrowseRep(std::string_view payload, BrowseRep* out) {
  Reader r(payload);
  return Finish(r, r.Bool(&out->ok) && ReadFileList(r, &out->files));
}

// --- Stats / Health (DESIGN.md §6k) -----------------------------------------

std::string EncodeStatsReq(const StatsReq& msg) {
  std::string out;
  wire::AppendVarint(out, msg.slow_after_seq);
  return out;
}

bool DecodeStatsReq(std::string_view payload, StatsReq* out) {
  Reader r(payload);
  return Finish(r, r.Varint(&out->slow_after_seq));
}

std::string EncodeStatsRep(const StatsRep& msg) {
  std::string out;
  wire::AppendVarint(out, msg.seq);
  wire::AppendVarint(out, msg.uptime_ns);
  wire::AppendVarint(out, msg.counters.size());
  for (const StatsCounterValue& c : msg.counters) {
    AppendString(out, c.name);
    wire::AppendVarint(out, c.value);
  }
  wire::AppendVarint(out, msg.gauges.size());
  for (const StatsGaugeValue& g : msg.gauges) {
    AppendString(out, g.name);
    AppendI64(out, g.value);
  }
  wire::AppendVarint(out, msg.histograms.size());
  for (const StatsHistogramValue& h : msg.histograms) {
    AppendString(out, h.name);
    AppendF64(out, h.lo);
    AppendF64(out, h.hi);
    wire::AppendVarint(out, h.underflow);
    wire::AppendVarint(out, h.overflow);
    wire::AppendVarint(out, h.counts.size());
    for (const uint64_t count : h.counts) {
      wire::AppendVarint(out, count);
    }
  }
  wire::AppendVarint(out, msg.slow.size());
  for (const SlowRequest& s : msg.slow) {
    wire::AppendVarint(out, s.seq);
    wire::AppendVarint(out, s.wall_ns);
    wire::AppendVarint(out, s.type);
    wire::AppendVarint(out, s.latency_us);
    wire::AppendVarint(out, s.request_bytes);
    wire::AppendVarint(out, s.reply_bytes);
    wire::AppendVarint(out, s.node);
  }
  return out;
}

bool DecodeStatsRep(std::string_view payload, StatsRep* out) {
  Reader r(payload);
  if (!r.Varint(&out->seq) || !r.Varint(&out->uptime_ns)) {
    return false;
  }
  uint64_t count;
  // A counter record is at least 2 bytes (empty name + value varint).
  if (!r.Count(2, &count)) {
    return false;
  }
  out->counters.clear();
  out->counters.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    StatsCounterValue c;
    if (!r.BoundedString(kMaxMetricNameBytes, &c.name) || !r.Varint(&c.value)) {
      return false;
    }
    out->counters.push_back(std::move(c));
  }
  if (!r.Count(2, &count)) {
    return false;
  }
  out->gauges.clear();
  out->gauges.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    StatsGaugeValue g;
    if (!r.BoundedString(kMaxMetricNameBytes, &g.name) || !r.I64(&g.value)) {
      return false;
    }
    out->gauges.push_back(std::move(g));
  }
  // A histogram record is at least 1 (name) + 16 (lo/hi) + 3 bytes.
  if (!r.Count(20, &count)) {
    return false;
  }
  out->histograms.clear();
  out->histograms.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    StatsHistogramValue h;
    if (!r.BoundedString(kMaxMetricNameBytes, &h.name) || !r.F64(&h.lo) ||
        !r.F64(&h.hi) || !r.Varint(&h.underflow) || !r.Varint(&h.overflow)) {
      return false;
    }
    uint64_t bins;
    // A forged bin count is bounded twice: by the bytes actually present
    // and by the protocol-wide bucket ceiling.
    if (!r.Count(1, &bins) || bins > kMaxHistogramBins) {
      return false;
    }
    h.counts.clear();
    h.counts.reserve(static_cast<size_t>(bins));
    for (uint64_t b = 0; b < bins; ++b) {
      uint64_t v;
      if (!r.Varint(&v)) {
        return false;
      }
      h.counts.push_back(v);
    }
    out->histograms.push_back(std::move(h));
  }
  // A slow-request record is at least 7 varint bytes.
  if (!r.Count(7, &count) || count > kMaxSlowLogEntries) {
    return false;
  }
  out->slow.clear();
  out->slow.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    SlowRequest s;
    uint64_t type;
    if (!r.Varint(&s.seq) || !r.Varint(&s.wall_ns) || !r.Varint(&type) ||
        type > 0xff || !r.Varint(&s.latency_us) ||
        !r.Varint(&s.request_bytes) || !r.Varint(&s.reply_bytes) ||
        !r.U32(&s.node)) {
      return false;
    }
    s.type = static_cast<uint8_t>(type);
    out->slow.push_back(s);
  }
  return Finish(r, true);
}

std::string EncodeHealthRep(const HealthRep& msg) {
  std::string out;
  wire::AppendVarint(out, msg.ok ? 1 : 0);
  wire::AppendVarint(out, msg.uptime_ns);
  wire::AppendVarint(out, msg.active_connections);
  wire::AppendVarint(out, msg.requests_total);
  return out;
}

bool DecodeHealthRep(std::string_view payload, HealthRep* out) {
  Reader r(payload);
  return Finish(r, r.Bool(&out->ok) && r.Varint(&out->uptime_ns) &&
                       r.Varint(&out->active_connections) &&
                       r.Varint(&out->requests_total));
}

// --- Error ------------------------------------------------------------------

std::string EncodeErrorRep(const ErrorRep& msg) {
  std::string out;
  wire::AppendVarint(out, msg.code);
  AppendString(out, msg.message);
  return out;
}

bool DecodeErrorRep(std::string_view payload, ErrorRep* out) {
  Reader r(payload);
  return Finish(r, r.Varint(&out->code) && r.String(&out->message));
}

}  // namespace edk::netio
