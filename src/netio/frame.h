// Framed binary wire protocol of the real (socket-served) index server
// (DESIGN.md §6j).
//
// Every message travels as one length-prefixed frame:
//
//   offset  size  field
//   0       4     magic   0x464b4445 LE — the bytes "EDKF" on the wire
//   4       1     version (kFrameVersion)
//   5       1     message tag (MsgType)
//   6       2     reserved, must be zero
//   8       4     payload length LE, <= max_payload
//   12      n     payload — varint-encoded fields (src/common/varint)
//
// Payload encoding reuses the trace pipeline's LEB128 varints and rejects
// every non-minimal encoding (stricter than the trace decoder: no two
// byte strings alias to one value); strings are varint-length-prefixed bytes,
// digests are 16 raw bytes. Decoders are hostile-input hardened in the
// style of the trace corruption suite: every length is validated against
// the bytes actually present before any allocation (a forged element
// count can never reserve more than the payload could possibly hold), a
// payload must be consumed exactly (trailing garbage is an error), and a
// broken frame header poisons the stream (FrameAssembler::error()) so a
// desynchronised connection is torn down instead of resynchronised on
// attacker-controlled bytes.
//
// FrameAssembler reassembles frames from arbitrary byte chunks — the unit
// a non-blocking read() delivers — so the TCP server and client share one
// partial-read path that is tested at every possible split boundary.

#ifndef SRC_NETIO_FRAME_H_
#define SRC_NETIO_FRAME_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/net/protocol.h"

namespace edk::netio {

inline constexpr uint32_t kFrameMagic = 0x464b4445u;  // "EDKF" little-endian.
inline constexpr uint8_t kFrameVersion = 1;
inline constexpr size_t kFrameHeaderBytes = 12;
// Default payload cap. A search reply tops out at a few hundred records of
// bounded names, far below this; the cap exists to bound what a hostile
// length prefix can make a peer buffer.
inline constexpr size_t kDefaultMaxPayload = 8u << 20;

// Message tags. Stable wire constants — they appear on the network.
enum class MsgType : uint8_t {
  kLoginReq = 0x01,
  kLoginRep = 0x02,
  kLogoutReq = 0x03,     // Zero-length payload.
  kLogoutRep = 0x04,     // Zero-length payload.
  kPublishReq = 0x05,
  kPublishRep = 0x06,
  kSearchReq = 0x07,
  kSearchRep = 0x08,
  kQuerySourcesReq = 0x09,
  kSourcesRep = 0x0a,
  kQueryUsersReq = 0x0b,
  kUsersRep = 0x0c,
  kBrowseReq = 0x0d,
  kBrowseRep = 0x0e,
  // In-band admin protocol (DESIGN.md §6k): served without login, off the
  // deterministic index path.
  kStatsReq = 0x20,
  kStatsRep = 0x21,
  kHealthReq = 0x22,  // Zero-length payload.
  kHealthRep = 0x23,
  kError = 0x7f,
};
const char* MsgTypeName(MsgType type);
bool IsKnownMsgType(uint8_t tag);

// --- Message bodies ---------------------------------------------------------

struct LoginReq {
  std::string nickname;
  bool firewalled = false;
};
struct LoginRep {
  bool accepted = false;
  NodeId client_id = kInvalidNode;  // Assigned by the server on success.
};
struct PublishReq {
  std::vector<SharedFileInfo> files;
};
struct PublishRep {
  uint64_t indexed_files = 0;  // Server-wide index size after the publish.
};
struct SearchReq {
  std::vector<std::string> keywords;
};
struct SearchRep {
  std::vector<SharedFileInfo> files;
};
struct QuerySourcesReq {
  Md4Digest digest{};
};
struct SourcesRep {
  std::vector<SourceRecord> sources;
};
struct QueryUsersReq {
  std::string prefix;
};
struct UsersRep {
  std::vector<UserRecord> users;
};
struct BrowseReq {
  NodeId target = kInvalidNode;
};
struct BrowseRep {
  bool ok = false;  // False: target unknown/not connected.
  std::vector<SharedFileInfo> files;
};
// --- Observability plane (DESIGN.md §6k) ------------------------------------
//
// StatsRep carries one monotonic snapshot of the server's metrics registry
// (counters, gauges, histogram buckets) plus the drained slow-request log.
// Bounds below exist so a hostile peer can neither smuggle unbounded names
// through a scraper nor make a decoder reserve absurd bucket arrays; the
// decoders enforce them exactly like the index codecs enforce their counts.

// Longest metric/gauge/histogram name accepted on the wire.
inline constexpr size_t kMaxMetricNameBytes = 256;
// Most buckets one histogram may carry.
inline constexpr size_t kMaxHistogramBins = 4096;
// Most slow-request entries one StatsRep may carry.
inline constexpr size_t kMaxSlowLogEntries = 1024;

struct StatsReq {
  // Only slow-log entries with seq > slow_after_seq are returned, so a
  // scraper polling on an interval drains each entry exactly once.
  uint64_t slow_after_seq = 0;
};
struct StatsCounterValue {
  std::string name;
  uint64_t value = 0;
};
struct StatsGaugeValue {
  std::string name;
  int64_t value = 0;  // Zigzag varint on the wire.
};
struct StatsHistogramValue {
  std::string name;
  double lo = 0;  // Fixed 8-byte IEEE754 LE on the wire.
  double hi = 0;
  uint64_t underflow = 0;
  uint64_t overflow = 0;
  std::vector<uint64_t> counts;
};
// One tail outlier from the server's bounded slow-request ring.
struct SlowRequest {
  uint64_t seq = 0;        // Monotonic per server process; never reused.
  uint64_t wall_ns = 0;    // Steady-clock ns since server start, at dispatch end.
  uint8_t type = 0;        // MsgType tag of the slow request.
  uint64_t latency_us = 0;
  uint64_t request_bytes = 0;
  uint64_t reply_bytes = 0;
  NodeId node = kInvalidNode;  // Session id, kInvalidNode if not logged in.
};
struct StatsRep {
  uint64_t seq = 0;        // Monotonic snapshot sequence number.
  uint64_t uptime_ns = 0;  // Steady-clock ns since the server started.
  std::vector<StatsCounterValue> counters;
  std::vector<StatsGaugeValue> gauges;
  std::vector<StatsHistogramValue> histograms;
  std::vector<SlowRequest> slow;
};
struct HealthRep {
  bool ok = false;
  uint64_t uptime_ns = 0;
  uint64_t active_connections = 0;
  uint64_t requests_total = 0;
};

// Protocol-level failure reply (bad request payload, unknown tag, ...).
struct ErrorRep {
  uint64_t code = 0;
  std::string message;
};
// ErrorRep::code values.
inline constexpr uint64_t kErrBadPayload = 1;
inline constexpr uint64_t kErrUnknownType = 2;
inline constexpr uint64_t kErrNotLoggedIn = 3;

// --- Frame layer ------------------------------------------------------------

struct Frame {
  MsgType type = MsgType::kError;
  std::string payload;
};

// Header + payload bytes ready to write to a socket.
std::string EncodeFrame(MsgType type, std::string_view payload);

enum class FrameError {
  kNone = 0,
  kBadMagic,
  kBadVersion,
  kBadReserved,
  kOversizePayload,
};
const char* FrameErrorName(FrameError error);

// Incremental frame reassembly over arbitrary byte chunks.
class FrameAssembler {
 public:
  explicit FrameAssembler(size_t max_payload = kDefaultMaxPayload);

  // Appends raw bytes from the transport. No-op once broken.
  void Feed(const char* data, size_t n);
  void Feed(std::string_view bytes) { Feed(bytes.data(), bytes.size()); }

  // Pops the next complete frame, or nullopt when more bytes are needed or
  // the stream is broken (check error()). Unknown-but-well-formed message
  // tags are surfaced to the caller, which decides how to reply.
  std::optional<Frame> Next();

  FrameError error() const { return error_; }
  bool broken() const { return error_ != FrameError::kNone; }
  size_t buffered_bytes() const { return buffer_.size() - consumed_; }

 private:
  size_t max_payload_;
  std::string buffer_;
  size_t consumed_ = 0;  // Prefix of buffer_ already handed out.
  FrameError error_ = FrameError::kNone;
};

// --- Payload codecs ---------------------------------------------------------
//
// EncodeX returns the payload bytes (frame the result with EncodeFrame);
// DecodeX parses a payload and returns false on any malformed input
// without partial effects worth trusting.

std::string EncodeLoginReq(const LoginReq& msg);
bool DecodeLoginReq(std::string_view payload, LoginReq* out);
std::string EncodeLoginRep(const LoginRep& msg);
bool DecodeLoginRep(std::string_view payload, LoginRep* out);

std::string EncodePublishReq(const PublishReq& msg);
bool DecodePublishReq(std::string_view payload, PublishReq* out);
std::string EncodePublishRep(const PublishRep& msg);
bool DecodePublishRep(std::string_view payload, PublishRep* out);

std::string EncodeSearchReq(const SearchReq& msg);
bool DecodeSearchReq(std::string_view payload, SearchReq* out);
std::string EncodeSearchRep(const SearchRep& msg);
bool DecodeSearchRep(std::string_view payload, SearchRep* out);

std::string EncodeQuerySourcesReq(const QuerySourcesReq& msg);
bool DecodeQuerySourcesReq(std::string_view payload, QuerySourcesReq* out);
std::string EncodeSourcesRep(const SourcesRep& msg);
bool DecodeSourcesRep(std::string_view payload, SourcesRep* out);

std::string EncodeQueryUsersReq(const QueryUsersReq& msg);
bool DecodeQueryUsersReq(std::string_view payload, QueryUsersReq* out);
std::string EncodeUsersRep(const UsersRep& msg);
bool DecodeUsersRep(std::string_view payload, UsersRep* out);

std::string EncodeBrowseReq(const BrowseReq& msg);
bool DecodeBrowseReq(std::string_view payload, BrowseReq* out);
std::string EncodeBrowseRep(const BrowseRep& msg);
bool DecodeBrowseRep(std::string_view payload, BrowseRep* out);

std::string EncodeStatsReq(const StatsReq& msg);
bool DecodeStatsReq(std::string_view payload, StatsReq* out);
std::string EncodeStatsRep(const StatsRep& msg);
bool DecodeStatsRep(std::string_view payload, StatsRep* out);

std::string EncodeHealthRep(const HealthRep& msg);
bool DecodeHealthRep(std::string_view payload, HealthRep* out);

std::string EncodeErrorRep(const ErrorRep& msg);
bool DecodeErrorRep(std::string_view payload, ErrorRep* out);

}  // namespace edk::netio

#endif  // SRC_NETIO_FRAME_H_
