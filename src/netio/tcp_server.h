// Real TCP front-end of the eDonkey index (DESIGN.md §6j).
//
// TcpServer listens on a loopback (or any) TCP port and serves the framed
// binary protocol of src/netio/frame.h with the exact ServerCore the
// simulator runs. The I/O machinery is epoll-based and non-blocking:
//
//   * One acceptor thread epoll-waits on the listen socket, accepts
//     non-blocking connections and hands each fd to a worker in
//     round-robin order through a mutex-guarded handoff queue + eventfd.
//   * N worker threads (config.worker_threads, default 1) each run their
//     own level-triggered epoll loop over their connections: read until
//     EAGAIN, feed a FrameAssembler, dispatch every complete frame,
//     append the reply to the connection's write buffer and flush,
//     enabling EPOLLOUT only while a partial write is pending.
//
// The index itself stays single-threaded by contract (ServerCore): every
// dispatch takes core_mutex(), so worker parallelism overlaps I/O and
// framing, not index mutation. On the single-core containers this repo
// benches on that is the honest design; the seam to scale past it is a
// sharded core keyed the same way sim::Placement shards nodes.
//
// Sessions: a connection logs in and is assigned the next NodeId from a
// process-wide allocator (config.first_client_id upwards, so ids continue
// after any corpus preloaded into the core). A connection that drops while
// logged in is logged out, exactly as a simulated client disconnect.
//
// Protocol errors (broken frame header, malformed payload, unknown tag)
// tear the connection down after an ErrorRep where the stream still
// permits one; they are counted in stats().protocol_errors and mirrored to
// the env-domain obs counters under netio.server.*.

#ifndef SRC_NETIO_TCP_SERVER_H_
#define SRC_NETIO_TCP_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/net/server_core.h"
#include "src/netio/frame.h"
#include "src/obs/flight_recorder.h"

namespace edk::netio {

struct TcpServerConfig {
  std::string bind_address = "127.0.0.1";
  uint16_t port = 0;  // 0 = ephemeral; read the bound port from port().
  ServerConfig index;
  size_t worker_threads = 1;
  size_t max_connections = 4096;
  size_t max_frame_payload = kDefaultMaxPayload;
  // First NodeId handed to a TCP login. Leave room below for ids assigned
  // to a corpus preloaded straight into core() (PreloadServeCorpus).
  NodeId first_client_id = 1;
  // Bytes per read() call in the worker loops.
  size_t read_chunk_bytes = 64 * 1024;
  // Dispatches slower than this land in the bounded slow-request log
  // (drained through StatsRep). 0 logs every request; < 0 disables.
  double slow_request_threshold_us = 10'000;
  // Newest slow requests retained (a FlightRecorder ring).
  size_t slow_log_capacity = 256;
};

struct TcpServerStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_closed = 0;
  uint64_t connections_rejected = 0;  // Over max_connections.
  uint64_t frames_in = 0;
  uint64_t frames_out = 0;
  uint64_t requests = 0;
  uint64_t protocol_errors = 0;
  uint64_t transport_errors = 0;  // read/write failures other than EOF.
  size_t active_connections = 0;
};

class TcpServer {
 public:
  explicit TcpServer(TcpServerConfig config);
  ~TcpServer();
  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  // Binds, listens and starts the acceptor + worker threads. Returns false
  // (with *error filled) on any socket failure.
  bool Start(std::string* error = nullptr);
  // Stops the loops, closes every connection and joins the threads.
  // Idempotent; also run by the destructor.
  void Stop();

  bool running() const { return running_; }
  // Bound port (valid after a successful Start; useful with port = 0).
  uint16_t port() const { return bound_port_; }

  // The index. Before Start() the caller may preload it directly (no
  // locking needed: the threads do not exist yet); after Start() any
  // access must hold core_mutex().
  ServerCore& core() { return core_; }
  std::mutex& core_mutex() { return core_mu_; }

  TcpServerStats stats() const;

  // Refreshes the process-level gauges (RSS, open fds, per-worker
  // connection counts, index size) in the global obs registry. Stats
  // dispatches do this before every snapshot; edk-served calls it before
  // a SIGUSR1/exit metrics dump so the file carries current values.
  void RefreshProcessGauges();

 private:
  struct Connection;
  struct Worker;

  void AcceptLoop();
  void WorkerLoop(Worker& worker);
  void AdoptPending(Worker& worker);
  // Reads, frames and dispatches; returns false when the connection must
  // close (EOF, transport error, protocol error).
  bool ServiceReadable(Worker& worker, Connection& conn);
  bool FlushWrites(Worker& worker, Connection& conn);
  void CloseConnection(Worker& worker, Connection& conn);
  bool UpdateInterest(Worker& worker, Connection& conn);
  // Dispatches one frame into the core; appends the reply to conn.outbuf.
  // Returns false on a protocol error (connection must close after the
  // error reply is flushed).
  bool Dispatch(Connection& conn, const Frame& frame);
  // The per-type switch of Dispatch; Dispatch wraps it with telemetry.
  bool DispatchFrame(Connection& conn, const Frame& frame);
  // Builds the monotonic StatsRep snapshot an in-band StatsReq is answered
  // with. Touches only env-domain metrics and (briefly, under core_mu_)
  // the index size gauges — never the request hot path's determinism.
  StatsRep BuildStatsRep(const StatsReq& req);
  // Records one dispatch into the per-type latency histograms, byte
  // counters and — past the threshold — the slow-request ring.
  void RecordRequestTelemetry(const Connection& conn, const Frame& frame,
                              std::chrono::steady_clock::time_point start,
                              size_t reply_bytes);

  TcpServerConfig config_;
  ServerCore core_;
  std::mutex core_mu_;

  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  int listen_fd_ = -1;
  int accept_wake_fd_ = -1;
  uint16_t bound_port_ = 0;
  std::thread acceptor_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<uint32_t> next_client_id_{0};
  std::atomic<size_t> next_worker_{0};

  // Stats (relaxed atomics: read by stats() while the loops run).
  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> closed_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> frames_in_{0};
  std::atomic<uint64_t> frames_out_{0};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  std::atomic<uint64_t> transport_errors_{0};
  std::atomic<size_t> active_{0};

  // Observability plane (DESIGN.md §6k).
  std::chrono::steady_clock::time_point started_{};  // Set by Start().
  std::atomic<uint64_t> stats_seq_{0};  // Monotonic StatsRep sequence.
  std::atomic<uint64_t> slow_seq_{0};   // Monotonic slow-log entry ids.
  obs::FlightRecorder slow_log_;
};

}  // namespace edk::netio

#endif  // SRC_NETIO_TCP_SERVER_H_
