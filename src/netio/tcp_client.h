// Blocking client for the framed TCP index protocol (DESIGN.md §6j).
//
// One TcpClient wraps one connection: Connect(), then typed request
// methods that write a frame and block until the matching reply frame
// arrives (the protocol is strictly request/reply per connection, so no
// correlation ids are needed). Partial reads go through the same
// FrameAssembler the server uses, so both directions of the protocol share
// one hardened reassembly path.
//
// Every method returns nullopt on transport or protocol failure;
// last_error() says what went wrong. The load generator and the tests are
// the intended callers — this is deliberately a simple synchronous client,
// concurrency comes from running many of them.

#ifndef SRC_NETIO_TCP_CLIENT_H_
#define SRC_NETIO_TCP_CLIENT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/netio/frame.h"

namespace edk::netio {

class TcpClient {
 public:
  TcpClient() = default;
  ~TcpClient();
  TcpClient(const TcpClient&) = delete;
  TcpClient& operator=(const TcpClient&) = delete;

  // Connects with TCP_NODELAY; recv_timeout_seconds bounds every blocking
  // read so a wedged server fails the call instead of hanging the caller.
  bool Connect(const std::string& host, uint16_t port,
               double recv_timeout_seconds = 30.0);
  void Close();
  bool connected() const { return fd_ >= 0; }
  const std::string& last_error() const { return last_error_; }

  // --- Typed requests -------------------------------------------------------
  std::optional<LoginRep> Login(const std::string& nickname, bool firewalled);
  bool Logout();
  std::optional<PublishRep> Publish(const std::vector<SharedFileInfo>& files);
  std::optional<SearchRep> Search(const std::vector<std::string>& keywords);
  std::optional<SourcesRep> QuerySources(const Md4Digest& digest);
  std::optional<UsersRep> QueryUsers(const std::string& prefix);
  std::optional<BrowseRep> Browse(NodeId target);
  // Admin protocol (DESIGN.md §6k); neither requires a login.
  // `slow_after_seq` is the scrape cursor: the reply carries only slow-log
  // entries with seq > slow_after_seq.
  std::optional<StatsRep> Stats(uint64_t slow_after_seq = 0);
  std::optional<HealthRep> Health();

  // Raw round-trip: sends one frame, returns the next reply frame. The
  // typed wrappers use this; tests use it to probe hostile inputs.
  std::optional<Frame> Call(MsgType type, const std::string& payload);

  // True when the last failed call was a protocol-level failure (an
  // ErrorRep reply or a broken stream) rather than a transport error.
  bool last_was_protocol_error() const { return last_protocol_error_; }

 private:
  bool SendAll(const std::string& bytes);
  std::optional<Frame> ReadFrame();
  bool Fail(const std::string& what, bool protocol_error = false);
  // If `frame` is an ErrorRep, records it as a protocol error and returns
  // true — without closing: the reply stream is still framed, and the
  // server keeps the connection for request-level errors (kErrNotLoggedIn).
  bool NoteServerError(const Frame& frame);

  int fd_ = -1;
  FrameAssembler assembler_{kDefaultMaxPayload};
  std::string last_error_;
  bool last_protocol_error_ = false;
};

}  // namespace edk::netio

#endif  // SRC_NETIO_TCP_CLIENT_H_
