// Open-loop load generator for the TCP index server (DESIGN.md §6j).
//
// Models the arrival process the way the queueing literature measures
// servers ("A Queueing System for Modeling a File Sharing Principle",
// PAPERS.md): requests arrive on a Poisson schedule fixed *before* the run
// at the target rate, and an arrival does not wait for earlier requests to
// finish — if every connection is busy the request queues and its measured
// latency includes that wait. Closed-loop generators (send, wait, repeat)
// hide server slowdowns by slowing the offered load; an open-loop schedule
// keeps offering it, which is what makes the p99/p999 tail honest.
//
// The request mix is derived from the workload engine's behaviour model
// (DeriveRequestMix): a sharer's online day carries one connect-publish
// plus mean_daily_additions acquisitions, each an index search, a source
// query and a republish of the grown cache; browse and the legacy
// query-users ride along at the rates the paper's crawler observed them.
//
// Worker threads share one pre-generated arrival schedule through an
// atomic cursor: each claims the next arrival, sleeps until its scheduled
// time, performs the request on its own connection and records
//
//   * open-loop latency: completion - scheduled arrival (includes queueing)
//   * service latency:   completion - actual send
//
// Per-request wall-domain obs spans (netio.loadgen.request) make the run
// Perfetto-loadable; exact quantiles come from the raw samples.

#ifndef SRC_NETIO_LOADGEN_H_
#define SRC_NETIO_LOADGEN_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/netio/corpus.h"
#include "src/workload/config.h"

namespace edk::netio {

// Relative request-type weights (need not sum to 1).
struct RequestMix {
  double publish = 0;
  double search = 0;
  double query_sources = 0;
  double query_users = 0;
  double browse = 0;
};

// Mix implied by the workload behaviour model: per sharer online day, one
// connect-time publish plus `mean_daily_additions` acquisitions, each of
// which searches the index, queries sources and republishes the changed
// cache. Browsing happens for the reachable fraction of acquisitions
// (firewalled peers cannot be browsed); query-users is the crawler-era
// legacy request, a trickle relative to searches.
RequestMix DeriveRequestMix(const WorkloadConfig& config);

struct LoadGenConfig {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  size_t connections = 8;
  double target_rps = 1000;
  double duration_seconds = 3;
  uint64_t seed = 1;
  RequestMix mix;
  // Files published per publish request (a loadgen client's "cache").
  size_t publish_files_per_request = 20;
  double recv_timeout_seconds = 30;
};

struct LatencySummary {
  uint64_t count = 0;
  double mean_us = 0;
  double p50_us = 0;
  double p90_us = 0;
  double p99_us = 0;
  double p999_us = 0;
  double max_us = 0;
};

struct LoadGenReport {
  uint64_t scheduled = 0;   // Arrivals in the pre-generated schedule.
  uint64_t completed = 0;   // Requests that got a well-formed reply.
  uint64_t protocol_errors = 0;
  uint64_t transport_errors = 0;
  uint64_t dropped = 0;     // Never attempted (a worker lost its connection).
  std::map<std::string, uint64_t> by_type;
  double wall_seconds = 0;
  double achieved_rps = 0;  // completed / wall_seconds.
  // Worst lag between an arrival's scheduled and actual send time: how far
  // the generator itself fell behind the open-loop schedule.
  double max_send_lag_seconds = 0;
  // Arrivals claimed after their scheduled time had already passed (no
  // sleep happened): how often the generator, not the server, was the
  // bottleneck. A run with many overruns under-offers its target rate and
  // its open-loop tail is no longer trustworthy.
  uint64_t schedule_overruns = 0;
  LatencySummary open_loop;  // completion - scheduled arrival.
  LatencySummary service;    // completion - send.
};

// Computes exact quantiles of `samples` (microseconds); sorts in place.
LatencySummary SummarizeLatencies(std::vector<double>& samples_us);

// Runs the configured open-loop swarm against a live server. The corpus
// must be the one the server was preloaded with (same seed/shape) so
// searches, source queries and browses address real index content.
LoadGenReport RunLoadGen(const LoadGenConfig& config, const ServeCorpus& corpus);

}  // namespace edk::netio

#endif  // SRC_NETIO_LOADGEN_H_
