#include "src/netio/loadgen.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>

#include "src/common/rng.h"
#include "src/common/zipf.h"
#include "src/netio/tcp_client.h"
#include "src/obs/span.h"
#include "src/obs/trace_log.h"

namespace edk::netio {

namespace {

using Clock = std::chrono::steady_clock;

enum class ReqKind : uint8_t {
  kPublish,
  kSearch,
  kQuerySources,
  kQueryUsers,
  kBrowse,
};

const char* ReqKindName(ReqKind kind) {
  switch (kind) {
    case ReqKind::kPublish: return "publish";
    case ReqKind::kSearch: return "search";
    case ReqKind::kQuerySources: return "query_sources";
    case ReqKind::kQueryUsers: return "query_users";
    case ReqKind::kBrowse: return "browse";
  }
  return "unknown";
}

struct Arrival {
  double offset_seconds;  // From schedule start.
  ReqKind kind;
  uint64_t param_seed;    // Drives the request's parameters.
};

uint16_t LoadgenSpanName() {
  static const uint16_t name =
      obs::TraceLog::Global().InternName("netio.loadgen.request", {"type"});
  return name;
}

// Per-worker accumulators, merged after the join.
struct WorkerResult {
  uint64_t completed = 0;
  uint64_t protocol_errors = 0;
  uint64_t transport_errors = 0;
  uint64_t dropped = 0;
  uint64_t overruns = 0;
  uint64_t by_kind[5] = {0, 0, 0, 0, 0};
  double max_send_lag_seconds = 0;
  std::vector<double> open_loop_us;
  std::vector<double> service_us;
};

}  // namespace

RequestMix DeriveRequestMix(const WorkloadConfig& config) {
  RequestMix mix;
  const double acquisitions = config.mean_daily_additions;
  // One connect-time publish plus one republish per acquired file.
  mix.publish = 1.0 + acquisitions;
  mix.search = acquisitions;
  mix.query_sources = acquisitions;
  // Only unfirewalled sources can be browsed for more of the same (§2.2).
  mix.browse = acquisitions * (1.0 - config.firewalled_fraction);
  // Legacy request kept alive by old clients and crawlers: a trickle.
  mix.query_users = 0.1;
  return mix;
}

LatencySummary SummarizeLatencies(std::vector<double>& samples_us) {
  LatencySummary out;
  out.count = samples_us.size();
  if (samples_us.empty()) {
    return out;
  }
  std::sort(samples_us.begin(), samples_us.end());
  double sum = 0;
  for (const double v : samples_us) {
    sum += v;
  }
  out.mean_us = sum / static_cast<double>(samples_us.size());
  auto quantile = [&](double q) {
    const size_t idx = std::min(
        samples_us.size() - 1,
        static_cast<size_t>(q * static_cast<double>(samples_us.size())));
    return samples_us[idx];
  };
  out.p50_us = quantile(0.50);
  out.p90_us = quantile(0.90);
  out.p99_us = quantile(0.99);
  out.p999_us = quantile(0.999);
  out.max_us = samples_us.back();
  return out;
}

LoadGenReport RunLoadGen(const LoadGenConfig& config,
                         const ServeCorpus& corpus) {
  LoadGenReport report;
  const double rate = std::max(config.target_rps, 1.0);
  const uint64_t total = static_cast<uint64_t>(
      std::llround(rate * std::max(config.duration_seconds, 0.0)));
  if (total == 0 || corpus.files.empty() || corpus.client_files.empty()) {
    return report;
  }

  // The whole Poisson schedule is fixed up front: the offered load never
  // reacts to how the server is doing (open loop).
  std::vector<Arrival> schedule;
  schedule.reserve(total);
  Rng rng(config.seed);
  const double weights[5] = {config.mix.publish, config.mix.search,
                             config.mix.query_sources, config.mix.query_users,
                             config.mix.browse};
  double weight_sum = 0;
  for (const double w : weights) {
    weight_sum += std::max(w, 0.0);
  }
  if (weight_sum <= 0) {
    return report;
  }
  double t = 0;
  for (uint64_t i = 0; i < total; ++i) {
    t += rng.NextExponential(rate);
    double pick = rng.NextDouble() * weight_sum;
    size_t kind = 0;
    for (; kind < 4; ++kind) {
      const double w = std::max(weights[kind], 0.0);
      if (pick < w) {
        break;
      }
      pick -= w;
    }
    schedule.push_back(Arrival{t, static_cast<ReqKind>(kind), rng()});
  }
  report.scheduled = total;

  const size_t workers =
      std::max<size_t>(1, std::min<size_t>(config.connections, total));
  std::atomic<uint64_t> cursor{0};
  std::vector<WorkerResult> results(workers);
  std::atomic<size_t> ready{0};
  std::atomic<bool> go{false};
  Clock::time_point start;  // Written once before go, read by all after.

  ZipfSampler file_zipf(corpus.files.size(), 0.9);
  ZipfSampler keyword_zipf(corpus.keyword_pool.size(),
                           corpus.config.keyword_zipf);

  auto worker_main = [&](size_t w) {
    WorkerResult& local = results[w];
    TcpClient client;
    auto connect_and_login = [&]() {
      if (!client.Connect(config.host, config.port,
                          config.recv_timeout_seconds)) {
        return false;
      }
      const auto login =
          client.Login("loadgen" + std::to_string(w), /*firewalled=*/false);
      return login.has_value() && login->accepted;
    };
    const bool connected = connect_and_login();
    ready.fetch_add(1);
    while (!go.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    if (!connected) {
      // Still drain the cursor so the run terminates; every claimed
      // arrival counts as dropped offered load.
      uint64_t i;
      while ((i = cursor.fetch_add(1, std::memory_order_relaxed)) < total) {
        ++local.dropped;
      }
      ++local.transport_errors;
      return;
    }

    Rng param_rng(0);  // Re-seeded per request from the arrival.
    std::vector<SharedFileInfo> publish_batch;
    uint64_t i;
    while ((i = cursor.fetch_add(1, std::memory_order_relaxed)) < total) {
      const Arrival& arrival = schedule[i];
      const auto scheduled_at =
          start + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(arrival.offset_seconds));
      auto now = Clock::now();
      if (now < scheduled_at) {
        std::this_thread::sleep_until(scheduled_at);
        now = Clock::now();
      } else if (now > scheduled_at) {
        ++local.overruns;
      }
      const double lag = std::chrono::duration<double>(now - scheduled_at).count();
      local.max_send_lag_seconds = std::max(local.max_send_lag_seconds, lag);

      param_rng = Rng(arrival.param_seed);
      obs::WallSpan span(LoadgenSpanName());
      span.AddArg(static_cast<uint64_t>(arrival.kind));
      bool ok = false;
      switch (arrival.kind) {
        case ReqKind::kPublish: {
          publish_batch.clear();
          const size_t n = 1 + param_rng.NextBelow(
                                   std::max<size_t>(
                                       config.publish_files_per_request, 1));
          for (size_t f = 0; f < n; ++f) {
            publish_batch.push_back(
                corpus.files[file_zipf.Sample(param_rng) - 1]);
          }
          ok = client.Publish(publish_batch).has_value();
          break;
        }
        case ReqKind::kSearch: {
          std::vector<std::string> keywords;
          keywords.push_back(
              corpus.keyword_pool[keyword_zipf.Sample(param_rng) - 1]);
          if (param_rng.NextBool(0.5)) {
            keywords.push_back(
                corpus.keyword_pool[keyword_zipf.Sample(param_rng) - 1]);
          }
          ok = client.Search(keywords).has_value();
          break;
        }
        case ReqKind::kQuerySources: {
          const auto& file = corpus.files[file_zipf.Sample(param_rng) - 1];
          ok = client.QuerySources(file.digest).has_value();
          break;
        }
        case ReqKind::kQueryUsers: {
          // "peer" hits everything; "peer1" a decile; keeps reply sizes mixed.
          std::string prefix = "peer";
          if (param_rng.NextBool(0.7)) {
            prefix += std::to_string(param_rng.NextBelow(10));
          }
          ok = client.QueryUsers(prefix).has_value();
          break;
        }
        case ReqKind::kBrowse: {
          const NodeId target = static_cast<NodeId>(
              1 + param_rng.NextBelow(corpus.client_files.size()));
          ok = client.Browse(target).has_value();
          break;
        }
      }
      const auto end = Clock::now();
      ++local.by_kind[static_cast<size_t>(arrival.kind)];
      if (ok) {
        ++local.completed;
        local.open_loop_us.push_back(
            std::chrono::duration<double, std::micro>(end - scheduled_at)
                .count());
        local.service_us.push_back(
            std::chrono::duration<double, std::micro>(end - now).count());
      } else if (client.last_was_protocol_error()) {
        ++local.protocol_errors;
      } else {
        ++local.transport_errors;
        if (!connect_and_login()) {
          // Connection is gone for good: drain the rest as dropped.
          while ((i = cursor.fetch_add(1, std::memory_order_relaxed)) < total) {
            ++local.dropped;
          }
          return;
        }
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    threads.emplace_back(worker_main, w);
  }
  while (ready.load(std::memory_order_acquire) < workers) {
    std::this_thread::yield();
  }
  start = Clock::now();
  go.store(true, std::memory_order_release);
  for (auto& thread : threads) {
    thread.join();
  }
  const double wall =
      std::chrono::duration<double>(Clock::now() - start).count();

  std::vector<double> open_loop_us;
  std::vector<double> service_us;
  for (size_t w = 0; w < workers; ++w) {
    const WorkerResult& local = results[w];
    report.completed += local.completed;
    report.protocol_errors += local.protocol_errors;
    report.transport_errors += local.transport_errors;
    report.dropped += local.dropped;
    report.schedule_overruns += local.overruns;
    for (size_t k = 0; k < 5; ++k) {
      if (local.by_kind[k] > 0) {
        report.by_type[ReqKindName(static_cast<ReqKind>(k))] +=
            local.by_kind[k];
      }
    }
    report.max_send_lag_seconds =
        std::max(report.max_send_lag_seconds, local.max_send_lag_seconds);
    open_loop_us.insert(open_loop_us.end(), local.open_loop_us.begin(),
                        local.open_loop_us.end());
    service_us.insert(service_us.end(), local.service_us.begin(),
                      local.service_us.end());
  }
  report.wall_seconds = wall;
  report.achieved_rps =
      wall > 0 ? static_cast<double>(report.completed) / wall : 0;
  report.open_loop = SummarizeLatencies(open_loop_us);
  report.service = SummarizeLatencies(service_us);
  return report;
}

}  // namespace edk::netio
