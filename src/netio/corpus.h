// Deterministic index corpus for the TCP serve path.
//
// edk-served, bench_serve and the end-to-end tests must agree on what the
// server indexes without shipping a file between them: both sides derive
// the identical corpus from one seed. The corpus mirrors the workload
// model's shape — Zipf-popular keywords compose file names, cache sizes
// follow the generosity Pareto tail, and canonical SharedFileInfo digests
// come from SimClient::MakeFileInfo — so a loadgen search mix hits the
// index with realistic selectivity.
//
// PreloadServeCorpus registers the corpus clients straight into a
// ServerCore (ids first_id, first_id+1, ...), which is how edk-served and
// the in-process bench seed a populated index without paying one TCP
// round-trip per historical publish.

#ifndef SRC_NETIO_CORPUS_H_
#define SRC_NETIO_CORPUS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/net/server_core.h"

namespace edk::netio {

struct ServeCorpusConfig {
  uint64_t seed = 42;
  uint32_t clients = 200;
  uint32_t files = 2000;
  uint32_t keywords = 64;        // Vocabulary size for names and searches.
  double keyword_zipf = 0.9;     // Popularity skew of the vocabulary.
  double cache_pareto_alpha = 0.82;  // WorkloadConfig generosity defaults.
  double cache_pareto_xm = 6.0;
  uint32_t cache_max = 200;
};

struct ServeCorpus {
  ServeCorpusConfig config;
  std::vector<SharedFileInfo> files;           // Canonical infos, by index.
  std::vector<std::string> keyword_pool;       // kw000... vocabulary.
  std::vector<std::vector<uint32_t>> client_files;  // Per client: file indices.
  std::vector<std::string> nicknames;          // Per client.
};

ServeCorpus BuildServeCorpus(const ServeCorpusConfig& config);

// Logs every corpus client into `core` (ids first_id upwards, in corpus
// order — the deterministic sequence both the sim-equality test and the
// TCP preload replay) and publishes its files. Returns the first free
// NodeId after the corpus, i.e. first_id + clients.
NodeId PreloadServeCorpus(ServerCore& core, const ServeCorpus& corpus,
                          NodeId first_id = 1);

}  // namespace edk::netio

#endif  // SRC_NETIO_CORPUS_H_
