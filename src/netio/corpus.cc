#include "src/netio/corpus.h"

#include <algorithm>
#include <cstdio>

#include "src/common/rng.h"
#include "src/common/zipf.h"
#include "src/net/client.h"

namespace edk::netio {

namespace {

const char* const kExtensions[] = {"avi", "mp3", "zip", "iso"};

}  // namespace

ServeCorpus BuildServeCorpus(const ServeCorpusConfig& config) {
  ServeCorpus corpus;
  corpus.config = config;
  Rng rng(config.seed);

  corpus.keyword_pool.reserve(config.keywords);
  for (uint32_t k = 0; k < config.keywords; ++k) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "kw%03u", k);
    corpus.keyword_pool.push_back(buf);
  }

  // File names: two Zipf-popular keywords plus a unique token, so popular
  // keywords index thousands of files while "fileN" pins exactly one.
  ZipfSampler keyword_zipf(config.keywords, config.keyword_zipf);
  corpus.files.reserve(config.files);
  for (uint32_t f = 0; f < config.files; ++f) {
    const uint64_t a = keyword_zipf.Sample(rng) - 1;
    const uint64_t b = keyword_zipf.Sample(rng) - 1;
    const char* ext = kExtensions[rng.NextBelow(std::size(kExtensions))];
    std::string name = corpus.keyword_pool[a] + " " + corpus.keyword_pool[b] +
                       " file" + std::to_string(f) + "." + ext;
    const uint64_t size_bytes = 1'000'000 + rng.NextBelow(700'000'000);
    corpus.files.push_back(
        SimClient::MakeFileInfo(FileId(f), size_bytes, std::move(name)));
  }

  // Client caches: Pareto-sized (the paper's generosity tail), files drawn
  // Zipf-popular with replacement then deduplicated, so popular files have
  // many sources and the tail has one or none.
  ZipfSampler file_zipf(config.files, 0.8);
  corpus.client_files.resize(config.clients);
  corpus.nicknames.reserve(config.clients);
  std::vector<uint8_t> seen(config.files, 0);
  for (uint32_t c = 0; c < config.clients; ++c) {
    corpus.nicknames.push_back("peer" + std::to_string(c));
    const double pareto =
        rng.NextPareto(config.cache_pareto_xm, config.cache_pareto_alpha);
    const uint32_t target = static_cast<uint32_t>(std::min<double>(
        pareto, std::min<uint32_t>(config.cache_max, config.files)));
    auto& cache = corpus.client_files[c];
    cache.reserve(target);
    for (uint32_t i = 0; i < target; ++i) {
      const uint32_t file = static_cast<uint32_t>(file_zipf.Sample(rng) - 1);
      if (seen[file] == 0) {
        seen[file] = 1;
        cache.push_back(file);
      }
    }
    for (const uint32_t file : cache) {
      seen[file] = 0;
    }
    // Publish order is deterministic and sorted, matching the digest-sorted
    // SharedFiles() order a simulated client would publish.
    std::sort(cache.begin(), cache.end(), [&](uint32_t x, uint32_t y) {
      return corpus.files[x].digest < corpus.files[y].digest;
    });
  }
  return corpus;
}

NodeId PreloadServeCorpus(ServerCore& core, const ServeCorpus& corpus,
                          NodeId first_id) {
  NodeId id = first_id;
  std::vector<SharedFileInfo> files;
  for (uint32_t c = 0; c < corpus.client_files.size(); ++c, ++id) {
    // Every fourth corpus client is firewalled-ish: low id in replies.
    const bool firewalled = (c % 4) == 3;
    core.HandleLogin(id, corpus.nicknames[c], firewalled);
    files.clear();
    files.reserve(corpus.client_files[c].size());
    for (const uint32_t file : corpus.client_files[c]) {
      files.push_back(corpus.files[file]);
    }
    core.HandlePublish(id, files);
  }
  return id;
}

}  // namespace edk::netio
